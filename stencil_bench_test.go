package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/gpaw"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/stencil"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Benchmarks for the shared-memory parallel stencil execution engine:
// serial vs pool-split cache-blocked application, and fused vs unfused
// conjugate gradients. TestWriteStencilBenchJSON distills the same
// measurements into BENCH_stencil.json.

const benchN = 64 // 64^3, the small end of the paper's grid sizes

func benchSource() *grid.Grid {
	src := grid.New(benchN, benchN, benchN, 2)
	src.FillFunc(func(i, j, k int) float64 { return float64(i+j+k) * 0.01 })
	src.FillHalosPeriodic()
	return src
}

func BenchmarkApplySerial(b *testing.B) {
	op := stencil.Laplacian(2, 1)
	src := benchSource()
	dst := grid.New(benchN, benchN, benchN, 2)
	b.SetBytes(int64(src.Points() * op.BytesPerPoint()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(dst, src)
	}
}

// BenchmarkApplyParallel measures the pool-split, cache-blocked kernel
// at 1, 2, 4 and 8 workers on a 64^3 grid. On hardware with 4+ cores
// the 4-worker case runs >= 2x faster than BenchmarkApplySerial (the
// kernel is memory-bound, so the exact factor tracks the machine's
// bandwidth-per-core ratio).
func BenchmarkApplyParallel(b *testing.B) {
	op := stencil.Laplacian(2, 1)
	src := benchSource()
	dst := grid.New(benchN, benchN, benchN, 2)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			p := stencil.NewPool(w)
			defer p.Close()
			b.SetBytes(int64(src.Points() * op.BytesPerPoint()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.ApplyParallel(p, dst, src)
			}
		})
	}
}

func benchPoissonProblem() *grid.Grid {
	rhs := gpaw.GaussianDensity(topology.Dims{benchN, benchN, benchN}, 0.3, 1.2, 1)
	rhs.Scale(-1)
	return rhs
}

// BenchmarkCGFused runs the fused conjugate-gradient Poisson solve
// (apply-with-dot, axpy-with-norm, axpy-with-scale: ~11 full-grid
// passes per iteration). Both CG benchmarks run serially (Pool = nil)
// so the fused/unfused comparison isolates kernel fusion from
// worker-pool parallelism.
func BenchmarkCGFused(b *testing.B) {
	rhs := benchPoissonProblem()
	ps := gpaw.NewPoisson(0.3, gpaw.Dirichlet)
	ps.Pool = nil
	ps.Tol = 1e-6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := grid.New(benchN, benchN, benchN, 2)
		if _, _, err := ps.SolveCG(phi, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCGUnfused runs the unfused serial reference formulation
// (~18 passes per iteration) for comparison.
func BenchmarkCGUnfused(b *testing.B) {
	rhs := benchPoissonProblem()
	ps := gpaw.NewPoisson(0.3, gpaw.Dirichlet)
	ps.Pool = nil
	ps.Tol = 1e-6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := grid.New(benchN, benchN, benchN, 2)
		if _, _, err := ps.SolveCGReference(phi, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// wavefrontSOR runs one distributed pipelined-wavefront SOR solve on p
// in-process ranks and returns the iteration count.
func wavefrontSOR(p int, global topology.Dims, rhs *grid.Grid, tol float64) (int, error) {
	procs := topology.DecomposeGrid(p, global)
	var iters int
	err := mpi.Run(p, mpi.ThreadSingle, func(c *mpi.Comm) {
		d, err := gpaw.NewDist(c, gpaw.DistConfig{
			Global: global, Procs: procs, Halo: 2, BC: gpaw.Dirichlet,
			Approach: core.FlatOptimized, Batch: 1,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		ps := gpaw.NewDistPoisson(d, 0.3)
		ps.Tol = tol
		phi := d.NewLocalGrid()
		it, _, err := ps.SolveSOR(phi, d.ScatterReplicated(rhs), 1.6)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			iters = it
		}
	})
	return iters, err
}

// BenchmarkWavefrontSOR measures the pipelined wavefront Gauss-Seidel
// solver — the sweep that used to gather the whole grid to rank 0 every
// iteration — across rank counts on the in-process runtime. The iterate
// sequence is bit-identical at every rank count, so each measurement
// does exactly the same arithmetic; only the pipeline structure varies.
func BenchmarkWavefrontSOR(b *testing.B) {
	global := topology.Dims{32, 32, 32}
	rhs := benchPoissonProblem32()
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wavefrontSOR(p, global, rhs, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPoissonProblem32 is benchPoissonProblem at 32^3 — the wavefront
// benchmark's size, small enough to keep the multi-rank matrix quick.
func benchPoissonProblem32() *grid.Grid {
	rhs := gpaw.GaussianDensity(topology.Dims{32, 32, 32}, 0.3, 1.2, 1)
	rhs.Scale(-1)
	return rhs
}

// overlapCG runs one distributed CG Poisson solve on p in-process ranks
// and returns the iteration count. overlap=true runs the split-phase
// protocol (flat optimized: async exchange overlapped with deep-
// interior compute); overlap=false runs the serialized-exchange
// baseline (flat original: dimension-by-dimension blocking exchange,
// then the full sweep).
func overlapCG(p int, overlap bool, global topology.Dims, rhs *grid.Grid, tol float64) (int, error) {
	procs := topology.DecomposeGrid(p, global)
	approach := core.FlatOriginal
	if overlap {
		approach = core.FlatOptimized
	}
	var iters int
	err := mpi.Run(p, mpi.ThreadSingle, func(c *mpi.Comm) {
		d, err := gpaw.NewDist(c, gpaw.DistConfig{
			Global: global, Procs: procs, Halo: 2, BC: gpaw.Dirichlet,
			Approach: approach, Batch: 1,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		ps := gpaw.NewDistPoisson(d, 0.3)
		ps.Tol = tol
		phi := d.NewLocalGrid()
		it, _, err := ps.SolveCG(phi, d.ScatterReplicated(rhs))
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			iters = it
		}
	})
	return iters, err
}

// BenchmarkOverlapCG measures the split-phase overlapped CG solve
// against the serialized-exchange baseline across rank counts. The
// iterate sequences are bit-identical (asserted in the gpaw overlap
// differential tests), so both modes do exactly the same arithmetic;
// only the communication/computation schedule differs.
func BenchmarkOverlapCG(b *testing.B) {
	global := topology.Dims{32, 32, 32}
	rhs := benchPoissonProblem32()
	for _, p := range []int{1, 2, 4, 8} {
		for _, mode := range []struct {
			name    string
			overlap bool
		}{{"overlap", true}, {"serialized", false}} {
			b.Run(fmt.Sprintf("ranks%d/%s", p, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := overlapCG(p, mode.overlap, global, rhs, 1e-6); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// overlapCGModeled is overlapCG under the calibrated network model:
// the same solve (bit-identical results, asserted elsewhere) with every
// message priced by the bgpsim Figure-2 fit and compute charged at the
// calibrated per-point rate (NoComputeWall, so the returned virtual
// makespan is fully deterministic).
func overlapCGModeled(p int, overlap bool, m topology.Mapping, global topology.Dims, rhs *grid.Grid, tol float64) (int, time.Duration, error) {
	procs := topology.DecomposeGrid(p, global)
	cfg := gpaw.DistConfig{
		Global: global, Procs: procs, Halo: 2, BC: gpaw.Dirichlet,
		Approach: core.FlatOptimized, Batch: 1, Threads: 1,
		NoOverlap: !overlap, Map: m, NetCompute: true,
	}
	nm := bgpsim.NetModelFor(p)
	nm.Coords = gpaw.NetCoords(cfg, nm.Net)
	nm.NoComputeWall = true
	var iters int
	mk, err := mpi.RunModeled(p, mpi.ThreadSingle, nm, func(c *mpi.Comm) {
		d, err := gpaw.NewDist(c, cfg)
		if err != nil {
			panic(err)
		}
		defer d.Close()
		ps := gpaw.NewDistPoisson(d, 0.3)
		ps.Tol = tol
		phi := d.NewLocalGrid()
		it, _, err := ps.SolveCG(phi, d.ScatterReplicated(rhs))
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			iters = it
		}
	})
	return iters, mk, err
}

// overlapCGProfile is the overlapped arm of overlapCGModeled with a
// tracer armed, reduced to the virtual-clock per-phase profile. Every
// number in it is a deterministic model prediction (NoComputeWall).
func overlapCGProfile(p int, global topology.Dims, rhs *grid.Grid, tol float64) (*trace.Profile, error) {
	procs := topology.DecomposeGrid(p, global)
	cfg := gpaw.DistConfig{
		Global: global, Procs: procs, Halo: 2, BC: gpaw.Dirichlet,
		Approach: core.FlatOptimized, Batch: 1, Threads: 1,
		Map: topology.MapCart, NetCompute: true,
	}
	nm := bgpsim.NetModelFor(p)
	nm.Coords = gpaw.NetCoords(cfg, nm.Net)
	nm.NoComputeWall = true
	tr := trace.New(p, 1<<16)
	w := mpi.NewWorld(p, mpi.ThreadSingle)
	w.SetNetModel(nm)
	w.SetTracer(tr)
	err := w.Run(func(c *mpi.Comm) {
		d, err := gpaw.NewDist(c, cfg)
		if err != nil {
			panic(err)
		}
		defer d.Close()
		ps := gpaw.NewDistPoisson(d, 0.3)
		ps.Tol = tol
		phi := d.NewLocalGrid()
		if _, _, err := ps.SolveCG(phi, d.ScatterReplicated(rhs)); err != nil {
			panic(err)
		}
	})
	return tr.Profile(trace.Virtual), err
}

// wavefrontSORModeled is wavefrontSOR under the calibrated model,
// returning the deterministic virtual makespan of the solve.
func wavefrontSORModeled(p int, global topology.Dims, rhs *grid.Grid, tol float64) (int, time.Duration, error) {
	procs := topology.DecomposeGrid(p, global)
	cfg := gpaw.DistConfig{
		Global: global, Procs: procs, Halo: 2, BC: gpaw.Dirichlet,
		Approach: core.FlatOptimized, Batch: 1, Threads: 1,
		Map: topology.MapCart, NetCompute: true,
	}
	nm := bgpsim.NetModelFor(p)
	nm.Coords = gpaw.NetCoords(cfg, nm.Net)
	nm.NoComputeWall = true
	var iters int
	mk, err := mpi.RunModeled(p, mpi.ThreadSingle, nm, func(c *mpi.Comm) {
		d, err := gpaw.NewDist(c, cfg)
		if err != nil {
			panic(err)
		}
		defer d.Close()
		ps := gpaw.NewDistPoisson(d, 0.3)
		ps.Tol = tol
		phi := d.NewLocalGrid()
		it, _, err := ps.SolveSOR(phi, d.ScatterReplicated(rhs), 1.6)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			iters = it
		}
	})
	return iters, mk, err
}

// calibratedBenchReport is the calibrated-transport section of
// BENCH_stencil.json: the same benchmarks re-run with Blue Gene/P-scale
// message costs. Virtual times are deterministic (NoComputeWall), so
// every number here is a model prediction, not a host measurement.
type calibratedBenchReport struct {
	Transport string `json:"transport"` // always "calibrated"
	// Overlapped vs forced-serialized CG virtual makespans and their
	// ratio, at real and paper-scale simulated rank counts. Unlike the
	// eager wall times, overlap_speedup here measures the actual
	// latency-hiding win (> 1.0 asserted).
	OverlapCGVirtUs    map[string]float64 `json:"overlap_cg_virt_us"`
	SerializedCGVirtUs map[string]float64 `json:"serialized_cg_virt_us"`
	OverlapSpeedup     map[string]float64 `json:"overlap_speedup"`
	OverlapCGIters     int                `json:"overlap_cg_iters"`
	// Pipelined wavefront SOR virtual makespan per rank count.
	WavefrontSORVirtUs map[string]float64 `json:"wavefront_sor_virt_us"`
	// Rank-placement study: the same 64-rank CG solve under the
	// Cartesian torus embedding, the default linear fill and the
	// worst-case shuffled placement (cart < shuffle asserted).
	MappingCGVirtUs64 map[string]float64 `json:"mapping_cg_virt_us_ranks64"`
	// Per-phase profile of the traced 8-rank overlapped CG solve under
	// the virtual clock: comm/compute split, overlap efficiency and the
	// span aggregates of internal/trace. Deterministic (NoComputeWall).
	Profile *trace.Profile `json:"profile"`
}

// stencilBenchReport is the schema of BENCH_stencil.json.
type stencilBenchReport struct {
	Grid       [3]int `json:"grid"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Transport of the wall-time sections below: the in-process eager
	// runtime, which delivers at memory speed — its overlap_speedup is
	// a structural-overhead check (~1.0 expected), NOT an overlap
	// measurement. The calibrated section is the one that measures
	// latency hiding.
	Transport       string             `json:"transport"`
	ApplySerialNs   float64            `json:"apply_serial_ns"`
	ApplyParallelNs map[string]float64 `json:"apply_parallel_ns"`
	ApplySpeedup    map[string]float64 `json:"apply_speedup"`
	// Full-grid memory passes per CG iteration, measured with the
	// grid traffic counter (deterministic, hardware-independent).
	CGPassesPerIterFused   float64 `json:"cg_passes_per_iter_fused"`
	CGPassesPerIterUnfused float64 `json:"cg_passes_per_iter_unfused"`
	CGTrafficRatio         float64 `json:"cg_traffic_ratio"`
	// Pipelined wavefront SOR wall time per rank count (in-process
	// ranks; informational) and its rank-invariant iteration count.
	WavefrontSORNs    map[string]float64 `json:"wavefront_sor_ns"`
	WavefrontSORIters int                `json:"wavefront_sor_iters"`
	// Split-phase overlapped CG vs the serialized-exchange baseline per
	// rank count (in-process ranks; wall times informational). The
	// iteration count is rank- and mode-invariant — the overlapped
	// solver is bit-identical to the serialized one — and the speedup is
	// serialized_ns / overlap_ns.
	OverlapCGNs    map[string]float64 `json:"overlap_cg_ns"`
	SerializedCGNs map[string]float64 `json:"serialized_cg_ns"`
	OverlapSpeedup map[string]float64 `json:"overlap_speedup"`
	OverlapCGIters int                `json:"overlap_cg_iters"`
	// The same solvers re-run under the calibrated BG/P network model
	// (see calibratedBenchReport).
	Calibrated calibratedBenchReport `json:"calibrated"`
}

// timeApply returns the best-of-reps wall time of one application.
func timeApply(reps int, apply func()) float64 {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		apply()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// TestWriteStencilBenchJSON measures the engine and, when
// BENCH_STENCIL_JSON is set, rewrites BENCH_stencil.json at the
// repository root (gated so routine `go test ./...` runs don't dirty
// the committed file with host-specific timings). Wall-clock speedups
// are informational (they depend on the host's cores and memory
// bandwidth); the traffic reduction is asserted because it is
// deterministic.
func TestWriteStencilBenchJSON(t *testing.T) {
	const n = 48 // keep the measurement quick; passes/iter are size-independent
	op := stencil.Laplacian(2, 1)
	src := grid.New(n, n, n, 2)
	src.FillFunc(func(i, j, k int) float64 { return float64(i+j+k) * 0.01 })
	src.FillHalosPeriodic()
	dst := grid.New(n, n, n, 2)

	rep := stencilBenchReport{
		Grid:            [3]int{n, n, n},
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Transport:       "eager",
		ApplyParallelNs: map[string]float64{},
		ApplySpeedup:    map[string]float64{},
	}
	const reps = 7
	op.Apply(dst, src) // warm up
	rep.ApplySerialNs = timeApply(reps, func() { op.Apply(dst, src) })
	for _, w := range []int{1, 2, 4, 8} {
		p := stencil.NewPool(w)
		op.ApplyParallel(p, dst, src)
		ns := timeApply(reps, func() { op.ApplyParallel(p, dst, src) })
		key := fmt.Sprintf("workers%d", w)
		rep.ApplyParallelNs[key] = ns
		rep.ApplySpeedup[key] = rep.ApplySerialNs / ns
		p.Close()
	}

	rhs := gpaw.GaussianDensity(topology.Dims{n, n, n}, 0.3, 1.2, 1)
	rhs.Scale(-1)
	ps := gpaw.NewPoisson(0.3, gpaw.Dirichlet)
	ps.Pool = nil
	ps.Tol = 1e-7
	phi := grid.New(n, n, n, 2)
	grid.ResetTraffic()
	itRef, _, err := ps.SolveCGReference(phi, rhs)
	if err != nil {
		t.Fatal(err)
	}
	rep.CGPassesPerIterUnfused = float64(grid.TrafficPoints()) / float64(itRef) / float64(rhs.Points())
	phi = grid.New(n, n, n, 2)
	grid.ResetTraffic()
	itFused, _, err := ps.SolveCG(phi, rhs)
	if err != nil {
		t.Fatal(err)
	}
	rep.CGPassesPerIterFused = float64(grid.TrafficPoints()) / float64(itFused) / float64(rhs.Points())
	grid.ResetTraffic()
	rep.CGTrafficRatio = rep.CGPassesPerIterFused / rep.CGPassesPerIterUnfused

	if rep.CGTrafficRatio >= 0.75 {
		t.Fatalf("fused CG moves %.0f%% of unfused traffic, want < 75%%", 100*rep.CGTrafficRatio)
	}

	// Wavefront SOR across rank counts: wall time is informational, but
	// the iteration count must not depend on the decomposition (the
	// sweep is bit-identical to serial at every rank count).
	rep.WavefrontSORNs = map[string]float64{}
	wfGlobal := topology.Dims{24, 24, 24}
	wfRhs := gpaw.GaussianDensity(wfGlobal, 0.3, 1.2, 1)
	wfRhs.Scale(-1)
	for _, p := range []int{1, 2, 4} {
		it, err := wavefrontSOR(p, wfGlobal, wfRhs, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if rep.WavefrontSORIters == 0 {
			rep.WavefrontSORIters = it
		} else if it != rep.WavefrontSORIters {
			t.Fatalf("wavefront SOR at %d ranks took %d iterations, 1 rank took %d — sweep not bit-identical",
				p, it, rep.WavefrontSORIters)
		}
		rep.WavefrontSORNs[fmt.Sprintf("ranks%d", p)] = timeApply(3, func() {
			if _, err := wavefrontSOR(p, wfGlobal, wfRhs, 1e-6); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Overlapped vs serialized-exchange CG: the iteration count must not
	// depend on the mode or the rank count (the split-phase solver is
	// bit-identical to the serialized baseline); wall times feed the
	// overlap_speedup report.
	rep.OverlapCGNs = map[string]float64{}
	rep.SerializedCGNs = map[string]float64{}
	rep.OverlapSpeedup = map[string]float64{}
	ovGlobal := topology.Dims{32, 32, 32}
	ovRhs := gpaw.GaussianDensity(ovGlobal, 0.3, 1.2, 1)
	ovRhs.Scale(-1)
	for _, p := range []int{1, 2, 4, 8} {
		key := fmt.Sprintf("ranks%d", p)
		for _, overlap := range []bool{true, false} {
			it, err := overlapCG(p, overlap, ovGlobal, ovRhs, 1e-6)
			if err != nil {
				t.Fatal(err)
			}
			if rep.OverlapCGIters == 0 {
				rep.OverlapCGIters = it
			} else if it != rep.OverlapCGIters {
				t.Fatalf("CG at %d ranks (overlap=%v) took %d iterations, first run took %d — solver not bit-identical",
					p, overlap, it, rep.OverlapCGIters)
			}
			ns := timeApply(5, func() {
				if _, err := overlapCG(p, overlap, ovGlobal, ovRhs, 1e-6); err != nil {
					t.Fatal(err)
				}
			})
			if overlap {
				rep.OverlapCGNs[key] = ns
			} else {
				rep.SerializedCGNs[key] = ns
			}
		}
		rep.OverlapSpeedup[key] = rep.SerializedCGNs[key] / rep.OverlapCGNs[key]
	}

	// Calibrated transport: the same CG solve with every message priced
	// by the BG/P model. The virtual makespans are deterministic, so the
	// overlap win is asserted, not just reported — this is the number
	// the eager section cannot produce (no latency to hide at memory
	// speed).
	cal := &rep.Calibrated
	cal.Transport = "calibrated"
	cal.OverlapCGVirtUs = map[string]float64{}
	cal.SerializedCGVirtUs = map[string]float64{}
	cal.OverlapSpeedup = map[string]float64{}
	cal.WavefrontSORVirtUs = map[string]float64{}
	cal.MappingCGVirtUs64 = map[string]float64{}
	for _, p := range []int{8, 64} {
		key := fmt.Sprintf("ranks%d", p)
		itOv, ovUs, err := overlapCGModeled(p, true, topology.MapCart, ovGlobal, ovRhs, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		itSer, serUs, err := overlapCGModeled(p, false, topology.MapCart, ovGlobal, ovRhs, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if itOv != itSer || itOv != rep.OverlapCGIters {
			t.Fatalf("calibrated CG iters at %d ranks: overlap %d, serialized %d, eager %d — solver not bit-identical",
				p, itOv, itSer, rep.OverlapCGIters)
		}
		cal.OverlapCGVirtUs[key] = float64(ovUs) / 1e3
		cal.SerializedCGVirtUs[key] = float64(serUs) / 1e3
		speedup := float64(serUs) / float64(ovUs)
		cal.OverlapSpeedup[key] = speedup
		if speedup <= 1.0 {
			t.Errorf("calibrated overlap speedup at %d ranks is %.4fx, want > 1.0 — overlap hides no modeled latency", p, speedup)
		}
	}
	cal.OverlapCGIters = rep.OverlapCGIters
	for _, p := range []int{8, 64} {
		it, wfUs, err := wavefrontSORModeled(p, wfGlobal, wfRhs, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if it != rep.WavefrontSORIters {
			t.Fatalf("calibrated wavefront SOR at %d ranks took %d iterations, eager took %d — sweep not bit-identical",
				p, it, rep.WavefrontSORIters)
		}
		cal.WavefrontSORVirtUs[fmt.Sprintf("ranks%d", p)] = float64(wfUs) / 1e3
	}
	for _, m := range []topology.Mapping{topology.MapCart, topology.MapLinear, topology.MapShuffle} {
		_, us, err := overlapCGModeled(64, true, m, ovGlobal, ovRhs, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		cal.MappingCGVirtUs64[m.String()] = float64(us) / 1e3
	}
	if c, s := cal.MappingCGVirtUs64["cart"], cal.MappingCGVirtUs64["shuffle"]; c >= s {
		t.Errorf("calibrated 64-rank CG: cart mapping (%.1fus) not cheaper than shuffle (%.1fus)", c, s)
	}
	prof, err := overlapCGProfile(8, ovGlobal, ovRhs, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if prof.OverlapEfficiency <= 0 {
		t.Errorf("traced calibrated 8-rank CG reports overlap efficiency %.3f, want > 0",
			prof.OverlapEfficiency)
	}
	cal.Profile = prof

	if os.Getenv("BENCH_STENCIL_JSON") != "" {
		out, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFileAtomic("BENCH_stencil.json", append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("serial %.2fms, 4-worker speedup %.2fx (on %d CPUs), CG traffic ratio %.2f, eager overlap ratio at 4 ranks %.2fx",
		rep.ApplySerialNs/1e6, rep.ApplySpeedup["workers4"], rep.NumCPU, rep.CGTrafficRatio, rep.OverlapSpeedup["ranks4"])
	t.Logf("calibrated: overlap speedup %.3fx at 8 ranks, %.3fx at 64; 64-rank mapping cart %.0fus / linear %.0fus / shuffle %.0fus",
		rep.Calibrated.OverlapSpeedup["ranks8"], rep.Calibrated.OverlapSpeedup["ranks64"],
		rep.Calibrated.MappingCGVirtUs64["cart"], rep.Calibrated.MappingCGVirtUs64["linear"],
		rep.Calibrated.MappingCGVirtUs64["shuffle"])
}
