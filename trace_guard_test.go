package repro

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpaw"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/trace"
)

// overlapCGTraced is overlapCG with a tracer attached to the world
// before the ranks start. The tracer may be disabled: that is the
// configuration the overhead guard prices, since tracing off must be
// near-free on the hot solver path.
func overlapCGTraced(p int, tr *trace.Tracer, global topology.Dims, rhs *grid.Grid, tol float64) (int, error) {
	procs := topology.DecomposeGrid(p, global)
	var iters int
	w := mpi.NewWorld(p, mpi.ThreadSingle)
	w.SetTracer(tr)
	err := w.Run(func(c *mpi.Comm) {
		d, err := gpaw.NewDist(c, gpaw.DistConfig{
			Global: global, Procs: procs, Halo: 2, BC: gpaw.Dirichlet,
			Approach: core.FlatOptimized, Batch: 1,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		ps := gpaw.NewDistPoisson(d, 0.3)
		ps.Tol = tol
		phi := d.NewLocalGrid()
		it, _, err := ps.SolveCG(phi, d.ScatterReplicated(rhs))
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			iters = it
		}
	})
	return iters, err
}

// TestTracingDisabledOverheadGuard prices the cost of shipping the
// tracing hooks when tracing is off: the overlapped 32^3 CG solve with
// a disabled tracer attached must stay within 2% (plus a small
// absolute slack for timer noise) of the same solve with no tracer at
// all. Wall-clock guards are load-sensitive, so the test only runs
// when TRACE_OVERHEAD_GUARD=1 (the CI trace-smoke job sets it); both
// arms are interleaved and the minimum of each is compared.
func TestTracingDisabledOverheadGuard(t *testing.T) {
	if os.Getenv("TRACE_OVERHEAD_GUARD") == "" {
		t.Skip("set TRACE_OVERHEAD_GUARD=1 to run the wall-clock overhead guard")
	}
	const p = 2
	global := topology.Dims{32, 32, 32}
	rhs := benchPoissonProblem32()
	tr := trace.New(p, 1<<10)
	tr.Disable()

	minOff, minDisabled := time.Duration(1<<62), time.Duration(1<<62)
	var itOff, itDisabled int
	for i := 0; i < 6; i++ {
		start := time.Now()
		it, err := overlapCG(p, true, global, rhs, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < minOff {
			minOff = d
		}
		itOff = it

		start = time.Now()
		it, err = overlapCGTraced(p, tr, global, rhs, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < minDisabled {
			minDisabled = d
		}
		itDisabled = it
	}
	if itOff != itDisabled {
		t.Fatalf("disabled-tracer solve took %d iterations, untraced %d", itDisabled, itOff)
	}
	if len(tr.Events()) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(tr.Events()))
	}
	limit := minOff + minOff/50 + 2*time.Millisecond
	t.Logf("untraced %v, disabled tracer %v (limit %v)", minOff, minDisabled, limit)
	if minDisabled > limit {
		t.Errorf("disabled tracing costs %v vs %v untraced: over the 2%% budget",
			minDisabled, minOff)
	}
}
