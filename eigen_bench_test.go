package repro

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/gpaw"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/mpi"
	"repro/internal/pblas"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Benchmarks for the band-parallel dense-subspace layer: SUMMA
// distributed matrix multiplication across process-grid shapes, and the
// band-parallel Rayleigh–Ritz step across bands x ranks layouts.
// TestWriteEigenBenchJSON distills the same measurements into
// BENCH_eigen.json so the subsystem's perf trajectory is tracked
// alongside BENCH_stencil.json.

// summaOnce multiplies two n x n matrices over a pr x pc grid and
// returns the replicated product (nil off rank 0).
func summaOnce(a, b linalg.Matrix, pr, pc, blockSize int) linalg.Matrix {
	var out linalg.Matrix
	err := mpi.Run(pr*pc, mpi.ThreadSingle, func(c *mpi.Comm) {
		g, err := pblas.NewGrid2D(c, pr, pc)
		if err != nil {
			panic(err)
		}
		da := pblas.FromReplicated(g, a, blockSize, blockSize)
		db := pblas.FromReplicated(g, b, blockSize, blockSize)
		dc, err := pblas.MatMul(da, db)
		if err != nil {
			panic(err)
		}
		rep := dc.Replicate()
		if c.Rank() == 0 {
			out = rep
		}
	})
	if err != nil {
		panic(err)
	}
	return out
}

// summaOnceModeled is summaOnce under the calibrated network model on a
// simulated torus, with the 2D grid placed by the given mapping. It
// returns the replicated product (nil off rank 0) and the deterministic
// virtual makespan of the multiply.
func summaOnceModeled(a, b linalg.Matrix, pr, pc, blockSize int, m topology.Mapping) (linalg.Matrix, time.Duration) {
	nm := bgpsim.NetModelFor(pr * pc)
	nm.Coords = pblas.MapGrid2D(pr, pc, nm.Net, m)
	nm.NoComputeWall = true
	var out linalg.Matrix
	mk, err := mpi.RunModeled(pr*pc, mpi.ThreadSingle, nm, func(c *mpi.Comm) {
		g, err := pblas.NewGrid2D(c, pr, pc)
		if err != nil {
			panic(err)
		}
		da := pblas.FromReplicated(g, a, blockSize, blockSize)
		db := pblas.FromReplicated(g, b, blockSize, blockSize)
		dc, err := pblas.MatMul(da, db)
		if err != nil {
			panic(err)
		}
		rep := dc.Replicate()
		if c.Rank() == 0 {
			out = rep
		}
	})
	if err != nil {
		panic(err)
	}
	return out, mk
}

// summaProfile is summaOnceModeled with a tracer armed, reduced to the
// virtual-clock per-phase profile of the multiply. Deterministic
// (NoComputeWall): every number is a model prediction.
func summaProfile(a, b linalg.Matrix, pr, pc, blockSize int) *trace.Profile {
	p := pr * pc
	nm := bgpsim.NetModelFor(p)
	nm.Coords = pblas.MapGrid2D(pr, pc, nm.Net, topology.MapCart)
	nm.NoComputeWall = true
	tr := trace.New(p, 1<<15)
	w := mpi.NewWorld(p, mpi.ThreadSingle)
	w.SetNetModel(nm)
	w.SetTracer(tr)
	err := w.Run(func(c *mpi.Comm) {
		g, err := pblas.NewGrid2D(c, pr, pc)
		if err != nil {
			panic(err)
		}
		da := pblas.FromReplicated(g, a, blockSize, blockSize)
		db := pblas.FromReplicated(g, b, blockSize, blockSize)
		if _, err := pblas.MatMul(da, db); err != nil {
			panic(err)
		}
	})
	if err != nil {
		panic(err)
	}
	return tr.Profile(trace.Virtual)
}

// benchMatrices builds deterministic n x n operands.
func benchMatrices(n int) (a, b linalg.Matrix) {
	a, b = linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = math.Sin(float64(i*n+j)) * 0.25
			b[i][j] = math.Cos(float64(i-2*j)) * 0.25
		}
	}
	return a, b
}

// BenchmarkSUMMA measures the distributed GEMM across grid shapes
// (in-process ranks; 1x1 is the degenerate serial layout).
func BenchmarkSUMMA(b *testing.B) {
	const n, blockSize = 96, 8
	am, bm := benchMatrices(n)
	for _, shape := range [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 4}} {
		b.Run(fmt.Sprintf("grid%dx%d", shape[0], shape[1]), func(b *testing.B) {
			b.SetBytes(int64(3 * n * n * 8))
			for i := 0; i < b.N; i++ {
				summaOnce(am, bm, shape[0], shape[1], blockSize)
			}
		})
	}
}

// bandRROnce runs one band-parallel Rayleigh–Ritz step over a
// bands x domain layout and returns the Ritz values.
func bandRROnce(global topology.Dims, m, bands int, procs topology.Dims, vext *grid.Grid, h float64) []float64 {
	var eig []float64
	err := mpi.Run(bands*procs.Count(), mpi.ThreadSingle, func(c *mpi.Comm) {
		d, err := gpaw.NewDist(c, gpaw.DistConfig{
			Global: global, Procs: procs, Bands: bands, Halo: 2,
			BC: gpaw.Dirichlet, Approach: core.FlatOptimized, Batch: 2,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		psis := d.InitGuessBand(m, [3]int{global[0], global[1], global[2]})
		dh := gpaw.NewDistHamiltonian(d, h, d.ScatterReplicated(vext))
		e, err := dh.RayleighRitz(m, psis)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			eig = e
		}
	})
	if err != nil {
		panic(err)
	}
	return eig
}

// BenchmarkBandRayleighRitz measures one subspace-assembly +
// diagonalization + rotation step across bands x ranks layouts on a
// 16^3 grid with 8 states.
func BenchmarkBandRayleighRitz(b *testing.B) {
	global := topology.Dims{16, 16, 16}
	const m = 8
	h := 0.5
	vext := gpaw.HarmonicPotential(global, h, 1)
	for _, l := range []struct {
		bands int
		procs topology.Dims
	}{
		{1, topology.Dims{1, 1, 1}},
		{2, topology.Dims{1, 1, 1}},
		{4, topology.Dims{1, 1, 1}},
		{2, topology.Dims{1, 1, 2}},
		{4, topology.Dims{1, 1, 2}},
	} {
		b.Run(fmt.Sprintf("bands%d_ranks%d", l.bands, l.bands*l.procs.Count()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bandRROnce(global, m, l.bands, l.procs, vext, h)
			}
		})
	}
}

// eigenBenchReport is the schema of BENCH_eigen.json.
type eigenBenchReport struct {
	Grid       [3]int `json:"grid"`
	States     int    `json:"states"`
	SummaN     int    `json:"summa_n"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Wall time of one band-parallel Rayleigh–Ritz step per
	// bands x total-ranks layout (informational, host-dependent).
	BandRayleighRitzNs map[string]float64 `json:"band_rayleigh_ritz_ns"`
	// Wall time of one n x n SUMMA multiply per grid shape.
	SummaNs map[string]float64 `json:"summa_ns"`
	// Bit-identity of the Ritz values across every measured layout —
	// asserted, because it is deterministic.
	RitzValuesIdentical bool `json:"ritz_values_identical"`
	// SUMMA re-run under the calibrated BG/P network model: virtual
	// makespan of one multiply per simulated grid shape and, at 64
	// ranks, per rank placement (the product is asserted bit-identical
	// to the eager run). Deterministic model predictions, not host
	// measurements.
	SummaVirtUsCalibrated map[string]float64 `json:"summa_virt_us_calibrated"`
	// Per-phase profile of one traced 4x4 calibrated SUMMA multiply
	// under the virtual clock (pblas.summa region over the mpi
	// broadcast/send spans). Deterministic (NoComputeWall).
	Profile *trace.Profile `json:"profile"`
}

// TestWriteEigenBenchJSON measures the band-parallel subspace layer
// and, when BENCH_EIGEN_JSON is set, rewrites BENCH_eigen.json at the
// repository root (gated so routine `go test ./...` runs don't dirty
// the committed file with host-specific timings). Wall times are
// informational; the cross-layout bit-identity of the Ritz values is
// asserted because it is deterministic.
func TestWriteEigenBenchJSON(t *testing.T) {
	global := topology.Dims{12, 12, 12}
	const m = 6
	h := 0.5
	vext := gpaw.HarmonicPotential(global, h, 1)
	rep := eigenBenchReport{
		Grid:               [3]int{global[0], global[1], global[2]},
		States:             m,
		SummaN:             64,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		BandRayleighRitzNs: map[string]float64{},
		SummaNs:            map[string]float64{},
	}
	const reps = 3
	var ref []float64
	rep.RitzValuesIdentical = true
	for _, l := range []struct {
		bands int
		procs topology.Dims
	}{
		{1, topology.Dims{1, 1, 1}},
		{2, topology.Dims{1, 1, 1}},
		{2, topology.Dims{1, 1, 2}},
		{4, topology.Dims{1, 1, 2}},
	} {
		var eig []float64
		ns := timeApply(reps, func() { eig = bandRROnce(global, m, l.bands, l.procs, vext, h) })
		rep.BandRayleighRitzNs[fmt.Sprintf("bands%d_ranks%d", l.bands, l.bands*l.procs.Count())] = ns
		if ref == nil {
			ref = eig
		}
		for i := range eig {
			if eig[i] != ref[i] {
				rep.RitzValuesIdentical = false
				t.Errorf("bands %d procs %v: Ritz value %d = %.17g deviates from %.17g",
					l.bands, l.procs, i, eig[i], ref[i])
			}
		}
	}
	am, bm := benchMatrices(rep.SummaN)
	for _, shape := range [][2]int{{1, 1}, {1, 2}, {2, 2}} {
		ns := timeApply(reps, func() { summaOnce(am, bm, shape[0], shape[1], 8) })
		rep.SummaNs[fmt.Sprintf("grid%dx%d", shape[0], shape[1])] = ns
	}

	// SUMMA under the calibrated transport: paper-scale simulated grids,
	// with the 64-rank multiply additionally compared across placements.
	// The model only reorders time, so the product must equal the eager
	// run's bitwise.
	rep.SummaVirtUsCalibrated = map[string]float64{}
	eagerProduct := summaOnce(am, bm, 4, 4, 8)
	for _, shape := range [][2]int{{2, 2}, {4, 4}, {8, 8}} {
		out, mk := summaOnceModeled(am, bm, shape[0], shape[1], 8, topology.MapCart)
		rep.SummaVirtUsCalibrated[fmt.Sprintf("grid%dx%d", shape[0], shape[1])] = float64(mk) / 1e3
		if shape == [2]int{4, 4} {
			for i := range out {
				for j := range out[i] {
					if out[i][j] != eagerProduct[i][j] {
						t.Fatalf("calibrated SUMMA product deviates from eager at (%d,%d): %.17g vs %.17g",
							i, j, out[i][j], eagerProduct[i][j])
					}
				}
			}
		}
	}
	_, cartMk := summaOnceModeled(am, bm, 8, 8, 8, topology.MapCart)
	_, shufMk := summaOnceModeled(am, bm, 8, 8, 8, topology.MapShuffle)
	rep.SummaVirtUsCalibrated["grid8x8_cart"] = float64(cartMk) / 1e3
	rep.SummaVirtUsCalibrated["grid8x8_shuffle"] = float64(shufMk) / 1e3
	if cartMk >= shufMk {
		t.Errorf("64-rank SUMMA: cart placement (%v) not cheaper than shuffle (%v)", cartMk, shufMk)
	}
	// Local GEMM charges no modeled compute, so under the virtual clock
	// the profile is all communication; assert the broadcast traffic and
	// the one summa region per rank are on the timeline.
	rep.Profile = summaProfile(am, bm, 4, 4, 8)
	if rep.Profile.CommNs <= 0 {
		t.Errorf("traced SUMMA profile lacks comm self time (%dns)", rep.Profile.CommNs)
	}
	summaCount := int64(0)
	for _, ps := range rep.Profile.Phases {
		if ps.Name == "pblas.summa" {
			summaCount = ps.Count
		}
	}
	if summaCount != 16 {
		t.Errorf("traced SUMMA profile has %d pblas.summa regions, want one per rank (16)", summaCount)
	}
	if os.Getenv("BENCH_EIGEN_JSON") != "" {
		out, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFileAtomic("BENCH_eigen.json", append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("band RR 1-band %.2fms vs 4-band/8-rank %.2fms; Ritz values identical: %v",
		rep.BandRayleighRitzNs["bands1_ranks1"]/1e6,
		rep.BandRayleighRitzNs["bands4_ranks8"]/1e6, rep.RitzValuesIdentical)
}
