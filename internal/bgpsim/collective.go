package bgpsim

import "math"

// Blue Gene/P has two more networks besides the torus (section III):
// a tree-structured collective network used for reductions and
// broadcasts, and a dedicated global barrier/interrupt network. The
// finite-difference benchmark itself uses only point-to-point torus
// traffic, but the surrounding GPAW computation (orthogonalization's
// Allreduce, SCF convergence checks) runs on these, so the model
// includes them for completeness and for the collective-cost helper
// used in extended experiments.

// Collective network characteristics (IBM journal values, approximate).
const (
	// TreeBandwidth is the collective network's per-link bandwidth.
	TreeBandwidth = 0.85e9 // bytes/s (6.8 Gbit/s)
	// TreeLatencyPerLevel is the combining latency per tree level.
	TreeLatencyPerLevel = 1.3e-6
	// BarrierLatency is a full-machine hardware barrier on the global
	// interrupt network.
	BarrierLatency = 1.3e-6
)

// TreeLevels returns the depth of the combining tree over n nodes.
func TreeLevels(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// AllreduceTime models MPI_Allreduce of n bytes over `nodes` nodes on
// the collective network: the payload streams through the combining
// tree once up and once down, paying the per-level latency both ways.
func (p Params) AllreduceTime(n int64, nodes int) float64 {
	levels := TreeLevels(nodes)
	wire := 2 * float64(n) / TreeBandwidth
	return wire + 2*float64(levels)*TreeLatencyPerLevel + p.MsgLatency
}

// BarrierTime models a global barrier: the hardware barrier network's
// latency, independent of node count (one of BGP's signature features).
func (p Params) BarrierTime(nodes int) float64 {
	if nodes <= 1 {
		return 0
	}
	return BarrierLatency
}

// OrthogonalizationCollectiveTime estimates the Allreduce cost of one
// overlap-matrix construction for m wave-functions over the given node
// count: an m x m float64 matrix reduced across all nodes. This is the
// piece of GPAW the paper's further-work section wants to overlap next.
func (p Params) OrthogonalizationCollectiveTime(m, nodes int) float64 {
	return p.AllreduceTime(int64(m)*int64(m)*8, nodes)
}
