package bgpsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Workload describes the finite-difference job being simulated.
type Workload struct {
	GridSize topology.Dims // extents of every real-space grid
	NumGrids int           // number of grids (wave-functions)
	Radius   int           // stencil radius (2 = the paper's operator)
	Elem     int           // bytes per grid point (8 = real)
	// Applications is how many times the operation is applied to every
	// grid; times and traffic scale linearly with it.
	Applications int
}

// DefaultWorkload fills in the paper's constants for unset fields.
func (w Workload) withDefaults() Workload {
	if w.Radius == 0 {
		w.Radius = 2
	}
	if w.Elem == 0 {
		w.Elem = 8
	}
	if w.Applications == 0 {
		w.Applications = 1
	}
	return w
}

// FlopsPerPoint returns the stencil flops per output point.
func (w Workload) FlopsPerPoint() int { return 2*(6*w.Radius+1) - 1 }

// Config selects the machine configuration and programming approach.
type Config struct {
	Cores    int
	Approach core.Approach
	// SplitGroups enables the paper's section-VII control experiment:
	// Flat optimized with the grids statically divided into four
	// sub-groups so each core works on node-level sub-grids. Only
	// meaningful with Approach == FlatOptimized.
	SplitGroups bool
	BatchSize   int
	BatchRamp   bool
	Params      Params
}

// Result reports one simulated configuration.
type Result struct {
	Time        float64 // seconds for all Applications
	Utilization float64 // useful compute time / (cores x wall)
	// InterNodeBytes is torus traffic leaving one node over the run.
	InterNodeBytes float64
	// IntraNodeBytes is MPI traffic between co-located ranks (VN mode).
	IntraNodeBytes float64
	// Messages is the number of MPI messages sent by one node.
	Messages float64
	// LargestMsg/SmallestMsg bound observed message sizes in bytes.
	LargestMsg, SmallestMsg int64
	// ComputePerCore is the useful compute seconds per core.
	ComputePerCore float64
	// Layout echoes the decomposition used.
	RankGrid, NodeGrid topology.Dims
	Torus              bool
	LocalDims          topology.Dims
}

// CommPerNodeMB returns total MPI bytes per node in megabytes, the
// quantity on Figure 6's right axis.
func (r Result) CommPerNodeMB() float64 {
	return (r.InterNodeBytes + r.IntraNodeBytes) / 1e6
}

// buildLayout maps the configuration onto nodes, ranks and sub-domains.
func buildLayout(w Workload, cfg Config) (layout, error) {
	var lay layout
	cores := cfg.Cores
	if cores < 1 {
		return lay, fmt.Errorf("bgpsim: %d cores", cores)
	}
	if cores > CoresPerNode && cores%CoresPerNode != 0 {
		return lay, fmt.Errorf("bgpsim: %d cores not a multiple of %d", cores, CoresPerNode)
	}
	hybridLike := cfg.Approach.Hybrid() || cfg.SplitGroups
	if hybridLike {
		nodes := 1
		threads := cores
		if cores > CoresPerNode {
			nodes = cores / CoresPerNode
			threads = CoresPerNode
		}
		lay.rankGrid = topology.DecomposeGrid(nodes, w.GridSize)
		lay.nodeGrid = lay.rankGrid
		lay.intra = topology.Dims{1, 1, 1}
		lay.ranksNode = threads
	} else {
		ranksPerNode := cores
		if ranksPerNode > CoresPerNode {
			ranksPerNode = CoresPerNode
		}
		lay.rankGrid = topology.DecomposeGrid(cores, w.GridSize)
		intra, err := bestIntraDims(ranksPerNode, lay.rankGrid, w.GridSize)
		if err != nil {
			return lay, err
		}
		lay.intra = intra
		for d := 0; d < 3; d++ {
			lay.nodeGrid[d] = lay.rankGrid[d] / intra[d]
		}
		lay.ranksNode = ranksPerNode
	}
	lay.net = Partition(lay.nodeGrid)
	lay.local = topology.SubdomainSize(w.GridSize, lay.rankGrid, topology.Coord{0, 0, 0})
	for d := 0; d < 3; d++ {
		if lay.rankGrid[d] > 1 && w.GridSize[d]/lay.rankGrid[d] < w.Radius {
			return lay, fmt.Errorf("bgpsim: sub-domain thinner than halo in dim %d (%v over %v)",
				d, w.GridSize, lay.rankGrid)
		}
	}
	return lay, nil
}

// bestIntraDims factors ranksPerNode into a 3-D block that divides the
// rank grid, choosing the factorization that keeps the node's combined
// sub-domain closest to cubic (minimizing inter-node surface), which is
// what BGP's reordered Cartesian mapping achieves in virtual mode.
func bestIntraDims(ranksPerNode int, rankGrid, g topology.Dims) (topology.Dims, error) {
	best := topology.Dims{}
	bestScore := -1.0
	for x := 1; x <= ranksPerNode; x++ {
		if ranksPerNode%x != 0 || rankGrid[0]%x != 0 {
			continue
		}
		rest := ranksPerNode / x
		for y := 1; y <= rest; y++ {
			if rest%y != 0 || rankGrid[1]%y != 0 {
				continue
			}
			z := rest / y
			if rankGrid[2]%z != 0 {
				continue
			}
			// Node block extents; smaller surface is better.
			sx := float64(g[0]) / float64(rankGrid[0]/x)
			sy := float64(g[1]) / float64(rankGrid[1]/y)
			sz := float64(g[2]) / float64(rankGrid[2]/z)
			surface := 2 * (sx*sy + sy*sz + sx*sz)
			if bestScore < 0 || surface < bestScore {
				bestScore = surface
				best = topology.Dims{x, y, z}
			}
		}
	}
	if bestScore < 0 {
		return best, fmt.Errorf("bgpsim: cannot place %d ranks per node onto rank grid %v", ranksPerNode, rankGrid)
	}
	return best, nil
}

// Simulate runs one configuration on the representative-node model and
// returns its predicted performance.
func Simulate(w Workload, cfg Config) (Result, error) {
	w = w.withDefaults()
	if w.NumGrids < 1 {
		return Result{}, fmt.Errorf("bgpsim: %d grids", w.NumGrids)
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	lay, err := buildLayout(w, cfg)
	if err != nil {
		return Result{}, err
	}
	prm := cfg.Params
	if prm == (Params{}) {
		prm = DefaultParams()
	}

	k := sim.NewKernel()
	nd := newNode(k, prm, lay)

	active := cfg.Cores
	if active > CoresPerNode {
		active = CoresPerNode
	}
	tpp := prm.PointTime(w.FlopsPerPoint(), 16, active)
	localPoints := lay.local.Count()
	opts := core.OptionsFor(cfg.Approach, cfg.BatchSize, CoresPerNode)
	opts.BatchRamp = cfg.BatchRamp

	// Build the simulated ranks/threads and their grid shares.
	type share struct {
		r     *simRank
		grids int
	}
	var shares []share
	switch {
	case cfg.SplitGroups:
		groups := lay.ranksNode
		for i := 0; i < groups; i++ {
			r := &simRank{nd: nd, idx: i, multiple: false}
			nd.ranks = append(nd.ranks, r)
			_, n := topology.Split(w.NumGrids, groups, i)
			shares = append(shares, share{r, n})
		}
	case cfg.Approach == core.HybridMultiple:
		for i := 0; i < lay.ranksNode; i++ {
			r := &simRank{nd: nd, idx: i, multiple: true}
			nd.ranks = append(nd.ranks, r)
			_, n := topology.Split(w.NumGrids, lay.ranksNode, i)
			shares = append(shares, share{r, n})
		}
	case cfg.Approach == core.HybridMasterOnly:
		r := &simRank{nd: nd, idx: 0, multiple: false}
		nd.ranks = append(nd.ranks, r)
		shares = append(shares, share{r, w.NumGrids})
	default: // flat layouts: every rank owns a piece of every grid
		for i := 0; i < lay.ranksNode; i++ {
			r := &simRank{nd: nd, idx: i, intraPos: lay.intra.Coord(i), multiple: false}
			nd.ranks = append(nd.ranks, r)
			shares = append(shares, share{r, w.NumGrids})
		}
	}

	// faceBytes[dim] per grid in one direction.
	var faceBytes [3]int64
	for d := 0; d < 3; d++ {
		faceBytes[d] = topology.HaloBytes(lay.local, d, w.Radius, w.Elem)
	}
	// commDim[dim] reports whether dimension d crosses rank boundaries.
	var commDim [3]bool
	for d := 0; d < 3; d++ {
		commDim[d] = lay.rankGrid[d] > 1
	}

	for _, sh := range shares {
		sh := sh
		k.Spawn(fmt.Sprintf("rank%d", sh.r.idx), func(p *sim.Proc) {
			runProtocol(p, nd, sh.r, sh.grids, cfg, opts, tpp, localPoints, faceBytes, commDim)
		})
	}
	wall := k.Run()
	if wall <= 0 {
		wall = 1e-12
	}

	apps := float64(w.Applications)
	res := Result{
		Time:           wall * apps,
		Utilization:    nd.useful / (float64(active) * wall),
		InterNodeBytes: nd.interBytes.Total() * apps,
		IntraNodeBytes: nd.intraBytes.Total() * apps,
		Messages:       nd.messages.Total() * apps,
		LargestMsg:     nd.largest,
		SmallestMsg:    nd.smallest,
		ComputePerCore: nd.useful / float64(active) * apps,
		RankGrid:       lay.rankGrid,
		NodeGrid:       lay.nodeGrid,
		Torus:          lay.net.Torus,
		LocalDims:      lay.local,
	}
	return res, nil
}

// runProtocol enacts one application of the configured exchange +
// compute protocol for one rank or thread owning `grids` grids.
func runProtocol(p *sim.Proc, nd *node, r *simRank, grids int,
	cfg Config, opts core.Options, tpp float64, localPoints int,
	faceBytes [3]int64, commDim [3]bool) {

	if grids == 0 {
		return
	}
	batches := core.MakeBatches(grids, opts.BatchSize, opts.BatchRamp)
	prm := nd.prm

	packBatch := func(n int) {
		// Pack the six face buffers of n grids (CPU copies).
		for d := 0; d < 3; d++ {
			if !commDim[d] {
				continue
			}
			r.copyCost(p, 2*faceBytes[d]*int64(n))
		}
	}
	unpackBatch := func(n int) {
		for d := 0; d < 3; d++ {
			if !commDim[d] {
				continue
			}
			r.copyCost(p, 2*faceBytes[d]*int64(n))
		}
	}
	localWrap := func(n int) {
		// Undivided periodic dimensions wrap locally: one copy per face.
		for d := 0; d < 3; d++ {
			if commDim[d] {
				continue
			}
			r.copyCost(p, 2*faceBytes[d]*int64(n))
		}
	}
	start := func(n int) {
		packBatch(n)
		for d := 0; d < 3; d++ {
			if !commDim[d] {
				continue
			}
			r.postRecv(p)
			r.postRecv(p)
			r.sendFace(p, d, 0, faceBytes[d]*int64(n))
			r.sendFace(p, d, 1, faceBytes[d]*int64(n))
		}
	}
	finish := func(n int) {
		for d := 0; d < 3; d++ {
			if !commDim[d] {
				continue
			}
			r.awaitFace(p, d, 0)
			r.awaitFace(p, d, 1)
		}
		unpackBatch(n)
		localWrap(n)
	}
	serialized := func(n int) {
		for d := 0; d < 3; d++ {
			if !commDim[d] {
				continue
			}
			r.copyCost(p, 2*faceBytes[d]*int64(n)) // pack this dimension
			r.postRecv(p)
			r.postRecv(p)
			r.sendFace(p, d, 0, faceBytes[d]*int64(n))
			r.sendFace(p, d, 1, faceBytes[d]*int64(n))
			r.awaitFace(p, d, 0)
			r.awaitFace(p, d, 1)
			r.copyCost(p, 2*faceBytes[d]*int64(n)) // unpack before next dim
		}
		localWrap(n)
	}
	active := cfg.Cores
	if active > CoresPerNode {
		active = CoresPerNode
	}
	computeBatch := func(n int) {
		for g := 0; g < n; g++ {
			if cfg.Approach == core.HybridMasterOnly {
				nd.forkJoinCompute(p, localPoints, tpp, active)
			} else {
				nd.compute(p, localPoints, tpp)
			}
		}
	}

	switch {
	case opts.Exchange == core.ExchangeSerialized:
		for _, b := range batches {
			serialized(b.Size())
			computeBatch(b.Size())
		}
	case !opts.DoubleBuffer:
		for _, b := range batches {
			start(b.Size())
			finish(b.Size())
			computeBatch(b.Size())
		}
	default:
		start(batches[0].Size())
		for bi := range batches {
			if bi+1 < len(batches) {
				start(batches[bi+1].Size())
			}
			finish(batches[bi].Size())
			computeBatch(batches[bi].Size())
		}
	}

	if cfg.Approach == core.HybridMultiple {
		p.Hold(prm.JoinOnce)
	}
}
