package bgpsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func TestTableIConstants(t *testing.T) {
	// The machine constants must match Table I of the paper.
	if CoresPerNode != 4 {
		t.Fatal("four PowerPC 450 cores per node")
	}
	if ClockHz != 850e6 {
		t.Fatal("850 MHz clock")
	}
	if L1Bytes != 64<<10 || L3Bytes != 8<<20 || MemoryBytes != 2<<30 {
		t.Fatal("cache/memory sizes")
	}
	if MemBandwidth != 13.6e9 || PeakFlopsNode != 13.6e9 {
		t.Fatal("memory bandwidth / peak flops")
	}
	if LinkBandwidth != 425e6 || NumLinks != 6 {
		t.Fatal("torus link bandwidth")
	}
	// Table I: torus bandwidth 6 x 2 x 425 MB/s = 5.1 GB/s; the 6x2
	// counts both directions of six links.
	if agg := 6 * 2 * LinkBandwidth; agg != 5.1e9 {
		t.Fatalf("aggregate torus bandwidth = %g", agg)
	}
}

func TestBandwidthCurveMatchesFigure2(t *testing.T) {
	p := DefaultParams()
	asym := p.EffLinkBandwidth()
	// Asymptote in the 350-400 MB/s range the measured curve approaches.
	if asym < 350e6 || asym > 400e6 {
		t.Fatalf("asymptotic bandwidth %g outside Figure 2 range", asym)
	}
	// Half the asymptotic bandwidth near 10^3 bytes (paper's reading).
	half := p.Bandwidth(1000)
	if half < 0.35*asym || half > 0.65*asym {
		t.Fatalf("bandwidth at 1 KB = %.0f MB/s, want about half of %.0f MB/s",
			half/1e6, asym/1e6)
	}
	// Saturation above 10^5 bytes.
	if sat := p.Bandwidth(1e6); sat < 0.95*asym {
		t.Fatalf("bandwidth at 1 MB = %.0f MB/s, not saturated", sat/1e6)
	}
	// Tiny messages are latency-dominated.
	if tiny := p.Bandwidth(1); tiny > 0.01*asym {
		t.Fatalf("1-byte bandwidth %.2f MB/s too high", tiny/1e6)
	}
	// Monotone non-decreasing in message size.
	prev := 0.0
	for s := int64(1); s <= 1e7; s *= 10 {
		bw := p.Bandwidth(s)
		if bw < prev {
			t.Fatalf("bandwidth not monotone at %d bytes", s)
		}
		prev = bw
	}
}

func TestMessageTimeClosedForm(t *testing.T) {
	p := DefaultParams()
	n := int64(100000)
	want := p.DMAPerMsg + float64(n)/p.EffLinkBandwidth() + p.MsgLatency
	if got := p.MessageTime(n, 1); math.Abs(got-want) > 1e-15 {
		t.Fatalf("MessageTime = %g, want %g", got, want)
	}
	// Extra hops add HopLatency each.
	if d := p.MessageTime(n, 4) - p.MessageTime(n, 1); math.Abs(d-3*p.HopLatency) > 1e-15 {
		t.Fatalf("hop latency delta = %g", d)
	}
	// Hops below 1 clamp.
	if p.MessageTime(n, 0) != p.MessageTime(n, 1) {
		t.Fatal("hop clamp failed")
	}
}

func TestPointTimeRegimes(t *testing.T) {
	p := DefaultParams()
	// The 13-point stencil (25 flops, 16 bytes) is compute-bound on this
	// machine at any core count.
	if p.PointTime(25, 16, 4) != p.PointTime(25, 16, 1) {
		t.Fatal("13-point stencil should be compute-bound at 4 cores")
	}
	// A hypothetical 1-flop, 64-byte kernel is memory-bound with 4
	// active cores (64*4/13.6e9 > 1/(eff*3.4e9)).
	if p.PointTime(1, 64, 4) <= p.PointTime(1, 64, 1) {
		t.Fatal("memory-bound kernel should slow with active cores")
	}
	// Clamping.
	if p.PointTime(25, 16, 0) != p.PointTime(25, 16, 1) {
		t.Fatal("active clamp low")
	}
	if p.PointTime(25, 16, 99) != p.PointTime(25, 16, 4) {
		t.Fatal("active clamp high")
	}
}

func TestMemoryConstraints(t *testing.T) {
	// Figure 5's constraint: 32 grids of 144^3 (with input and output
	// copies) fit one node's 2 GB for the single-core baseline, 64 grids
	// do not.
	per := int64(144*144*144*8) * 2 // src + dst
	if !MemoryNodeOK(32 * per) {
		t.Fatal("32 grids of 144^3 should fit a 2 GB node")
	}
	if MemoryNodeOK(64 * per) {
		t.Fatal("64 grids of 144^3 should not fit a 2 GB node")
	}
	// Virtual mode gives each core a quarter of the node.
	if !MemoryPerCoreOK(8 * per) {
		t.Fatal("8 grids per core should fit 512 MB")
	}
	if MemoryPerCoreOK(16 * per) {
		t.Fatal("16 grids per core should not fit 512 MB")
	}
}

func TestPartitionTorusThreshold(t *testing.T) {
	if Partition(topology.Dims{8, 8, 8}).Torus != true {
		t.Fatal("512 nodes must form a torus")
	}
	if Partition(topology.Dims{8, 8, 4}).Torus != false {
		t.Fatal("256 nodes must form a mesh")
	}
}

func fig6Workload(grids int) Workload {
	return Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: grids}
}

func TestBuildLayoutFlatVsHybrid(t *testing.T) {
	w := fig6Workload(16384).withDefaults()
	flat, err := buildLayout(w, Config{Cores: 16384, Approach: core.FlatOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if flat.rankGrid.Count() != 16384 {
		t.Fatalf("flat rank grid %v", flat.rankGrid)
	}
	if flat.intra.Count() != 4 || flat.ranksNode != 4 {
		t.Fatalf("flat intra %v ranksNode %d", flat.intra, flat.ranksNode)
	}
	if flat.nodeGrid.Count() != 4096 {
		t.Fatalf("flat node grid %v", flat.nodeGrid)
	}
	if !flat.net.Torus {
		t.Fatal("4096 nodes must be a torus")
	}

	hyb, err := buildLayout(w, Config{Cores: 16384, Approach: core.HybridMultiple})
	if err != nil {
		t.Fatal(err)
	}
	if hyb.rankGrid.Count() != 4096 || hyb.nodeGrid != hyb.rankGrid {
		t.Fatalf("hybrid grids %v/%v", hyb.rankGrid, hyb.nodeGrid)
	}
	if hyb.local != (topology.Dims{12, 12, 12}) {
		t.Fatalf("hybrid local = %v, want 12^3", hyb.local)
	}
	// Flat sub-domains are 4x smaller.
	if flat.local.Count()*4 != hyb.local.Count() {
		t.Fatalf("flat local %v vs hybrid %v", flat.local, hyb.local)
	}
}

func TestBuildLayoutErrors(t *testing.T) {
	w := fig6Workload(128).withDefaults()
	if _, err := buildLayout(w, Config{Cores: 0}); err == nil {
		t.Fatal("0 cores accepted")
	}
	if _, err := buildLayout(w, Config{Cores: 6}); err == nil {
		t.Fatal("6 cores (not multiple of 4) accepted")
	}
	// Over-decomposition: sub-domains thinner than the halo.
	tiny := Workload{GridSize: topology.Dims{16, 16, 16}, NumGrids: 4}.withDefaults()
	if _, err := buildLayout(tiny, Config{Cores: 16384, Approach: core.FlatOptimized}); err == nil {
		t.Fatal("over-decomposed layout accepted")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(Workload{GridSize: topology.Dims{32, 32, 32}}, Config{Cores: 4}); err == nil {
		t.Fatal("zero grids accepted")
	}
	if _, err := Simulate(fig6Workload(8), Config{Cores: 10}); err == nil {
		t.Fatal("bad core count accepted")
	}
}

func TestSimulateSingleCoreIsComputeDominated(t *testing.T) {
	w := Workload{GridSize: topology.Dims{64, 64, 64}, NumGrids: 8}
	r, err := Simulate(w, Config{Cores: 1, Approach: core.FlatOriginal, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	compute := float64(8*64*64*64) * p.PointTime(25, 16, 1)
	if r.Time < compute {
		t.Fatalf("wall %g below pure compute %g", r.Time, compute)
	}
	if r.Utilization < 0.9 {
		t.Fatalf("single-core utilization %.2f, want >0.9", r.Utilization)
	}
	if r.InterNodeBytes != 0 {
		t.Fatal("single core should not use the torus")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	w := fig6Workload(256)
	cfg := Config{Cores: 256, Approach: core.HybridMultiple, BatchSize: 8, BatchRamp: true}
	a, err := Simulate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestSimulateApplicationsScaleLinearly(t *testing.T) {
	w := fig6Workload(64)
	w.Applications = 1
	cfg := Config{Cores: 64, Approach: core.FlatOptimized, BatchSize: 4}
	one, err := Simulate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Applications = 7
	seven, err := Simulate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seven.Time-7*one.Time) > 1e-9*seven.Time {
		t.Fatalf("applications scaling: %g vs 7*%g", seven.Time, one.Time)
	}
	if seven.Messages != 7*one.Messages || seven.InterNodeBytes != 7*one.InterNodeBytes {
		t.Fatal("traffic must scale with applications")
	}
	if seven.Utilization != one.Utilization {
		t.Fatal("utilization must be application-invariant")
	}
}

func TestInterNodeBytesMatchSurfaceAnalysis(t *testing.T) {
	// Hybrid at 16384 cores: 4096 nodes, 12^3 sub-domains, halo 2:
	// 16384 grids x 6 faces x 2x12x12x8 bytes = 226.5 MB per node.
	r, err := Simulate(fig6Workload(16384), Config{Cores: 16384, Approach: core.HybridMultiple, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(16384) * 6 * 2 * 12 * 12 * 8
	if math.Abs(r.InterNodeBytes-want) > 1e-6*want {
		t.Fatalf("inter-node bytes %.0f, want %.0f", r.InterNodeBytes, want)
	}
	if r.IntraNodeBytes != 0 {
		t.Fatal("hybrid multiple has no intra-node MPI traffic")
	}
}

func TestHeadline16kCores(t *testing.T) {
	// The paper's headline: at 16384 cores the tuned hybrid approach is
	// 1.94x faster than the original, utilization 36% -> 70%; the hybrid
	// is ~10% faster than the equally optimized flat code; and the
	// split-groups control performs identically to hybrid multiple.
	w := fig6Workload(16384)
	orig, err := Simulate(w, Config{Cores: 16384, Approach: core.FlatOriginal, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Simulate(w, Config{Cores: 16384, Approach: core.FlatOptimized, BatchSize: 64, BatchRamp: true})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Simulate(w, Config{Cores: 16384, Approach: core.HybridMultiple, BatchSize: 64, BatchRamp: true})
	if err != nil {
		t.Fatal(err)
	}
	split, err := Simulate(w, Config{Cores: 16384, Approach: core.FlatOptimized, SplitGroups: true, BatchSize: 64, BatchRamp: true})
	if err != nil {
		t.Fatal(err)
	}

	ratio := orig.Time / hyb.Time
	if ratio < 1.7 || ratio < 1 || ratio > 2.3 {
		t.Fatalf("headline improvement %.2fx, want ~1.94x", ratio)
	}
	if orig.Utilization < 0.28 || orig.Utilization > 0.44 {
		t.Fatalf("flat original utilization %.1f%%, want ~36%%", orig.Utilization*100)
	}
	if hyb.Utilization < 0.62 || hyb.Utilization > 0.78 {
		t.Fatalf("hybrid utilization %.1f%%, want ~70%%", hyb.Utilization*100)
	}
	// Hybrid beats the equally optimized flat code by a modest margin.
	if hyb.Time >= opt.Time {
		t.Fatal("hybrid multiple should beat flat optimized at 16k cores")
	}
	if adv := opt.Time / hyb.Time; adv > 1.35 {
		t.Fatalf("hybrid advantage over flat optimized %.2fx, paper reports ~1.10x", adv)
	}
	// Section VII control experiment: performance identical to hybrid.
	if d := math.Abs(split.Time-hyb.Time) / hyb.Time; d > 0.05 {
		t.Fatalf("split-groups control differs from hybrid by %.1f%%, want ~0", d*100)
	}
	// Communication per node: flat > hybrid, as in Figure 6's right axis.
	flatComm := opt.InterNodeBytes + opt.IntraNodeBytes
	hybComm := hyb.InterNodeBytes + hyb.IntraNodeBytes
	if flatComm <= hybComm {
		t.Fatal("flat communication per node should exceed hybrid")
	}
}

func TestMasterOnlySyncPenaltyGrowsWithGrids(t *testing.T) {
	// The master-only approach synchronizes per grid; its gap to hybrid
	// multiple must widen as grids increase (section VI/VII).
	gap := func(grids int) float64 {
		w := fig6Workload(grids)
		m, err := Simulate(w, Config{Cores: 256, Approach: core.HybridMasterOnly, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		h, err := Simulate(w, Config{Cores: 256, Approach: core.HybridMultiple, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		return m.Time - h.Time
	}
	if g1, g2 := gap(64), gap(512); g2 <= g1 {
		t.Fatalf("master-only penalty did not grow with grids: %g vs %g", g1, g2)
	}
}

func TestBatchingHelpsHybridMoreThanFlat(t *testing.T) {
	// Figure 5's observation: the advantage of batching is greater in
	// hybrid multiple than in flat optimized.
	w := Workload{GridSize: topology.Dims{144, 144, 144}, NumGrids: 32}
	run := func(a core.Approach, batch int) float64 {
		r, err := Simulate(w, Config{Cores: 4096, Approach: a, BatchSize: batch, BatchRamp: batch > 1})
		if err != nil {
			t.Fatal(err)
		}
		return r.Time
	}
	flatGain := run(core.FlatOptimized, 1) / run(core.FlatOptimized, 8)
	hybGain := run(core.HybridMultiple, 1) / run(core.HybridMultiple, 8)
	if hybGain <= 1 {
		t.Fatalf("batching should speed up hybrid multiple (gain %.3f)", hybGain)
	}
	if hybGain <= flatGain {
		t.Fatalf("batching advantage: hybrid %.3f <= flat %.3f", hybGain, flatGain)
	}
}

func TestAsyncBeatsSerializedExchange(t *testing.T) {
	// Section V's first optimization in isolation: flat optimized with
	// batch 1 (async, overlapped) vs flat original (serialized).
	w := fig6Workload(2048)
	orig, err := Simulate(w, Config{Cores: 2048, Approach: core.FlatOriginal, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	async, err := Simulate(w, Config{Cores: 2048, Approach: core.FlatOptimized, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if async.Time >= orig.Time {
		t.Fatalf("async exchange (%.3fs) should beat serialized (%.3fs)", async.Time, orig.Time)
	}
}

func TestMeshPenalty(t *testing.T) {
	// Below 512 nodes the partition is a mesh; with the pass-through
	// penalty enabled the same configuration must not get faster.
	w := fig6Workload(256)
	pOn := DefaultParams()
	pOff := pOn
	pOff.MeshSharePenalty = false
	on, err := Simulate(w, Config{Cores: 1024, Approach: core.FlatOptimized, BatchSize: 8, Params: pOn})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Simulate(w, Config{Cores: 1024, Approach: core.FlatOptimized, BatchSize: 8, Params: pOff})
	if err != nil {
		t.Fatal(err)
	}
	if on.Time < off.Time {
		t.Fatalf("mesh penalty made things faster: %g < %g", on.Time, off.Time)
	}
	// At >= 512 nodes (torus) the flag must not matter.
	w2 := fig6Workload(4096)
	on2, _ := Simulate(w2, Config{Cores: 4096, Approach: core.HybridMultiple, BatchSize: 8, Params: pOn})
	off2, _ := Simulate(w2, Config{Cores: 4096, Approach: core.HybridMultiple, BatchSize: 8, Params: pOff})
	if on2.Time != off2.Time {
		t.Fatal("mesh penalty affected a torus partition")
	}
}

func TestGustafsonOrderingAtScale(t *testing.T) {
	// Figure 6's ordering from 2048 cores up: hybrid multiple fastest,
	// then flat optimized, then the per-grid-synchronizing and
	// serialized variants.
	w := fig6Workload(2048)
	times := map[core.Approach]float64{}
	for _, a := range core.Approaches {
		batch := 16
		if a == core.FlatOriginal {
			batch = 1
		}
		r, err := Simulate(w, Config{Cores: 2048, Approach: a, BatchSize: batch, BatchRamp: batch > 1})
		if err != nil {
			t.Fatal(err)
		}
		times[a] = r.Time
	}
	if !(times[core.HybridMultiple] < times[core.FlatOptimized]) {
		t.Fatalf("hybrid %.4f should beat flat optimized %.4f", times[core.HybridMultiple], times[core.FlatOptimized])
	}
	if !(times[core.FlatOptimized] < times[core.FlatOriginal]) {
		t.Fatalf("flat optimized %.4f should beat flat original %.4f", times[core.FlatOptimized], times[core.FlatOriginal])
	}
	if !(times[core.FlatOptimized] < times[core.HybridMasterOnly]) {
		t.Fatalf("flat optimized %.4f should beat master-only %.4f", times[core.FlatOptimized], times[core.HybridMasterOnly])
	}
}

func TestFig7LargeJobSpeedup(t *testing.T) {
	// Figure 7: 2816 grids of 192^3; from 1k to 16k cores the hybrid
	// multiple approach reaches ~16.5x the original's 1k-core time, and
	// ~12x its own 1k-core time (16 would be linear).
	w := Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: 2816}
	base, err := Simulate(w, Config{Cores: 1024, Approach: core.FlatOriginal, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	hyb1k, err := Simulate(w, Config{Cores: 1024, Approach: core.HybridMultiple, BatchSize: 16, BatchRamp: true})
	if err != nil {
		t.Fatal(err)
	}
	hyb16k, err := Simulate(w, Config{Cores: 16384, Approach: core.HybridMultiple, BatchSize: 16, BatchRamp: true})
	if err != nil {
		t.Fatal(err)
	}
	vsOrig := base.Time / hyb16k.Time
	if vsOrig < 13 || vsOrig > 24 {
		t.Fatalf("16k hybrid vs 1k original = %.1fx, paper reports ~16.5x", vsOrig)
	}
	vsSelf := hyb1k.Time / hyb16k.Time
	if vsSelf < 9 || vsSelf > 16 {
		t.Fatalf("16k hybrid vs 1k hybrid = %.1fx, paper reports ~12x (16 linear)", vsSelf)
	}
}

func TestResultCommPerNodeMB(t *testing.T) {
	r := Result{InterNodeBytes: 3e6, IntraNodeBytes: 1.5e6}
	if got := r.CommPerNodeMB(); got != 4.5 {
		t.Fatalf("CommPerNodeMB = %g", got)
	}
}

func TestWorkloadDefaults(t *testing.T) {
	w := Workload{GridSize: topology.Dims{8, 8, 8}, NumGrids: 1}.withDefaults()
	if w.Radius != 2 || w.Elem != 8 || w.Applications != 1 {
		t.Fatalf("defaults = %+v", w)
	}
	if w.FlopsPerPoint() != 25 {
		t.Fatalf("flops per point = %d", w.FlopsPerPoint())
	}
}

func TestBestIntraDims(t *testing.T) {
	// 4 ranks per node on a 32x32x16 rank grid: the best placement
	// splits the two long dimensions (2x2x1).
	intra, err := bestIntraDims(4, topology.Dims{32, 32, 16}, topology.Dims{192, 192, 192})
	if err != nil {
		t.Fatal(err)
	}
	if intra.Count() != 4 {
		t.Fatalf("intra %v", intra)
	}
	if intra[2] == 4 {
		t.Fatalf("intra %v should prefer balanced split", intra)
	}
	// Impossible placement: 4 ranks per node on a 3x1x1 grid.
	if _, err := bestIntraDims(4, topology.Dims{3, 1, 1}, topology.Dims{192, 8, 8}); err == nil {
		t.Fatal("unmappable intra dims accepted")
	}
}

func TestTreeLevels(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 512: 9, 4096: 12, 3000: 12}
	for n, want := range cases {
		if got := TreeLevels(n); got != want {
			t.Fatalf("TreeLevels(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCollectiveNetworkModel(t *testing.T) {
	p := DefaultParams()
	// Allreduce time grows with payload and (logarithmically) with nodes.
	small := p.AllreduceTime(64, 512)
	big := p.AllreduceTime(1<<20, 512)
	if big <= small {
		t.Fatal("larger payload should take longer")
	}
	few := p.AllreduceTime(1024, 64)
	many := p.AllreduceTime(1024, 4096)
	if many <= few {
		t.Fatal("more nodes should add tree levels")
	}
	// The hardware barrier is node-count independent and tiny.
	if p.BarrierTime(4096) != p.BarrierTime(512) {
		t.Fatal("hardware barrier should not depend on node count")
	}
	if p.BarrierTime(1) != 0 {
		t.Fatal("single-node barrier is free")
	}
	if p.BarrierTime(4096) > 10e-6 {
		t.Fatal("hardware barrier should be microseconds")
	}
	// Orthogonalization collective for 2816 states over 4096 nodes:
	// a 2816^2 matrix is ~63 MB; the tree moves it in well under a
	// second — small next to the FD compute, as the paper expects.
	tOrtho := p.OrthogonalizationCollectiveTime(2816, 4096)
	if tOrtho <= 0 || tOrtho > 1 {
		t.Fatalf("orthogonalization collective = %g s", tOrtho)
	}
}
