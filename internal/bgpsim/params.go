// Package bgpsim is a discrete-event performance model of Blue Gene/P
// running the paper's distributed finite-difference protocols at full
// machine scale (up to 16 384 cores), standing in for the 4-rack system
// the authors benchmarked.
//
// # Model
//
// Machine constants come from Table I of the paper. Free parameters of
// the cost model (per-message latency, posting cost, copy bandwidth,
// kernel efficiency, thread synchronization costs) are calibrated so the
// simulated Figure 2 bandwidth curve matches the paper's measured curve
// and the 16 384-core headline point reproduces the reported 1.94x
// improvement with CPU utilization near 36% (flat original) and 70%
// (hybrid multiple). All other points — core-count sweeps, batch-size
// sweeps, approach orderings, crossovers — are predictions of the model.
//
// # Symmetric-node simulation
//
// With periodic boundaries, a torus partition, and a uniform
// decomposition, every node executes an identical timeline. The
// simulator therefore runs one representative node in full detail (its
// cores, its six torus links, its DMA engine, its intra-node traffic)
// and closes the boundary by symmetry: the message a node receives from
// its -x neighbour is the mirror image of the message it sends to its +x
// neighbour, so the arrival time of an incoming message equals the
// arrival time of the corresponding outgoing one. Mesh partitions
// (< 512 nodes, section V) break exact symmetry; they are modelled
// pessimistically from the wrap-around corner node's perspective:
// periodic wrap messages travel Dims-1 hops and share link bandwidth
// with pass-through traffic.
package bgpsim

import "repro/internal/topology"

// Machine constants from Table I of the paper.
const (
	// CoresPerNode is the number of PowerPC 450 cores per node.
	CoresPerNode = 4
	// ClockHz is the PowerPC 450 clock rate.
	ClockHz = 850e6
	// L1Bytes is the per-core L1 data cache size.
	L1Bytes = 64 << 10
	// L3Bytes is the shared L3 cache size.
	L3Bytes = 8 << 20
	// MemoryBytes is main memory per node.
	MemoryBytes = 2 << 30
	// MemBandwidth is main-memory bandwidth per node in bytes/s.
	MemBandwidth = 13.6e9
	// PeakFlopsNode is the node's peak double-precision rate.
	PeakFlopsNode = 13.6e9
	// LinkBandwidth is the raw torus link bandwidth per direction in
	// bytes/s (425 MB/s; six links give the 5.1 GB/s aggregate of
	// Table I).
	LinkBandwidth = 425e6
	// NumLinks is the number of torus links per node (and directions).
	NumLinks = 6
)

// Params are the calibrated free parameters of the cost model.
type Params struct {
	// PacketEfficiency is the payload fraction of a torus packet (256-
	// byte packets with protocol overhead); it sets the asymptote of the
	// Figure 2 curve at LinkBandwidth*PacketEfficiency ~ 372 MB/s.
	PacketEfficiency float64
	// MsgLatency is the one-way end-to-end latency of a nearest-
	// neighbour message (software + network). It locates the knee of
	// Figure 2: half bandwidth at MsgLatency * effective link bandwidth
	// ~ 1 KB.
	MsgLatency float64
	// HopLatency is the extra latency per additional torus hop.
	HopLatency float64
	// PostCost is CPU time to post one non-blocking send or receive.
	PostCost float64
	// MultipleLock is the extra serialized CPU cost per MPI call in
	// MULTIPLE thread mode (the lock the paper mentions in III.A).
	MultipleLock float64
	// DMAPerMsg is the DMA injection engine's per-message processing
	// time; the engine serializes injections node-wide.
	DMAPerMsg float64
	// CopyBandwidth is one core's streaming copy bandwidth, used for
	// halo pack/unpack (read + write counted separately).
	CopyBandwidth float64
	// IntraNodeBandwidth is the shared-memory MPI transfer bandwidth
	// between ranks co-located on a node in virtual mode.
	IntraNodeBandwidth float64
	// IntraNodeLatency is the latency of an intra-node MPI message.
	IntraNodeLatency float64
	// KernelEff is the fraction of per-core peak the stencil kernel
	// achieves when compute-bound (PowerPC 450 without hand-tuned SIMD).
	KernelEff float64
	// ForkJoin is the cost of one fork-join barrier across the node's
	// four threads (hybrid master-only pays this per grid).
	ForkJoin float64
	// JoinOnce is the cost of the single final join in hybrid multiple.
	JoinOnce float64
	// MeshSharePenalty halves effective link bandwidth in mesh
	// partitions (< 512 nodes) where wrap-around flows pass through
	// every link of a dimension (true enables the penalty).
	MeshSharePenalty bool
}

// DefaultParams returns the calibrated model (see EXPERIMENTS.md for the
// calibration narrative).
func DefaultParams() Params {
	return Params{
		PacketEfficiency:   0.875, // 256-byte packets, 32 bytes overhead
		MsgLatency:         2.3e-6,
		HopLatency:         0.1e-6,
		PostCost:           0.3e-6,
		MultipleLock:       1.2e-6,
		DMAPerMsg:          0.15e-6,
		CopyBandwidth:      2.2e9,
		IntraNodeBandwidth: 3.0e9,
		IntraNodeLatency:   0.9e-6,
		KernelEff:          0.20,
		ForkJoin:           5.0e-6,
		JoinOnce:           6.0e-6,
		MeshSharePenalty:   true,
	}
}

// EffLinkBandwidth is the asymptotic per-link payload bandwidth.
func (p Params) EffLinkBandwidth() float64 { return LinkBandwidth * p.PacketEfficiency }

// PointTime returns the per-point stencil time on one core when
// `active` cores compute concurrently on the node: the maximum of the
// compute-bound and memory-bound estimates.
func (p Params) PointTime(flopsPerPoint, bytesPerPoint, active int) float64 {
	if active < 1 {
		active = 1
	}
	if active > CoresPerNode {
		active = CoresPerNode
	}
	flop := float64(flopsPerPoint) / (p.KernelEff * PeakFlopsNode / CoresPerNode)
	mem := float64(bytesPerPoint) * float64(active) / MemBandwidth
	if mem > flop {
		return mem
	}
	return flop
}

// MessageTime returns the modelled end-to-end time of one nearest-
// neighbour message of n bytes, excluding sender CPU costs: DMA
// injection, wire serialization and latency. Used by the Figure 2
// experiment and as a closed-form cross-check of the event simulation.
func (p Params) MessageTime(n int64, hops int) float64 {
	if hops < 1 {
		hops = 1
	}
	return p.DMAPerMsg + float64(n)/p.EffLinkBandwidth() + p.MsgLatency + float64(hops-1)*p.HopLatency
}

// Bandwidth returns the modelled point-to-point bandwidth (bytes/s) for
// message size n between neighbouring nodes — the quantity Figure 2
// plots — including the sender's posting cost, as an MPI-level
// benchmark would measure.
func (p Params) Bandwidth(n int64) float64 {
	t := p.PostCost + p.MessageTime(n, 1)
	return float64(n) / t
}

// MemoryPerCoreOK reports whether a per-core working set of the given
// bytes fits the 512 MB available to a core in virtual mode.
func MemoryPerCoreOK(bytes int64) bool { return bytes <= MemoryBytes/CoresPerNode }

// MemoryNodeOK reports whether a working set fits one node's 2 GB. The
// paper's Figure 5 job is capped at 32 grids because a single core (SMP
// mode, whole node memory) cannot hold more 144^3 input+output pairs.
func MemoryNodeOK(bytes int64) bool { return bytes <= MemoryBytes }

// Partition returns the node-count-determined network (torus at >= 512
// nodes, mesh below), with dims matching the given node grid.
func Partition(nodeDims topology.Dims) topology.Network {
	return topology.Network{Dims: nodeDims, Torus: nodeDims.Count() >= topology.TorusThresholdNodes}
}
