package bgpsim

import (
	"repro/internal/mpi"
	"repro/internal/topology"
)

// Bridge to the live transport's network model. internal/mpi sits below
// this package in the dependency order (bgpsim's protocol simulation
// imports internal/core, which is built on mpi), so mpi carries its own
// NetParams struct and the conversion lives here: the same Figure-2
// calibration that drives the discrete-event simulator prices every
// Send/Recv of the real in-process runtime.

// NetParams converts the calibrated cost model into the transport-level
// parameter set of internal/mpi's network model.
func (p Params) NetParams() mpi.NetParams {
	return mpi.NetParams{
		MsgLatency:         p.MsgLatency,
		HopLatency:         p.HopLatency,
		PostCost:           p.PostCost,
		MultipleLock:       p.MultipleLock,
		DMAPerMsg:          p.DMAPerMsg,
		LinkBandwidth:      p.EffLinkBandwidth(),
		IntraNodeLatency:   p.IntraNodeLatency,
		IntraNodeBandwidth: p.IntraNodeBandwidth,
		MeshSharePenalty:   p.MeshSharePenalty,
	}
}

// NetModelFor returns the default calibrated network model for an
// n-rank world: DefaultParams over the Blue Gene/P partition shape for
// n nodes (torus at >= 512), one rank per node in row-major order.
// Callers wanting a different placement overwrite Coords (see
// topology.MapGrid / MapBands) before arming the model.
func NetModelFor(n int) *mpi.NetModel {
	net := topology.PartitionFor(n)
	return &mpi.NetModel{
		Params: DefaultParams().NetParams(),
		Net:    net,
		Coords: topology.MapGrid(net.Dims, net, topology.MapLinear),
	}
}
