package bgpsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// future is a completion slot: the receiver of a message awaits it, the
// (possibly mirrored) sender sets its arrival time.
type future struct {
	ready bool
	at    float64
	sig   sim.Signal
}

func (f *future) set(k *sim.Kernel, at float64) {
	if f.ready {
		panic("bgpsim: future set twice")
	}
	f.ready = true
	f.at = at
	f.sig.Fire(k)
}

func (f *future) await(p *sim.Proc) {
	for !f.ready {
		p.WaitSignal(&f.sig)
	}
	p.HoldUntil(f.at)
}

// layout captures how ranks map onto the machine for one configuration.
type layout struct {
	rankGrid  topology.Dims // decomposition of every real-space grid
	nodeGrid  topology.Dims // nodes
	intra     topology.Dims // ranks per node, per dimension (flat/VN mode)
	net       topology.Network
	local     topology.Dims // representative (largest) sub-domain per rank
	ranksNode int           // ranks simulated on the node
}

// node is the simulated representative node: cores are implicit in the
// rank/thread processes; links, DMA and the MULTIPLE-mode lock are
// explicit FIFO resources.
type node struct {
	k     *sim.Kernel
	prm   Params
	lay   layout
	ranks []*simRank
	out   [3][2]*sim.Resource // outgoing link per dimension and direction
	dma   *sim.Resource
	intra *sim.Resource // shared-memory transfer engine
	lock  *sim.Resource // MPI MULTIPLE serialization

	// accounting
	interBytes *sim.Counter // bytes leaving the node on torus links
	intraBytes *sim.Counter // MPI bytes moved node-internally
	messages   *sim.Counter // messages sent by the node's ranks
	largest    int64
	smallest   int64
	useful     float64 // accumulated per-core useful compute time
}

func newNode(k *sim.Kernel, prm Params, lay layout) *node {
	nd := &node{k: k, prm: prm, lay: lay,
		dma:        sim.NewResource("dma"),
		intra:      sim.NewResource("intra"),
		lock:       sim.NewResource("mpilock"),
		interBytes: sim.NewCounter("interBytes"),
		intraBytes: sim.NewCounter("intraBytes"),
		messages:   sim.NewCounter("messages"),
	}
	for d := 0; d < 3; d++ {
		for s := 0; s < 2; s++ {
			nd.out[d][s] = sim.NewResource(fmt.Sprintf("link%d%d", d, s))
		}
	}
	return nd
}

// linkService returns the wire serialization time of n bytes on a torus
// link, applying the mesh pass-through penalty when active.
func (nd *node) linkService(n int64, dim int) float64 {
	bw := nd.prm.EffLinkBandwidth()
	if nd.prm.MeshSharePenalty && !nd.lay.net.Torus && nd.lay.nodeGrid[dim] > 2 {
		// In a mesh, the periodic wrap flow of the dimension passes
		// through every link of the row, effectively sharing bandwidth.
		bw /= 2
	}
	return float64(n) / bw
}

// simRank is one simulated MPI rank (flat) or thread (hybrid) on the
// representative node.
type simRank struct {
	nd       *node
	idx      int            // index among the node's ranks/threads
	intraPos topology.Coord // position inside the node's intra grid (flat)
	slots    [3][2][]*future
	sendSeq  [3][2]int
	recvSeq  [3][2]int
	multiple bool // pay the MULTIPLE lock on each post
}

// slot returns (extending as needed) the i-th completion slot for halos
// of (dim, side).
func (r *simRank) slot(dim, side, i int) *future {
	for len(r.slots[dim][side]) <= i {
		r.slots[dim][side] = append(r.slots[dim][side], &future{})
	}
	return r.slots[dim][side][i]
}

// post charges the CPU cost of posting one non-blocking operation.
func (r *simRank) post(p *sim.Proc) {
	if r.multiple {
		// The MULTIPLE lock serializes concurrent library calls
		// node-wide and burns CPU while held.
		p.Use(r.nd.lock, r.nd.prm.MultipleLock)
	}
	p.Hold(r.nd.prm.PostCost)
}

// copyCost charges the CPU for a pack or unpack of n bytes (one read and
// one write stream).
func (r *simRank) copyCost(p *sim.Proc, n int64) {
	p.Hold(2 * float64(n) / r.nd.prm.CopyBandwidth)
}

// sendFace models sending one halo message of n bytes toward `side` of
// dimension dim. It charges posting cost on the calling process,
// reserves DMA and link (or intra-node) capacity, computes the arrival
// time, and fulfils the completion slot of the mirrored receiver — the
// node-local rank standing in for the actual destination under
// translational symmetry.
func (r *simRank) sendFace(p *sim.Proc, dim int, side int, n int64) {
	nd := r.nd
	lay := &nd.lay
	r.post(p) // the matching receive's posting is charged by awaitFace
	seq := r.sendSeq[dim][side]
	r.sendSeq[dim][side]++

	// Where does the message go? Step the intra-node position.
	dir := +1
	if side == 0 { // Low
		dir = -1
	}
	target := r.intraPos
	target[dim] += dir
	inter := false
	wrappedNode := false
	if target[dim] < 0 || target[dim] >= lay.intra[dim] {
		// Crossing the node boundary.
		if lay.nodeGrid[dim] > 1 {
			inter = true
			wrappedNode = lay.nodeGrid[dim] > 1 && !lay.net.Torus
		}
		target[dim] = (target[dim] + lay.intra[dim]) % lay.intra[dim]
	}
	tgt := nd.rankAt(target, r.idx)

	var arrive float64
	if inter {
		dmaDone := nd.dma.Reserve(p.Now(), nd.prm.DMAPerMsg)
		linkDone := nd.out[dim][side].Reserve(dmaDone, nd.linkService(n, dim))
		hops := 1
		if wrappedNode && side == 0 {
			// The representative corner node's Low direction is the
			// periodic wrap: Dims-1 hops across the mesh.
			hops = lay.net.WrapHops(dim)
		}
		arrive = linkDone + nd.prm.MsgLatency + float64(hops-1)*nd.prm.HopLatency
		nd.interBytes.Add(float64(n))
	} else {
		done := nd.intra.Reserve(p.Now(), float64(n)/nd.prm.IntraNodeBandwidth)
		arrive = done + nd.prm.IntraNodeLatency
		nd.intraBytes.Add(float64(n))
	}
	nd.messages.Add(1)
	if n > nd.largest {
		nd.largest = n
	}
	if nd.smallest == 0 || n < nd.smallest {
		nd.smallest = n
	}
	// A message sent toward High lands in the receiver's Low halo and
	// vice versa.
	haloSide := 1 - side
	tgt.slot(dim, haloSide, seq).set(nd.k, arrive)
}

// awaitFace blocks the process until the next incoming halo message for
// (dim, side) has arrived, charging the receive posting cost.
func (r *simRank) awaitFace(p *sim.Proc, dim, side int) {
	seq := r.recvSeq[dim][side]
	r.recvSeq[dim][side]++
	r.slot(dim, side, seq).await(p)
}

// postRecv charges the CPU cost of posting the receive (done before the
// sends in the real protocol).
func (r *simRank) postRecv(p *sim.Proc) { r.post(p) }

// rankAt finds the node-local rank with the given intra position. For
// hybrid layouts (intra = 1x1x1) every thread maps to thread `self` —
// threads exchange only with their own mirrored image because each
// thread owns whole grids.
func (nd *node) rankAt(pos topology.Coord, self int) *simRank {
	if nd.lay.intra.Count() == 1 {
		return nd.ranks[self]
	}
	idx := nd.lay.intra.Rank(pos)
	return nd.ranks[idx]
}

// compute charges the stencil computation of `points` grid points on the
// calling process and books the useful work.
func (nd *node) compute(p *sim.Proc, points int, tpp float64) {
	t := float64(points) * tpp
	p.Hold(t)
	nd.useful += t
}

// forkJoinCompute models dividing one grid's computation across the
// node's active threads (hybrid master-only): wall time is the parallel
// share plus a fork-join barrier; all of the work is useful. With a
// single thread there is nobody to synchronize with and no barrier.
func (nd *node) forkJoinCompute(p *sim.Proc, points int, tpp float64, threads int) {
	work := float64(points) * tpp
	if threads <= 1 {
		p.Hold(work)
		nd.useful += work
		return
	}
	p.Hold(work/float64(threads) + nd.prm.ForkJoin)
	nd.useful += work
}
