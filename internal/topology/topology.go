// Package topology models the geometry used throughout the reproduction:
// 3-D torus and mesh interconnects (Blue Gene/P style), Cartesian
// process grids, dimension-ordered routing distances, and the
// surface-minimizing 3-D domain decompositions GPAW applies to its
// real-space grids.
package topology

import (
	"fmt"
	"math"
)

// Coord is an (x, y, z) coordinate in a 3-D process or node grid.
type Coord [3]int

// Dims holds the extent of a 3-D grid of processes or nodes.
type Dims [3]int

// Count returns the total number of points in the grid.
func (d Dims) Count() int { return d[0] * d[1] * d[2] }

// String renders dims as "XxYxZ".
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d[0], d[1], d[2]) }

// Rank converts a coordinate to a linear rank in row-major (x slowest)
// order, matching MPI_Cart_create's default ordering.
func (d Dims) Rank(c Coord) int {
	return (c[0]*d[1]+c[1])*d[2] + c[2]
}

// Coord converts a linear rank back to a coordinate.
func (d Dims) Coord(rank int) Coord {
	z := rank % d[2]
	rank /= d[2]
	y := rank % d[1]
	x := rank / d[1]
	return Coord{x, y, z}
}

// Valid reports whether c lies inside the grid.
func (d Dims) Valid(c Coord) bool {
	for i := 0; i < 3; i++ {
		if c[i] < 0 || c[i] >= d[i] {
			return false
		}
	}
	return true
}

// Network is a 3-D interconnect: a torus (wrap links present in every
// dimension) or a mesh (no wrap links). Blue Gene/P partitions smaller
// than 512 nodes can only form meshes; 512 nodes and above form tori.
type Network struct {
	Dims  Dims
	Torus bool
}

// TorusThresholdNodes is the smallest Blue Gene/P partition that forms a
// torus; smaller partitions are meshes.
const TorusThresholdNodes = 512

// NewNetwork builds a network of the given shape. torus selects wrap
// links.
func NewNetwork(d Dims, torus bool) Network { return Network{Dims: d, Torus: torus} }

// PartitionFor returns the Blue Gene/P partition used for n nodes: a
// near-cubic shape, wired as a torus when n >= TorusThresholdNodes.
// It panics if n < 1.
func PartitionFor(n int) Network {
	if n < 1 {
		panic(fmt.Sprintf("topology: partition of %d nodes", n))
	}
	return Network{Dims: BalancedDims(n), Torus: n >= TorusThresholdNodes}
}

// Neighbor returns the coordinate one step from c along dimension dim in
// direction dir (+1 or -1), and whether that step used a wrap-around
// link. In a mesh, stepping off the edge returns ok=false.
func (n Network) Neighbor(c Coord, dim, dir int) (nb Coord, wrapped, ok bool) {
	nb = c
	nb[dim] += dir
	if nb[dim] < 0 || nb[dim] >= n.Dims[dim] {
		if !n.Torus {
			return nb, false, false
		}
		nb[dim] = (nb[dim] + n.Dims[dim]) % n.Dims[dim]
		return nb, true, true
	}
	return nb, false, true
}

// Hops returns the dimension-ordered routing distance between a and b:
// the sum per dimension of the shortest directed distance (using wrap
// links when the network is a torus).
func (n Network) Hops(a, b Coord) int {
	total := 0
	for d := 0; d < 3; d++ {
		dist := a[d] - b[d]
		if dist < 0 {
			dist = -dist
		}
		if n.Torus {
			if w := n.Dims[d] - dist; w < dist {
				dist = w
			}
		}
		total += dist
	}
	return total
}

// WrapHops returns the hop count a periodic-boundary message must travel
// between logical neighbours at opposite ends of dimension d. On a torus
// it is 1 (the wrap link); on a mesh the message crosses the whole
// dimension: Dims[d]-1 hops.
func (n Network) WrapHops(d int) int {
	if n.Torus || n.Dims[d] <= 1 {
		return 1
	}
	return n.Dims[d] - 1
}

// BalancedDims factors n into three near-equal dimensions (x >= y >= z
// ordering is not guaranteed; the result minimizes the sum of dims, i.e.
// the most cubic shape). Used for BGP partition shapes.
func BalancedDims(n int) Dims {
	best := Dims{n, 1, 1}
	bestScore := math.MaxFloat64
	for x := 1; x <= n; x++ {
		if n%x != 0 {
			continue
		}
		rest := n / x
		for y := 1; y <= rest; y++ {
			if rest%y != 0 {
				continue
			}
			z := rest / y
			score := float64(x + y + z)
			if score < bestScore {
				bestScore = score
				best = Dims{x, y, z}
			}
		}
	}
	return best
}

// DecomposeGrid factors p processes into a 3-D process grid that
// minimizes the aggregate halo surface for a global grid of extent g.
// This mirrors GPAW's default domain decomposition: the grid is divided
// into quadrilaterals and, absent a user-supplied layout, the aggregated
// surface of the sub-domains is minimized.
//
// The returned dims always multiply to p. Process counts that cannot
// divide the grid evenly are still allowed; sub-domain sizes then differ
// by at most one point per dimension (see Split).
func DecomposeGrid(p int, g Dims) Dims {
	if p < 1 {
		panic(fmt.Sprintf("topology: decompose over %d processes", p))
	}
	best := Dims{p, 1, 1}
	bestSurface := math.MaxFloat64
	for x := 1; x <= p; x++ {
		if p%x != 0 {
			continue
		}
		rest := p / x
		for y := 1; y <= rest; y++ {
			if rest%y != 0 {
				continue
			}
			z := rest / y
			sx := float64(g[0]) / float64(x)
			sy := float64(g[1]) / float64(y)
			sz := float64(g[2]) / float64(z)
			// Aggregate outward surface of one sub-domain; the total over
			// all sub-domains is p times this, so minimizing per-domain
			// surface minimizes the aggregate.
			surface := 2 * (sx*sy + sy*sz + sx*sz)
			if surface < bestSurface-1e-12 {
				bestSurface = surface
				best = Dims{x, y, z}
			}
		}
	}
	return best
}

// Split divides extent n into parts pieces as evenly as possible and
// returns the start offset and length of piece i. The first n%parts
// pieces are one element longer.
func Split(n, parts, i int) (start, length int) {
	base := n / parts
	rem := n % parts
	if i < rem {
		return i * (base + 1), base + 1
	}
	return rem*(base+1) + (i-rem)*base, base
}

// SubdomainSize returns the local sub-grid extents for the process at
// coordinate c in a process grid of shape pd decomposing global grid g.
func SubdomainSize(g Dims, pd Dims, c Coord) Dims {
	var out Dims
	for d := 0; d < 3; d++ {
		_, out[d] = Split(g[d], pd[d], c[d])
	}
	return out
}

// SubdomainOffset returns the global offset of the sub-grid for the
// process at coordinate c.
func SubdomainOffset(g Dims, pd Dims, c Coord) Coord {
	var out Coord
	for d := 0; d < 3; d++ {
		out[d], _ = Split(g[d], pd[d], c[d])
	}
	return out
}

// HaloBytes returns the number of bytes a sub-domain of extent s sends
// per exchanged grid in one direction of dimension d, for halo thickness
// t and element size elem: thickness * (face area) * elem.
func HaloBytes(s Dims, d, t, elem int) int64 {
	var face int
	switch d {
	case 0:
		face = s[1] * s[2]
	case 1:
		face = s[0] * s[2]
	case 2:
		face = s[0] * s[1]
	default:
		panic("topology: bad dimension")
	}
	return int64(t) * int64(face) * int64(elem)
}

// TotalHaloBytes returns the bytes one sub-domain sends for a full
// 3-dimensional, both-directions halo exchange of a single grid.
func TotalHaloBytes(s Dims, t, elem int) int64 {
	var total int64
	for d := 0; d < 3; d++ {
		total += 2 * HaloBytes(s, d, t, elem)
	}
	return total
}
