package topology

import (
	"testing"
	"testing/quick"
)

func TestRankCoordRoundTrip(t *testing.T) {
	d := Dims{4, 3, 5}
	seen := make(map[int]bool)
	for x := 0; x < d[0]; x++ {
		for y := 0; y < d[1]; y++ {
			for z := 0; z < d[2]; z++ {
				c := Coord{x, y, z}
				r := d.Rank(c)
				if r < 0 || r >= d.Count() {
					t.Fatalf("rank %d out of range for %v", r, c)
				}
				if seen[r] {
					t.Fatalf("rank %d assigned twice", r)
				}
				seen[r] = true
				if back := d.Coord(r); back != c {
					t.Fatalf("round trip %v -> %d -> %v", c, r, back)
				}
			}
		}
	}
	if len(seen) != d.Count() {
		t.Fatalf("rank map not a bijection: %d of %d", len(seen), d.Count())
	}
}

func TestRankCoordBijectionProperty(t *testing.T) {
	f := func(a, b, c uint8, r uint16) bool {
		d := Dims{int(a%7) + 1, int(b%7) + 1, int(c%7) + 1}
		rank := int(r) % d.Count()
		return d.Rank(d.Coord(rank)) == rank
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDimsValid(t *testing.T) {
	d := Dims{2, 2, 2}
	if !d.Valid(Coord{0, 0, 0}) || !d.Valid(Coord{1, 1, 1}) {
		t.Fatal("interior coords reported invalid")
	}
	for _, c := range []Coord{{-1, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}} {
		if d.Valid(c) {
			t.Fatalf("out-of-range coord %v reported valid", c)
		}
	}
}

func TestDimsString(t *testing.T) {
	if s := (Dims{8, 8, 16}).String(); s != "8x8x16" {
		t.Fatalf("String = %q", s)
	}
}

func TestNeighborTorusWraps(t *testing.T) {
	n := NewNetwork(Dims{4, 4, 4}, true)
	nb, wrapped, ok := n.Neighbor(Coord{0, 0, 0}, 0, -1)
	if !ok || !wrapped || nb != (Coord{3, 0, 0}) {
		t.Fatalf("torus wrap gave %v wrapped=%v ok=%v", nb, wrapped, ok)
	}
	nb, wrapped, ok = n.Neighbor(Coord{1, 2, 3}, 2, 1)
	if !ok || !wrapped || nb != (Coord{1, 2, 0}) {
		t.Fatalf("z-wrap gave %v wrapped=%v ok=%v", nb, wrapped, ok)
	}
	nb, wrapped, ok = n.Neighbor(Coord{1, 1, 1}, 1, 1)
	if !ok || wrapped || nb != (Coord{1, 2, 1}) {
		t.Fatalf("interior step gave %v wrapped=%v", nb, wrapped)
	}
}

func TestNeighborMeshEdges(t *testing.T) {
	n := NewNetwork(Dims{4, 4, 4}, false)
	if _, _, ok := n.Neighbor(Coord{0, 0, 0}, 0, -1); ok {
		t.Fatal("mesh should have no wrap neighbour")
	}
	if _, _, ok := n.Neighbor(Coord{3, 0, 0}, 0, 1); ok {
		t.Fatal("mesh edge should have no +x neighbour")
	}
	nb, wrapped, ok := n.Neighbor(Coord{2, 0, 0}, 0, 1)
	if !ok || wrapped || nb != (Coord{3, 0, 0}) {
		t.Fatalf("interior mesh step gave %v", nb)
	}
}

func TestHopsTorusVsMesh(t *testing.T) {
	torus := NewNetwork(Dims{8, 8, 8}, true)
	mesh := NewNetwork(Dims{8, 8, 8}, false)
	a, b := Coord{0, 0, 0}, Coord{7, 0, 0}
	if h := torus.Hops(a, b); h != 1 {
		t.Fatalf("torus hops = %d, want 1 (wrap)", h)
	}
	if h := mesh.Hops(a, b); h != 7 {
		t.Fatalf("mesh hops = %d, want 7", h)
	}
	if h := torus.Hops(Coord{1, 2, 3}, Coord{1, 2, 3}); h != 0 {
		t.Fatalf("self hops = %d", h)
	}
	if h := torus.Hops(Coord{0, 0, 0}, Coord{4, 4, 4}); h != 12 {
		t.Fatalf("antipodal torus hops = %d, want 12", h)
	}
}

func TestHopsSymmetric(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz uint8, torus bool) bool {
		n := NewNetwork(Dims{8, 8, 8}, torus)
		a := Coord{int(ax % 8), int(ay % 8), int(az % 8)}
		b := Coord{int(bx % 8), int(by % 8), int(bz % 8)}
		return n.Hops(a, b) == n.Hops(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapHops(t *testing.T) {
	torus := NewNetwork(Dims{8, 8, 8}, true)
	mesh := NewNetwork(Dims{8, 4, 1}, false)
	if torus.WrapHops(0) != 1 {
		t.Fatal("torus wrap should be 1 hop")
	}
	if got := mesh.WrapHops(0); got != 7 {
		t.Fatalf("mesh wrap hops = %d, want 7", got)
	}
	if got := mesh.WrapHops(1); got != 3 {
		t.Fatalf("mesh wrap hops = %d, want 3", got)
	}
	if got := mesh.WrapHops(2); got != 1 {
		t.Fatalf("singleton dimension wrap hops = %d, want 1", got)
	}
}

func TestPartitionForBGPShapes(t *testing.T) {
	cases := []struct {
		nodes int
		torus bool
	}{
		{1, false}, {4, false}, {32, false}, {256, false},
		{512, true}, {1024, true}, {2048, true}, {4096, true},
	}
	for _, c := range cases {
		p := PartitionFor(c.nodes)
		if p.Dims.Count() != c.nodes {
			t.Fatalf("partition %d: dims %v do not multiply to node count", c.nodes, p.Dims)
		}
		if p.Torus != c.torus {
			t.Fatalf("partition %d: torus=%v, want %v", c.nodes, p.Torus, c.torus)
		}
	}
	// 512 nodes must be the cubic 8x8x8.
	if d := PartitionFor(512).Dims; d != (Dims{8, 8, 8}) {
		t.Fatalf("512-node partition = %v, want 8x8x8", d)
	}
	if d := PartitionFor(4096).Dims; d != (Dims{16, 16, 16}) {
		t.Fatalf("4096-node partition = %v, want 16x16x16", d)
	}
}

func TestPartitionForPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PartitionFor(0) did not panic")
		}
	}()
	PartitionFor(0)
}

func TestBalancedDimsIsCubicForCubes(t *testing.T) {
	for _, n := range []int{8, 64, 512, 4096} {
		d := BalancedDims(n)
		if d[0] != d[1] || d[1] != d[2] {
			t.Fatalf("BalancedDims(%d) = %v, want a cube", n, d)
		}
	}
}

func TestBalancedDimsProduct(t *testing.T) {
	f := func(n uint16) bool {
		v := int(n%4096) + 1
		return BalancedDims(v).Count() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeGridMinimizesSurface(t *testing.T) {
	// For a cubic grid and a cubic process count, the decomposition must
	// be cubic.
	d := DecomposeGrid(64, Dims{192, 192, 192})
	if d != (Dims{4, 4, 4}) {
		t.Fatalf("DecomposeGrid(64, cubic) = %v, want 4x4x4", d)
	}
	// For a flat grid, processes should concentrate along the long axis.
	d = DecomposeGrid(8, Dims{1024, 8, 8})
	if d != (Dims{8, 1, 1}) {
		t.Fatalf("DecomposeGrid(8, slab) = %v, want 8x1x1", d)
	}
}

func TestDecomposeGridProduct(t *testing.T) {
	f := func(p uint16) bool {
		v := int(p%2048) + 1
		return DecomposeGrid(v, Dims{144, 144, 144}).Count() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCoversExactly(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		nn := int(n%500) + 1
		pp := int(parts%32) + 1
		covered := 0
		prevEnd := 0
		for i := 0; i < pp; i++ {
			start, length := Split(nn, pp, i)
			if start != prevEnd {
				return false // gaps or overlap
			}
			if length < 0 {
				return false
			}
			prevEnd = start + length
			covered += length
		}
		return covered == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBalance(t *testing.T) {
	// Lengths differ by at most one.
	_, l0 := Split(10, 3, 0)
	_, l1 := Split(10, 3, 1)
	_, l2 := Split(10, 3, 2)
	if l0 != 4 || l1 != 3 || l2 != 3 {
		t.Fatalf("Split(10,3) lengths = %d,%d,%d", l0, l1, l2)
	}
}

func TestSubdomainSizeAndOffset(t *testing.T) {
	g := Dims{144, 144, 144}
	pd := Dims{4, 4, 4}
	s := SubdomainSize(g, pd, Coord{0, 0, 0})
	if s != (Dims{36, 36, 36}) {
		t.Fatalf("subdomain = %v, want 36^3", s)
	}
	off := SubdomainOffset(g, pd, Coord{1, 2, 3})
	if off != (Coord{36, 72, 108}) {
		t.Fatalf("offset = %v", off)
	}
	// Offsets plus sizes tile the global grid exactly.
	var vol int
	for x := 0; x < pd[0]; x++ {
		for y := 0; y < pd[1]; y++ {
			for z := 0; z < pd[2]; z++ {
				sz := SubdomainSize(g, pd, Coord{x, y, z})
				vol += sz.Count()
			}
		}
	}
	if vol != g.Count() {
		t.Fatalf("subdomains cover %d points, want %d", vol, g.Count())
	}
}

func TestHaloBytes(t *testing.T) {
	s := Dims{12, 12, 12}
	// Thickness 2, float64: one x-face = 2*12*12*8 bytes.
	if got := HaloBytes(s, 0, 2, 8); got != 2*12*12*8 {
		t.Fatalf("HaloBytes x = %d", got)
	}
	total := TotalHaloBytes(s, 2, 8)
	want := int64(6 * 2 * 12 * 12 * 8) // six faces, cubic
	if total != want {
		t.Fatalf("TotalHaloBytes = %d, want %d", total, want)
	}
}

func TestHaloBytesPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HaloBytes with dim 3 did not panic")
		}
	}()
	HaloBytes(Dims{4, 4, 4}, 3, 1, 8)
}

func TestHybridVsFlatHaloRatio(t *testing.T) {
	// The paper's core observation: decomposing each grid over nodes
	// (hybrid) instead of cores (flat) divides every grid into 4x fewer
	// pieces, reducing per-node halo traffic. For cubic decompositions
	// the per-node traffic ratio approaches 4^(1/3) ~ 1.59.
	g := Dims{192, 192, 192}
	flatProcs := 16384 // cores
	hybridProcs := 4096
	fd := DecomposeGrid(flatProcs, g)
	hd := DecomposeGrid(hybridProcs, g)
	fs := SubdomainSize(g, fd, Coord{0, 0, 0})
	hs := SubdomainSize(g, hd, Coord{0, 0, 0})
	flatPerNode := 4 * TotalHaloBytes(fs, 2, 8) // 4 ranks per node
	hybridPerNode := TotalHaloBytes(hs, 2, 8)
	ratio := float64(flatPerNode) / float64(hybridPerNode)
	if ratio < 1.4 || ratio > 2.4 {
		t.Fatalf("flat/hybrid per-node halo ratio = %.2f, want ~1.59 (4^(1/3))", ratio)
	}
}
