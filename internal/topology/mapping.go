package topology

import "fmt"

// Rank-to-node mappings. A Blue Gene/P job does not choose which torus
// node each MPI rank lands on — the mapping file does, and the paper's
// section V shows halo traffic is only all-nearest-neighbour when the
// Cartesian process grid is embedded in the torus. These helpers produce
// the rank -> node-coordinate tables internal/mpi's network model prices
// hop distances from.

// Mapping selects a strategy for placing the ranks of a process grid
// onto the nodes of a Network.
type Mapping int

const (
	// MapLinear fills the node grid in row-major rank order (the
	// default XYZT-style mapping): rank r lands on coordinate
	// net.Dims.Coord(r mod nodes). Process-grid neighbours along the
	// fastest axis stay adjacent; the slower axes stride across the
	// machine.
	MapLinear Mapping = iota
	// MapCart embeds the Cartesian process grid axis-by-axis: a rank's
	// process coordinate, folded modulo the node grid extent per axis,
	// becomes its node coordinate. Process-grid neighbours stay torus
	// neighbours (or co-located on one node, using shared memory), so
	// halo traffic is all single-hop — what a tuned BG/P mapping file
	// achieves.
	MapCart
	// MapShuffle scatters ranks over the nodes with a deterministic
	// pseudo-random permutation — the worst-case placement that turns
	// nearest-neighbour halo exchanges into long-haul torus traffic.
	// The benchmarks use it as the "how bad can mapping get" bound.
	MapShuffle
)

// String names the mapping the way the -map flag spells it.
func (m Mapping) String() string {
	switch m {
	case MapLinear:
		return "linear"
	case MapCart:
		return "cart"
	case MapShuffle:
		return "shuffle"
	}
	return fmt.Sprintf("Mapping(%d)", int(m))
}

// ParseMapping converts a -map flag value to a Mapping.
func ParseMapping(s string) (Mapping, error) {
	switch s {
	case "linear", "":
		return MapLinear, nil
	case "cart":
		return MapCart, nil
	case "shuffle":
		return MapShuffle, nil
	}
	return 0, fmt.Errorf("topology: unknown mapping %q (want linear, cart or shuffle)", s)
}

// MapGrid places the ranks of a row-major process grid onto node
// coordinates of the network and returns the rank-indexed coordinate
// table. More ranks than nodes fold onto shared nodes (virtual-node
// mode); the fold is per-axis for MapCart and modulo the node count for
// the other mappings.
func MapGrid(proc Dims, net Network, m Mapping) []Coord {
	n := proc.Count()
	nodes := net.Dims.Count()
	coords := make([]Coord, n)
	switch m {
	case MapCart:
		for r := 0; r < n; r++ {
			pc := proc.Coord(r)
			coords[r] = Coord{pc[0] % net.Dims[0], pc[1] % net.Dims[1], pc[2] % net.Dims[2]}
		}
	case MapShuffle:
		slots := shuffledSlots(nodes, 0x9e3779b97f4a7c15)
		for r := 0; r < n; r++ {
			coords[r] = net.Dims.Coord(slots[r%nodes])
		}
	default:
		for r := 0; r < n; r++ {
			coords[r] = net.Dims.Coord(r % nodes)
		}
	}
	return coords
}

// MapBands places a bands x domain layout (world rank r = band group
// r/proc.Count(), domain rank r%proc.Count(), matching internal/gpaw)
// onto the network: each band group gets a contiguous slab of the node
// grid along its longest axis, and the domain grid maps into the slab
// with the given strategy. MapShuffle ignores the slab structure and
// scatters globally.
func MapBands(bands int, proc Dims, net Network, m Mapping) []Coord {
	if bands < 1 {
		bands = 1
	}
	nproc := proc.Count()
	switch {
	case bands == 1:
		return MapGrid(proc, net, m)
	case m != MapCart:
		// Linear fill and global shuffle ignore the slab structure; the
		// band-major world rank order makes linear fills slab-shaped on
		// its own.
		return MapGrid(Dims{1, bands, nproc}, net, m)
	}
	// MapCart: slab the longest network axis across band groups.
	axis := 0
	for d := 1; d < 3; d++ {
		if net.Dims[d] > net.Dims[axis] {
			axis = d
		}
	}
	coords := make([]Coord, bands*nproc)
	for b := 0; b < bands; b++ {
		start, length := Split(net.Dims[axis], bands, b)
		if length < 1 {
			// More band groups than nodes along the axis: groups share
			// slabs of width one.
			start, length = b%net.Dims[axis], 1
		}
		sub := net.Dims
		sub[axis] = length
		local := MapGrid(proc, Network{Dims: sub, Torus: net.Torus}, m)
		for dr, c := range local {
			c[axis] += start
			coords[b*nproc+dr] = c
		}
	}
	return coords
}

// mix64 is a SplitMix64-style finalizer: a fixed bijective hash used to
// derive the deterministic shuffle (no math/rand, so the table is
// identical on every run and platform).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// shuffledSlots returns a deterministic permutation of 0..n-1
// (Fisher-Yates driven by the mix64 stream).
func shuffledSlots(n int, seed uint64) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	x := seed
	for i := n - 1; i > 0; i-- {
		x = mix64(x + uint64(i))
		j := int(x % uint64(i+1))
		s[i], s[j] = s[j], s[i]
	}
	return s
}
