package topology

import "testing"

// TestHopsMeshOddDims: on a mesh there are no wrap links, so the
// distance along an odd dimension is the plain Manhattan distance even
// when wrapping would be shorter on a torus.
func TestHopsMeshOddDims(t *testing.T) {
	mesh := NewNetwork(Dims{5, 3, 7}, false)
	torus := NewNetwork(Dims{5, 3, 7}, true)
	cases := []struct {
		a, b                Coord
		meshHops, torusHops int
	}{
		{Coord{0, 0, 0}, Coord{4, 0, 0}, 4, 1},  // x: end-to-end, wrap=1
		{Coord{0, 0, 0}, Coord{0, 2, 0}, 2, 1},  // y: odd extent 3, wrap=1
		{Coord{0, 0, 0}, Coord{0, 0, 4}, 4, 3},  // z: 7-4=3 via wrap
		{Coord{0, 0, 0}, Coord{0, 0, 3}, 3, 3},  // z: wrap (4) longer, direct wins
		{Coord{4, 2, 6}, Coord{0, 0, 0}, 12, 3}, // corner to corner
		{Coord{2, 1, 3}, Coord{2, 1, 3}, 0, 0},
	}
	for _, c := range cases {
		if got := mesh.Hops(c.a, c.b); got != c.meshHops {
			t.Errorf("mesh Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.meshHops)
		}
		if got := torus.Hops(c.a, c.b); got != c.torusHops {
			t.Errorf("torus Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.torusHops)
		}
	}
}

// TestWrapHopsOddAndDegenerateDims: the periodic-neighbour hop count on
// meshes of odd and size-1 dimensions.
func TestWrapHopsOddAndDegenerateDims(t *testing.T) {
	mesh := NewNetwork(Dims{5, 1, 2}, false)
	if got := mesh.WrapHops(0); got != 4 {
		t.Errorf("mesh WrapHops(5) = %d, want 4", got)
	}
	if got := mesh.WrapHops(1); got != 1 {
		t.Errorf("mesh WrapHops(dim of size 1) = %d, want 1", got)
	}
	if got := mesh.WrapHops(2); got != 1 {
		t.Errorf("mesh WrapHops(2) = %d, want 1", got)
	}
	torus := NewNetwork(Dims{5, 1, 2}, true)
	for d := 0; d < 3; d++ {
		if got := torus.WrapHops(d); got != 1 {
			t.Errorf("torus WrapHops(dim %d) = %d, want 1", d, got)
		}
	}
}

// TestPartitionForNonPowerOfTwo: arbitrary node counts must still give
// a partition whose dims multiply to n, mesh below 512 and torus at or
// above, with a reasonably cubic shape for highly-composite counts.
func TestPartitionForNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 3, 5, 6, 7, 12, 60, 100, 243, 500, 511, 513, 900, 1000, 4096} {
		p := PartitionFor(n)
		if p.Dims.Count() != n {
			t.Errorf("PartitionFor(%d): dims %v have %d nodes", n, p.Dims, p.Dims.Count())
		}
		if want := n >= TorusThresholdNodes; p.Torus != want {
			t.Errorf("PartitionFor(%d): torus = %v, want %v", n, p.Torus, want)
		}
	}
	// Primes can only form 1 x 1 x p chains.
	if p := PartitionFor(7); p.Dims != (Dims{7, 1, 1}) && p.Dims != (Dims{1, 7, 1}) && p.Dims != (Dims{1, 1, 7}) {
		t.Errorf("PartitionFor(7) = %v, want a 7-chain", p.Dims)
	}
	// 1000 = 10^3 should be exactly cubic.
	if p := PartitionFor(1000); p.Dims != (Dims{10, 10, 10}) {
		t.Errorf("PartitionFor(1000) = %v, want 10x10x10", p.Dims)
	}
}

// TestMapGridCoversRanksWithValidCoords: every mapping must give every
// rank a coordinate inside the node grid, for shapes that match, fold
// (more ranks than nodes) and underfill the network.
func TestMapGridCoversRanksWithValidCoords(t *testing.T) {
	nets := []Network{
		NewNetwork(Dims{4, 4, 4}, true),
		NewNetwork(Dims{5, 3, 2}, false),
		NewNetwork(Dims{1, 1, 1}, false),
	}
	procs := []Dims{{4, 4, 4}, {2, 2, 2}, {8, 4, 4}, {1, 1, 7}, {3, 1, 1}}
	for _, net := range nets {
		for _, p := range procs {
			for _, m := range []Mapping{MapLinear, MapCart, MapShuffle} {
				coords := MapGrid(p, net, m)
				if len(coords) != p.Count() {
					t.Fatalf("%v on %v via %v: %d coords for %d ranks", p, net.Dims, m, len(coords), p.Count())
				}
				for r, c := range coords {
					if !net.Dims.Valid(c) {
						t.Fatalf("%v on %v via %v: rank %d mapped off-grid to %v", p, net.Dims, m, r, c)
					}
				}
			}
		}
	}
}

// TestMapCartNeighborsStayAdjacent: the defining property of the
// Cartesian embedding — when the process grid matches the node grid,
// process-grid neighbours are exactly one hop apart (and the identity
// holds coordinate-wise).
func TestMapCartNeighborsStayAdjacent(t *testing.T) {
	net := NewNetwork(Dims{4, 4, 4}, true)
	proc := Dims{4, 4, 4}
	coords := MapGrid(proc, net, MapCart)
	for r := 0; r < proc.Count(); r++ {
		pc := proc.Coord(r)
		if coords[r] != pc {
			t.Fatalf("matched-shape MapCart is not the identity: rank %d -> %v", r, coords[r])
		}
		for d := 0; d < 3; d++ {
			nb := pc
			nb[d] = (nb[d] + 1) % proc[d]
			if h := net.Hops(coords[r], coords[proc.Rank(nb)]); h != 1 {
				t.Fatalf("MapCart neighbour %v-%v is %d hops apart", pc, nb, h)
			}
		}
	}
}

// TestMapCartFoldsOntoSharedNodes: with more ranks than nodes the
// per-axis fold co-locates ranks instead of dropping them.
func TestMapCartFoldsOntoSharedNodes(t *testing.T) {
	net := NewNetwork(Dims{2, 2, 2}, false)
	coords := MapGrid(Dims{4, 2, 2}, net, MapCart)
	if coords[0] != coords[Dims{4, 2, 2}.Rank(Coord{2, 0, 0})] {
		t.Error("ranks at process x=0 and x=2 should fold onto the same node")
	}
}

// TestMapShuffleDeterministicAndSpread: the shuffle must be identical
// across calls (no seed drift — benchmarks depend on reproducibility)
// yet actually scramble locality relative to the linear fill.
func TestMapShuffleDeterministicAndSpread(t *testing.T) {
	net := NewNetwork(Dims{4, 4, 4}, true)
	proc := Dims{4, 4, 4}
	a := MapGrid(proc, net, MapShuffle)
	b := MapGrid(proc, net, MapShuffle)
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("shuffle differs across calls at rank %d", r)
		}
	}
	// Total hop distance of +z process neighbours must be strictly worse
	// than under the linear fill (where they are contiguous).
	lin := MapGrid(proc, net, MapLinear)
	hopSum := func(coords []Coord) int {
		sum := 0
		for r := 0; r < proc.Count(); r++ {
			pc := proc.Coord(r)
			nb := pc
			nb[2] = (nb[2] + 1) % proc[2]
			sum += net.Hops(coords[r], coords[proc.Rank(nb)])
		}
		return sum
	}
	if s, l := hopSum(a), hopSum(lin); s <= l {
		t.Errorf("shuffle hop sum %d not worse than linear %d", s, l)
	}
	// And it must remain a permutation of the node slots.
	seen := map[Coord]bool{}
	for _, c := range a[:64] {
		if seen[c] {
			t.Fatalf("shuffle placed two of the first 64 ranks on node %v", c)
		}
		seen[c] = true
	}
}

// TestMapBandsSlabsAndLayout: band groups get disjoint slabs under the
// Cartesian mapping, and every variant covers bands x domain ranks with
// valid coordinates.
func TestMapBandsSlabsAndLayout(t *testing.T) {
	net := NewNetwork(Dims{4, 4, 4}, true)
	proc := Dims{2, 2, 2}
	for _, m := range []Mapping{MapLinear, MapCart, MapShuffle} {
		for _, bands := range []int{1, 2, 4, 8} {
			coords := MapBands(bands, proc, net, m)
			if len(coords) != bands*proc.Count() {
				t.Fatalf("MapBands(%d,%v,%v): %d coords", bands, proc, m, len(coords))
			}
			for r, c := range coords {
				if !net.Dims.Valid(c) {
					t.Fatalf("MapBands(%d,%v,%v): rank %d off-grid at %v", bands, proc, m, r, c)
				}
			}
		}
	}
	// MapCart with 2 bands on a 4-long axis: groups live in disjoint
	// half-slabs.
	coords := MapBands(2, proc, net, MapCart)
	nproc := proc.Count()
	for r0 := 0; r0 < nproc; r0++ {
		for r1 := nproc; r1 < 2*nproc; r1++ {
			if coords[r0] == coords[r1] {
				t.Fatalf("band groups share node %v (ranks %d, %d)", coords[r0], r0, r1)
			}
		}
	}
}

// TestParseMappingRoundTrip covers the -map flag spellings.
func TestParseMappingRoundTrip(t *testing.T) {
	for _, m := range []Mapping{MapLinear, MapCart, MapShuffle} {
		got, err := ParseMapping(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMapping(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseMapping(""); err != nil || m != MapLinear {
		t.Errorf("empty mapping should default to linear, got %v, %v", m, err)
	}
	if _, err := ParseMapping("zigzag"); err == nil {
		t.Error("ParseMapping(zigzag) should fail")
	}
}
