package detsum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sumVia adds vs split into the given contiguous parts, each into its
// own Acc, merged in a shuffled order.
func sumVia(vs []float64, cuts []int, mergeOrder []int) float64 {
	accs := make([]*Acc, len(cuts)+1)
	lo := 0
	bounds := append(append([]int(nil), cuts...), len(vs))
	for p, hi := range bounds {
		accs[p] = &Acc{}
		for _, v := range vs[lo:hi] {
			accs[p].Add(v)
		}
		lo = hi
	}
	total := &Acc{}
	for _, p := range mergeOrder {
		total.Merge(accs[p])
	}
	return total.Round()
}

func TestPartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vs := make([]float64, 4096)
	for i := range vs {
		// Wild dynamic range with cancellation.
		vs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(60)-30))
	}
	want := sumVia(vs, nil, []int{0})
	for trial := 0; trial < 50; trial++ {
		nParts := 1 + rng.Intn(7)
		cuts := make([]int, nParts)
		for i := range cuts {
			cuts[i] = rng.Intn(len(vs))
		}
		// Sort cuts (insertion).
		for i := 1; i < len(cuts); i++ {
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
		order := rng.Perm(nParts + 1)
		if got := sumVia(vs, cuts, order); got != want {
			t.Fatalf("trial %d: partitioned sum %.17g != %.17g", trial, got, want)
		}
	}
}

func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vs := make([]float64, 1000)
	for i := range vs {
		vs[i] = rng.NormFloat64() * math.Pow(2, float64(rng.Intn(200)-100))
	}
	want := Sum(vs)
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(vs))
		var a Acc
		for _, p := range perm {
			a.Add(vs[p])
		}
		if got := a.Round(); got != want {
			t.Fatalf("trial %d: permuted sum %.17g != %.17g", trial, got, want)
		}
	}
}

func TestExactSmallIntegers(t *testing.T) {
	var a Acc
	for i := 1; i <= 100; i++ {
		a.Add(float64(i))
		a.Add(float64(-i))
	}
	if got := a.Round(); got != 0 {
		t.Fatalf("telescoping sum = %g, want 0", got)
	}
	a.Reset()
	a.Add(1e16)
	a.Add(1)
	a.Add(-1e16)
	if got := a.Round(); got != 1 {
		t.Fatalf("cancellation sum = %g, want 1 (exactness lost)", got)
	}
}

func TestSubnormalsAndExtremes(t *testing.T) {
	cases := [][]float64{
		{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64},
		{5e-324, 1.0, -1.0},
		{math.MaxFloat64 / 4, math.MaxFloat64 / 4, -math.MaxFloat64 / 4},
		{1e308, -1e308, 3},
		{2.2250738585072014e-308, -1.1125369292536007e-308}, // normal/subnormal boundary
	}
	for ci, vs := range cases {
		want := Sum(vs)
		rev := &Acc{}
		for i := len(vs) - 1; i >= 0; i-- {
			rev.Add(vs[i])
		}
		if got := rev.Round(); got != want {
			t.Fatalf("case %d: reversed %.17g != %.17g", ci, got, want)
		}
	}
	// Exactness at the subnormal floor.
	var a Acc
	a.Add(5e-324)
	a.Add(5e-324)
	if got := a.Round(); got != 1e-323 {
		t.Fatalf("subnormal doubling = %g", got)
	}
}

func TestNonFinite(t *testing.T) {
	var a Acc
	a.Add(1)
	a.Add(math.Inf(1))
	if got := a.Round(); !math.IsInf(got, 1) {
		t.Fatalf("Inf lost: %g", got)
	}
	var b Acc
	b.Add(math.NaN())
	if got := b.Round(); !math.IsNaN(got) {
		t.Fatalf("NaN lost: %g", got)
	}
}

func TestCarrySaturation(t *testing.T) {
	// Far more Adds than carryEvery, alternating signs and magnitudes;
	// compare against a fresh accumulator fed the same values in pairs.
	var a, b Acc
	n := carryEvery*2 + 123
	for i := 0; i < n; i++ {
		v := float64(i%97) * 1.25e10
		if i%2 == 1 {
			v = -v / 3
		}
		a.Add(v)
	}
	for i := n - 1; i >= 0; i-- {
		v := float64(i%97) * 1.25e10
		if i%2 == 1 {
			v = -v / 3
		}
		b.Add(v)
	}
	if a.Round() != b.Round() {
		t.Fatalf("carry saturation broke invariance: %.17g vs %.17g", a.Round(), b.Round())
	}
}

func TestTransportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a Acc
	for i := 0; i < 500; i++ {
		a.Add(rng.NormFloat64() * 1e-7)
	}
	want := a.Round()
	w := a.Transport(nil)
	if len(w) != TransportLen {
		t.Fatalf("transport length %d != %d", len(w), TransportLen)
	}
	if got := RoundTransport(w); got != want {
		t.Fatalf("transport round-trip %.17g != %.17g", got, want)
	}
	// Merging transports must equal merging accumulators.
	var b Acc
	for i := 0; i < 500; i++ {
		b.Add(rng.NormFloat64() * 1e9)
	}
	bw := b.Transport(nil)
	aw := append([]float64(nil), w...)
	MergeTransport(aw, bw)
	var ab Acc
	ab.Merge(&a)
	ab.Merge(&b)
	if got := RoundTransport(aw); got != ab.Round() {
		t.Fatalf("transport merge %.17g != acc merge %.17g", got, ab.Round())
	}
}

// TestQuickAddMatchesValue: for random triples the accumulator holds the
// mathematically exact sum — adding x, y, -x must leave exactly y.
func TestQuickAddMatchesValue(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		var a Acc
		a.Add(x)
		a.Add(y)
		a.Add(-x)
		return a.Round() == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]float64, 4096)
	for i := range vs {
		vs[i] = rng.NormFloat64()
	}
	var a Acc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Add(vs[i&4095])
	}
	_ = a.Round()
}
