// Package detsum implements deterministic (order-independent) float64
// summation for the solver stack's reductions.
//
// The distributed solvers in internal/gpaw must produce results that are
// bit-identical to the serial solvers for every rank count, process-grid
// shape and thread count. A plain float64 accumulator cannot provide
// that: floating-point addition is not associative, so any partitioning
// of a sum — across pool workers or across MPI ranks — changes the
// rounding. detsum fixes the problem at the root: every value is split
// into exact 32-bit chunks that are accumulated in fixed-weight bins
// (a small Kulisch-style superaccumulator). Chunk extraction and bin
// addition are exact integer arithmetic in float64, so the bins — and
// therefore the rounded result — depend only on the multiset of added
// values, never on the order or grouping of the additions.
//
// The contract the solver stack builds on:
//
//	Add is exact            -> Acc holds the true sum of all added values
//	Merge is exact          -> any partitioning of the terms gives the
//	                           same Acc value (threads, ranks, batches)
//	Round is deterministic  -> equal Acc values round to equal float64s
//
// Accumulators serialize to a flat []float64 (Transport/MergeTransport)
// so they travel through the mpi runtime unchanged and merge on the
// receiving rank with the same exactness guarantee.
package detsum

import "math"

const (
	// binWidth is the chunk width in bits. Each bin b holds an integer
	// count of units of 2^(32b-bias).
	binWidth = 32
	// bias positions bin 0 at weight 2^-1088, below the smallest
	// subnormal's lowest mantissa bit (2^-1074), so every finite float64
	// splits exactly.
	bias = 1088
	// numBins covers weights up to 2^(32*67-1088) = 2^1056 > MaxFloat64,
	// leaving headroom for carries out of the top value bin.
	numBins = 68
	// carryEvery bounds the number of Adds between carry propagations:
	// each Add deposits chunks < 2^32 per bin, so after 2^19 Adds a bin
	// holds < 2^51 — comfortably inside float64's exact-integer range.
	carryEvery = 1 << 19

	two32 = 1 << 32
	two31 = 1 << 31
)

// scaleUp[m] = 2^(bias-32m) for bins where that is representable;
// lower bins (huge scales) take the two-step path in Add.
var scaleUp [numBins]float64

func init() {
	for m := range scaleUp {
		e := bias - binWidth*m
		if e <= 1023 {
			scaleUp[m] = math.Ldexp(1, e)
		}
	}
}

// Acc is an exact accumulator of float64 values. The zero value is an
// empty sum and is ready to use.
type Acc struct {
	bins [numBins]float64
	n    int     // Adds since the last carry propagation
	spec float64 // running sum of non-finite inputs (Inf/NaN)
}

// Reset empties the accumulator.
func (a *Acc) Reset() { *a = Acc{} }

// Add accumulates v exactly. Non-finite values are tracked separately
// and poison Round, matching a plain accumulator's behaviour.
func (a *Acc) Add(v float64) {
	if v == 0 {
		return
	}
	bits := math.Float64bits(v)
	be := int(bits>>52) & 0x7ff
	if be == 0x7ff {
		a.spec += v
		return
	}
	// Top-bit exponent e = be-1023 (for subnormals be=0 overestimates e,
	// which only makes the first chunk 0 — still exact).
	// Top chunk bin m = floor((e+bias)/32) = (be+65)>>5.
	m := (be + 65) >> 5
	var rest float64
	if s := scaleUp[m]; s != 0 {
		rest = v * s // exact: power-of-two scale, |rest| < 2^32
	} else {
		// 2^(bias-32m) overflows float64; split the scaling.
		rest = v * math.Ldexp(1, 512) * math.Ldexp(1, bias-binWidth*m-512)
	}
	for {
		chunk := math.Trunc(rest)
		a.bins[m] += chunk
		rest = (rest - chunk) * two32 // exact: fraction shifted up
		if rest == 0 {
			break
		}
		m--
	}
	a.n++
	if a.n >= carryEvery {
		a.carry()
	}
}

// AddMul accumulates the rounded product x*y — the element step of a
// deterministic dot product. The product is rounded once, identically
// for every partitioning, and then accumulated exactly.
func (a *Acc) AddMul(x, y float64) { a.Add(x * y) }

// carry moves each bin's overflow (beyond 32 bits) one bin up, keeping
// every bin's magnitude below 2^33. The accumulator's value is
// unchanged; all operations are exact.
func (a *Acc) carry() {
	a.n = 0
	for b := 0; b < numBins-1; b++ {
		if hi := math.Trunc(a.bins[b] * (1.0 / two32)); hi != 0 {
			a.bins[b] -= hi * two32
			a.bins[b+1] += hi
		}
	}
}

// Merge folds o into a exactly: afterwards a holds the sum of both
// accumulators' values. o is carry-normalized in place but its value is
// unchanged.
func (a *Acc) Merge(o *Acc) {
	a.carry()
	o.carry()
	for b := range a.bins {
		a.bins[b] += o.bins[b]
	}
	a.spec += o.spec
	a.carry()
}

// Round returns the accumulator's value as a float64. The bins are
// first reduced to the unique balanced base-2^32 representation of the
// exact sum, so equal sums always produce equal results regardless of
// the addition history.
func (a *Acc) Round() float64 {
	if a.spec != 0 || math.IsNaN(a.spec) {
		return a.spec
	}
	a.carry()
	// Canonical balanced digits: d in (-2^31, 2^31], carries exact.
	var digits [numBins]float64
	carry := 0.0
	for b := 0; b < numBins; b++ {
		t := a.bins[b] + carry // exact: both integers < 2^34
		d := math.Mod(t, two32)
		if d > two31 {
			d -= two32
		} else if d <= -two31 {
			d += two32
		}
		carry = (t - d) * (1.0 / two32) // exact by construction
		digits[b] = d
	}
	// Fold largest-to-smallest with a compensated (head + tail)
	// accumulator. The canonical digits are non-overlapping, so the
	// head/tail pair captures the top ~106 bits and the result is the
	// faithfully rounded sum — exact whenever the true sum is
	// representable. Deterministic for canonical digits either way.
	//
	// A balanced top digit can sit one bin above the value's magnitude
	// (e.g. 2^1024 - small), which would overflow mid-fold even for a
	// representable sum; when the top digit is near the float64 ceiling
	// the fold runs in a 2^shift-scaled space and rescales once at the
	// end (power-of-two scaling is exact; a true overflow still lands
	// on ±Inf).
	top := -1
	if carry != 0 {
		top = numBins
	} else {
		for b := numBins - 1; b >= 0; b-- {
			if digits[b] != 0 {
				top = b
				break
			}
		}
	}
	if top < 0 {
		return 0
	}
	shift := 0
	if topExp := binWidth*top - bias + 31; topExp > 1000 {
		shift = 1000 - topExp
	}
	head, tail := 0.0, 0.0
	fold := func(d float64, exp int) {
		v := math.Ldexp(d, exp+shift)
		s := head + v
		bv := s - head
		err := (head - (s - bv)) + (v - bv) // TwoSum error term
		head = s
		tail += err
	}
	if carry != 0 {
		fold(carry, binWidth*numBins-bias)
	}
	for b := numBins - 1; b >= 0; b-- {
		if digits[b] != 0 {
			fold(digits[b], binWidth*b-bias)
		}
	}
	return math.Ldexp(head+tail, -shift)
}

// TransportLen is the length of the []float64 an Acc serializes to.
const TransportLen = numBins + 1

// Transport appends the accumulator's state to dst as plain float64
// words (carry-normalized: every word's magnitude stays below 2^33, so
// even 2^19 transports can be summed term-by-term without rounding).
// The words travel through mpi buffers unchanged.
func (a *Acc) Transport(dst []float64) []float64 {
	a.carry()
	dst = append(dst, a.bins[:]...)
	return append(dst, a.spec)
}

// FromTransport reconstructs an accumulator from Transport's words.
func FromTransport(w []float64) *Acc {
	a := &Acc{}
	copy(a.bins[:], w[:numBins])
	a.spec = w[numBins]
	return a
}

// MergeTransport adds the transported accumulator src into dst
// word-by-word (dst and src both in Transport layout). The addition is
// exact for any realistic number of merges (bins are carry-normalized
// integers below 2^33), so the merged transport represents the exact
// combined sum independent of merge order.
func MergeTransport(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// RoundTransport rounds a transported accumulator without copying it
// back into an Acc first.
func RoundTransport(w []float64) float64 { return FromTransport(w).Round() }

// Sum is a convenience: the deterministic sum of a slice.
func Sum(vs []float64) float64 {
	var a Acc
	for _, v := range vs {
		a.Add(v)
	}
	return a.Round()
}
