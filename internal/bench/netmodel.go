package bench

import (
	"fmt"

	"repro/internal/bgpsim"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// NetScaling runs the calibrated network model on the live transport at
// paper-scale simulated rank counts (64 .. 4096) and compares rank
// placements. Full solves are too heavy at 4096 in-process ranks, so the
// workload is the communication skeleton of one SCF iteration: a few
// rounds of six-face halo exchange (two 16^2 planes per face, the
// paper's halo width) each closed by a scalar allreduce. Virtual
// makespans are deterministic (NoComputeWall), so the Cartesian-embed
// vs shuffled-placement ordering is asserted in the notes, not just
// eyeballed — the section V mapping experiment on the real runtime.
func NetScaling(opts Options) *Experiment {
	e := &Experiment{
		Name: "netmodel",
		Caption: "calibrated transport at scale: halo-exchange + allreduce rounds on the\n" +
			"live runtime, virtual makespan per simulated rank count x rank placement",
		Header: []string{"ranks", "procs", "network", "mapping", "makespan (virt)"},
	}
	rankCounts := []int{64, 512, 4096}
	rounds := 3
	if opts.Quick {
		rankCounts = []int{64}
		rounds = 2
	}
	const faceElems = 2 * 16 * 16 // halo width 2 over a 16^2 local face
	mappings := []topology.Mapping{topology.MapLinear, topology.MapCart, topology.MapShuffle}
	ordered := true
	for _, p := range rankCounts {
		procs := topology.BalancedDims(p)
		var cart, shuffle float64
		for _, mapping := range mappings {
			m := bgpsim.NetModelFor(p)
			m.Coords = topology.MapGrid(procs, m.Net, mapping)
			m.NoComputeWall = true
			mk, err := mpi.RunModeled(p, mpi.ThreadSingle, m, func(c *mpi.Comm) {
				haloRounds(c, procs, faceElems, rounds)
			})
			if err != nil {
				panic(fmt.Sprintf("bench: netmodel %d ranks %v: %v", p, mapping, err))
			}
			net := "mesh"
			if m.Net.Torus {
				net = "torus"
			}
			e.AddRow(fmt.Sprintf("%d", p), procs.String(),
				fmt.Sprintf("%s %v", net, m.Net.Dims), mapping.String(),
				fmt.Sprintf("%9.1f us", float64(mk)/1e3))
			switch mapping {
			case topology.MapCart:
				cart = float64(mk)
			case topology.MapShuffle:
				shuffle = float64(mk)
			}
		}
		if cart >= shuffle {
			ordered = false
		}
	}
	if ordered {
		e.AddNote("Cartesian embedding beat the shuffled placement at every rank count")
	} else {
		e.AddNote("DEVIATION: a shuffled placement matched or beat the Cartesian embedding")
	}
	e.AddNote("workload: %d rounds of six-face halo exchange (%d doubles/face) + allreduce; "+
		"costs from the bgpsim Figure-2 fit", rounds, faceElems)
	return e
}

// haloRounds exchanges all six faces with the periodic neighbours on the
// procs grid, then allreduces a scalar — repeated rounds times.
func haloRounds(c *mpi.Comm, procs topology.Dims, faceElems, rounds int) {
	const tag0 = 9100
	coord := procs.Coord(c.Rank())
	send := make([]float64, faceElems)
	for i := range send {
		send[i] = float64(c.Rank()*faceElems + i)
	}
	recvLo := make([]float64, faceElems)
	recvHi := make([]float64, faceElems)
	sum := 0.0
	for r := 0; r < rounds; r++ {
		for dim := 0; dim < 3; dim++ {
			if procs[dim] == 1 {
				continue
			}
			lo, hi := coord, coord
			lo[dim] = (coord[dim] - 1 + procs[dim]) % procs[dim]
			hi[dim] = (coord[dim] + 1) % procs[dim]
			loRank, hiRank := procs.Rank(lo), procs.Rank(hi)
			tag := tag0 + 2*dim
			reqs := []*mpi.Request{
				c.Irecv(loRank, tag, recvLo),
				c.Irecv(hiRank, tag+1, recvHi),
				c.Isend(hiRank, tag, send),
				c.Isend(loRank, tag+1, send),
			}
			for _, q := range reqs {
				q.Wait()
			}
		}
		sum = c.AllreduceSum(sum + 1)
	}
}
