package bench

import (
	"fmt"
	"time"

	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/gpaw"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// DistSolvers runs the real distributed solver layer (not the machine
// model): the SCF loop of internal/gpaw rank-parallel on the in-process
// MPI runtime, for every programming approach across rank counts, and
// reports the band-structure total energy, iteration count and wall
// time per configuration. The energies demonstrate the layer's
// determinism contract live: every row must agree with the serial
// solver bit for bit.
func DistSolvers(opts Options) *Experiment {
	e := &Experiment{
		Name: "dist",
		Caption: "distributed hybrid solvers (real runtime): SCF on a harmonic trap, 8^3 grid,\n" +
			"all approaches x rank counts; E_band must be bit-identical to serial",
		Header: []string{"ranks", "layout", "approach", "E_band (Ha)", "iters", "time"},
	}
	global := topology.Dims{8, 8, 8}
	h := 0.7
	sys := gpaw.System{
		Dims:      global,
		Spacing:   h,
		BC:        gpaw.Dirichlet,
		Vext:      gpaw.HarmonicPotential(global, h, 1),
		Electrons: 2,
	}
	scf := gpaw.NewSCF(sys)
	scf.Tol = 1e-4
	t0 := time.Now()
	serial, err := scf.Run()
	if err != nil {
		panic(fmt.Sprintf("bench: serial SCF: %v", err))
	}
	e.AddRow("1", "serial", "reference", fmt.Sprintf("%.12f", serial.TotalEnergy),
		fmt.Sprintf("%d", serial.Iterations), fmt.Sprintf("%7.3fs", time.Since(t0).Seconds()))

	rankCounts := []int{1, 2, 4, 8}
	if opts.Quick {
		rankCounts = []int{2}
	}
	layouts := map[int]topology.Dims{
		1: {1, 1, 1}, 2: {1, 2, 1}, 4: {2, 2, 1}, 8: {2, 4, 1},
	}
	identical := true
	for _, p := range rankCounts {
		procs := layouts[p]
		for _, a := range core.Approaches {
			mode := mpi.ThreadSingle
			threads := 1
			if a.Hybrid() {
				threads = 2
			}
			if a == core.HybridMultiple {
				mode = mpi.ThreadMultiple
			}
			cfg := gpaw.DistConfig{
				Global: global, Procs: procs, Halo: 2, BC: sys.BC,
				Approach: a, Threads: threads, Batch: 2,
				Map: opts.Map, NetCompute: opts.NetModel,
			}
			var res *gpaw.SCFResult
			body := func(c *mpi.Comm) {
				d, err := gpaw.NewDist(c, cfg)
				if err != nil {
					panic(err)
				}
				defer d.Close()
				ds := gpaw.NewDistSCF(d, sys)
				ds.Tol = 1e-4
				r, err := ds.Run()
				if err != nil {
					panic(err)
				}
				if c.Rank() == 0 {
					res = r
				}
			}
			start := time.Now()
			var err error
			var mk time.Duration
			if opts.NetModel {
				m := bgpsim.NetModelFor(p)
				m.Coords = gpaw.NetCoords(cfg, m.Net)
				m.NoComputeWall = true
				mk, err = mpi.RunModeled(p, mode, m, body)
			} else {
				err = mpi.Run(p, mode, body)
			}
			if err != nil {
				panic(fmt.Sprintf("bench: dist SCF %d ranks %v: %v", p, a, err))
			}
			if res.TotalEnergy != serial.TotalEnergy {
				identical = false
			}
			tcell := fmt.Sprintf("%7.3fs", time.Since(start).Seconds())
			if opts.NetModel {
				tcell = fmt.Sprintf("%8.1fus virt", float64(mk)/1e3)
			}
			e.AddRow(fmt.Sprintf("%d", p), procs.String(), a.String(),
				fmt.Sprintf("%.12f", res.TotalEnergy),
				fmt.Sprintf("%d", res.Iterations), tcell)
		}
	}
	if identical {
		e.AddNote("every configuration reproduced the serial total energy bit for bit")
	} else {
		e.AddNote("DEVIATION: some configuration broke the determinism contract")
	}
	e.AddNote("exact (order-independent) reductions via internal/detsum make the " +
		"energies invariant to rank count, process-grid shape and thread count")
	if opts.NetModel {
		e.AddNote("calibrated network model armed (%s mapping): the time column is the "+
			"deterministic virtual makespan, not host wall time", opts.Map)
	}
	traceArtifacts(e, opts)
	return e
}
