package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestTracedDistAcceptance is the ISSUE acceptance check behind
// `gpawsim -experiment dist -netmodel -trace out.json -profile`: the
// traced run must emit a Perfetto-loadable trace with at least two
// rank tracks carrying nested comm/compute spans, and its profile must
// report overlap efficiency > 0 on the calibrated overlap run.
func TestTracedDistAcceptance(t *testing.T) {
	tr, clock, err := TracedDist(Options{Quick: true, NetModel: true})
	if err != nil {
		t.Fatal(err)
	}
	if clock != trace.Virtual {
		t.Fatalf("netmodel run should use the virtual clock, got %v", clock)
	}

	p := tr.Profile(clock)
	if p.OverlapEfficiency <= 0 {
		t.Errorf("overlap efficiency %.3f, want > 0: the calibrated overlapped CG must hide wait time",
			p.OverlapEfficiency)
	}
	table := p.Table()
	for _, want := range []string{"overlap efficiency", "poisson.cg", "compute.interior", "halo.wait"} {
		if !strings.Contains(table, want) {
			t.Errorf("profile table lacks %q:\n%s", want, table)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, clock); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	tracks := map[int]bool{}
	type span struct {
		name    string
		ts, dur float64
	}
	perTrack := map[int][]span{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			tracks[e.Tid] = true
			perTrack[e.Tid] = append(perTrack[e.Tid], span{e.Name, e.Ts, e.Dur})
		}
	}
	if len(tracks) < 2 {
		t.Fatalf("trace has %d rank tracks, want >= 2", len(tracks))
	}
	// At least one comm span strictly inside a compute/solver region on
	// some track — the nesting Perfetto renders as stacked slices.
	nested := false
	for _, spans := range perTrack {
		for _, outer := range spans {
			if strings.HasPrefix(outer.name, "mpi.") || strings.HasPrefix(outer.name, "halo.") {
				continue
			}
			for _, inner := range spans {
				if inner == outer || !(strings.HasPrefix(inner.name, "mpi.") || strings.HasPrefix(inner.name, "halo.")) {
					continue
				}
				if inner.ts >= outer.ts && inner.ts+inner.dur <= outer.ts+outer.dur && inner.dur < outer.dur {
					nested = true
				}
			}
		}
		if nested {
			break
		}
	}
	if !nested {
		t.Error("no comm span nested inside a compute/solver region on any track")
	}
}

// TestTracedDistDeterministic re-runs the modeled traced workload and
// requires identical virtual timelines — the NoComputeWall contract.
func TestTracedDistDeterministic(t *testing.T) {
	render := func() string {
		tr, clock, err := TracedDist(Options{Quick: true, NetModel: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf, clock); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("two modeled traced runs produced different virtual timelines")
	}
}
