package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gpaw"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// BandSolvers runs the band-parallel SCF loop live on the in-process
// MPI runtime: the bands x domain 2D layout sweeps band-group counts
// against domain decompositions, with the dense subspace algebra
// distributed block-cyclically through internal/pblas. Every row's
// band-structure energy must reproduce the serial solver bit for bit —
// the determinism contract of the second parallelization axis.
func BandSolvers(opts Options) *Experiment {
	e := &Experiment{
		Name: "bands",
		Caption: "band-parallel SCF (real runtime): 8 electrons in a harmonic trap, 8^3 grid,\n" +
			"bands x domain layouts with pblas-distributed subspace algebra;\n" +
			"E_band must be bit-identical to serial",
		Header: []string{"ranks", "bands", "domain", "approach", "E_band (Ha)", "iters", "time"},
	}
	global := topology.Dims{8, 8, 8}
	h := 0.7
	sys := gpaw.System{
		Dims:      global,
		Spacing:   h,
		BC:        gpaw.Dirichlet,
		Vext:      gpaw.HarmonicPotential(global, h, 1),
		Electrons: 8, // four states: s + the closed p shell
	}
	scf := gpaw.NewSCF(sys)
	scf.Tol = 1e-4
	t0 := time.Now()
	serial, err := scf.Run()
	if err != nil {
		panic(fmt.Sprintf("bench: serial SCF: %v", err))
	}
	e.AddRow("1", "1", "-", "reference", fmt.Sprintf("%.12f", serial.TotalEnergy),
		fmt.Sprintf("%d", serial.Iterations), fmt.Sprintf("%7.3fs", time.Since(t0).Seconds()))

	type layout struct {
		bands int
		procs topology.Dims
	}
	layouts := []layout{
		{1, topology.Dims{1, 2, 1}},
		{2, topology.Dims{1, 1, 1}},
		{2, topology.Dims{1, 2, 1}},
		{4, topology.Dims{1, 1, 1}},
		{2, topology.Dims{2, 2, 1}},
		{4, topology.Dims{1, 2, 1}},
	}
	if opts.Quick {
		layouts = []layout{{2, topology.Dims{1, 2, 1}}}
	}
	identical := true
	for _, l := range layouts {
		approaches := []core.Approach{core.FlatOptimized, core.HybridMultiple}
		if l.bands == 2 && l.procs.Count() == 2 && !opts.Quick {
			approaches = core.Approaches // full approach sweep on the 2x2 point
		}
		for _, a := range approaches {
			mode := mpi.ThreadSingle
			threads := 1
			if a.Hybrid() {
				threads = 2
			}
			if a == core.HybridMultiple {
				mode = mpi.ThreadMultiple
			}
			var res *gpaw.SCFResult
			start := time.Now()
			err := mpi.Run(l.bands*l.procs.Count(), mode, func(c *mpi.Comm) {
				d, err := gpaw.NewDist(c, gpaw.DistConfig{
					Global: global, Procs: l.procs, Bands: l.bands, Halo: 2, BC: sys.BC,
					Approach: a, Threads: threads, Batch: 2,
				})
				if err != nil {
					panic(err)
				}
				defer d.Close()
				ds := gpaw.NewDistSCF(d, sys)
				ds.Tol = 1e-4
				r, err := ds.Run()
				if err != nil {
					panic(err)
				}
				if c.Rank() == 0 {
					res = r
				}
			})
			if err != nil {
				panic(fmt.Sprintf("bench: band SCF %dx%v %v: %v", l.bands, l.procs, a, err))
			}
			if res.TotalEnergy != serial.TotalEnergy {
				identical = false
			}
			e.AddRow(fmt.Sprintf("%d", l.bands*l.procs.Count()),
				fmt.Sprintf("%d", l.bands), l.procs.String(), a.String(),
				fmt.Sprintf("%.12f", res.TotalEnergy),
				fmt.Sprintf("%d", res.Iterations),
				fmt.Sprintf("%7.3fs", time.Since(start).Seconds()))
		}
	}
	if identical {
		e.AddNote("every bands x domain layout reproduced the serial total energy bit for bit")
	} else {
		e.AddNote("DEVIATION: some layout broke the determinism contract")
	}
	e.AddNote("subspace matrices assemble band-parallel (detsum-exact domain reductions,\n" +
		"verbatim row merges); Cholesky/eigensolve/rotation run distributed via internal/pblas")
	return e
}
