package bench

import (
	"fmt"
	"math"
	"os"

	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/gpaw"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/trace"
)

// TracedDist runs one representative traced distributed workload and
// returns the tracer plus the clock its events should be read with:
// the deterministic virtual clock when opts.NetModel armed the
// calibrated transport (NoComputeWall, so repeated runs produce
// identical timelines), wall time otherwise. The run is 4 ranks on a
// 2x2x1 grid (2 ranks on 1x2x1 with Quick) and has two segments under
// the flat-optimized split-phase protocol: a 16^3 periodic Poisson CG
// solve whose sub-domains carry a real deep interior — the overlap the
// profile's efficiency line measures — followed by the harmonic-trap
// SCF of DistSolvers for the full solver phase variety (eigensolver,
// subspace algebra, density, Hartree).
func TracedDist(opts Options) (*trace.Tracer, trace.Clock, error) {
	p, procs := 4, topology.Dims{2, 2, 1}
	if opts.Quick {
		p, procs = 2, topology.Dims{1, 2, 1}
	}
	scfGlobal := topology.Dims{8, 8, 8}
	h := 0.7
	sys := gpaw.System{
		Dims:      scfGlobal,
		Spacing:   h,
		BC:        gpaw.Dirichlet,
		Vext:      gpaw.HarmonicPotential(scfGlobal, h, 1),
		Electrons: 2,
	}
	scfCfg := gpaw.DistConfig{
		Global: scfGlobal, Procs: procs, Halo: 2, BC: sys.BC,
		Approach: core.FlatOptimized, Threads: 1, Batch: 2,
		Map: opts.Map, NetCompute: opts.NetModel,
	}
	cgGlobal := topology.Dims{16, 16, 16}
	cgCfg := gpaw.DistConfig{
		Global: cgGlobal, Procs: procs, Halo: 2, BC: gpaw.Periodic,
		Approach: core.FlatOptimized, Threads: 1, Batch: 1,
		Map: opts.Map, NetCompute: opts.NetModel,
	}
	cgRhs := grid.NewDims(cgGlobal, 2)
	cgRhs.FillFunc(func(i, j, k int) float64 {
		dx, dy, dz := float64(i)-6.5, float64(j)-8.5, float64(k)-5.5
		return math.Exp(-(dx*dx + dy*dy + dz*dz) / 9)
	})
	tr := trace.New(p, 1<<16)
	w := mpi.NewWorld(p, mpi.ThreadSingle)
	clock := trace.Wall
	if opts.NetModel {
		m := bgpsim.NetModelFor(p)
		m.Coords = gpaw.NetCoords(cgCfg, m.Net)
		m.NoComputeWall = true
		w.SetNetModel(m)
		clock = trace.Virtual
	}
	w.SetTracer(tr)
	err := w.Run(func(c *mpi.Comm) {
		// Segment 1: overlapped CG with a non-empty deep interior.
		dcg, err := gpaw.NewDist(c, cgCfg)
		if err != nil {
			panic(err)
		}
		ps := gpaw.NewDistPoisson(dcg, 0.3)
		phi := dcg.NewLocalGrid()
		if _, _, err := ps.SolveCG(phi, dcg.ScatterReplicated(cgRhs)); err != nil {
			panic(err)
		}
		dcg.Close()
		// Segment 2: the full SCF solver stack.
		d, err := gpaw.NewDist(c, scfCfg)
		if err != nil {
			panic(err)
		}
		defer d.Close()
		ds := gpaw.NewDistSCF(d, sys)
		ds.Tol = 1e-4
		if _, err := ds.Run(); err != nil {
			panic(err)
		}
	})
	return tr, clock, err
}

// traceArtifacts honors opts.TraceOut and opts.Profile on an
// experiment that ran the live distributed runtime: one traced SCF is
// re-run with TracedDist, its timeline written as a Chrome/Perfetto
// trace-event file and its per-phase profile appended to the notes.
func traceArtifacts(e *Experiment, opts Options) {
	if opts.TraceOut == "" && !opts.Profile {
		return
	}
	tr, clock, err := TracedDist(opts)
	if err != nil {
		panic(fmt.Sprintf("bench: traced dist SCF: %v", err))
	}
	if opts.TraceOut != "" {
		f, err := os.Create(opts.TraceOut)
		if err != nil {
			panic(fmt.Sprintf("bench: trace output: %v", err))
		}
		if err := tr.WriteChromeTrace(f, clock); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			panic(fmt.Sprintf("bench: trace output: %v", err))
		}
		e.AddNote("wrote %s: Chrome/Perfetto trace of one flat-optimized CG+SCF run, one track per rank (%s clock)",
			opts.TraceOut, clock)
	}
	if opts.Profile {
		e.AddNote("phase profile of one traced flat-optimized CG+SCF run:\n%s", tr.Profile(clock).Table())
	}
}
