package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gpaw"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// Faults demonstrates the fault-tolerant runtime live: the distributed
// SCF runs with a rank killed mid-flight, the survivors agree on the
// new membership, shrink, re-tile the last checkpoint onto the smaller
// process grid and resume — and every recovered energy must still match
// the serial solver bit for bit. One row per (ranks, victim, kill
// iteration); the "grid after" column shows the survivor decomposition
// recovery chose.
func Faults(opts Options) *Experiment {
	e := &Experiment{
		Name: "faults",
		Caption: "fault injection + shrink-to-survivors recovery: SCF on a harmonic trap, 8^3\n" +
			"grid; a rank is killed at the named iteration, survivors recover from the last\n" +
			"checkpoint; E_band must remain bit-identical to serial",
		Header: []string{"ranks", "victim", "kill at", "grid after", "E_band (Ha)", "iters", "recovered", "time"},
	}
	global := topology.Dims{8, 8, 8}
	h := 0.7
	sys := gpaw.System{
		Dims:      global,
		Spacing:   h,
		BC:        gpaw.Dirichlet,
		Vext:      gpaw.HarmonicPotential(global, h, 1),
		Electrons: 2,
	}
	scf := gpaw.NewSCF(sys)
	scf.Tol = 1e-4
	serial, err := scf.Run()
	if err != nil {
		panic(fmt.Sprintf("bench: serial SCF: %v", err))
	}
	e.AddRow("1", "-", "-", "serial", fmt.Sprintf("%.12f", serial.TotalEnergy),
		fmt.Sprintf("%d", serial.Iterations), "-", "-")

	type kill struct {
		ranks, victim, at int
		procs             topology.Dims
	}
	mid := (serial.Iterations + 1) / 2
	cases := []kill{
		{4, 1, 1, topology.Dims{2, 2, 1}},
		{4, 3, mid, topology.Dims{2, 2, 1}},
		{8, 7, serial.Iterations, topology.Dims{2, 4, 1}},
	}
	if opts.Quick {
		cases = cases[1:2]
	}
	identical := true
	for _, k := range cases {
		store := gpaw.NewMemStore()
		var res *gpaw.SCFResult
		var after topology.Dims
		start := time.Now()
		err := mpi.Run(k.ranks, mpi.ThreadSingle, func(c *mpi.Comm) {
			ft := gpaw.FTConfig{
				Store: store, Every: 1, Recover: true,
				Configure: func(s *gpaw.DistSCF) {
					s.Tol = 1e-4
					s.OnIteration = func(it int) {
						if it == k.at && c.Rank() == k.victim {
							c.Fail()
						}
					}
				},
				OnResult: func(d *gpaw.Dist, r *gpaw.SCFResult) {
					if d.World.Rank() == 0 {
						after = d.Decomp.Procs
					}
				},
			}
			r, err := gpaw.RunSCFFT(c, gpaw.DistConfig{
				Global: global, Procs: k.procs, Halo: 2, BC: sys.BC,
				Approach: core.FlatOptimized, Threads: 1, Batch: 2,
			}, sys, ft)
			if err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			panic(fmt.Sprintf("bench: faults %d ranks: %v", k.ranks, err))
		}
		if res.TotalEnergy != serial.TotalEnergy {
			identical = false
		}
		e.AddRow(fmt.Sprintf("%d", k.ranks), fmt.Sprintf("%d", k.victim),
			fmt.Sprintf("it %d", k.at), after.String(),
			fmt.Sprintf("%.12f", res.TotalEnergy), fmt.Sprintf("%d", res.Iterations),
			"yes", fmt.Sprintf("%7.3fs", time.Since(start).Seconds()))
	}
	if identical {
		e.AddNote("every recovered run reproduced the serial total energy bit for bit")
	} else {
		e.AddNote("DEVIATION: a recovered run broke the determinism contract")
	}
	e.AddNote("recovery = typed failure detection (never a hang) + Agree/Shrink membership + " +
		"checkpoint re-tiling onto the survivor grid; exact reductions keep the resumed " +
		"iterations bitwise on any decomposition")
	return e
}
