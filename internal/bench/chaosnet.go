package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gpaw"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// ChaosNet demonstrates the lossy-transport chaos layer and the
// silent-data-corruption defense live. The distributed SCF runs over a
// transport that drops, duplicates, reorders, bit-flips and delays
// messages while the reliability sublayer (CRC32C framing, sequence
// numbers, retransmit with backoff) heals every fault; a second battery
// flips a bit in live solver state and lets the SDC guard detect it and
// the FT driver roll back to the last good checkpoint. Every run's
// energy must still match the serial solver bit for bit, with the
// reliability counters showing how much chaos was absorbed on the way.
func ChaosNet(opts Options) *Experiment {
	e := &Experiment{
		Name: "chaosnet",
		Caption: "lossy transport + SDC defense: SCF on a harmonic trap, 8^3 grid; messages are\n" +
			"dropped/duplicated/reordered/bit-flipped/delayed and healed by the reliability\n" +
			"sublayer; one run additionally suffers injected bit-rot and rolls back to the\n" +
			"last good checkpoint; E_band must remain bit-identical to serial",
		Header: []string{"scenario", "ranks", "injected", "retransmits", "dup-suppr", "crc-rej", "E_band (Ha)", "identical", "time"},
	}
	global := topology.Dims{8, 8, 8}
	h := 0.7
	sys := gpaw.System{
		Dims:      global,
		Spacing:   h,
		BC:        gpaw.Dirichlet,
		Vext:      gpaw.HarmonicPotential(global, h, 1),
		Electrons: 2,
	}
	scf := gpaw.NewSCF(sys)
	scf.Tol = 1e-4
	serial, err := scf.Run()
	if err != nil {
		panic(fmt.Sprintf("bench: serial SCF: %v", err))
	}
	e.AddRow("serial reference", "1", "-", "-", "-", "-",
		fmt.Sprintf("%.12f", serial.TotalEnergy), "-", "-")

	type scenario struct {
		name  string
		ranks int
		procs topology.Dims
		msg   *mpi.MsgFaults
		sdc   bool // inject bit-rot into solver state, recover via rollback
	}
	scenarios := []scenario{
		{"drop 2%", 4, topology.Dims{2, 2, 1}, &mpi.MsgFaults{Seed: 1, Drop: 0.02}, false},
		{"dup 5% + reorder 10%", 4, topology.Dims{2, 2, 1}, &mpi.MsgFaults{Seed: 2, Dup: 0.05, Reorder: 0.1}, false},
		{"bit-flip 2% + delay 5%", 4, topology.Dims{2, 2, 1}, &mpi.MsgFaults{Seed: 3, Corrupt: 0.02, DelayProb: 0.05}, false},
		{"all faults, 8 ranks", 8, topology.Dims{2, 4, 1}, &mpi.MsgFaults{Seed: 4, Drop: 0.01, Dup: 0.02, Reorder: 0.05, Corrupt: 0.01, DelayProb: 0.02}, false},
		{"SDC bit-rot + rollback", 4, topology.Dims{2, 2, 1}, &mpi.MsgFaults{Seed: 5, Drop: 0.01, Corrupt: 0.01}, true},
	}
	if opts.Quick {
		scenarios = []scenario{scenarios[0], scenarios[4]}
	}
	identical := true
	for _, sc := range scenarios {
		store := gpaw.NewMemStore()
		var res *gpaw.SCFResult
		var rel mpi.RelStats
		start := time.Now()
		err := mpi.RunWithFaults(sc.ranks, mpi.ThreadSingle, &mpi.FaultPlan{Msg: sc.msg}, func(c *mpi.Comm) {
			inj := gpaw.NewBitRotInjector(2)
			ft := gpaw.FTConfig{
				Store: store, Every: 1, Keep: 3, Recover: true,
				Configure: func(s *gpaw.DistSCF) {
					s.Tol = 1e-4
					if sc.sdc && c.Rank() == 0 {
						s.Guard.Tamper = inj
					}
				},
			}
			r, err := gpaw.RunSCFFT(c, gpaw.DistConfig{
				Global: global, Procs: sc.procs, Halo: 2, BC: sys.BC,
				Approach: core.FlatOptimized, Threads: 1, Batch: 2, ABFT: true,
			}, sys, ft)
			if err != nil {
				panic(err)
			}
			c.Barrier()
			if c.Rank() == 0 {
				res = r
				rel = c.World().NetRelTotals()
			}
		})
		if err != nil {
			panic(fmt.Sprintf("bench: chaosnet %q: %v", sc.name, err))
		}
		same := res.TotalEnergy == serial.TotalEnergy && res.Iterations == serial.Iterations
		if !same {
			identical = false
		}
		e.AddRow(sc.name, fmt.Sprintf("%d", sc.ranks),
			fmt.Sprintf("%d", rel.Injected()), fmt.Sprintf("%d", rel.Retransmits),
			fmt.Sprintf("%d", rel.DupSuppressed), fmt.Sprintf("%d", rel.CRCRejected),
			fmt.Sprintf("%.12f", res.TotalEnergy), fmt.Sprintf("%v", same),
			fmt.Sprintf("%7.3fs", time.Since(start).Seconds()))
	}
	if identical {
		e.AddNote("every chaos run reproduced the serial total energy bit for bit")
	} else {
		e.AddNote("DEVIATION: a chaos run broke the determinism contract")
	}
	e.AddNote("reliable delivery = CRC32C framing + sequence numbers + retransmit with capped " +
		"exponential backoff; SDC defense = ABFT checksums on the dense kernels + field/residual " +
		"sanity monitors + rollback to the newest checkpoint generation that passes CRC64 validation")
	return e
}
