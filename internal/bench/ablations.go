package bench

import (
	"fmt"

	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/topology"
)

// ablationWorkload is the Figure 6 workload at 4096 cores — large enough
// that every optimization is visible, small enough to sweep quickly.
func ablationWorkload() (bgpsim.Workload, int) {
	return bgpsim.Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: 4096}, 4096
}

// AblationLatencyHiding isolates the section-V optimizations one at a
// time on the flat layout: serialized blocking exchange (the original),
// async exchange, async + double buffering, and async + double buffering
// + batching (the full Flat optimized).
func AblationLatencyHiding(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Ablation: latency hiding",
		Caption: "Flat layout at 4096 cores, 4096 grids of 192^3; optimizations added cumulatively",
		Header:  []string{"configuration", "time (s)", "vs original"},
	}
	w, cores := ablationWorkload()
	prm := opt.params()
	run := func(exch core.ExchangeMode, db bool, batch int) float64 {
		cfg := bgpsim.Config{Cores: cores, Approach: core.FlatOptimized, BatchSize: batch,
			BatchRamp: batch > 1, Params: prm}
		if exch == core.ExchangeSerialized {
			cfg.Approach = core.FlatOriginal
		} else if !db {
			// Async without double buffering: emulate by disabling the
			// pipeline via batch-equals-total (single exposed batch) —
			// instead use a dedicated flag through params? The simulator
			// derives protocol from the approach; FlatOptimized always
			// double-buffers. We approximate async-without-overlap by
			// setting the batch to the whole job, leaving nothing to
			// pipeline.
			cfg.BatchSize = w.NumGrids
			cfg.BatchRamp = false
		}
		return simulate(w, cfg).Time
	}
	orig := run(core.ExchangeSerialized, false, 1)
	asyncOnly := run(core.ExchangeAsync, false, 1)
	asyncDB := run(core.ExchangeAsync, true, 1)
	full := run(core.ExchangeAsync, true, 16)
	e.AddRow("serialized blocking (original)", fmt.Sprintf("%.3f", orig), "1.00x")
	e.AddRow("async all-dims, no overlap", fmt.Sprintf("%.3f", asyncOnly), fmt.Sprintf("%.2fx", orig/asyncOnly))
	e.AddRow("async + double buffering", fmt.Sprintf("%.3f", asyncDB), fmt.Sprintf("%.2fx", orig/asyncDB))
	e.AddRow("async + double buffering + batch 16", fmt.Sprintf("%.3f", full), fmt.Sprintf("%.2fx", orig/full))
	e.AddNote("paper: latency hiding is the primary factor for the improvement")
	return e
}

// AblationBatchSweep sweeps the batch size at 16 384 cores, reproducing
// the methodology behind 'the best batch-size has been found'.
func AblationBatchSweep(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Ablation: batch size",
		Caption: "Hybrid multiple and Flat optimized at 4096 cores, 4096 grids of 192^3",
		Header:  []string{"batch", "Flat optimized (s)", "Hybrid multiple (s)"},
	}
	w, cores := ablationWorkload()
	prm := opt.params()
	batches := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if opt.Quick {
		batches = []int{1, 8, 64}
	}
	for _, b := range batches {
		fo := simulate(w, bgpsim.Config{Cores: cores, Approach: core.FlatOptimized, BatchSize: b, BatchRamp: b > 1, Params: prm})
		hm := simulate(w, bgpsim.Config{Cores: cores, Approach: core.HybridMultiple, BatchSize: b, BatchRamp: b > 1, Params: prm})
		e.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%.3f", fo.Time), fmt.Sprintf("%.3f", hm.Time))
	}
	return e
}

// AblationBatchRamp compares constant batches against the ramped initial
// batch the paper proposes for double-buffered pipelines.
func AblationBatchRamp(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Ablation: batch ramp-up",
		Caption: "Hybrid multiple at 4096 cores, 4096 grids; large batches with and without initial ramp",
		Header:  []string{"batch", "no ramp (s)", "ramp (s)"},
	}
	w, cores := ablationWorkload()
	prm := opt.params()
	batches := []int{32, 64, 128, 256}
	if opt.Quick {
		batches = []int{64}
	}
	for _, b := range batches {
		off := simulate(w, bgpsim.Config{Cores: cores, Approach: core.HybridMultiple, BatchSize: b, BatchRamp: false, Params: prm})
		on := simulate(w, bgpsim.Config{Cores: cores, Approach: core.HybridMultiple, BatchSize: b, BatchRamp: true, Params: prm})
		e.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%.4f", off.Time), fmt.Sprintf("%.4f", on.Time))
	}
	e.AddNote("ramp halves the first batch so computation starts sooner (section V)")
	return e
}

// AblationPartitionControl reproduces the section-VII control
// experiment: Flat optimized with grids statically split into four
// groups performs like Hybrid multiple, proving partition level is the
// cause of the hybrid advantage.
func AblationPartitionControl(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Ablation: partition level (section VII control)",
		Caption: "16384 cores, 16384 grids of 192^3, batch 16",
		Header:  []string{"configuration", "time (s)"},
	}
	prm := opt.params()
	w := bgpsim.Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: 16384}
	cfg := bgpsim.Config{Cores: 16384, BatchSize: 16, BatchRamp: true, Params: prm}
	cfg.Approach = core.FlatOptimized
	flat := simulate(w, cfg)
	cfg.SplitGroups = true
	split := simulate(w, cfg)
	cfg.SplitGroups = false
	cfg.Approach = core.HybridMultiple
	hyb := simulate(w, cfg)
	e.AddRow("Flat optimized", fmt.Sprintf("%.3f", flat.Time))
	e.AddRow("Flat optimized, 4-way grid groups", fmt.Sprintf("%.3f", split.Time))
	e.AddRow("Hybrid multiple", fmt.Sprintf("%.3f", hyb.Time))
	e.AddNote("paper: the grouped flat variant performs identically to Hybrid multiple, so the "+
		"partitioning level is the sole cause of the difference (measured gap %.1f%%)",
		(split.Time/hyb.Time-1)*100)
	return e
}

// AblationThreadMode quantifies the MULTIPLE-mode lock cost by zeroing
// it: the hybrid-multiple advantage grows without the lock, which is why
// master-only chose SINGLE mode.
func AblationThreadMode(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Ablation: MPI thread mode",
		Caption: "Hybrid multiple at 4096 cores, 4096 grids, batch 1 vs 16, with and without MULTIPLE lock cost",
		Header:  []string{"batch", "with lock (s)", "lock-free (s)"},
	}
	w, cores := ablationWorkload()
	with := opt.params()
	without := with
	without.MultipleLock = 0
	for _, b := range []int{1, 16} {
		on := simulate(w, bgpsim.Config{Cores: cores, Approach: core.HybridMultiple, BatchSize: b, BatchRamp: b > 1, Params: with})
		off := simulate(w, bgpsim.Config{Cores: cores, Approach: core.HybridMultiple, BatchSize: b, BatchRamp: b > 1, Params: without})
		e.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%.3f", on.Time), fmt.Sprintf("%.3f", off.Time))
	}
	e.AddNote("the lock penalty is per MPI call, so batching amortizes it — the reason batching " +
		"helps Hybrid multiple more than Flat optimized (Figure 5)")
	return e
}

// AblationMeshVsTorus shows the partition-shape penalty: below 512 nodes
// only a mesh is available and periodic wrap traffic crosses the whole
// dimension. The penalty is visible in the serialized original, whose
// transfers are exposed; with double buffering (flat optimized) the
// slower links hide behind computation — itself a finding worth a row.
func AblationMeshVsTorus(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Ablation: mesh vs torus partition",
		Caption: "1024 cores (256 nodes: mesh), 1024 grids of 192^3",
		Header:  []string{"configuration", "mesh wrap (s)", "ideal torus (s)"},
	}
	w := bgpsim.Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: 1024}
	on := opt.params()
	off := on
	off.MeshSharePenalty = false
	run := func(a core.Approach, batch int, p bgpsim.Params) float64 {
		return simulate(w, bgpsim.Config{Cores: 1024, Approach: a, BatchSize: batch,
			BatchRamp: batch > 1, Params: p}).Time
	}
	e.AddRow("Flat original (exposed transfers)",
		fmt.Sprintf("%.3f", run(core.FlatOriginal, 1, on)),
		fmt.Sprintf("%.3f", run(core.FlatOriginal, 1, off)))
	e.AddRow("Flat optimized (overlapped, batch 8)",
		fmt.Sprintf("%.3f", run(core.FlatOptimized, 8, on)),
		fmt.Sprintf("%.3f", run(core.FlatOptimized, 8, off)))
	e.AddNote("partitions under 512 nodes can only form a mesh (section V); " +
		"latency hiding also hides the mesh's slower effective links")
	return e
}

// AblationElementSize compares real (8-byte) against complex (16-byte)
// wave-functions; section IV notes every grid point can be either. The
// doubled surface traffic widens the flat-vs-hybrid gap.
func AblationElementSize(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Ablation: real vs complex grid points",
		Caption: "4096 cores, 4096 grids of 192^3, batch 16",
		Header:  []string{"element", "Flat optimized (s)", "Hybrid multiple (s)", "hybrid advantage"},
	}
	prm := opt.params()
	for _, elem := range []int{8, 16} {
		w := bgpsim.Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: 4096, Elem: elem}
		fo := simulate(w, bgpsim.Config{Cores: 4096, Approach: core.FlatOptimized, BatchSize: 16, BatchRamp: true, Params: prm})
		hm := simulate(w, bgpsim.Config{Cores: 4096, Approach: core.HybridMultiple, BatchSize: 16, BatchRamp: true, Params: prm})
		name := "real (8 B)"
		if elem == 16 {
			name = "complex (16 B)"
		}
		e.AddRow(name, fmt.Sprintf("%.3f", fo.Time), fmt.Sprintf("%.3f", hm.Time),
			fmt.Sprintf("%.1f%%", (fo.Time/hm.Time-1)*100))
	}
	e.AddNote("complex grids double every surface message (section IV: 8 or 16 bytes per point)")
	return e
}

// AblationMasterOnlySync shows the per-grid synchronization cost of the
// master-only approach growing with the grid count while hybrid
// multiple's single join stays constant.
func AblationMasterOnlySync(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Ablation: thread synchronization",
		Caption: "256 cores, 192^3 grids, batch 8: master-only gap vs hybrid multiple as grids grow",
		Header:  []string{"grids", "hybrid multiple (s)", "master-only (s)", "gap (ms)"},
	}
	prm := opt.params()
	counts := []int{32, 128, 512, 2048}
	if opt.Quick {
		counts = []int{32, 512}
	}
	for _, g := range counts {
		w := bgpsim.Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: g}
		h := simulate(w, bgpsim.Config{Cores: 256, Approach: core.HybridMultiple, BatchSize: 8, BatchRamp: true, Params: prm})
		m := simulate(w, bgpsim.Config{Cores: 256, Approach: core.HybridMasterOnly, BatchSize: 8, BatchRamp: true, Params: prm})
		e.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%.4f", h.Time), fmt.Sprintf("%.4f", m.Time),
			fmt.Sprintf("%.1f", (m.Time-h.Time)*1e3))
	}
	e.AddNote("paper: master-only synchronization grows proportional to the number of grids; " +
		"hybrid multiple's overhead is small and constant")
	return e
}
