package bench

import (
	"fmt"

	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/topology"
)

// Options tunes the experiment drivers.
type Options struct {
	// Quick shrinks sweeps so the driver finishes in well under a second
	// (used by unit tests); the full sweeps reproduce the paper's axes.
	Quick bool
	// Params overrides the calibrated machine model when non-zero.
	Params bgpsim.Params
	// NetModel arms the calibrated network model on the live-runtime
	// experiments (dist): every message pays modeled latency/bandwidth
	// cost and the time column reports deterministic virtual makespans
	// instead of host wall time.
	NetModel bool
	// Map picks the rank placement on the simulated torus for
	// NetModel runs (linear, cart, shuffle).
	Map topology.Mapping
	// TraceOut, when non-empty, makes the live-runtime experiments
	// (dist) write a Chrome/Perfetto trace-event file of one traced
	// SCF run to this path — one timeline track per rank, nested
	// comm/compute spans, virtual timestamps when NetModel is armed.
	TraceOut string
	// Profile appends the traced run's per-phase profile table
	// (count, time, bytes, %comm vs %compute, overlap efficiency) to
	// the experiment's notes.
	Profile bool
}

func (o Options) params() bgpsim.Params {
	if o.Params == (bgpsim.Params{}) {
		return bgpsim.DefaultParams()
	}
	return o.Params
}

// fig6Applications scales one operator application to the paper's
// Figure 6 wall-clock magnitudes (~40 s for flat original at 16 384
// cores); see EXPERIMENTS.md for the calibration.
const fig6Applications = 55

// simulate wraps bgpsim.Simulate, panicking on configuration errors —
// drivers only build valid configurations.
func simulate(w bgpsim.Workload, cfg bgpsim.Config) bgpsim.Result {
	r, err := bgpsim.Simulate(w, cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return r
}

// bestBatch simulates the configuration over a batch-size sweep and
// returns the fastest result and the batch that achieved it ("the best
// batch-size has been found for every number of CPU-cores").
func bestBatch(w bgpsim.Workload, cfg bgpsim.Config, batches []int) (bgpsim.Result, int) {
	var best bgpsim.Result
	bestB := 0
	for _, b := range batches {
		cfg.BatchSize = b
		cfg.BatchRamp = b > 1
		r := simulate(w, cfg)
		if bestB == 0 || r.Time < best.Time {
			best, bestB = r, b
		}
	}
	return best, bestB
}

func batchSweep(quick bool) []int {
	if quick {
		return []int{1, 8, 64}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

// Table1 reproduces Table I: the hardware description of a Blue Gene/P
// node, straight from the machine model's constants.
func Table1() *Experiment {
	e := &Experiment{
		Name:    "Table I",
		Caption: "Hardware description of a Blue Gene/P node (model constants)",
		Header:  []string{"property", "value"},
	}
	e.AddRow("Node CPU", "Four PowerPC 450 cores")
	e.AddRow("CPU frequency", fmt.Sprintf("%.0f MHz", bgpsim.ClockHz/1e6))
	e.AddRow("L1 cache (private)", fmt.Sprintf("%dKB per core", bgpsim.L1Bytes>>10))
	e.AddRow("L2 cache (private)", "Seven stream prefetching")
	e.AddRow("L3 cache (shared)", fmt.Sprintf("%dMB", bgpsim.L3Bytes>>20))
	e.AddRow("Main memory", fmt.Sprintf("%dGB", bgpsim.MemoryBytes>>30))
	e.AddRow("Main memory bandwidth", fmt.Sprintf("%.1fGB/s", bgpsim.MemBandwidth/1e9))
	e.AddRow("Peak performance", fmt.Sprintf("%.1f Gflops/node", bgpsim.PeakFlopsNode/1e9))
	e.AddRow("Torus bandwidth", fmt.Sprintf("6 x 2 x %.0fMB/s = %.1fGB/s",
		bgpsim.LinkBandwidth/1e6, 12*bgpsim.LinkBandwidth/1e9))
	return e
}

// Figure2 reproduces the bandwidth-vs-message-size experiment: one MPI
// message between two neighbouring BGP nodes.
func Figure2(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Figure 2",
		Caption: "Point-to-point bandwidth vs message size between neighbouring nodes",
		Header:  []string{"bytes", "MB/s"},
	}
	p := opt.params()
	sizes := []int64{1, 2, 5, 10, 20, 50, 100, 200, 500,
		1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
		100_000, 200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000}
	if opt.Quick {
		sizes = []int64{1, 100, 1_000, 100_000, 10_000_000}
	}
	for _, s := range sizes {
		e.AddRow(fmt.Sprintf("%d", s), fmt.Sprintf("%.1f", p.Bandwidth(s)/1e6))
	}
	asym := p.EffLinkBandwidth() / 1e6
	e.AddNote("asymptote %.0f MB/s; half bandwidth at ~%.0f bytes (paper: ~10^3 bytes, saturation above 10^5)",
		asym, p.MsgLatency*p.EffLinkBandwidth())
	return e
}

// figure5Workload is the paper's Figure 5 job: 32 grids of 144^3, the
// largest job that fits a single core's memory for the speedup baseline.
func figure5Workload() bgpsim.Workload {
	return bgpsim.Workload{GridSize: topology.Dims{144, 144, 144}, NumGrids: 32}
}

// Figure5 reproduces the two speedup panels: 32 grids of 144^3 versus a
// sequential execution, with batching disabled (left) or batch size 8
// (right).
func Figure5(batching bool, opt Options) *Experiment {
	panel := "left: batching disabled"
	if batching {
		panel = "right: batch-size 8"
	}
	e := &Experiment{
		Name:    "Figure 5 (" + panel + ")",
		Caption: "Speedup of the FD operation vs sequential; 32 grids of 144^3, periodic BC",
		Header:  []string{"cores", "Flat original", "Flat optimized", "Hybrid multiple", "Hybrid master-only"},
	}
	w := figure5Workload()
	cores := []int{1, 4, 16, 64, 256, 512, 1024, 2048, 4096}
	if opt.Quick {
		cores = []int{1, 64, 1024, 4096}
	}
	prm := opt.params()
	seq := simulate(w, bgpsim.Config{Cores: 1, Approach: core.FlatOriginal, BatchSize: 1, Params: prm})
	for _, c := range cores {
		row := []string{fmt.Sprintf("%d", c)}
		for _, a := range core.Approaches {
			batch := 1
			if batching && a != core.FlatOriginal {
				batch = 8
			}
			r := simulate(w, bgpsim.Config{Cores: c, Approach: a, BatchSize: batch, BatchRamp: batch > 1, Params: prm})
			row = append(row, fmt.Sprintf("%.0f", seq.Time/r.Time))
		}
		e.AddRow(row...)
	}
	e.AddNote("paper: best scaling from Flat optimized and Hybrid multiple with batch 8; " +
		"batching helps Hybrid multiple more than Flat optimized")
	return e
}

// Figure6 reproduces the Gustafson graph: grids grow with cores (one
// grid of 192^3 per core), with the best batch size per point, plus the
// communication-per-node series of the right axis.
func Figure6(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Figure 6",
		Caption: "Gustafson graph: running time (s) with grids = cores (192^3), best batch per point; right axis: communication per node (MB)",
		Header: []string{"cores", "Flat original", "Flat optimized", "Hybrid multiple",
			"Hybrid master-only", "Flat comm MB", "Hybrid comm MB"},
	}
	cores := []int{1, 512, 2048, 4096, 8192, 16384}
	if opt.Quick {
		cores = []int{1, 2048, 16384}
	}
	prm := opt.params()
	for _, c := range cores {
		w := bgpsim.Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: c, Applications: fig6Applications}
		row := []string{fmt.Sprintf("%d", c)}
		var flatComm, hybComm float64
		for _, a := range core.Approaches {
			var r bgpsim.Result
			if a == core.FlatOriginal {
				r = simulate(w, bgpsim.Config{Cores: c, Approach: a, BatchSize: 1, Params: prm})
			} else {
				r, _ = bestBatch(w, bgpsim.Config{Cores: c, Approach: a, Params: prm}, batchSweep(opt.Quick))
			}
			row = append(row, fmt.Sprintf("%.1f", r.Time))
			if a == core.FlatOptimized {
				flatComm = r.CommPerNodeMB() / fig6Applications
			}
			if a == core.HybridMultiple {
				hybComm = r.CommPerNodeMB() / fig6Applications
			}
		}
		row = append(row, fmt.Sprintf("%.0f", flatComm), fmt.Sprintf("%.0f", hybComm))
		e.AddRow(row...)
	}
	e.AddNote("paper: Hybrid multiple faster than Flat optimized from 512 cores; " +
		"flat needs more communication per node (smaller pieces, 4x more of them)")
	return e
}

// Figure7 reproduces the large-job speedup graph: 2816 grids of 192^3,
// every approach relative to Flat original at 1024 cores, best batch per
// point.
func Figure7(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Figure 7",
		Caption: "Speedup vs Flat original at 1k cores; 2816 grids of 192^3, best batch per point",
		Header:  []string{"cores", "Flat original", "Flat optimized", "Hybrid multiple", "Hybrid master-only"},
	}
	w := bgpsim.Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: 2816}
	cores := []int{1024, 2048, 4096, 8192, 16384}
	if opt.Quick {
		cores = []int{1024, 16384}
	}
	prm := opt.params()
	base := simulate(w, bgpsim.Config{Cores: 1024, Approach: core.FlatOriginal, BatchSize: 1, Params: prm})
	var hyb1k, hyb16k float64
	for _, c := range cores {
		row := []string{fmt.Sprintf("%d", c)}
		for _, a := range core.Approaches {
			var r bgpsim.Result
			if a == core.FlatOriginal {
				r = simulate(w, bgpsim.Config{Cores: c, Approach: a, BatchSize: 1, Params: prm})
			} else {
				r, _ = bestBatch(w, bgpsim.Config{Cores: c, Approach: a, Params: prm}, batchSweep(opt.Quick))
			}
			row = append(row, fmt.Sprintf("%.2f", base.Time/r.Time))
			if a == core.HybridMultiple && c == 1024 {
				hyb1k = r.Time
			}
			if a == core.HybridMultiple && c == 16384 {
				hyb16k = r.Time
			}
		}
		e.AddRow(row...)
	}
	if hyb16k > 0 {
		e.AddNote("Hybrid multiple at 16k vs Flat original at 1k: %.1fx (paper ~16.5x); vs itself at 1k: %.1fx (paper ~12x, 16 linear)",
			base.Time/hyb16k, hyb1k/hyb16k)
	}
	return e
}

// Headline reproduces the section-VII summary numbers at 16 384 cores.
func Headline(opt Options) *Experiment {
	e := &Experiment{
		Name:    "Headline (section VII)",
		Caption: "16384 cores, 16384 grids of 192^3 (Figure 6 workload)",
		Header:  []string{"quantity", "measured", "paper"},
	}
	prm := opt.params()
	w := bgpsim.Workload{GridSize: topology.Dims{192, 192, 192}, NumGrids: 16384}
	sweep := batchSweep(opt.Quick)
	orig := simulate(w, bgpsim.Config{Cores: 16384, Approach: core.FlatOriginal, BatchSize: 1, Params: prm})
	optR, _ := bestBatch(w, bgpsim.Config{Cores: 16384, Approach: core.FlatOptimized, Params: prm}, sweep)
	hyb, hb := bestBatch(w, bgpsim.Config{Cores: 16384, Approach: core.HybridMultiple, Params: prm}, sweep)
	split := simulate(w, bgpsim.Config{Cores: 16384, Approach: core.FlatOptimized, SplitGroups: true,
		BatchSize: hb, BatchRamp: hb > 1, Params: prm})

	e.AddRow("improvement vs Flat original", fmt.Sprintf("%.2fx", orig.Time/hyb.Time), "1.94x")
	e.AddRow("utilization, Flat original", fmt.Sprintf("%.0f%%", orig.Utilization*100), "36%")
	e.AddRow("utilization, Hybrid multiple", fmt.Sprintf("%.0f%%", hyb.Utilization*100), "70%")
	e.AddRow("hybrid vs flat optimized", fmt.Sprintf("%.0f%%", (optR.Time/hyb.Time-1)*100), "~10%")
	e.AddRow("split-groups control vs hybrid", fmt.Sprintf("%+.1f%%", (split.Time/hyb.Time-1)*100), "identical")
	return e
}
