package bench

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bgpsim"
	"repro/internal/topology"
)

func TestTable1ContainsPaperValues(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"850 MHz", "64KB per core", "8MB", "2GB",
		"13.6GB/s", "13.6 Gflops/node", "425MB/s", "5.1GB/s", "PowerPC 450"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, s)
		}
	}
}

func TestFigure2ShapeQuick(t *testing.T) {
	e := Figure2(Options{Quick: true})
	if len(e.Rows) < 4 {
		t.Fatalf("too few rows: %d", len(e.Rows))
	}
	// First row (1 byte) must be far below the last row (10 MB).
	first := e.Rows[0][1]
	last := e.Rows[len(e.Rows)-1][1]
	if first >= last && len(first) >= len(last) {
		t.Fatalf("bandwidth not increasing: %s .. %s", first, last)
	}
}

func TestFigure5Quick(t *testing.T) {
	for _, batching := range []bool{false, true} {
		e := Figure5(batching, Options{Quick: true})
		if len(e.Rows) != 4 {
			t.Fatalf("rows = %d", len(e.Rows))
		}
		if e.Rows[0][0] != "1" {
			t.Fatal("first row must be the 1-core baseline")
		}
		// Baseline speedup ~1.
		if e.Rows[0][1] != "1" {
			t.Fatalf("flat original at 1 core = %s, want 1", e.Rows[0][1])
		}
	}
}

func TestFigure6QuickOrdering(t *testing.T) {
	e := Figure6(Options{Quick: true})
	last := e.Rows[len(e.Rows)-1]
	// At 16384 cores: hybrid multiple (col 3) beats flat optimized
	// (col 2) beats flat original (col 1).
	var orig, opt, hyb float64
	if _, err := sscan(last[1], &orig); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(last[2], &opt); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(last[3], &hyb); err != nil {
		t.Fatal(err)
	}
	if !(hyb < opt && opt < orig) {
		t.Fatalf("ordering broken at 16k: orig=%g opt=%g hyb=%g", orig, opt, hyb)
	}
	// Absolute magnitude lands in the paper's ballpark (~40 s for the
	// original at 16k with the calibrated application count).
	if orig < 20 || orig > 60 {
		t.Fatalf("flat original at 16k = %gs, want near the paper's ~40s", orig)
	}
}

func TestFigure7QuickHeadline(t *testing.T) {
	e := Figure7(Options{Quick: true})
	last := e.Rows[len(e.Rows)-1]
	var hyb float64
	if _, err := sscan(last[3], &hyb); err != nil {
		t.Fatal(err)
	}
	if hyb < 13 || hyb > 24 {
		t.Fatalf("hybrid speedup at 16k = %g, paper ~16.5", hyb)
	}
}

func TestHeadlineQuick(t *testing.T) {
	e := Headline(Options{Quick: true})
	s := e.String()
	for _, want := range []string{"1.94x", "36%", "70%", "identical"} {
		if !strings.Contains(s, want) {
			t.Fatalf("headline missing paper reference %q:\n%s", want, s)
		}
	}
	if len(e.Rows) != 5 {
		t.Fatalf("headline rows = %d", len(e.Rows))
	}
}

func TestAblationsRunQuick(t *testing.T) {
	opts := Options{Quick: true}
	for _, e := range []*Experiment{
		AblationBatchSweep(opts),
		AblationBatchRamp(opts),
		AblationThreadMode(opts),
		AblationMeshVsTorus(opts),
		AblationElementSize(opts),
		AblationMasterOnlySync(opts),
	} {
		if len(e.Rows) == 0 {
			t.Fatalf("%s produced no rows", e.Name)
		}
		if e.String() == "" {
			t.Fatalf("%s renders empty", e.Name)
		}
	}
}

func TestExperimentFprintAlignment(t *testing.T) {
	e := &Experiment{Name: "X", Caption: "c", Header: []string{"a", "bb"}}
	e.AddRow("1", "2")
	e.AddNote("n=%d", 5)
	s := e.String()
	if !strings.Contains(s, "== X ==") || !strings.Contains(s, "note: n=5") {
		t.Fatalf("render: %s", s)
	}
}

func TestOptionsParamsOverride(t *testing.T) {
	p := bgpsim.DefaultParams()
	p.KernelEff = 0.5
	o := Options{Params: p}
	if o.params().KernelEff != 0.5 {
		t.Fatal("params override ignored")
	}
	if (Options{}).params().KernelEff != bgpsim.DefaultParams().KernelEff {
		t.Fatal("default params not used")
	}
}

// sscan parses a float out of a table cell.
func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func fmtSscan(s string, v *float64) (int, error) {
	var f float64
	n, err := fmt.Sscan(s, &f)
	*v = f
	return n, err
}

func TestNetScalingQuick(t *testing.T) {
	e := NetScaling(Options{Quick: true})
	if len(e.Rows) != 3 {
		t.Fatalf("rows = %d, want one per mapping", len(e.Rows))
	}
	for _, n := range e.Notes {
		if strings.Contains(n, "DEVIATION") {
			t.Fatalf("mapping ordering violated: %s", n)
		}
	}
	found := false
	for _, n := range e.Notes {
		if strings.Contains(n, "Cartesian embedding beat the shuffled placement") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing mapping-ordering note:\n%s", e.String())
	}
}

func TestDistSolversQuickNetModel(t *testing.T) {
	e := DistSolvers(Options{Quick: true, NetModel: true, Map: topology.MapCart})
	s := e.String()
	if strings.Contains(s, "DEVIATION") {
		t.Fatalf("calibrated model broke the determinism contract:\n%s", s)
	}
	if !strings.Contains(s, "virt") {
		t.Fatalf("netmodel run should report virtual makespans:\n%s", s)
	}
}
