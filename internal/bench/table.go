// Package bench regenerates every table and figure of the paper's
// evaluation on the Blue Gene/P model (internal/bgpsim) and on the real
// in-process runtime (internal/core). Each driver returns an Experiment
// holding the same rows/series the paper reports; the drivers are shared
// by the root benchmark suite (bench_test.go) and cmd/gpawsim.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Experiment is a reproduced table or figure: a caption, column headers,
// data rows and free-form notes comparing against the paper.
type Experiment struct {
	Name    string
	Caption string
	Header  []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a data row.
func (e *Experiment) AddRow(cells ...string) { e.Rows = append(e.Rows, cells) }

// AddNote appends a note line.
func (e *Experiment) AddNote(format string, args ...interface{}) {
	e.Notes = append(e.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the experiment as an aligned text table.
func (e *Experiment) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n%s\n", e.Name, e.Caption)
	widths := make([]int, len(e.Header))
	for i, h := range e.Header {
		widths[i] = len(h)
	}
	for _, row := range e.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(c)
		}
		fmt.Fprintln(w, b.String())
	}
	line(e.Header)
	for _, row := range e.Rows {
		line(row)
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the experiment to a string.
func (e *Experiment) String() string {
	var b strings.Builder
	e.Fprint(&b)
	return b.String()
}
