package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the lightweight path-sensitive engine shared
// by tracepair and requestleak. Both analyzers must prove that a
// value produced at one site (a trace span Begin, an Isend/Irecv
// request) reaches a closing operation (End, Wait/Waitall/...) on
// every control-flow path out of the enclosing function.
//
// The engine walks statement lists sequentially, forking the
// obligation state at branches and merging with set-union (an
// obligation stays open unless every surviving path closed it).
// Escape is conservative in the caller's favour: a value that is
// returned, stored into a field, slice, map or channel, captured by
// a goroutine, or passed as an argument to another function is
// assumed to be managed elsewhere and its obligation is closed. The
// one deliberate refinement is the append-transfer rule: appending an
// obligated value to a local slice moves the obligation onto the
// slice variable, so `reqs = append(reqs, c.Isend(...))` followed by
// `mpi.Waitall(reqs...)` is recognised end to end.

// obSpec parameterises the engine for one analyzer.
type obSpec struct {
	// isSource reports whether the call creates an obligation and
	// returns its description ("span \"poisson.cg\"", "Isend request").
	isSource func(p *Pass, call *ast.CallExpr) (string, bool)
	// isCloserMethod reports whether the named method, invoked on the
	// obligated value as receiver, discharges the obligation (End,
	// EndComm, Wait). Argument-position closers (Waitall, Reclaim)
	// need no listing: passing the value to any call discharges it.
	isCloserMethod func(p *Pass, call *ast.CallExpr) bool
	// leakMsg formats the finding for an obligation that fails to
	// reach a closer on some path.
	leakMsg func(desc string) string
	// dropMsg formats the finding for a source call whose result is
	// discarded outright.
	dropMsg func(desc string) string
}

// obligation is one open obligation.
type obligation struct {
	desc string
	pos  token.Pos
	obj  types.Object // variable currently holding the value (nil if none)
}

// obState maps holder variables to their open obligations.
type obState map[types.Object]*obligation

func (st obState) clone() obState {
	out := make(obState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// union keeps an obligation open if it is open in either state.
func union(a, b obState) obState {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// flowWalker runs one spec over one function body.
type flowWalker struct {
	pass     *Pass
	spec     *obSpec
	reported map[token.Pos]bool
}

func runFlow(pass *Pass, spec *obSpec) {
	w := &flowWalker{pass: pass, spec: spec, reported: map[token.Pos]bool{}}
	runBody := func(body *ast.BlockStmt) {
		st := obState{}
		if !w.walkStmts(body.List, st) {
			w.reportOpen(st)
		}
	}
	for _, f := range pass.Files {
		enclosingFuncs(f, func(fd *ast.FuncDecl) {
			runBody(fd.Body)
			// Function literals get their own flow root: obligations
			// opened inside a closure must be discharged inside it
			// (crossing the boundary is treated as escape by both
			// walks, so the two roots never double-report).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					runBody(lit.Body)
				}
				return true
			})
		})
	}
}

// report emits one finding per obligation source position.
func (w *flowWalker) report(ob *obligation) {
	if w.reported[ob.pos] {
		return
	}
	w.reported[ob.pos] = true
	w.pass.Reportf(ob.pos, "%s", w.spec.leakMsg(ob.desc))
}

// reportDrop emits the discarded-result finding.
func (w *flowWalker) reportDrop(desc string, pos token.Pos) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, "%s", w.spec.dropMsg(desc))
}

func (w *flowWalker) reportOpen(st obState) {
	for obj, ob := range st {
		w.report(ob)
		delete(st, obj)
	}
}

// close discharges the obligation held by obj, if any.
func (w *flowWalker) close(st obState, obj types.Object) {
	if obj != nil {
		delete(st, obj)
	}
}

// walkStmts walks a statement list sequentially; it returns true when
// control cannot fall off the end (return/panic/branch).
func (w *flowWalker) walkStmts(stmts []ast.Stmt, st obState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *flowWalker) walkStmt(stmt ast.Stmt, st obState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.scanExprs(st, s.X)
		// A source call whose result is thrown away is an immediate
		// finding: the obligation can never be met.
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if desc, ok := w.spec.isSource(w.pass, call); ok {
				w.reportDrop(desc, call.Pos())
			}
			if w.isTerminalCall(call) {
				return true
			}
		}

	case *ast.AssignStmt:
		w.scanExprs(st, s.Rhs...)
		w.bindAssign(st, s.Lhs, s.Rhs)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				w.scanExprs(st, vs.Values...)
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.bindAssign(st, lhs, vs.Values)
			}
		}

	case *ast.DeferStmt:
		// A deferred closer covers every path that runs after the
		// defer statement executes; discharge from here on.
		w.scanExprs(st, s.Call)

	case *ast.GoStmt:
		w.scanExprs(st, s.Call)

	case *ast.SendStmt:
		w.scanExprs(st, s.Chan, s.Value)
		if obj := exprObj(w.pass.TypesInfo, s.Value); obj != nil {
			w.close(st, obj) // escapes via channel
		}

	case *ast.ReturnStmt:
		w.scanExprs(st, s.Results...)
		for _, r := range s.Results {
			if obj := exprObj(w.pass.TypesInfo, r); obj != nil {
				w.close(st, obj) // escapes to caller
			}
		}
		w.reportOpen(st)
		return true

	case *ast.BranchStmt:
		// break/continue/goto: state does not flow past; reporting at
		// the loop/label join is beyond this engine's precision, so
		// err on the quiet side.
		return true

	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExprs(st, s.Cond)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		var elseSt obState
		elseTerm := false
		if s.Else != nil {
			elseSt = st.clone()
			elseTerm = w.walkStmt(s.Else, elseSt)
		} else {
			elseSt = st.clone() // condition-false falls through
		}
		merge(st, thenSt, thenTerm, elseSt, elseTerm)
		return thenTerm && elseTerm && s.Else != nil

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExprs(st, s.Cond)
		}
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		if s.Post != nil {
			w.walkStmt(s.Post, bodySt)
		}
		w.loopExit(st, bodySt, s.Body)

	case *ast.RangeStmt:
		w.scanExprs(st, s.X)
		// Range-close: iterating a slice that holds an obligation and
		// discharging the element variable inside the body closes the
		// slice's obligation (`for _, r := range reqs { r.Wait() }`).
		if obj := exprObj(w.pass.TypesInfo, s.X); obj != nil {
			if _, open := st[obj]; open && w.bodyDischargesRangeVar(s) {
				w.close(st, obj)
			}
		}
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		w.loopExit(st, bodySt, s.Body)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(st, s)
	}
	return false
}

// merge folds two branch end-states back into st with set-union,
// skipping terminated branches (their state never reaches the join).
func merge(st obState, a obState, aTerm bool, b obState, bTerm bool) {
	for k := range st {
		delete(st, k)
	}
	if !aTerm {
		for k, v := range a {
			st[k] = v
		}
	}
	if !bTerm {
		for k, v := range b {
			if _, ok := st[k]; !ok {
				st[k] = v
			}
		}
	}
}

// loopExit folds a loop body's end-state into the fall-through state.
// Obligations bound to variables declared inside the body are
// per-iteration: leaking them to the back edge is a definite leak,
// reported here. Obligations on outer variables survive the loop
// (union with the zero-iteration path).
func (w *flowWalker) loopExit(st, bodySt obState, body *ast.BlockStmt) {
	for obj, ob := range bodySt {
		if obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
			w.report(ob)
			delete(bodySt, obj)
		}
	}
	for k, v := range union(st, bodySt) {
		st[k] = v
	}
}

// walkCases handles switch/type-switch/select uniformly.
func (w *flowWalker) walkCases(st obState, stmt ast.Stmt) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExprs(st, s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	pre := st.clone()
	allTerm := true
	first := true
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			w.scanExprs(st, cc.List...)
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			stmts = cc.Body
		}
		caseSt := pre.clone()
		term := w.walkStmts(stmts, caseSt)
		if term {
			continue
		}
		allTerm = false
		if first {
			for k := range st {
				delete(st, k)
			}
			first = false
		}
		for k, v := range caseSt {
			if _, ok := st[k]; !ok {
				st[k] = v
			}
		}
	}
	if !hasDefault {
		// No default: the no-match path falls through with the
		// pre-switch state.
		for k, v := range pre {
			if _, ok := st[k]; !ok {
				st[k] = v
			}
		}
		return false
	}
	if allTerm {
		return true
	}
	return false
}

// bodyDischargesRangeVar reports whether a range body closes the
// element variable of the range (receiver of a closer method, or
// passed to some call).
func (w *flowWalker) bodyDischargesRangeVar(s *ast.RangeStmt) bool {
	valObj := exprObj(w.pass.TypesInfo, s.Value)
	if valObj == nil {
		return false
	}
	found := false
	ast.Inspect(s.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if w.spec.isCloserMethod(w.pass, call) {
			if exprObj(w.pass.TypesInfo, methodRecv(call)) == valObj {
				found = true
			}
		}
		for _, a := range call.Args {
			if exprObj(w.pass.TypesInfo, a) == valObj {
				found = true
			}
		}
		return !found
	})
	return found
}

// scanExprs applies the intra-statement rules to every call under the
// given expressions: closer methods discharge their receiver,
// arguments passed to non-builtin calls escape (discharge), and
// closures are scanned for the same.
func (w *flowWalker) scanExprs(st obState, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if w.spec.isCloserMethod(w.pass, call) {
				w.close(st, exprObj(w.pass.TypesInfo, methodRecv(call)))
				return true
			}
			if isBuiltinCall(w.pass.TypesInfo, call, "append") {
				// handled by bindAssign's transfer rule
				return true
			}
			for _, a := range call.Args {
				if obj := exprObj(w.pass.TypesInfo, a); obj != nil {
					w.close(st, obj) // escapes into the callee
				}
			}
			return true
		})
	}
}

// bindAssign handles obligation creation and movement for one
// (possibly multi-value) assignment.
func (w *flowWalker) bindAssign(st obState, lhs, rhs []ast.Expr) {
	bindOne := func(l, r ast.Expr) {
		lobj := lhsObj(w.pass.TypesInfo, l)
		if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
			if desc, ok := w.spec.isSource(w.pass, call); ok {
				if lobj == nil || isBlank(l) {
					// stored into a field/element (escapes) or
					// explicitly discarded
					if isBlank(l) {
						w.reportDrop(desc, call.Pos())
					}
					return
				}
				st[lobj] = &obligation{desc: desc, pos: call.Pos(), obj: lobj}
				return
			}
			if isBuiltinCall(w.pass.TypesInfo, call, "append") {
				w.bindAppend(st, l, lobj, call)
				return
			}
		}
		// Alias move: x := r where r holds an obligation. Assigning to
		// blank reads without consuming — `_ = req` is not a discharge.
		if isBlank(l) {
			return
		}
		if robj := exprObj(w.pass.TypesInfo, r); robj != nil {
			if ob, open := st[robj]; open {
				w.close(st, robj)
				if lobj != nil {
					ob.obj = lobj
					st[lobj] = ob
				}
			}
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			bindOne(lhs[i], rhs[i])
		}
	} else if len(rhs) == 1 {
		// multi-value call: sources never return multiple values in
		// this suite; still scan the single RHS against the first LHS
		bindOne(lhs[0], rhs[0])
	}
}

// bindAppend transfers obligations from appended elements onto the
// destination slice variable.
func (w *flowWalker) bindAppend(st obState, l ast.Expr, lobj types.Object, call *ast.CallExpr) {
	var moved *obligation
	for i, a := range call.Args {
		if i == 0 {
			continue // the destination slice
		}
		if src, ok := ast.Unparen(a).(*ast.CallExpr); ok {
			if desc, ok := w.spec.isSource(w.pass, src); ok {
				moved = &obligation{desc: desc, pos: src.Pos()}
				continue
			}
		}
		if obj := exprObj(w.pass.TypesInfo, a); obj != nil {
			if ob, open := st[obj]; open {
				w.close(st, obj)
				moved = ob
			}
		}
	}
	if moved == nil {
		return
	}
	if lobj == nil || isBlank(l) {
		return // appended into a field-held slice: escapes
	}
	moved.obj = lobj
	st[lobj] = moved
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit, testing Fatal/FailNow.
func (w *flowWalker) isTerminalCall(call *ast.CallExpr) bool {
	info := w.pass.TypesInfo
	if isBuiltinCall(info, call, "panic") {
		return true
	}
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Name() {
	case "os":
		return obj.Name() == "Exit"
	case "log":
		return obj.Name() == "Fatal" || obj.Name() == "Fatalf" || obj.Name() == "Fatalln"
	case "runtime":
		return obj.Name() == "Goexit"
	case "testing":
		return obj.Name() == "Fatal" || obj.Name() == "Fatalf" || obj.Name() == "FailNow" || obj.Name() == "SkipNow" || obj.Name() == "Skipf" || obj.Name() == "Skip"
	}
	return false
}

// lhsObj resolves an assignment target to a variable object; nil for
// fields, elements and the blank identifier.
func lhsObj(info *types.Info, l ast.Expr) types.Object {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
