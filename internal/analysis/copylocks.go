package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CopyLocks is the bundled stock-style pass: a self-contained
// reimplementation of vet's copylocks check covering the shapes that
// matter to this runtime (mpi.Request, trace.Rank and every mailbox
// struct embed sync primitives; copying one by value forks its
// internal state and deadlocks or races). It flags by-value function
// parameters, receivers and results of lock-containing types, range
// statements that copy lock-containing elements, and assignments
// that dereference a pointer to a lock-containing value.
var CopyLocks = &Analyzer{
	Name: "copylocks",
	Doc:  "flag values of lock-containing types (sync.Mutex et al.) passed or copied by value",
	Run:  runCopyLocks,
}

func runCopyLocks(pass *Pass) error {
	info := pass.TypesInfo
	reportType := func(pos token.Pos, t types.Type, what string) {
		if path := lockPath(t, nil); path != "" {
			pass.Reportf(pos, "%s copies lock value: %s contains %s", what, types.TypeString(t, types.RelativeTo(pass.Pkg)), path)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				checkFieldList := func(fl *ast.FieldList, what string) {
					if fl == nil {
						return
					}
					for _, fld := range fl.List {
						if t := fieldType(info, fld); t != nil {
							reportType(fld.Pos(), t, what)
						}
					}
				}
				checkFieldList(v.Recv, "receiver")
				checkFieldList(v.Type.Params, "parameter")
				checkFieldList(v.Type.Results, "result")
			case *ast.RangeStmt:
				if v.Value != nil {
					// In the `:=` form the value is a defined ident
					// (recorded in Defs, not Types).
					if id, ok := v.Value.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							reportType(id.Pos(), obj.Type(), "range value")
							break
						}
					}
					if tv, ok := info.Types[v.Value]; ok && tv.Type != nil {
						reportType(v.Value.Pos(), tv.Type, "range value")
					}
				}
			case *ast.AssignStmt:
				for _, r := range v.Rhs {
					if ue, ok := ast.Unparen(r).(*ast.StarExpr); ok {
						if tv, ok := info.Types[ue]; ok && tv.Type != nil {
							reportType(r.Pos(), tv.Type, "assignment dereferences and")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// fieldType resolves the declared type of a field-list entry.
func fieldType(info *types.Info, fld *ast.Field) types.Type {
	if fld.Type == nil {
		return nil
	}
	if tv, ok := info.Types[fld.Type]; ok && tv.Type != nil {
		// Pointers and interfaces are fine to copy.
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature, *types.Slice:
			return nil
		}
		return tv.Type
	}
	return nil
}

// lockPath returns a human-readable path to a lock inside t ("" when
// t contains no lock). A type "is a lock" when *T has a Lock method
// (sync.Mutex, RWMutex, Once, WaitGroup, Pool's victim cache...);
// struct types are searched field-recursively.
func lockPath(t types.Type, seen []types.Type) string {
	if t == nil {
		return ""
	}
	for _, s := range seen {
		if types.Identical(s, t) {
			return ""
		}
	}
	seen = append(seen, t)
	if hasPtrLockMethod(t) {
		return types.TypeString(t, nil)
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		if arr, ok := t.Underlying().(*types.Array); ok {
			if p := lockPath(arr.Elem(), seen); p != "" {
				return "[...]" + p
			}
		}
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if p := lockPath(f.Type(), seen); p != "" {
			return f.Name() + "." + p
		}
	}
	return ""
}

// hasPtrLockMethod reports whether *t declares a Lock method — the
// vet heuristic for "this value must not be copied".
func hasPtrLockMethod(t types.Type) bool {
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return false
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Name() == "Lock" {
				if sig, ok := m.Type().(*types.Signature); ok &&
					sig.Params().Len() == 0 && sig.Results().Len() == 0 {
					return true
				}
			}
		}
	}
	return false
}
