package analysis

import (
	"path/filepath"
	"testing"
)

func TestDetsumCheckTestdata(t *testing.T) {
	// Loaded under a guarded import path: the reductions are flagged.
	runTestdata(t, "detsumcheck", "repro/internal/stencil", []*Analyzer{DetsumCheck})
}

func TestDetsumCheckUnguardedPathIsExempt(t *testing.T) {
	// The very same files under an unguarded path produce nothing:
	// the invariant binds the solver packages, not all float code.
	pkg, err := LoadDir(filepath.Join("testdata", "detsumcheck"), "repro/internal/linalg")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{DetsumCheck})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unguarded package flagged: %s: %s", pkg.Fset.Position(d.Pos), d.Message)
	}
}

func TestHotpathAllocTestdata(t *testing.T) {
	runTestdata(t, "hotpathalloc", "repro/internal/hot", []*Analyzer{HotpathAlloc})
}

func TestTracePairTestdata(t *testing.T) {
	runTestdata(t, "tracepair", "repro/internal/ops", []*Analyzer{TracePair})
}

func TestRequestLeakTestdata(t *testing.T) {
	runTestdata(t, "requestleak", "repro/internal/proto", []*Analyzer{RequestLeak})
}

func TestRankFailErrTestdata(t *testing.T) {
	runTestdata(t, "rankfailerr", "repro/internal/ft", []*Analyzer{RankFailErr})
}

func TestCopyLocksTestdata(t *testing.T) {
	runTestdata(t, "copylocks", "repro/internal/cl", []*Analyzer{CopyLocks})
}

// TestSeededDefects runs the whole suite over deliberately broken
// copies of real solver code under a guarded import path, proving each
// analyzer catches its seed (the want comments name the analyzers).
func TestSeededDefects(t *testing.T) {
	runTestdata(t, "seeded", "repro/internal/gpaw", All())
}

// TestMalformedDirectiveIsReported asserts that a lint:ignore without
// a justification is itself a finding, so suppressions cannot silently
// rot.
func TestMalformedDirectiveIsReported(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "lintdirective"), "repro/internal/misc")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" {
		t.Fatalf("want exactly one lintdirective finding, got %+v", diags)
	}
	if pos := pkg.Fset.Position(diags[0].Pos); pos.Line != 8 {
		t.Errorf("finding at line %d, want the directive line 8", pos.Line)
	}
}

// TestRepoFindingFree is the repo-wide regression: the full analyzer
// suite over every production package must come back clean, so a new
// raw reduction, leaked request, unmatched span, hot-path allocation
// or stringly-typed failure check fails `go test` even without the
// vet wiring.
func TestRepoFindingFree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	pkgs, err := Load("", "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern repro/... should cover the tree", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
