package analysis

import (
	"go/ast"
	"go/constant"
	"strconv"
)

// TracePair enforces the tracing contract from PR 8: every span
// opened with Begin/BeginComm/Region must be closed with End/EndComm
// on every control-flow path (directly or via defer), and span names
// must be compile-time string constants — dynamic names would
// allocate on the zero-alloc emission path and defeat profile
// aggregation by name.
var TracePair = &Analyzer{
	Name: "tracepair",
	Doc: "every trace span Begin must have an End on all return paths, " +
		"and span names must be static string constants",
	Run: runTracePair,
}

// spanOpeners are the *trace.Rank methods that return an open Span.
var spanOpeners = map[string]bool{"Begin": true, "BeginComm": true, "Region": true}

// spanNamed are the methods whose first argument is a span/mark name
// that must be constant.
var spanNamed = map[string]bool{"Begin": true, "BeginComm": true, "Region": true, "Mark": true}

func runTracePair(pass *Pass) error {
	if pass.Pkg.Name() == "trace" {
		// The recorder itself forwards names and constructs spans; the
		// contract binds its callers.
		return nil
	}

	// Static-name rule: every call that opens a span (the trace.Rank
	// methods AND any repo-local forwarder returning a trace.Span,
	// like pblas' region helper) plus Mark must take a compile-time
	// constant name as its first string argument.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			named := false
			if obj := calleeObj(pass.TypesInfo, call); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Name() == "trace" && spanNamed[obj.Name()] {
				named = true
			} else if opensSpan(pass, call) && isStringExpr(pass.TypesInfo, call.Args[0]) {
				named = true
			}
			if named && !isConstString(pass.TypesInfo, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"span name must be a compile-time string constant (zero-allocation tracing contract); dynamic names also defeat profile aggregation")
			}
			return true
		})
	}

	// Pairing rule: flow-track every opened span to an End.
	runFlow(pass, &obSpec{
		isSource: func(p *Pass, call *ast.CallExpr) (string, bool) {
			if !opensSpan(p, call) {
				return "", false
			}
			name := "span"
			if len(call.Args) > 0 {
				if tv, ok := p.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					name = "span " + strconv.Quote(constant.StringVal(tv.Value))
				}
			}
			return name, true
		},
		isCloserMethod: func(p *Pass, call *ast.CallExpr) bool {
			obj := calleeObj(p.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "trace" {
				return false
			}
			if obj.Name() != "End" && obj.Name() != "EndComm" {
				return false
			}
			recv := methodRecv(call)
			return recv != nil && isNamedType(p.TypesInfo.Types[recv].Type, "trace", "Span")
		},
		leakMsg: func(desc string) string {
			return desc + " is not Ended on every return path; close it with defer " +
				"or End it before each return (unmatched spans corrupt the per-rank timeline)"
		},
		dropMsg: func(desc string) string {
			return desc + " is opened and immediately discarded without End"
		},
	})
	return nil
}
