package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// DetsumGuardedPackages matches the import paths in which raw
// floating-point accumulation is forbidden: the solver and runtime
// packages whose reductions must be bit-identical across ranks,
// threads and decompositions, and therefore must flow through
// detsum.Acc. Packages outside the set (linalg's dense kernels, the
// detsum implementation itself) are exempt.
var DetsumGuardedPackages = regexp.MustCompile(`(^|/)internal/(gpaw|stencil|grid|pblas|core)$`)

// DetsumCheck flags raw floating-point accumulation across loop
// iterations in the guarded solver packages. The bit-identity
// invariant (PR 2) requires every sum whose term order could vary
// with the worker count, rank count or decomposition to flow through
// detsum.Acc; a bare `s += x[i]` loop is exactly the shape that
// silently breaks it during refactoring. Fixed-order rank-local sums
// that are provably deterministic may be annotated with
// //lint:ignore detsumcheck <why the order is fixed>.
var DetsumCheck = &Analyzer{
	Name: "detsumcheck",
	Doc: "flag raw floating-point accumulation in bit-identity-critical packages; " +
		"cross-worker/cross-rank reductions must use detsum.Acc",
	Run: runDetsumCheck,
}

func runDetsumCheck(pass *Pass) error {
	if !DetsumGuardedPackages.MatchString(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return
			}
			lhs, rhs, ok := accumulationParts(pass.TypesInfo, as)
			if !ok {
				return
			}
			_ = rhs
			tv, ok := pass.TypesInfo.Types[lhs]
			if !ok || !isFloat(tv.Type) {
				return
			}
			loop := innermostLoop(stack)
			if loop == nil {
				return // straight-line accumulation, fixed order
			}
			switch l := lhs.(type) {
			case *ast.Ident:
				obj := exprObj(pass.TypesInfo, l)
				if obj == nil || !accumulatesAcrossIterations(obj, loop) {
					return
				}
			case *ast.SelectorExpr:
				// A float field accumulated inside a loop always
				// accumulates across iterations.
			default:
				return // x[i] += v is element-wise, not a reduction
			}
			pass.Reportf(as.Pos(),
				"raw floating-point accumulation across loop iterations; "+
					"cross-worker/cross-rank reductions must flow through detsum.Acc "+
					"(use //lint:ignore detsumcheck <reason> only for provably fixed-order rank-local sums)")
		})
	}
	return nil
}

// accumulationParts recognises `x += e`, `x -= e`, `x = x + e`,
// `x = e + x` and `x = x - e` and returns the accumulator expression.
func accumulationParts(info *types.Info, as *ast.AssignStmt) (lhs ast.Expr, rhs ast.Expr, ok bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return as.Lhs[0], as.Rhs[0], true
	case token.ASSIGN:
		be, okb := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !okb || (be.Op != token.ADD && be.Op != token.SUB) {
			return nil, nil, false
		}
		l := as.Lhs[0]
		if sameVar(info, l, be.X) {
			return l, be.Y, true
		}
		if be.Op == token.ADD && sameVar(info, l, be.Y) {
			return l, be.X, true
		}
	}
	return nil, nil, false
}

// sameVar reports whether two expressions denote the same variable
// object (plain identifiers only).
func sameVar(info *types.Info, a, b ast.Expr) bool {
	oa, ob := exprObj(info, a), exprObj(info, b)
	return oa != nil && oa == ob
}

// innermostLoop returns the nearest enclosing for/range statement
// from the ancestor stack, or nil.
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncLit, *ast.FuncDecl:
			return nil // loops outside the closest function don't count
		}
	}
	return nil
}

// accumulatesAcrossIterations reports whether obj outlives one
// iteration of the given loop: declared outside the loop body (for a
// for-statement, init-clause variables persist across iterations; for
// a range statement, the key/value variables are per-iteration).
func accumulatesAcrossIterations(obj types.Object, loop ast.Node) bool {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return !within(obj.Pos(), l.Body)
	case *ast.RangeStmt:
		return !within(obj.Pos(), l)
	}
	return false
}

func within(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos < n.End()
}

// walkWithStack visits every node with its ancestor chain.
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
