// This file is the driver core: Analyzer/Pass/Diagnostic (the subset
// of the golang.org/x/tools go/analysis surface the suite needs),
// lint:ignore suppression and the per-package runner. See doc.go for
// the invariant catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass. It mirrors
// golang.org/x/tools/go/analysis.Analyzer (the subset without facts
// and inter-analyzer dependencies, which this suite does not need).
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //lint:ignore comments. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by
	// `gpawlint help`.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Path      string // import path, as reported by the build system
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding against the pass's analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite, in stable order: the five
// repo-specific invariant passes plus the bundled stock-style passes.
func All() []*Analyzer {
	return []*Analyzer{
		DetsumCheck,
		HotpathAlloc,
		TracePair,
		RequestLeak,
		RankFailErr,
		CopyLocks,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ignoreRe matches suppression comments:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// A suppression applies to findings on its own line or, when the
// comment stands alone on a line, to the line below it — the same
// placement contract staticcheck uses. The justification is
// mandatory: an ignore without one is itself reported.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// suppressions maps filename -> line -> set of suppressed analyzer
// names ("all" suppresses every analyzer).
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans a package's comments for lint:ignore
// directives. Malformed directives (no justification) are returned as
// diagnostics so they fail the build instead of silently ignoring.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintdirective",
						Message:  "lint:ignore directive requires a justification: //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				names := map[string]bool{}
				for _, n := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(n)] = true
				}
				// The directive covers its own line (trailing-comment
				// form) and the line below it (standalone form).
				addNames(byLine, pos.Line, names)
				addNames(byLine, pos.Line+1, names)
			}
		}
	}
	return sup, bad
}

func addNames(byLine map[int]map[string]bool, line int, names map[string]bool) {
	if byLine[line] == nil {
		byLine[line] = map[string]bool{}
	}
	for n := range names {
		byLine[line][n] = true
	}
}

// filterDiagnostics applies suppressions and the production-code
// policy (findings in _test.go files are dropped: the invariants
// guard runtime code, and tests legitimately sum floats raw, abandon
// requests mid-fault and match error strings).
func filterDiagnostics(fset *token.FileSet, sup suppressions, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") && d.Analyzer != "lintdirective" {
			continue
		}
		if byLine := sup[pos.Filename]; byLine != nil {
			names := byLine[pos.Line]
			if names != nil && (names[d.Analyzer] || names["all"]) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// RunAnalyzers applies the given analyzers to one loaded package and
// returns the surviving findings sorted by position. Suppressed
// findings and findings in _test.go files are dropped; malformed
// lint:ignore directives are themselves findings.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup, bad := collectSuppressions(pkg.Fset, pkg.Files)
	diags := bad
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Path:      pkg.ImportPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
		diags = append(diags, pass.diags...)
	}
	diags = filterDiagnostics(pkg.Fset, sup, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
