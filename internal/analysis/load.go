package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// exportCache maps package paths to compiled export-data files, so
// repeated loads (the analysistest runner resolves imports per
// testdata package) reuse one `go list -export` invocation per path.
var exportCache = struct {
	sync.Mutex
	m map[string]string
}{m: map[string]string{}}

// goList runs `go list -e -export -deps -json` on the given patterns
// in dir and returns the decoded package stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,CgoFiles,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	exportCache.Lock()
	for _, p := range pkgs {
		if p.Export != "" {
			exportCache.m[p.ImportPath] = p.Export
		}
	}
	exportCache.Unlock()
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves imports from
// the compiled export data recorded in the export cache.
func exportImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exportCache.Lock()
		file, ok := exportCache.m[path]
		exportCache.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TypeCheckUnit parses and type-checks one compilation unit with an
// explicit importer, import-path resolver (vendoring/ImportMap) and
// minimum Go version — the shape the go vet unit protocol provides.
func TypeCheckUnit(fset *token.FileSet, importPath string, filenames []string, imp types.Importer, resolve func(string) string, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if resolve != nil {
		inner := imp
		imp = importerFunc(func(path string) (*types.Package, error) {
			return inner.Import(resolve(path))
		})
	}
	info := newInfo()
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

// TypeCheck parses and type-checks one package's files against the
// export-data importer.
func TypeCheck(fset *token.FileSet, importPath string, filenames []string) (*Package, error) {
	return TypeCheckUnit(fset, importPath, filenames, exportImporter(fset), nil, "")
}

// Load loads, parses and type-checks the packages matching the given
// go-list patterns (relative to dir; empty dir means the current
// directory). Only non-test files are loaded — the invariants guard
// production code. Dependencies are imported from compiled export
// data, so loading is roughly as fast as `go build`.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		var filenames []string
		for _, f := range lp.GoFiles {
			filenames = append(filenames, filepath.Join(lp.Dir, f))
		}
		if len(filenames) == 0 {
			continue
		}
		pkg, err := TypeCheck(fset, lp.ImportPath, filenames)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads one directory of Go files (an analysistest testdata
// package, which the go tool itself will not list) as the given
// import path. Imports are resolved by go-listing them first, so
// testdata may import the real repro packages it exercises.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var filenames []string
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		name := filepath.Join(dir, e.Name())
		filenames = append(filenames, name)
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			importSet[imp.Path.Value[1:len(imp.Path.Value)-1]] = true
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var missing []string
	exportCache.Lock()
	for p := range importSet {
		if _, ok := exportCache.m[p]; !ok {
			missing = append(missing, p)
		}
	}
	exportCache.Unlock()
	if len(missing) > 0 {
		if _, err := goList(dir, missing); err != nil {
			return nil, err
		}
	}
	pkg, err := TypeCheck(token.NewFileSet(), importPath, filenames)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}
