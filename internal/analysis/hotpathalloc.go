package analysis

import (
	"go/ast"
	"go/types"
)

// HotpathDirective marks a function as part of the zero-allocation
// steady state: the kernel, halo-exchange and trace-emission paths
// whose AllocsPerRun==0 regression tests pin the contract at runtime.
const HotpathDirective = "//gpaw:hotpath"

// HotpathAlloc flags allocating constructs inside functions annotated
// //gpaw:hotpath. The runtime's steady-state exchange and tracing
// paths are guarded by AllocsPerRun==0 tests, but those tests only
// see the lines they execute; this pass makes the contract hold
// statically. Amortised allocations (an append into a pooled slice
// that is warm in steady state) may be justified with
// //lint:ignore hotpathalloc <reason>.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid make/new/append, fmt calls, allocating conversions, capturing closures " +
		"and go statements in functions annotated //gpaw:hotpath",
	Run: runHotpathAlloc,
}

func runHotpathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		enclosingFuncs(f, func(fd *ast.FuncDecl) {
			if !funcHasDirective(fd, HotpathDirective) {
				return
			}
			checkHotpathBody(pass, fd)
		})
	}
	return nil
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	report := func(n ast.Node, what string) {
		pass.Reportf(n.Pos(), "%s in //gpaw:hotpath function %s (zero-allocation steady-state contract)", what, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			report(v, "goroutine launch")

		case *ast.CompositeLit:
			if tv, ok := info.Types[v]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(v, "slice literal")
				case *types.Map:
					report(v, "map literal")
				}
			}

		case *ast.UnaryExpr:
			if _, ok := v.X.(*ast.CompositeLit); ok && v.Op.String() == "&" {
				report(v, "heap-escaping &composite literal")
			}

		case *ast.FuncLit:
			if captures(info, v) {
				report(v, "variable-capturing closure")
			}

		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if _, isB := info.Uses[id].(*types.Builtin); isB {
					switch id.Name {
					case "make":
						report(v, "make")
					case "new":
						report(v, "new")
					case "append":
						report(v, "append (growth allocates; justify pooled appends with lint:ignore)")
					}
					return true
				}
			}
			if obj := calleeObj(info, v); obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "fmt" {
				report(v, "fmt call")
				return true
			}
			// Allocating conversions: string <-> []byte/[]rune.
			if tv, ok := info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
				dst, src := tv.Type, info.Types[v.Args[0]].Type
				if convAllocates(dst, src) {
					report(v, "allocating string conversion")
				}
			}
		}
		return true
	})
}

// captures reports whether the function literal references variables
// declared outside it (a closure that must be heap-allocated).
// References to package-level objects, functions, constants and types
// do not count.
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Package-level variables are not captured.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if !within(v.Pos(), lit) {
			found = true
		}
		return true
	})
	return found
}

// convAllocates reports conversions that copy memory: string to/from
// []byte or []rune.
func convAllocates(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}
