package analysis

import (
	"go/ast"
)

// RequestLeak enforces the non-blocking communication contract: every
// *mpi.Request returned by Isend/Irecv must reach Wait, Waitall,
// Testall or Reclaim on every control-flow path. A request that is
// silently dropped leaves a posted receive (or an unretired send) in
// the mailbox forever — exactly the liveness bug the fault-tolerant
// runtime's op-timeout dump exists to diagnose at runtime; this pass
// catches it before the code ever runs. Storing a request into a
// struct field, slice or channel, returning it, or handing it to
// another function transfers responsibility and is accepted;
// appending to a local slice is tracked through to a later
// Waitall(reqs...) or range-Wait.
var RequestLeak = &Analyzer{
	Name: "requestleak",
	Doc: "every Isend/Irecv request must reach Wait/Waitall/Testall/Reclaim " +
		"on all control-flow paths",
	Run: runRequestLeak,
}

func runRequestLeak(pass *Pass) error {
	if pass.Pkg.Name() == "mpi" {
		// The transport manages request lifecycles internally
		// (pooling, revocation); the contract binds its consumers.
		return nil
	}
	runFlow(pass, &obSpec{
		isSource: func(p *Pass, call *ast.CallExpr) (string, bool) {
			obj := calleeObj(p.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "mpi" {
				return "", false
			}
			if obj.Name() != "Isend" && obj.Name() != "Irecv" {
				return "", false
			}
			if !isNamedType(p.TypesInfo.Types[call].Type, "mpi", "Request") {
				return "", false
			}
			return obj.Name() + " request", true
		},
		isCloserMethod: func(p *Pass, call *ast.CallExpr) bool {
			obj := calleeObj(p.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "mpi" || obj.Name() != "Wait" {
				return false
			}
			recv := methodRecv(call)
			return recv != nil && isNamedType(p.TypesInfo.Types[recv].Type, "mpi", "Request")
		},
		leakMsg: func(desc string) string {
			return desc + " may not reach Wait/Waitall/Testall/Reclaim on every path; " +
				"a leaked request strands mailbox state and can hang a peer's matching op"
		},
		dropMsg: func(desc string) string {
			return desc + " is discarded; its completion can never be observed " +
				"(call Wait, collect it for Waitall, or Reclaim it)"
		},
	})
	return nil
}
