package analysis

// This file is the suite's analysistest-style runner: testdata packages
// carry `// want "pattern"` (or backquoted) comments on the lines where
// findings are expected, are loaded with LoadDir under a caller-chosen
// import path (so path-gated analyzers like detsumcheck can be pointed
// at a guarded or an unguarded path), and the produced diagnostics are
// matched 1:1 against the expectations.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts double-quoted (Go-unquoted) and backquoted (raw)
// patterns from a want comment.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	pattern string
	re      *regexp.Regexp
	matched bool
}

// runTestdata loads testdata/<dir> as importPath, runs the analyzers,
// and checks findings against the package's want comments.
func runTestdata(t *testing.T, dir, importPath string, analyzers []*Analyzer) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", dir), importPath)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, raw := range wantRe.FindAllString(text[len("want "):], -1) {
					pat := raw[1 : len(raw)-1]
					if raw[0] == '"' {
						uq, err := strconv.Unquote(raw)
						if err != nil {
							t.Fatalf("%s: unquoting want pattern %s: %v", key, raw, err)
						}
						pat = uq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{pattern: pat, re: re})
				}
			}
		}
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		msg := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		found := false
		for _, w := range wants[key] {
			if w.re.MatchString(msg) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s: unexpected finding: %s", key, msg)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected a finding matching %q, got none", key, w.pattern)
			}
		}
	}
}
