// Package tp exercises tracepair: every opened span must End on all
// return paths, and span names must be compile-time constants.
package tp

import "repro/internal/trace"

const csName = "pblas.fold"

func okDefer(rk *trace.Rank) {
	defer rk.Region("compute").End()
	work()
}

func okExplicit(rk *trace.Rank) {
	sp := rk.Begin("step", trace.KindRegion)
	work()
	sp.End()
}

func okConstName(rk *trace.Rank) {
	defer rk.Region(csName).End()
}

func okEndComm(rk *trace.Rank) {
	sp := rk.BeginComm("mpi.wait", trace.KindWait, -1, -1, 0)
	sp.EndComm(3, 7, 1024)
}

func okReturned(rk *trace.Rank) trace.Span {
	return rk.Region("handed-off")
}

type holder struct{ sp trace.Span }

func okStored(rk *trace.Rank) *holder {
	h := &holder{sp: rk.Region("held")}
	return h
}

func leakOnEarlyReturn(rk *trace.Rank, cond bool) {
	sp := rk.Region("maybe") // want `not Ended on every return path`
	if cond {
		return
	}
	sp.End()
}

func leakBeforeDeferRegistered(rk *trace.Rank, cond bool) {
	sp := rk.Region("late-defer") // want `not Ended on every return path`
	if cond {
		return // the defer below has not executed yet: this path leaks
	}
	defer sp.End()
	work()
}

func leakInSwitch(rk *trace.Rank, n int) {
	sp := rk.Region("switch") // want `not Ended on every return path`
	switch n {
	case 0:
		sp.End()
	default:
	}
}

func dropped(rk *trace.Rank) {
	rk.Region("dropped") // want `opened and immediately discarded`
}

func dynamicName(rk *trace.Rank, name string) {
	sp := rk.Region(name) // want `span name must be a compile-time string constant`
	sp.End()
}

func dynamicMark(rk *trace.Rank, name string) {
	rk.Mark(name, -1, -1, 0) // want `span name must be a compile-time string constant`
}

// region is the forwarder shape pblas uses. Because it returns a
// trace.Span its own call sites are held to the span contract, and the
// dynamic name inside is its own finding (the live forwarder carries a
// lint:ignore with a justification).
func region(rk *trace.Rank, name string) trace.Span {
	return rk.Region(name) // want `span name must be a compile-time string constant`
}

func forwarderDropped(rk *trace.Rank) {
	region(rk, "fwd") // want `opened and immediately discarded`
}

func forwarderPaired(rk *trace.Rank) {
	sp := region(rk, "fwd2")
	work()
	sp.End()
}

func work() {}
