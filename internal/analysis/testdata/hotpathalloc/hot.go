// Package h exercises hotpathalloc: allocating constructs are
// forbidden inside functions annotated //gpaw:hotpath and fine
// everywhere else.
package h

import "fmt"

type point struct{ x, y int }

//gpaw:hotpath
func hotBad(n int, sink []float64) []float64 {
	buf := make([]float64, n) // want `make in //gpaw:hotpath`
	buf = append(buf, 1)      // want `append`
	p := new(point)           // want `new in //gpaw:hotpath`
	_ = p
	sl := []int{1, 2} // want `slice literal`
	_ = sl
	m := map[string]int{} // want `map literal`
	_ = m
	q := &point{x: 1} // want `heap-escaping &composite literal`
	_ = q
	fmt.Println(n)    // want `fmt call`
	bs := []byte("x") // want `allocating string conversion`
	_ = bs
	go spin()                    // want `goroutine launch`
	f := func() int { return n } // want `variable-capturing closure`
	_ = f
	_ = buf
	return sink
}

func spin() {}

//gpaw:hotpath
func hotGood(buf []float64, v float64) float64 {
	s := 0.0
	for i := range buf {
		s += buf[i]
	}
	g := func() {} // non-capturing: a static func value, no allocation
	g()
	return s + v
}

// cold is unannotated: the same constructs are fine outside hot paths.
func cold(n int) []float64 {
	buf := make([]float64, n)
	return append(buf, float64(n))
}

//gpaw:hotpath
func hotJustified(pool [][]float64, x []float64) [][]float64 {
	//lint:ignore hotpathalloc pooled append: capacity is warm in steady state
	return append(pool, x)
}
