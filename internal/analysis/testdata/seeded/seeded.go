// Package seeded holds deliberately broken copies of real solver code.
// The regression tests load it under a guarded import path and assert
// that every analyzer catches its seed — proving the suite would stop
// each of these defects if it were introduced into the live tree.
package seeded

import (
	"errors"

	"repro/internal/mpi"
	"repro/internal/trace"
)

// kineticBoundSeed is gpaw.kineticBound with the fixed-order
// justification stripped: a raw += reduction in a guarded package.
func kineticBoundSeed(coefs []float64) float64 {
	bound := 0.0
	for _, c := range coefs {
		bound += abs(c) // want `\[detsumcheck\] raw floating-point accumulation`
	}
	return bound
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// postFacesSeed is core's postDim shape with the Waitall dropped: the
// posted receives leak.
func postFacesSeed(c *mpi.Comm, nbrs []int, recv [][]float64) {
	var reqs []*mpi.Request
	for i, nbr := range nbrs {
		reqs = append(reqs, c.Irecv(nbr, 7, recv[i])) // want `\[requestleak\]`
	}
	_ = reqs // BROKEN: the real code calls mpi.Waitall(reqs...)
}

var errEmptyBatch = errors.New("empty batch")

// applySeed is the traced solver-apply shape with the error path
// forgetting to End its span.
func applySeed(rk *trace.Rank, n int) error {
	sp := rk.Region("gpaw.apply") // want `\[tracepair\]`
	if n == 0 {
		return errEmptyBatch
	}
	sp.End()
	return nil
}

// exchangeSeed is the hot halo-exchange entry with a fresh buffer
// allocation smuggled in.
//
//gpaw:hotpath
func exchangeSeed(n int) []float64 {
	return make([]float64, n) // want `\[hotpathalloc\]`
}

// recoverSeed matches the failure message instead of the typed error.
func recoverSeed(err error) bool {
	return err.Error() == "mpi: rank 3 failed" // want `\[rankfailerr\]`
}
