// Package d exercises detsumcheck: raw floating-point accumulation
// across loop iterations in a bit-identity-guarded package. The test
// loads this directory under a guarded import path (and once more
// under an unguarded one, expecting silence).
package d

import "repro/internal/detsum"

// sumRange is the canonical broken reduction.
func sumRange(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x // want `\[detsumcheck\] raw floating-point accumulation`
	}
	return s
}

// sumAssignForm spells the accumulation as x = x + e.
func sumAssignForm(xs []float64) float64 {
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s = s + xs[i] // want `raw floating-point accumulation`
	}
	return s
}

// sumReversed spells it as x = e + x.
func sumReversed(xs []float64) float64 {
	s := 0.0
	for i := range xs {
		s = xs[i] + s // want `raw floating-point accumulation`
	}
	return s
}

// residual accumulates downward with -=.
func residual(xs []float64) float64 {
	r := 1.0
	for _, x := range xs {
		r -= x * x // want `raw floating-point accumulation`
	}
	return r
}

type stats struct{ total float64 }

// fieldFold accumulates into a struct field.
func (st *stats) fieldFold(xs []float64) {
	for _, x := range xs {
		st.total += x // want `raw floating-point accumulation`
	}
}

// axpy is element-wise: the LHS is indexed per iteration, so nothing
// accumulates across iterations.
func axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// viaAcc is the approved reduction shape.
func viaAcc(xs []float64) float64 {
	var a detsum.Acc
	for _, x := range xs {
		a.Add(x)
	}
	return a.Round()
}

// fillAcc folds through an Acc passed by pointer — the helper shape
// solver code uses; no raw accumulation.
func fillAcc(a *detsum.Acc, xs, ys []float64) {
	for i := range xs {
		a.AddMul(xs[i], ys[i])
	}
}

// perIteration declares its accumulator inside the body: it does not
// survive the back edge, so there is no cross-iteration reduction.
func perIteration(xs []float64) float64 {
	last := 0.0
	for _, x := range xs {
		v := x
		v += 1.0
		last = v
	}
	return last
}

// intCount: integer accumulation is exact and never flagged.
func intCount(xs []float64) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// straightLine accumulates outside any loop: the order is fixed by the
// program text itself.
func straightLine(a, b, c float64) float64 {
	s := a
	s += b
	s += c
	return s
}

// justified carries the fixed-order annotation the real kernels use.
func justified(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		//lint:ignore detsumcheck testdata: provably fixed-order rank-local sum
		s += x
	}
	return s
}
