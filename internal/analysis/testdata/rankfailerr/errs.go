// Package rf exercises rankfailerr: rank-failure errors must be
// inspected through the typed API, never by matching the message text.
package rf

import (
	"errors"
	"strings"

	"repro/internal/mpi"
)

func badEqual(err error) bool {
	return err.Error() == "mpi: rank 3 failed" // want `must be inspected with mpi.AsRankFailure`
}

func badNotEqual(err error) bool {
	return "rank 2 died" != err.Error() // want `must be inspected with mpi.AsRankFailure`
}

func badContains(err error) bool {
	return strings.Contains(err.Error(), "rank failed") // want `must be inspected with mpi.AsRankFailure`
}

func badPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "mpi: dead rank") // want `must be inspected with mpi.AsRankFailure`
}

func badDeliveryEqual(err error) bool {
	return err.Error() == "mpi: delivery from rank 0 to rank 1 tag 9 failed after 17 attempts" // want `must be inspected with mpi.AsDeliveryFailure`
}

func badDeliveryContains(err error) bool {
	return strings.Contains(err.Error(), "delivery") && strings.Contains(err.Error(), "failed after 3 attempts") // want `must be inspected with mpi.AsDeliveryFailure`
}

func badTimeoutContains(err error) bool {
	return strings.Contains(err.Error(), "blocked longer than") // want `errors.As against \*mpi.TimeoutError`
}

func badTimeoutEqual(err error) bool {
	return err.Error() == "operation timeout" // want `errors.As against \*mpi.TimeoutError`
}

func goodDeliveryTyped(p any) bool {
	_, ok := mpi.AsDeliveryFailure(p)
	return ok
}

func goodDeliveryErrorsAs(err error) bool {
	var df *mpi.ErrDeliveryFailed
	return errors.As(err, &df)
}

func goodTimeoutErrorsAs(err error) bool {
	var te *mpi.TimeoutError
	return errors.As(err, &te)
}

func goodTyped(p any) bool {
	_, ok := mpi.AsRankFailure(p)
	return ok
}

func goodErrorsAs(err error) bool {
	var rf *mpi.ErrRankFailed
	return errors.As(err, &rf)
}

func goodUnrelatedText(err error) bool {
	return err.Error() == "file not found"
}

func goodNotErrorText(s string) bool {
	return strings.Contains(s, "rank failed")
}
