// Package rf exercises rankfailerr: rank-failure errors must be
// inspected through the typed API, never by matching the message text.
package rf

import (
	"errors"
	"strings"

	"repro/internal/mpi"
)

func badEqual(err error) bool {
	return err.Error() == "mpi: rank 3 failed" // want `must be inspected with mpi.AsRankFailure`
}

func badNotEqual(err error) bool {
	return "rank 2 died" != err.Error() // want `must be inspected with mpi.AsRankFailure`
}

func badContains(err error) bool {
	return strings.Contains(err.Error(), "rank failed") // want `must be inspected with mpi.AsRankFailure`
}

func badPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "mpi: dead rank") // want `must be inspected with mpi.AsRankFailure`
}

func goodTyped(p any) bool {
	_, ok := mpi.AsRankFailure(p)
	return ok
}

func goodErrorsAs(err error) bool {
	var rf *mpi.ErrRankFailed
	return errors.As(err, &rf)
}

func goodUnrelatedText(err error) bool {
	return err.Error() == "file not found"
}

func goodNotErrorText(s string) bool {
	return strings.Contains(s, "rank failed")
}
