// Package cl exercises the bundled copylocks pass.
package cl

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { // want `copies lock value`
	return g.n
}

func byPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func deref(p *guarded) {
	g := *p // want `copies lock value`
	_ = g
}

func rangeCopy(gs []guarded) int {
	n := 0
	for _, g := range gs { // want `copies lock value`
		n += g.n
	}
	return n
}

func rangeByIndex(gs []guarded) int {
	n := 0
	for i := range gs {
		n += gs[i].n
	}
	return n
}
