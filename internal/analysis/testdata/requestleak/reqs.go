// Package rl exercises requestleak: every Isend/Irecv request must
// reach Wait/Waitall/Testall/Reclaim on all control-flow paths.
package rl

import "repro/internal/mpi"

func okWait(c *mpi.Comm, buf, data []float64) {
	req := c.Irecv(0, 1, buf)
	c.Send(0, 1, data)
	req.Wait()
}

func okReclaimed(c *mpi.Comm, buf, data []float64) {
	req := c.Irecv(0, 1, buf)
	c.Send(0, 1, data)
	req.Wait()
	mpi.Reclaim(req)
}

func okSliceWaitall(c *mpi.Comm, bufs [][]float64) {
	var reqs []*mpi.Request
	for i := range bufs {
		reqs = append(reqs, c.Irecv(i, 1, bufs[i]))
	}
	mpi.Waitall(reqs...)
}

func okRangeWait(c *mpi.Comm, bufs [][]float64) {
	var reqs []*mpi.Request
	for i := range bufs {
		reqs = append(reqs, c.Irecv(i, 1, bufs[i]))
	}
	for _, r := range reqs {
		r.Wait()
	}
}

func okReturned(c *mpi.Comm, buf []float64) *mpi.Request {
	return c.Irecv(0, 1, buf)
}

type exchange struct{ req *mpi.Request }

func okStoredInField(c *mpi.Comm, e *exchange, buf []float64) {
	e.req = c.Irecv(0, 1, buf)
}

func okHandoff(c *mpi.Comm, buf []float64) {
	req := c.Irecv(0, 1, buf)
	collect(req)
}

func collect(r *mpi.Request) { _ = r }

func dropped(c *mpi.Comm, data []float64) {
	c.Isend(1, 2, data) // want `Isend request is discarded`
}

func blanked(c *mpi.Comm, data []float64) {
	_ = c.Isend(1, 2, data) // want `Isend request is discarded`
}

func leakOnEarlyReturn(c *mpi.Comm, buf []float64, cond bool) {
	req := c.Irecv(0, 1, buf) // want `may not reach Wait/Waitall/Testall/Reclaim`
	if cond {
		return
	}
	req.Wait()
}

func leakPerIteration(c *mpi.Comm, bufs [][]float64) {
	for i := range bufs {
		req := c.Irecv(i, 1, bufs[i]) // want `may not reach Wait/Waitall/Testall/Reclaim`
		_ = req
	}
}

func leakForgottenSlice(c *mpi.Comm, bufs [][]float64) {
	var reqs []*mpi.Request
	for i := range bufs {
		reqs = append(reqs, c.Irecv(i, 1, bufs[i])) // want `may not reach Wait/Waitall/Testall/Reclaim`
	}
	_ = reqs
}
