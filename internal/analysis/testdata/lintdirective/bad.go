// Package ld holds a malformed suppression directive: a lint:ignore
// without a justification must itself be reported.
package ld

func fold(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		//lint:ignore detsumcheck
		s += x
	}
	return s
}
