package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// RankFailErr enforces typed inspection of rank-failure errors. The
// fault-tolerant runtime (PR 6) surfaces rank death as a typed
// *mpi.ErrRankFailed and provides mpi.AsRankFailure for recovery
// paths; matching on the rendered error string instead couples
// recovery to the message text (which carries rank numbers, epochs
// and op details that change freely) and silently stops matching on
// the next wording change. This pass flags string comparisons and
// strings.* matching applied to an error's Error() text when the
// pattern mentions rank failure.
var RankFailErr = &Analyzer{
	Name: "rankfailerr",
	Doc: "rank-failure errors must be inspected with mpi.AsRankFailure or " +
		"errors.As/Is typed checks, never by matching the error string",
	Run: runRankFailErr,
}

// rankFailLiteral reports whether a matched pattern looks like it
// targets rank-failure text.
func rankFailLiteral(s string) bool {
	ls := strings.ToLower(s)
	return strings.Contains(ls, "rank") && (strings.Contains(ls, "fail") || strings.Contains(ls, "die") || strings.Contains(ls, "dead")) ||
		strings.Contains(ls, "rank failed") || strings.Contains(ls, "failed rank")
}

// stringsMatchers are the strings-package predicates used for ad-hoc
// error matching.
var stringsMatchers = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"Index": true, "EqualFold": true, "Count": true,
}

func runRankFailErr(pass *Pass) error {
	if pass.Pkg.Name() == "mpi" {
		// The transport formats the messages it owns.
		return nil
	}
	info := pass.TypesInfo
	report := func(pos token.Pos) {
		pass.Reportf(pos, "rank-failure errors must be inspected with mpi.AsRankFailure "+
			"(or errors.As against *mpi.ErrRankFailed), not by matching the error text; "+
			"the message wording is not part of the failure contract")
	}
	constStr := func(e ast.Expr) (string, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil {
			return "", false
		}
		if s := tv.Value.ExactString(); len(s) >= 2 && s[0] == '"' {
			return s[1 : len(s)-1], true
		}
		return "", false
	}
	// isErrorText reports whether e is err.Error() (or a variable of
	// type string assigned from it — only the direct call is matched;
	// laundering through a variable is rare enough to accept).
	isErrorText := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		obj := calleeObj(info, call)
		if obj == nil || obj.Name() != "Error" {
			return false
		}
		recv := methodRecv(call)
		if recv == nil {
			return false
		}
		tv, ok := info.Types[recv]
		return ok && tv.Type != nil && isErrorType(tv.Type)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				for _, pair := range [][2]ast.Expr{{v.X, v.Y}, {v.Y, v.X}} {
					if isErrorText(pair[0]) {
						if s, ok := constStr(pair[1]); ok && rankFailLiteral(s) {
							report(v.Pos())
						}
					}
				}
			case *ast.CallExpr:
				obj := calleeObj(info, v)
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "strings" || !stringsMatchers[obj.Name()] {
					return true
				}
				hasErrText, hasRankLit := false, false
				for _, a := range v.Args {
					if isErrorText(a) {
						hasErrText = true
					}
					if s, ok := constStr(a); ok && rankFailLiteral(s) {
						hasRankLit = true
					}
				}
				if hasErrText && hasRankLit {
					report(v.Pos())
				}
			}
			return true
		})
	}
	return nil
}
