package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// RankFailErr enforces typed inspection of the mpi runtime's failure
// errors. The fault-tolerant runtime (PR 6) surfaces rank death as a
// typed *mpi.ErrRankFailed (inspect with mpi.AsRankFailure), the lossy
// transport surfaces exhausted retry budgets as *mpi.ErrDeliveryFailed
// (mpi.AsDeliveryFailure) and the operation timeout as *mpi.TimeoutError
// — all carrying rank numbers, tags, attempt counts and op details in
// their rendered text that change freely. Matching on that text couples
// recovery to the wording and silently stops matching on the next
// change. This pass flags string comparisons and strings.* matching
// applied to an error's Error() text when the pattern targets any of
// the three failure families.
var RankFailErr = &Analyzer{
	Name: "rankfailerr",
	Doc: "mpi failure errors (rank failure, delivery failure, timeout) must be " +
		"inspected with their typed APIs (mpi.AsRankFailure, mpi.AsDeliveryFailure, " +
		"errors.As), never by matching the error string",
	Run: runRankFailErr,
}

// rankFailLiteral reports whether a matched pattern looks like it
// targets rank-failure text.
func rankFailLiteral(s string) bool {
	ls := strings.ToLower(s)
	return strings.Contains(ls, "rank") && (strings.Contains(ls, "fail") || strings.Contains(ls, "die") || strings.Contains(ls, "dead")) ||
		strings.Contains(ls, "rank failed") || strings.Contains(ls, "failed rank")
}

// deliveryLiteral reports whether a matched pattern looks like it
// targets the reliability sublayer's delivery-failure text
// ("mpi: delivery from rank X to rank Y tag T failed after N attempts").
func deliveryLiteral(s string) bool {
	ls := strings.ToLower(s)
	return strings.Contains(ls, "delivery") && (strings.Contains(ls, "fail") || strings.Contains(ls, "attempt")) ||
		strings.Contains(ls, "failed after") && strings.Contains(ls, "attempt")
}

// timeoutLiteral reports whether a matched pattern looks like it
// targets the operation timeout's text ("mpi: rank X blocked longer
// than D waiting for ...").
func timeoutLiteral(s string) bool {
	ls := strings.ToLower(s)
	return strings.Contains(ls, "timed out") || strings.Contains(ls, "timeout") ||
		strings.Contains(ls, "blocked longer than")
}

// stringsMatchers are the strings-package predicates used for ad-hoc
// error matching.
var stringsMatchers = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"Index": true, "EqualFold": true, "Count": true,
}

func runRankFailErr(pass *Pass) error {
	if pass.Pkg.Name() == "mpi" {
		// The transport formats the messages it owns.
		return nil
	}
	info := pass.TypesInfo
	report := func(pos token.Pos, lit string) {
		switch {
		// Delivery first: its rendered text mentions ranks and failure
		// too, but names the more specific typed API.
		case deliveryLiteral(lit):
			pass.Reportf(pos, "delivery failures must be inspected with mpi.AsDeliveryFailure "+
				"(or errors.As against *mpi.ErrDeliveryFailed), not by matching the error text; "+
				"the message wording is not part of the failure contract")
		case rankFailLiteral(lit):
			pass.Reportf(pos, "rank-failure errors must be inspected with mpi.AsRankFailure "+
				"(or errors.As against *mpi.ErrRankFailed), not by matching the error text; "+
				"the message wording is not part of the failure contract")
		default:
			pass.Reportf(pos, "operation timeouts must be inspected with errors.As against "+
				"*mpi.TimeoutError, not by matching the error text; "+
				"the message wording is not part of the failure contract")
		}
	}
	failureLiteral := func(s string) bool {
		return rankFailLiteral(s) || deliveryLiteral(s) || timeoutLiteral(s)
	}
	constStr := func(e ast.Expr) (string, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil {
			return "", false
		}
		if s := tv.Value.ExactString(); len(s) >= 2 && s[0] == '"' {
			return s[1 : len(s)-1], true
		}
		return "", false
	}
	// isErrorText reports whether e is err.Error() (or a variable of
	// type string assigned from it — only the direct call is matched;
	// laundering through a variable is rare enough to accept).
	isErrorText := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		obj := calleeObj(info, call)
		if obj == nil || obj.Name() != "Error" {
			return false
		}
		recv := methodRecv(call)
		if recv == nil {
			return false
		}
		tv, ok := info.Types[recv]
		return ok && tv.Type != nil && isErrorType(tv.Type)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				for _, pair := range [][2]ast.Expr{{v.X, v.Y}, {v.Y, v.X}} {
					if isErrorText(pair[0]) {
						if s, ok := constStr(pair[1]); ok && failureLiteral(s) {
							report(v.Pos(), s)
						}
					}
				}
			case *ast.CallExpr:
				obj := calleeObj(info, v)
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "strings" || !stringsMatchers[obj.Name()] {
					return true
				}
				hasErrText, lit := false, ""
				for _, a := range v.Args {
					if isErrorText(a) {
						hasErrText = true
					}
					if s, ok := constStr(a); ok && failureLiteral(s) {
						lit = s
					}
				}
				if hasErrText && lit != "" {
					report(v.Pos(), lit)
				}
			}
			return true
		})
	}
	return nil
}
