package analysis

import (
	"go/ast"
	"go/types"
)

// namedFrom unwraps pointers and aliases to the underlying named
// type, or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t is (a pointer to) the named type
// pkgName.typeName. Matching is by package *name* rather than import
// path so analysistest packages exercising stand-ins resolve the same
// way the real repro packages do.
func isNamedType(t types.Type, pkgName, typeName string) bool {
	n := namedFrom(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// calleeObj resolves the called function object of a call expression
// (plain call or method call), or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// calleeIn reports whether call invokes a function or method with one
// of the given names defined in a package with the given name.
func calleeIn(info *types.Info, call *ast.CallExpr, pkgName string, names ...string) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != pkgName {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// methodRecv returns the receiver expression of a method call, or
// nil for plain function calls.
func methodRecv(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// exprObj resolves an expression to the variable object it denotes,
// unwrapping parentheses; nil for anything but a plain identifier.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	return nil
}

// isConstString reports whether e is a compile-time string constant
// (literal or named constant) — the shape the zero-allocation
// tracing contract requires for span names.
func isConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringExpr reports whether e has a string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// opensSpan reports whether call is a function or method call (not a
// conversion) whose result is a trace.Span — the trace.Rank openers
// themselves, or any repo-local forwarder wrapping one.
func opensSpan(p *Pass, call *ast.CallExpr) bool {
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion, not a call
	}
	tv, ok := p.TypesInfo.Types[call]
	return ok && isNamedType(tv.Type, "trace", "Span")
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is error or implements it.
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) ||
		types.Implements(types.NewPointer(t), errorIface)
}

// funcHasDirective reports whether the function declaration carries
// the given comment directive (e.g. "//gpaw:hotpath") in its doc
// comment group.
func funcHasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive {
			return true
		}
	}
	return false
}

// enclosingFuncs visits every function body in the file: declared
// functions and methods. The visitor receives the declaration (for
// doc directives) and its body.
func enclosingFuncs(f *ast.File, visit func(fd *ast.FuncDecl)) {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd)
		}
	}
}
