// Package analysis statically enforces the runtime's three load-bearing
// invariant families. This file is the invariant catalogue: what each
// analyzer guards, why the invariant exists, and how to annotate code
// that satisfies an invariant in a way the analyzer cannot prove.
//
// # Invariants and their analyzers
//
// Bit-identity (detsumcheck). The differential harnesses assert that
// serial and distributed runs produce bitwise-identical results for
// every rank count, thread count and decomposition. Floating-point
// addition is not associative, so any reduction whose term order could
// vary with the partitioning must flow through detsum.Acc, the
// fixed-point deterministic accumulator. detsumcheck flags raw
// floating-point accumulation across loop iterations (`s += x[i]`,
// `s = s + e`, field accumulators) inside the guarded packages
// (internal/{gpaw,stencil,grid,pblas,core}). Element-wise updates
// (`y[i] += a*x[i]`) and straight-line sums are exempt. A sum whose
// order is provably fixed on one rank — a stencil's tap loop, a
// Cholesky elimination walking k in ascending order — is annotated
//
//	//lint:ignore detsumcheck <why the order is provably fixed>
//
// Zero allocation (hotpathalloc). The steady-state kernel, halo
// exchange and trace-emission paths are guarded by AllocsPerRun==0
// tests, but a test only sees the lines it executes. Functions on
// those paths carry the //gpaw:hotpath directive, and hotpathalloc
// statically forbids make/new/append, slice and map literals,
// &composite literals, fmt calls, allocating string conversions,
// variable-capturing closures and goroutine launches inside them.
// Amortised allocations — a pool miss, an append into a recycled
// buffer that is warm in steady state, an error constructed as the
// program dies — are justified with //lint:ignore hotpathalloc.
//
// Comm hygiene (tracepair, requestleak, rankfailerr).
//
//   - tracepair: every span opened with Begin/BeginComm/Region (or any
//     forwarder returning a trace.Span) must End on every control-flow
//     path, and span names must be compile-time string constants —
//     dynamic names would allocate on the emission path and defeat
//     profile aggregation by name.
//   - requestleak: every *mpi.Request from Isend/Irecv must reach
//     Wait, Waitall, Testall or Reclaim on every path. Storing a
//     request in a field, returning it, or handing it to another
//     function transfers responsibility; appending to a local slice is
//     tracked through to a later Waitall(reqs...) or range-Wait.
//   - rankfailerr: rank-failure errors are inspected with
//     mpi.AsRankFailure or errors.As against *mpi.ErrRankFailed, never
//     by matching the rendered message, whose wording is not part of
//     the failure contract.
//
// The bundled copylocks pass reimplements the stock vet check for the
// shapes this runtime uses (mailbox structs, sync-bearing engines
// passed by value).
//
// # Suppression
//
// A finding is suppressed with a staticcheck-style directive on the
// flagged line or the line above it:
//
//	//lint:ignore <analyzer>[,<analyzer>] <justification>
//
// The justification is mandatory; a directive without one is itself
// reported (analyzer name "lintdirective"). Findings in _test.go files
// are dropped wholesale: the invariants guard production code, and
// tests legitimately sum floats raw, abandon requests mid-fault and
// match error strings.
//
// # Running
//
// cmd/gpawlint bundles the suite as a multichecker:
//
//	go run ./cmd/gpawlint ./...                    # standalone
//	go vet -vettool=$(which gpawlint) ./...        # vet unit protocol
//
// CI runs both forms; TestRepoFindingFree keeps `go test` failing on
// new findings even without the vet wiring. The analysistest-style
// suites under testdata/ pin each analyzer's positive and negative
// behaviour, and testdata/seeded holds deliberately broken copies of
// real solver code that every analyzer must catch.
//
// # Why not golang.org/x/tools
//
// The framework is deliberately stdlib-only. The container this repo
// builds in has no module proxy access, so golang.org/x/tools cannot
// be pinned; rather than stub the dependency out, the subset of the
// go/analysis contract the suite needs (Analyzer, Pass, Reportf,
// analysistest-style expectation files, the go vet -vettool unit
// protocol) is implemented here on go/ast, go/types and go/importer,
// with dependencies type-checked from the compiled export data that
// `go list -export` provides offline. The analyzers are written
// against the same shapes as real go/analysis passes, so a future
// migration to the upstream framework is mechanical.
package analysis
