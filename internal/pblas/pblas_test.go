package pblas

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mpi"
)

// The pblas differential harness: every distributed kernel must be
// bit-identical to its replicated internal/linalg counterpart, for
// multiple grid shapes (1x1, 1x2, 2x1, 2x2, 1x4, 4x1, 2x4) and block
// sizes (1, 2, 3, 5, larger-than-matrix).

// gridShapes lists the process-grid shapes exercised per rank count.
func gridShapes(p int) [][2]int {
	switch p {
	case 1:
		return [][2]int{{1, 1}}
	case 2:
		return [][2]int{{1, 2}, {2, 1}}
	case 4:
		return [][2]int{{2, 2}, {1, 4}, {4, 1}}
	case 8:
		return [][2]int{{2, 4}, {4, 2}}
	}
	return nil
}

var blockSizes = []int{1, 2, 3, 5, 64}

// randMatrix builds a deterministic pseudo-random matrix.
func randMatrix(rng *rand.Rand, m, n int) linalg.Matrix {
	a := linalg.NewMatrix(m, n)
	for i := range a {
		for j := range a[i] {
			a[i][j] = rng.NormFloat64()
			if rng.Intn(7) == 0 {
				a[i][j] = 0 // exercise the zero-skip path of MatMul
			}
		}
	}
	return a
}

// randSPD builds a deterministic symmetric positive-definite matrix.
func randSPD(rng *rand.Rand, n int) linalg.Matrix {
	b := randMatrix(rng, n, n)
	a := linalg.MatMul(b, linalg.Transpose(b))
	for i := 0; i < n; i++ {
		a[i][i] += float64(n)
	}
	return a
}

// onGrids runs body on every grid shape for every rank count, with a
// fresh world each time.
func onGrids(t *testing.T, body func(t *testing.T, g *Grid2D)) {
	t.Helper()
	for _, p := range []int{1, 2, 4, 8} {
		for _, shape := range gridShapes(p) {
			pr, pc := shape[0], shape[1]
			err := mpi.Run(p, mpi.ThreadSingle, func(c *mpi.Comm) {
				g, err := NewGrid2D(c, pr, pc)
				if err != nil {
					panic(err)
				}
				body(t, g)
			})
			if err != nil {
				t.Fatalf("grid %dx%d: %v", pr, pc, err)
			}
		}
	}
}

// bitEqual reports whether two replicated matrices match bitwise
// (signed zeros distinguished: the contract is verbatim value
// transport, not just numeric equality).
func bitEqual(a, b linalg.Matrix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestNumroc(t *testing.T) {
	// Dealing n indices in blocks of nb over np procs must cover each
	// index exactly once.
	for _, n := range []int{0, 1, 5, 16, 17, 31} {
		for _, nb := range []int{1, 2, 3, 7, 40} {
			for _, np := range []int{1, 2, 3, 4} {
				total := 0
				for ip := 0; ip < np; ip++ {
					total += numroc(n, nb, ip, np)
				}
				if total != n {
					t.Fatalf("numroc(%d,%d,*,%d) covers %d indices", n, nb, np, total)
				}
			}
		}
	}
}

func TestSquarish(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 3: {1, 3}, 4: {2, 2}, 6: {2, 3}, 8: {2, 4}, 12: {3, 4}}
	for p, want := range cases {
		pr, pc := Squarish(p)
		if pr != want[0] || pc != want[1] {
			t.Errorf("Squarish(%d) = %dx%d, want %dx%d", p, pr, pc, want[0], want[1])
		}
	}
}

// TestIndexMapsRoundTrip: global->local->global is the identity on
// owned indices, and every global index has exactly one owner.
func TestIndexMapsRoundTrip(t *testing.T) {
	onGrids(t, func(t *testing.T, g *Grid2D) {
		a := NewDist(g, 17, 13, 3, 2)
		for lr := 0; lr < a.LocalRows(); lr++ {
			gi := a.GlobalRow(lr)
			if a.RowOwner(gi) != g.Myrow || a.LocalRow(gi) != lr {
				t.Errorf("grid %dx%d: row map broken at lr=%d gi=%d", g.Pr, g.Pc, lr, gi)
			}
		}
		for lc := 0; lc < a.LocalCols(); lc++ {
			gj := a.GlobalCol(lc)
			if a.ColOwner(gj) != g.Mycol || a.LocalCol(gj) != lc {
				t.Errorf("grid %dx%d: col map broken at lc=%d gj=%d", g.Pr, g.Pc, lc, gj)
			}
		}
	})
}

// TestReplicateRoundTrip: FromReplicated followed by Replicate is the
// bitwise identity for every grid shape and block size.
func TestReplicateRoundTrip(t *testing.T) {
	for _, bs := range blockSizes {
		bs := bs
		onGrids(t, func(t *testing.T, g *Grid2D) {
			rng := rand.New(rand.NewSource(42))
			a := randMatrix(rng, 11, 7)
			d := FromReplicated(g, a, bs, bs)
			if got := d.Replicate(); !bitEqual(got, a) {
				t.Errorf("grid %dx%d block %d: replicate round trip deviates", g.Pr, g.Pc, bs)
			}
		})
	}
}

// TestSUMMADifferential: distributed MatMul equals linalg.MatMul bitwise
// for rectangular operands, all grid shapes, several block sizes.
func TestSUMMADifferential(t *testing.T) {
	shapes := [][3]int{{9, 12, 7}, {16, 16, 16}, {5, 3, 8}, {1, 6, 1}}
	for _, bs := range blockSizes {
		bs := bs
		onGrids(t, func(t *testing.T, g *Grid2D) {
			rng := rand.New(rand.NewSource(int64(1000 + bs)))
			for _, sh := range shapes {
				m, k, n := sh[0], sh[1], sh[2]
				a := randMatrix(rng, m, k)
				b := randMatrix(rng, k, n)
				want := linalg.MatMul(a, b)
				da := FromReplicated(g, a, bs, bs)
				db := FromReplicated(g, b, bs, bs)
				dc, err := MatMul(da, db)
				if err != nil {
					t.Fatalf("grid %dx%d block %d: %v", g.Pr, g.Pc, bs, err)
				}
				if got := dc.Replicate(); !bitEqual(got, want) {
					t.Errorf("grid %dx%d block %d shape %v: SUMMA deviates from linalg.MatMul",
						g.Pr, g.Pc, bs, sh)
				}
			}
		})
	}
}

// TestCholeskyDifferential: distributed Cholesky equals linalg.Cholesky
// bitwise, including the zeroed strict upper triangle.
func TestCholeskyDifferential(t *testing.T) {
	for _, bs := range blockSizes {
		bs := bs
		onGrids(t, func(t *testing.T, g *Grid2D) {
			rng := rand.New(rand.NewSource(int64(2000 + bs)))
			for _, n := range []int{1, 4, 9, 16} {
				a := randSPD(rng, n)
				want, err := linalg.Cholesky(a)
				if err != nil {
					t.Fatal(err)
				}
				dl, err := Cholesky(FromReplicated(g, a, bs, bs))
				if err != nil {
					t.Fatalf("grid %dx%d block %d n=%d: %v", g.Pr, g.Pc, bs, n, err)
				}
				if got := dl.Replicate(); !bitEqual(got, want) {
					t.Errorf("grid %dx%d block %d n=%d: Cholesky deviates from linalg.Cholesky",
						g.Pr, g.Pc, bs, n)
				}
			}
		})
	}
}

// TestCholeskyNotPD: a non-positive-definite matrix fails on every rank
// with the pivot the serial factorization reports.
func TestCholeskyNotPD(t *testing.T) {
	onGrids(t, func(t *testing.T, g *Grid2D) {
		a := linalg.Matrix{{1, 0, 0}, {0, -2, 0}, {0, 0, 3}}
		if _, err := linalg.Cholesky(a); err == nil {
			t.Fatal("serial Cholesky accepted an indefinite matrix")
		}
		_, err := Cholesky(FromReplicated(g, a, 2, 2))
		if err == nil {
			t.Fatalf("grid %dx%d: distributed Cholesky accepted an indefinite matrix", g.Pr, g.Pc)
		}
		if !strings.Contains(err.Error(), "pivot 1") {
			t.Errorf("grid %dx%d: error %q does not name pivot 1", g.Pr, g.Pc, err)
		}
	})
}

// TestForwardSolveInvertDifferential: ForwardSolve against a multi-RHS
// matrix and InvertLower both match their serial counterparts bitwise.
func TestForwardSolveInvertDifferential(t *testing.T) {
	for _, bs := range blockSizes {
		bs := bs
		onGrids(t, func(t *testing.T, g *Grid2D) {
			rng := rand.New(rand.NewSource(int64(3000 + bs)))
			n, nrhs := 12, 5
			a := randSPD(rng, n)
			lser, err := linalg.Cholesky(a)
			if err != nil {
				t.Fatal(err)
			}
			b := randMatrix(rng, n, nrhs)
			// Serial reference: column-by-column forward solve.
			want := linalg.NewMatrix(n, nrhs)
			for col := 0; col < nrhs; col++ {
				rhs := make([]float64, n)
				for i := 0; i < n; i++ {
					rhs[i] = b[i][col]
				}
				x := linalg.ForwardSolve(lser, rhs)
				for i := 0; i < n; i++ {
					want[i][col] = x[i]
				}
			}
			dl := FromReplicated(g, lser, bs, bs)
			dx, err := ForwardSolve(dl, FromReplicated(g, b, bs, bs))
			if err != nil {
				t.Fatal(err)
			}
			if got := dx.Replicate(); !bitEqual(got, want) {
				t.Errorf("grid %dx%d block %d: ForwardSolve deviates", g.Pr, g.Pc, bs)
			}
			wantInv := linalg.InvertLower(lser)
			dinv, err := InvertLower(dl)
			if err != nil {
				t.Fatal(err)
			}
			if got := dinv.Replicate(); !bitEqual(got, wantInv) {
				t.Errorf("grid %dx%d block %d: InvertLower deviates", g.Pr, g.Pc, bs)
			}
		})
	}
}

// TestSymEigDifferential: the distributed eigensolver reproduces
// linalg.SymEig bitwise — eigenvalues and the scattered/re-replicated
// eigenvector matrix.
func TestSymEigDifferential(t *testing.T) {
	for _, bs := range []int{1, 2, 5} {
		bs := bs
		onGrids(t, func(t *testing.T, g *Grid2D) {
			rng := rand.New(rand.NewSource(int64(4000 + bs)))
			for _, n := range []int{2, 7, 12} {
				b := randMatrix(rng, n, n)
				a := linalg.MatMul(b, linalg.Transpose(b))
				wantEig, wantVecs, err := linalg.SymEig(a)
				if err != nil {
					t.Fatal(err)
				}
				eig, dv, err := SymEig(FromReplicated(g, a, bs, bs))
				if err != nil {
					t.Fatalf("grid %dx%d block %d n=%d: %v", g.Pr, g.Pc, bs, n, err)
				}
				for i := range eig {
					if math.Float64bits(eig[i]) != math.Float64bits(wantEig[i]) {
						t.Errorf("grid %dx%d block %d n=%d: eigenvalue %d deviates", g.Pr, g.Pc, bs, n, i)
					}
				}
				if got := dv.Replicate(); !bitEqual(got, wantVecs) {
					t.Errorf("grid %dx%d block %d n=%d: eigenvectors deviate", g.Pr, g.Pc, bs, n)
				}
			}
		})
	}
}

// TestCholeskySolveChain exercises the composed path the band solver
// uses — Cholesky, invert, rotate via SUMMA — against the serial chain.
func TestCholeskySolveChain(t *testing.T) {
	onGrids(t, func(t *testing.T, g *Grid2D) {
		rng := rand.New(rand.NewSource(99))
		n := 10
		s := randSPD(rng, n)
		lser, err := linalg.Cholesky(s)
		if err != nil {
			t.Fatal(err)
		}
		cser := linalg.Transpose(linalg.InvertLower(lser))
		// S * C, the shape of the orthonormalization rotation feed.
		want := linalg.MatMul(s, cser)
		ds := FromReplicated(g, s, 2, 2)
		dl, err := Cholesky(ds)
		if err != nil {
			t.Fatal(err)
		}
		dinv, err := InvertLower(dl)
		if err != nil {
			t.Fatal(err)
		}
		dc := FromReplicated(g, linalg.Transpose(dinv.Replicate()), 2, 2)
		prod, err := MatMul(ds, dc)
		if err != nil {
			t.Fatal(err)
		}
		if got := prod.Replicate(); !bitEqual(got, want) {
			t.Errorf("grid %dx%d: composed Cholesky/invert/SUMMA chain deviates", g.Pr, g.Pc)
		}
	})
}
