package pblas

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mpi"
)

func TestMatMulCheckedBitIdenticalAndNoFalsePositives(t *testing.T) {
	// The checked product must return MatMul's exact bits (verification
	// reads, never writes) and must not false-positive on genuine
	// rounding across grids and block sizes.
	onGrids(t, func(t *testing.T, g *Grid2D) {
		rng := rand.New(rand.NewSource(31))
		a := randMatrix(rng, 13, 9)
		b := randMatrix(rng, 9, 11)
		for _, nb := range []int{1, 3, 64} {
			da := FromReplicated(g, a, nb, nb)
			db := FromReplicated(g, b, nb, nb)
			want, err := MatMul(da, db)
			if err != nil {
				panic(err)
			}
			got, err := MatMulChecked(da, db)
			if err != nil {
				panic(err)
			}
			if !bitEqual(got.Replicate(), want.Replicate()) {
				panic("checked product differs from MatMul")
			}
		}
	})
}

func TestCholeskyCheckedBitIdenticalAndNoFalsePositives(t *testing.T) {
	onGrids(t, func(t *testing.T, g *Grid2D) {
		rng := rand.New(rand.NewSource(32))
		a := randSPD(rng, 12)
		for _, nb := range []int{2, 5} {
			da := FromReplicated(g, a, nb, nb)
			want, err := Cholesky(da)
			if err != nil {
				panic(err)
			}
			got, err := CholeskyChecked(FromReplicated(g, a, nb, nb))
			if err != nil {
				panic(err)
			}
			if !bitEqual(got.Replicate(), want.Replicate()) {
				panic("checked factor differs from Cholesky")
			}
		}
	})
}

func TestChecksumDetectsInjectedCorruption(t *testing.T) {
	// Flipping one high mantissa/exponent bit of one local element on
	// one rank must trip the checksum comparison on EVERY rank (the
	// reduced vectors are identical everywhere), with the typed error.
	onGrids(t, func(t *testing.T, g *Grid2D) {
		rng := rand.New(rand.NewSource(33))
		a := randMatrix(rng, 10, 10)
		b := randMatrix(rng, 10, 10)
		da := FromReplicated(g, a, 3, 3)
		db := FromReplicated(g, b, 3, 3)
		c, err := MatMul(da, db)
		if err != nil {
			panic(err)
		}
		// Corrupt one element of the product on rank 0 of the grid.
		if g.Myrow == 0 && g.Mycol == 0 && c.lm > 0 && c.ln > 0 {
			v := c.Local[0][0]
			c.Local[0][0] = math.Float64frombits(math.Float64bits(v) ^ 1<<62)
		}
		want := db.vecMul(da.colsums())
		got := c.colsums()
		j := checksumMismatch(got, want)
		if j < 0 {
			panic("injected corruption not detected")
		}
		err = &ErrSDCDetected{Op: "summa.colsum", Index: j, Got: got[j], Want: want[j]}
		var sdc *ErrSDCDetected
		if !errors.As(err, &sdc) || sdc.Index != j {
			panic("typed SDC error did not round-trip errors.As")
		}
	})
}

func TestCholeskyCheckedDetectsCorruptInput(t *testing.T) {
	// A silently corrupted input matrix (one rank's replica disagrees —
	// the classic memory-flip scenario) must be caught: the factor's
	// checksum can no longer match the consistent rowsum reduction.
	onGrids(t, func(t *testing.T, g *Grid2D) {
		if g.Pr*g.Pc == 1 {
			return // corruption needs an inconsistency to surface
		}
		rng := rand.New(rand.NewSource(34))
		a := randSPD(rng, 8)
		da := FromReplicated(g, a, 2, 2)
		// One rank's copy of one owned element rots in memory. Keep it
		// off the diagonal so the factor stays computable.
		if g.Myrow == 0 && g.Mycol == 0 {
			for lr := 0; lr < da.lm; lr++ {
				gi := da.GlobalRow(lr)
				for lc := 0; lc < da.ln; lc++ {
					if gj := da.GlobalCol(lc); gj < gi {
						da.Local[lr][lc] *= 1.5
						lr = da.lm
						break
					}
				}
			}
		}
		_, err := CholeskyChecked(da)
		var sdc *ErrSDCDetected
		if err == nil || !errors.As(err, &sdc) {
			// The corruption may instead surface as a non-PD failure —
			// also a detection, also typed. Only a silent pass is a bug.
			if err == nil {
				panic("corrupted Cholesky input passed the checksum")
			}
		}
	})
}

func TestChecksumVectorsIdenticalAcrossRanks(t *testing.T) {
	// The branch-agreement property everything rests on: the reduced
	// checksum vectors must be bit-identical on every rank.
	onGrids(t, func(t *testing.T, g *Grid2D) {
		rng := rand.New(rand.NewSource(35))
		a := FromReplicated(g, randMatrix(rng, 9, 7), 2, 2)
		cs := a.colsums()
		rs := a.rowsums()
		ref := make([]float64, 0, len(cs)+len(rs))
		ref = append(ref, cs...)
		ref = append(ref, rs...)
		out := make([]float64, len(ref))
		g.Comm.Allreduce(mpi.OpMax, ref, out)
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(out[i]) {
				panic("checksum vectors differ across ranks")
			}
		}
	})
}

func TestLinalgChecksumIdentity(t *testing.T) {
	// Serial sanity for the identity itself: eᵀ(AB) == (eᵀA)B up to
	// rounding far below the ABFT tolerance.
	rng := rand.New(rand.NewSource(36))
	a := randMatrix(rng, 6, 5)
	b := randMatrix(rng, 5, 4)
	c := linalg.MatMul(a, b)
	for j := 0; j < 4; j++ {
		var lhs, rhs float64
		for i := 0; i < 6; i++ {
			lhs += c[i][j]
		}
		for k := 0; k < 5; k++ {
			var colA float64
			for i := 0; i < 6; i++ {
				colA += a[i][k]
			}
			rhs += colA * b[k][j]
		}
		scale := 1 + math.Abs(lhs) + math.Abs(rhs)
		if math.Abs(lhs-rhs)/scale > 1e-12 {
			t.Fatalf("column %d: %g != %g", j, lhs, rhs)
		}
	}
}
