package pblas

import "repro/internal/topology"

// MapGrid2D places the ranks of a pr x pc process grid (row-major, the
// Grid2D layout: rank r sits at grid coordinate (r/pc, r%pc)) onto the
// nodes of a network, returning the rank-indexed coordinate table
// internal/mpi's network model prices hop distances from. The 2D grid
// embeds as a 1 x pr x pc box, so MapCart keeps grid rows and columns
// torus-contiguous — the placement that makes SUMMA's row and column
// broadcasts nearest-neighbour pipelines instead of cross-machine
// traffic.
func MapGrid2D(pr, pc int, net topology.Network, m topology.Mapping) []topology.Coord {
	return topology.MapGrid(topology.Dims{1, pr, pc}, net, m)
}
