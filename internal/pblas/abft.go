package pblas

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// ABFT-style (algorithm-based fault tolerance) checksum verification
// for the distributed dense kernels. Huang–Abraham checksums catch the
// silent data corruption a lossy substrate injects into compute or
// memory: a matrix product must satisfy eᵀC = (eᵀA)·B and a Cholesky
// factor L·(Lᵀe) = A·e, both verifiable from column/row sums at O(n²)
// cost against the O(n³) kernel. The checked variants run the normal
// kernel UNCHANGED — the verification reads the result, compares
// reductions against a relative tolerance, and never writes back, so
// the bit-identity contract of the unchecked kernels carries over
// verbatim — and surface a detected corruption as a typed
// *ErrSDCDetected for the solver layer to roll back on.
//
// The tolerance is generous (1e-6 relative): genuine rounding skew
// between the checksum order and the kernel's accumulation order is
// ~n·eps, while a flipped mantissa or exponent bit perturbs the sums by
// many orders of magnitude, so the gap between false-positive and
// missed-detection territory is wide.

// ErrSDCDetected reports that an ABFT checksum or a solver sanity
// monitor caught silent data corruption. Op names the detecting check,
// Index the first offending global index (column, row or iteration),
// Got/Want the mismatching checksum values. Recovery rolls back to the
// last good checkpoint; inspect with errors.As.
type ErrSDCDetected struct {
	Op        string
	Index     int
	Got, Want float64
}

func (e *ErrSDCDetected) Error() string {
	return fmt.Sprintf("pblas: silent data corruption detected by %s at index %d: %g != %g",
		e.Op, e.Index, e.Got, e.Want)
}

// abftTol is the relative tolerance separating checksum rounding skew
// from genuine corruption.
const abftTol = 1e-6

// colsums reduces the global column sums of a distributed matrix onto
// every rank (length a.N).
func (a *DistMatrix) colsums() []float64 {
	in := make([]float64, a.N)
	for lr := 0; lr < a.lm; lr++ {
		row := a.Local[lr]
		for lc := 0; lc < a.ln; lc++ {
			//lint:ignore detsumcheck ABFT checksum accumulation: verification-only, tolerance-compared, never written back into solver state
			in[a.GlobalCol(lc)] += row[lc]
		}
	}
	out := make([]float64, a.N)
	//lint:ignore detsumcheck ABFT checksum reduction: every rank receives the same reduced vector, the comparison is tolerance-based, and no solver value depends on it
	a.G.Comm.Allreduce(mpi.OpSum, in, out)
	return out
}

// rowsums reduces the global row sums (A·e) onto every rank (length
// a.M).
func (a *DistMatrix) rowsums() []float64 {
	in := make([]float64, a.M)
	for lr := 0; lr < a.lm; lr++ {
		row := a.Local[lr]
		gi := a.GlobalRow(lr)
		for lc := 0; lc < a.ln; lc++ {
			//lint:ignore detsumcheck ABFT checksum accumulation: verification-only, tolerance-compared, never written back into solver state
			in[gi] += row[lc]
		}
	}
	out := make([]float64, a.M)
	//lint:ignore detsumcheck ABFT checksum reduction: same reduced vector on every rank, tolerance-compared only
	a.G.Comm.Allreduce(mpi.OpSum, in, out)
	return out
}

// vecMul reduces vᵀ·A onto every rank (length a.N), v indexed by global
// row.
func (a *DistMatrix) vecMul(v []float64) []float64 {
	in := make([]float64, a.N)
	for lr := 0; lr < a.lm; lr++ {
		row := a.Local[lr]
		vi := v[a.GlobalRow(lr)]
		if vi == 0 {
			continue
		}
		for lc := 0; lc < a.ln; lc++ {
			//lint:ignore detsumcheck ABFT checksum accumulation: verification-only, tolerance-compared, never written back into solver state
			in[a.GlobalCol(lc)] += vi * row[lc]
		}
	}
	out := make([]float64, a.N)
	//lint:ignore detsumcheck ABFT checksum reduction: same reduced vector on every rank, tolerance-compared only
	a.G.Comm.Allreduce(mpi.OpSum, in, out)
	return out
}

// mulVec reduces A·v onto every rank (length a.M), v indexed by global
// column.
func (a *DistMatrix) mulVec(v []float64) []float64 {
	in := make([]float64, a.M)
	for lr := 0; lr < a.lm; lr++ {
		row := a.Local[lr]
		gi := a.GlobalRow(lr)
		for lc := 0; lc < a.ln; lc++ {
			//lint:ignore detsumcheck ABFT checksum accumulation: verification-only, tolerance-compared, never written back into solver state
			in[gi] += row[lc] * v[a.GlobalCol(lc)]
		}
	}
	out := make([]float64, a.M)
	//lint:ignore detsumcheck ABFT checksum reduction: same reduced vector on every rank, tolerance-compared only
	a.G.Comm.Allreduce(mpi.OpSum, in, out)
	return out
}

// checksumMismatch compares two checksum vectors against the relative
// tolerance, returning the first offending index (or -1). Every rank
// holds bit-identical vectors (they come from the same collective
// reductions), so every rank takes the same branch.
func checksumMismatch(got, want []float64) int {
	for i := range got {
		scale := 1 + math.Abs(got[i]) + math.Abs(want[i])
		if d := got[i] - want[i]; math.IsNaN(d) || math.Abs(d) > abftTol*scale {
			return i
		}
	}
	return -1
}

// MatMulChecked is MatMul with Huang–Abraham checksum verification:
// after the unchanged SUMMA product, the column sums of C must equal
// (eᵀA)·B within rounding. The product itself is bit-identical to
// MatMul's; on checksum mismatch the corrupted product is discarded and
// a typed *ErrSDCDetected returned.
func MatMulChecked(a, b *DistMatrix) (*DistMatrix, error) {
	c, err := MatMul(a, b)
	if err != nil {
		return nil, err
	}
	defer a.G.region("pblas.abft.verify").End()
	want := b.vecMul(a.colsums())
	got := c.colsums()
	if j := checksumMismatch(got, want); j >= 0 {
		return nil, &ErrSDCDetected{Op: "summa.colsum", Index: j, Got: got[j], Want: want[j]}
	}
	return c, nil
}

// CholeskyChecked is Cholesky with checksum verification: the factor
// must satisfy L·(Lᵀe) = A·e within rounding. The factor is
// bit-identical to Cholesky's; on mismatch a typed *ErrSDCDetected is
// returned instead.
func CholeskyChecked(a *DistMatrix) (*DistMatrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	defer a.G.region("pblas.abft.verify").End()
	want := a.rowsums()
	got := l.mulVec(l.colsums())
	if i := checksumMismatch(got, want); i >= 0 {
		return nil, &ErrSDCDetected{Op: "cholesky.rowsum", Index: i, Got: got[i], Want: want[i]}
	}
	return l, nil
}
