// Package pblas is a miniature ScaLAPACK: block-cyclic distributed dense
// linear algebra over a 2D process grid, built from mpi.Comm.Split
// row/column sub-communicators. It provides the dense subspace
// operations the band-parallel eigensolver needs — SUMMA matrix
// multiplication, blocked right-looking Cholesky, blocked triangular
// solve / lower-triangular inversion, and a symmetric eigensolver —
// each bit-identical to its replicated internal/linalg counterpart for
// every grid shape and block size.
//
// Determinism contract: pblas contains no floating-point reduction whose
// grouping depends on the distribution. The k-dimension of every
// matrix product and every triangular update is traversed in ascending
// global order through panel broadcasts, so each output element sees the
// exact addition sequence of the serial algorithm; gathers move rounded
// values verbatim (ownership-masked merges, never summation). Where the
// surrounding solver stack does need cross-rank summation (assembling
// subspace matrices from per-domain partial dot products), it routes
// through internal/detsum accumulators merged in rank order — pblas
// consumes the already-exact results.
package pblas

import (
	"fmt"

	"repro/internal/mpi"
)

// Grid2D is a Pr x Pc process grid over a communicator, with row and
// column sub-communicators for panel broadcasts. Grid rank r maps to
// grid coordinate (r/Pc, r%Pc) — row-major, like ScaLAPACK's default.
type Grid2D struct {
	Comm   *mpi.Comm
	Pr, Pc int
	// Myrow, Mycol are this rank's grid coordinates.
	Myrow, Mycol int
	// Row spans my process row; its rank numbering equals the column
	// coordinate. Col spans my process column; its rank numbering equals
	// the row coordinate.
	Row, Col *mpi.Comm
}

// NewGrid2D builds a pr x pc grid over the communicator (pr*pc must
// equal its size) and splits the row/column sub-communicators. Every
// rank of the communicator must call it collectively.
func NewGrid2D(comm *mpi.Comm, pr, pc int) (*Grid2D, error) {
	if pr < 1 || pc < 1 || pr*pc != comm.Size() {
		return nil, fmt.Errorf("pblas: grid %dx%d needs %d ranks, have %d", pr, pc, pr*pc, comm.Size())
	}
	r := comm.Rank()
	g := &Grid2D{Comm: comm, Pr: pr, Pc: pc, Myrow: r / pc, Mycol: r % pc}
	// Keys order the sub-communicators by the orthogonal coordinate, so
	// Row rank == Mycol and Col rank == Myrow — panel broadcasts can name
	// roots by grid coordinate directly.
	g.Row = comm.Split(g.Myrow, g.Mycol)
	g.Col = comm.Split(g.Mycol, g.Myrow)
	return g, nil
}

// Squarish returns the most square pr x pc factorization of p with
// pr <= pc — the default grid shape for p ranks.
func Squarish(p int) (pr, pc int) {
	pr = 1
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return pr, p / pr
}
