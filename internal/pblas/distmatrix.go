package pblas

import (
	"fmt"

	"repro/internal/linalg"
)

// DistMatrix is an M x N dense matrix distributed block-cyclically over
// a 2D process grid: global row block ib lives on process row ib % Pr,
// global column block jb on process column jb % Pc, and each rank packs
// its blocks contiguously in block-cyclic order (ScaLAPACK's local
// storage scheme). Row blocks are MB rows tall, column blocks NB columns
// wide; trailing blocks may be short.
type DistMatrix struct {
	G      *Grid2D
	M, N   int // global extents
	MB, NB int // block sizes

	// Local holds this rank's lm x ln tile, row-major. Local row lr
	// corresponds to global row GlobalRow(lr), and likewise for columns.
	Local  linalg.Matrix
	lm, ln int
}

// numroc (number of rows or columns) counts how many of n global indices
// dealt in blocks of nb over np processes land on process ip.
func numroc(n, nb, ip, np int) int {
	count := 0
	for b := ip; b*nb < n; b += np {
		w := nb
		if r := n - b*nb; r < w {
			w = r
		}
		count += w
	}
	return count
}

// NewDist allocates a zero M x N block-cyclic matrix on the grid.
func NewDist(g *Grid2D, m, n, mb, nb int) *DistMatrix {
	if m < 0 || n < 0 || mb < 1 || nb < 1 {
		panic(fmt.Sprintf("pblas: bad distributed matrix %dx%d blocks %dx%d", m, n, mb, nb))
	}
	a := &DistMatrix{G: g, M: m, N: n, MB: mb, NB: nb}
	a.lm = numroc(m, mb, g.Myrow, g.Pr)
	a.ln = numroc(n, nb, g.Mycol, g.Pc)
	a.Local = linalg.NewMatrix(a.lm, a.ln)
	return a
}

// LocalRows and LocalCols return the local tile extents.
func (a *DistMatrix) LocalRows() int { return a.lm }

// LocalCols returns the number of local columns.
func (a *DistMatrix) LocalCols() int { return a.ln }

// GlobalRow maps a local row index to its global row.
func (a *DistMatrix) GlobalRow(lr int) int {
	lb := lr / a.MB
	return (lb*a.G.Pr+a.G.Myrow)*a.MB + lr%a.MB
}

// GlobalCol maps a local column index to its global column.
func (a *DistMatrix) GlobalCol(lc int) int {
	lb := lc / a.NB
	return (lb*a.G.Pc+a.G.Mycol)*a.NB + lc%a.NB
}

// RowOwner returns the process row owning global row i.
func (a *DistMatrix) RowOwner(i int) int { return (i / a.MB) % a.G.Pr }

// ColOwner returns the process column owning global column j.
func (a *DistMatrix) ColOwner(j int) int { return (j / a.NB) % a.G.Pc }

// LocalRow maps a global row to the local row index on its owner.
func (a *DistMatrix) LocalRow(i int) int {
	return (i/a.MB/a.G.Pr)*a.MB + i%a.MB
}

// LocalCol maps a global column to the local column index on its owner.
func (a *DistMatrix) LocalCol(j int) int {
	return (j/a.NB/a.G.Pc)*a.NB + j%a.NB
}

// FromReplicated distributes a replicated matrix: each rank copies its
// owned entries locally, no communication. Every rank must hold a
// bit-identical replica for the distributed matrix to be consistent.
func FromReplicated(g *Grid2D, a linalg.Matrix, mb, nb int) *DistMatrix {
	m := len(a)
	n := 0
	if m > 0 {
		n = len(a[0])
	}
	d := NewDist(g, m, n, mb, nb)
	for lr := 0; lr < d.lm; lr++ {
		gi := d.GlobalRow(lr)
		for lc := 0; lc < d.ln; lc++ {
			d.Local[lr][lc] = a[gi][d.GlobalCol(lc)]
		}
	}
	return d
}

// Clone deep-copies the distributed matrix (same grid).
func (a *DistMatrix) Clone() *DistMatrix {
	out := NewDist(a.G, a.M, a.N, a.MB, a.NB)
	for lr := range a.Local {
		copy(out.Local[lr], a.Local[lr])
	}
	return out
}

// MergeMasked folds an ownership-masked contribution into acc: both are
// laid out as [values..., mask...], and slots flagged in the
// contribution's mask overwrite acc's value verbatim. Because every slot
// is owned by exactly one rank, the rank-ordered merge is a pure copy —
// no floating-point arithmetic touches the values in flight. The band
// layer in internal/gpaw shares this convention for merging finished
// subspace-matrix rows across band groups.
func MergeMasked(acc, contrib []float64) {
	half := len(acc) / 2
	for i := 0; i < half; i++ {
		if contrib[half+i] != 0 {
			acc[i] = contrib[i]
			acc[half+i] = 1
		}
	}
}

// Replicate gathers the distributed matrix into a replicated
// linalg.Matrix on every rank. Values travel verbatim (ownership-masked
// merge), so the replica is bit-identical to the distributed content.
func (a *DistMatrix) Replicate() linalg.Matrix {
	mn := a.M * a.N
	in := make([]float64, 2*mn)
	for lr := 0; lr < a.lm; lr++ {
		gi := a.GlobalRow(lr)
		for lc := 0; lc < a.ln; lc++ {
			idx := gi*a.N + a.GlobalCol(lc)
			in[idx] = a.Local[lr][lc]
			in[mn+idx] = 1
		}
	}
	out := make([]float64, 2*mn)
	a.G.Comm.AllreduceFunc(in, out, MergeMasked)
	rep := linalg.NewMatrix(a.M, a.N)
	for i := 0; i < a.M; i++ {
		copy(rep[i], out[i*a.N:(i+1)*a.N])
	}
	return rep
}

// blockWidth returns the width of global block b for extent n and block
// size nb (trailing blocks may be short).
func blockWidth(n, nb, b int) int {
	w := nb
	if r := n - b*nb; r < w {
		w = r
	}
	return w
}
