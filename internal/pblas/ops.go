package pblas

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/trace"
)

// region opens a named trace span on the grid's communicator — the
// dense subspace algebra shows up on the timeline under pblas.* names
// alongside its own broadcasts. End the returned span with .End(); the
// nil path (tracing off) costs one atomic load.
func (g *Grid2D) region(name string) trace.Span {
	//lint:ignore tracepair thin forwarder: the constant-name contract binds its call sites, which tracepair checks because this returns trace.Span
	return g.Comm.TraceRank().Region(name)
}

// This file implements the distributed dense kernels. Each one is
// bit-identical to its replicated internal/linalg counterpart because
// the k-dimension is traversed in ascending global order through panel
// broadcasts: every output element experiences exactly the serial
// algorithm's sequence of rounded multiply-accumulate operations, just
// with the panels arriving over the wire instead of from local memory.

// localRowsBelow returns how many of this rank's local rows lie in
// global row blocks with index < gb.
func (a *DistMatrix) localRowsBelow(gb int) int {
	count := 0
	for b := a.G.Myrow; b < gb; b += a.G.Pr {
		count += blockWidth(a.M, a.MB, b)
	}
	return count
}

// localColsBelow returns how many of this rank's local columns lie in
// global column blocks with index < gb.
func (a *DistMatrix) localColsBelow(gb int) int {
	count := 0
	for b := a.G.Mycol; b < gb; b += a.G.Pc {
		count += blockWidth(a.N, a.NB, b)
	}
	return count
}

// MatMul computes C = A*B with the SUMMA algorithm: for every global
// k-block in ascending order, the owning process column broadcasts its
// A panel along process rows, the owning process row broadcasts its B
// panel along process columns, and every rank accumulates into its local
// C tile. A and B must share the grid and satisfy A.N == B.M and
// A.NB == B.MB (the k block size). The ascending-k traversal — with the
// same skip of exact-zero A elements — makes the result bit-identical to
// linalg.MatMul of the replicated operands.
func MatMul(a, b *DistMatrix) (*DistMatrix, error) {
	if a.G != b.G {
		return nil, fmt.Errorf("pblas: matmul operands on different grids")
	}
	if a.N != b.M || a.NB != b.MB {
		return nil, fmt.Errorf("pblas: matmul %dx%d (NB %d) by %dx%d (MB %d)",
			a.M, a.N, a.NB, b.M, b.N, b.MB)
	}
	g := a.G
	c := NewDist(g, a.M, b.N, a.MB, b.NB)
	defer g.region("pblas.summa").End()
	kbs := a.NB
	nkb := (a.N + kbs - 1) / kbs
	for kb := 0; kb < nkb; kb++ {
		kw := blockWidth(a.N, kbs, kb)
		// A panel: my local rows x kw, from process column kb % Pc.
		apan := make([]float64, a.lm*kw)
		if g.Mycol == kb%g.Pc {
			lcB := a.LocalCol(kb * kbs)
			for lr := 0; lr < a.lm; lr++ {
				copy(apan[lr*kw:(lr+1)*kw], a.Local[lr][lcB:lcB+kw])
			}
		}
		g.Row.Bcast(kb%g.Pc, apan)
		// B panel: kw x my local columns, from process row kb % Pr.
		bpan := make([]float64, kw*b.ln)
		if g.Myrow == kb%g.Pr {
			lrB := b.LocalRow(kb * kbs)
			for t := 0; t < kw; t++ {
				copy(bpan[t*b.ln:(t+1)*b.ln], b.Local[lrB+t])
			}
		}
		g.Col.Bcast(kb%g.Pr, bpan)
		// Local rank-kw update, ascending k within the panel.
		for lr := 0; lr < c.lm; lr++ {
			out := c.Local[lr]
			for t := 0; t < kw; t++ {
				ail := apan[lr*kw+t]
				if ail == 0 {
					continue
				}
				row := bpan[t*b.ln : (t+1)*b.ln]
				for lc := range out {
					out[lc] += ail * row[lc]
				}
			}
		}
	}
	return c, nil
}

// replicateDiag gathers the global diagonal of a square distributed
// matrix onto every rank (values verbatim).
func replicateDiag(a *DistMatrix) []float64 {
	n := a.N
	in := make([]float64, 2*n)
	for lr := 0; lr < a.lm; lr++ {
		gi := a.GlobalRow(lr)
		if a.ColOwner(gi) == a.G.Mycol {
			in[gi] = a.Local[lr][a.LocalCol(gi)]
			in[n+gi] = 1
		}
	}
	out := make([]float64, 2*n)
	a.G.Comm.AllreduceFunc(in, out, MergeMasked)
	return out[:n]
}

// Cholesky factors a symmetric positive-definite distributed matrix as
// L*Lᵀ, returning lower-triangular L (strict upper zeroed), by blocked
// right-looking elimination: factor the diagonal block, solve the panel
// below it on the owning process column, broadcast the panel along rows
// and its transpose pieces along columns, update the trailing lower
// triangle, advance. Every element's subtraction chain runs in the
// serial algorithm's ascending-k order with identical per-step rounding,
// and the positive-definiteness test uses the same relative tolerance
// against the original diagonal, so both the factor and the error
// behaviour are bit-identical to linalg.Cholesky for every grid shape
// and block size.
func Cholesky(a *DistMatrix) (*DistMatrix, error) {
	if a.M != a.N || a.MB != a.NB {
		return nil, fmt.Errorf("pblas: Cholesky needs a square matrix with square blocks, have %dx%d blocks %dx%d",
			a.M, a.N, a.MB, a.NB)
	}
	g := a.G
	defer g.region("pblas.cholesky").End()
	n, b := a.N, a.MB
	l := a.Clone()
	diag := replicateDiag(a)
	nblocks := (n + b - 1) / b
	for kb := 0; kb < nblocks; kb++ {
		bw := blockWidth(n, b, kb)
		pr0, pc0 := kb%g.Pr, kb%g.Pc
		// 1. Factor the diagonal block on its owner; broadcast the block
		// and a status word (a non-positive pivot must fail on every rank).
		status := make([]float64, 1+bw*bw)
		if g.Myrow == pr0 && g.Mycol == pc0 {
			lrB, lcB := l.LocalRow(kb*b), l.LocalCol(kb*b)
			status[0] = 1
		factor:
			for i := 0; i < bw; i++ {
				for j := 0; j <= i; j++ {
					sum := l.Local[lrB+i][lcB+j]
					for t := 0; t < j; t++ {
						//lint:ignore detsumcheck diagonal-block Cholesky factor in ascending t order on one rank — the serial algorithm's exact rounding sequence
						sum -= l.Local[lrB+i][lcB+t] * l.Local[lrB+j][lcB+t]
					}
					if i == j {
						// Same relative tolerance as linalg.Cholesky,
						// against the original global diagonal.
						if sum <= 1e-12*math.Abs(diag[kb*b+i]) {
							status[0] = -float64(kb*b+i) - 1
							break factor
						}
						l.Local[lrB+i][lcB+i] = math.Sqrt(sum)
					} else {
						l.Local[lrB+i][lcB+j] = sum / l.Local[lrB+j][lcB+j]
					}
				}
			}
			for i := 0; i < bw; i++ {
				for j := 0; j <= i; j++ {
					status[1+i*bw+j] = l.Local[lrB+i][lcB+j]
				}
			}
		}
		g.Comm.Bcast(pr0*g.Pc+pc0, status)
		if status[0] != 1 {
			return nil, fmt.Errorf("pblas: matrix not positive definite at pivot %d", int(-status[0])-1)
		}
		lkk := status[1:]
		// 2. Panel solve on process column pc0: rows in blocks > kb get
		// L[i][j] = (A[i][j] - Σ_{t<j} L[i][t]·Lkk[j][t]) / Lkk[j][j].
		lrStart := l.localRowsBelow(kb + 1)
		panRows := l.lm - lrStart
		panel := make([]float64, panRows*bw)
		if g.Mycol == pc0 {
			lcB := l.LocalCol(kb * b)
			for r := 0; r < panRows; r++ {
				row := l.Local[lrStart+r]
				for j := 0; j < bw; j++ {
					sum := row[lcB+j]
					for t := 0; t < j; t++ {
						//lint:ignore detsumcheck panel column solve in ascending t order against the broadcast diagonal block — fixed-order rank-local update
						sum -= row[lcB+t] * lkk[j*bw+t]
					}
					row[lcB+j] = sum / lkk[j*bw+j]
				}
				copy(panel[r*bw:(r+1)*bw], row[lcB:lcB+bw])
			}
		}
		// 3. Row-broadcast: every rank receives the panel rows for the
		// global rows it owns.
		g.Row.Bcast(pc0, panel)
		// 4. Column-broadcast the transpose pieces: for each of my local
		// column blocks jb > kb, fetch L[jb][kb] from process row jb % Pr
		// (which just received it in step 3). Every rank of a process
		// column iterates the same jb set, so the broadcasts pair up.
		trail := make(map[int][]float64)
		for jb := kb + 1; jb < nblocks; jb++ {
			if jb%g.Pc != g.Mycol {
				continue
			}
			bwj := blockWidth(n, b, jb)
			buf := make([]float64, bwj*bw)
			if g.Myrow == jb%g.Pr {
				lrB := l.LocalRow(jb * b)
				for r := 0; r < bwj; r++ {
					copy(buf[r*bw:(r+1)*bw], panel[(lrB-lrStart+r)*bw:(lrB-lrStart+r+1)*bw])
				}
			}
			g.Col.Bcast(jb%g.Pr, buf)
			trail[jb] = buf
		}
		// 5. Trailing update of the lower triangle: for global (i, j)
		// with j in blocks > kb and j <= i, subtract the panel's rank-bw
		// contribution in ascending k.
		lcStart := l.localColsBelow(kb + 1)
		for lr := lrStart; lr < l.lm; lr++ {
			gi := l.GlobalRow(lr)
			prow := panel[(lr-lrStart)*bw : (lr-lrStart+1)*bw]
			for lc := lcStart; lc < l.ln; lc++ {
				gj := l.GlobalCol(lc)
				if gj > gi {
					continue
				}
				ljk := trail[gj/b][(gj%b)*bw:]
				v := l.Local[lr][lc]
				for t := 0; t < bw; t++ {
					//lint:ignore detsumcheck trailing update walks the k panel in ascending global order, matching the replicated Cholesky's rounding sequence element-wise
					v -= prow[t] * ljk[t]
				}
				l.Local[lr][lc] = v
			}
		}
	}
	// Zero the strictly upper local entries, matching the replicated
	// factor's layout.
	for lr := 0; lr < l.lm; lr++ {
		gi := l.GlobalRow(lr)
		for lc := 0; lc < l.ln; lc++ {
			if l.GlobalCol(lc) > gi {
				l.Local[lr][lc] = 0
			}
		}
	}
	return l, nil
}

// ForwardSolve solves L*X = B for a lower-triangular distributed L by
// blocked forward substitution: broadcast the diagonal block, solve the
// block row on its owning process row, broadcast the solved rows down
// process columns and the L panel across process rows, subtract the
// rank-bw update from the rows below, advance. B's row blocking must
// match L's. Element for element the subtraction chain is the serial
// ForwardSolve's ascending-k order, so the result is bit-identical to
// column-by-column linalg.ForwardSolve on the replicated operands.
func ForwardSolve(l, bm *DistMatrix) (*DistMatrix, error) {
	if l.G != bm.G {
		return nil, fmt.Errorf("pblas: forward solve operands on different grids")
	}
	if l.M != l.N || l.MB != l.NB {
		return nil, fmt.Errorf("pblas: forward solve needs square L with square blocks")
	}
	if bm.M != l.N || bm.MB != l.MB {
		return nil, fmt.Errorf("pblas: forward solve rhs %dx%d (MB %d) mismatches L of order %d (MB %d)",
			bm.M, bm.N, bm.MB, l.N, l.MB)
	}
	g := l.G
	defer g.region("pblas.trsm").End()
	n, b := l.N, l.MB
	x := bm.Clone()
	nblocks := (n + b - 1) / b
	for kb := 0; kb < nblocks; kb++ {
		bw := blockWidth(n, b, kb)
		pr0, pc0 := kb%g.Pr, kb%g.Pc
		// 1. Broadcast the diagonal block to every rank.
		lkk := make([]float64, bw*bw)
		if g.Myrow == pr0 && g.Mycol == pc0 {
			lrB, lcB := l.LocalRow(kb*b), l.LocalCol(kb*b)
			for i := 0; i < bw; i++ {
				copy(lkk[i*bw:(i+1)*bw], l.Local[lrB+i][lcB:lcB+bw])
			}
		}
		g.Comm.Bcast(pr0*g.Pc+pc0, lkk)
		// 2. Solve the block row on process row pr0 for its local columns.
		xk := make([]float64, bw*x.ln)
		if g.Myrow == pr0 {
			lrB := x.LocalRow(kb * b)
			for lc := 0; lc < x.ln; lc++ {
				for r := 0; r < bw; r++ {
					sum := x.Local[lrB+r][lc]
					for t := 0; t < r; t++ {
						//lint:ignore detsumcheck forward substitution in ascending t order within one diagonal block on one rank — fixed-order by construction
						sum -= lkk[r*bw+t] * x.Local[lrB+t][lc]
					}
					x.Local[lrB+r][lc] = sum / lkk[r*bw+r]
				}
			}
			for r := 0; r < bw; r++ {
				for lc := 0; lc < x.ln; lc++ {
					xk[r*x.ln+lc] = x.Local[lrB+r][lc]
				}
			}
		}
		// 3. Broadcast the solved block rows down each process column.
		g.Col.Bcast(pr0, xk)
		// 4. Row-broadcast my L panel below the diagonal block.
		lrStart := l.localRowsBelow(kb + 1)
		panRows := l.lm - lrStart
		panel := make([]float64, panRows*bw)
		if g.Mycol == pc0 {
			lcB := l.LocalCol(kb * b)
			for r := 0; r < panRows; r++ {
				copy(panel[r*bw:(r+1)*bw], l.Local[lrStart+r][lcB:lcB+bw])
			}
		}
		g.Row.Bcast(pc0, panel)
		// 5. Trailing update: rows below subtract L[i][kb-block] * X[kb].
		for r := 0; r < panRows; r++ {
			lr := lrStart + r
			for lc := 0; lc < x.ln; lc++ {
				v := x.Local[lr][lc]
				for t := 0; t < bw; t++ {
					//lint:ignore detsumcheck trailing substitution update walks the broadcast panel in ascending t order — matches the replicated solve's rounding sequence
					v -= panel[r*bw+t] * xk[t*x.ln+lc]
				}
				x.Local[lr][lc] = v
			}
		}
	}
	return x, nil
}

// InvertLower returns the inverse of a lower-triangular distributed
// matrix by forward-solving against the identity — the distributed twin
// of linalg.InvertLower, bit-identical column for column.
func InvertLower(l *DistMatrix) (*DistMatrix, error) {
	return ForwardSolve(l, FromReplicated(l.G, linalg.Identity(l.N), l.MB, l.NB))
}

// SymEig diagonalizes a symmetric distributed matrix, returning
// eigenvalues ascending and the eigenvectors as the columns of a
// distributed matrix. For the subspace dimensions this package serves
// (tens of bands) it uses the gather–diagonalize–scatter strategy:
// the matrix is replicated verbatim, every rank runs the deterministic
// Jacobi solver of linalg.SymEig redundantly on bit-identical input —
// producing bit-identical eigenpairs with linalg's canonical order and
// sign convention — and the eigenvector matrix is scattered back into
// block-cyclic form. The differential tests assert this distributed
// path against the replicated solver bitwise.
func SymEig(a *DistMatrix) (eig []float64, vecs *DistMatrix, err error) {
	if a.M != a.N {
		return nil, nil, fmt.Errorf("pblas: SymEig of %dx%d matrix", a.M, a.N)
	}
	defer a.G.region("pblas.symeig").End()
	rep := a.Replicate()
	eig, v, err := linalg.SymEig(rep)
	if err != nil {
		return nil, nil, err
	}
	return eig, FromReplicated(a.G, v, a.MB, a.NB), nil
}
