package mpi

import (
	"sync/atomic"
	"testing"
)

// Direct unit tests for Comm.Split, which the band-parallel solver layer
// makes load-bearing: the bands x domain 2D layout and the pblas process
// grids are all built from Split row/col/band sub-communicators.

// TestSplitColorGrouping: ranks with the same color land in the same
// communicator, with sizes matching the color populations and ranks
// ordered by old rank when keys are equal.
func TestSplitColorGrouping(t *testing.T) {
	const n = 6
	var sizes [n]int32
	var ranks [n]int32
	err := Run(n, ThreadSingle, func(c *Comm) {
		// Colors 0,0,1,1,2,2 by pairs.
		sub := c.Split(c.Rank()/2, 0)
		if sub == nil {
			t.Errorf("rank %d: nil communicator for non-negative color", c.Rank())
			return
		}
		atomic.StoreInt32(&sizes[c.Rank()], int32(sub.Size()))
		atomic.StoreInt32(&ranks[c.Rank()], int32(sub.Rank()))
		// The pair communicator must actually work: sum both members'
		// world ranks and check against the closed form.
		got := sub.AllreduceSum(float64(c.Rank()))
		want := float64(4*(c.Rank()/2) + 1)
		if got != want {
			t.Errorf("rank %d: pair sum %g, want %g", c.Rank(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if sizes[r] != 2 {
			t.Errorf("rank %d: size %d, want 2", r, sizes[r])
		}
		if want := int32(r % 2); ranks[r] != want {
			t.Errorf("rank %d: new rank %d, want %d (old-rank order)", r, ranks[r], want)
		}
	}
}

// TestSplitKeyOrdering: descending keys reverse the rank order inside
// the new communicator, and equal keys fall back to old-rank order.
func TestSplitKeyOrdering(t *testing.T) {
	const n = 4
	var newRanks [n]int32
	err := Run(n, ThreadSingle, func(c *Comm) {
		sub := c.Split(0, -c.Rank()) // negative keys are legal; only order matters
		atomic.StoreInt32(&newRanks[c.Rank()], int32(sub.Rank()))
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if want := int32(n - 1 - r); newRanks[r] != want {
			t.Errorf("old rank %d: new rank %d, want %d (reversed by key)", r, newRanks[r], want)
		}
	}
}

// TestSplitNegativeColor: a negative color (MPI_UNDEFINED) yields nil,
// and the remaining ranks form a correctly sized communicator.
func TestSplitNegativeColor(t *testing.T) {
	const n = 4
	err := Run(n, ThreadSingle, func(c *Comm) {
		color := 0
		if c.Rank()%2 == 1 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank()%2 == 1 {
			if sub != nil {
				t.Errorf("rank %d: want nil for negative color, got size %d", c.Rank(), sub.Size())
			}
			return
		}
		if sub == nil {
			t.Errorf("rank %d: nil for non-negative color", c.Rank())
			return
		}
		if sub.Size() != n/2 {
			t.Errorf("rank %d: size %d, want %d", c.Rank(), sub.Size(), n/2)
		}
		if sub.Rank() != c.Rank()/2 {
			t.Errorf("rank %d: new rank %d, want %d", c.Rank(), sub.Rank(), c.Rank()/2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitContextIsolation pins the communicator-context mechanism: a
// split communicator covering the same ranks as its parent must not
// cross-match the parent's collectives, even when the sender races ahead.
// Without per-communicator contexts, both broadcasts below would use the
// same (source rank, tag) pair and the child's receive could steal the
// parent's envelope.
func TestSplitContextIsolation(t *testing.T) {
	const n = 4
	err := Run(n, ThreadSingle, func(c *Comm) {
		sub := c.Split(0, 0) // same membership, distinct context
		parentBuf := []float64{0}
		childBuf := []float64{0}
		if c.Rank() == 0 {
			parentBuf[0], childBuf[0] = 1, 2
			// Root sends both broadcasts eagerly before any receiver runs.
			c.Bcast(0, parentBuf)
			sub.Bcast(0, childBuf)
			return
		}
		// Receivers take the child broadcast first: with shared tag
		// spaces this would match the parent's earlier envelope.
		sub.Bcast(0, childBuf)
		c.Bcast(0, parentBuf)
		if parentBuf[0] != 1 || childBuf[0] != 2 {
			t.Errorf("rank %d: got parent %g child %g, want 1 and 2", c.Rank(), parentBuf[0], childBuf[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitNestedGrids exercises the exact communicator tree the
// bands x domain layer builds: world -> band groups -> 2D grid row/col
// sub-communicators, with collectives live at every level.
func TestSplitNestedGrids(t *testing.T) {
	const n = 8 // 2 groups x (2x2 grid)
	err := Run(n, ThreadSingle, func(c *Comm) {
		group := c.Split(c.Rank()/4, c.Rank()) // two groups of 4
		row := group.Split(group.Rank()/2, group.Rank()%2)
		col := group.Split(group.Rank()%2, group.Rank()/2)
		if row.Size() != 2 || col.Size() != 2 {
			t.Errorf("rank %d: row size %d col size %d, want 2 and 2", c.Rank(), row.Size(), col.Size())
		}
		// Sum world ranks along each axis and check against closed forms.
		rowSum := row.AllreduceSum(float64(c.Rank()))
		colSum := col.AllreduceSum(float64(c.Rank()))
		base := 4 * (c.Rank() / 4)
		r, q := (c.Rank()-base)/2, (c.Rank()-base)%2
		if want := float64(2*base + 4*r + 1); rowSum != want {
			t.Errorf("rank %d: row sum %g, want %g", c.Rank(), rowSum, want)
		}
		if want := float64(2*base + 2*q + 2); colSum != want {
			t.Errorf("rank %d: col sum %g, want %g", c.Rank(), colSum, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
