package mpi

import (
	"fmt"

	"repro/internal/topology"
)

// Cart is a communicator with 3-D Cartesian topology information
// attached, the analogue of a communicator produced by MPI_Cart_create.
// On Blue Gene/P, MPI_Cart_create with reorder=true maps MPI ranks onto
// the physical torus so that Cartesian neighbours are physical
// neighbours; the paper uses this in all experiments. In this in-process
// runtime reorder is the identity permutation, but the topology queries
// behave identically.
type Cart struct {
	*Comm
	Dims     topology.Dims
	Periodic [3]bool
}

// CartCreate attaches a Cartesian topology of the given extents to the
// communicator. The product of dims must equal the communicator size.
// reorder is accepted for API fidelity; rank numbering is row-major
// (x slowest), matching MPI_Cart_create's canonical ordering.
func (c *Comm) CartCreate(dims topology.Dims, periodic [3]bool, reorder bool) *Cart {
	if dims.Count() != c.Size() {
		panic(fmt.Sprintf("mpi: cart dims %v product %d != comm size %d", dims, dims.Count(), c.Size()))
	}
	_ = reorder
	return &Cart{Comm: c, Dims: dims, Periodic: periodic}
}

// Coords returns the Cartesian coordinates of a rank.
func (ct *Cart) Coords(rank int) topology.Coord { return ct.Dims.Coord(rank) }

// RankOf returns the rank at the given coordinates.
func (ct *Cart) RankOf(coord topology.Coord) int { return ct.Dims.Rank(coord) }

// ProcNull is returned by Shift for off-edge neighbours in
// non-periodic dimensions, like MPI_PROC_NULL.
const ProcNull = -2

// Shift returns the source and destination ranks for a displacement along
// one dimension (MPI_Cart_shift): dst is disp steps in +dim, src is the
// rank whose +disp shift lands here. In periodic dimensions coordinates
// wrap; otherwise off-edge neighbours are ProcNull.
func (ct *Cart) Shift(dim, disp int) (src, dst int) {
	me := ct.Coords(ct.Rank())
	shift := func(c topology.Coord, delta int) int {
		c[dim] += delta
		n := ct.Dims[dim]
		if c[dim] < 0 || c[dim] >= n {
			if !ct.Periodic[dim] {
				return ProcNull
			}
			c[dim] = ((c[dim] % n) + n) % n
		}
		return ct.RankOf(c)
	}
	return shift(me, -disp), shift(me, +disp)
}
