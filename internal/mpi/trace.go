package mpi

import (
	"repro/internal/trace"
)

// Tracing integration. A trace.Tracer armed on the world turns every
// MPI operation into a timeline event: point-to-point sends (peer,
// tag, bytes), blocking waits (with the modeled virtual jump to the
// message's arrival), collectives, and fault/recovery milestones. The
// solvers above add nested compute regions through the same per-rank
// handles (Comm.TraceRank). Everything is gated on one atomic load —
// a world without a tracer, or with a disabled one, pays a load and a
// branch per emission site and nothing else, and the transport's
// zero-allocation steady state is preserved (spans are value tokens
// into preallocated rings).
//
// Arm the tracer before the ranks start, like the network model:
//
//	w := mpi.NewWorld(n, mpi.ThreadSingle)
//	w.SetNetModel(m)         // optional: virtual timestamps
//	w.SetTracer(tr)
//	err := w.Run(body)
//
// Tracing observes clocks and copies event structs; it never reorders
// communication, matching or arithmetic, so traced results are
// bit-identical to untraced ones (asserted in internal/gpaw's tests).

// SetTracer arms an event tracer on the world. The tracer must have at
// least one rank track per world rank. Under a network model the
// tracer's virtual clock reads the per-rank modeled clocks, so traces
// of NoComputeWall runs are deterministic. Call before any traffic.
func (w *World) SetTracer(t *trace.Tracer) {
	if t == nil {
		return
	}
	if t.Ranks() < w.size {
		panic("mpi: tracer has fewer rank tracks than the world has ranks")
	}
	w.tracer = t
	t.SetVirtualClock(func(rank int) int64 {
		if !w.netOn.Load() || rank >= w.size {
			return 0
		}
		return int64(w.VirtualTime(rank))
	})
	w.trcOn.Store(true)
}

// Tracer returns the armed tracer, or nil.
func (w *World) Tracer() *trace.Tracer {
	if !w.trcOn.Load() {
		return nil
	}
	return w.tracer
}

// NetArmed reports whether a network model is installed — the cue for
// profile consumers to prefer the virtual clock.
func (w *World) NetArmed() bool { return w.netOn.Load() }

// Run spawns the world's ranks executing body and waits for them all —
// Run/RunWithFaults/RunModeled as a method, for worlds that need
// arming (SetNetModel, SetTracer, SetFaultPlan) before the ranks
// start. The world must be fresh: no prior traffic.
func (w *World) Run(body func(c *Comm)) error { return w.runRanks(body) }

// SetFaultPlan arms a fault-injection plan on the world (what
// RunWithFaults does internally), so plans compose with SetNetModel
// and SetTracer through World.Run. nil is a no-op.
func (w *World) SetFaultPlan(plan *FaultPlan) {
	if plan != nil {
		w.installPlan(plan)
	}
}

// WorldRank returns the caller's rank in the underlying world —
// stable across communicator splits and shrinks, and the rank whose
// trace track and virtual clock this communicator's operations use.
func (c *Comm) WorldRank() int { return c.group[c.rank] }

// TraceRank returns the caller's per-rank trace handle, or nil when
// tracing is off — the hook the halo-exchange engine and the solvers
// use to add compute regions and overlap accounting to the timeline.
// The nil path is one atomic load; all handle methods no-op on nil.
func (c *Comm) TraceRank() *trace.Rank { return c.traceRank() }

func (c *Comm) traceRank() *trace.Rank {
	w := c.world
	if !w.trcOn.Load() {
		return nil
	}
	t := w.tracer
	if t == nil || !t.Enabled() {
		return nil
	}
	return t.Rank(c.group[c.rank])
}

// traceRankFor is the world-level equivalent for code that has no
// communicator at hand (failure revocation).
func (w *World) traceRankFor(rank int) *trace.Rank {
	if !w.trcOn.Load() {
		return nil
	}
	t := w.tracer
	if t == nil || !t.Enabled() {
		return nil
	}
	return t.Rank(rank)
}
