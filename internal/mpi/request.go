package mpi

import "sync"

// Request tracks the completion of a non-blocking operation, like
// MPI_Request. Requests are created by Isend/Irecv and completed by the
// runtime; Wait blocks until completion.
//
// Errors detected at delivery time (message truncation, world abort
// after a rank panic) are stored on the request and surfaced as a panic
// in the waiter's goroutine — the MPI convention that receive-side
// errors belong to the receiver.
type Request struct {
	mu   sync.Mutex
	cond *sync.Cond
	done bool
	src  int
	tag  int
	n    int
	err  error
}

func newRequest() *Request {
	r := &Request{}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// complete marks the request done with the given status and wakes
// waiters.
func (r *Request) complete(src, tag, n int) { r.completeErr(src, tag, n, nil) }

// completeErr marks the request done, possibly with a delivery error.
func (r *Request) completeErr(src, tag, n int, err error) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.src, r.tag, r.n = src, tag, n
	r.err = err
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Wait blocks until the operation completes and returns the message
// source, tag and value count (sends report their own rank and length).
// Delivery errors panic in the caller, to be recovered by Run.
func (r *Request) Wait() (src, tag, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.done {
		r.cond.Wait()
	}
	if r.err != nil {
		panic(r.err)
	}
	return r.src, r.tag, r.n
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Waitall blocks until every request in reqs completes. Nil entries are
// ignored, matching MPI_REQUEST_NULL.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}
