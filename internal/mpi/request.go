package mpi

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// Request tracks the completion of a non-blocking operation, like
// MPI_Request. Requests are created by Isend/Irecv and completed by the
// runtime; Wait blocks until completion and Test polls without blocking.
//
// Errors detected at delivery time (message truncation, world abort
// after a rank panic) are stored on the request and surfaced as a panic
// in the waiter's goroutine — the MPI convention that receive-side
// errors belong to the receiver.
//
// Completed requests may optionally be handed back to their world's
// free pool with Reclaim, so steady-state communication loops (the halo
// exchange of internal/core) run without per-message allocation.
type Request struct {
	mu   sync.Mutex
	cond *sync.Cond
	done bool
	src  int
	tag  int
	n    int
	err  error

	// arriveAt is the message's modeled virtual arrival time under the
	// network model (0 when no model is armed, for send requests, and
	// for free self-sends). Wait advances the waiter's virtual clock to
	// it; Test refuses to report completion before the waiter's clock
	// has caught up with it.
	arriveAt int64

	// Posted-receive matching state, guarded by the owning mailbox's
	// lock while the request sits in mailbox.posted (the role the
	// separate pendingRecv struct used to play).
	prSrc, prTag int
	buf          []float64

	// owner is the world rank that posted the request and epoch the
	// fault-tolerance epoch it was posted in; both are written before
	// the request is published and read by failure revocation and the
	// timeout diagnostics.
	owner int
	epoch int

	// w is the world whose free pool the request returns to on Reclaim
	// (nil for requests constructed outside a world, e.g. in tests).
	w *World
}

func newRequest() *Request {
	r := &Request{}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// getRequest pops a reusable request from the world's free pool, or
// allocates one. The returned request is reset and exclusively owned by
// the caller.
//
//gpaw:hotpath
func (w *World) getRequest() *Request {
	w.reqMu.Lock()
	if n := len(w.reqFree); n > 0 {
		r := w.reqFree[n-1]
		w.reqFree[n-1] = nil
		w.reqFree = w.reqFree[:n-1]
		w.reqMu.Unlock()
		r.reset()
		return r
	}
	w.reqMu.Unlock()
	r := newRequest()
	r.w = w
	return r
}

// reset prepares a pooled request for reuse.
//
//gpaw:hotpath
func (r *Request) reset() {
	r.mu.Lock()
	r.done = false
	r.src, r.tag, r.n = 0, 0, 0
	r.arriveAt = 0
	r.err = nil
	r.prSrc, r.prTag = 0, 0
	r.buf = nil
	r.owner, r.epoch = 0, 0
	r.mu.Unlock()
}

// Reclaim returns completed requests to their world's free pool for
// reuse by later Isend/Irecv calls. A request must only be reclaimed
// after Wait (or Waitall) returned it, and must not be touched
// afterwards — a later operation on the same communicator may hand the
// object out again. Nil entries are ignored. Reclaiming is optional
// (unreclaimed requests are simply garbage collected); hot exchange
// loops use it to stay allocation-free in steady state.
//
//gpaw:hotpath
func Reclaim(reqs ...*Request) {
	for _, r := range reqs {
		if r == nil || r.w == nil {
			continue
		}
		r.buf = nil // do not retain the receive buffer past reclaim
		w := r.w
		w.reqMu.Lock()
		//lint:ignore hotpathalloc append into the world free pool; capacity is warm after the first reclaim cycle
		w.reqFree = append(w.reqFree, r)
		w.reqMu.Unlock()
	}
}

// complete marks the request done with the given status and wakes
// waiters.
func (r *Request) complete(src, tag, n int) { r.completeErr(src, tag, n, nil) }

// completeErr marks the request done, possibly with a delivery error.
func (r *Request) completeErr(src, tag, n int, err error) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.src, r.tag, r.n = src, tag, n
	r.err = err
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Wait blocks until the operation completes and returns the message
// source, tag and value count (sends report their own rank and length).
// Delivery errors panic in the caller, to be recovered by Run. When the
// world has an operation timeout set (World.SetOpTimeout), a wait
// exceeding it panics with a *TimeoutError carrying the world-wide
// pending-receive dump instead of blocking forever. Under a network
// model, Wait additionally advances the waiter's virtual clock to the
// message's modeled arrival time (sleeping the jump in paced mode), and
// the operation timeout counts only genuine wall time: paced modeled
// delay served anywhere in the world extends the deadline, so a slow
// modeled network can never masquerade as a deadlock.
//
//gpaw:hotpath
func (r *Request) Wait() (src, tag, n int) {
	// Traced waits become timeline spans whose virtual duration covers
	// the clock jump to the message's modeled arrival; the peer, tag
	// and size are only known at completion, so they are stamped then.
	if w := r.w; w != nil && w.trcOn.Load() {
		if rk := w.traceRankFor(r.owner); rk != nil {
			sp := rk.BeginComm("mpi.wait", trace.KindWait, -1, -1, 0)
			src, tag, n = r.wait()
			sp.EndComm(src, tag, int64(n)*8)
			return src, tag, n
		}
	}
	return r.wait()
}

//gpaw:hotpath
func (r *Request) wait() (src, tag, n int) {
	// Wait is an MPI-call boundary of its own (engine code calls it on
	// standalone requests, outside any Comm entry point), so it does its
	// own compute accrual — otherwise wall time spent blocked here would
	// be mistaken for compute by the next accrual.
	var w *World
	var owner int
	r.mu.Lock()
	if r.w != nil && r.w.netOn.Load() {
		w, owner = r.w, r.owner
		r.mu.Unlock()
		w.netEnter(owner)
		r.mu.Lock()
	}
	if !r.done && r.w != nil {
		if to := time.Duration(r.w.opTimeout.Load()); to > 0 {
			wld := r.w
			start := time.Now()
			paced0 := wld.pacedNs.Load()
			for !r.done {
				// The deadline floats forward by however much paced model
				// delay has been served world-wide since this wait began.
				deadline := start.Add(to + time.Duration(wld.pacedNs.Load()-paced0))
				now := time.Now()
				if !now.Before(deadline) {
					if wld.pacing.Load() > 0 {
						// Some rank is mid-sleep serving modeled delay (a
						// sleep that may have begun before this wait did, so
						// the pacedNs baseline missed it). The network is
						// slow, not dead: re-baseline and keep waiting.
						start, paced0 = now, wld.pacedNs.Load()
						continue
					}
					//lint:ignore hotpathalloc deadlock-diagnostic path: allocating the error as the world dies is fine
					te := &TimeoutError{After: to, Rank: r.owner, Peer: r.prSrc, Tag: r.prTag}
					r.mu.Unlock()
					te.Pending = wld.PendingOps()
					panic(te)
				}
				// The timer only wakes the waiter so the deadline check
				// runs; the request itself stays pending.
				//lint:ignore hotpathalloc watchdog timer exists only when an op timeout is configured (debugging runs), never in the guarded steady state
				timer := time.AfterFunc(deadline.Sub(now), func() {
					r.mu.Lock()
					r.cond.Broadcast()
					r.mu.Unlock()
				})
				r.cond.Wait()
				timer.Stop()
			}
		}
	}
	for !r.done {
		r.cond.Wait()
	}
	if r.err != nil {
		r.mu.Unlock()
		panic(r.err)
	}
	src, tag, n = r.src, r.tag, r.n
	arrive := r.arriveAt
	r.mu.Unlock()
	if w != nil {
		w.advanceTo(owner, arrive)
		w.netExit(owner)
	}
	return src, tag, n
}

// Test reports whether the operation has completed, without blocking —
// the poll the split-phase overlap protocol uses to check for early
// message arrival between interior work items. A true result means a
// subsequent Wait returns immediately (under a network model: without
// advancing the waiter's clock, because Test only reports completion
// once the clock has already caught up with the message's modeled
// arrival — the eager transport's early physical delivery is never
// mistaken for modeled arrival).
//
//gpaw:hotpath
func (r *Request) Test() bool {
	var w *World
	var owner int
	r.mu.Lock()
	if r.w != nil && r.w.netOn.Load() {
		w, owner = r.w, r.owner
	}
	done, arrive, err := r.done, r.arriveAt, r.err
	r.mu.Unlock()
	if w != nil {
		// Polling is an MPI-call boundary too: accrue the compute done
		// since the last boundary, so an overlap loop that polls between
		// interior work items advances its clock toward the arrival.
		w.netEnter(owner)
		defer w.netExit(owner)
	}
	if !done {
		return false
	}
	if w == nil || err != nil {
		return true
	}
	return w.virtReached(owner, arrive)
}

// Waitall blocks until every request completes. Nil entries are
// ignored, matching MPI_REQUEST_NULL. The variadic form spreads over a
// request slice: Waitall(reqs...).
//
//gpaw:hotpath
func Waitall(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Testall reports whether every request has completed, without
// blocking. Nil entries are ignored.
//
//gpaw:hotpath
func Testall(reqs ...*Request) bool {
	for _, r := range reqs {
		if r != nil && !r.Test() {
			return false
		}
	}
	return true
}
