package mpi

import (
	"testing"

	"repro/internal/trace"
)

// TestTracedOpsEmitEvents runs a traced, modeled ring exchange plus
// collectives and checks every rank's track carries send, wait and
// collective events with monotone virtual completion stamps.
func TestTracedOpsEmitEvents(t *testing.T) {
	const P = 4
	tr := trace.New(P, 1024)
	w := NewWorld(P, ThreadSingle)
	w.SetNetModel(&NetModel{Params: testParams(), NoComputeWall: true})
	w.SetTracer(tr)
	err := w.Run(func(c *Comm) {
		buf := make([]float64, 16)
		data := make([]float64, 16)
		req := c.Irecv((c.Rank()+P-1)%P, 7, buf)
		c.Send((c.Rank()+1)%P, 7, data)
		req.Wait()
		c.AllreduceSum(1)
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < P; r++ {
		events := tr.RankEvents(r)
		kinds := map[string]int{}
		var lastEnd int64
		for _, e := range events {
			kinds[e.Kind.String()]++
			if e.VDur < 0 {
				t.Fatalf("rank %d event %q has negative virtual duration %d", r, e.Name, e.VDur)
			}
			// Events are recorded at completion; a rank's virtual clock
			// is monotone, so completion stamps must be non-decreasing.
			if end := e.VStart + e.VDur; end < lastEnd {
				t.Fatalf("rank %d event %q completes at virtual %d ns, before prior completion %d",
					r, e.Name, end, lastEnd)
			} else {
				lastEnd = end
			}
		}
		if kinds["send"] == 0 || kinds["wait"] == 0 || kinds["collective"] == 0 {
			t.Fatalf("rank %d missing event kinds: %v", r, kinds)
		}
	}
	// The user-level send must carry its peer, tag and payload size.
	found := false
	for _, e := range tr.RankEvents(0) {
		if e.Name == "mpi.send" && e.Tag == 7 {
			found = true
			if e.Peer != 1 || e.Bytes != 16*8 {
				t.Fatalf("send event annotations wrong: peer=%d bytes=%d", e.Peer, e.Bytes)
			}
		}
	}
	if !found {
		t.Fatal("no user-tagged send event on rank 0")
	}
}

// TestTracerDisabledRecordsNothing checks a disarmed (attached but
// disabled) tracer stays silent through a full exchange.
func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := trace.New(2, 64)
	tr.Disable()
	w := NewWorld(2, ThreadSingle)
	w.SetTracer(tr)
	err := w.Run(func(c *Comm) {
		buf := make([]float64, 1)
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1})
		} else {
			c.Recv(0, 3, buf)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("disabled tracer recorded %d events", n)
	}
}

// TestTracedFaultEvents arms tracing together with fault injection and
// checks the death and recovery milestones land on the timeline.
func TestTracedFaultEvents(t *testing.T) {
	const P = 3
	tr := trace.New(P, 512)
	w := NewWorld(P, ThreadSingle)
	w.SetTracer(tr)
	w.SetFaultPlan(&FaultPlan{Kills: []Kill{{Rank: 2, AfterOps: 0}}})
	err := w.Run(func(c *Comm) {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := AsRankFailure(p); !ok {
					panic(p)
				}
				live := c.Agree()
				nc := c.Shrink(live)
				nc.Barrier()
			}
		}()
		buf := make([]float64, 1)
		if c.Rank() == 0 {
			c.Recv(1, 7, buf)
		} else {
			c.Send(0, 7, []float64{1})
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	names := func(r int) map[string]int {
		m := map[string]int{}
		for _, e := range tr.RankEvents(r) {
			m[e.Name]++
		}
		return m
	}
	if names(2)["ft.dead"] != 1 {
		t.Fatalf("rank 2 track lacks its death mark: %v", names(2))
	}
	for r := 0; r < 2; r++ {
		n := names(r)
		if n["ft.shrink"] != 1 || n["mpi.agree"] == 0 {
			t.Fatalf("rank %d lacks recovery events: %v", r, n)
		}
	}
}
