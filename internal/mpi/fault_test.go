package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// recoverFailure runs f and returns the *ErrRankFailed it panicked
// with, or nil if it returned normally. Any other panic propagates.
func recoverFailure(f func()) (rf *ErrRankFailed) {
	defer func() {
		if p := recover(); p != nil {
			var ok bool
			if rf, ok = AsRankFailure(p); ok {
				return
			}
			panic(p)
		}
	}()
	f()
	return nil
}

func TestFaultPlanKillsAtOpCount(t *testing.T) {
	// Rank 1 dies after 3 operations; every survivor must observe a
	// typed *ErrRankFailed naming rank 1, never a hang, and the run as
	// a whole must not report an error (injected deaths are not bugs).
	const p = 4
	plan := &FaultPlan{Seed: 1, Kills: []Kill{{Rank: 1, AfterOps: 3}}}
	var mu sync.Mutex
	seen := map[int]int{}
	err := RunWithFaults(p, ThreadSingle, plan, func(c *Comm) {
		rf := recoverFailure(func() {
			for i := 0; i < 100; i++ {
				c.Barrier()
			}
		})
		if rf == nil {
			panic(fmt.Sprintf("rank %d finished 100 barriers despite the kill", c.Rank()))
		}
		mu.Lock()
		seen[c.Rank()] = rf.Rank
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if r == 1 {
			if _, ok := seen[r]; ok {
				t.Fatalf("dead rank 1 reported a survivor-side failure")
			}
			continue
		}
		if got, ok := seen[r]; !ok || got != 1 {
			t.Fatalf("rank %d: failed peer = %d (seen %v), want 1", r, got, ok)
		}
	}
}

func TestFaultPlanDeterministicOpCount(t *testing.T) {
	// The same plan must kill at exactly the same point in the victim's
	// op sequence on every run: with AfterOps 10 the victim always
	// completes exactly 10 barriers and dies entering the 11th.
	// (Survivor-side counts may trail by one — a revocation is global
	// and can interrupt a survivor still finishing the previous barrier
	// — so only the victim's count is asserted exactly.)
	counts := func() []int {
		done := make([]int, 3)
		plan := &FaultPlan{Seed: 7, Kills: []Kill{{Rank: 2, AfterOps: 10}}}
		err := RunWithFaults(3, ThreadSingle, plan, func(c *Comm) {
			recoverFailure(func() {
				for i := 0; i < 50; i++ {
					c.Barrier()
					done[c.Rank()]++
				}
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	for trial := 0; trial < 3; trial++ {
		done := counts()
		if done[2] != 10 {
			t.Fatalf("trial %d: victim completed %d barriers, want exactly 10", trial, done[2])
		}
		for _, r := range []int{0, 1} {
			if done[r] < 9 || done[r] > 10 {
				t.Fatalf("trial %d: survivor %d completed %d barriers, want 9 or 10", trial, r, done[r])
			}
		}
	}
}

func TestBlockedRecvUnblockedByDeath(t *testing.T) {
	// Rank 0 blocks in Recv on a message rank 1 will never send; when
	// rank 1 dies, the blocked receive must complete with the typed
	// failure instead of hanging.
	plan := &FaultPlan{Kills: []Kill{{Rank: 1, AfterOps: 1}}}
	err := RunWithFaults(2, ThreadSingle, plan, func(c *Comm) {
		if c.Rank() == 0 {
			rf := recoverFailure(func() {
				buf := make([]float64, 1)
				c.Recv(1, 42, buf) // rank 1 never sends tag 42
			})
			if rf == nil || rf.Rank != 1 {
				panic(fmt.Sprintf("blocked recv: failure = %v, want rank 1", rf))
			}
		} else {
			for i := 0; ; i++ { // dies at the second send
				c.Send(0, 99, []float64{float64(i)})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToDeadPeerFails(t *testing.T) {
	plan := &FaultPlan{Kills: []Kill{{Rank: 1, AfterOps: 0}}}
	err := RunWithFaults(2, ThreadSingle, plan, func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 1, []float64{1}) // dies here (op 1 > threshold 0)
			return
		}
		// Wait until rank 1 is dead, then every op must fail typed.
		for c.world.ftOn.Load() == false || !c.world.isDead(1) {
			time.Sleep(time.Millisecond)
		}
		rf := recoverFailure(func() { c.Send(1, 5, []float64{2}) })
		if rf == nil || rf.Rank != 1 {
			panic(fmt.Sprintf("send to dead peer: failure = %v, want rank 1", rf))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVoluntaryFailAndShrink(t *testing.T) {
	// Rank 1 kills itself mid-run; survivors agree on the membership,
	// shrink, and complete a correct allreduce on the new communicator.
	const p = 4
	var mu sync.Mutex
	sums := map[int]float64{}
	views := map[int]string{}
	err := Run(p, ThreadSingle, func(c *Comm) {
		if c.Rank() == 1 {
			c.Barrier()
			c.Fail()
		}
		rf := recoverFailure(func() {
			for i := 0; i < 100; i++ {
				c.Barrier()
			}
		})
		if rf == nil {
			panic("survivor completed all barriers despite the kill")
		}
		live := c.Agree()
		nc := c.Shrink(live)
		sum := nc.AllreduceSum(float64(nc.Rank() + 1))
		mu.Lock()
		sums[c.Rank()] = sum
		views[c.Rank()] = fmt.Sprint(live)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint([]int{0, 2, 3})
	for _, r := range []int{0, 2, 3} {
		if views[r] != want {
			t.Fatalf("rank %d agreed on %s, want %s", r, views[r], want)
		}
		if sums[r] != 6 { // 1+2+3 over the 3 survivors
			t.Fatalf("rank %d post-shrink allreduce = %v, want 6", r, sums[r])
		}
	}
}

func TestAgreeConsistentUnderRacingKills(t *testing.T) {
	// Two ranks die at different points while survivors race into the
	// agreement; every survivor must come back with the same view.
	const p = 6
	plan := &FaultPlan{Seed: 3, MaxDelay: 50 * time.Microsecond,
		Kills: []Kill{{Rank: 2, AfterOps: 4}, {Rank: 5, AfterOps: 9}}}
	var mu sync.Mutex
	views := map[int]string{}
	err := RunWithFaults(p, ThreadSingle, plan, func(c *Comm) {
		recoverFailure(func() {
			for i := 0; i < 100; i++ {
				c.Barrier()
			}
		})
		// Keep burning operations so the second, later kill fires even
		// though the epoch is already poisoned (failed attempts count).
		for i := 0; i < 20; i++ {
			recoverFailure(func() { c.Barrier() })
		}
		if !c.Alive() {
			return
		}
		// Keep agreeing until the view stabilizes across two rounds;
		// deaths during an agreement surface in the next one. Round
		// results are frozen world-wide, so every survivor sees the
		// identical round sequence and stops at the same round.
		prev := ""
		for {
			view := fmt.Sprint(c.Agree())
			if view == prev {
				break
			}
			prev = view
		}
		mu.Lock()
		views[c.Rank()] = prev
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for r, v := range views {
		if want == "" {
			want = v
		}
		if v != want {
			t.Fatalf("rank %d view %s differs from %s", r, v, want)
		}
	}
	if want != fmt.Sprint([]int{0, 1, 3, 4}) {
		t.Fatalf("agreed view %s, want [0 1 3 4]", want)
	}
}

func TestShrinkPurgesStaleTraffic(t *testing.T) {
	// A message sent before a failure must never satisfy a receive
	// posted after recovery, even with identical source rank and tag.
	err := Run(3, ThreadSingle, func(c *Comm) {
		if c.Rank() == 2 {
			c.Fail()
		}
		if c.Rank() == 1 {
			// Pre-shrink payload; may land or fail depending on how far
			// the death has propagated — either way it must be invisible
			// after recovery.
			recoverFailure(func() { c.Send(0, 9, []float64{-1}) })
		}
		// Wait for the death to be observable everywhere.
		for !c.world.isDead(2) {
			time.Sleep(time.Millisecond)
		}
		recoverFailure(func() { c.Barrier() })
		live := c.Agree()
		nc := c.Shrink(live)
		if nc.Rank() == 1 {
			nc.Send(0, 9, []float64{+1})
		}
		if nc.Rank() == 0 {
			buf := make([]float64, 1)
			nc.Recv(1, 9, buf)
			if buf[0] != +1 {
				panic(fmt.Sprintf("post-shrink recv got stale payload %v", buf[0]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDelayJitterPreservesResults(t *testing.T) {
	// Jitter shakes schedules without changing any result.
	plan := &FaultPlan{Seed: 11, MaxDelay: 100 * time.Microsecond}
	err := RunWithFaults(4, ThreadSingle, plan, func(c *Comm) {
		sum := c.AllreduceSum(float64(c.Rank()))
		if sum != 6 {
			panic(fmt.Sprintf("allreduce under jitter = %v, want 6", sum))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpTimeoutDumpsPending(t *testing.T) {
	// With no fault injection at all, a receive that can never be
	// matched must fail after the op timeout with a diagnostic naming
	// the blocked (rank, peer, tag) instead of deadlocking.
	var got *TimeoutError
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 1 {
			return // never sends
		}
		c.world.SetOpTimeout(50 * time.Millisecond)
		defer func() {
			p := recover()
			te, ok := p.(*TimeoutError)
			if !ok {
				panic(p)
			}
			got = te
		}()
		buf := make([]float64, 1)
		c.Recv(1, 77, buf)
		panic("recv returned without a sender")
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no TimeoutError observed")
	}
	if got.Rank != 0 || got.Peer != 1 || got.Tag != 77 {
		t.Fatalf("timeout at rank %d <- %d tag %d, want 0 <- 1 tag 77", got.Rank, got.Peer, got.Tag)
	}
	found := false
	for _, op := range got.Pending {
		if op.Rank == 0 && op.Peer == 1 && op.Tag == 77 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pending dump %v missing the blocked receive", got.Pending)
	}
}

func TestErrRankFailedErrorsAs(t *testing.T) {
	var err error = fmt.Errorf("wrapped: %w", &ErrRankFailed{Rank: 3})
	var rf *ErrRankFailed
	if !errors.As(err, &rf) || rf.Rank != 3 {
		t.Fatalf("errors.As failed on wrapped ErrRankFailed")
	}
	if rf2, ok := AsRankFailure(error(&ErrRankFailed{Rank: 5})); !ok || rf2.Rank != 5 {
		t.Fatal("AsRankFailure rejected a direct failure")
	}
	if _, ok := AsRankFailure("some panic"); ok {
		t.Fatal("AsRankFailure accepted a non-error panic")
	}
	if _, ok := AsRankFailure(rankKilled{1}); ok {
		t.Fatal("AsRankFailure accepted the victim's own death panic")
	}
}

func TestPipeFailsOnDeadStage(t *testing.T) {
	// Pipelines are built on Send/Recv, so a dead upstream stage must
	// surface as the typed failure in downstream Recv calls.
	plan := &FaultPlan{Kills: []Kill{{Rank: 0, AfterOps: 2}}}
	err := RunWithFaults(3, ThreadSingle, plan, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 1, []float64{2})
			c.Send(1, 1, []float64{3}) // dies at op 3
			return
		}
		if c.Rank() == 1 {
			rf := recoverFailure(func() {
				buf := make([]float64, 1)
				for i := 0; i < 10; i++ {
					c.Recv(0, 1, buf)
					c.Send(2, 1, buf)
				}
			})
			if rf == nil || rf.Rank != 0 {
				panic(fmt.Sprintf("stage 1: failure = %v, want rank 0", rf))
			}
			return
		}
		rf := recoverFailure(func() {
			buf := make([]float64, 1)
			for i := 0; i < 10; i++ {
				c.Recv(1, 1, buf)
			}
		})
		if rf == nil {
			panic("stage 2 drained 10 values from a killed pipeline")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
