package mpi

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/topology"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			src, tag, n := c.Recv(0, 7, buf)
			if src != 0 || tag != 7 || n != 3 {
				panic(fmt.Sprintf("status = %d,%d,%d", src, tag, n))
			}
			if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
				panic("payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBeforeRecvAndAfter(t *testing.T) {
	// Both orders must work: eager send before the recv is posted, and
	// recv posted before the send happens.
	err := Run(2, ThreadSingle, func(c *Comm) {
		buf := make([]float64, 1)
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{42}) // early send
			c.Recv(1, 2, buf)           // late recv
			if buf[0] != 43 {
				panic("late recv wrong payload")
			}
		} else {
			c.Recv(0, 1, buf)
			if buf[0] != 42 {
				panic("early send wrong payload")
			}
			c.Send(0, 2, []float64{43})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameSourceTag(t *testing.T) {
	// Messages with the same (source, tag) must arrive in send order.
	const n = 50
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 5, []float64{float64(i)})
			}
		} else {
			buf := make([]float64, 1)
			for i := 0; i < n; i++ {
				c.Recv(0, 5, buf)
				if buf[0] != float64(i) {
					panic(fmt.Sprintf("message %d overtaken by %g", i, buf[0]))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	// A recv for tag B must not match an earlier message with tag A.
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{100})
			c.Send(1, 2, []float64{200})
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 2, buf)
			if buf[0] != 200 {
				panic("tag 2 recv got wrong message")
			}
			c.Recv(0, 1, buf)
			if buf[0] != 100 {
				panic("tag 1 recv got wrong message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	err := Run(3, ThreadSingle, func(c *Comm) {
		switch c.Rank() {
		case 0:
			buf := make([]float64, 1)
			sum := 0.0
			for i := 0; i < 2; i++ {
				src, tag, _ := c.Recv(AnySource, AnyTag, buf)
				if src != tag {
					panic("sender encoded tag mismatch")
				}
				sum += buf[0]
			}
			if sum != 30 {
				panic(fmt.Sprintf("sum = %g", sum))
			}
		case 1:
			c.Send(0, 1, []float64{10})
		case 2:
			c.Send(0, 2, []float64{20})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		other := 1 - c.Rank()
		recvBufs := make([][]float64, 6)
		reqs := make([]*Request, 0, 12)
		for i := range recvBufs {
			recvBufs[i] = make([]float64, 4)
			reqs = append(reqs, c.Irecv(other, i, recvBufs[i]))
		}
		for i := 0; i < 6; i++ {
			data := []float64{float64(i), 0, 0, float64(c.Rank())}
			reqs = append(reqs, c.Isend(other, i, data))
		}
		Waitall(reqs...)
		for i, b := range recvBufs {
			if b[0] != float64(i) || b[3] != float64(other) {
				panic(fmt.Sprintf("rank %d buf %d = %v", c.Rank(), i, b))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitallNilEntries(t *testing.T) {
	Waitall(nil, nil) // must not panic
	var reqs []*Request
	Waitall(reqs...) // nor an empty spread
}

func TestRequestTest(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			buf := make([]float64, 1)
			req := c.Irecv(1, 0, buf)
			// Eventually the message arrives and Test turns true.
			for !req.Test() {
			}
			if buf[0] != 5 {
				panic("Test-completed recv has wrong data")
			}
		} else {
			c.Send(0, 0, []float64{5})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		other := 1 - c.Rank()
		out := []float64{float64(c.Rank() + 1)}
		in := make([]float64, 1)
		c.Sendrecv(other, 9, out, other, 9, in)
		if in[0] != float64(other+1) {
			panic(fmt.Sprintf("rank %d exchanged %g", c.Rank(), in[0]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1, 2, 3, 4, 5})
		} else {
			src, tag, n := c.Probe(AnySource, AnyTag)
			if src != 0 || tag != 3 || n != 5 {
				panic(fmt.Sprintf("probe = %d,%d,%d", src, tag, n))
			}
			buf := make([]float64, n)
			c.Recv(src, tag, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncationPanics(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 2) // too small
			c.Recv(0, 0, buf)
		}
	})
	if err == nil {
		t.Fatal("truncated receive did not error")
	}
}

func TestNegativeUserTagPanics(t *testing.T) {
	err := Run(1, ThreadSingle, func(c *Comm) {
		c.Send(0, -5, []float64{1})
	})
	if err == nil {
		t.Fatal("negative user tag accepted")
	}
}

func TestRankOutOfRangePanics(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(5, 0, []float64{1})
		}
	})
	if err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 7
	var mu sync.Mutex
	phase := make(map[int]int)
	err := Run(p, ThreadSingle, func(c *Comm) {
		for it := 0; it < 5; it++ {
			mu.Lock()
			phase[c.Rank()] = it
			// No rank may be more than one barrier phase away.
			for r, ph := range phase {
				if ph < it-1 || ph > it+1 {
					mu.Unlock()
					panic(fmt.Sprintf("rank %d at phase %d while rank %d at %d", c.Rank(), it, r, ph))
				}
			}
			mu.Unlock()
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for p := 1; p <= 9; p++ {
		for root := 0; root < p; root++ {
			root := root
			err := Run(p, ThreadSingle, func(c *Comm) {
				buf := make([]float64, 3)
				if c.Rank() == root {
					buf[0], buf[1], buf[2] = 1, 2, 3
				}
				c.Bcast(root, buf)
				if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
					panic(fmt.Sprintf("rank %d got %v from root %d", c.Rank(), buf, root))
				}
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceSumDeterministicOrder(t *testing.T) {
	const p = 6
	err := Run(p, ThreadSingle, func(c *Comm) {
		in := []float64{float64(c.Rank() + 1), float64(c.Rank() * 10)}
		out := make([]float64, 2)
		c.Reduce(2, OpSum, in, out)
		if c.Rank() == 2 {
			if out[0] != 21 || out[1] != 150 {
				panic(fmt.Sprintf("reduce = %v", out))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceMaxMin(t *testing.T) {
	err := Run(4, ThreadSingle, func(c *Comm) {
		in := []float64{float64(c.Rank())}
		out := make([]float64, 1)
		c.Allreduce(OpMax, in, out)
		if out[0] != 3 {
			panic(fmt.Sprintf("max = %g", out[0]))
		}
		c.Allreduce(OpMin, in, out)
		if out[0] != 0 {
			panic(fmt.Sprintf("min = %g", out[0]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	const p = 5
	err := Run(p, ThreadSingle, func(c *Comm) {
		got := c.AllreduceSum(float64(c.Rank()))
		if got != 10 {
			panic(fmt.Sprintf("allreduce sum = %g", got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAllgather(t *testing.T) {
	const p = 4
	err := Run(p, ThreadSingle, func(c *Comm) {
		in := []float64{float64(c.Rank()), float64(c.Rank() * c.Rank())}
		out := make([]float64, 2*p)
		c.Allgather(in, out)
		for r := 0; r < p; r++ {
			if out[2*r] != float64(r) || out[2*r+1] != float64(r*r) {
				panic(fmt.Sprintf("allgather slot %d = %v", r, out[2*r:2*r+2]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByParity(t *testing.T) {
	const p = 6
	err := Run(p, ThreadSingle, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Size() != 3 {
			panic(fmt.Sprintf("split size = %d", sub.Size()))
		}
		// Sum of world ranks within each parity class.
		got := sub.AllreduceSum(float64(c.Rank()))
		want := 6.0 // 0+2+4
		if c.Rank()%2 == 1 {
			want = 9 // 1+3+5
		}
		if got != want {
			panic(fmt.Sprintf("subcomm sum = %g, want %g", got, want))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	const p = 4
	err := Run(p, ThreadSingle, func(c *Comm) {
		// Reverse rank order via key.
		sub := c.Split(0, -c.Rank())
		if sub.Rank() != p-1-c.Rank() {
			panic(fmt.Sprintf("world rank %d got sub rank %d", c.Rank(), sub.Rank()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCreateShiftPeriodic(t *testing.T) {
	dims := topology.Dims{2, 3, 2}
	err := Run(12, ThreadSingle, func(c *Comm) {
		ct := c.CartCreate(dims, [3]bool{true, true, true}, true)
		coord := ct.Coords(c.Rank())
		if ct.RankOf(coord) != c.Rank() {
			panic("coords/rankof not inverse")
		}
		for dim := 0; dim < 3; dim++ {
			src, dst := ct.Shift(dim, 1)
			wantDst := coord
			wantDst[dim] = (wantDst[dim] + 1) % dims[dim]
			wantSrc := coord
			wantSrc[dim] = (wantSrc[dim] - 1 + dims[dim]) % dims[dim]
			if dst != ct.RankOf(wantDst) || src != ct.RankOf(wantSrc) {
				panic(fmt.Sprintf("shift dim %d: got (%d,%d)", dim, src, dst))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShiftNonPeriodicEdges(t *testing.T) {
	dims := topology.Dims{3, 1, 1}
	err := Run(3, ThreadSingle, func(c *Comm) {
		ct := c.CartCreate(dims, [3]bool{false, false, false}, false)
		src, dst := ct.Shift(0, 1)
		switch c.Rank() {
		case 0:
			if src != ProcNull || dst != 1 {
				panic(fmt.Sprintf("rank 0 shift = (%d,%d)", src, dst))
			}
		case 2:
			if src != 1 || dst != ProcNull {
				panic(fmt.Sprintf("rank 2 shift = (%d,%d)", src, dst))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCreateSizeMismatchPanics(t *testing.T) {
	err := Run(4, ThreadSingle, func(c *Comm) {
		c.CartCreate(topology.Dims{3, 1, 1}, [3]bool{}, false)
	})
	if err == nil {
		t.Fatal("cart size mismatch accepted")
	}
}

func TestThreadMultipleConcurrentTraffic(t *testing.T) {
	// Four "threads" per rank each exchange with the peer rank using
	// distinct tags, like the hybrid-multiple approach does per grid.
	const threads = 4
	const msgs = 25
	err := Run(2, ThreadMultiple, func(c *Comm) {
		other := 1 - c.Rank()
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			th := th
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]float64, 1)
				for i := 0; i < msgs; i++ {
					req := c.Irecv(other, th, buf)
					c.Isend(other, th, []float64{float64(th*1000 + i)}).Wait()
					req.Wait()
					if buf[0] != float64(th*1000+i) {
						panic(fmt.Sprintf("thread %d msg %d got %g", th, i, buf[0]))
					}
				}
			}()
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThreadSingleDetectsConcurrentCalls(t *testing.T) {
	// Hammer a SINGLE-mode communicator from two goroutines; the misuse
	// detector must fire. (This is a programming error a real MPI would
	// turn into corruption; we turn it into a detected panic.)
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() != 0 {
			// Absorb whatever arrives; also in a racy way.
			return
		}
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { recover() }() // the panic may land on either goroutine
				for i := 0; i < 200; i++ {
					c.Send(1, 0, []float64{1})
				}
			}()
		}
		wg.Wait()
		panic("done") // ensure Run returns an error even if detector missed
	})
	if err == nil {
		t.Fatal("expected an error from SINGLE-mode misuse or sentinel")
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	err := Run(3, ThreadSingle, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("rank panic not propagated")
	}
}

func TestNewWorldPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0, ThreadSingle)
}

func TestThreadModeString(t *testing.T) {
	if ThreadSingle.String() != "SINGLE" || ThreadMultiple.String() != "MULTIPLE" {
		t.Fatal("ThreadMode.String broken")
	}
}

func TestAllreduceMatchesSequential(t *testing.T) {
	// Property-ish: distributed sum equals sequential sum for a range of
	// communicator sizes.
	for p := 1; p <= 8; p++ {
		p := p
		err := Run(p, ThreadSingle, func(c *Comm) {
			v := math.Sqrt(float64(c.Rank() + 1))
			got := c.AllreduceSum(v)
			want := 0.0
			for r := 1; r <= p; r++ {
				want += math.Sqrt(float64(r))
			}
			if math.Abs(got-want) > 1e-12 {
				panic(fmt.Sprintf("p=%d: got %g want %g", p, got, want))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
