package mpi

import (
	"math/rand"
	"testing"
	"time"
)

// TestReduceFuncRankOrder: the merge must always fold contributions in
// ascending rank order, regardless of message arrival order. The merge
// is deliberately non-commutative (decimal concatenation), and ranks
// sleep random amounts so arrivals are scrambled.
func TestReduceFuncRankOrder(t *testing.T) {
	const p = 6
	for trial := 0; trial < 8; trial++ {
		seed := int64(trial)
		err := Run(p, ThreadSingle, func(c *Comm) {
			rng := rand.New(rand.NewSource(seed*131 + int64(c.Rank())))
			time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
			in := []float64{float64(c.Rank() + 1)}
			out := make([]float64, 1)
			c.ReduceFunc(0, in, out, func(acc, contrib []float64) {
				acc[0] = acc[0]*10 + contrib[0]
			})
			if c.Rank() == 0 && out[0] != 123456 {
				panic("rank-ordered fold broken")
			}
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestAllreduceFuncAllRanksAgree: every rank receives the identical
// merged vector.
func TestAllreduceFuncAllRanksAgree(t *testing.T) {
	const p = 5
	err := Run(p, ThreadSingle, func(c *Comm) {
		in := []float64{float64(c.Rank()), float64(c.Rank() * c.Rank())}
		out := make([]float64, 2)
		c.AllreduceFunc(in, out, func(acc, contrib []float64) {
			for i := range acc {
				acc[i] += contrib[i]
			}
		})
		if out[0] != 0+1+2+3+4 || out[1] != 0+1+4+9+16 {
			panic("AllreduceFunc sum wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
