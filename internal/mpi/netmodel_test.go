package mpi

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/topology"
)

// testParams returns round-number model constants so expected virtual
// times are exact integers of nanoseconds.
func testParams() NetParams {
	return NetParams{
		MsgLatency:         10e-6, // 10000 ns
		HopLatency:         1e-6,  // 1000 ns per extra hop
		PostCost:           1e-6,  // 1000 ns
		MultipleLock:       2e-6,
		DMAPerMsg:          0.5e-6, // 500 ns
		LinkBandwidth:      1e9,    // 1 ns per byte
		IntraNodeLatency:   0.2e-6, // 200 ns
		IntraNodeBandwidth: 4e9,    // 0.25 ns per byte
	}
}

// TestModeledPingClosedForm checks one message against the closed-form
// cost: sender pays PostCost; the message arrives at
// post + DMAPerMsg + bytes/bw + MsgLatency; the receiver pays its own
// PostCost and then jumps to the arrival.
func TestModeledPingClosedForm(t *testing.T) {
	m := &NetModel{Params: testParams(), NoComputeWall: true}
	data := make([]float64, 125) // 1000 bytes
	var sender, receiver time.Duration
	_, err := RunModeled(2, ThreadSingle, m, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, data)
			sender = c.World().VirtualTime(0)
		} else {
			buf := make([]float64, 125)
			c.Recv(0, 7, buf)
			receiver = c.World().VirtualTime(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1000 * time.Nanosecond; sender != want {
		t.Errorf("sender virtual time = %v, want %v (one PostCost)", sender, want)
	}
	// arrive = 1000 (post) + 500 (DMA) + 1000 (wire) + 10000 (latency)
	if want := 12500 * time.Nanosecond; receiver != want {
		t.Errorf("receiver virtual time = %v, want %v", receiver, want)
	}
}

// TestModeledHopSensitivity maps the same two ranks near and far apart
// on a torus and checks the arrival differs by exactly the extra hops'
// latency.
func TestModeledHopSensitivity(t *testing.T) {
	net := topology.NewNetwork(topology.Dims{4, 4, 4}, true)
	recvAt := func(far topology.Coord) time.Duration {
		m := &NetModel{Params: testParams(), Net: net,
			Coords: []topology.Coord{{0, 0, 0}, far}, NoComputeWall: true}
		var got time.Duration
		_, err := RunModeled(2, ThreadSingle, m, func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 7, make([]float64, 125))
			} else {
				c.Recv(0, 7, make([]float64, 125))
				got = c.World().VirtualTime(1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	near := recvAt(topology.Coord{0, 0, 1}) // 1 hop
	far := recvAt(topology.Coord{2, 2, 2})  // 6 hops on the 4^3 torus
	if d := far - near; d != 5*time.Microsecond {
		t.Errorf("6-hop arrival - 1-hop arrival = %v, want 5us (5 extra hops)", d)
	}
}

// TestModeledSameNodeUsesIntraNodePath co-locates both ranks on one
// node coordinate: the message must cost the shared-memory latency and
// bandwidth, not the torus link.
func TestModeledSameNodeUsesIntraNodePath(t *testing.T) {
	net := topology.NewNetwork(topology.Dims{2, 2, 2}, false)
	m := &NetModel{Params: testParams(), Net: net,
		Coords: []topology.Coord{{0, 0, 0}, {0, 0, 0}}, NoComputeWall: true}
	var got time.Duration
	_, err := RunModeled(2, ThreadSingle, m, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, make([]float64, 125))
		} else {
			c.Recv(0, 7, make([]float64, 125))
			got = c.World().VirtualTime(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// arrive = 1000 (sender post) + 200 (intra latency) + 250 (1000 B at
	// 4 GB/s); the receiver's own post (1000) is already behind it.
	if want := 1450 * time.Nanosecond; got != want {
		t.Errorf("same-node receiver virtual time = %v, want %v", got, want)
	}
}

// TestModeledSelfSendFree: a rank messaging itself pays only the posted
// receive's CPU cost — the message itself would not exist on a real
// machine.
func TestModeledSelfSendFree(t *testing.T) {
	m := &NetModel{Params: testParams(), NoComputeWall: true}
	var got time.Duration
	_, err := RunModeled(1, ThreadSingle, m, func(c *Comm) {
		c.Send(0, 7, make([]float64, 4096))
		c.Recv(0, 7, make([]float64, 4096))
		got = c.World().VirtualTime(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1000 * time.Nanosecond; got != want {
		t.Errorf("self-exchange virtual time = %v, want %v (one recv post)", got, want)
	}
}

// TestModeledInjectionSerializes: a burst of sends queues on the
// sender's DMA/link path, so the k-th message arrives roughly k wire
// times after the first — the contention the halo-exchange benchmarks
// are exposed to.
func TestModeledInjectionSerializes(t *testing.T) {
	m := &NetModel{Params: testParams(), NoComputeWall: true}
	const msgs = 4
	var last time.Duration
	_, err := RunModeled(2, ThreadSingle, m, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, 7+i, make([]float64, 125))
			}
		} else {
			for i := 0; i < msgs; i++ {
				c.Recv(0, 7+i, make([]float64, 125))
			}
			last = c.World().VirtualTime(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender posts: 4 x 1000. Injection of message i starts at
	// max(virt, dmaFree): wire = 1500 each, so the last message leaves
	// the DMA at 4000 + hmm; post charges interleave with injections.
	// Message i (0-based) injects at max(1000*(i+1), dmaFree_i) and
	// dmaFree accumulates 1500 per message: arrivals are
	// 1000+1500+10000, then injections at 2500, 4000, 5500 (+1500 wire,
	// +10000 latency). Last arrival: 5500+1500+10000 = 17000.
	if want := 17 * time.Microsecond; last != want {
		t.Errorf("4th message arrival = %v, want %v (DMA serialization)", last, want)
	}
}

// TestModeledVirtualTimeDeterministic: with NoComputeWall the virtual
// clocks must not depend on goroutine scheduling — two runs of a
// nontrivial exchange + collective mix give identical makespans.
func TestModeledVirtualTimeDeterministic(t *testing.T) {
	run := func() time.Duration {
		net := topology.PartitionFor(8)
		m := &NetModel{Params: testParams(), Net: net,
			Coords: topology.MapGrid(net.Dims, net, topology.MapLinear), NoComputeWall: true}
		d, err := RunModeled(8, ThreadSingle, m, func(c *Comm) {
			n := c.Size()
			buf := make([]float64, 64)
			// Ring exchange, then an Allreduce, then a Barrier.
			next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
			r := c.Irecv(prev, 3, buf)
			c.Send(next, 3, make([]float64, 64))
			r.Wait()
			out := make([]float64, 8)
			c.Allreduce(OpSum, make([]float64, 8), out)
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("modeled makespan differs across runs: %v vs %v", a, b)
	}
	if a == 0 {
		t.Error("modeled makespan is zero")
	}
}

// TestModeledTestGatesOnVirtualArrival: the eager transport delivers
// physically long before the modeled arrival; Test must keep answering
// false until the receiver's own clock (advanced by Compute) reaches
// the arrival stamp — otherwise overlap would be free and the overlap
// benchmark meaningless.
func TestModeledTestGatesOnVirtualArrival(t *testing.T) {
	m := &NetModel{Params: testParams(), NoComputeWall: true}
	var sawEarly, sawLate atomic.Bool
	_, err := RunModeled(2, ThreadSingle, m, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, make([]float64, 125))
			return
		}
		r := c.Irecv(0, 7, make([]float64, 125))
		// Wait for the physical (eager) delivery so the gate is the only
		// thing standing between Test and true.
		for {
			r.mu.Lock()
			done := r.done
			r.mu.Unlock()
			if done {
				break
			}
			time.Sleep(time.Microsecond)
		}
		// Receiver clock: one post = 1000 ns << arrival at 12500 ns.
		sawEarly.Store(r.Test())
		c.Compute(20 * time.Microsecond) // clock -> 21000 ns, past arrival
		sawLate.Store(r.Test())
		r.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawEarly.Load() {
		t.Error("Test reported completion before the modeled arrival")
	}
	if !sawLate.Load() {
		t.Error("Test still false after compute advanced past the arrival")
	}
}

// TestPacedModelSleepsRealTime: in paced mode a modeled delay is served
// as genuine wall time.
func TestPacedModelSleepsRealTime(t *testing.T) {
	p := testParams()
	p.MsgLatency = 5e-3 // 5 ms, unmistakably measurable
	m := &NetModel{Params: p, Paced: true, NoComputeWall: true}
	start := time.Now()
	_, err := RunModeled(2, ThreadSingle, m, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, make([]float64, 8))
		} else {
			c.Recv(0, 7, make([]float64, 8))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall < 4*time.Millisecond {
		t.Errorf("paced run took %v wall, want >= ~5ms of modeled latency", wall)
	}
}

// TestOpTimeoutExcludesPacedDelay: a 30 ms op timeout must not misfire
// on a receive that is late only because the paced model is serving
// ~120 ms of modeled compute+latency on the sender side.
func TestOpTimeoutExcludesPacedDelay(t *testing.T) {
	p := testParams()
	m := &NetModel{Params: p, Paced: true, NoComputeWall: true}
	w := NewWorld(2, ThreadSingle)
	w.SetNetModel(m)
	w.SetOpTimeout(30 * time.Millisecond)
	err := w.runRanks(func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(120 * time.Millisecond) // paced: real sleep
			c.Send(1, 7, make([]float64, 8))
		} else {
			c.Recv(0, 7, make([]float64, 8))
		}
	})
	if err != nil {
		t.Fatalf("timeout misfired while paced delay was being served: %v", err)
	}
}

// TestOpTimeoutStillFiresUnderModel: the model must not defeat the
// deadlock backstop — a receive nobody will ever match still times out.
func TestOpTimeoutStillFiresUnderModel(t *testing.T) {
	m := &NetModel{Params: testParams(), NoComputeWall: true}
	w := NewWorld(2, ThreadSingle)
	w.SetNetModel(m)
	w.SetOpTimeout(50 * time.Millisecond)
	err := w.runRanks(func(c *Comm) {
		if c.Rank() == 1 {
			c.Recv(0, 7, make([]float64, 8)) // never sent
		}
	})
	if err == nil {
		t.Fatal("expected a timeout error, got nil")
	}
	var te *TimeoutError
	if !errors.As(err, &te) && !strings.Contains(err.Error(), "blocked longer than") {
		t.Fatalf("expected TimeoutError, got %v", err)
	}
}

// TestModeledCollectivesCovered: collectives are built on the modeled
// point-to-point layer, so arming the model must make a Barrier cost
// virtual time on every rank.
func TestModeledCollectivesCovered(t *testing.T) {
	m := &NetModel{Params: testParams(), NoComputeWall: true}
	mk, err := RunModeled(4, ThreadSingle, m, func(c *Comm) {
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if mk <= 0 {
		t.Error("Barrier cost no virtual time under the model")
	}
}

// TestEagerBehaviorUnchangedWithoutModel: a world that never arms the
// model reports zero virtual time and runs exactly as before.
func TestEagerBehaviorUnchangedWithoutModel(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			c.Recv(0, 7, buf)
			if buf[0] != 1 || buf[2] != 3 {
				t.Error("payload corrupted")
			}
			if v := c.World().VirtualTime(1); v != 0 {
				t.Errorf("virtual time %v without a model", v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
