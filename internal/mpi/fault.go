package mpi

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// Fault tolerance. This file adds a ULFM-flavoured failure model to the
// in-process runtime, standing in for the node losses that dominate at
// Blue Gene scale:
//
//   - Deterministic fault injection: a FaultPlan kills a chosen rank
//     after a chosen number of MPI operations (plus optional seeded
//     message-delay jitter), so chaos tests replay bit-identically.
//   - Failure detection: every operation that would involve a dead peer
//     fails with a typed *ErrRankFailed instead of hanging.
//   - Auto-revoke: a rank death immediately poisons the current epoch —
//     all pending requests complete with *ErrRankFailed and every
//     subsequent operation on a poisoned communicator fails fast, so
//     survivors unwind instead of deadlocking (MPI_Comm_revoke, invoked
//     implicitly by the runtime the moment a failure is detected).
//   - Agreement and shrink: Comm.Agree converges all survivors on the
//     same membership view (MPIX_Comm_agree) and Comm.Shrink builds a
//     fresh communicator of exactly the survivors in a new epoch
//     (MPIX_Comm_shrink), with pre-shrink traffic purged.
//
// Epochs are what make recovery sound: every communicator, request and
// in-flight envelope is stamped with the epoch it belongs to, a death
// revokes the current epoch, and Shrink starts the next one. Matching
// requires equal epochs, so a straggler message from before a failure
// can never satisfy a receive posted after recovery.

// ErrRankFailed reports that an MPI operation could not complete
// because a peer rank died. Rank is the world rank of the failed peer
// (-1 when the specific culprit is unknown). It surfaces as a panic in
// the calling goroutine — the same convention as every other mpi
// delivery error — and is recoverable with AsRankFailure or errors.As.
type ErrRankFailed struct{ Rank int }

func (e *ErrRankFailed) Error() string {
	if e.Rank < 0 {
		return "mpi: peer rank failed"
	}
	return fmt.Sprintf("mpi: rank %d failed", e.Rank)
}

// AsRankFailure reports whether a recovered panic value represents a
// peer-rank failure, returning the typed error when it does. It is the
// hook fault-tolerant drivers use in their recover blocks to separate
// recoverable failures from genuine bugs.
func AsRankFailure(p any) (*ErrRankFailed, bool) {
	err, ok := p.(error)
	if !ok {
		return nil, false
	}
	var rf *ErrRankFailed
	if errors.As(err, &rf) {
		return rf, true
	}
	return nil, false
}

// rankKilled is the panic value a rank dies with, and the error its own
// in-flight requests complete with. Run recognizes it and lets the
// goroutine exit quietly instead of treating the injected death as a
// program error.
type rankKilled struct{ rank int }

func (k rankKilled) Error() string {
	return fmt.Sprintf("mpi: rank %d killed by fault injection", k.rank)
}

// Kill schedules the death of one rank: the rank dies when it is about
// to perform its (AfterOps+1)-th MPI operation (sends, receives, probes
// and collective entries all count as one operation).
type Kill struct {
	Rank     int
	AfterOps int
}

// FaultPlan is a deterministic, seedable fault schedule for
// RunWithFaults. Kills are exact (operation-count triggered, so a plan
// replays identically run to run); MaxDelay > 0 additionally injects a
// seeded pseudo-random delay before every operation, shaking out
// schedule-dependent bugs without changing any result.
type FaultPlan struct {
	Seed     int64
	MaxDelay time.Duration
	Kills    []Kill
	// Msg arms message-level fault injection (drop, duplicate, reorder,
	// payload bit-flip, delay spikes) together with the reliability
	// sublayer that heals them; see MsgFaults in chaos.go. nil leaves
	// the transport lossless.
	Msg *MsgFaults
}

// splitmix64 is the mixing function behind the plan's deterministic
// jitter; a hash, not a stateful generator, so concurrent threads of a
// MULTIPLE-mode rank need no locking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// delay returns the jitter before the op-th operation of a rank.
func (p *FaultPlan) delay(rank int, op int64) time.Duration {
	if p.MaxDelay <= 0 {
		return 0
	}
	h := splitmix64(uint64(p.Seed)<<20 ^ uint64(rank)<<40 ^ uint64(op))
	return time.Duration(h % uint64(p.MaxDelay))
}

// installPlan arms the world's fault machinery with a plan.
func (w *World) installPlan(plan *FaultPlan) {
	w.plan = plan
	w.killAt = make([]int64, w.size)
	for i := range w.killAt {
		w.killAt[i] = -1
	}
	for _, k := range plan.Kills {
		if k.Rank < 0 || k.Rank >= w.size {
			panic(fmt.Sprintf("mpi: fault plan kills rank %d of a %d-rank world", k.Rank, w.size))
		}
		w.killAt[k.Rank] = int64(k.AfterOps)
	}
	w.ops = make([]int64, w.size)
	w.ftOn.Store(true)
	if plan.Msg != nil {
		w.SetMsgFaults(plan.Msg)
	}
}

// isDead reports whether a world rank has failed.
func (w *World) isDead(rank int) bool {
	w.deadMu.Lock()
	d := w.dead != nil && w.dead[rank]
	w.deadMu.Unlock()
	return d
}

// Failed returns the world ranks that have died, in death order.
func (w *World) Failed() []int {
	w.deadMu.Lock()
	defer w.deadMu.Unlock()
	return append([]int(nil), w.deadList...)
}

// failure returns the representative error for the current revocation:
// the first rank known to have died.
func (w *World) failure() error {
	w.deadMu.Lock()
	defer w.deadMu.Unlock()
	if len(w.deadList) == 0 {
		return &ErrRankFailed{Rank: -1}
	}
	return &ErrRankFailed{Rank: w.deadList[0]}
}

// die marks a world rank dead and revokes the current epoch. Idempotent.
func (w *World) die(rank int) {
	w.deadMu.Lock()
	if w.dead == nil {
		w.dead = make([]bool, w.size)
	}
	if w.dead[rank] {
		w.deadMu.Unlock()
		return
	}
	w.dead[rank] = true
	w.deadList = append(w.deadList, rank)
	w.deadMu.Unlock()
	if rk := w.traceRankFor(rank); rk != nil {
		rk.Mark("ft.dead", -1, -1, 0)
	}
	w.ftOn.Store(true)
	w.revoke(w.epoch.Load(), rank)
}

// revoke poisons every epoch up to and including the given one: all
// pending requests complete with a failure error and every blocked
// waiter (mailbox conds, agreement rounds) is woken so it re-checks the
// failure state. Survivors therefore always unwind with a typed error —
// the "never a hang" half of the failure model. culprit is the world
// rank whose death triggered the revocation.
//
// revoke must not be called with any mailbox lock held.
func (w *World) revoke(epoch int64, culprit int) {
	for {
		cur := w.revokedEpoch.Load()
		if epoch <= cur || w.revokedEpoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	w.reqMu.Lock()
	reqs := make([]*Request, 0, len(w.pending))
	for r := range w.pending {
		reqs = append(reqs, r)
	}
	w.pending = make(map[*Request]struct{})
	w.reqMu.Unlock()
	for _, r := range reqs {
		if r.owner == culprit {
			// The dying rank's own threads unwind as part of the death,
			// not as witnesses of a peer failure.
			r.completeErr(AnySource, AnyTag, 0, rankKilled{culprit})
		} else {
			r.completeErr(AnySource, AnyTag, 0, &ErrRankFailed{Rank: culprit})
		}
	}
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	w.agreeMu.Lock()
	if w.agreeCond != nil {
		w.agreeCond.Broadcast()
	}
	w.agreeMu.Unlock()
}

// faultPoint is the per-operation fault hook, called from enter() when
// the fault machinery is armed: it fails fast on a poisoned epoch,
// applies the plan's jitter, and executes scheduled kills.
func (c *Comm) faultPoint() {
	w := c.world
	me := c.group[c.rank]
	if w.isDead(me) {
		panic(rankKilled{me})
	}
	// Plan bookkeeping runs before the poisoned-epoch check: attempts
	// that will fail still count as operations, so a kill scheduled
	// after another rank's death still fires.
	if p := w.plan; p != nil {
		w.deadMu.Lock()
		w.ops[me]++
		n := w.ops[me]
		w.deadMu.Unlock()
		if d := p.delay(me, n); d > 0 {
			time.Sleep(d)
		}
		if ka := w.killAt[me]; ka >= 0 && n > ka {
			w.die(me)
			panic(rankKilled{me})
		}
	}
	if int64(c.epoch) <= w.revokedEpoch.Load() {
		panic(w.failure())
	}
}

// checkPeer fails fast when an operation is about to involve a dead
// peer (given as a world rank), revoking the epoch first so every other
// survivor unwinds too. Must not be called with a mailbox lock held.
func (w *World) checkPeer(epoch int, peer int) {
	if int64(epoch) <= w.revokedEpoch.Load() {
		panic(w.failure())
	}
	if w.isDead(peer) {
		w.revoke(int64(epoch), peer)
		panic(&ErrRankFailed{Rank: peer})
	}
}

// Fail kills the calling rank at once, as if its node were lost — the
// solver-level fault-injection hook (iteration-precise kills; FaultPlan
// gives operation-precise ones). It never returns: the rank's goroutine
// unwinds and exits, survivors observe *ErrRankFailed.
func (c *Comm) Fail() {
	me := c.group[c.rank]
	c.world.die(me)
	panic(rankKilled{me})
}

// Alive reports whether the calling rank is still a live member of the
// world (false once it has been killed by fault injection).
func (c *Comm) Alive() bool { return !c.world.isDead(c.group[c.rank]) }

// agreeRound is the shared state of one agreement; all members of the
// communicator rendezvous on it keyed by (context id, per-rank call
// sequence).
type agreeRound struct {
	arrived []bool // by comm rank
	result  []int  // survivor comm ranks, once decided
	taken   int
}

type agreeKey struct {
	ctx uint64
	seq uint64
}

// Agree is the failure detector's agreement collective (MPIX_Comm_agree):
// it blocks until every live member of the communicator has entered it,
// then returns the sorted communicator ranks of the survivors — the
// same slice contents on every caller, even when ranks keep dying while
// the agreement is in flight (the first rank to observe completion
// freezes the result; later deaths surface in the next Agree). Every
// live member must call Agree; dead members are excused. The result is
// what Comm.Shrink consumes.
func (c *Comm) Agree() []int {
	w := c.world
	me := c.group[c.rank]
	if w.isDead(me) {
		panic(rankKilled{me})
	}
	if rk := w.traceRankFor(me); rk != nil {
		defer rk.BeginComm("mpi.agree", trace.KindCollective, -1, -1, 0).End()
	}
	w.agreeMu.Lock()
	if w.agreeRounds == nil {
		w.agreeRounds = make(map[agreeKey]*agreeRound)
	}
	key := agreeKey{ctx: c.ctx, seq: c.agreeSeq}
	c.agreeSeq++
	rd := w.agreeRounds[key]
	if rd == nil {
		rd = &agreeRound{arrived: make([]bool, len(c.group))}
		w.agreeRounds[key] = rd
	}
	rd.arrived[c.rank] = true
	for rd.result == nil {
		if w.agreeComplete(c, rd) {
			rd.result = w.liveMembers(c)
			w.agreeCond.Broadcast()
			break
		}
		w.agreeCond.Wait()
	}
	res := append([]int(nil), rd.result...)
	rd.taken++
	if rd.taken >= len(rd.result) {
		delete(w.agreeRounds, key)
	}
	w.agreeMu.Unlock()
	if w.isDead(me) {
		panic(rankKilled{me})
	}
	return res
}

// agreeComplete reports whether every member of the communicator has
// either entered the round or died.
func (w *World) agreeComplete(c *Comm, rd *agreeRound) bool {
	w.deadMu.Lock()
	defer w.deadMu.Unlock()
	for cr, wr := range c.group {
		if !rd.arrived[cr] && (w.dead == nil || !w.dead[wr]) {
			return false
		}
	}
	return true
}

// liveMembers returns the sorted comm ranks of c's surviving members.
func (w *World) liveMembers(c *Comm) []int {
	w.deadMu.Lock()
	defer w.deadMu.Unlock()
	live := make([]int, 0, len(c.group))
	for cr, wr := range c.group {
		if w.dead == nil || !w.dead[wr] {
			live = append(live, cr)
		}
	}
	return live
}

// Shrink builds the survivors' replacement communicator
// (MPIX_Comm_shrink): a fresh communicator whose members are exactly
// the given comm ranks of c — pass the result of Agree, so every
// survivor constructs the identical group — renumbered 0..len(live)-1
// in the old rank order. The new communicator lives in the next epoch:
// the caller's mailbox is purged of pre-shrink traffic, and epoch-
// stamped matching guarantees no straggler from before the failure can
// ever satisfy a post-recovery receive. The caller must be in live.
func (c *Comm) Shrink(live []int) *Comm {
	w := c.world
	me := c.group[c.rank]
	if w.isDead(me) {
		panic(rankKilled{me})
	}
	newEpoch := c.epoch + 1
	for {
		cur := w.epoch.Load()
		if int64(newEpoch) <= cur || w.epoch.CompareAndSwap(cur, int64(newEpoch)) {
			break
		}
	}
	box := w.boxes[me]
	box.mu.Lock()
	keepEnv := box.arrived[:0]
	for _, env := range box.arrived {
		if env != nil && env.epoch >= newEpoch {
			keepEnv = append(keepEnv, env)
		}
	}
	for i := len(keepEnv); i < len(box.arrived); i++ {
		box.arrived[i] = nil
	}
	box.arrived = keepEnv
	keepPost := box.posted[:0]
	for _, p := range box.posted {
		if p != nil && p.epoch >= newEpoch {
			keepPost = append(keepPost, p)
		}
	}
	for i := len(keepPost); i < len(box.posted); i++ {
		box.posted[i] = nil
	}
	box.posted = keepPost
	box.mu.Unlock()

	group := make([]int, len(live))
	newRank := -1
	for i, cr := range live {
		group[i] = c.group[cr]
		if cr == c.rank {
			newRank = i
		}
	}
	if newRank < 0 {
		panic(fmt.Sprintf("mpi: rank %d shrinking out of its own survivor set %v", c.rank, live))
	}
	if rk := w.traceRankFor(me); rk != nil {
		rk.Mark("ft.shrink", -1, -1, int64(len(live)))
	}
	return &Comm{
		world:  w,
		rank:   newRank,
		group:  group,
		active: c.active,
		ctx:    uint64(newEpoch),
		epoch:  newEpoch,
	}
}

// PendingOp describes one outstanding receive in a timeout diagnostic:
// the world rank waiting, the communicator rank it expects a message
// from (AnySource for a wildcard) and the tag (negative tags are
// collective-internal).
type PendingOp struct {
	Rank, Peer, Tag int
}

// TimeoutError reports a blocking Wait/Recv/Waitall that exceeded the
// world's operation timeout, with a dump of every receive that was
// still pending world-wide at that moment — a deadlock turned into an
// actionable error.
type TimeoutError struct {
	After   time.Duration
	Rank    int // world rank that timed out
	Peer    int // comm rank the timed-out receive expected
	Tag     int
	Pending []PendingOp
}

func (e *TimeoutError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: rank %d blocked longer than %v waiting for a message from rank %d tag %d; pending receives:",
		e.Rank, e.After, e.Peer, e.Tag)
	for _, p := range e.Pending {
		fmt.Fprintf(&b, "\n  rank %d <- rank %d tag %d", p.Rank, p.Peer, p.Tag)
	}
	if len(e.Pending) == 0 {
		b.WriteString(" (none)")
	}
	return b.String()
}

// PendingOps snapshots every outstanding receive in the world, sorted
// for stable diagnostics.
func (w *World) PendingOps() []PendingOp {
	w.reqMu.Lock()
	ops := make([]PendingOp, 0, len(w.pending))
	for r := range w.pending {
		ops = append(ops, PendingOp{Rank: r.owner, Peer: r.prSrc, Tag: r.prTag})
	}
	w.reqMu.Unlock()
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Rank != ops[j].Rank {
			return ops[i].Rank < ops[j].Rank
		}
		if ops[i].Peer != ops[j].Peer {
			return ops[i].Peer < ops[j].Peer
		}
		return ops[i].Tag < ops[j].Tag
	})
	return ops
}

// SetOpTimeout bounds every subsequent blocking Wait (and therefore
// Recv, Waitall and the collectives built on them): a wait exceeding d
// panics with a *TimeoutError carrying the world-wide pending-receive
// dump instead of deadlocking forever. Zero disables the timeout (the
// default). Intended for tests and long-running services, not as a
// failure detector — fault injection has its own, exact detection path.
func (w *World) SetOpTimeout(d time.Duration) { w.opTimeout.Store(int64(d)) }
