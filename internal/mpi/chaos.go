package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos transport + reliable delivery. This file layers seedable
// message-level fault injection (drop, duplicate, reorder, payload
// bit-flip, delay spike) under the eager transport, together with the
// reliability sublayer that heals every injected fault: per-message
// CRC32C framing, per-(sender, receiver) sequence numbers with
// duplicate suppression and in-order release, and synchronous
// retransmission with capped exponential backoff. The layer models a
// lossy interconnect the way Blue Gene-scale deployments experience
// one — links flip bits and drop packets, the messaging layer re-sends
// — while preserving the runtime's headline contract: matching stays
// FIFO per (source, tag), payloads reach the application bit-exact,
// and solver results are bit-identical with the chaos layer on or off.
//
// Faults are deterministic: every (message sequence number, delivery
// attempt) pair hashes through splitmix64 under the plan's seed, so a
// chaotic run replays identically. Retransmission is bounded — when
// MaxRetries attempts all drop, the sender panics with a typed
// *ErrDeliveryFailed and the receiver's matching receive completes
// with the same error through a poisoned envelope, so exhaustion
// surfaces on both sides as typed errors, never a hang. The layer
// composes with the fault-tolerance machinery (a dead peer or revoked
// epoch preempts retransmission with the usual *ErrRankFailed) and
// with the network model (delay spikes push the modeled arrival stamp
// instead of sleeping when a model is armed).
//
// Like ftOn/netOn/trcOn, the whole layer hides behind one atomic load
// (chaosOn) in sendDeliver: worlds that never arm message faults pay
// nothing beyond it.

// ErrDeliveryFailed reports that the reliability sublayer exhausted its
// retransmission budget for one message: every attempt was dropped (or
// rejected by the receiver's CRC framing). From and To are world ranks.
// It surfaces as a panic in the sending goroutine and as the completion
// error of the receiver's matching receive — both sides unwind with
// the typed error, never a hang — and is recoverable with
// AsDeliveryFailure or errors.As.
type ErrDeliveryFailed struct {
	From, To, Tag int
	Attempts      int
}

func (e *ErrDeliveryFailed) Error() string {
	return fmt.Sprintf("mpi: delivery from rank %d to rank %d tag %d failed after %d attempts",
		e.From, e.To, e.Tag, e.Attempts)
}

// AsDeliveryFailure reports whether a recovered panic value represents
// a delivery failure of the reliable chaos transport, returning the
// typed error when it does — the delivery-failure twin of
// AsRankFailure.
func AsDeliveryFailure(p any) (*ErrDeliveryFailed, bool) {
	err, ok := p.(error)
	if !ok {
		return nil, false
	}
	var df *ErrDeliveryFailed
	if errors.As(err, &df) {
		return df, true
	}
	return nil, false
}

// MsgFaults is a seedable message-level fault schedule, armed through
// FaultPlan.Msg or World.SetMsgFaults. Probabilities are per delivery
// attempt in [0, 1]; every decision hashes (seed, sender, receiver,
// sequence number, attempt), so runs replay bit-identically.
type MsgFaults struct {
	Seed int64
	// Drop is the probability an attempt is lost in flight (the sender
	// retransmits after backoff).
	Drop float64
	// Dup is the probability a delivered attempt arrives twice (the
	// receiver suppresses the duplicate by sequence number).
	Dup float64
	// Reorder is the probability a delivered message is held back so
	// later traffic on the pair overtakes it physically (the receiver's
	// resequencer restores order before anything is matched).
	Reorder float64
	// Corrupt is the probability a delivered attempt has one payload
	// bit flipped in flight (the receiver's CRC32C framing rejects the
	// frame and the sender retransmits; the application never sees the
	// corruption). Empty payloads are never corrupted.
	Corrupt float64
	// DelayProb is the probability an attempt suffers a delay spike of
	// up to Delay: added to the modeled arrival stamp when a network
	// model is armed, slept in wall time otherwise.
	DelayProb float64
	// Delay bounds one delay spike (0: 50µs).
	Delay time.Duration
	// MaxRetries bounds retransmission per message (0: 16); exhaustion
	// surfaces *ErrDeliveryFailed on both endpoints.
	MaxRetries int
	// RetryBase is the first backoff step (0: 20µs); backoff doubles
	// per retry, capped at 64x the base.
	RetryBase time.Duration
}

// Fate kinds salt the per-decision hash so the drop/dup/reorder/
// corrupt/delay rolls of one attempt are independent.
const (
	fateDrop uint64 = iota + 1
	fateDup
	fateReorder
	fateCorrupt
	fateDelay
	fateBit
	fateDelayLen
)

// hash derives the deterministic decision word for one fate of one
// delivery attempt.
func (f *MsgFaults) hash(kind uint64, src, dst int, seq uint64, attempt int) uint64 {
	h := splitmix64(uint64(f.Seed) ^ kind*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(src)<<32 ^ uint64(dst))
	h = splitmix64(h ^ seq)
	return splitmix64(h ^ uint64(attempt)<<8)
}

// roll maps a decision word to [0, 1).
func (f *MsgFaults) roll(kind uint64, src, dst int, seq uint64, attempt int) float64 {
	return float64(f.hash(kind, src, dst, seq, attempt)>>11) / (1 << 53)
}

// chaosFrame is one reliably-delivered message: an owned copy of the
// payload (retransmission, reordering and duplication all outlive the
// caller's buffer) framed with its CRC32C and pair sequence number.
type chaosFrame struct {
	commSrc  int // sender's rank in the destination communicator
	tag      int
	epoch    int
	seq      uint64
	data     []float64
	crc      uint32
	arriveAt int64
	fail     error // poisoned delivery: budget exhausted, complete the receive with this
}

// chaosPair is the per-(sender, receiver) reliability state. sendSeq
// numbers outgoing messages; nextSeq/pending form the receiver-side
// resequencer (frames are released to the mailbox strictly in sequence
// order, so FIFO matching survives physical reordering); stash holds
// one reorder-delayed frame. The lock orders strictly before any
// mailbox lock and is held through mailbox delivery, which serializes
// the pair's release order.
type chaosPair struct {
	mu      sync.Mutex
	sendSeq uint64
	nextSeq uint64
	pending map[uint64]*chaosFrame
	stash   *chaosFrame
}

// relCounters is one world rank's reliability accounting; sender-side
// events count at the sender, receiver-side events at the receiver.
type relCounters struct {
	sent, dropped, duplicated, corrupted, delayed, reordered atomic.Int64
	retransmits, failed                                      atomic.Int64
	dupSuppressed, crcRejected, outOfOrder                   atomic.Int64
}

// RelStats is a snapshot of one rank's (or the world's) reliability
// counters. Sender-side: Sent counts messages (not attempts), Dropped/
// Duplicated/Corrupted/Delayed/Reordered count injected faults,
// Retransmits counts re-sent attempts and Failed exhausted budgets.
// Receiver-side: DupSuppressed counts sequence-suppressed duplicates,
// CRCRejected frames rejected by the framing checksum, OutOfOrder
// frames that arrived ahead of a sequence gap and were resequenced.
type RelStats struct {
	Sent, Dropped, Duplicated, Corrupted, Delayed, Reordered int64
	Retransmits, Failed                                      int64
	DupSuppressed, CRCRejected, OutOfOrder                   int64
}

// Injected returns the total number of injected message faults.
func (s RelStats) Injected() int64 {
	return s.Dropped + s.Duplicated + s.Corrupted + s.Delayed + s.Reordered
}

func (c *relCounters) snapshot() RelStats {
	return RelStats{
		Sent: c.sent.Load(), Dropped: c.dropped.Load(), Duplicated: c.duplicated.Load(),
		Corrupted: c.corrupted.Load(), Delayed: c.delayed.Load(), Reordered: c.reordered.Load(),
		Retransmits: c.retransmits.Load(), Failed: c.failed.Load(),
		DupSuppressed: c.dupSuppressed.Load(), CRCRejected: c.crcRejected.Load(),
		OutOfOrder: c.outOfOrder.Load(),
	}
}

func (s *RelStats) add(o RelStats) {
	s.Sent += o.Sent
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
	s.Corrupted += o.Corrupted
	s.Delayed += o.Delayed
	s.Reordered += o.Reordered
	s.Retransmits += o.Retransmits
	s.Failed += o.Failed
	s.DupSuppressed += o.DupSuppressed
	s.CRCRejected += o.CRCRejected
	s.OutOfOrder += o.OutOfOrder
}

// chaosState is the world's chaos-transport state: the (normalized)
// fault schedule, the n x n pair matrix and the per-rank counters.
type chaosState struct {
	f        MsgFaults
	pairs    [][]*chaosPair
	counters []relCounters
}

func (cs *chaosState) pair(src, dst int) *chaosPair { return cs.pairs[src][dst] }

// chaosStashFlush bounds how long a reorder-stashed frame is held when
// no later traffic displaces it, guaranteeing progress on quiet pairs.
const chaosStashFlush = 200 * time.Microsecond

// SetMsgFaults arms message-level fault injection and the reliability
// sublayer on the world. Call before any rank communicates, like
// SetNetModel and SetTracer (FaultPlan.Msg does it through
// installPlan). nil is a no-op.
func (w *World) SetMsgFaults(f *MsgFaults) {
	if f == nil {
		return
	}
	cs := &chaosState{f: *f}
	if cs.f.MaxRetries <= 0 {
		cs.f.MaxRetries = 16
	}
	if cs.f.RetryBase <= 0 {
		cs.f.RetryBase = 20 * time.Microsecond
	}
	if cs.f.Delay <= 0 {
		cs.f.Delay = 50 * time.Microsecond
	}
	cs.pairs = make([][]*chaosPair, w.size)
	for i := range cs.pairs {
		row := make([]*chaosPair, w.size)
		for j := range row {
			row[j] = &chaosPair{}
		}
		cs.pairs[i] = row
	}
	cs.counters = make([]relCounters, w.size)
	w.chaos = cs
	w.chaosOn.Store(true)
}

// ChaosArmed reports whether message-level fault injection is armed.
func (w *World) ChaosArmed() bool { return w.chaosOn.Load() }

// NetRelStats snapshots one world rank's reliability counters (zeros
// when no message faults are armed).
func (w *World) NetRelStats(rank int) RelStats {
	if !w.chaosOn.Load() {
		return RelStats{}
	}
	return w.chaos.counters[rank].snapshot()
}

// NetRelTotals sums the reliability counters over all ranks.
func (w *World) NetRelTotals() RelStats {
	var total RelStats
	if !w.chaosOn.Load() {
		return total
	}
	for r := range w.chaos.counters {
		total.add(w.chaos.counters[r].snapshot())
	}
	return total
}

var crc32cTable = crc32.MakeTable(crc32.Castagnoli)

// crcFloats computes the CRC32C frame checksum over the payload's
// float64 bit patterns.
func crcFloats(data []float64) uint32 {
	var b [8]byte
	crc := uint32(0)
	for _, v := range data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		crc = crc32.Update(crc, crc32cTable, b[:])
	}
	return crc
}

// chaosSend is sendDeliver's delivery path when message faults are
// armed: frame the payload, then attempt delivery until the frame is
// accepted, retransmitting dropped or CRC-rejected attempts with
// capped exponential backoff. A dead peer or revoked epoch preempts
// the loop with the usual typed rank-failure panic; an exhausted
// retry budget poisons the receiver's matching receive and panics
// *ErrDeliveryFailed in the sender — both sides always unwind typed,
// never hang.
func (c *Comm) chaosSend(toW, tag int, data []float64, arriveAt int64) {
	w := c.world
	cs := w.chaos
	srcW := c.group[c.rank]
	pair := cs.pair(srcW, toW)
	ctr := &cs.counters[srcW]

	pair.mu.Lock()
	seq := pair.sendSeq
	pair.sendSeq++
	pair.mu.Unlock()

	fr := &chaosFrame{commSrc: c.rank, tag: tag, epoch: c.epoch, seq: seq,
		data: append([]float64(nil), data...), arriveAt: arriveAt}
	fr.crc = crcFloats(fr.data)
	ctr.sent.Add(1)

	f := &cs.f
	for attempt := 0; ; attempt++ {
		if w.ftOn.Load() {
			// Rank failure preempts retransmission: a dead peer (or a
			// revoked epoch) is not a lossy link.
			w.checkPeer(c.epoch, toW)
		}
		if attempt > f.MaxRetries {
			cs.failDelivery(w, pair, srcW, toW, fr, attempt)
		}
		if attempt > 0 {
			ctr.retransmits.Add(1)
			if rk := w.traceRankFor(srcW); rk != nil {
				rk.Mark("net.retry", toW, tag, int64(len(fr.data))*8)
			}
			shift := attempt - 1
			if shift > 6 {
				shift = 6 // cap backoff at 64x the base
			}
			time.Sleep(f.RetryBase << shift)
		}
		if cs.attempt(w, pair, srcW, toW, fr, attempt) {
			return
		}
	}
}

// attempt plays one delivery attempt's fates and reports whether the
// frame was accepted by the receiver (false: the sender must
// retransmit).
func (cs *chaosState) attempt(w *World, pair *chaosPair, srcW, toW int, fr *chaosFrame, attempt int) bool {
	f := &cs.f
	ctr := &cs.counters[srcW]
	if f.Drop > 0 && f.roll(fateDrop, srcW, toW, fr.seq, attempt) < f.Drop {
		ctr.dropped.Add(1)
		return false
	}
	if f.Corrupt > 0 && len(fr.data) > 0 && f.roll(fateCorrupt, srcW, toW, fr.seq, attempt) < f.Corrupt {
		// One bit of the payload flips in flight. The receiver's CRC
		// framing rejects the frame, so the corruption acts like a drop:
		// the sender retransmits and the application never sees it.
		ctr.corrupted.Add(1)
		bad := *fr
		bad.data = append([]float64(nil), fr.data...)
		bit := f.hash(fateBit, srcW, toW, fr.seq, attempt) % uint64(len(bad.data)*64)
		i, b := bit/64, bit%64
		bad.data[i] = math.Float64frombits(math.Float64bits(bad.data[i]) ^ 1<<b)
		cs.inject(w, pair, srcW, toW, &bad)
		return false
	}
	if f.DelayProb > 0 && f.roll(fateDelay, srcW, toW, fr.seq, attempt) < f.DelayProb {
		ctr.delayed.Add(1)
		spike := int64(f.hash(fateDelayLen, srcW, toW, fr.seq, attempt) % uint64(f.Delay))
		if w.netOn.Load() && fr.arriveAt != 0 {
			// Compose with the network model: the spike pushes the modeled
			// arrival stamp out instead of sleeping.
			fr.arriveAt += spike
		} else {
			time.Sleep(time.Duration(spike))
		}
	}
	dup := f.Dup > 0 && f.roll(fateDup, srcW, toW, fr.seq, attempt) < f.Dup
	if f.Reorder > 0 && f.roll(fateReorder, srcW, toW, fr.seq, attempt) < f.Reorder {
		ctr.reordered.Add(1)
		cs.stashFrame(w, pair, srcW, toW, fr)
	} else {
		cs.inject(w, pair, srcW, toW, fr)
	}
	if dup {
		ctr.duplicated.Add(1)
		cs.inject(w, pair, srcW, toW, fr)
	}
	return true
}

// stashFrame holds a frame back so later traffic on the pair overtakes
// it physically. The stash is displaced by the next stashed frame (the
// older frame is injected then, genuinely behind any traffic that
// passed it) and drained by a flush timer, so a held frame can delay
// delivery but never prevent it. The receiver's resequencer restores
// sequence order either way.
func (cs *chaosState) stashFrame(w *World, pair *chaosPair, srcW, toW int, fr *chaosFrame) {
	pair.mu.Lock()
	prev := pair.stash
	pair.stash = fr
	pair.mu.Unlock()
	if prev != nil {
		cs.inject(w, pair, srcW, toW, prev)
	}
	time.AfterFunc(chaosStashFlush, func() {
		pair.mu.Lock()
		held := pair.stash == fr
		if held {
			pair.stash = nil
		}
		pair.mu.Unlock()
		if held {
			cs.inject(w, pair, srcW, toW, fr)
		}
	})
}

// inject presents one physically-arriving frame to the receiver: CRC
// framing check, duplicate suppression, and resequencing — frames are
// released to the mailbox strictly in sequence order, so the matching
// layer above sees per-pair FIFO no matter what the chaos layer did to
// physical arrival order. Holding pair.mu through mailbox delivery
// serializes the release order (lock order: pair.mu, then box.mu).
func (cs *chaosState) inject(w *World, pair *chaosPair, srcW, toW int, fr *chaosFrame) {
	rctr := &cs.counters[toW]
	if fr.fail == nil && crcFloats(fr.data) != fr.crc {
		rctr.crcRejected.Add(1)
		return
	}
	pair.mu.Lock()
	defer pair.mu.Unlock()
	if fr.seq < pair.nextSeq {
		rctr.dupSuppressed.Add(1)
		if rk := w.traceRankFor(toW); rk != nil {
			rk.Mark("net.dup", srcW, fr.tag, int64(len(fr.data))*8)
		}
		return
	}
	if fr.seq > pair.nextSeq {
		if pair.pending == nil {
			pair.pending = make(map[uint64]*chaosFrame)
		}
		if _, dup := pair.pending[fr.seq]; dup {
			rctr.dupSuppressed.Add(1)
			if rk := w.traceRankFor(toW); rk != nil {
				rk.Mark("net.dup", srcW, fr.tag, int64(len(fr.data))*8)
			}
			return
		}
		pair.pending[fr.seq] = fr
		rctr.outOfOrder.Add(1)
		return
	}
	w.chaosDeliver(toW, fr)
	pair.nextSeq++
	for {
		next, ok := pair.pending[pair.nextSeq]
		if !ok {
			break
		}
		delete(pair.pending, pair.nextSeq)
		w.chaosDeliver(toW, next)
		pair.nextSeq++
	}
}

// chaosDeliver places one in-sequence frame into the destination
// mailbox with sendDeliver's matching rules: posted receive first
// (poisoned frames complete it with their typed error), envelope
// fallback otherwise. Runs under the owning pair's lock.
func (w *World) chaosDeliver(toW int, fr *chaosFrame) {
	box := w.boxes[toW]
	box.mu.Lock()
	defer box.mu.Unlock()
	if box.aborted {
		return
	}
	box.seq++
	for i, pr := range box.posted {
		if pr == nil || pr.epoch != fr.epoch {
			continue
		}
		if (pr.prSrc == AnySource || pr.prSrc == fr.commSrc) && (pr.prTag == AnyTag || pr.prTag == fr.tag) {
			box.posted[i] = nil
			if fr.fail != nil {
				pr.completeErr(fr.commSrc, fr.tag, 0, fr.fail)
			} else {
				completeRecv(pr, fr.commSrc, fr.tag, fr.data, fr.arriveAt)
			}
			w.untrack(pr)
			box.cond.Broadcast()
			return
		}
	}
	env := &envelope{src: fr.commSrc, tag: fr.tag, data: fr.data, seq: box.seq,
		epoch: fr.epoch, arriveAt: fr.arriveAt, fail: fr.fail}
	box.arrived = append(box.arrived, env)
	box.cond.Broadcast()
}

// failDelivery surfaces retransmission-budget exhaustion: the frame is
// poisoned and released through the resequencer — so the receiver's
// matching receive completes with the typed error in FIFO position —
// and the sender panics with the same *ErrDeliveryFailed. Never
// returns.
func (cs *chaosState) failDelivery(w *World, pair *chaosPair, srcW, toW int, fr *chaosFrame, attempts int) {
	cs.counters[srcW].failed.Add(1)
	err := &ErrDeliveryFailed{From: srcW, To: toW, Tag: fr.tag, Attempts: attempts}
	fr.fail = err
	fr.data = nil
	cs.inject(w, pair, srcW, toW, fr)
	panic(err)
}
