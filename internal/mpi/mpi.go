// Package mpi is an in-process message-passing runtime with MPI
// semantics, standing in for the MPICH2 library the paper uses on Blue
// Gene/P. Ranks are goroutines inside one OS process; messages are
// copied through per-rank mailboxes with MPI's matching rules
// (source + tag, FIFO non-overtaking per (source, tag) pair).
//
// The surface mirrors the MPI subset GPAW's finite-difference engine
// needs: blocking and non-blocking point-to-point, request objects with
// Wait/Waitall/Test, communicator split, Cartesian topologies
// (MPI_Cart_create / MPI_Cart_shift), and the collectives used by the
// surrounding DFT code (Barrier, Bcast, Reduce, Allreduce, Allgather).
//
// Thread support levels follow MPI-2: SINGLE (only one thread may call
// into the library; violations are detected and panic, standing in for
// the undefined behaviour of a real MPI) and MULTIPLE (any thread may
// call at any time). The Blue Gene/P performance difference between the
// two modes is modelled in internal/bgpsim; here the distinction is a
// correctness contract.
//
// # Calibrated network model
//
// By default delivery is eager and free — correct, but timing-blind: a
// shared-memory run cannot show communication/computation overlap or
// rank-placement effects. World.SetNetModel layers a virtual-time cost
// model over the unchanged transport (see netmodel.go): every message
// pays sender post cost, serialized DMA injection, wire time at the
// effective link bandwidth and per-hop latency over the torus/mesh
// distance between the endpoints' node coordinates, with a cheap
// intra-node path and free self-sends. The constants (NetParams) are
// the internal/bgpsim Figure-2 fit — bgpsim.Params.NetParams converts,
// bgpsim.NetModelFor builds a ready model — and rank→node placement
// comes from internal/topology's mapping strategies. Virtual clocks
// advance without sleeping (RunModeled returns the makespan); NetModel.
// Paced turns the delays into real sleeps, which SetOpTimeout excludes
// from its deadlines. The model reorders time only, never data or
// matching, so results are bit-identical with the model on or off.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// ThreadMode is the MPI-2 thread support level of a World.
type ThreadMode int

const (
	// ThreadSingle allows MPI calls from one thread per rank at a time.
	ThreadSingle ThreadMode = iota
	// ThreadMultiple allows fully concurrent MPI calls per rank.
	ThreadMultiple
)

// String implements fmt.Stringer.
func (m ThreadMode) String() string {
	if m == ThreadSingle {
		return "SINGLE"
	}
	return "MULTIPLE"
}

// AnySource matches messages from any sender in Recv/Irecv.
const AnySource = -1

// AnyTag matches messages with any tag in Recv/Irecv.
const AnyTag = -1

// envelope is a message in flight: an eager copy of the sender's data.
type envelope struct {
	src   int // sender's rank in the destination communicator
	tag   int
	data  []float64
	seq   uint64 // arrival order stamp, for deterministic matching
	epoch int    // fault-tolerance epoch the message belongs to
	// arriveAt is the modeled virtual arrival time under the network
	// model (see netmodel.go); 0 when no model is armed or the message
	// is a free self-send.
	arriveAt int64
	// fail is non-nil for a poisoned delivery from the chaos reliability
	// sublayer (see chaos.go): the matching receive completes with this
	// typed error instead of a payload.
	fail error
}

// mailbox holds a rank's unmatched arrived messages and posted
// receives. Posted receives are the Request objects themselves (their
// prSrc/prTag/buf matching fields are guarded by the mailbox lock), so
// posting a receive costs no extra allocation.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	arrived []*envelope
	posted  []*Request
	seq     uint64
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// World is a set of ranks that can exchange messages. It corresponds to
// MPI_COMM_WORLD plus the process runtime.
type World struct {
	size  int
	mode  ThreadMode
	boxes []*mailbox

	reqMu   sync.Mutex
	pending map[*Request]struct{}
	reqFree []*Request // completed requests handed back by Reclaim
	aborted bool

	// Fault-tolerance state (see fault.go). ftOn gates every hot-path
	// check behind one atomic load, so worlds that never arm faults pay
	// nothing beyond it.
	ftOn         atomic.Bool
	plan         *FaultPlan
	killAt       []int64 // per-rank op-count kill threshold, -1 = never
	ops          []int64 // per-rank op counters, guarded by deadMu
	deadMu       sync.Mutex
	dead         []bool
	deadList     []int        // world ranks in death order
	epoch        atomic.Int64 // current epoch, advanced by Shrink
	revokedEpoch atomic.Int64 // highest poisoned epoch (-1: none)
	opTimeout    atomic.Int64 // blocking-wait timeout in ns (0: off)

	agreeMu     sync.Mutex
	agreeCond   *sync.Cond
	agreeRounds map[agreeKey]*agreeRound

	// Network-model state (see netmodel.go). netOn gates every hot-path
	// check behind one atomic load, like ftOn: worlds that never arm the
	// model pay nothing beyond it.
	netOn   atomic.Bool
	net     *NetModel
	clocks  []rankClock
	netBase time.Time
	// pacedNs is the world-wide total of wall time slept to pace modeled
	// delay and pacing the number of ranks currently inside such a
	// sleep; blocking-wait timeouts exclude both the completed total and
	// any sleep still in flight (see Request.Wait), so SetOpTimeout
	// counts only genuine wall time, never modeled delivery delay.
	pacedNs atomic.Int64
	pacing  atomic.Int32

	// Tracing state (see trace.go and internal/trace). trcOn gates every
	// emission site behind one atomic load, exactly like ftOn and netOn:
	// worlds that never arm a tracer pay nothing beyond it.
	trcOn  atomic.Bool
	tracer *trace.Tracer

	// Chaos-transport state (see chaos.go). chaosOn gates the lossy
	// delivery path behind one atomic load, like ftOn/netOn/trcOn:
	// worlds that never arm message faults pay nothing beyond it.
	chaosOn atomic.Bool
	chaos   *chaosState
}

// NewWorld creates a world of n ranks with the given thread mode.
func NewWorld(n int, mode ThreadMode) *World {
	if n < 1 {
		panic(fmt.Sprintf("mpi: world of %d ranks", n))
	}
	w := &World{size: n, mode: mode, pending: make(map[*Request]struct{})}
	w.boxes = make([]*mailbox, n)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.revokedEpoch.Store(-1)
	w.agreeCond = sync.NewCond(&w.agreeMu)
	return w
}

// track registers a live receive request so a world abort can unblock
// its waiter.
func (w *World) track(r *Request) {
	w.reqMu.Lock()
	aborted := w.aborted
	w.pending[r] = struct{}{}
	w.reqMu.Unlock()
	if aborted {
		r.completeErr(AnySource, AnyTag, 0, errAborted)
	}
}

// untrack removes a completed request.
func (w *World) untrack(r *Request) {
	w.reqMu.Lock()
	delete(w.pending, r)
	w.reqMu.Unlock()
}

// errAborted is delivered to every blocked request when a rank panics,
// so the remaining ranks unwind instead of deadlocking.
var errAborted = fmt.Errorf("mpi: world aborted after a rank failure")

// abort completes every pending request with an error and wakes all
// mailbox waiters. Called once when any rank panics.
func (w *World) abort() {
	w.reqMu.Lock()
	w.aborted = true
	reqs := make([]*Request, 0, len(w.pending))
	for r := range w.pending {
		reqs = append(reqs, r)
	}
	w.pending = make(map[*Request]struct{})
	w.reqMu.Unlock()
	for _, r := range reqs {
		r.completeErr(AnySource, AnyTag, 0, errAborted)
	}
	for _, b := range w.boxes {
		b.mu.Lock()
		b.aborted = true
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Mode returns the world's thread support level.
func (w *World) Mode() ThreadMode { return w.mode }

// Comm is a communicator: a view of a subset of world ranks with its own
// rank numbering. The zero value is not usable.
type Comm struct {
	world *World
	rank  int   // rank within this communicator
	group []int // communicator rank -> world rank

	active *int32 // concurrent-call detector shared per (world rank)
	coll   uint64 // per-rank collective sequence number (local, no lock)

	// ctx is the communicator's context id, the analogue of an MPI
	// context: collective tags fold it in so collectives on different
	// communicators sharing ranks (a domain communicator and a band
	// communicator, a process grid and its row/column sub-communicators)
	// can never cross-match, even when a fast rank races ahead into a
	// sibling communicator's collectives. The world communicator has
	// ctx 0; Split derives children's contexts deterministically, so
	// every member of a communicator agrees on its ctx without extra
	// communication.
	ctx uint64
	// splits counts Split calls on this communicator. MPI requires all
	// ranks of a communicator to call Split collectively in the same
	// order, so the local counter agrees across ranks and feeds the
	// deterministic child-context derivation.
	splits uint64

	// epoch is the fault-tolerance epoch the communicator belongs to.
	// The initial world and everything Split from it live in epoch 0; a
	// rank death revokes the current epoch (all its operations fail
	// fast) and Shrink starts the next. Requests and envelopes carry
	// their communicator's epoch, and matching requires equal epochs.
	epoch int
	// agreeSeq counts Agree calls, like coll for collectives: all ranks
	// call Agree in the same order, so the local counters line up.
	agreeSeq uint64
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// World returns the underlying world.
func (c *Comm) World() *World { return c.world }

// enter/exit implement the SINGLE-mode misuse detector and, once the
// fault machinery is armed, the per-operation fault hook (poisoned-
// epoch fail-fast, injected jitter, scheduled kills).
func (c *Comm) enter() {
	if c.world.netOn.Load() {
		// Accrue the wall time the rank spent computing since its last
		// MPI call before any fault jitter sleeps, so injected delay is
		// never mistaken for compute.
		c.world.netEnter(c.group[c.rank])
	}
	if c.world.ftOn.Load() {
		c.faultPoint()
	}
	if c.world.mode == ThreadSingle {
		if n := atomic.AddInt32(c.active, 1); n > 1 {
			panic("mpi: concurrent MPI calls from multiple threads in SINGLE mode")
		}
	}
}

func (c *Comm) exit() {
	if c.world.mode == ThreadSingle {
		atomic.AddInt32(c.active, -1)
	}
	if c.world.netOn.Load() {
		c.world.netExit(c.group[c.rank])
	}
}

// Run spawns n goroutine ranks executing body and waits for all of them.
// A panic in any rank is recovered and returned as an error (first one
// wins); remaining ranks may deadlock-free finish or be abandoned — the
// world must not be reused after an error.
func Run(n int, mode ThreadMode, body func(c *Comm)) error {
	return RunWithFaults(n, mode, nil, body)
}

// RunWithFaults is Run with a fault-injection plan armed (nil behaves
// exactly like Run). A rank killed by the plan — or by Comm.Fail —
// exits quietly rather than failing the world: surviving ranks observe
// the death as *ErrRankFailed panics and decide for themselves whether
// to recover (Agree/Shrink) or unwind; only an unrecovered panic
// reaching Run is reported as the returned error.
func RunWithFaults(n int, mode ThreadMode, plan *FaultPlan, body func(c *Comm)) error {
	w := NewWorld(n, mode)
	if plan != nil {
		w.installPlan(plan)
	}
	return w.runRanks(body)
}

// runRanks spawns one goroutine per rank of the (possibly pre-armed)
// world and waits for all of them — the engine behind Run, RunWithFaults
// and RunModeled.
func (w *World) runRanks(body func(c *Comm)) error {
	n := w.size
	var wg sync.WaitGroup
	var firstErr atomic.Value
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(rankKilled); ok {
						// Injected death: the rank just exits.
						return
					}
					if w.isDead(r) {
						// Death throes of an already-killed rank (e.g. a
						// worker thread unwinding with the failure error).
						return
					}
					firstErr.CompareAndSwap(nil, fmt.Errorf("mpi: rank %d panicked: %v", r, p))
					// Unblock every other rank so the process can unwind.
					w.abort()
				}
			}()
			var active int32
			c := &Comm{world: w, rank: r, group: group, active: &active}
			body(c)
		}()
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// worldRank maps a communicator rank to the world rank.
func (c *Comm) worldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.group) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", commRank, len(c.group)))
	}
	return c.group[commRank]
}

// Send delivers an eager copy of data to rank `to` with the given tag.
// It corresponds to a buffered MPI_Send and never blocks.
//
//gpaw:hotpath
func (c *Comm) Send(to, tag int, data []float64) {
	c.enter()
	defer c.exit()
	c.send(to, tag, data)
}

//gpaw:hotpath
func (c *Comm) send(to, tag int, data []float64) {
	if tag < 0 {
		//lint:ignore hotpathalloc panic path: formatting the message as we die is fine
		panic(fmt.Sprintf("mpi: negative user tag %d", tag))
	}
	c.sendInternal(to, tag, data)
}

// sendInternal is send without the tag-sign restriction; collectives use
// negative tags so they can never collide with user point-to-point
// traffic. When tracing is armed it records one send span per message
// (virtual duration = the modeled post cost).
//
//gpaw:hotpath
func (c *Comm) sendInternal(to, tag int, data []float64) {
	if rk := c.traceRank(); rk != nil {
		defer rk.BeginComm("mpi.send", trace.KindSend, c.worldRank(to), tag, int64(len(data))*8).End()
	}
	c.sendDeliver(to, tag, data)
}

// sendDeliver performs the untraced eager delivery.
//
//gpaw:hotpath
func (c *Comm) sendDeliver(to, tag int, data []float64) {
	toW := c.worldRank(to)
	if c.world.ftOn.Load() {
		c.world.checkPeer(c.epoch, toW)
	}
	// Modeled delivery cost: charge the sender's CPU and injection path
	// and stamp the virtual arrival time before the physical (eager)
	// delivery below, which is unchanged by the model.
	var arriveAt int64
	if c.world.netOn.Load() {
		arriveAt = c.world.sendCost(c.group[c.rank], toW, len(data))
	}
	if c.world.chaosOn.Load() {
		// Lossy transport armed: route through the chaos layer's framed,
		// sequenced, retransmitting delivery path (see chaos.go).
		c.chaosSend(toW, tag, data, arriveAt)
		return
	}
	box := c.world.boxes[toW]
	box.mu.Lock()
	defer box.mu.Unlock()
	box.seq++
	// Try to match a posted receive first, in post order. The match
	// delivers straight from the sender's buffer into the posted one —
	// no envelope, no intermediate copy, no allocation — which makes the
	// split-phase exchange loops (receives posted up front, sends
	// following) allocation-free in steady state. Epochs must agree so a
	// pre-failure send can never complete a post-recovery receive.
	for i, pr := range box.posted {
		if pr == nil || pr.epoch != c.epoch {
			continue
		}
		if (pr.prSrc == AnySource || pr.prSrc == c.rank) && (pr.prTag == AnyTag || pr.prTag == tag) {
			box.posted[i] = nil
			completeRecv(pr, c.rank, tag, data, arriveAt)
			c.world.untrack(pr)
			box.cond.Broadcast()
			return
		}
	}
	//lint:ignore hotpathalloc unmatched-send fallback: the guarded split-phase loops pre-post every receive, so steady state always takes the posted-match path above
	env := &envelope{src: c.rank, tag: tag, data: append([]float64(nil), data...), seq: box.seq, epoch: c.epoch, arriveAt: arriveAt}
	//lint:ignore hotpathalloc same cold fallback as the envelope above
	box.arrived = append(box.arrived, env)
	box.cond.Broadcast()
}

// completeRecv copies the message payload into the posted buffer and
// completes the request. Caller holds the mailbox lock. A message larger
// than the posted buffer is a truncation error, surfaced as a panic at
// the receiver's Wait (never in the sender's goroutine, which may be a
// different rank). The copy happens under the request lock after the
// done check, so a request already completed by a failure revocation
// can never have its abandoned buffer written.
func completeRecv(pr *Request, src, tag int, data []float64, arriveAt int64) {
	pr.mu.Lock()
	if pr.done {
		pr.mu.Unlock()
		return
	}
	n := copy(pr.buf, data)
	var err error
	if len(data) > len(pr.buf) {
		err = fmt.Errorf("mpi: message of %d values truncated into buffer of %d", len(data), len(pr.buf))
	}
	pr.done = true
	pr.src, pr.tag, pr.n = src, tag, n
	pr.arriveAt = arriveAt
	pr.err = err
	pr.mu.Unlock()
	pr.cond.Broadcast()
}

// Recv blocks until a message matching (from, tag) arrives, copies it
// into buf, and returns the source rank, tag and value count. from may be
// AnySource and tag may be AnyTag.
func (c *Comm) Recv(from, tag int, buf []float64) (src, gotTag, n int) {
	c.enter()
	defer c.exit()
	req := c.irecv(from, tag, buf)
	return req.Wait()
}

// Isend initiates a non-blocking send and returns its request. With the
// eager-copy transport the request is already complete; the object exists
// so protocol code can be written exactly as with a real MPI.
//
//gpaw:hotpath
func (c *Comm) Isend(to, tag int, data []float64) *Request {
	c.enter()
	defer c.exit()
	c.send(to, tag, data)
	r := c.world.getRequest()
	r.owner = c.group[c.rank]
	r.complete(c.rank, tag, len(data))
	return r
}

// Irecv posts a non-blocking receive into buf and returns its request.
//
//gpaw:hotpath
func (c *Comm) Irecv(from, tag int, buf []float64) *Request {
	c.enter()
	defer c.exit()
	return c.irecv(from, tag, buf)
}

//gpaw:hotpath
func (c *Comm) irecv(from, tag int, buf []float64) *Request {
	ft := c.world.ftOn.Load()
	if c.world.netOn.Load() {
		c.world.chargePost(c.group[c.rank])
	}
	box := c.world.boxes[c.worldRank(c.rank)]
	req := c.world.getRequest()
	req.prSrc, req.prTag, req.buf = from, tag, buf
	req.owner = c.group[c.rank]
	req.epoch = c.epoch
	box.mu.Lock()
	// Match the earliest arrived envelope (FIFO per source/tag is
	// guaranteed because arrived is scanned in arrival order). Epochs
	// must agree: a message stranded by a failed epoch is never
	// delivered into a recovered one.
	for i, env := range box.arrived {
		if env == nil || env.epoch != c.epoch {
			continue
		}
		if (from == AnySource || from == env.src) && (tag == AnyTag || tag == env.tag) {
			//lint:ignore hotpathalloc in-place removal from the arrived list — never grows the backing array
			box.arrived = append(box.arrived[:i], box.arrived[i+1:]...)
			box.mu.Unlock()
			if env.fail != nil {
				// Poisoned delivery from the chaos reliability sublayer:
				// the receive completes with the typed error.
				req.completeErr(env.src, env.tag, 0, env.fail)
				return req
			}
			completeRecv(req, env.src, env.tag, env.data, env.arriveAt)
			return req
		}
	}
	//lint:ignore hotpathalloc posted-receive list of the warm mailbox; capacity is stable once the exchange pattern repeats
	box.posted = append(box.posted, req)
	idx := len(box.posted) - 1
	c.world.track(req)
	// Fault checks must come after the request is tracked: a revocation
	// that raced ahead of the post has already swept the pending set, so
	// re-checking here guarantees the request can never be stranded.
	var failErr error
	var deadPeer = -1
	if ft {
		if int64(c.epoch) <= c.world.revokedEpoch.Load() {
			failErr = c.world.failure()
		} else if from != AnySource && from >= 0 && from < len(c.group) {
			if fw := c.group[from]; c.world.isDead(fw) {
				//lint:ignore hotpathalloc fault path: a receive posted to a dead peer allocates its error, never the healthy steady state
				failErr = &ErrRankFailed{Rank: fw}
				deadPeer = fw
			}
		}
		if failErr != nil {
			box.posted[idx] = nil
		}
	}
	// Garbage-collect matched slots occasionally to bound growth.
	if len(box.posted) > 64 {
		live := box.posted[:0]
		for _, p := range box.posted {
			if p != nil {
				//lint:ignore hotpathalloc in-place compaction into posted[:0] — never grows the backing array
				live = append(live, p)
			}
		}
		box.posted = live
	}
	box.mu.Unlock()
	if failErr != nil {
		c.world.untrack(req)
		if deadPeer >= 0 {
			c.world.revoke(int64(c.epoch), deadPeer)
		}
		req.completeErr(AnySource, AnyTag, 0, failErr)
	}
	return req
}

// Sendrecv sends one buffer and receives another in a single, deadlock-
// free operation (MPI_Sendrecv).
func (c *Comm) Sendrecv(to, sendTag int, sendBuf []float64, from, recvTag int, recvBuf []float64) (n int) {
	c.enter()
	defer c.exit()
	req := c.irecv(from, recvTag, recvBuf)
	c.send(to, sendTag, sendBuf)
	_, _, n = req.Wait()
	return n
}

// Probe blocks until a matching message is available without receiving
// it, returning its source, tag, and length.
func (c *Comm) Probe(from, tag int) (src, gotTag, n int) {
	c.enter()
	defer c.exit()
	box := c.world.boxes[c.worldRank(c.rank)]
	var arriveAt int64
	box.mu.Lock()
probe:
	for {
		if box.aborted {
			box.mu.Unlock()
			panic(errAborted)
		}
		if c.world.ftOn.Load() {
			if me := c.group[c.rank]; c.world.isDead(me) {
				box.mu.Unlock()
				panic(rankKilled{me})
			}
			if int64(c.epoch) <= c.world.revokedEpoch.Load() {
				box.mu.Unlock()
				panic(c.world.failure())
			}
		}
		for _, env := range box.arrived {
			if env == nil || env.epoch != c.epoch {
				continue
			}
			if (from == AnySource || from == env.src) && (tag == AnyTag || tag == env.tag) {
				if env.fail != nil {
					box.mu.Unlock()
					panic(env.fail)
				}
				src, gotTag, n = env.src, env.tag, len(env.data)
				arriveAt = env.arriveAt
				break probe
			}
		}
		box.cond.Wait()
	}
	box.mu.Unlock()
	// A probe observes the message, so the observer's clock advances to
	// its modeled arrival — outside the mailbox lock, because paced mode
	// sleeps the jump.
	if c.world.netOn.Load() {
		c.world.advanceTo(c.group[c.rank], arriveAt)
	}
	return src, gotTag, n
}
