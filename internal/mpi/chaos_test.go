package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// chaosTraffic runs a deterministic mixed workload — tagged
// point-to-point ring exchanges, a reduction, a broadcast and barriers
// (the barrier exercises the empty-payload frame) — and returns each
// rank's final digest. The digest folds every received payload in, so
// any lost, duplicated, reordered or corrupted value changes it.
func chaosTraffic(t *testing.T, p int, f *MsgFaults) ([]float64, RelStats) {
	t.Helper()
	digests := make([]float64, p)
	w := NewWorld(p, ThreadSingle)
	if f != nil {
		w.SetMsgFaults(f)
	}
	err := w.Run(func(c *Comm) {
		me := c.Rank()
		acc := 0.0
		buf := make([]float64, 8)
		for round := 0; round < 30; round++ {
			to := (me + 1) % p
			from := (me + p - 1) % p
			out := make([]float64, 8)
			for i := range out {
				out[i] = float64(me*1000+round*10+i) * 1.5
			}
			req := c.Irecv(from, round%5, buf)
			c.Send(to, round%5, out)
			_, _, n := req.Wait()
			for _, v := range buf[:n] {
				acc = acc*1.0000001 + v
			}
			if round%7 == 0 {
				c.Barrier()
			}
		}
		sum := []float64{acc}
		got := make([]float64, 1)
		c.Allreduce(OpSum, sum, got)
		root := []float64{0}
		if me == 0 {
			root[0] = got[0] * 0.5
		}
		c.Bcast(0, root)
		digests[me] = acc + got[0] + root[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	return digests, w.NetRelTotals()
}

func TestChaosFaultClassesDeliverIdentical(t *testing.T) {
	// Under every fault class, with multiple seeds, the reliable
	// delivery layer must heal the transport completely: every rank's
	// digest bit-identical to the fault-free run, the class's injection
	// counter nonzero (the faults really fired), and zero delivery
	// failures.
	const p = 4
	want, clean := chaosTraffic(t, p, nil)
	if clean != (RelStats{}) {
		t.Fatalf("unarmed run has nonzero reliability counters: %+v", clean)
	}
	classes := []struct {
		name  string
		f     MsgFaults
		count func(RelStats) int64
	}{
		{"drop", MsgFaults{Drop: 0.2}, func(s RelStats) int64 { return s.Dropped }},
		{"dup", MsgFaults{Dup: 0.3}, func(s RelStats) int64 { return s.Duplicated }},
		{"reorder", MsgFaults{Reorder: 0.3}, func(s RelStats) int64 { return s.Reordered }},
		{"corrupt", MsgFaults{Corrupt: 0.2}, func(s RelStats) int64 { return s.Corrupted }},
		{"delay", MsgFaults{DelayProb: 0.3, Delay: 30 * time.Microsecond}, func(s RelStats) int64 { return s.Delayed }},
		{"all", MsgFaults{Drop: 0.1, Dup: 0.1, Reorder: 0.1, Corrupt: 0.1, DelayProb: 0.1}, func(s RelStats) int64 { return s.Injected() }},
	}
	for _, cl := range classes {
		for _, seed := range []int64{1, 2, 3} {
			f := cl.f
			f.Seed = seed
			got, stats := chaosTraffic(t, p, &f)
			for r := range got {
				if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
					t.Errorf("%s seed %d: rank %d digest %x, want %x", cl.name, seed, r, math.Float64bits(got[r]), math.Float64bits(want[r]))
				}
			}
			if cl.count(stats) == 0 {
				t.Errorf("%s seed %d: fault class never fired: %+v", cl.name, seed, stats)
			}
			if stats.Failed != 0 {
				t.Errorf("%s seed %d: %d delivery failures in a healable run", cl.name, seed, stats.Failed)
			}
		}
	}
}

func TestChaosDeterministicReplay(t *testing.T) {
	// The same seed must inject exactly the same faults: counters and
	// digests identical across runs.
	f := MsgFaults{Seed: 42, Drop: 0.15, Dup: 0.1, Reorder: 0.1, Corrupt: 0.1}
	d1, s1 := chaosTraffic(t, 3, &f)
	d2, s2 := chaosTraffic(t, 3, &f)
	for r := range d1 {
		if math.Float64bits(d1[r]) != math.Float64bits(d2[r]) {
			t.Fatalf("rank %d digests differ across replays", r)
		}
	}
	if s1.Dropped != s2.Dropped || s1.Duplicated != s2.Duplicated ||
		s1.Corrupted != s2.Corrupted || s1.Reordered != s2.Reordered {
		t.Fatalf("injection counters differ across replays: %+v vs %+v", s1, s2)
	}
}

func TestChaosRetransmitHealsDropsAndCorruption(t *testing.T) {
	// Dropped and corrupted attempts must be retransmitted (nonzero
	// retransmit and CRC-reject counters) and duplicates suppressed, all
	// invisible to the application.
	f := MsgFaults{Seed: 7, Drop: 0.25, Corrupt: 0.2, Dup: 0.3}
	_, stats := chaosTraffic(t, 4, &f)
	if stats.Retransmits == 0 {
		t.Errorf("no retransmissions despite 25%% drop: %+v", stats)
	}
	if stats.CRCRejected == 0 {
		t.Errorf("no CRC rejections despite 20%% corruption: %+v", stats)
	}
	if stats.DupSuppressed == 0 {
		t.Errorf("no duplicate suppression despite 30%% duplication: %+v", stats)
	}
}

func TestChaosBudgetExhaustionTypedError(t *testing.T) {
	// A link that drops everything must exhaust the retransmission
	// budget and surface *ErrDeliveryFailed on BOTH endpoints — typed,
	// recovered in the rank bodies, never a hang. (Run wraps rank panics
	// as flat errors, so the typed assertion must happen inside the
	// rank.)
	w := NewWorld(2, ThreadSingle)
	w.SetMsgFaults(&MsgFaults{Seed: 1, Drop: 1.0, MaxRetries: 3, RetryBase: time.Microsecond})
	var mu sync.Mutex
	typed := map[int]*ErrDeliveryFailed{}
	err := w.Run(func(c *Comm) {
		defer func() {
			if p := recover(); p != nil {
				df, ok := AsDeliveryFailure(p)
				if !ok {
					panic(p)
				}
				mu.Lock()
				typed[c.Rank()] = df
				mu.Unlock()
			}
		}()
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			c.Recv(0, 9, buf)
		}
		panic(fmt.Sprintf("rank %d completed over a 100%%-loss link", c.Rank()))
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		df := typed[r]
		if df == nil {
			t.Fatalf("rank %d did not observe a typed delivery failure", r)
		}
		if df.From != 0 || df.To != 1 || df.Tag != 9 || df.Attempts != 4 {
			t.Errorf("rank %d: %+v, want From=0 To=1 Tag=9 Attempts=4", r, df)
		}
	}
	if got := w.NetRelTotals().Failed; got != 1 {
		t.Errorf("Failed counter = %d, want 1", got)
	}
}

func TestChaosDeliveryFailedErrorsAs(t *testing.T) {
	var err error = fmt.Errorf("wrapped: %w", &ErrDeliveryFailed{From: 1, To: 2, Tag: 3, Attempts: 4})
	var df *ErrDeliveryFailed
	if !errors.As(err, &df) || df.To != 2 {
		t.Fatalf("errors.As failed to recover the wrapped delivery failure")
	}
	if got, ok := AsDeliveryFailure(err); !ok || got != df {
		t.Fatalf("AsDeliveryFailure(%v) = %v, %v", err, got, ok)
	}
	if _, ok := AsDeliveryFailure("not an error"); ok {
		t.Fatal("AsDeliveryFailure accepted a non-error")
	}
	if _, ok := AsDeliveryFailure(errors.New("mpi: delivery from rank 0 to rank 1 tag 2 failed after 3 attempts")); ok {
		t.Fatal("AsDeliveryFailure matched by message text")
	}
}

func TestChaosComposesWithNetModel(t *testing.T) {
	// Message faults layered over the calibrated network model: results
	// still bit-identical to the clean eager run, and delay spikes push
	// the modeled clock instead of sleeping.
	const p = 4
	want, _ := chaosTraffic(t, p, nil)
	digests := make([]float64, p)
	w := NewWorld(p, ThreadSingle)
	w.SetNetModel(&NetModel{Params: testParams()})
	w.SetMsgFaults(&MsgFaults{Seed: 5, Drop: 0.15, Reorder: 0.15, DelayProb: 0.3})
	err := w.Run(func(c *Comm) {
		me := c.Rank()
		acc := 0.0
		buf := make([]float64, 8)
		for round := 0; round < 30; round++ {
			to := (me + 1) % p
			from := (me + p - 1) % p
			out := make([]float64, 8)
			for i := range out {
				out[i] = float64(me*1000+round*10+i) * 1.5
			}
			req := c.Irecv(from, round%5, buf)
			c.Send(to, round%5, out)
			_, _, n := req.Wait()
			for _, v := range buf[:n] {
				acc = acc*1.0000001 + v
			}
			if round%7 == 0 {
				c.Barrier()
			}
		}
		sum := []float64{acc}
		got := make([]float64, 1)
		c.Allreduce(OpSum, sum, got)
		root := []float64{0}
		if me == 0 {
			root[0] = got[0] * 0.5
		}
		c.Bcast(0, root)
		digests[me] = acc + got[0] + root[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range digests {
		if math.Float64bits(digests[r]) != math.Float64bits(want[r]) {
			t.Errorf("rank %d: modeled+chaotic digest differs from clean eager run", r)
		}
	}
	if stats := w.NetRelTotals(); stats.Injected() == 0 {
		t.Errorf("no faults injected under the model: %+v", stats)
	}
}

func TestChaosRankFailurePreemptsRetry(t *testing.T) {
	// A send retransmitting toward a rank that dies must stop with the
	// usual typed rank failure, not spin out its whole retry budget
	// against a corpse.
	plan := &FaultPlan{
		Msg: &MsgFaults{Seed: 3, Drop: 1.0, MaxRetries: 1 << 20, RetryBase: 20 * time.Microsecond},
	}
	done := make(chan *ErrRankFailed, 1)
	err := RunWithFaults(2, ThreadSingle, plan, func(c *Comm) {
		if c.Rank() == 0 {
			rf := recoverFailure(func() {
				c.Send(1, 4, []float64{1}) // retransmits until rank 1 dies
			})
			done <- rf
		} else {
			time.Sleep(5 * time.Millisecond)
			c.Fail()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rf := <-done
	if rf == nil || rf.Rank != 1 {
		t.Fatalf("sender got %v, want typed failure of rank 1", rf)
	}
}

func TestChaosCollectivesUnderFaults(t *testing.T) {
	// The tree collectives route through the same transport; a lossy
	// link must not perturb any of them (Barrier's empty payload
	// included — frames with no bits to flip).
	const p = 8
	for _, seed := range []int64{11, 12, 13} {
		w := NewWorld(p, ThreadSingle)
		w.SetMsgFaults(&MsgFaults{Seed: seed, Drop: 0.2, Dup: 0.2, Reorder: 0.2, Corrupt: 0.2})
		sums := make([]float64, p)
		err := w.Run(func(c *Comm) {
			me := c.Rank()
			c.Barrier()
			in := []float64{float64(me + 1), float64(me * me)}
			out := make([]float64, 2)
			c.Allreduce(OpSum, in, out)
			buf := []float64{0}
			if me == 2 {
				buf[0] = out[0] * out[1]
			}
			c.Bcast(2, buf)
			c.Barrier()
			sums[me] = out[0] + out[1] + buf[0]
		})
		if err != nil {
			t.Fatal(err)
		}
		want := sums[0]
		for r, s := range sums {
			if math.Float64bits(s) != math.Float64bits(want) {
				t.Errorf("seed %d: rank %d collective result differs", seed, r)
			}
		}
	}
}

func TestChaosProbeSeesPoisonedEnvelope(t *testing.T) {
	// A Probe blocked on a message whose delivery budget was exhausted
	// must panic with the typed error, never hang.
	w := NewWorld(2, ThreadSingle)
	w.SetMsgFaults(&MsgFaults{Seed: 2, Drop: 1.0, MaxRetries: 2, RetryBase: time.Microsecond})
	var mu sync.Mutex
	typed := map[int]bool{}
	err := w.Run(func(c *Comm) {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := AsDeliveryFailure(p); ok {
					mu.Lock()
					typed[c.Rank()] = true
					mu.Unlock()
					return
				}
				panic(p)
			}
		}()
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{9})
		} else {
			c.Probe(0, 5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !typed[0] || !typed[1] {
		t.Fatalf("typed failures seen = %v, want both ranks", typed)
	}
}
