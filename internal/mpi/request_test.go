package mpi

import (
	"testing"
	"time"
)

// TestWaitallVariadic: the variadic Waitall completes a mixed set of
// send and receive requests passed as individual arguments and as a
// spread slice, interleaved with nils.
func TestWaitallVariadic(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		other := 1 - c.Rank()
		a := make([]float64, 2)
		b := make([]float64, 2)
		ra := c.Irecv(other, 1, a)
		rb := c.Irecv(other, 2, b)
		s1 := c.Isend(other, 1, []float64{1, float64(c.Rank())})
		s2 := c.Isend(other, 2, []float64{2, float64(c.Rank())})
		Waitall(ra, nil, rb, s1, s2)
		if a[0] != 1 || a[1] != float64(other) || b[0] != 2 || b[1] != float64(other) {
			t.Errorf("rank %d received a=%v b=%v", c.Rank(), a, b)
		}
		reqs := []*Request{c.Irecv(other, 3, a), c.Isend(other, 3, []float64{3, 3})}
		Waitall(reqs...)
		if a[0] != 3 {
			t.Errorf("rank %d spread-form Waitall left a=%v", c.Rank(), a)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRequestTestPoll: Test must report false while the matching
// message has genuinely not been sent, flip to true after it arrives,
// and stay non-blocking throughout — the poll the split-phase overlap
// handle leans on.
func TestRequestTestPoll(t *testing.T) {
	release := make(chan struct{})
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			buf := make([]float64, 1)
			req := c.Irecv(1, 7, buf)
			if req.Test() {
				t.Error("Test reported completion before the sender was released")
			}
			close(release)
			for !req.Test() {
				time.Sleep(time.Microsecond)
			}
			// A completed Test means Wait returns immediately with the data.
			if _, _, n := req.Wait(); n != 1 || buf[0] != 42 {
				t.Errorf("after Test: n=%d buf=%v", n, buf)
			}
		} else {
			<-release
			c.Send(0, 7, []float64{42})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTestall covers the aggregate poll: false while any request is
// outstanding, true once all completed, nil entries ignored.
func TestTestall(t *testing.T) {
	release := make(chan struct{})
	err := Run(2, ThreadSingle, func(c *Comm) {
		if c.Rank() == 0 {
			a := make([]float64, 1)
			b := make([]float64, 1)
			r1 := c.Irecv(1, 1, a)
			r2 := c.Irecv(1, 2, b)
			if Testall(r1, nil, r2) {
				t.Error("Testall true with both receives outstanding")
			}
			close(release)
			for !Testall(r1, nil, r2) {
				time.Sleep(time.Microsecond)
			}
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("Testall-completed receives hold %v %v", a, b)
			}
		} else {
			<-release
			c.Send(0, 1, []float64{1})
			c.Send(0, 2, []float64{2})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !Testall() {
		t.Error("empty Testall should be true")
	}
}

// TestReclaimReusesRequests: reclaimed requests come back out of the
// world pool and behave like fresh ones; the message data stays correct
// across many reuse generations.
func TestReclaimReusesRequests(t *testing.T) {
	err := Run(2, ThreadSingle, func(c *Comm) {
		other := 1 - c.Rank()
		buf := make([]float64, 1)
		for i := 0; i < 200; i++ {
			req := c.Irecv(other, 5, buf)
			c.Send(other, 5, []float64{float64(i)})
			if _, _, n := req.Wait(); n != 1 || buf[0] != float64(i) {
				t.Errorf("rank %d iter %d: n=%d buf=%v", c.Rank(), i, n, buf)
			}
			Reclaim(req)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	Reclaim(nil) // nil entries are ignored
}

// TestReclaimedRecvIsAllocationFree pins the transport fast path the
// overlapped halo exchange relies on: with the receive posted before
// the send and requests reclaimed after Wait, a steady-state
// post/send/wait cycle performs no allocation at all — no envelope, no
// request, no pending-receive bookkeeping.
func TestReclaimedRecvIsAllocationFree(t *testing.T) {
	err := Run(1, ThreadSingle, func(c *Comm) {
		buf := make([]float64, 8)
		data := make([]float64, 8)
		// Warm the request pool and the mailbox slices.
		for i := 0; i < 4; i++ {
			req := c.Irecv(0, 3, buf)
			c.Send(0, 3, data)
			req.Wait()
			Reclaim(req)
		}
		allocs := testing.AllocsPerRun(200, func() {
			req := c.Irecv(0, 3, buf)
			c.Send(0, 3, data)
			req.Wait()
			Reclaim(req)
		})
		if allocs != 0 {
			t.Errorf("steady-state posted-recv cycle allocates %.1f objects/op, want 0", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
