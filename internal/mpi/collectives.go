package mpi

import (
	"fmt"

	"repro/internal/trace"
)

// Collectives are implemented over point-to-point messages with reserved
// negative tags derived from the communicator's context id and a per-rank
// collective sequence number. MPI requires every rank of a communicator to
// invoke collectives in the same order, so local counters agree across
// ranks and successive collectives on one communicator can never
// cross-match; the context id keeps collectives on *different*
// communicators that share ranks (e.g. a band communicator and the world
// it was split from) in disjoint tag spaces. Sequence numbers wrap, which
// is safe because matching is FIFO per (source, tag): a wrapped tag can
// only collide with a message the receiver must consume first anyway.

// collTag returns the reserved tag for the n-th collective call on this
// communicator.
func (c *Comm) collTag(seq uint64) int {
	return -2 - int(seq%(1<<16)) - int(c.ctx%(1<<31))<<16
}

// Op is a reduction operator for Reduce/Allreduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) apply(dst, src []float64) {
	switch o {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown reduction op %d", o))
	}
}

// Barrier blocks until every rank of the communicator has entered it.
// Implemented as a dissemination barrier over point-to-point messages.
func (c *Comm) Barrier() {
	c.enter()
	defer c.exit()
	if rk := c.traceRank(); rk != nil {
		defer rk.BeginComm("mpi.barrier", trace.KindCollective, -1, -1, 0).End()
	}
	tag := c.collTag(c.coll)
	c.coll++
	p := len(c.group)
	if p == 1 {
		return
	}
	var token [1]float64
	for round := 1; round < p; round *= 2 {
		to := (c.rank + round) % p
		from := (c.rank - round + p) % p
		req := c.irecv(from, tag, token[:])
		c.sendInternal(to, tag, token[:0])
		req.Wait()
	}
}

// Bcast copies buf from root to every rank (binomial tree). All ranks
// must pass equal-length buffers.
func (c *Comm) Bcast(root int, buf []float64) {
	c.enter()
	defer c.exit()
	if rk := c.traceRank(); rk != nil {
		defer rk.BeginComm("mpi.bcast", trace.KindCollective, c.worldRank(root), -1, int64(len(buf))*8).End()
	}
	tag := c.collTag(c.coll)
	c.coll++
	p := len(c.group)
	if p == 1 {
		return
	}
	// Rotate so the root is virtual rank 0.
	vrank := (c.rank - root + p) % p
	if vrank != 0 {
		// Receive from parent.
		mask := 1
		for mask < p {
			if vrank&mask != 0 {
				parent := ((vrank - mask) + root) % p
				c.irecv(parent, tag, buf).Wait()
				break
			}
			mask <<= 1
		}
		// Forward to children below the found mask.
		for child := mask >> 1; child > 0; child >>= 1 {
			v := vrank | child
			if v < p && v != vrank {
				c.sendInternal((v+root)%p, tag, buf)
			}
		}
	} else {
		mask := 1
		for mask < p {
			mask <<= 1
		}
		for child := mask >> 1; child > 0; child >>= 1 {
			if child < p {
				c.sendInternal((child+root)%p, tag, buf)
			}
		}
	}
}

// Reduce combines each rank's contribution into out at root using op.
// Contributions are always folded in ascending rank order, so
// floating-point results are deterministic run to run. out is only
// written at root and must be as long as in there; in and out must not
// alias.
func (c *Comm) Reduce(root int, op Op, in, out []float64) {
	c.enter()
	defer c.exit()
	if rk := c.traceRank(); rk != nil {
		defer rk.BeginComm("mpi.reduce", trace.KindCollective, c.worldRank(root), -1, int64(len(in))*8).End()
	}
	tag := c.collTag(c.coll)
	c.coll++
	if c.rank != root {
		c.sendInternal(root, tag, in)
		return
	}
	if len(out) < len(in) {
		panic("mpi: Reduce output shorter than input")
	}
	parts := make([][]float64, len(c.group))
	parts[root] = append([]float64(nil), in...)
	for r := 0; r < len(c.group); r++ {
		if r == root {
			continue
		}
		buf := make([]float64, len(in))
		c.irecv(r, tag, buf).Wait()
		parts[r] = buf
	}
	acc := out[:len(in)]
	copy(acc, parts[0])
	for r := 1; r < len(c.group); r++ {
		op.apply(acc, parts[r])
	}
}

// ReduceFunc folds every rank's contribution into out at root with a
// caller-supplied merge function, always applied in ascending rank
// order: merge(acc, contribution of rank r) for r = 0, 1, ... The rank
// order is independent of message arrival order, so a merge whose
// operation is deterministic produces deterministic results run to run
// regardless of scheduling — the property the solver stack's exact
// accumulator reductions (internal/detsum) are built on. out is only
// written at root; in and out must not alias.
func (c *Comm) ReduceFunc(root int, in, out []float64, merge func(acc, contrib []float64)) {
	c.enter()
	defer c.exit()
	if rk := c.traceRank(); rk != nil {
		defer rk.BeginComm("mpi.reduce", trace.KindCollective, c.worldRank(root), -1, int64(len(in))*8).End()
	}
	tag := c.collTag(c.coll)
	c.coll++
	if c.rank != root {
		c.sendInternal(root, tag, in)
		return
	}
	if len(out) < len(in) {
		panic("mpi: ReduceFunc output shorter than input")
	}
	parts := make([][]float64, len(c.group))
	parts[root] = in
	for r := 0; r < len(c.group); r++ {
		if r == root {
			continue
		}
		buf := make([]float64, len(in))
		c.irecv(r, tag, buf).Wait()
		parts[r] = buf
	}
	acc := out[:len(in)]
	copy(acc, parts[0])
	for r := 1; r < len(c.group); r++ {
		merge(acc, parts[r])
	}
}

// AllreduceFunc is ReduceFunc to rank 0 followed by a broadcast of the
// merged result to every rank.
func (c *Comm) AllreduceFunc(in, out []float64, merge func(acc, contrib []float64)) {
	if len(out) < len(in) {
		panic("mpi: AllreduceFunc output shorter than input")
	}
	if rk := c.traceRank(); rk != nil {
		defer rk.BeginComm("mpi.allreduce", trace.KindCollective, -1, -1, int64(len(in))*8).End()
	}
	c.ReduceFunc(0, in, out, merge)
	c.Bcast(0, out[:len(in)])
}

// Allreduce combines every rank's contribution with op and distributes
// the result to all ranks (Reduce to rank 0 + Bcast).
func (c *Comm) Allreduce(op Op, in, out []float64) {
	if len(out) < len(in) {
		panic("mpi: Allreduce output shorter than input")
	}
	if rk := c.traceRank(); rk != nil {
		defer rk.BeginComm("mpi.allreduce", trace.KindCollective, -1, -1, int64(len(in))*8).End()
	}
	c.Reduce(0, op, in, out)
	c.Bcast(0, out[:len(in)])
}

// AllreduceSum is a convenience wrapper reducing a single value.
func (c *Comm) AllreduceSum(v float64) float64 {
	in := [1]float64{v}
	var out [1]float64
	c.Allreduce(OpSum, in[:], out[:])
	return out[0]
}

// Gather collects each rank's equal-length contribution at root, laid out
// in rank order. out must be len(in)*Size() at root; it is ignored
// elsewhere.
func (c *Comm) Gather(root int, in, out []float64) {
	c.enter()
	defer c.exit()
	if rk := c.traceRank(); rk != nil {
		defer rk.BeginComm("mpi.gather", trace.KindCollective, c.worldRank(root), -1, int64(len(in))*8).End()
	}
	tag := c.collTag(c.coll)
	c.coll++
	if c.rank == root {
		if len(out) < len(in)*len(c.group) {
			panic("mpi: Gather output too short")
		}
		copy(out[root*len(in):], in)
		for r := 0; r < len(c.group); r++ {
			if r == root {
				continue
			}
			c.irecv(r, tag, out[r*len(in):(r+1)*len(in)]).Wait()
		}
		return
	}
	c.sendInternal(root, tag, in)
}

// Allgather is Gather to rank 0 followed by Bcast of the concatenation.
func (c *Comm) Allgather(in, out []float64) {
	if len(out) < len(in)*len(c.group) {
		panic("mpi: Allgather output too short")
	}
	if rk := c.traceRank(); rk != nil {
		defer rk.BeginComm("mpi.allgather", trace.KindCollective, -1, -1, int64(len(in))*8).End()
	}
	c.Gather(0, in, out)
	c.Bcast(0, out[:len(in)*len(c.group)])
}

// Split partitions the communicator by color, ordering the new ranks by
// key then by old rank (MPI_Comm_split). Every rank must call it; ranks
// with the same color end up in the same new communicator. A negative
// color plays the role of MPI_UNDEFINED: the rank participates in the
// exchange but joins no new communicator and receives nil.
//
// The child communicator's context id is derived deterministically from
// (parent context, parent split count, index of the color among the
// sorted distinct non-negative colors), so every member computes the
// same id locally and collectives on sibling or nested communicators
// occupy disjoint tag spaces. The encoding packs 8 bits of split count
// and 8 bits of color index per level, which is collision-free for the
// shallow communicator trees the solver stack builds (world -> domain /
// band -> process-grid row/column).
func (c *Comm) Split(color, key int) *Comm {
	// Exchange (color, key) pairs via Allgather.
	in := []float64{float64(color), float64(key)}
	out := make([]float64, 2*len(c.group))
	c.Allgather(in, out)
	c.splits++
	if color < 0 {
		return nil
	}
	// Index of my color among the sorted distinct non-negative colors:
	// every rank sees the same allgathered pairs, so the index — and the
	// derived context — agree across the new communicator's members.
	colorIndex := 0
	seen := map[int]bool{}
	for r := 0; r < len(c.group); r++ {
		col := int(out[2*r])
		if col >= 0 && col < color && !seen[col] {
			seen[col] = true
			colorIndex++
		}
	}
	ctx := c.ctx*(1<<16) + (c.splits%(1<<8))*(1<<8) + uint64(colorIndex+1)%(1<<8)
	type member struct{ color, key, oldRank int }
	var mine []member
	for r := 0; r < len(c.group); r++ {
		col := int(out[2*r])
		if col != color {
			continue
		}
		mine = append(mine, member{col, int(out[2*r+1]), r})
	}
	// Sort by (key, oldRank) — insertion sort; communicators are small.
	for i := 1; i < len(mine); i++ {
		for j := i; j > 0 && (mine[j].key < mine[j-1].key ||
			(mine[j].key == mine[j-1].key && mine[j].oldRank < mine[j-1].oldRank)); j-- {
			mine[j], mine[j-1] = mine[j-1], mine[j]
		}
	}
	group := make([]int, len(mine))
	newRank := -1
	for i, m := range mine {
		group[i] = c.group[m.oldRank]
		if m.oldRank == c.rank {
			newRank = i
		}
	}
	return &Comm{world: c.world, rank: newRank, group: group, active: c.active, ctx: ctx, epoch: c.epoch}
}
