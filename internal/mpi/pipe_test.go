package mpi

import "testing"

// TestPipeOrdering drives a 4-stage pipeline: each rank receives a
// sequence of "planes" from upstream, transforms them, and streams them
// downstream. FIFO per (source, tag) must deliver every plane in order
// even though all sends are eager and far ahead of the receives.
func TestPipeOrdering(t *testing.T) {
	const ranks = 4
	const planes = 32
	err := Run(ranks, ThreadSingle, func(c *Comm) {
		up, dn := c.Rank()-1, c.Rank()+1
		if up < 0 {
			up = ProcNull
		}
		if dn >= ranks {
			dn = ProcNull
		}
		in := c.NewPipe(up, 7)
		out := c.NewPipe(dn, 7)
		buf := make([]float64, 3)
		for p := 0; p < planes; p++ {
			if up == ProcNull {
				buf[0], buf[1], buf[2] = float64(p), float64(p*p), 0
			} else {
				in.Recv(buf)
				if buf[0] != float64(p) {
					panic("pipe delivered plane out of order")
				}
			}
			buf[2] += float64(c.Rank()) // each stage stamps its work
			out.Send(buf)
		}
		if dn == ProcNull && buf[2] != float64(0+1+2+3) {
			panic("pipeline lost a stage's contribution")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPipeProcNull: edge pipes swallow sends and receives.
func TestPipeProcNull(t *testing.T) {
	err := Run(1, ThreadSingle, func(c *Comm) {
		p := c.NewPipe(ProcNull, 3)
		p.Send([]float64{1})
		buf := []float64{42}
		p.Recv(buf)
		if buf[0] != 42 {
			panic("ProcNull pipe wrote the buffer")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
