package mpi

import "fmt"

// Pipe is an ordered point-to-point lane between this rank and one
// fixed peer: the plumbing of plane-pipelined sweeps, where a rank
// streams boundary planes to its downstream neighbour as it produces
// them and the neighbour consumes them in the same order. Matching is
// FIFO per (source, tag), so the k-th Recv on a pipe always returns the
// peer's k-th Send — no per-plane tag bookkeeping needed.
//
// A pipe with peer ProcNull (the edge of a non-wrapping pipeline) turns
// every operation into a no-op, so sweep code needs no edge branches.
type Pipe struct {
	c    *Comm
	peer int
	tag  int
}

// NewPipe returns a lane to peer using the given (non-negative) tag.
// Both endpoints must construct their pipes with the same tag, and a
// tag must not be shared with unordered traffic between the same pair.
func (c *Comm) NewPipe(peer, tag int) *Pipe {
	if tag < 0 {
		panic(fmt.Sprintf("mpi: negative pipe tag %d", tag))
	}
	return &Pipe{c: c, peer: peer, tag: tag}
}

// Active reports whether the pipe has a real peer (false for the
// ProcNull edge lanes), so callers can skip the pack/unpack around a
// no-op transfer.
func (p *Pipe) Active() bool { return p.peer != ProcNull }

// Send streams data to the peer (eager, never blocks). No-op on a
// ProcNull pipe.
func (p *Pipe) Send(data []float64) {
	if p.peer == ProcNull {
		return
	}
	p.c.Send(p.peer, p.tag, data)
}

// Recv blocks until the peer's next in-order message arrives and copies
// it into buf. No-op on a ProcNull pipe.
func (p *Pipe) Recv(buf []float64) {
	if p.peer == ProcNull {
		return
	}
	p.c.Recv(p.peer, p.tag, buf)
}
