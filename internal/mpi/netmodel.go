package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/topology"
)

// Network model. This file layers a calibrated latency/bandwidth/
// contention model over the eager in-process transport, so the
// distributed solvers and benchmarks pay Blue Gene/P-scale delivery
// costs instead of the near-zero cost of an in-memory copy.
//
// The physical transport is untouched: messages still deliver eagerly,
// matching stays FIFO per (source, tag), and every byte moves exactly
// as before — so solver results are bit-identical with the model on or
// off (the model only reorders time, never data). What the model adds
// is bookkeeping: every rank carries a virtual clock, every message an
// arrival stamp computed from the calibrated bgpsim parameters and the
// torus hop distance between the communicating ranks' node coordinates,
// and every Wait advances the receiver's clock to the stamp. Between
// MPI calls a rank's clock accrues its real (wall) compute time, or —
// for fully deterministic pure-model studies — only the explicit
// charges made through Comm.Compute (NoComputeWall).
//
// Cost of one remote message of n bytes from src to dst, mirroring
// bgpsim.Params.MessageTime:
//
//	sender CPU:  PostCost (+ MultipleLock in MULTIPLE mode)
//	injection:   starts at max(sender clock, sender DMA free time);
//	             the DMA engine serializes a rank's injections, so a
//	             burst of sends (a halo exchange) queues on the link
//	wire:        DMAPerMsg + n / EffLinkBandwidth
//	             (mesh partitions with MeshSharePenalty halve the
//	             bandwidth of >1-hop paths: wrap flows share links)
//	latency:     MsgLatency + (hops-1) * HopLatency
//
// Ranks mapped to the same node coordinate exchange through shared
// memory instead: IntraNodeLatency + n / IntraNodeBandwidth. A rank's
// message to itself (the engine's self-send on undivided dimensions)
// is free — it would not exist on a real machine.
//
// Paced mode converts the virtual delays into real time.Sleep calls so
// wall-clock measurements feel the model too; the world-wide paced
// sleep total is tracked so SetOpTimeout deadlines exclude modeled
// delay (see Request.Wait) and fault-injection timeouts never misfire
// on a slow-but-healthy modeled network.

// NetParams are the delivery-cost constants of the model, all in
// seconds and bytes/s. They mirror the calibrated fields of
// bgpsim.Params (whose NetParams method converts; mpi cannot import
// bgpsim, which sits above internal/core in the dependency order).
type NetParams struct {
	// MsgLatency is the one-way end-to-end latency of a nearest-
	// neighbour message (software + network).
	MsgLatency float64
	// HopLatency is the extra latency per additional torus hop.
	HopLatency float64
	// PostCost is CPU time to post one send or receive.
	PostCost float64
	// MultipleLock is the extra serialized CPU cost per MPI call in
	// MULTIPLE thread mode.
	MultipleLock float64
	// DMAPerMsg is the injection engine's per-message processing time;
	// the engine serializes a rank's injections.
	DMAPerMsg float64
	// LinkBandwidth is the effective per-link payload bandwidth
	// (raw bandwidth times packet efficiency).
	LinkBandwidth float64
	// IntraNodeLatency and IntraNodeBandwidth cost messages between
	// ranks mapped to the same node coordinate (shared memory).
	IntraNodeLatency   float64
	IntraNodeBandwidth float64
	// MeshSharePenalty halves the effective bandwidth of >1-hop paths
	// on mesh (non-torus) partitions, where wrap-around flows share
	// every link of a dimension with pass-through traffic.
	MeshSharePenalty bool
}

// NetModel configures a World's calibrated network model. Install it
// with World.SetNetModel before any traffic, or use RunModeled.
type NetModel struct {
	// Params are the calibrated BG/P cost-model constants (the Figure-2
	// fit; see bgpsim.Params.NetParams).
	Params NetParams
	// Net is the interconnect the ranks are mapped onto (a torus at
	// >= 512 nodes, a mesh below, per topology.PartitionFor).
	Net topology.Network
	// Coords maps each world rank to its node coordinate in Net (see
	// topology.MapGrid / MapBands). nil places every pair of distinct
	// ranks one hop apart.
	Coords []topology.Coord
	// Paced converts virtual delays into real time.Sleep calls, so wall
	// clocks measure the modeled network. The default (false) keeps all
	// delay virtual: the run finishes at memory speed and the modeled
	// times are read back with VirtualTime/MaxVirtualTime.
	Paced bool
	// PaceScale scales paced sleeps (wall seconds per virtual second);
	// 0 means 1. Ignored unless Paced.
	PaceScale float64
	// NoComputeWall disables the wall-clock compute accrual between MPI
	// calls. The virtual clocks then advance only by modeled message
	// costs and explicit Comm.Compute charges, which makes the virtual
	// times fully deterministic — the mode the scaling benchmarks use.
	NoComputeWall bool
}

// rankClock is one rank's model state: its virtual clock, the wall
// stamp of its last MPI-call boundary (for compute accrual) and the
// virtual time its DMA/link injection path is busy until.
type rankClock struct {
	mu       sync.Mutex
	virt     int64 // virtual ns since world start
	lastWall int64 // wall ns (since netBase) of the last MPI boundary; 0 = unstamped
	dmaFree  int64 // virtual ns until which this rank's injection path is busy
}

// SetNetModel arms the world's network model. It must be called before
// any rank communicates; RunModeled does it for you.
func (w *World) SetNetModel(m *NetModel) {
	if m == nil {
		return
	}
	if m.Coords != nil && len(m.Coords) != w.size {
		panic(fmt.Sprintf("mpi: net model maps %d ranks, world has %d", len(m.Coords), w.size))
	}
	w.net = m
	w.clocks = make([]rankClock, w.size)
	w.netBase = time.Now()
	w.netOn.Store(true)
}

// NetConfig returns a copy of the installed network model and whether
// one is armed.
func (w *World) NetConfig() (NetModel, bool) {
	if !w.netOn.Load() {
		return NetModel{}, false
	}
	return *w.net, true
}

// VirtualTime returns a world rank's modeled elapsed time.
func (w *World) VirtualTime(rank int) time.Duration {
	if !w.netOn.Load() {
		return 0
	}
	ck := &w.clocks[rank]
	ck.mu.Lock()
	v := ck.virt
	ck.mu.Unlock()
	return time.Duration(v)
}

// MaxVirtualTime returns the slowest rank's modeled elapsed time — the
// modeled makespan of the run so far.
func (w *World) MaxVirtualTime() time.Duration {
	var max time.Duration
	for r := 0; r < w.size; r++ {
		if v := w.VirtualTime(r); v > max {
			max = v
		}
	}
	return max
}

// RunModeled is Run with a network model armed on the world; it returns
// the modeled makespan (the slowest rank's virtual clock) alongside
// Run's error.
func RunModeled(n int, mode ThreadMode, m *NetModel, body func(c *Comm)) (time.Duration, error) {
	w := NewWorld(n, mode)
	w.SetNetModel(m)
	err := w.runRanks(body)
	return w.MaxVirtualTime(), err
}

// nowNs returns wall ns since the model was armed (monotonic).
func (w *World) nowNs() int64 { return int64(time.Since(w.netBase)) }

// netEnter marks an MPI-call boundary: the wall time the rank spent
// outside the library since the last boundary is accrued to its virtual
// clock as compute (unless NoComputeWall). Every MPI entry point calls
// it, and Wait/Test call it themselves so time spent blocked inside the
// library is never mistaken for compute.
func (w *World) netEnter(rank int) {
	now := w.nowNs()
	ck := &w.clocks[rank]
	ck.mu.Lock()
	if ck.lastWall != 0 && !w.net.NoComputeWall {
		ck.virt += now - ck.lastWall
	}
	ck.lastWall = now
	ck.mu.Unlock()
}

// netExit stamps the boundary on the way out of the library, so the
// next netEnter accrues only genuine outside-the-library time.
func (w *World) netExit(rank int) {
	now := w.nowNs()
	ck := &w.clocks[rank]
	ck.mu.Lock()
	ck.lastWall = now
	ck.mu.Unlock()
}

// secNs converts model seconds to integer virtual ns.
func secNs(s float64) int64 { return int64(s * 1e9) }

// sendCost charges the sender's CPU and injection path for one message
// of elems float64 values to world rank dst and returns the virtual
// arrival time at the receiver (0 for a free self-send; the zero
// sentinel is unambiguous because any remote arrival is preceded by a
// positive PostCost charge).
func (w *World) sendCost(src, dst, elems int) int64 {
	m := w.net
	p := &m.Params
	if src == dst {
		return 0 // local self-send: no network on a real machine
	}
	bytes := int64(elems) * 8
	post := secNs(p.PostCost)
	if w.mode == ThreadMultiple {
		post += secNs(p.MultipleLock)
	}
	hops := 1
	sameNode := false
	if m.Coords != nil {
		a, b := m.Coords[src], m.Coords[dst]
		if a == b {
			sameNode = true
		} else {
			hops = m.Net.Hops(a, b)
			if hops < 1 {
				hops = 1
			}
		}
	}
	ck := &w.clocks[src]
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.virt += post
	if sameNode {
		// Shared-memory transfer between co-located ranks: no DMA, no
		// link contention.
		return ck.virt + secNs(p.IntraNodeLatency+float64(bytes)/p.IntraNodeBandwidth)
	}
	inj := ck.virt
	if ck.dmaFree > inj {
		inj = ck.dmaFree
	}
	bw := p.LinkBandwidth
	if p.MeshSharePenalty && !m.Net.Torus && hops > 1 {
		// Mesh partitions: multi-hop paths share links with pass-through
		// traffic (section V of the paper), halving effective bandwidth.
		bw /= 2
	}
	wire := secNs(p.DMAPerMsg + float64(bytes)/bw)
	ck.dmaFree = inj + wire
	return inj + wire + secNs(p.MsgLatency+float64(hops-1)*p.HopLatency)
}

// chargePost charges a rank's CPU for posting a receive.
func (w *World) chargePost(rank int) {
	p := &w.net.Params
	post := secNs(p.PostCost)
	if w.mode == ThreadMultiple {
		post += secNs(p.MultipleLock)
	}
	ck := &w.clocks[rank]
	ck.mu.Lock()
	ck.virt += post
	ck.mu.Unlock()
}

// advanceTo jumps a rank's virtual clock forward to a message's arrival
// stamp (no-op if the clock is already past it: the delivery was hidden
// behind compute). In paced mode the jump is also slept in wall time,
// with the slept total recorded so operation timeouts can exclude it.
func (w *World) advanceTo(rank int, arrive int64) {
	if arrive == 0 {
		return
	}
	ck := &w.clocks[rank]
	ck.mu.Lock()
	d := arrive - ck.virt
	if d <= 0 {
		ck.mu.Unlock()
		return
	}
	ck.virt = arrive
	ck.mu.Unlock()
	w.paceSleep(d)
}

// virtReached reports whether a rank's clock has caught up with an
// arrival stamp — the honest-overlap gate Request.Test applies to
// physically-delivered messages.
func (w *World) virtReached(rank int, arrive int64) bool {
	if arrive == 0 {
		return true
	}
	ck := &w.clocks[rank]
	ck.mu.Lock()
	v := ck.virt
	ck.mu.Unlock()
	return v >= arrive
}

// paceSleep sleeps d virtual ns of modeled delay in wall time when the
// model is paced. The slept total is added to pacedNs *before* the
// sleep so a concurrently-blocked Wait extends its timeout deadline
// first and can never misfire while the delay is being served.
func (w *World) paceSleep(d int64) {
	if !w.net.Paced || d <= 0 {
		return
	}
	scale := w.net.PaceScale
	if scale <= 0 {
		scale = 1
	}
	sleep := time.Duration(float64(d) * scale)
	if sleep <= 0 {
		return
	}
	w.pacedNs.Add(int64(sleep))
	w.pacing.Add(1)
	time.Sleep(sleep)
	w.pacing.Add(-1)
}

// Compute charges d of modeled compute to the calling rank's virtual
// clock (and sleeps it in paced mode). With NoComputeWall this is the
// only way compute enters the model; internal/gpaw's NetCompute option
// charges the per-point stencil cost of every fused sweep through it.
// No-op when no model is armed.
func (c *Comm) Compute(d time.Duration) {
	w := c.world
	if d <= 0 || !w.netOn.Load() {
		return
	}
	ck := &w.clocks[c.group[c.rank]]
	ck.mu.Lock()
	ck.virt += int64(d)
	ck.mu.Unlock()
	w.paceSleep(int64(d))
}
