package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/stencil"
	"repro/internal/topology"
)

// Job describes a complete distributed finite-difference run on the real
// in-process runtime: the workload (grids), the machine layout (cores,
// threads per node) and the programming approach.
type Job struct {
	Global     topology.Dims // real-space grid extents (e.g. 144^3)
	NumGrids   int           // number of real-space grids (wave-functions)
	Radius     int           // stencil radius (2 for the paper's operator)
	Spacing    float64       // grid spacing h
	Periodic   bool          // periodic boundary condition
	Cores      int           // total CPU cores
	Threads    int           // cores per node (4 on Blue Gene/P)
	Approach   Approach
	BatchSize  int
	BatchRamp  bool
	Iterations int // applications of the operator to every grid
}

// Procs returns the number of MPI processes the job uses: one per core
// for flat approaches, one per node for hybrid ones.
func (j Job) Procs() (int, error) {
	if j.Cores < 1 {
		return 0, fmt.Errorf("core: %d cores", j.Cores)
	}
	if !j.Approach.Hybrid() {
		return j.Cores, nil
	}
	if j.Threads < 1 {
		return 0, fmt.Errorf("core: %d threads per node", j.Threads)
	}
	if j.Cores%j.Threads != 0 {
		return 0, fmt.Errorf("core: %d cores not divisible by %d threads/node", j.Cores, j.Threads)
	}
	return j.Cores / j.Threads, nil
}

// Result reports a finished job.
type Result struct {
	Wall     time.Duration
	Stats    Stats // summed over all ranks
	ProcGrid topology.Dims
	Output   *grid.Set // gathered global grids; nil unless requested
}

// TestField is the deterministic initial condition used for verification
// and benchmarks: a smooth, per-grid-distinct function of the global
// coordinates, so any decomposition must reproduce identical values.
func TestField(g, x, y, z int) float64 {
	return math.Sin(0.10*float64(x)+0.05*float64(g)) +
		math.Cos(0.07*float64(y)-0.03*float64(g)) +
		math.Sin(0.13*float64(z)) +
		0.25*math.Cos(0.11*float64(x+y+z))
}

// Run executes the job on the in-process runtime and returns timing,
// aggregated communication statistics and, if gather is true, the global
// result grids assembled on rank 0.
func (j Job) Run(gather bool) (*Result, error) {
	procs, err := j.Procs()
	if err != nil {
		return nil, err
	}
	if j.NumGrids < 1 {
		return nil, fmt.Errorf("core: %d grids", j.NumGrids)
	}
	if j.Iterations < 1 {
		j.Iterations = 1
	}
	op := stencil.Laplacian(j.Radius, j.Spacing)
	procGrid := topology.DecomposeGrid(procs, j.Global)
	decomp, err := grid.NewDecomp(j.Global, procGrid, j.Radius)
	if err != nil {
		return nil, err
	}
	opts := OptionsFor(j.Approach, j.BatchSize, j.Threads)
	opts.BatchRamp = j.BatchRamp

	mode := mpi.ThreadSingle
	if j.Approach == HybridMultiple {
		mode = mpi.ThreadMultiple
	}
	periodic := [3]bool{j.Periodic, j.Periodic, j.Periodic}

	res := &Result{ProcGrid: procGrid}
	if gather {
		res.Output = &grid.Set{Grids: make([]*grid.Grid, j.NumGrids)}
	}
	runErr := mpi.Run(procs, mode, func(c *mpi.Comm) {
		cart := c.CartCreate(procGrid, periodic, true)
		eng, err := NewEngine(cart, decomp, op, j.Periodic, opts)
		if err != nil {
			panic(err)
		}
		defer eng.Close()
		coord := eng.Coord()
		off := decomp.Offset(coord)

		src := make([]*grid.Grid, j.NumGrids)
		dst := make([]*grid.Grid, j.NumGrids)
		for g := range src {
			src[g] = eng.NewLocalGrid()
			dst[g] = eng.NewLocalGrid()
			g := g
			src[g].FillFunc(func(i, k, l int) float64 {
				return TestField(g, off[0]+i, off[1]+k, off[2]+l)
			})
		}

		c.Barrier()
		start := time.Now()
		for it := 0; it < j.Iterations; it++ {
			eng.Apply(j.Approach, dst, src)
			src, dst = dst, src
		}
		c.Barrier()
		if c.Rank() == 0 {
			res.Wall = time.Since(start)
		}

		// Aggregate statistics.
		st := eng.Stats()
		in := []float64{
			float64(st.MessagesSent), float64(st.BytesSent),
			float64(st.LargestMsg), float64(st.Exchanges),
		}
		out := make([]float64, len(in))
		c.Reduce(0, mpi.OpSum, in[:2], out[:2])
		c.Reduce(0, mpi.OpMax, in[2:3], out[2:3])
		c.Reduce(0, mpi.OpSum, in[3:4], out[3:4])
		if c.Rank() == 0 {
			res.Stats = Stats{
				MessagesSent: int64(out[0]),
				BytesSent:    int64(out[1]),
				LargestMsg:   int64(out[2]),
				Exchanges:    int64(out[3]),
			}
		}

		if !gather {
			return
		}
		// Assemble global grids on rank 0. Tags: grid index.
		if c.Rank() == 0 {
			for g := 0; g < j.NumGrids; g++ {
				global := grid.NewDims(j.Global, 0)
				// Rank 0's own part.
				decomp.Gather(global, coord, src[g])
				buf := make([]float64, maxLocalPoints(decomp))
				for r := 1; r < procs; r++ {
					rc := procGrid.Coord(r)
					n := decomp.LocalDims(rc).Count()
					c.Recv(r, g, buf[:n])
					lg := grid.NewDims(decomp.LocalDims(rc), 0)
					lg.SetInterior(buf[:n])
					decomp.Gather(global, rc, lg)
				}
				res.Output.Grids[g] = global
			}
		} else {
			for g := 0; g < j.NumGrids; g++ {
				c.Send(0, g, src[g].InteriorSlice())
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// maxLocalPoints returns the largest sub-domain point count in the
// decomposition.
func maxLocalPoints(d *grid.Decomp) int {
	max := 0
	for r := 0; r < d.NumProcs(); r++ {
		if n := d.LocalDims(d.Procs.Coord(r)).Count(); n > max {
			max = n
		}
	}
	return max
}

// Sequential computes the job's reference result on a single process
// with direct periodic (or Dirichlet) halo fills — the ground truth all
// approaches must match bitwise.
func (j Job) Sequential() *grid.Set {
	op := stencil.Laplacian(j.Radius, j.Spacing)
	iters := j.Iterations
	if iters < 1 {
		iters = 1
	}
	set := grid.NewSet(j.NumGrids, j.Global, j.Radius)
	set.FillSeparable(func(g, x, y, z int) float64 { return TestField(g, x, y, z) })
	dst := grid.NewSet(j.NumGrids, j.Global, j.Radius)
	srcs, dsts := set.Grids, dst.Grids
	for it := 0; it < iters; it++ {
		for g := range srcs {
			if j.Periodic {
				op.ApplyPeriodicReference(dsts[g], srcs[g])
			} else {
				op.ApplyZeroReference(dsts[g], srcs[g])
			}
		}
		srcs, dsts = dsts, srcs
	}
	return &grid.Set{Grids: srcs}
}

// Verify runs the job with gathering and compares against the sequential
// reference, returning the maximum absolute deviation (0 for a correct
// engine) plus the run result.
func (j Job) Verify() (float64, *Result, error) {
	res, err := j.Run(true)
	if err != nil {
		return 0, nil, err
	}
	want := j.Sequential()
	return res.Output.MaxAbsDiff(want), res, nil
}
