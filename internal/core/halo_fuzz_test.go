package core

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/stencil"
	"repro/internal/topology"
)

// Property/fuzz test for the halo exchange: random grid extents, halo
// widths, rank counts, process-grid shapes, boundary conditions and
// protocol options must all round-trip PackFace/exchange/UnpackHalo
// against a direct global-index oracle.

// encode gives every (grid, global point) a unique, exactly
// representable value.
func encode(g, gi, gj, gk int) float64 {
	return float64(g)*1e7 + float64(gi)*1e4 + float64(gj)*1e2 + float64(gk)
}

// feasibleLayouts enumerates process grids of total size p that keep
// every sub-domain at least halo thick.
func feasibleLayouts(p int, global topology.Dims, halo int) []topology.Dims {
	var out []topology.Dims
	for x := 1; x <= p; x++ {
		if p%x != 0 {
			continue
		}
		rest := p / x
		for y := 1; y <= rest; y++ {
			if rest%y != 0 {
				continue
			}
			procs := topology.Dims{x, y, rest / y}
			if _, err := grid.NewDecomp(global, procs, halo); err == nil {
				out = append(out, procs)
			}
		}
	}
	return out
}

func TestHaloExchangeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		halo := 1 + rng.Intn(3)
		global := topology.Dims{
			2*halo + rng.Intn(10),
			2*halo + rng.Intn(10),
			2*halo + rng.Intn(10),
		}
		p := []int{1, 2, 4, 8}[rng.Intn(4)]
		layouts := feasibleLayouts(p, global, halo)
		if len(layouts) == 0 {
			continue
		}
		procs := layouts[rng.Intn(len(layouts))]
		periodic := rng.Intn(2) == 0
		nGrids := 1 + rng.Intn(3)
		opts := Options{
			Exchange:     ExchangeMode(rng.Intn(2)),
			DoubleBuffer: rng.Intn(2) == 0,
			BatchSize:    1 + rng.Intn(3),
			BatchRamp:    rng.Intn(2) == 0,
			Threads:      1,
		}
		op := stencil.Laplacian(halo, 1)
		dec := grid.MustDecomp(global, procs, halo)

		// The oracle: the value a halo cell must hold after exchange.
		oracle := func(g int, c [3]int) (float64, bool) {
			for d := 0; d < 3; d++ {
				if c[d] < 0 || c[d] >= global[d] {
					if !periodic {
						return 0, true // Dirichlet edge: halos stay zero
					}
					c[d] = ((c[d] % global[d]) + global[d]) % global[d]
				}
			}
			return encode(g, c[0], c[1], c[2]), false
		}

		err := mpi.Run(procs.Count(), mpi.ThreadSingle, func(c *mpi.Comm) {
			cart := c.CartCreate(procs, [3]bool{periodic, periodic, periodic}, true)
			eng, err := NewEngine(cart, dec, op, periodic, opts)
			if err != nil {
				panic(err)
			}
			defer eng.Close()
			off := dec.Offset(eng.Coord())
			gs := make([]*grid.Grid, nGrids)
			for g := range gs {
				gs[g] = eng.NewLocalGrid()
				g := g
				gs[g].FillFunc(func(i, j, k int) float64 {
					return encode(g, off[0]+i, off[1]+j, off[2]+k)
				})
			}
			eng.Exchange(gs)
			ld := dec.LocalDims(eng.Coord())
			for g, lg := range gs {
				// Interior must be untouched.
				for i := 0; i < ld[0]; i++ {
					for j := 0; j < ld[1]; j++ {
						for k := 0; k < ld[2]; k++ {
							want := encode(g, off[0]+i, off[1]+j, off[2]+k)
							if got := lg.At(i, j, k); got != want {
								t.Errorf("trial %d: interior (%d,%d,%d) of grid %d corrupted: %g != %g",
									trial, i, j, k, g, got, want)
								return
							}
						}
					}
				}
				// Face halos (thickness = radius) must match the oracle.
				// Corners are exempt: the axis-aligned stencil never
				// reads them and the exchange does not fill them.
				check := func(i, j, k int) {
					want, _ := oracle(g, [3]int{off[0] + i, off[1] + j, off[2] + k})
					if got := lg.At(i, j, k); got != want {
						t.Errorf("trial %d (global %v procs %v halo %d periodic %v opts %+v): halo (%d,%d,%d) of grid %d = %g, oracle %g",
							trial, global, procs, halo, periodic, opts, i, j, k, g, got, want)
					}
				}
				for s := 1; s <= halo; s++ {
					for j := 0; j < ld[1]; j++ {
						for k := 0; k < ld[2]; k++ {
							check(-s, j, k)
							check(ld[0]+s-1, j, k)
						}
					}
					for i := 0; i < ld[0]; i++ {
						for k := 0; k < ld[2]; k++ {
							check(i, -s, k)
							check(i, ld[1]+s-1, k)
						}
					}
					for i := 0; i < ld[0]; i++ {
						for j := 0; j < ld[1]; j++ {
							check(i, j, -s)
							check(i, j, ld[2]+s-1)
						}
					}
				}
			}
		})
		if err != nil {
			t.Fatalf("trial %d (global %v procs %v halo %d): %v", trial, global, procs, halo, err)
		}
		if t.Failed() {
			return
		}
	}
}
