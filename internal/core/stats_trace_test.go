package core

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/trace"
)

// spin burns a little CPU so wall-clock phase timings are measurably
// positive.
func spin() float64 {
	s := 0.0
	for i := 0; i < 20000; i++ {
		s += float64(i) * 1e-9
	}
	return s
}

// TestStatsWaitsAndSplitTimings drives the split-phase protocol on two
// ranks and checks the extended Stats fields: wait counts, hidden and
// visible wait time, and interior/shell compute timings.
func TestStatsWaitsAndSplitTimings(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	procs := topology.Dims{1, 1, 2}
	err := mpi.Run(2, mpi.ThreadSingle, func(c *mpi.Comm) {
		sink := 0.0
		eng := overlapEngine(c, global, procs, true, OptionsFor(FlatOptimized, 1, 1))
		defer eng.Close()
		gs := []*grid.Grid{eng.NewLocalGrid()}
		for i := 0; i < 3; i++ {
			eng.RunBatchesSplit(gs, func(Batch) { sink += spin() }, func(Batch) { sink += spin() })
		}
		s := eng.Stats()
		if s.Waits == 0 {
			t.Error("split-phase run recorded no waits")
		}
		if s.HiddenWaitNs <= 0 {
			t.Errorf("split-phase run hid no wait time: %+v", s)
		}
		if s.InteriorNs <= 0 || s.ShellNs <= 0 {
			t.Errorf("split-phase compute untimed: interior=%d shell=%d", s.InteriorNs, s.ShellNs)
		}
		if eff := s.OverlapEfficiency(); eff <= 0 || eff > 1 {
			t.Errorf("overlap efficiency %v outside (0,1]", eff)
		}
		if s.MessagesSent == 0 || s.BytesSent == 0 {
			t.Errorf("traffic counters empty: %+v", s)
		}
		_ = sink
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStatsSerializedHidesNothing checks the serialized baseline
// reports zero hidden wait (its defining property) while still
// counting visible waits.
func TestStatsSerializedHidesNothing(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	procs := topology.Dims{1, 1, 2}
	err := mpi.Run(2, mpi.ThreadSingle, func(c *mpi.Comm) {
		eng := overlapEngine(c, global, procs, true, OptionsFor(FlatOriginal, 1, 1))
		defer eng.Close()
		gs := []*grid.Grid{eng.NewLocalGrid()}
		eng.Exchange(gs)
		s := eng.Stats()
		if s.HiddenWaitNs != 0 {
			t.Errorf("serialized exchange reported hidden wait %d", s.HiddenWaitNs)
		}
		if s.Waits == 0 {
			t.Error("serialized exchange recorded no waits")
		}
		if s.OverlapEfficiency() != 0 {
			t.Errorf("serialized overlap efficiency = %v, want 0", s.OverlapEfficiency())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEngineTraceEvents checks the engine emits halo post/wait spans
// and interior/shell regions when a tracer is armed on the world.
func TestEngineTraceEvents(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	procs := topology.Dims{1, 1, 2}
	tr := trace.New(2, 1024)
	w := mpi.NewWorld(2, mpi.ThreadSingle)
	w.SetTracer(tr)
	err := w.Run(func(c *mpi.Comm) {
		eng := overlapEngine(c, global, procs, true, OptionsFor(FlatOptimized, 1, 1))
		defer eng.Close()
		gs := []*grid.Grid{eng.NewLocalGrid()}
		eng.RunBatchesSplit(gs, func(Batch) {}, func(Batch) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		names := map[string]int{}
		for _, e := range tr.RankEvents(r) {
			names[e.Name]++
		}
		for _, want := range []string{"halo.post", "halo.wait", "compute.interior", "compute.shell", "mpi.send"} {
			if names[want] == 0 {
				t.Errorf("rank %d track lacks %q events: %v", r, want, names)
			}
		}
	}
	if tr.OverlapEfficiency() <= 0 {
		t.Errorf("traced split-phase run reports overlap efficiency %v, want > 0", tr.OverlapEfficiency())
	}
}
