// Package core implements the paper's contribution: the distributed
// finite-difference operation of GPAW with the Blue Gene/P optimizations —
// asynchronous halo exchange in all three dimensions at once, double
// buffering across real-space grids, message batching with ramp-up, and
// the four programming approaches compared in the paper (flat original,
// flat optimized, hybrid multiple, hybrid master-only).
//
// The engine runs on the in-process MPI runtime (internal/mpi) and does
// real arithmetic; all four approaches are verified to produce results
// identical to a sequential reference. The same protocols are re-enacted
// at full machine scale on the Blue Gene/P performance model in
// internal/bgpsim.
package core

import "fmt"

// Approach identifies one of the paper's four programming approaches
// (section VI).
type Approach int

const (
	// FlatOriginal is GPAW's original flat MPI code: one MPI process per
	// CPU core (BGP virtual mode), serialized dimension-by-dimension
	// blocking halo exchange, no batching, no overlap.
	FlatOriginal Approach = iota
	// FlatOptimized keeps one process per core but applies all section-V
	// optimizations: async exchange, double buffering, batching.
	FlatOptimized
	// HybridMultiple runs one MPI process per node with one thread per
	// core; every thread performs its own communication (MPI
	// THREAD_MULTIPLE). Whole grids are divided among threads, so thread
	// synchronization is a single constant-cost join.
	HybridMultiple
	// HybridMasterOnly runs one process per node with one thread per
	// core, but only the master thread communicates (MPI THREAD_SINGLE).
	// Each grid's computation is fork-joined across the threads, so the
	// synchronization cost grows with the number of grids.
	HybridMasterOnly
)

// Approaches lists all four approaches in presentation order.
var Approaches = []Approach{FlatOriginal, FlatOptimized, HybridMultiple, HybridMasterOnly}

// String implements fmt.Stringer with the paper's names.
func (a Approach) String() string {
	switch a {
	case FlatOriginal:
		return "Flat original"
	case FlatOptimized:
		return "Flat optimized"
	case HybridMultiple:
		return "Hybrid multiple"
	case HybridMasterOnly:
		return "Hybrid master-only"
	}
	return fmt.Sprintf("Approach(%d)", int(a))
}

// Hybrid reports whether the approach runs one process per node with
// threads, rather than one process per core.
func (a Approach) Hybrid() bool { return a == HybridMultiple || a == HybridMasterOnly }

// ExchangeMode selects how surface points are exchanged.
type ExchangeMode int

const (
	// ExchangeSerialized exchanges dimension by dimension, completing
	// each dimension before starting the next (the original GPAW
	// pattern, section IV.A).
	ExchangeSerialized ExchangeMode = iota
	// ExchangeAsync initiates the exchange in all three dimensions at
	// once and waits for all of them (section V), exploiting all six
	// torus links simultaneously.
	ExchangeAsync
)

// String implements fmt.Stringer.
func (m ExchangeMode) String() string {
	if m == ExchangeSerialized {
		return "serialized"
	}
	return "async"
}

// Options configures the optimizations applied by an Engine.
type Options struct {
	// Exchange selects serialized or async halo exchange.
	Exchange ExchangeMode
	// DoubleBuffer overlaps batch k+1's exchange with batch k's compute.
	DoubleBuffer bool
	// BatchSize is the number of grids whose surface points are packed
	// into each message; 1 disables batching.
	BatchSize int
	// BatchRamp halves the first batch so computation starts sooner
	// (section V's ramp-up, e.g. 128 reduced to 64 initially).
	BatchRamp bool
	// Threads is the number of compute threads per process for the
	// hybrid approaches; flat approaches ignore it.
	Threads int
}

// OptionsFor returns the canonical options the paper uses for an
// approach, with the given batch size (clamped to >= 1) and threads per
// node.
func OptionsFor(a Approach, batch, threads int) Options {
	if batch < 1 {
		batch = 1
	}
	switch a {
	case FlatOriginal:
		return Options{Exchange: ExchangeSerialized, DoubleBuffer: false, BatchSize: 1, Threads: 1}
	case FlatOptimized:
		return Options{Exchange: ExchangeAsync, DoubleBuffer: true, BatchSize: batch, Threads: 1}
	case HybridMultiple:
		return Options{Exchange: ExchangeAsync, DoubleBuffer: true, BatchSize: batch, Threads: threads}
	case HybridMasterOnly:
		return Options{Exchange: ExchangeAsync, DoubleBuffer: true, BatchSize: batch, Threads: threads}
	}
	panic(fmt.Sprintf("core: unknown approach %d", int(a)))
}

// validate checks option consistency.
func (o Options) validate() error {
	if o.BatchSize < 1 {
		return fmt.Errorf("core: batch size %d < 1", o.BatchSize)
	}
	if o.Threads < 1 {
		return fmt.Errorf("core: threads %d < 1", o.Threads)
	}
	return nil
}
