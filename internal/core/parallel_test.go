package core

import (
	"fmt"
	"testing"
)

// TestAllApproachesAllWorkerCounts verifies the acceptance property of
// the parallel execution engine: every approach produces results
// bit-identical to the sequential reference for worker counts 1, 2, 4
// and 8 per node.
func TestAllApproachesAllWorkerCounts(t *testing.T) {
	for _, a := range Approaches {
		for _, threads := range []int{1, 2, 4, 8} {
			a, threads := a, threads
			t.Run(fmt.Sprintf("%s/threads%d", a, threads), func(t *testing.T) {
				j := baseJob()
				j.Approach = a
				j.Threads = threads
				j.Cores = 8
				if a.Hybrid() && j.Cores%threads != 0 {
					j.Cores = threads
				}
				verifyJob(t, j)
			})
		}
	}
}

// TestStatsSmallestMsgZeroByte: a genuine 0-byte first message must be
// reported as the smallest, and later larger messages must not displace
// it (regression test for the SmallestMsg == 0 sentinel).
func TestStatsSmallestMsgZeroByte(t *testing.T) {
	var s Stats
	s.noteMsg(0)
	if s.SmallestMsg != 0 || s.MessagesSent != 1 {
		t.Fatalf("after 0-byte note: smallest = %d, messages = %d", s.SmallestMsg, s.MessagesSent)
	}
	s.noteMsg(64)
	if s.SmallestMsg != 0 {
		t.Fatalf("64-byte message displaced the 0-byte smallest: %d", s.SmallestMsg)
	}
	if s.LargestMsg != 64 {
		t.Fatalf("largest = %d, want 64", s.LargestMsg)
	}

	var s2 Stats
	s2.noteMsg(128)
	s2.noteMsg(32)
	if s2.SmallestMsg != 32 || s2.LargestMsg != 128 {
		t.Fatalf("smallest/largest = %d/%d, want 32/128", s2.SmallestMsg, s2.LargestMsg)
	}
}
