package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/stencil"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Engine applies a finite-difference operator to sets of identically
// decomposed real-space grids, performing the distributed halo exchange
// with the configured optimizations. One Engine lives on each MPI rank.
type Engine struct {
	cart     *mpi.Cart
	decomp   *grid.Decomp
	op       *stencil.Operator
	opts     Options
	periodic bool

	coord topology.Coord
	local topology.Dims
	// nbr[dim][side] is the rank owning the sub-domain on that side
	// (mpi.ProcNull when non-periodic at an edge).
	nbr [3][2]int

	// pool is the per-node worker pool shared by both hybrid
	// approaches (nil when opts.Threads == 1): hybrid multiple splits
	// whole grids across its workers, hybrid master-only splits each
	// grid's planes.
	pool *stencil.Pool

	// statsMu guards stats: hybrid multiple runs the communication
	// protocol on several pool workers at once.
	statsMu sync.Mutex
	stats   Stats

	// scratchMu guards the free pools below. Exchange state (pack/unpack
	// buffers, request slices, batch lists) is hoisted onto the engine
	// and recycled across protocol invocations, so the steady state of
	// every exchange loop — blocking and split-phase alike — performs no
	// per-iteration allocation.
	scratchMu    sync.Mutex
	scratchFree  []*applyScratch
	inflightFree []*InFlightExchange
}

// Stats accumulates per-rank communication accounting: message and
// exchange counts, traffic volume, and — since the observability layer
// — wait-time and split-phase compute timings. All durations are in
// nanoseconds of the engine's profiling clock: the rank's modeled
// virtual clock when a network model is armed (deterministic under
// NoComputeWall), wall time otherwise.
type Stats struct {
	MessagesSent int64
	BytesSent    int64
	LargestMsg   int64
	SmallestMsg  int64
	Exchanges    int64 // halo exchanges performed (grids x applications)

	// Waits counts completed exchange waits. WaitNs is the time spent
	// actually blocked in them (the visible wait); HiddenWaitNs is the
	// post-to-finish window of split-phase exchanges — in-flight time
	// the rank spent computing instead of blocking. The overlap
	// efficiency of a run is HiddenWaitNs / (HiddenWaitNs + WaitNs).
	Waits        int64
	WaitNs       int64
	HiddenWaitNs int64

	// InteriorNs and ShellNs time the split-phase compute callbacks:
	// deep-interior work overlapped with the halo flight, and
	// halo-reading shell work after it lands. Zero for the blocking
	// (finish-then-compute) protocols.
	InteriorNs int64
	ShellNs    int64

	// NetRetransmits, NetDupSuppressed and NetCRCRejected mirror this
	// rank's lossy-transport reliability counters (mpi.RelStats) when
	// message faults are armed: retransmissions sent, duplicate frames
	// suppressed at the receiver, frames rejected by the CRC32C check.
	// Zero in clean runs and when the chaos layer is disarmed.
	NetRetransmits   int64
	NetDupSuppressed int64
	NetCRCRejected   int64

	// anyMsg distinguishes "no messages yet" from a genuine smallest
	// message of 0 bytes, so SmallestMsg is not misreported.
	anyMsg bool
}

// OverlapEfficiency returns HiddenWaitNs / (HiddenWaitNs + WaitNs) —
// the fraction of halo latency hidden behind interior compute. Zero
// when no exchange has completed.
func (s Stats) OverlapEfficiency() float64 {
	if t := s.HiddenWaitNs + s.WaitNs; t > 0 {
		return float64(s.HiddenWaitNs) / float64(t)
	}
	return 0
}

// noteSent records one sent message under the stats lock.
func (e *Engine) noteSent(bytes int64) {
	e.statsMu.Lock()
	e.stats.noteMsg(bytes)
	e.statsMu.Unlock()
}

// noteExchanges records completed halo exchanges under the stats lock.
func (e *Engine) noteExchanges(n int64) {
	e.statsMu.Lock()
	e.stats.Exchanges += n
	e.statsMu.Unlock()
}

// noteWait records one completed exchange wait: hidden in-flight time
// and visible blocked time.
func (e *Engine) noteWait(hidden, visible int64) {
	e.statsMu.Lock()
	e.stats.Waits++
	if hidden > 0 {
		e.stats.HiddenWaitNs += hidden
	}
	if visible > 0 {
		e.stats.WaitNs += visible
	}
	e.statsMu.Unlock()
}

// noteSplit records split-phase compute time.
func (e *Engine) noteSplit(interior, shell int64) {
	e.statsMu.Lock()
	if interior > 0 {
		e.stats.InteriorNs += interior
	}
	if shell > 0 {
		e.stats.ShellNs += shell
	}
	e.statsMu.Unlock()
}

// NoteSplit folds externally timed split-phase compute into the stats
// (and the armed tracer's counters). The solver layer uses it for
// interior/shell work it runs itself around StartExchange and
// FinishExchange, outside the engine's own protocol loop.
func (e *Engine) NoteSplit(interiorNs, shellNs int64) {
	e.noteSplit(interiorNs, shellNs)
	e.cart.TraceRank().AddSplit(interiorNs, shellNs)
}

// noteMsg folds one sent message into the counters. (This replaces the
// old bare note(bytes) path, which recorded traffic only.)
func (s *Stats) noteMsg(bytes int64) {
	s.MessagesSent++
	s.BytesSent += bytes
	if bytes > s.LargestMsg {
		s.LargestMsg = bytes
	}
	if !s.anyMsg || bytes < s.SmallestMsg {
		s.SmallestMsg = bytes
		s.anyMsg = true
	}
}

// engineEpoch bases the engine's wall profiling clock; only
// differences of NowNs readings are meaningful.
var engineEpoch = time.Now()

// NowNs reads the engine's profiling clock: the calling rank's modeled
// virtual clock when a network model is armed (deterministic under
// NoComputeWall), monotonic wall nanoseconds otherwise. Solver code
// uses it so externally timed phases (NoteSplit) share the clock of
// the engine's own wait accounting.
func (e *Engine) NowNs() int64 {
	w := e.cart.World()
	if w.NetArmed() {
		return int64(w.VirtualTime(e.cart.WorldRank()))
	}
	return int64(time.Since(engineEpoch))
}

// NewEngine builds the per-rank engine. The cart's dims must match the
// decomposition's process grid and the decomposition halo must cover the
// operator radius.
func NewEngine(cart *mpi.Cart, d *grid.Decomp, op *stencil.Operator, periodic bool, opts Options) (*Engine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if cart.Dims != d.Procs {
		return nil, fmt.Errorf("core: cart dims %v != decomposition procs %v", cart.Dims, d.Procs)
	}
	if d.Halo < op.R {
		return nil, fmt.Errorf("core: halo %d < operator radius %d", d.Halo, op.R)
	}
	e := &Engine{cart: cart, decomp: d, op: op, opts: opts, periodic: periodic}
	e.coord = cart.Coords(cart.Rank())
	e.local = d.LocalDims(e.coord)
	for dim := 0; dim < 3; dim++ {
		lo, hi := cart.Shift(dim, 1)
		// Shift returns (src, dst) for +1 displacement: src is the low
		// neighbour, dst the high neighbour.
		e.nbr[dim][int(grid.Low)] = lo
		e.nbr[dim][int(grid.High)] = hi
	}
	if opts.Threads > 1 {
		e.pool = stencil.NewPool(opts.Threads)
	}
	return e, nil
}

// Close releases the engine's worker pool. The engine must not be used
// afterwards.
func (e *Engine) Close() { e.pool.Close() }

// LocalDims returns the extents of this rank's sub-domain.
func (e *Engine) LocalDims() topology.Dims { return e.local }

// Coord returns this rank's Cartesian coordinate.
func (e *Engine) Coord() topology.Coord { return e.coord }

// Stats returns the accumulated communication statistics. When the
// lossy-transport chaos layer is armed, the snapshot also carries this
// rank's reliability counters.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	s := e.stats
	e.statsMu.Unlock()
	if w := e.cart.World(); w.ChaosArmed() {
		rs := w.NetRelStats(e.cart.WorldRank())
		s.NetRetransmits = rs.Retransmits
		s.NetDupSuppressed = rs.DupSuppressed
		s.NetCRCRejected = rs.CRCRejected
	}
	return s
}

// ResetStats clears the accumulated statistics.
func (e *Engine) ResetStats() {
	e.statsMu.Lock()
	e.stats = Stats{}
	e.statsMu.Unlock()
}

// NewLocalGrid allocates a local grid matching this rank's sub-domain.
func (e *Engine) NewLocalGrid() *grid.Grid { return grid.NewDims(e.local, e.decomp.Halo) }

// Batch describes a contiguous run of grid indices exchanged together.
type Batch struct{ Lo, Hi int } // grids [Lo, Hi)

// Size returns the number of grids in the batch.
func (b Batch) Size() int { return b.Hi - b.Lo }

// MakeBatches splits n grids into batches of the given size. With ramp
// the first batch is halved (rounded up) so the pipeline can start
// computing sooner; the paper's example reduces an initial 128 to 64.
// It is shared by the real engine and the Blue Gene/P simulator so both
// enact identical batch structures.
func MakeBatches(n, size int, ramp bool) []Batch {
	if n == 0 {
		return nil
	}
	return appendBatches(nil, n, size, ramp)
}

// appendBatches is MakeBatches appending into a reusable slice, so the
// per-iteration protocol loops build their batch lists without
// allocating once the slice has grown to its steady-state capacity.
func appendBatches(out []Batch, n, size int, ramp bool) []Batch {
	lo := 0
	if ramp && size > 1 {
		if first := (size + 1) / 2; first < n {
			out = append(out, Batch{0, first})
			lo = first
		}
	}
	for lo < n {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Batch{lo, hi})
		lo = hi
	}
	return out
}

// exchangeState holds the buffers and requests of one in-flight batch
// exchange. Buffers are reused across batches of the same shape.
type exchangeState struct {
	send [3][2][]float64
	recv [3][2][]float64
	reqs []*mpi.Request
	b    Batch
	// postedNs stamps (on the engine's profiling clock) when the
	// non-blocking exchange finished posting; finishExchange derives
	// the hidden wait from it. Zero for blocking exchanges.
	postedNs int64
}

// applyScratch is the reusable state of one protocol invocation: the
// batch list and the two exchange states the double buffer ping-pongs
// between. Scratches are pooled on the engine (getScratch/putScratch),
// so their buffers persist across solver iterations.
type applyScratch struct {
	batches []Batch
	states  [2]exchangeState
}

// getScratch pops a pooled scratch or allocates one. Hybrid multiple
// runs several protocol invocations concurrently, so the pool is
// mutex-guarded; each invocation owns its scratch exclusively.
func (e *Engine) getScratch() *applyScratch {
	e.scratchMu.Lock()
	if n := len(e.scratchFree); n > 0 {
		sc := e.scratchFree[n-1]
		e.scratchFree[n-1] = nil
		e.scratchFree = e.scratchFree[:n-1]
		e.scratchMu.Unlock()
		return sc
	}
	e.scratchMu.Unlock()
	return &applyScratch{}
}

// putScratch returns a scratch (and its grown buffers) to the pool.
func (e *Engine) putScratch(sc *applyScratch) {
	e.scratchMu.Lock()
	e.scratchFree = append(e.scratchFree, sc)
	e.scratchMu.Unlock()
}

// faceTag builds the message tag for the halo of (dim, side) of batch
// index bi within a thread's sequence, offset by tagBase to keep threads
// disjoint. The tag identifies the halo side being filled at the
// receiver.
func faceTag(tagBase, bi, dim int, side grid.Side) int {
	return tagBase + bi*6 + dim*2 + int(side)
}

// startExchange packs the batch's surface points and posts the receives
// and sends for every dimension at once. Used by the async protocols.
//
//gpaw:hotpath
func (e *Engine) startExchange(st *exchangeState, src []*grid.Grid, tagBase, bi int) {
	sp := e.cart.TraceRank().Begin("halo.post", trace.KindExchange)
	st.reqs = st.reqs[:0]
	for dim := 0; dim < 3; dim++ {
		e.postDim(st, src, tagBase, bi, dim)
	}
	sp.End()
	st.postedNs = e.NowNs()
}

// postDim posts the receives and sends of one dimension for the batch.
//
//gpaw:hotpath
func (e *Engine) postDim(st *exchangeState, src []*grid.Grid, tagBase, bi, dim int) {
	faceLen := src[st.b.Lo].FaceLen(dim, e.op.R)
	n := st.b.Size() * faceLen
	for _, side := range [...]grid.Side{grid.Low, grid.High} {
		if e.nbr[dim][side] == mpi.ProcNull {
			continue
		}
		if cap(st.recv[dim][side]) < n {
			//lint:ignore hotpathalloc grow-on-first-use face buffers; the cap check above keeps the repeating steady-state exchange allocation-free
			st.recv[dim][side] = make([]float64, n)
			//lint:ignore hotpathalloc same first-use growth as the receive buffer above
			st.send[dim][side] = make([]float64, n)
		}
		st.recv[dim][side] = st.recv[dim][side][:n]
		st.send[dim][side] = st.send[dim][side][:n]
		// Post the receive for my (dim, side) halo first so an eager
		// send (including a self-send when the dimension is undivided)
		// finds it waiting.
		//lint:ignore hotpathalloc request list of the recycled exchangeState, reset to [:0] each exchange — capacity is warm in steady state
		st.reqs = append(st.reqs, e.cart.Irecv(e.nbr[dim][side], faceTag(tagBase, bi, dim, side), st.recv[dim][side]))
	}
	for _, side := range [...]grid.Side{grid.Low, grid.High} {
		if e.nbr[dim][side] == mpi.ProcNull {
			continue
		}
		buf := st.send[dim][side]
		pos := 0
		for gi := st.b.Lo; gi < st.b.Hi; gi++ {
			pos += src[gi].PackFace(dim, side, e.op.R, buf[pos:])
		}
		// My (dim, side) face fills the neighbour's opposite halo. Send
		// rather than Isend: the eager transport completes a buffered
		// send immediately either way, and skipping the request object
		// keeps the steady-state loop allocation-free.
		tag := faceTag(tagBase, bi, dim, side.Opposite())
		e.cart.Send(e.nbr[dim][side], tag, buf)
		e.noteSent(int64(len(buf) * 8))
	}
}

// finishExchange waits for the batch's transfers and installs received
// surface points into the grids' halos. Completed receive requests are
// reclaimed into the world pool for reuse by the next batch.
//
//gpaw:hotpath
func (e *Engine) finishExchange(st *exchangeState, src []*grid.Grid) {
	rk := e.cart.TraceRank()
	t0 := e.NowNs()
	sp := rk.Begin("halo.wait", trace.KindWait)
	mpi.Waitall(st.reqs...)
	t1 := e.NowNs()
	sp.End()
	e.unpack(st, src)
	mpi.Reclaim(st.reqs...)
	st.reqs = st.reqs[:0]
	// The post-to-finish window is latency the rank could hide behind
	// compute; the Waitall span is what it could not.
	var hidden int64
	if st.postedNs > 0 {
		hidden = t0 - st.postedNs
		st.postedNs = 0
	}
	e.noteWait(hidden, t1-t0)
	rk.AddWait(hidden, t1-t0)
}

// unpack copies every received face buffer into the halos of the batch.
//
//gpaw:hotpath
func (e *Engine) unpack(st *exchangeState, src []*grid.Grid) {
	for dim := 0; dim < 3; dim++ {
		faceLen := src[st.b.Lo].FaceLen(dim, e.op.R)
		for _, side := range [...]grid.Side{grid.Low, grid.High} {
			if e.nbr[dim][side] == mpi.ProcNull {
				// Dirichlet boundary: halos were zeroed at allocation and
				// stay zero.
				continue
			}
			buf := st.recv[dim][side]
			pos := 0
			for gi := st.b.Lo; gi < st.b.Hi; gi++ {
				src[gi].UnpackHalo(dim, side, e.op.R, buf[pos:pos+faceLen])
				pos += faceLen
			}
		}
	}
	e.noteExchanges(int64(st.b.Size()))
}

// exchangeSerialized performs the original GPAW pattern for one batch:
// complete dimension 1, then dimension 2, then dimension 3 (section
// IV.A), blocking on each.
func (e *Engine) exchangeSerialized(st *exchangeState, src []*grid.Grid, tagBase, bi int) {
	rk := e.cart.TraceRank()
	for dim := 0; dim < 3; dim++ {
		st.reqs = st.reqs[:0]
		e.postDim(st, src, tagBase, bi, dim)
		// The serialized pattern has no non-blocking window: every wait
		// is visible, which is exactly what its profile should show.
		t0 := e.NowNs()
		sp := rk.Begin("halo.wait", trace.KindWait)
		mpi.Waitall(st.reqs...)
		t1 := e.NowNs()
		sp.End()
		e.noteWait(0, t1-t0)
		rk.AddWait(0, t1-t0)
		mpi.Reclaim(st.reqs...)
		// Install this dimension's halos before the next dimension runs
		// (the serialized pattern's defining property).
		faceLen := src[st.b.Lo].FaceLen(dim, e.op.R)
		for _, side := range [...]grid.Side{grid.Low, grid.High} {
			if e.nbr[dim][side] == mpi.ProcNull {
				continue
			}
			buf := st.recv[dim][side]
			pos := 0
			for gi := st.b.Lo; gi < st.b.Hi; gi++ {
				src[gi].UnpackHalo(dim, side, e.op.R, buf[pos:pos+faceLen])
				pos += faceLen
			}
		}
	}
	e.noteExchanges(int64(st.b.Size()))
}

// computeBatch applies the operator to every grid of the batch.
func (e *Engine) computeBatch(dst, src []*grid.Grid, b Batch) {
	for gi := b.Lo; gi < b.Hi; gi++ {
		e.op.Apply(dst[gi], src[gi])
	}
}

// runBatchesSplit is the engine's one protocol loop. It runs the
// configured exchange (serialized or async, batched, double-buffered)
// over one thread's share of the grids and invokes, per batch, the
// split-phase compute pair:
//
//   - interior(b) runs while the batch's halo messages are still in
//     flight — it may touch every point that does not read a halo
//     (the paper's communication/computation overlap);
//   - shell(b) runs after the batch's halos are installed.
//
// A nil interior degrades to the original finish-then-compute protocol
// with shell as the whole computation. In serialized mode (the flat
// original baseline) there is no non-blocking window, so interior and
// shell both run after the blocking exchange. tagBase keeps concurrent
// threads' messages disjoint.
func (e *Engine) runBatchesSplit(src []*grid.Grid, tagBase int, interior, shell func(b Batch)) {
	if len(src) == 0 {
		return
	}
	// The split-phase callbacks are timed (stats + trace regions) only
	// when an interior exists: the interior/shell timings specifically
	// measure the split-phase protocol, and the blocking nil-interior
	// path must stay untimed and closure-free.
	rk := e.cart.TraceRank()
	sc := e.getScratch()
	defer e.putScratch(sc)
	sc.batches = appendBatches(sc.batches[:0], len(src), e.opts.BatchSize, e.opts.BatchRamp)
	batches := sc.batches

	if e.opts.Exchange == ExchangeSerialized {
		st := &sc.states[0]
		for bi, b := range batches {
			st.b = b
			e.exchangeSerialized(st, src, tagBase, bi)
			if interior != nil {
				e.interiorPhase(rk, interior, b)
				e.shellPhase(rk, shell, b)
			} else {
				shell(b)
			}
		}
		return
	}

	if !e.opts.DoubleBuffer {
		st := &sc.states[0]
		for bi, b := range batches {
			st.b = b
			e.startExchange(st, src, tagBase, bi)
			if interior != nil {
				e.interiorPhase(rk, interior, b)
			}
			e.finishExchange(st, src)
			if interior != nil {
				e.shellPhase(rk, shell, b)
			} else {
				shell(b)
			}
		}
		return
	}

	// Double buffering (section V): keep the next batch's exchange in
	// flight while computing the current one. Combined with the split
	// phases, batch b's interior work hides both its own messages and
	// the posting latency of batch b+1.
	states := [2]*exchangeState{&sc.states[0], &sc.states[1]}
	states[0].b = batches[0]
	e.startExchange(states[0], src, tagBase, 0)
	for bi := range batches {
		cur := states[bi%2]
		if bi+1 < len(batches) {
			nxt := states[(bi+1)%2]
			nxt.b = batches[bi+1]
			e.startExchange(nxt, src, tagBase, bi+1)
		}
		if interior != nil {
			e.interiorPhase(rk, interior, cur.b)
		}
		e.finishExchange(cur, src)
		if interior != nil {
			e.shellPhase(rk, shell, cur.b)
		} else {
			shell(cur.b)
		}
	}
}

// interiorPhase and shellPhase run one split-phase compute callback
// with stats timing and a trace region. They take the callback as a
// plain parameter (never capturing it) so the protocol loops stay
// free of heap-allocated closures — the zero-allocation contract of
// the exchange steady state.
func (e *Engine) interiorPhase(rk *trace.Rank, f func(b Batch), b Batch) {
	sp := rk.Begin("compute.interior", trace.KindRegion)
	t0 := e.NowNs()
	f(b)
	d := e.NowNs() - t0
	sp.End()
	e.noteSplit(d, 0)
	rk.AddSplit(d, 0)
}

func (e *Engine) shellPhase(rk *trace.Rank, f func(b Batch), b Batch) {
	sp := rk.Begin("compute.shell", trace.KindRegion)
	t0 := e.NowNs()
	f(b)
	d := e.NowNs() - t0
	sp.End()
	e.noteSplit(0, d)
	rk.AddSplit(0, d)
}

// applyGrids runs the configured protocol over one thread's share of the
// grids with the whole computation after each batch's halos are
// installed. tagBase keeps concurrent threads' messages disjoint.
func (e *Engine) applyGrids(dst, src []*grid.Grid, tagBase int, compute func(dst, src []*grid.Grid, b Batch)) {
	if len(dst) != len(src) {
		panic("core: dst/src length mismatch")
	}
	if compute == nil {
		compute = e.computeBatch
	}
	e.runBatchesSplit(src, tagBase, nil, func(b Batch) { compute(dst, src, b) })
}

// tagStride returns the tag-space width reserved per thread for n grids.
func tagStride(n int) int { return 6 * (n + 2) }

// ApplyAll performs one application of the operator to every grid using
// the engine's approach-independent protocol on the calling goroutine
// (the flat layouts, one process per core).
func (e *Engine) ApplyAll(dst, src []*grid.Grid) {
	e.applyGrids(dst, src, 0, nil)
}

// ApplyAllHybridMultiple divides the grids among the engine's worker
// pool; each worker runs the full protocol — including its own
// communication — on its share (the hybrid multiple approach). The only
// synchronization is the final join, whose cost does not grow with the
// number of grids. The world must be in MULTIPLE thread mode.
func (e *Engine) ApplyAllHybridMultiple(dst, src []*grid.Grid) {
	if e.cart.World().Mode() != mpi.ThreadMultiple {
		panic("core: hybrid multiple requires a MULTIPLE-mode world")
	}
	stride := tagStride(len(src))
	e.pool.Exec(len(src), func(w, lo, hi int) {
		e.applyGrids(dst[lo:hi], src[lo:hi], w*stride, nil)
	})
}

// ApplyAllHybridMasterOnly runs the protocol on the calling (master)
// thread only — SINGLE thread mode suffices — but splits each grid's
// computation across the same worker pool with a fork-join per grid, so
// the synchronization cost grows with the number of grids (the paper's
// explanation for this approach's inferior scaling).
func (e *Engine) ApplyAllHybridMasterOnly(dst, src []*grid.Grid) {
	compute := func(dsts, srcs []*grid.Grid, b Batch) {
		for gi := b.Lo; gi < b.Hi; gi++ {
			// Per-grid fork-join: cost proportional to #grids.
			e.op.ApplyParallel(e.pool, dsts[gi], srcs[gi])
		}
	}
	e.applyGrids(dst, src, 0, compute)
}

// WorkerPool exposes the engine's per-node worker pool (nil for the
// flat approaches). The distributed solver layer in internal/gpaw uses
// it to split local compute while the engine handles communication.
func (e *Engine) WorkerPool() *stencil.Pool { return e.pool }

// RunBatches executes the engine's configured exchange protocol
// (serialized or async, batched, double-buffered) over src on the
// calling goroutine and invokes compute for each batch once its halos
// are installed. It is ApplyAll with the computation replaced by a
// callback — the hook the distributed solvers use to run fused kernels
// behind the paper's overlap protocol.
func (e *Engine) RunBatches(src []*grid.Grid, compute func(b Batch)) {
	e.applyGrids(src, src, 0, func(_, _ []*grid.Grid, b Batch) { compute(b) })
}

// RunBatchesHybridMultiple divides src across the engine's worker pool;
// each worker runs the full protocol — including its own communication —
// on its share, and compute is invoked with batch indices into the full
// src slice. The world must be in MULTIPLE thread mode. Without a pool
// it degrades to RunBatches.
func (e *Engine) RunBatchesHybridMultiple(src []*grid.Grid, compute func(b Batch)) {
	if e.pool == nil {
		e.RunBatches(src, compute)
		return
	}
	if e.cart.World().Mode() != mpi.ThreadMultiple {
		panic("core: hybrid multiple requires a MULTIPLE-mode world")
	}
	stride := tagStride(len(src))
	e.pool.Exec(len(src), func(w, lo, hi int) {
		e.applyGrids(src[lo:hi], src[lo:hi], w*stride, func(_, _ []*grid.Grid, b Batch) {
			compute(Batch{Lo: b.Lo + lo, Hi: b.Hi + lo})
		})
	})
}

// Exchange fills the halos of every grid from the neighbouring ranks
// (and from the grid itself across periodic wraps in undivided
// dimensions) using the engine's configured protocol, without any
// computation. Corner halos are not filled — the axis-aligned stencils
// never read them, matching GPAW.
//
//gpaw:hotpath
func (e *Engine) Exchange(grids []*grid.Grid) {
	e.RunBatches(grids, func(Batch) {})
}

// --- split-phase halo exchange --------------------------------------

// overlapTagBase is the tag space of StartExchange handles, disjoint
// from the per-thread tag spaces of the batched protocols (w*tagStride
// stays far below it for realistic grid and thread counts) and from the
// solver layer's gather/redistribution tags (1<<24 and above).
const overlapTagBase = 1 << 22

// InFlightExchange is the handle of one split-phase halo exchange:
// StartExchange posts the non-blocking receives and sends and returns
// immediately; the caller computes every point that does not read a
// halo while the messages travel, then calls FinishExchange (or
// Finish), which waits for the transfers, installs the halos and
// recycles the handle. A handle must be finished exactly once and not
// touched afterwards — the engine hands the object out again.
type InFlightExchange struct {
	e     *Engine
	st    exchangeState
	grids []*grid.Grid
	done  bool
	// released marks the handle as returned to the pool; finishing a
	// handle twice would double-insert it and hand the same object to
	// two later exchanges, so Finish panics instead.
	released bool
}

// getInflight pops a pooled handle or allocates one, so the
// start/finish pair is allocation-free in steady state.
//
//gpaw:hotpath
func (e *Engine) getInflight() *InFlightExchange {
	e.scratchMu.Lock()
	if n := len(e.inflightFree); n > 0 {
		h := e.inflightFree[n-1]
		e.inflightFree[n-1] = nil
		e.inflightFree = e.inflightFree[:n-1]
		e.scratchMu.Unlock()
		h.done = false
		h.released = false
		return h
	}
	e.scratchMu.Unlock()
	//lint:ignore hotpathalloc pool miss: only the first few exchanges allocate a handle; steady state always pops one above
	return &InFlightExchange{e: e}
}

// StartExchange begins a split-phase halo exchange of the given grids:
// the receives for every face are posted and the surface points of all
// three dimensions are packed and sent at once (the section-V
// asynchronous pattern), all grids in a single batch. With serialized
// options (the flat original baseline has no non-blocking window) the
// exchange completes before returning and Finish is a no-op, so callers
// can use the split-phase form unconditionally.
//
// The caller keeps ownership of the grids slice; the handle copies it.
// Between Start and Finish the grids' interiors may be read and other
// grids written, but the exchanged grids' halos are undefined.
//
//gpaw:hotpath
func (e *Engine) StartExchange(grids []*grid.Grid) *InFlightExchange {
	h := e.getInflight()
	//lint:ignore hotpathalloc append into the pooled handle's recycled slice — capacity is warm after the first exchange of this batch size
	h.grids = append(h.grids[:0], grids...)
	h.st.b = Batch{0, len(grids)}
	if len(grids) == 0 {
		h.done = true
		return h
	}
	if e.opts.Exchange == ExchangeSerialized {
		e.exchangeSerialized(&h.st, h.grids, overlapTagBase, 0)
		h.done = true
		return h
	}
	e.startExchange(&h.st, h.grids, overlapTagBase, 0)
	return h
}

// Finish completes the exchange: waits for all transfers, installs the
// received surface points into the grids' halos and recycles the
// handle. Finishing a handle twice panics.
//
//gpaw:hotpath
func (h *InFlightExchange) Finish() {
	if h.released {
		panic("core: InFlightExchange finished twice")
	}
	if !h.done {
		h.e.finishExchange(&h.st, h.grids)
		h.done = true
	}
	h.released = true
	// Drop the grid references before pooling so a parked handle does
	// not pin the last exchange's grids alive.
	clear(h.grids)
	h.grids = h.grids[:0]
	e := h.e
	e.scratchMu.Lock()
	//lint:ignore hotpathalloc append into the handle free pool; capacity is warm after the first start/finish cycle
	e.inflightFree = append(e.inflightFree, h)
	e.scratchMu.Unlock()
}

// Test reports whether every transfer of the exchange has already
// completed, without blocking — Finish would not wait.
func (h *InFlightExchange) Test() bool {
	return h.done || mpi.Testall(h.st.reqs...)
}

// FinishExchange is Finish as an engine method, for symmetry with
// StartExchange.
//
//gpaw:hotpath
func (e *Engine) FinishExchange(h *InFlightExchange) { h.Finish() }

// RunBatchesSplit executes the engine's configured exchange protocol
// over src on the calling goroutine with split-phase compute: for each
// batch, interior(b) runs while the batch's halo messages are in
// flight (it must not read halos), then the exchange completes and
// shell(b) runs over the halo-reading remainder. It is the overlapped
// sibling of RunBatches; with serialized options both callbacks run
// after the blocking exchange.
func (e *Engine) RunBatchesSplit(src []*grid.Grid, interior, shell func(b Batch)) {
	e.runBatchesSplit(src, 0, interior, shell)
}

// RunBatchesSplitHybridMultiple divides src across the engine's worker
// pool; each worker runs the full split-phase protocol — including its
// own communication — on its share, with batch indices into the full
// src slice. The world must be in MULTIPLE thread mode. Without a pool
// it degrades to RunBatchesSplit.
func (e *Engine) RunBatchesSplitHybridMultiple(src []*grid.Grid, interior, shell func(b Batch)) {
	if e.pool == nil {
		e.RunBatchesSplit(src, interior, shell)
		return
	}
	if e.cart.World().Mode() != mpi.ThreadMultiple {
		panic("core: hybrid multiple requires a MULTIPLE-mode world")
	}
	stride := tagStride(len(src))
	e.pool.Exec(len(src), func(w, lo, hi int) {
		shifted := func(f func(b Batch)) func(b Batch) {
			if f == nil {
				return nil // preserve runBatchesSplit's nil-interior degrade
			}
			return func(b Batch) { f(Batch{Lo: b.Lo + lo, Hi: b.Hi + lo}) }
		}
		e.runBatchesSplit(src[lo:hi], w*stride, shifted(interior), shifted(shell))
	})
}

// Apply dispatches to the approach-specific driver.
func (e *Engine) Apply(a Approach, dst, src []*grid.Grid) {
	switch a {
	case FlatOriginal, FlatOptimized:
		e.ApplyAll(dst, src)
	case HybridMultiple:
		e.ApplyAllHybridMultiple(dst, src)
	case HybridMasterOnly:
		e.ApplyAllHybridMasterOnly(dst, src)
	default:
		panic(fmt.Sprintf("core: unknown approach %d", int(a)))
	}
}
