package core

import (
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/stencil"
	"repro/internal/topology"
)

// Engine applies a finite-difference operator to sets of identically
// decomposed real-space grids, performing the distributed halo exchange
// with the configured optimizations. One Engine lives on each MPI rank.
type Engine struct {
	cart     *mpi.Cart
	decomp   *grid.Decomp
	op       *stencil.Operator
	opts     Options
	periodic bool

	coord topology.Coord
	local topology.Dims
	// nbr[dim][side] is the rank owning the sub-domain on that side
	// (mpi.ProcNull when non-periodic at an edge).
	nbr [3][2]int

	// pool is the per-node worker pool shared by both hybrid
	// approaches (nil when opts.Threads == 1): hybrid multiple splits
	// whole grids across its workers, hybrid master-only splits each
	// grid's planes.
	pool *stencil.Pool

	// statsMu guards stats: hybrid multiple runs the communication
	// protocol on several pool workers at once.
	statsMu sync.Mutex
	stats   Stats
}

// Stats accumulates per-rank communication accounting.
type Stats struct {
	MessagesSent int64
	BytesSent    int64
	LargestMsg   int64
	SmallestMsg  int64
	Exchanges    int64 // halo exchanges performed (grids x applications)

	// anyMsg distinguishes "no messages yet" from a genuine smallest
	// message of 0 bytes, so SmallestMsg is not misreported.
	anyMsg bool
}

// noteSent records one sent message under the stats lock.
func (e *Engine) noteSent(bytes int64) {
	e.statsMu.Lock()
	e.stats.note(bytes)
	e.statsMu.Unlock()
}

// noteExchanges records completed halo exchanges under the stats lock.
func (e *Engine) noteExchanges(n int64) {
	e.statsMu.Lock()
	e.stats.Exchanges += n
	e.statsMu.Unlock()
}

// note records one sent message.
func (s *Stats) note(bytes int64) {
	s.MessagesSent++
	s.BytesSent += bytes
	if bytes > s.LargestMsg {
		s.LargestMsg = bytes
	}
	if !s.anyMsg || bytes < s.SmallestMsg {
		s.SmallestMsg = bytes
		s.anyMsg = true
	}
}

// NewEngine builds the per-rank engine. The cart's dims must match the
// decomposition's process grid and the decomposition halo must cover the
// operator radius.
func NewEngine(cart *mpi.Cart, d *grid.Decomp, op *stencil.Operator, periodic bool, opts Options) (*Engine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if cart.Dims != d.Procs {
		return nil, fmt.Errorf("core: cart dims %v != decomposition procs %v", cart.Dims, d.Procs)
	}
	if d.Halo < op.R {
		return nil, fmt.Errorf("core: halo %d < operator radius %d", d.Halo, op.R)
	}
	e := &Engine{cart: cart, decomp: d, op: op, opts: opts, periodic: periodic}
	e.coord = cart.Coords(cart.Rank())
	e.local = d.LocalDims(e.coord)
	for dim := 0; dim < 3; dim++ {
		lo, hi := cart.Shift(dim, 1)
		// Shift returns (src, dst) for +1 displacement: src is the low
		// neighbour, dst the high neighbour.
		e.nbr[dim][int(grid.Low)] = lo
		e.nbr[dim][int(grid.High)] = hi
	}
	if opts.Threads > 1 {
		e.pool = stencil.NewPool(opts.Threads)
	}
	return e, nil
}

// Close releases the engine's worker pool. The engine must not be used
// afterwards.
func (e *Engine) Close() { e.pool.Close() }

// LocalDims returns the extents of this rank's sub-domain.
func (e *Engine) LocalDims() topology.Dims { return e.local }

// Coord returns this rank's Cartesian coordinate.
func (e *Engine) Coord() topology.Coord { return e.coord }

// Stats returns the accumulated communication statistics.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// ResetStats clears the accumulated statistics.
func (e *Engine) ResetStats() {
	e.statsMu.Lock()
	e.stats = Stats{}
	e.statsMu.Unlock()
}

// NewLocalGrid allocates a local grid matching this rank's sub-domain.
func (e *Engine) NewLocalGrid() *grid.Grid { return grid.NewDims(e.local, e.decomp.Halo) }

// Batch describes a contiguous run of grid indices exchanged together.
type Batch struct{ Lo, Hi int } // grids [Lo, Hi)

// Size returns the number of grids in the batch.
func (b Batch) Size() int { return b.Hi - b.Lo }

// MakeBatches splits n grids into batches of the given size. With ramp
// the first batch is halved (rounded up) so the pipeline can start
// computing sooner; the paper's example reduces an initial 128 to 64.
// It is shared by the real engine and the Blue Gene/P simulator so both
// enact identical batch structures.
func MakeBatches(n, size int, ramp bool) []Batch {
	if n == 0 {
		return nil
	}
	var out []Batch
	lo := 0
	if ramp && size > 1 {
		if first := (size + 1) / 2; first < n {
			out = append(out, Batch{0, first})
			lo = first
		}
	}
	for lo < n {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Batch{lo, hi})
		lo = hi
	}
	return out
}

// exchangeState holds the buffers and requests of one in-flight batch
// exchange. Buffers are reused across batches of the same shape.
type exchangeState struct {
	send [3][2][]float64
	recv [3][2][]float64
	reqs []*mpi.Request
	b    Batch
}

// faceTag builds the message tag for the halo of (dim, side) of batch
// index bi within a thread's sequence, offset by tagBase to keep threads
// disjoint. The tag identifies the halo side being filled at the
// receiver.
func faceTag(tagBase, bi, dim int, side grid.Side) int {
	return tagBase + bi*6 + dim*2 + int(side)
}

// startExchange packs the batch's surface points and posts the receives
// and sends for every dimension at once. Used by the async protocols.
func (e *Engine) startExchange(st *exchangeState, src []*grid.Grid, tagBase, bi int) {
	st.reqs = st.reqs[:0]
	for dim := 0; dim < 3; dim++ {
		e.postDim(st, src, tagBase, bi, dim)
	}
}

// postDim posts the receives and sends of one dimension for the batch.
func (e *Engine) postDim(st *exchangeState, src []*grid.Grid, tagBase, bi, dim int) {
	faceLen := src[st.b.Lo].FaceLen(dim, e.op.R)
	n := st.b.Size() * faceLen
	for _, side := range []grid.Side{grid.Low, grid.High} {
		if e.nbr[dim][side] == mpi.ProcNull {
			continue
		}
		if cap(st.recv[dim][side]) < n {
			st.recv[dim][side] = make([]float64, n)
			st.send[dim][side] = make([]float64, n)
		}
		st.recv[dim][side] = st.recv[dim][side][:n]
		st.send[dim][side] = st.send[dim][side][:n]
		// Post the receive for my (dim, side) halo first so an eager
		// send (including a self-send when the dimension is undivided)
		// finds it waiting.
		st.reqs = append(st.reqs, e.cart.Irecv(e.nbr[dim][side], faceTag(tagBase, bi, dim, side), st.recv[dim][side]))
	}
	for _, side := range []grid.Side{grid.Low, grid.High} {
		if e.nbr[dim][side] == mpi.ProcNull {
			continue
		}
		buf := st.send[dim][side]
		pos := 0
		for gi := st.b.Lo; gi < st.b.Hi; gi++ {
			pos += src[gi].PackFace(dim, side, e.op.R, buf[pos:])
		}
		// My (dim, side) face fills the neighbour's opposite halo.
		tag := faceTag(tagBase, bi, dim, side.Opposite())
		e.cart.Isend(e.nbr[dim][side], tag, buf)
		e.noteSent(int64(len(buf) * 8))
	}
}

// finishExchange waits for the batch's transfers and installs received
// surface points into the grids' halos.
func (e *Engine) finishExchange(st *exchangeState, src []*grid.Grid) {
	mpi.Waitall(st.reqs)
	e.unpack(st, src)
}

// unpack copies every received face buffer into the halos of the batch.
func (e *Engine) unpack(st *exchangeState, src []*grid.Grid) {
	for dim := 0; dim < 3; dim++ {
		faceLen := src[st.b.Lo].FaceLen(dim, e.op.R)
		for _, side := range []grid.Side{grid.Low, grid.High} {
			if e.nbr[dim][side] == mpi.ProcNull {
				// Dirichlet boundary: halos were zeroed at allocation and
				// stay zero.
				continue
			}
			buf := st.recv[dim][side]
			pos := 0
			for gi := st.b.Lo; gi < st.b.Hi; gi++ {
				src[gi].UnpackHalo(dim, side, e.op.R, buf[pos:pos+faceLen])
				pos += faceLen
			}
		}
	}
	e.noteExchanges(int64(st.b.Size()))
}

// exchangeSerialized performs the original GPAW pattern for one batch:
// complete dimension 1, then dimension 2, then dimension 3 (section
// IV.A), blocking on each.
func (e *Engine) exchangeSerialized(st *exchangeState, src []*grid.Grid, tagBase, bi int) {
	for dim := 0; dim < 3; dim++ {
		st.reqs = st.reqs[:0]
		e.postDim(st, src, tagBase, bi, dim)
		mpi.Waitall(st.reqs)
		// Install this dimension's halos before the next dimension runs
		// (the serialized pattern's defining property).
		faceLen := src[st.b.Lo].FaceLen(dim, e.op.R)
		for _, side := range []grid.Side{grid.Low, grid.High} {
			if e.nbr[dim][side] == mpi.ProcNull {
				continue
			}
			buf := st.recv[dim][side]
			pos := 0
			for gi := st.b.Lo; gi < st.b.Hi; gi++ {
				src[gi].UnpackHalo(dim, side, e.op.R, buf[pos:pos+faceLen])
				pos += faceLen
			}
		}
	}
	e.noteExchanges(int64(st.b.Size()))
}

// computeBatch applies the operator to every grid of the batch.
func (e *Engine) computeBatch(dst, src []*grid.Grid, b Batch) {
	for gi := b.Lo; gi < b.Hi; gi++ {
		e.op.Apply(dst[gi], src[gi])
	}
}

// applyGrids runs the configured protocol over one thread's share of the
// grids. tagBase keeps concurrent threads' messages disjoint.
func (e *Engine) applyGrids(dst, src []*grid.Grid, tagBase int, compute func(dst, src []*grid.Grid, b Batch)) {
	if len(dst) != len(src) {
		panic("core: dst/src length mismatch")
	}
	if len(src) == 0 {
		return
	}
	if compute == nil {
		compute = e.computeBatch
	}
	batches := MakeBatches(len(src), e.opts.BatchSize, e.opts.BatchRamp)

	if e.opts.Exchange == ExchangeSerialized {
		st := &exchangeState{}
		for bi, b := range batches {
			st.b = b
			e.exchangeSerialized(st, src, tagBase, bi)
			compute(dst, src, b)
		}
		return
	}

	if !e.opts.DoubleBuffer {
		st := &exchangeState{}
		for bi, b := range batches {
			st.b = b
			e.startExchange(st, src, tagBase, bi)
			e.finishExchange(st, src)
			compute(dst, src, b)
		}
		return
	}

	// Double buffering (section V): keep the next batch's exchange in
	// flight while computing the current one.
	states := [2]*exchangeState{{}, {}}
	states[0].b = batches[0]
	e.startExchange(states[0], src, tagBase, 0)
	for bi := range batches {
		cur := states[bi%2]
		if bi+1 < len(batches) {
			nxt := states[(bi+1)%2]
			nxt.b = batches[bi+1]
			e.startExchange(nxt, src, tagBase, bi+1)
		}
		e.finishExchange(cur, src)
		compute(dst, src, cur.b)
	}
}

// tagStride returns the tag-space width reserved per thread for n grids.
func tagStride(n int) int { return 6 * (n + 2) }

// ApplyAll performs one application of the operator to every grid using
// the engine's approach-independent protocol on the calling goroutine
// (the flat layouts, one process per core).
func (e *Engine) ApplyAll(dst, src []*grid.Grid) {
	e.applyGrids(dst, src, 0, nil)
}

// ApplyAllHybridMultiple divides the grids among the engine's worker
// pool; each worker runs the full protocol — including its own
// communication — on its share (the hybrid multiple approach). The only
// synchronization is the final join, whose cost does not grow with the
// number of grids. The world must be in MULTIPLE thread mode.
func (e *Engine) ApplyAllHybridMultiple(dst, src []*grid.Grid) {
	if e.cart.World().Mode() != mpi.ThreadMultiple {
		panic("core: hybrid multiple requires a MULTIPLE-mode world")
	}
	stride := tagStride(len(src))
	e.pool.Exec(len(src), func(w, lo, hi int) {
		e.applyGrids(dst[lo:hi], src[lo:hi], w*stride, nil)
	})
}

// ApplyAllHybridMasterOnly runs the protocol on the calling (master)
// thread only — SINGLE thread mode suffices — but splits each grid's
// computation across the same worker pool with a fork-join per grid, so
// the synchronization cost grows with the number of grids (the paper's
// explanation for this approach's inferior scaling).
func (e *Engine) ApplyAllHybridMasterOnly(dst, src []*grid.Grid) {
	compute := func(dsts, srcs []*grid.Grid, b Batch) {
		for gi := b.Lo; gi < b.Hi; gi++ {
			// Per-grid fork-join: cost proportional to #grids.
			e.op.ApplyParallel(e.pool, dsts[gi], srcs[gi])
		}
	}
	e.applyGrids(dst, src, 0, compute)
}

// WorkerPool exposes the engine's per-node worker pool (nil for the
// flat approaches). The distributed solver layer in internal/gpaw uses
// it to split local compute while the engine handles communication.
func (e *Engine) WorkerPool() *stencil.Pool { return e.pool }

// RunBatches executes the engine's configured exchange protocol
// (serialized or async, batched, double-buffered) over src on the
// calling goroutine and invokes compute for each batch once its halos
// are installed. It is ApplyAll with the computation replaced by a
// callback — the hook the distributed solvers use to run fused kernels
// behind the paper's overlap protocol.
func (e *Engine) RunBatches(src []*grid.Grid, compute func(b Batch)) {
	e.applyGrids(src, src, 0, func(_, _ []*grid.Grid, b Batch) { compute(b) })
}

// RunBatchesHybridMultiple divides src across the engine's worker pool;
// each worker runs the full protocol — including its own communication —
// on its share, and compute is invoked with batch indices into the full
// src slice. The world must be in MULTIPLE thread mode. Without a pool
// it degrades to RunBatches.
func (e *Engine) RunBatchesHybridMultiple(src []*grid.Grid, compute func(b Batch)) {
	if e.pool == nil {
		e.RunBatches(src, compute)
		return
	}
	if e.cart.World().Mode() != mpi.ThreadMultiple {
		panic("core: hybrid multiple requires a MULTIPLE-mode world")
	}
	stride := tagStride(len(src))
	e.pool.Exec(len(src), func(w, lo, hi int) {
		e.applyGrids(src[lo:hi], src[lo:hi], w*stride, func(_, _ []*grid.Grid, b Batch) {
			compute(Batch{Lo: b.Lo + lo, Hi: b.Hi + lo})
		})
	})
}

// Exchange fills the halos of every grid from the neighbouring ranks
// (and from the grid itself across periodic wraps in undivided
// dimensions) using the engine's configured protocol, without any
// computation. Corner halos are not filled — the axis-aligned stencils
// never read them, matching GPAW.
func (e *Engine) Exchange(grids []*grid.Grid) {
	e.RunBatches(grids, func(Batch) {})
}

// Apply dispatches to the approach-specific driver.
func (e *Engine) Apply(a Approach, dst, src []*grid.Grid) {
	switch a {
	case FlatOriginal, FlatOptimized:
		e.ApplyAll(dst, src)
	case HybridMultiple:
		e.ApplyAllHybridMultiple(dst, src)
	case HybridMasterOnly:
		e.ApplyAllHybridMasterOnly(dst, src)
	default:
		panic(fmt.Sprintf("core: unknown approach %d", int(a)))
	}
}
