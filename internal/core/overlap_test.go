package core

import (
	"fmt"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/stencil"
	"repro/internal/topology"
)

// Split-phase halo exchange tests: StartExchange/FinishExchange must
// install exactly the halos the blocking Exchange installs, for every
// layout, boundary condition and option set — and the steady-state
// start/finish loop must not allocate.

// overlapEngine builds a per-rank engine over the given layout.
func overlapEngine(c *mpi.Comm, global, procs topology.Dims, periodic bool, opts Options) *Engine {
	dec, err := grid.NewDecomp(global, procs, 2)
	if err != nil {
		panic(err)
	}
	cart := c.CartCreate(procs, [3]bool{periodic, periodic, periodic}, true)
	eng, err := NewEngine(cart, dec, stencil.Laplacian(2, 1), periodic, opts)
	if err != nil {
		panic(err)
	}
	return eng
}

// fillLocal seeds a rank's grids with a deterministic global-index field.
func fillLocal(dec *grid.Decomp, coord topology.Coord, gs []*grid.Grid) {
	off := dec.Offset(coord)
	for gi, g := range gs {
		gi := gi
		g.FillFunc(func(i, j, k int) float64 {
			return float64(gi*1000000+(off[0]+i)*10000+(off[1]+j)*100+(off[2]+k)) + 0.5
		})
	}
}

// TestStartFinishMatchesExchange: for several layouts, both boundary
// conditions and both option sets, a StartExchange/FinishExchange pair
// must leave every halo cell bitwise equal to what the blocking
// Exchange produces.
func TestStartFinishMatchesExchange(t *testing.T) {
	global := topology.Dims{12, 10, 8}
	layouts := []topology.Dims{{1, 1, 1}, {2, 1, 1}, {1, 2, 2}, {2, 2, 2}, {1, 1, 4}}
	for _, procs := range layouts {
		for _, periodic := range []bool{false, true} {
			for _, opts := range []Options{
				OptionsFor(FlatOptimized, 2, 1),
				OptionsFor(FlatOriginal, 1, 1), // serialized: Start degrades to blocking
			} {
				opts := opts
				err := mpi.Run(procs.Count(), mpi.ThreadSingle, func(c *mpi.Comm) {
					eng := overlapEngine(c, global, procs, periodic, opts)
					defer eng.Close()
					coord := eng.Coord()
					dec, _ := grid.NewDecomp(global, procs, 2)
					mk := func() []*grid.Grid {
						gs := []*grid.Grid{eng.NewLocalGrid(), eng.NewLocalGrid(), eng.NewLocalGrid()}
						fillLocal(dec, coord, gs)
						return gs
					}
					want := mk()
					eng.Exchange(want)
					got := mk()
					h := eng.StartExchange(got)
					eng.FinishExchange(h)
					for gi := range got {
						// Compare the full allocation, halos included.
						wd, gd := want[gi].Data(), got[gi].Data()
						for i := range wd {
							if wd[i] != gd[i] {
								t.Errorf("procs %v periodic %v opts %+v grid %d: halo deviates at flat index %d (%g != %g)",
									procs, periodic, opts, gi, i, gd[i], wd[i])
								return
							}
						}
					}
				})
				if err != nil {
					t.Fatalf("procs %v: %v", procs, err)
				}
			}
		}
	}
}

// TestSplitExchangeInteriorDuringFlight: interior stencil compute
// between Start and Finish plus shell compute after must reproduce the
// exchange-then-full-apply result bitwise (the protocol the distributed
// solvers run).
func TestSplitExchangeInteriorDuringFlight(t *testing.T) {
	global := topology.Dims{12, 12, 12}
	op := stencil.Laplacian(2, 0.7)
	for _, procs := range []topology.Dims{{2, 1, 1}, {2, 2, 1}, {1, 2, 2}} {
		for _, periodic := range []bool{false, true} {
			err := mpi.Run(procs.Count(), mpi.ThreadSingle, func(c *mpi.Comm) {
				eng := overlapEngine(c, global, procs, periodic, OptionsFor(FlatOptimized, 1, 1))
				defer eng.Close()
				dec, _ := grid.NewDecomp(global, procs, 2)
				src := eng.NewLocalGrid()
				fillLocal(dec, eng.Coord(), []*grid.Grid{src})
				want := eng.NewLocalGrid()
				eng.Exchange([]*grid.Grid{src})
				op.Apply(want, src)

				src2 := eng.NewLocalGrid()
				fillLocal(dec, eng.Coord(), []*grid.Grid{src2})
				got := eng.NewLocalGrid()
				h := eng.StartExchange([]*grid.Grid{src2})
				op.ApplyInterior(nil, got, src2)
				h.Finish()
				op.ApplyShell(got, src2)
				if diff := got.MaxAbsDiff(want); diff != 0 {
					t.Errorf("procs %v periodic %v: interior+shell deviates by %g", procs, periodic, diff)
				}
			})
			if err != nil {
				t.Fatalf("procs %v: %v", procs, err)
			}
		}
	}
}

// TestRunBatchesSplitCoversAllBatches: the split driver must hand every
// grid to interior and shell exactly once each, interior before shell
// per batch, for all option sets including hybrid multiple.
func TestRunBatchesSplitCoversAllBatches(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	procs := topology.Dims{1, 1, 2}
	const n = 7
	for _, hybrid := range []bool{false, true} {
		mode := mpi.ThreadSingle
		opts := OptionsFor(FlatOptimized, 2, 1)
		if hybrid {
			mode = mpi.ThreadMultiple
			opts = OptionsFor(HybridMultiple, 2, 2)
		}
		err := mpi.Run(procs.Count(), mode, func(c *mpi.Comm) {
			eng := overlapEngine(c, global, procs, true, opts)
			defer eng.Close()
			gs := make([]*grid.Grid, n)
			for i := range gs {
				gs[i] = eng.NewLocalGrid()
			}
			intSeen := make([]int, n)
			shellSeen := make([]int, n)
			var seenMu = make(chan struct{}, 1)
			seenMu <- struct{}{}
			interior := func(b Batch) {
				<-seenMu
				for gi := b.Lo; gi < b.Hi; gi++ {
					intSeen[gi]++
					if shellSeen[gi] != 0 {
						panic(fmt.Sprintf("grid %d: shell before interior", gi))
					}
				}
				seenMu <- struct{}{}
			}
			shell := func(b Batch) {
				<-seenMu
				for gi := b.Lo; gi < b.Hi; gi++ {
					shellSeen[gi]++
					if intSeen[gi] != 1 {
						panic(fmt.Sprintf("grid %d: shell without interior", gi))
					}
				}
				seenMu <- struct{}{}
			}
			if hybrid {
				eng.RunBatchesSplitHybridMultiple(gs, interior, shell)
			} else {
				eng.RunBatchesSplit(gs, interior, shell)
			}
			for gi := 0; gi < n; gi++ {
				if intSeen[gi] != 1 || shellSeen[gi] != 1 {
					panic(fmt.Sprintf("grid %d visited interior %d shell %d times", gi, intSeen[gi], shellSeen[gi]))
				}
			}
		})
		if err != nil {
			t.Fatalf("hybrid=%v: %v", hybrid, err)
		}
	}
}

// TestOverlapExchangeZeroAlloc is the hoisted-buffer regression test:
// once warmed up, a StartExchange/FinishExchange cycle must perform no
// allocation at all. One periodic rank exercises the full pack/send/
// recv/unpack path through self-messages in every dimension, and every
// receive is posted before its matching send, so the transport's
// direct-delivery fast path and the engine's pooled state make the
// loop allocation-free in steady state.
func TestOverlapExchangeZeroAlloc(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	procs := topology.Dims{1, 1, 1}
	err := mpi.Run(1, mpi.ThreadSingle, func(c *mpi.Comm) {
		eng := overlapEngine(c, global, procs, true, OptionsFor(FlatOptimized, 1, 1))
		defer eng.Close()
		g := eng.NewLocalGrid()
		gs := []*grid.Grid{g}
		// Warm up the engine scratch pools, the mpi request pool and the
		// mailbox slices.
		for i := 0; i < 4; i++ {
			h := eng.StartExchange(gs)
			eng.FinishExchange(h)
			eng.Exchange(gs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			h := eng.StartExchange(gs)
			eng.FinishExchange(h)
		}); allocs != 0 {
			t.Errorf("split-phase exchange allocates %.1f objects/iteration, want 0", allocs)
		}
		// The blocking path shares the hoisted state and must be
		// allocation-free too.
		if allocs := testing.AllocsPerRun(100, func() {
			eng.Exchange(gs)
		}); allocs != 0 {
			t.Errorf("blocking exchange allocates %.1f objects/iteration, want 0", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
