package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/mpi"
	"repro/internal/stencil"
	"repro/internal/topology"
)

// TestMakeBatchesProperty: for any grid count, batch size and ramp flag,
// batches tile [0, n) contiguously with every batch within size.
func TestMakeBatchesProperty(t *testing.T) {
	f := func(nRaw, sizeRaw uint16, ramp bool) bool {
		n := int(nRaw % 500)
		size := int(sizeRaw%64) + 1
		bs := MakeBatches(n, size, ramp)
		pos := 0
		for _, b := range bs {
			if b.Lo != pos || b.Size() < 1 || b.Size() > size {
				return false
			}
			pos = b.Hi
		}
		return pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEngineWithKineticOperator runs the distributed engine with the
// DFT kinetic operator -(1/2)∇² instead of the bare Laplacian,
// demonstrating the engine is operator-agnostic and matches the
// Hamiltonian's sequential application.
func TestEngineWithKineticOperator(t *testing.T) {
	global := topology.Dims{12, 12, 12}
	const procs = 4
	procGrid := topology.DecomposeGrid(procs, global)
	decomp := grid.MustDecomp(global, procGrid, 2)
	// The DFT kinetic operator -(1/2)∇², built directly so the engine's
	// tests stay independent of the solver package (which now imports
	// core for its distributed layer).
	kin := stencil.Laplacian(2, 0.4).Scaled(-0.5)

	// Sequential reference: H with V = nil and periodic halos.
	seqSrc := grid.NewDims(global, 2)
	seqSrc.FillFunc(func(i, j, k int) float64 { return TestField(0, i, j, k) })
	seqDst := grid.NewDims(global, 2)
	kin.ApplyPeriodicReference(seqDst, seqSrc)

	out := grid.NewDims(global, 0)
	err := mpi.Run(procs, mpi.ThreadSingle, func(c *mpi.Comm) {
		cart := c.CartCreate(procGrid, [3]bool{true, true, true}, true)
		eng, err := NewEngine(cart, decomp, kin, true, OptionsFor(FlatOptimized, 2, 1))
		if err != nil {
			panic(err)
		}
		coord := eng.Coord()
		off := decomp.Offset(coord)
		src := eng.NewLocalGrid()
		src.FillFunc(func(i, j, k int) float64 {
			return TestField(0, off[0]+i, off[1]+j, off[2]+k)
		})
		dst := eng.NewLocalGrid()
		eng.ApplyAll([]*grid.Grid{dst}, []*grid.Grid{src})
		// Gather on rank 0.
		if c.Rank() == 0 {
			decomp.Gather(out, coord, dst)
			buf := make([]float64, maxLocalPoints(decomp))
			for r := 1; r < procs; r++ {
				rc := procGrid.Coord(r)
				n := decomp.LocalDims(rc).Count()
				c.Recv(r, 0, buf[:n])
				lg := grid.NewDims(decomp.LocalDims(rc), 0)
				lg.SetInterior(buf[:n])
				decomp.Gather(out, rc, lg)
			}
		} else {
			c.Send(0, 0, dst.InteriorSlice())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := out.MaxAbsDiff(seqDst); d != 0 {
		t.Fatalf("distributed kinetic application deviates by %g", d)
	}
}

// TestDistributedOrthogonalization demonstrates the property the paper
// calls out in section IV: because every rank owns the SAME sub-domain
// of EVERY grid, inner products between wave-functions reduce to a
// per-rank partial dot plus one Allreduce — which is why GPAW cannot
// assign different grids to different ranks (and why the flat
// split-groups variant of section VII is unusable in practice).
func TestDistributedOrthogonalization(t *testing.T) {
	global := topology.Dims{10, 10, 10}
	const procs = 8
	const nGrids = 5
	procGrid := topology.DecomposeGrid(procs, global)
	decomp := grid.MustDecomp(global, procGrid, 2)

	// Sequential overlap matrix.
	seq := make([]*grid.Grid, nGrids)
	for g := range seq {
		seq[g] = grid.NewDims(global, 2)
		g := g
		seq[g].FillFunc(func(i, j, k int) float64 { return TestField(g, i, j, k) })
	}
	want := linalg.NewMatrix(nGrids, nGrids)
	for a := 0; a < nGrids; a++ {
		for b := 0; b < nGrids; b++ {
			want[a][b] = seq[a].Dot(seq[b])
		}
	}

	got := linalg.NewMatrix(nGrids, nGrids)
	err := mpi.Run(procs, mpi.ThreadSingle, func(c *mpi.Comm) {
		cart := c.CartCreate(procGrid, [3]bool{true, true, true}, true)
		coord := cart.Coords(c.Rank())
		off := decomp.Offset(coord)
		local := make([]*grid.Grid, nGrids)
		for g := range local {
			local[g] = decomp.NewLocal(coord)
			g := g
			local[g].FillFunc(func(i, j, k int) float64 {
				return TestField(g, off[0]+i, off[1]+j, off[2]+k)
			})
		}
		// Partial overlap matrix, then one Allreduce over all entries.
		partial := make([]float64, nGrids*nGrids)
		for a := 0; a < nGrids; a++ {
			for b := 0; b < nGrids; b++ {
				partial[a*nGrids+b] = local[a].Dot(local[b])
			}
		}
		sum := make([]float64, len(partial))
		c.Allreduce(mpi.OpSum, partial, sum)
		if c.Rank() == 0 {
			for a := 0; a < nGrids; a++ {
				for b := 0; b < nGrids; b++ {
					got[a][b] = sum[a*nGrids+b]
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("distributed overlap matrix deviates by %g", d)
	}
}

// TestDistributedPoissonJacobi runs a few damped Jacobi sweeps of the
// Poisson equation through the distributed engine (halo exchange per
// sweep) and checks the iterates match the sequential solver exactly —
// the Poisson half of GPAW's FD workload on the real runtime.
func TestDistributedPoissonJacobi(t *testing.T) {
	global := topology.Dims{12, 12, 12}
	const procs = 8
	const sweeps = 10
	h := 0.5
	omega := 0.7
	procGrid := topology.DecomposeGrid(procs, global)
	decomp := grid.MustDecomp(global, procGrid, 2)

	rhsOf := func(i, j, k int) float64 {
		return math.Sin(2*math.Pi*float64(i)/12) * math.Cos(2*math.Pi*float64(j)/12)
	}

	// Sequential reference sweeps with the Poisson solver's radius-2
	// Laplacian.
	op := stencil.Laplacian(2, h)
	seqPhi := grid.NewDims(global, 2)
	seqRhs := grid.NewDims(global, 2)
	seqRhs.FillFunc(rhsOf)
	seqTmp := grid.NewDims(global, 2)
	for s := 0; s < sweeps; s++ {
		seqPhi.FillHalosPeriodic()
		op.Apply(seqTmp, seqPhi)
		// phi += omega/diag * (rhs - A phi)
		seqTmp.Scale(-1)
		seqTmp.Axpy(1, seqRhs)
		seqPhi.Axpy(omega/op.Center, seqTmp)
	}

	out := grid.NewDims(global, 0)
	err := mpi.Run(procs, mpi.ThreadSingle, func(c *mpi.Comm) {
		cart := c.CartCreate(procGrid, [3]bool{true, true, true}, true)
		eng, err := NewEngine(cart, decomp, op, true, OptionsFor(FlatOptimized, 1, 1))
		if err != nil {
			panic(err)
		}
		coord := eng.Coord()
		off := decomp.Offset(coord)
		phi := eng.NewLocalGrid()
		rhs := eng.NewLocalGrid()
		rhs.FillFunc(func(i, j, k int) float64 { return rhsOf(off[0]+i, off[1]+j, off[2]+k) })
		tmp := eng.NewLocalGrid()
		for s := 0; s < sweeps; s++ {
			eng.ApplyAll([]*grid.Grid{tmp}, []*grid.Grid{phi})
			tmp.Scale(-1)
			tmp.Axpy(1, rhs)
			phi.Axpy(omega/op.Center, tmp)
		}
		if c.Rank() == 0 {
			decomp.Gather(out, coord, phi)
			buf := make([]float64, maxLocalPoints(decomp))
			for r := 1; r < procs; r++ {
				rc := procGrid.Coord(r)
				n := decomp.LocalDims(rc).Count()
				c.Recv(r, 0, buf[:n])
				lg := grid.NewDims(decomp.LocalDims(rc), 0)
				lg.SetInterior(buf[:n])
				decomp.Gather(out, rc, lg)
			}
		} else {
			c.Send(0, 0, phi.InteriorSlice())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := out.MaxAbsDiff(seqPhi); d != 0 {
		t.Fatalf("distributed Jacobi iterate deviates by %g after %d sweeps", d, sweeps)
	}
}

// TestAllApproachesAgreeWithEachOther cross-checks the four approaches
// pairwise on a workload where batching, ramping and uneven splits all
// engage at once.
func TestAllApproachesAgreeWithEachOther(t *testing.T) {
	outputs := make(map[Approach]*grid.Set)
	for _, a := range Approaches {
		j := Job{
			Global:     topology.Dims{14, 10, 12},
			NumGrids:   7,
			Radius:     2,
			Spacing:    0.35,
			Periodic:   true,
			Cores:      8,
			Threads:    4,
			Approach:   a,
			BatchSize:  3,
			BatchRamp:  true,
			Iterations: 3,
		}
		res, err := j.Run(true)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		outputs[a] = res.Output
	}
	ref := outputs[FlatOriginal]
	for _, a := range Approaches[1:] {
		if d := ref.MaxAbsDiff(outputs[a]); d != 0 {
			t.Fatalf("%v deviates from %v by %g", a, FlatOriginal, d)
		}
	}
}

// TestTestFieldDeterministic pins the initial-condition generator: the
// same arguments always give the same value, and distinct grids differ.
func TestTestFieldDeterministic(t *testing.T) {
	if TestField(1, 2, 3, 4) != TestField(1, 2, 3, 4) {
		t.Fatal("TestField not deterministic")
	}
	if TestField(0, 5, 5, 5) == TestField(1, 5, 5, 5) {
		t.Fatal("TestField should differ between grids")
	}
	f := func(g, x, y, z uint8) bool {
		v := TestField(int(g), int(x), int(y), int(z))
		return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyReportsDeviation ensures Verify would actually catch a wrong
// engine: perturb the sequential reference and check the comparison is
// sensitive.
func TestVerifyReportsDeviation(t *testing.T) {
	j := Job{
		Global: topology.Dims{8, 8, 8}, NumGrids: 2, Radius: 2, Spacing: 0.5,
		Periodic: true, Cores: 2, Threads: 1, Approach: FlatOptimized,
		BatchSize: 1, Iterations: 1,
	}
	res, err := j.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	want := j.Sequential()
	if res.Output.MaxAbsDiff(want) != 0 {
		t.Fatal("engine broken")
	}
	// Perturb one cell: the diff must be exactly the perturbation.
	want.Grids[1].Set(3, 3, 3, want.Grids[1].At(3, 3, 3)+1e-3)
	if d := res.Output.MaxAbsDiff(want); math.Abs(d-1e-3) > 1e-12 {
		t.Fatalf("comparison insensitive: %g", d)
	}
}
