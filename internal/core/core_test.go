package core

import (
	"fmt"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/stencil"
	"repro/internal/topology"
)

func TestApproachStringsAndHybrid(t *testing.T) {
	want := map[Approach]string{
		FlatOriginal:     "Flat original",
		FlatOptimized:    "Flat optimized",
		HybridMultiple:   "Hybrid multiple",
		HybridMasterOnly: "Hybrid master-only",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if FlatOriginal.Hybrid() || FlatOptimized.Hybrid() {
		t.Fatal("flat approaches reported hybrid")
	}
	if !HybridMultiple.Hybrid() || !HybridMasterOnly.Hybrid() {
		t.Fatal("hybrid approaches not reported hybrid")
	}
	if Approach(99).String() == "" {
		t.Fatal("unknown approach should still format")
	}
	if ExchangeSerialized.String() != "serialized" || ExchangeAsync.String() != "async" {
		t.Fatal("ExchangeMode.String broken")
	}
}

func TestOptionsForMatchesPaper(t *testing.T) {
	o := OptionsFor(FlatOriginal, 8, 4)
	if o.Exchange != ExchangeSerialized || o.DoubleBuffer || o.BatchSize != 1 {
		t.Fatalf("FlatOriginal options = %+v", o)
	}
	o = OptionsFor(FlatOptimized, 8, 4)
	if o.Exchange != ExchangeAsync || !o.DoubleBuffer || o.BatchSize != 8 || o.Threads != 1 {
		t.Fatalf("FlatOptimized options = %+v", o)
	}
	o = OptionsFor(HybridMultiple, 8, 4)
	if o.Threads != 4 || o.BatchSize != 8 {
		t.Fatalf("HybridMultiple options = %+v", o)
	}
	o = OptionsFor(HybridMasterOnly, 0, 4)
	if o.BatchSize != 1 {
		t.Fatalf("batch clamp failed: %+v", o)
	}
}

func TestMakeBatches(t *testing.T) {
	bs := MakeBatches(10, 4, false)
	if len(bs) != 3 || bs[0] != (Batch{0, 4}) || bs[1] != (Batch{4, 8}) || bs[2] != (Batch{8, 10}) {
		t.Fatalf("batches = %v", bs)
	}
	// Ramp halves the first batch.
	bs = MakeBatches(10, 4, true)
	if bs[0].Size() != 2 {
		t.Fatalf("ramp first batch = %d, want 2", bs[0].Size())
	}
	total := 0
	prevHi := 0
	for _, b := range bs {
		if b.Lo != prevHi {
			t.Fatalf("batches not contiguous: %v", bs)
		}
		prevHi = b.Hi
		total += b.Size()
	}
	if total != 10 {
		t.Fatalf("batches cover %d grids, want 10", total)
	}
	if got := MakeBatches(0, 4, true); got != nil {
		t.Fatalf("batches of empty set = %v", got)
	}
	// Ramp with n <= size leaves a single batch.
	bs = MakeBatches(3, 8, true)
	if len(bs) != 1 || bs[0].Size() != 3 {
		t.Fatalf("small ramp batches = %v", bs)
	}
}

func TestFaceTagDisjointAcrossThreads(t *testing.T) {
	n := 16
	stride := tagStride(n)
	seen := map[int]bool{}
	for th := 0; th < 4; th++ {
		for bi := 0; bi <= n; bi++ {
			for dim := 0; dim < 3; dim++ {
				for _, s := range []grid.Side{grid.Low, grid.High} {
					tag := faceTag(th*stride, bi, dim, s)
					if tag < 0 {
						t.Fatalf("negative tag %d", tag)
					}
					if seen[tag] {
						t.Fatalf("tag collision at thread %d batch %d dim %d side %v", th, bi, dim, s)
					}
					seen[tag] = true
				}
			}
		}
	}
}

// verifyJob runs the job and fails the test unless the distributed
// result matches the sequential reference exactly.
func verifyJob(t *testing.T, j Job) *Result {
	t.Helper()
	diff, res, err := j.Verify()
	if err != nil {
		t.Fatalf("%v: %v", j.Approach, err)
	}
	if diff != 0 {
		t.Fatalf("%v: max deviation %g from sequential reference", j.Approach, diff)
	}
	return res
}

func baseJob() Job {
	return Job{
		Global:     topology.Dims{12, 12, 12},
		NumGrids:   8,
		Radius:     2,
		Spacing:    0.3,
		Periodic:   true,
		Cores:      8,
		Threads:    2,
		BatchSize:  2,
		Iterations: 2,
	}
}

func TestAllApproachesMatchSequential(t *testing.T) {
	for _, a := range Approaches {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			j := baseJob()
			j.Approach = a
			verifyJob(t, j)
		})
	}
}

func TestApproachesMatchOnNonCubicGrid(t *testing.T) {
	for _, a := range []Approach{FlatOriginal, HybridMultiple} {
		j := baseJob()
		j.Global = topology.Dims{16, 8, 12}
		j.NumGrids = 4
		j.Approach = a
		verifyJob(t, j)
	}
}

func TestApproachesMatchWithUnevenDecomposition(t *testing.T) {
	// 13 points over a process dimension of 2 gives 7+6 splits.
	j := baseJob()
	j.Global = topology.Dims{13, 13, 13}
	j.Cores = 4
	j.Threads = 2
	j.Approach = HybridMultiple
	verifyJob(t, j)
}

func TestDirichletBoundary(t *testing.T) {
	j := baseJob()
	j.Periodic = false
	j.Approach = FlatOptimized
	verifyJob(t, j)
}

func TestBatchSizeInvariance(t *testing.T) {
	// Results must be identical for every batch size (batching only
	// changes message packing).
	for _, batchSize := range []int{1, 2, 3, 8, 100} {
		j := baseJob()
		j.Approach = FlatOptimized
		j.BatchSize = batchSize
		verifyJob(t, j)
	}
}

func TestBatchRampInvariance(t *testing.T) {
	j := baseJob()
	j.Approach = HybridMultiple
	j.BatchSize = 4
	j.BatchRamp = true
	verifyJob(t, j)
}

func TestSingleCoreDegenerateRun(t *testing.T) {
	// One core: everything is a self-exchange via the periodic wrap.
	j := baseJob()
	j.Cores = 1
	j.Threads = 1
	j.Approach = FlatOriginal
	verifyJob(t, j)
}

func TestSingleNodeHybrid(t *testing.T) {
	j := baseJob()
	j.Cores = 4
	j.Threads = 4
	j.Approach = HybridMultiple
	verifyJob(t, j)
}

func TestManyIterations(t *testing.T) {
	j := baseJob()
	j.Iterations = 5
	j.Approach = FlatOptimized
	verifyJob(t, j)
}

func TestStatsAccounting(t *testing.T) {
	j := baseJob()
	j.Approach = FlatOptimized
	j.BatchSize = 1
	res := verifyJob(t, j)
	// 8 ranks in a 2x2x2 cart: every rank sends 6 faces per grid per
	// iteration: 8 ranks * 6 faces * 8 grids * 2 iters = 768 messages.
	if res.Stats.MessagesSent != 768 {
		t.Fatalf("messages = %d, want 768", res.Stats.MessagesSent)
	}
	if res.Stats.Exchanges != int64(8*8*2) {
		t.Fatalf("exchanges = %d", res.Stats.Exchanges)
	}
	// Batch 8 must send 8x fewer, 8x larger messages with the same bytes.
	j.BatchSize = 8
	res8 := verifyJob(t, j)
	if res8.Stats.MessagesSent != 768/8 {
		t.Fatalf("batched messages = %d, want %d", res8.Stats.MessagesSent, 768/8)
	}
	if res8.Stats.BytesSent != res.Stats.BytesSent {
		t.Fatalf("batching changed total bytes: %d vs %d", res8.Stats.BytesSent, res.Stats.BytesSent)
	}
	if res8.Stats.LargestMsg != 8*res.Stats.LargestMsg {
		t.Fatalf("batched largest message = %d, want %d", res8.Stats.LargestMsg, 8*res.Stats.LargestMsg)
	}
}

func TestHybridReducesMessageCount(t *testing.T) {
	// Hybrid multiple divides each grid into 4x fewer pieces, so with
	// the same core count it sends fewer messages overall.
	flat := baseJob()
	flat.Approach = FlatOptimized
	flat.BatchSize = 1
	resFlat := verifyJob(t, flat)

	hyb := flat
	hyb.Approach = HybridMultiple
	hyb.Threads = 4
	resHyb := verifyJob(t, hyb)

	if resHyb.Stats.MessagesSent >= resFlat.Stats.MessagesSent {
		t.Fatalf("hybrid sent %d messages, flat %d; hybrid should send fewer",
			resHyb.Stats.MessagesSent, resFlat.Stats.MessagesSent)
	}
	if resHyb.Stats.BytesSent >= resFlat.Stats.BytesSent {
		t.Fatalf("hybrid sent %d bytes, flat %d; hybrid should send fewer",
			resHyb.Stats.BytesSent, resFlat.Stats.BytesSent)
	}
}

func TestProcsLayout(t *testing.T) {
	j := baseJob()
	j.Approach = FlatOptimized
	j.Cores = 8
	if p, err := j.Procs(); err != nil || p != 8 {
		t.Fatalf("flat procs = %d, %v", p, err)
	}
	j.Approach = HybridMultiple
	j.Threads = 4
	if p, err := j.Procs(); err != nil || p != 2 {
		t.Fatalf("hybrid procs = %d, %v", p, err)
	}
	j.Cores = 6
	if _, err := j.Procs(); err == nil {
		t.Fatal("non-divisible cores accepted")
	}
	j.Cores = 0
	if _, err := j.Procs(); err == nil {
		t.Fatal("zero cores accepted")
	}
	j.Cores = 8
	j.Threads = 0
	if _, err := j.Procs(); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestJobValidation(t *testing.T) {
	j := baseJob()
	j.NumGrids = 0
	if _, err := j.Run(false); err == nil {
		t.Fatal("zero grids accepted")
	}
	j = baseJob()
	j.Cores = 4096 // sub-domains thinner than the halo
	if _, err := j.Run(false); err == nil {
		t.Fatal("over-decomposed job accepted")
	}
}

func TestNewEngineValidation(t *testing.T) {
	op := stencil.Laplacian(2, 1)
	err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
		cart := c.CartCreate(topology.Dims{4, 1, 1}, [3]bool{true, true, true}, false)
		// Mismatched proc grid.
		d := grid.MustDecomp(topology.Dims{16, 16, 16}, topology.Dims{2, 2, 1}, 2)
		if _, err := NewEngine(cart, d, op, true, OptionsFor(FlatOptimized, 1, 1)); err == nil {
			panic("mismatched cart accepted")
		}
		// Halo thinner than radius.
		d2 := grid.MustDecomp(topology.Dims{16, 16, 16}, topology.Dims{4, 1, 1}, 1)
		if _, err := NewEngine(cart, d2, op, true, OptionsFor(FlatOptimized, 1, 1)); err == nil {
			panic("thin halo accepted")
		}
		// Bad options.
		d3 := grid.MustDecomp(topology.Dims{16, 16, 16}, topology.Dims{4, 1, 1}, 2)
		if _, err := NewEngine(cart, d3, op, true, Options{BatchSize: 0, Threads: 1}); err == nil {
			panic("batch 0 accepted")
		}
		if _, err := NewEngine(cart, d3, op, true, Options{BatchSize: 1, Threads: 0}); err == nil {
			panic("threads 0 accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEngineAccessors(t *testing.T) {
	op := stencil.Laplacian(2, 1)
	err := mpi.Run(2, mpi.ThreadSingle, func(c *mpi.Comm) {
		cart := c.CartCreate(topology.Dims{2, 1, 1}, [3]bool{true, true, true}, false)
		d := grid.MustDecomp(topology.Dims{8, 8, 8}, topology.Dims{2, 1, 1}, 2)
		eng, err := NewEngine(cart, d, op, true, OptionsFor(FlatOptimized, 2, 1))
		if err != nil {
			panic(err)
		}
		if eng.LocalDims() != (topology.Dims{4, 8, 8}) {
			panic(fmt.Sprintf("local dims = %v", eng.LocalDims()))
		}
		g := eng.NewLocalGrid()
		if g.Dims() != eng.LocalDims() || g.H != 2 {
			panic("NewLocalGrid shape wrong")
		}
		eng.ResetStats()
		if eng.Stats() != (Stats{}) {
			panic("ResetStats did not clear")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHybridMultipleRequiresMultipleMode(t *testing.T) {
	err := mpi.Run(1, mpi.ThreadSingle, func(c *mpi.Comm) {
		cart := c.CartCreate(topology.Dims{1, 1, 1}, [3]bool{true, true, true}, false)
		d := grid.MustDecomp(topology.Dims{8, 8, 8}, topology.Dims{1, 1, 1}, 2)
		eng, err := NewEngine(cart, d, stencil.Laplacian(2, 1), true, OptionsFor(HybridMultiple, 1, 2))
		if err != nil {
			panic(err)
		}
		src := []*grid.Grid{eng.NewLocalGrid()}
		dst := []*grid.Grid{eng.NewLocalGrid()}
		eng.ApplyAllHybridMultiple(dst, src) // must panic: SINGLE world
	})
	if err == nil {
		t.Fatal("hybrid multiple in SINGLE mode not rejected")
	}
}

func TestSerializedEqualsAsyncExchange(t *testing.T) {
	// The two exchange modes must be numerically indistinguishable.
	j1 := baseJob()
	j1.Approach = FlatOriginal // serialized
	r1, _, err := j1.Verify()
	if err != nil {
		t.Fatal(err)
	}
	j2 := baseJob()
	j2.Approach = FlatOptimized // async
	r2, _, err := j2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != 0 || r2 != 0 {
		t.Fatalf("deviations: serialized %g, async %g", r1, r2)
	}
}

func TestMoreGridsThanThreadsDivide(t *testing.T) {
	// Grids not divisible by thread count: split must still cover all.
	j := baseJob()
	j.NumGrids = 7
	j.Approach = HybridMultiple
	j.Threads = 4
	j.Cores = 8
	verifyJob(t, j)
}

func TestFewerGridsThanThreads(t *testing.T) {
	j := baseJob()
	j.NumGrids = 2
	j.Approach = HybridMultiple
	j.Threads = 4
	j.Cores = 4
	verifyJob(t, j)
}
