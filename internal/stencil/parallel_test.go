package stencil

import (
	"sync/atomic"
	"testing"

	"repro/internal/grid"
)

// testGrid builds a deterministic source grid with periodic halos
// filled and a matching empty destination.
func testGrid(nx, ny, nz int) (src, dst *grid.Grid) {
	src = grid.New(nx, ny, nz, 2)
	src.FillFunc(func(i, j, k int) float64 {
		return float64((i*31+j*17+k*7)%23)/3 - 2.5
	})
	src.FillHalosPeriodic()
	dst = grid.New(nx, ny, nz, 2)
	return src, dst
}

func TestPoolExecCoversRange(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		p := NewPool(w)
		var count atomic.Int64
		covered := make([]atomic.Int32, 37)
		p.Exec(37, func(worker, lo, hi int) {
			if worker < 0 || worker >= w {
				t.Errorf("worker %d out of range", worker)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
				count.Add(1)
			}
		})
		if count.Load() != 37 {
			t.Fatalf("workers=%d: covered %d of 37 items", w, count.Load())
		}
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d covered %d times", w, i, covered[i].Load())
			}
		}
		p.Close()
	}
}

func TestPoolExecEmptyAndNil(t *testing.T) {
	var nilPool *Pool
	ran := 0
	nilPool.Exec(5, func(_, lo, hi int) { ran += hi - lo })
	if ran != 5 {
		t.Fatalf("nil pool covered %d of 5", ran)
	}
	nilPool.Exec(0, func(_, _, _ int) { t.Fatal("fn called for n=0") })
	if nilPool.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", nilPool.Workers())
	}
	p := NewPool(4)
	defer p.Close()
	p.Exec(0, func(_, _, _ int) { t.Error("fn called for n=0") })
	// More workers than items: every item still covered exactly once.
	got := make([]int, 2)
	p.Exec(2, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			got[i]++
		}
	})
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("short range coverage = %v", got)
	}
}

func TestPoolNestedExecDoesNotDeadlock(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	p.Exec(4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.Exec(8, func(_, l, h int) { total.Add(int64(h - l)) })
		}
	})
	if total.Load() != 32 {
		t.Fatalf("nested exec covered %d of 32", total.Load())
	}
}

// TestApplyParallelMatchesSerial is the tentpole equivalence guarantee:
// the pool-split, cache-blocked kernel must be bit-identical to the
// serial Apply for every worker count.
func TestApplyParallelMatchesSerial(t *testing.T) {
	op := Laplacian(2, 0.4)
	src, want := testGrid(19, 13, 11)
	op.Apply(want, src)
	for _, w := range []int{1, 2, 4, 8} {
		p := NewPool(w)
		got := grid.New(19, 13, 11, 2)
		op.ApplyParallel(p, got, src)
		if d := want.MaxAbsDiff(got); d != 0 {
			t.Fatalf("workers=%d: ApplyParallel deviates from Apply by %g", w, d)
		}
		p.Close()
	}
}

// TestApplyParallelTilesLargeGrid crosses the tileJ boundary so multiple
// (j, k) tiles are exercised.
func TestApplyParallelTilesLargeGrid(t *testing.T) {
	op := Laplacian(2, 1)
	src, want := testGrid(8, 2*tileJ+5, 9)
	op.Apply(want, src)
	p := NewPool(3)
	defer p.Close()
	got := grid.New(8, 2*tileJ+5, 9, 2)
	op.ApplyParallel(p, got, src)
	if d := want.MaxAbsDiff(got); d != 0 {
		t.Fatalf("tiled parallel apply deviates by %g", d)
	}
}

func TestScaledOperator(t *testing.T) {
	op := Laplacian(2, 0.7)
	neg := op.Scaled(-1)
	src, a := testGrid(8, 8, 8)
	b := grid.New(8, 8, 8, 2)
	op.Apply(a, src)
	a.Scale(-1)
	neg.Apply(b, src)
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Fatalf("Scaled(-1) deviates from negated apply by %g", d)
	}
}

// fusedCase builds inputs shared by the fused-kernel equivalence tests.
func fusedCase(t *testing.T) (op *Operator, src, ref, aux *grid.Grid) {
	t.Helper()
	op = Laplacian(2, 0.5)
	src, ref = testGrid(10, 9, 8)
	aux = grid.New(10, 9, 8, 2)
	aux.FillFunc(func(i, j, k int) float64 { return float64((i+2*j+3*k)%7) - 3 })
	return op, src, ref, aux
}

func TestApplyAxpyMatchesUnfused(t *testing.T) {
	op, src, ref, aux := fusedCase(t)
	const alpha = 0.37
	// Unfused: dst = op(src); y += alpha*dst.
	op.Apply(ref, src)
	yWant := aux.Clone()
	yWant.Axpy(alpha, ref)
	for _, w := range []int{1, 4} {
		p := NewPool(w)
		dst := grid.New(10, 9, 8, 2)
		y := aux.Clone()
		op.ApplyAxpy(p, dst, y, alpha, src)
		if d := ref.MaxAbsDiff(dst); d != 0 {
			t.Fatalf("workers=%d: fused dst deviates by %g", w, d)
		}
		if d := yWant.MaxAbsDiff(y); d != 0 {
			t.Fatalf("workers=%d: fused y deviates by %g", w, d)
		}
		p.Close()
	}
}

func TestApplyDotMatchesUnfused(t *testing.T) {
	op, src, ref, _ := fusedCase(t)
	op.Apply(ref, src)
	want := src.Dot(ref)
	var prev float64
	for i, w := range []int{1, 2, 4, 8} {
		p := NewPool(w)
		dst := grid.New(10, 9, 8, 2)
		got := op.ApplyDot(p, dst, src)
		if d := ref.MaxAbsDiff(dst); d != 0 {
			t.Fatalf("workers=%d: dst deviates by %g", w, d)
		}
		if rel := abs(got-want) / abs(want); rel > 1e-14 {
			t.Fatalf("workers=%d: dot %g vs unfused %g", w, got, want)
		}
		if i > 0 && got != prev {
			t.Fatalf("dot not deterministic across worker counts: %g vs %g", got, prev)
		}
		prev = got
		p.Close()
	}
}

func TestApplyResidualMatchesUnfused(t *testing.T) {
	op, src, ref, b := fusedCase(t)
	// Unfused: r = b - op(src).
	op.Apply(ref, src)
	ref.Scale(-1)
	ref.Axpy(1, b)
	want := ref.Dot(ref)
	var prev float64
	for i, w := range []int{1, 2, 4, 8} {
		p := NewPool(w)
		r := grid.New(10, 9, 8, 2)
		sumsq := op.ApplyResidual(p, r, b, src)
		if d := ref.MaxAbsDiff(r); d != 0 {
			t.Fatalf("workers=%d: fused residual deviates by %g", w, d)
		}
		if rel := abs(sumsq-want) / abs(want); rel > 1e-14 {
			t.Fatalf("workers=%d: |r|^2 %g vs unfused %g", w, sumsq, want)
		}
		if i > 0 && sumsq != prev {
			t.Fatalf("|r|^2 not deterministic across worker counts")
		}
		prev = sumsq
		p.Close()
	}
}

func TestApplySmoothMatchesUnfused(t *testing.T) {
	op, src, ref, rhs := fusedCase(t)
	const c = 0.11
	// Unfused Jacobi step: dst = src + c*(rhs - op(src)).
	op.Apply(ref, src)
	ref.Scale(-1)
	ref.Axpy(1, rhs)
	want := src.Clone()
	want.Axpy(c, ref)
	p := NewPool(4)
	defer p.Close()
	dst := grid.New(10, 9, 8, 2)
	op.ApplySmooth(p, dst, src, rhs, c)
	if d := want.MaxAbsDiff(dst); d > 1e-15 {
		t.Fatalf("fused smooth deviates by %g", d)
	}
}

func TestApplyStepMatchesUnfused(t *testing.T) {
	op, src, ref, v := fusedCase(t)
	// Unfused Hamiltonian-style application: t = op(src) + v.*src.
	op.Apply(ref, src)
	for i := 0; i < src.Nx; i++ {
		for j := 0; j < src.Ny; j++ {
			for k := 0; k < src.Nz; k++ {
				ref.Set(i, j, k, ref.At(i, j, k)+v.At(i, j, k)*src.At(i, j, k))
			}
		}
	}
	p := NewPool(4)
	defer p.Close()
	dst := grid.New(10, 9, 8, 2)
	op.ApplyStep(p, dst, src, v, 1, 0)
	if d := ref.MaxAbsDiff(dst); d != 0 {
		t.Fatalf("ApplyStep(1, 0) deviates by %g", d)
	}
	// Damped step dst = src - tau*t.
	const tau = 0.21
	want := src.Clone()
	want.Axpy(-tau, ref)
	op.ApplyStep(p, dst, src, v, -tau, 1)
	if d := want.MaxAbsDiff(dst); d != 0 {
		t.Fatalf("ApplyStep(-tau, 1) deviates by %g", d)
	}
	// Nil potential, general alpha/beta.
	op.Apply(ref, src)
	want = src.Clone()
	want.Scale(0.5)
	want.Axpy(2, ref)
	op.ApplyStep(p, dst, src, nil, 2, 0.5)
	if d := want.MaxAbsDiff(dst); d > 1e-15 {
		t.Fatalf("ApplyStep(2, 0.5, nil) deviates by %g", d)
	}
}

func TestPoolReductionsDeterministic(t *testing.T) {
	g, _ := testGrid(17, 7, 9)
	o, _ := testGrid(17, 7, 9)
	o.Scale(0.5)
	var dots, sums []float64
	for _, w := range []int{1, 2, 4, 8} {
		p := NewPool(w)
		dots = append(dots, p.Dot(g, o))
		sums = append(sums, p.Sum(g))
		p.Close()
	}
	for i := 1; i < len(dots); i++ {
		if dots[i] != dots[0] || sums[i] != sums[0] {
			t.Fatalf("pool reductions vary with worker count: %v %v", dots, sums)
		}
	}
	if rel := abs(dots[0]-g.Dot(o)) / abs(g.Dot(o)); rel > 1e-14 {
		t.Fatalf("pool dot %g far from serial %g", dots[0], g.Dot(o))
	}
}

func TestPoolBlasDriversMatchSerial(t *testing.T) {
	base, _ := testGrid(12, 8, 10)
	x, _ := testGrid(12, 8, 10)
	x.Scale(0.3)
	p := NewPool(4)
	defer p.Close()

	want := base.Clone()
	want.Axpy(0.7, x)
	got := base.Clone()
	p.Axpy(got, 0.7, x)
	if d := want.MaxAbsDiff(got); d != 0 {
		t.Fatal("pool Axpy deviates")
	}

	want = base.Clone()
	want.AxpyScale(1.5, x, -0.25)
	got = base.Clone()
	p.AxpyScale(got, 1.5, x, -0.25)
	if d := want.MaxAbsDiff(got); d != 0 {
		t.Fatal("pool AxpyScale deviates")
	}

	want = base.Clone()
	want.AddScalar(1.25)
	got = base.Clone()
	p.AddScalar(got, 1.25)
	if d := want.MaxAbsDiff(got); d != 0 {
		t.Fatal("pool AddScalar deviates")
	}

	got = grid.New(12, 8, 10, 2)
	p.Copy(got, base)
	if d := base.MaxAbsDiff(got); d != 0 {
		t.Fatal("pool Copy deviates")
	}

	wantSq := base.Clone()
	sq1 := wantSq.AxpyDot(-0.4, x)
	got = base.Clone()
	sq2 := p.AxpyDot(got, -0.4, x)
	if d := wantSq.MaxAbsDiff(got); d != 0 {
		t.Fatal("pool AxpyDot deviates")
	}
	if rel := abs(sq1-sq2) / abs(sq1); rel > 1e-14 {
		t.Fatalf("AxpyDot norms differ: %g vs %g", sq1, sq2)
	}
}

func TestSORSweepMatchesAccessorSweep(t *testing.T) {
	op := Laplacian(2, 0.6)
	src, _ := testGrid(9, 8, 7)
	const omega = 1.3
	b := grid.New(9, 8, 7, 2)
	b.FillFunc(func(i, j, k int) float64 { return float64((i*j+k)%5) - 2 })

	// Accessor-based reference sweep (the pre-kernel formulation, with
	// the same X-then-Y-then-Z tap order as the kernel).
	ref := src.Clone()
	ref.FillHalosPeriodic()
	diag := op.Center
	for i := 0; i < ref.Nx; i++ {
		for j := 0; j < ref.Ny; j++ {
			for k := 0; k < ref.Nz; k++ {
				v := diag * ref.At(i, j, k)
				for o := -op.R; o <= op.R; o++ {
					if o == 0 {
						continue
					}
					v += op.X[o+op.R] * ref.At(i+o, j, k)
				}
				for o := -op.R; o <= op.R; o++ {
					if o == 0 {
						continue
					}
					v += op.Y[o+op.R] * ref.At(i, j+o, k)
				}
				for o := -op.R; o <= op.R; o++ {
					if o == 0 {
						continue
					}
					v += op.Z[o+op.R] * ref.At(i, j, k+o)
				}
				res := b.At(i, j, k) - v
				ref.Set(i, j, k, ref.At(i, j, k)+omega*res/diag)
			}
		}
	}

	got := src.Clone()
	got.FillHalosPeriodic()
	op.SORSweep(got, b, omega)
	if d := ref.MaxAbsDiff(got); d != 0 {
		t.Fatalf("SORSweep deviates from accessor sweep by %g", d)
	}
}

func TestTrafficCounterStreams(t *testing.T) {
	op := Laplacian(2, 1)
	src, dst := testGrid(8, 8, 8)
	pts := int64(src.Points())

	grid.ResetTraffic()
	op.Apply(dst, src)
	if got := grid.TrafficPoints(); got != 2*pts {
		t.Fatalf("Apply traffic = %d, want %d", got, 2*pts)
	}

	grid.ResetTraffic()
	b := grid.New(8, 8, 8, 2)
	op.ApplyResidual(nil, dst, b, src)
	if got := grid.TrafficPoints(); got != 3*pts {
		t.Fatalf("ApplyResidual traffic = %d, want %d", got, 3*pts)
	}

	// The unfused residual chain: Apply + Scale + Axpy + self-Dot
	// (2 + 2 + 3 + 1 streams).
	grid.ResetTraffic()
	op.Apply(dst, src)
	dst.Scale(-1)
	dst.Axpy(1, b)
	dst.Dot(dst)
	if got := grid.TrafficPoints(); got != 8*pts {
		t.Fatalf("unfused residual chain traffic = %d, want %d", got, 8*pts)
	}
	grid.ResetTraffic()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
