package stencil

import (
	"math/rand"
	"testing"

	"repro/internal/detsum"
	"repro/internal/grid"
)

// coverCount marks every point covered by the interior block plus the
// shell blocks of an (nx, ny, nz, r) sweep and returns the per-point
// visit counts.
func coverCount(nx, ny, nz, r int) []int {
	mark := make([]int, nx*ny*nz)
	stamp := func(b Block) {
		for i := b.X0; i < b.X1; i++ {
			for j := b.Y0; j < b.Y1; j++ {
				for k := b.Z0; k < b.Z1; k++ {
					mark[(i*ny+j)*nz+k]++
				}
			}
		}
	}
	stamp(InteriorBlock(nx, ny, nz, r))
	for _, b := range ShellBlocks(nx, ny, nz, r) {
		stamp(b)
	}
	return mark
}

// checkCover fails unless interior + shell cover every point of the
// sweep exactly once.
func checkCover(t *testing.T, nx, ny, nz, r int) {
	t.Helper()
	for p, c := range coverCount(nx, ny, nz, r) {
		if c != 1 {
			i := p / (ny * nz)
			j := (p / nz) % ny
			k := p % nz
			t.Fatalf("extents (%d,%d,%d) r=%d: point (%d,%d,%d) covered %d times, want exactly 1",
				nx, ny, nz, r, i, j, k, c)
		}
	}
}

// TestShellCoverageExhaustiveSmall sweeps every extent combination up
// to 7 with radii 0..3, including all the degenerate cases (extent
// smaller than the radius, smaller than twice the radius, equal to it).
func TestShellCoverageExhaustiveSmall(t *testing.T) {
	for nx := 1; nx <= 7; nx++ {
		for ny := 1; ny <= 7; ny++ {
			for nz := 1; nz <= 7; nz++ {
				for r := 0; r <= 3; r++ {
					checkCover(t, nx, ny, nz, r)
				}
			}
		}
	}
}

// FuzzShellCoverage: for arbitrary extents and radii — the shapes
// random rank decompositions produce — the interior + shell split must
// cover every point exactly once.
func FuzzShellCoverage(f *testing.F) {
	f.Add(16, 16, 16, 2)
	f.Add(8, 3, 5, 2)
	f.Add(1, 1, 1, 3)
	f.Add(4, 9, 2, 1)
	f.Add(5, 4, 4, 2)
	clamp := func(v, m int) int {
		if v < 0 {
			v = -v
		}
		return v % m
	}
	f.Fuzz(func(t *testing.T, nx, ny, nz, r int) {
		// Clamp to the extents a decomposition can actually produce;
		// coverage is what is being fuzzed, not argument validation.
		checkCover(t, 1+clamp(nx, 20), 1+clamp(ny, 20), 1+clamp(nz, 20), clamp(r, 5))
	})
}

// TestShellCoverageRandomDecompositions slices a global grid with
// random process grids (the sub-domain shapes the distributed solvers
// hand the kernels) and checks the split on every resulting local
// extent.
func TestShellCoverageRandomDecompositions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		global := [3]int{1 + rng.Intn(24), 1 + rng.Intn(24), 1 + rng.Intn(24)}
		procs := [3]int{1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3)}
		r := 1 + rng.Intn(3)
		// Every split of n over p yields extents n/p or n/p+1.
		dims := [3][]int{}
		for d := 0; d < 3; d++ {
			if procs[d] > global[d] {
				procs[d] = global[d]
			}
			lo := global[d] / procs[d]
			dims[d] = []int{lo}
			if lo*procs[d] != global[d] {
				dims[d] = append(dims[d], lo+1)
			}
		}
		for _, nx := range dims[0] {
			for _, ny := range dims[1] {
				for _, nz := range dims[2] {
					checkCover(t, nx, ny, nz, r)
				}
			}
		}
	}
}

// shellOperand builds deterministic halo-filled grids for the split
// equivalence tests.
func shellOperand(nx, ny, nz int, seed float64) *grid.Grid {
	g := grid.New(nx, ny, nz, 2)
	g.FillFunc(func(i, j, k int) float64 {
		return seed + float64((i*37+j*17+k*5)%29)/7 - 2
	})
	g.FillHalosPeriodic()
	return g
}

// TestSplitKernelsMatchFullBitwise: for every fused kernel, interior +
// shell must reproduce the full sweep bitwise — outputs and reductions
// — across worker counts and degenerate extents where the interior is
// thin or empty.
func TestSplitKernelsMatchFullBitwise(t *testing.T) {
	op := Laplacian(2, 0.6)
	shapes := [][3]int{{12, 10, 8}, {4, 12, 12}, {12, 3, 12}, {12, 12, 2}, {3, 3, 3}, {5, 4, 9}}
	for _, sh := range shapes {
		nx, ny, nz := sh[0], sh[1], sh[2]
		for _, w := range []int{1, 3} {
			p := NewPool(w)
			src := shellOperand(nx, ny, nz, 0.25)
			rhs := shellOperand(nx, ny, nz, -1.5)
			v := shellOperand(nx, ny, nz, 0.75)

			// Apply.
			full := grid.New(nx, ny, nz, 2)
			op.Apply(full, src)
			split := grid.New(nx, ny, nz, 2)
			op.ApplyInterior(p, split, src)
			op.ApplyShell(split, src)
			if d := split.MaxAbsDiff(full); d != 0 {
				t.Errorf("%v w=%d Apply split deviates by %g", sh, w, d)
			}

			// ApplyDot.
			var fullAcc, splitAcc detsum.Acc
			op.ApplyDotAcc(p, full, src, &fullAcc)
			op.ApplyDotInteriorAcc(p, split, src, &splitAcc)
			op.ApplyDotShellAcc(split, src, &splitAcc)
			if split.MaxAbsDiff(full) != 0 || splitAcc.Round() != fullAcc.Round() {
				t.Errorf("%v w=%d ApplyDot split: dot %.17g, full %.17g", sh, w, splitAcc.Round(), fullAcc.Round())
			}

			// ApplyResidual.
			fullAcc.Reset()
			splitAcc.Reset()
			op.ApplyResidualAcc(p, full, rhs, src, &fullAcc)
			op.ApplyResidualInteriorAcc(p, split, rhs, src, &splitAcc)
			op.ApplyResidualShellAcc(split, rhs, src, &splitAcc)
			if split.MaxAbsDiff(full) != 0 || splitAcc.Round() != fullAcc.Round() {
				t.Errorf("%v w=%d ApplyResidual split: |r|^2 %.17g, full %.17g", sh, w, splitAcc.Round(), fullAcc.Round())
			}

			// ApplySmooth.
			op.ApplySmooth(p, full, src, rhs, 0.31)
			op.ApplySmoothInterior(p, split, src, rhs, 0.31)
			op.ApplySmoothShell(split, src, rhs, 0.31)
			if d := split.MaxAbsDiff(full); d != 0 {
				t.Errorf("%v w=%d ApplySmooth split deviates by %g", sh, w, d)
			}

			// ApplyStep, with and without a potential, over the three
			// coefficient fast paths.
			for _, tc := range []struct {
				v           *grid.Grid
				alpha, beta float64
			}{
				{v, 1, 0}, {v, -0.01, 1}, {v, 0.5, -0.25}, {nil, -0.02, 1},
			} {
				op.ApplyStep(p, full, src, tc.v, tc.alpha, tc.beta)
				op.ApplyStepInterior(p, split, src, tc.v, tc.alpha, tc.beta)
				op.ApplyStepShell(split, src, tc.v, tc.alpha, tc.beta)
				if d := split.MaxAbsDiff(full); d != 0 {
					t.Errorf("%v w=%d ApplyStep(alpha=%g beta=%g) split deviates by %g", sh, w, tc.alpha, tc.beta, d)
				}
			}
			p.Close()
		}
	}
}

// TestSplitTrafficAddsUp: interior + shell must account exactly the
// same memory traffic as the full sweep (the counter feeds the
// benchmark reports).
func TestSplitTrafficAddsUp(t *testing.T) {
	op := Laplacian(2, 1)
	src := shellOperand(10, 9, 8, 0)
	dst := grid.New(10, 9, 8, 2)
	grid.ResetTraffic()
	op.Apply(dst, src)
	full := grid.TrafficPoints()
	grid.ResetTraffic()
	op.ApplyInterior(nil, dst, src)
	op.ApplyShell(dst, src)
	if got := grid.TrafficPoints(); got != full {
		t.Errorf("split traffic %d, full %d", got, full)
	}
	grid.ResetTraffic()
}
