package stencil

import (
	"fmt"

	"repro/internal/grid"
)

// Operator is a separable axis-aligned stencil: the output at a point is
//
//	out = Center*in(p) + Σ_axis Σ_{o=-R..R, o≠0} C_axis[o]*in(p + o*e_axis)
//
// which for R = 2 is exactly the paper's 13-point operation
// (C1..C13 in section II.A). Coefficient slices have length 2R+1 and are
// indexed by offset+R; the center entries of X, Y, Z must be zero — the
// merged center weight lives in Center.
type Operator struct {
	R       int
	Center  float64
	X, Y, Z []float64
}

// NewOperator builds an operator from per-axis coefficient slices of
// length 2R+1 (center entries included). The three axis centers are
// merged into Center.
func NewOperator(r int, cx, cy, cz []float64) *Operator {
	if len(cx) != 2*r+1 || len(cy) != 2*r+1 || len(cz) != 2*r+1 {
		panic(fmt.Sprintf("stencil: coefficient length must be %d", 2*r+1))
	}
	op := &Operator{
		R: r,
		X: append([]float64(nil), cx...),
		Y: append([]float64(nil), cy...),
		Z: append([]float64(nil), cz...),
	}
	op.Center = op.X[r] + op.Y[r] + op.Z[r]
	op.X[r], op.Y[r], op.Z[r] = 0, 0, 0
	return op
}

// Laplacian returns the central-difference approximation of ∇² with the
// given per-axis radius on a uniform grid with spacing h. Radius 2 gives
// the paper's 13-point, fourth-order operator.
func Laplacian(r int, h float64) *Operator {
	w := CentralWeights(r, 2, h)
	return NewOperator(r, w, w, w)
}

// Points returns the number of grid points the stencil reads (13 for
// radius 2).
func (op *Operator) Points() int { return 6*op.R + 1 }

// FlopsPerPoint returns the floating-point operations per output point:
// one multiply per read plus adds to combine them.
func (op *Operator) FlopsPerPoint() int { return 2*op.Points() - 1 }

// BytesPerPoint returns the main-memory traffic per output point for a
// streaming implementation: one read of the input and one write of the
// output (neighbour reuse is served by cache).
func (op *Operator) BytesPerPoint() int { return 16 }

// Apply computes dst = op(src) over the interior of src, reading halo
// cells of src up to distance R. Halos must have been filled beforehand
// (by grid.FillHalosPeriodic, grid.FillHalosZero, or a distributed halo
// exchange). dst and src must have identical interiors and src's halo
// must be at least R.
func (op *Operator) Apply(dst, src *grid.Grid) {
	if dst.Nx != src.Nx || dst.Ny != src.Ny || dst.Nz != src.Nz {
		panic("stencil: Apply extent mismatch")
	}
	if src.H < op.R {
		panic(fmt.Sprintf("stencil: source halo %d < stencil radius %d", src.H, op.R))
	}
	op.ApplyRange(dst, src, 0, src.Nx)
}

// ApplyRange computes dst = op(src) for interior planes i in [x0, x1).
// It is the work-splitting primitive used by the hybrid master-only
// approach, where one grid's computation is divided across threads.
func (op *Operator) ApplyRange(dst, src *grid.Grid, x0, x1 int) {
	r := op.R
	sx, sy := src.Strides()
	in := src.Data()
	out := dst.Data()
	center := op.Center

	// Per-axis nonzero taps, flattened into (offset-in-floats, coeff).
	type tap struct {
		off int
		c   float64
	}
	taps := make([]tap, 0, 6*r)
	for o := -r; o <= r; o++ {
		if o == 0 {
			continue
		}
		if c := op.X[o+r]; c != 0 {
			taps = append(taps, tap{o * sx, c})
		}
	}
	for o := -r; o <= r; o++ {
		if o == 0 {
			continue
		}
		if c := op.Y[o+r]; c != 0 {
			taps = append(taps, tap{o * sy, c})
		}
	}
	for o := -r; o <= r; o++ {
		if o == 0 {
			continue
		}
		if c := op.Z[o+r]; c != 0 {
			taps = append(taps, tap{o, c})
		}
	}

	for i := x0; i < x1; i++ {
		for j := 0; j < src.Ny; j++ {
			srow := src.Index(i, j, 0)
			drow := dst.Index(i, j, 0)
			switch len(taps) {
			case 12:
				// Fast path for the paper's radius-2 operator: unrolled
				// 13-point kernel (center + 12 taps).
				t := taps
				for k := 0; k < src.Nz; k++ {
					s := srow + k
					v := center * in[s]
					v += t[0].c*in[s+t[0].off] + t[1].c*in[s+t[1].off] +
						t[2].c*in[s+t[2].off] + t[3].c*in[s+t[3].off]
					v += t[4].c*in[s+t[4].off] + t[5].c*in[s+t[5].off] +
						t[6].c*in[s+t[6].off] + t[7].c*in[s+t[7].off]
					v += t[8].c*in[s+t[8].off] + t[9].c*in[s+t[9].off] +
						t[10].c*in[s+t[10].off] + t[11].c*in[s+t[11].off]
					out[drow+k] = v
				}
			default:
				for k := 0; k < src.Nz; k++ {
					s := srow + k
					v := center * in[s]
					for _, tp := range taps {
						v += tp.c * in[s+tp.off]
					}
					out[drow+k] = v
				}
			}
		}
	}
}

// ApplyPeriodicReference fills src's halos periodically and applies the
// operator. It is the sequential reference implementation the
// distributed engine is verified against, and corresponds to running
// GPAW on a single process.
func (op *Operator) ApplyPeriodicReference(dst, src *grid.Grid) {
	src.FillHalosPeriodic()
	op.Apply(dst, src)
}

// ApplyZeroReference fills src's halos with zeros (Dirichlet boundary)
// and applies the operator.
func (op *Operator) ApplyZeroReference(dst, src *grid.Grid) {
	src.FillHalosZero()
	op.Apply(dst, src)
}
