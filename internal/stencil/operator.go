package stencil

import (
	"fmt"

	"repro/internal/grid"
)

// Operator is a separable axis-aligned stencil: the output at a point is
//
//	out = Center*in(p) + Σ_axis Σ_{o=-R..R, o≠0} C_axis[o]*in(p + o*e_axis)
//
// which for R = 2 is exactly the paper's 13-point operation
// (C1..C13 in section II.A). Coefficient slices have length 2R+1 and are
// indexed by offset+R; the center entries of X, Y, Z must be zero — the
// merged center weight lives in Center.
type Operator struct {
	R       int
	Center  float64
	X, Y, Z []float64
}

// NewOperator builds an operator from per-axis coefficient slices of
// length 2R+1 (center entries included). The three axis centers are
// merged into Center.
func NewOperator(r int, cx, cy, cz []float64) *Operator {
	if len(cx) != 2*r+1 || len(cy) != 2*r+1 || len(cz) != 2*r+1 {
		panic(fmt.Sprintf("stencil: coefficient length must be %d", 2*r+1))
	}
	op := &Operator{
		R: r,
		X: append([]float64(nil), cx...),
		Y: append([]float64(nil), cy...),
		Z: append([]float64(nil), cz...),
	}
	op.Center = op.X[r] + op.Y[r] + op.Z[r]
	op.X[r], op.Y[r], op.Z[r] = 0, 0, 0
	return op
}

// Laplacian returns the central-difference approximation of ∇² with the
// given per-axis radius on a uniform grid with spacing h. Radius 2 gives
// the paper's 13-point, fourth-order operator.
func Laplacian(r int, h float64) *Operator {
	w := CentralWeights(r, 2, h)
	return NewOperator(r, w, w, w)
}

// Points returns the number of grid points the stencil reads (13 for
// radius 2).
func (op *Operator) Points() int { return 6*op.R + 1 }

// FlopsPerPoint returns the floating-point operations per output point:
// one multiply per read plus adds to combine them. The fused kernels in
// fused.go add at most two or three flops per point on top of this
// (an axpy, a residual subtraction, or a dot accumulation) — noise next
// to the 25 flops of the radius-2 operator, which is why fusing is
// effectively free compute-wise while halving memory traffic.
func (op *Operator) FlopsPerPoint() int { return 2*op.Points() - 1 }

// BytesPerPoint returns the main-memory traffic per output point for a
// streaming implementation of the plain operator: one read of the input
// and one write of the output (neighbour reuse is served by cache),
// 2 streams x 8 bytes. Fused variants move more streams per sweep but
// far fewer per solver iteration: ApplyDot stays at 2 streams (16 B)
// because the reduction reuses cache-hot values; ApplyResidual and
// ApplySmooth are 3 streams (24 B); ApplyAxpy is 4 streams (32 B). The
// unfused chains they replace cost 7-9 streams. See the package comment
// for the full traffic model.
func (op *Operator) BytesPerPoint() int { return 16 }

// Apply computes dst = op(src) over the interior of src, reading halo
// cells of src up to distance R. Halos must have been filled beforehand
// (by grid.FillHalosPeriodic, grid.FillHalosZero, or a distributed halo
// exchange). dst and src must have identical interiors and src's halo
// must be at least R.
func (op *Operator) Apply(dst, src *grid.Grid) {
	if dst.Nx != src.Nx || dst.Ny != src.Ny || dst.Nz != src.Nz {
		panic("stencil: Apply extent mismatch")
	}
	if src.H < op.R {
		panic(fmt.Sprintf("stencil: source halo %d < stencil radius %d", src.H, op.R))
	}
	op.ApplyRange(dst, src, 0, src.Nx)
}

// tap is one nonzero off-center stencil coefficient, flattened into a
// (offset-in-floats, coefficient) pair for a particular grid layout.
type tap struct {
	off int
	c   float64
}

// taps flattens the per-axis nonzero coefficients for a grid with the
// given x and y strides (z stride is 1).
func (op *Operator) taps(sx, sy int) []tap {
	r := op.R
	taps := make([]tap, 0, 6*r)
	for o := -r; o <= r; o++ {
		if o == 0 {
			continue
		}
		if c := op.X[o+r]; c != 0 {
			taps = append(taps, tap{o * sx, c})
		}
	}
	for o := -r; o <= r; o++ {
		if o == 0 {
			continue
		}
		if c := op.Y[o+r]; c != 0 {
			taps = append(taps, tap{o * sy, c})
		}
	}
	for o := -r; o <= r; o++ {
		if o == 0 {
			continue
		}
		if c := op.Z[o+r]; c != 0 {
			taps = append(taps, tap{o, c})
		}
	}
	return taps
}

// gridTaps builds the taps for a grid's memory layout.
func (op *Operator) gridTaps(g *grid.Grid) []tap {
	sx, sy := g.Strides()
	return op.taps(sx, sy)
}

// stencilRow evaluates the stencil along one contiguous z-row: out[k] =
// center*in[s0+k] + taps for k in [0, n). Every kernel in the package —
// serial, parallel and fused — funnels through this routine, so all of
// them produce bit-identical stencil values by construction.
func stencilRow(out, in []float64, s0, n int, center float64, taps []tap) {
	switch len(taps) {
	case 12:
		// Fast path for the paper's radius-2 operator: unrolled
		// 13-point kernel (center + 12 taps).
		t := taps
		for k := 0; k < n; k++ {
			s := s0 + k
			v := center * in[s]
			v += t[0].c*in[s+t[0].off] + t[1].c*in[s+t[1].off] +
				t[2].c*in[s+t[2].off] + t[3].c*in[s+t[3].off]
			v += t[4].c*in[s+t[4].off] + t[5].c*in[s+t[5].off] +
				t[6].c*in[s+t[6].off] + t[7].c*in[s+t[7].off]
			v += t[8].c*in[s+t[8].off] + t[9].c*in[s+t[9].off] +
				t[10].c*in[s+t[10].off] + t[11].c*in[s+t[11].off]
			out[k] = v
		}
	default:
		for k := 0; k < n; k++ {
			s := s0 + k
			v := center * in[s]
			for _, tp := range taps {
				//lint:ignore detsumcheck rank-local stencil application in fixed tap order; this exact rounding sequence IS the bit-identity contract
				v += tp.c * in[s+tp.off]
			}
			out[k] = v
		}
	}
}

// applyBlock computes dst = op(src) over the sub-box [x0,x1) x [j0,j1) x
// [k0,k1). It is the innermost building block of both the plane-split
// and the cache-blocked traversals.
func (op *Operator) applyBlock(dst, src *grid.Grid, taps []tap, x0, x1, j0, j1, k0, k1 int) {
	in := src.Data()
	out := dst.Data()
	center := op.Center
	n := k1 - k0
	for i := x0; i < x1; i++ {
		for j := j0; j < j1; j++ {
			srow := src.Index(i, j, k0)
			drow := dst.Index(i, j, k0)
			stencilRow(out[drow:drow+n], in, srow, n, center, taps)
		}
	}
}

// ApplyRange computes dst = op(src) for interior planes i in [x0, x1).
// It is the work-splitting primitive used by the hybrid master-only
// approach, where one grid's computation is divided across threads.
func (op *Operator) ApplyRange(dst, src *grid.Grid, x0, x1 int) {
	op.applyBlock(dst, src, op.gridTaps(src), x0, x1, 0, src.Ny, 0, src.Nz)
	grid.NoteTraffic((x1-x0)*src.Ny*src.Nz, 2)
}

// ApplyPeriodicReference fills src's halos periodically and applies the
// operator. It is the sequential reference implementation the
// distributed engine is verified against, and corresponds to running
// GPAW on a single process.
func (op *Operator) ApplyPeriodicReference(dst, src *grid.Grid) {
	src.FillHalosPeriodic()
	op.Apply(dst, src)
}

// ApplyZeroReference fills src's halos with zeros (Dirichlet boundary)
// and applies the operator.
func (op *Operator) ApplyZeroReference(dst, src *grid.Grid) {
	src.FillHalosZero()
	op.Apply(dst, src)
}
