package stencil

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCentralWeightsSecondDerivativeRadius1(t *testing.T) {
	// Classic [1, -2, 1]/h^2.
	w := CentralWeights(1, 2, 0.5)
	want := []float64{4, -8, 4}
	for i := range want {
		if !almost(w[i], want[i], 1e-12) {
			t.Fatalf("w = %v, want %v", w, want)
		}
	}
}

func TestCentralWeightsSecondDerivativeRadius2(t *testing.T) {
	// Fourth-order: [-1/12, 4/3, -5/2, 4/3, -1/12]/h^2 — the paper's
	// per-axis coefficients.
	w := CentralWeights(2, 2, 1)
	want := []float64{-1.0 / 12, 4.0 / 3, -5.0 / 2, 4.0 / 3, -1.0 / 12}
	for i := range want {
		if !almost(w[i], want[i], 1e-12) {
			t.Fatalf("w = %v, want %v", w, want)
		}
	}
}

func TestCentralWeightsFirstDerivative(t *testing.T) {
	// [-1/2, 0, 1/2]/h.
	w := CentralWeights(1, 1, 2)
	want := []float64{-0.25, 0, 0.25}
	for i := range want {
		if !almost(w[i], want[i], 1e-12) {
			t.Fatalf("w = %v, want %v", w, want)
		}
	}
}

func TestCentralWeightsSymmetry(t *testing.T) {
	// Even derivatives have even-symmetric weights; odd derivatives
	// odd-symmetric.
	for r := 1; r <= 4; r++ {
		for m := 1; m <= 2; m++ {
			w := CentralWeights(r, m, 1)
			sign := 1.0
			if m%2 == 1 {
				sign = -1.0
			}
			for o := 1; o <= r; o++ {
				if !almost(w[r+o], sign*w[r-o], 1e-10) {
					t.Fatalf("r=%d m=%d: w[%d]=%g vs w[%d]=%g", r, m, r+o, w[r+o], r-o, w[r-o])
				}
			}
		}
	}
}

// Property: an order-2R central second-derivative stencil is exact on
// polynomials up to degree 2R+1 (error term is O(h^{2R})).
func TestWeightsPolynomialExactness(t *testing.T) {
	for r := 1; r <= 3; r++ {
		w := CentralWeights(r, 2, 1)
		for deg := 0; deg <= 2*r+1; deg++ {
			// f(x) = x^deg around x=5; exact second derivative.
			x0 := 5.0
			applied := 0.0
			for o := -r; o <= r; o++ {
				applied += w[o+r] * math.Pow(x0+float64(o), float64(deg))
			}
			var exact float64
			if deg >= 2 {
				exact = float64(deg) * float64(deg-1) * math.Pow(x0, float64(deg-2))
			}
			if !almost(applied, exact, 1e-6*math.Max(1, math.Abs(exact))) {
				t.Fatalf("r=%d deg=%d: applied %g, exact %g", r, deg, applied, exact)
			}
		}
	}
}

func TestWeightsPanicsOnTooFewPoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Weights with too few points did not panic")
		}
	}()
	Weights(0, []float64{0, 1}, 2)
}

func TestCentralWeightsPanicsOnZeroRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("radius 0 did not panic")
		}
	}()
	CentralWeights(0, 2, 1)
}

func TestLaplacianIs13Point(t *testing.T) {
	op := Laplacian(2, 1)
	if op.Points() != 13 {
		t.Fatalf("Points = %d, want 13", op.Points())
	}
	if op.FlopsPerPoint() != 25 {
		t.Fatalf("FlopsPerPoint = %d, want 25", op.FlopsPerPoint())
	}
	if op.BytesPerPoint() != 16 {
		t.Fatalf("BytesPerPoint = %d", op.BytesPerPoint())
	}
	// Center: 3 * (-5/2) = -7.5 for h=1.
	if !almost(op.Center, -7.5, 1e-12) {
		t.Fatalf("Center = %g, want -7.5", op.Center)
	}
	// Axis center entries must be zeroed after merging.
	if op.X[2] != 0 || op.Y[2] != 0 || op.Z[2] != 0 {
		t.Fatal("axis center coefficients not merged")
	}
}

func TestNewOperatorPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad coefficient length did not panic")
		}
	}()
	NewOperator(2, []float64{1, 2, 3}, make([]float64, 5), make([]float64, 5))
}

func TestApplyConstantField(t *testing.T) {
	// Laplacian of a constant is zero (weights sum to zero).
	op := Laplacian(2, 0.3)
	src := grid.New(6, 6, 6, 2)
	dst := grid.New(6, 6, 6, 2)
	src.Fill(3.7)
	op.ApplyPeriodicReference(dst, src)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 6; k++ {
				if !almost(dst.At(i, j, k), 0, 1e-11) {
					t.Fatalf("laplacian of constant = %g at (%d,%d,%d)", dst.At(i, j, k), i, j, k)
				}
			}
		}
	}
}

func TestApplyPlaneWaveEigenfunction(t *testing.T) {
	// cos(2*pi*m*x/L) is an eigenfunction of the discrete periodic
	// Laplacian; the discrete eigenvalue for the radius-2 operator is
	// sum_o w_o * cos(2*pi*m*o/N).
	n := 16
	h := 0.25
	op := Laplacian(2, h)
	w := CentralWeights(2, 2, h)
	m := 3
	eig := 0.0
	for o := -2; o <= 2; o++ {
		eig += w[o+2] * math.Cos(2*math.Pi*float64(m*o)/float64(n))
	}
	src := grid.New(n, n, n, 2)
	dst := grid.New(n, n, n, 2)
	src.FillFunc(func(i, j, k int) float64 {
		return math.Cos(2 * math.Pi * float64(m*i) / float64(n))
	})
	op.ApplyPeriodicReference(dst, src)
	for i := 0; i < n; i++ {
		want := eig * math.Cos(2*math.Pi*float64(m*i)/float64(n))
		if got := dst.At(i, 5, 7); !almost(got, want, 1e-10) {
			t.Fatalf("plane wave at i=%d: got %g, want %g", i, got, want)
		}
	}
}

func TestApplyConvergesToContinuumLaplacian(t *testing.T) {
	// On f = sin(x)sin(y)sin(z), ∇²f = -3f. Fourth-order operator error
	// should drop ~16x when h halves.
	errFor := func(n int) float64 {
		h := 2 * math.Pi / float64(n)
		op := Laplacian(2, h)
		src := grid.New(n, n, n, 2)
		dst := grid.New(n, n, n, 2)
		src.FillFunc(func(i, j, k int) float64 {
			return math.Sin(h*float64(i)) * math.Sin(h*float64(j)) * math.Sin(h*float64(k))
		})
		op.ApplyPeriodicReference(dst, src)
		max := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					want := -3 * src.At(i, j, k)
					if d := math.Abs(dst.At(i, j, k) - want); d > max {
						max = d
					}
				}
			}
		}
		return max
	}
	e1 := errFor(8)
	e2 := errFor(16)
	ratio := e1 / e2
	if ratio < 10 || ratio > 24 {
		t.Fatalf("convergence ratio %g, want ~16 (4th order)", ratio)
	}
}

func TestApplyRangeCoversApply(t *testing.T) {
	op := Laplacian(2, 1)
	src := grid.New(8, 6, 5, 2)
	src.FillFunc(func(i, j, k int) float64 { return float64((i*7+j*3+k)%11) - 5 })
	src.FillHalosPeriodic()
	whole := grid.New(8, 6, 5, 2)
	op.Apply(whole, src)
	// Split the x range across 3 "threads" like hybrid master-only does.
	parts := grid.New(8, 6, 5, 2)
	op.ApplyRange(parts, src, 0, 3)
	op.ApplyRange(parts, src, 3, 6)
	op.ApplyRange(parts, src, 6, 8)
	if whole.MaxAbsDiff(parts) != 0 {
		t.Fatal("ApplyRange pieces disagree with whole Apply")
	}
}

func TestApplyPanics(t *testing.T) {
	op := Laplacian(2, 1)
	a := grid.New(4, 4, 4, 2)
	b := grid.New(4, 4, 5, 2)
	thin := grid.New(4, 4, 4, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("extent mismatch did not panic")
			}
		}()
		op.Apply(a, b)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("thin halo did not panic")
			}
		}()
		op.Apply(a, thin)
	}()
}

func TestApplyLinearityProperty(t *testing.T) {
	// op(a*f + g) == a*op(f) + op(g), exercised on random small fields.
	op := Laplacian(2, 0.7)
	f := func(seed int64, aRaw uint8) bool {
		a := float64(aRaw%9) - 4
		n := 6
		fg := grid.New(n, n, n, 2)
		gg := grid.New(n, n, n, 2)
		rng := seed
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64(rng%1000) / 250
		}
		fg.FillFunc(func(i, j, k int) float64 { return next() })
		gg.FillFunc(func(i, j, k int) float64 { return next() })
		comb := grid.New(n, n, n, 2)
		comb.CopyInteriorFrom(gg)
		comb.Axpy(a, fg)

		outF := grid.New(n, n, n, 2)
		outG := grid.New(n, n, n, 2)
		outC := grid.New(n, n, n, 2)
		op.ApplyPeriodicReference(outF, fg)
		op.ApplyPeriodicReference(outG, gg)
		op.ApplyPeriodicReference(outC, comb)
		outG.Axpy(a, outF)
		return outC.MaxAbsDiff(outG) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyZeroReference(t *testing.T) {
	// With Dirichlet zero halos, applying to a constant field gives
	// nonzero values only near the boundary (within the stencil radius).
	op := Laplacian(2, 1)
	n := 8
	src := grid.New(n, n, n, 2)
	dst := grid.New(n, n, n, 2)
	src.Fill(1)
	op.ApplyZeroReference(dst, src)
	if v := dst.At(n/2, n/2, n/2); !almost(v, 0, 1e-12) {
		t.Fatalf("deep interior value %g, want 0", v)
	}
	if v := dst.At(0, n/2, n/2); almost(v, 0, 1e-12) {
		t.Fatal("boundary-adjacent value should feel the zero halo")
	}
}

func TestGeneralRadiusKernelMatchesUnrolled(t *testing.T) {
	// Radius-1 (7-point) and radius-3 (19-point) exercise the generic
	// tap loop; verify against a direct computation.
	for _, r := range []int{1, 3} {
		h := 0.5
		op := Laplacian(r, h)
		n := 8
		src := grid.New(n, n, n, r)
		dst := grid.New(n, n, n, r)
		src.FillFunc(func(i, j, k int) float64 { return float64((i*5+j*2+k*3)%13) / 3 })
		op.ApplyPeriodicReference(dst, src)
		w := CentralWeights(r, 2, h)
		wrap := func(v int) int { return ((v % n) + n) % n }
		for _, p := range [][3]int{{0, 0, 0}, {3, 4, 5}, {n - 1, n - 1, n - 1}} {
			want := 0.0
			for o := -r; o <= r; o++ {
				want += w[o+r] * src.At(wrap(p[0]+o), p[1], p[2])
				want += w[o+r] * src.At(p[0], wrap(p[1]+o), p[2])
				want += w[o+r] * src.At(p[0], p[1], wrap(p[2]+o))
			}
			if got := dst.At(p[0], p[1], p[2]); !almost(got, want, 1e-10) {
				t.Fatalf("r=%d at %v: got %g, want %g", r, p, got, want)
			}
		}
	}
}

func BenchmarkApply13Point64(b *testing.B) {
	op := Laplacian(2, 1)
	src := grid.New(64, 64, 64, 2)
	dst := grid.New(64, 64, 64, 2)
	src.FillFunc(func(i, j, k int) float64 { return float64(i + j + k) })
	src.FillHalosPeriodic()
	b.SetBytes(int64(src.Points() * op.BytesPerPoint()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(dst, src)
	}
}
