package stencil

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/detsum"
	"repro/internal/grid"
	"repro/internal/topology"
)

// Pool is a set of persistent worker goroutines for shared-memory
// parallel grid sweeps — the in-process analogue of the paper's
// one-process-per-node, one-thread-per-core hybrid approaches. Workers
// are started once and reused for every Exec, so the per-operation
// synchronization cost is a channel handoff and a join rather than
// goroutine creation.
//
// A nil *Pool is valid everywhere and runs serially on the caller, so
// solver code takes a pool unconditionally.
type Pool struct {
	workers int
	state   *poolState
}

// poolState is shared between the Pool handle, its workers and the GC
// cleanup, so an unreferenced Pool's workers exit even without an
// explicit Close.
type poolState struct {
	tasks chan func()
	once  sync.Once
}

func (s *poolState) close() { s.once.Do(func() { close(s.tasks) }) }

// NewPool starts a pool with the given number of workers (>= 1). The
// calling goroutine acts as worker 0 during Exec, so workers-1
// goroutines are spawned.
func NewPool(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("stencil: pool with %d workers", workers))
	}
	p := &Pool{workers: workers}
	if workers == 1 {
		return p
	}
	// Unbuffered: a handoff succeeds only when a worker is parked at
	// the receive, so a nested or concurrent Exec can never strand a
	// task in a buffer no idle worker will drain.
	st := &poolState{tasks: make(chan func())}
	p.state = st
	for w := 1; w < workers; w++ {
		go func() {
			for f := range st.tasks {
				f()
			}
		}()
	}
	// Backstop: if the pool is dropped without Close, release the
	// workers when the handle becomes unreachable.
	runtime.AddCleanup(p, func(s *poolState) { s.close() }, st)
	return p
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool, sized to GOMAXPROCS at first
// use. It is never closed; it is the default pool of the gpaw solvers.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(runtime.GOMAXPROCS(0)) })
	return sharedPool
}

// Workers returns the pool's worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close releases the worker goroutines. Exec must not be called after
// Close. Close is idempotent and safe on a nil pool.
func (p *Pool) Close() {
	if p != nil && p.state != nil {
		p.state.close()
	}
}

// Exec splits the index range [0, n) across the pool's workers with
// topology.Split and runs fn(worker, lo, hi) for every non-empty share,
// returning when all shares are done. The caller executes worker 0's
// share. A share whose handoff finds no idle worker (nested or
// concurrent Exec, or a worker not yet parked at the receive) is
// deferred and run on the caller after every other share has been
// dispatched, so one missed handoff never delays the rest and a nested
// Exec cannot deadlock — the partitioning, and therefore any per-share
// result, is unchanged either way.
//
// A panic in any share is captured and re-raised on the caller after
// every share has finished (first panic wins), so a failure inside a
// worker goroutine — an MPI rank-failure error in a hybrid solver, say
// — unwinds the calling rank instead of crashing the process.
func (p *Pool) Exec(n int, fn func(worker, lo, hi int)) {
	w := p.Workers()
	if w <= 1 || n <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	run := func(worker, lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		fn(worker, lo, hi)
	}
	var deferred []func()
	for i := 1; i < w; i++ {
		lo, ln := topology.Split(n, w, i)
		if ln == 0 {
			continue
		}
		i, lo, hi := i, lo, lo+ln
		wg.Add(1)
		task := func() {
			defer wg.Done()
			run(i, lo, hi)
		}
		select {
		case p.state.tasks <- task:
		default:
			deferred = append(deferred, task)
		}
	}
	if lo, ln := topology.Split(n, w, 0); ln > 0 {
		run(0, lo, lo+ln)
	}
	for _, task := range deferred {
		task()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Cache-block extents for the tiled stencil traversal: within a
// worker's plane range the (j, k) loop walks tiles so the 2R+1 source
// planes in flight fit in cache while i advances (2.5-D blocking).
// tileK exceeds common z extents, so rows usually stay contiguous and
// only very wide grids are split in z.
const (
	tileJ = 32
	tileK = 2048
)

// ApplyParallel computes dst = op(src) with the sweep split across the
// pool's workers and cache-blocked over (j, k) tiles. Halos must have
// been filled, exactly as for Apply; the result is bit-identical to
// Apply for every worker count.
func (op *Operator) ApplyParallel(p *Pool, dst, src *grid.Grid) {
	if dst.Nx != src.Nx || dst.Ny != src.Ny || dst.Nz != src.Nz {
		panic("stencil: ApplyParallel extent mismatch")
	}
	if src.H < op.R {
		panic(fmt.Sprintf("stencil: source halo %d < stencil radius %d", src.H, op.R))
	}
	taps := op.gridTaps(src)
	p.Exec(src.Nx, func(_, x0, x1 int) {
		for j0 := 0; j0 < src.Ny; j0 += tileJ {
			j1 := min(j0+tileJ, src.Ny)
			for k0 := 0; k0 < src.Nz; k0 += tileK {
				k1 := min(k0+tileK, src.Nz)
				op.applyBlock(dst, src, taps, x0, x1, j0, j1, k0, k1)
			}
		}
	})
	grid.NoteTraffic(src.Points(), 2)
}

// The drivers below run the grid package's range-based BLAS-1 sweeps
// across the pool. Reductions (Sum, Dot, AxpyDot) accumulate one
// detsum.Acc per worker and merge them exactly, so their results are
// bit-identical to the serial grid methods for every worker count —
// and, because the exact merge is partition-independent, to any MPI
// rank decomposition of the same element set.

// Axpy computes g += a*x across the pool.
func (p *Pool) Axpy(g *grid.Grid, a float64, x *grid.Grid) {
	p.Exec(g.Nx, func(_, i0, i1 int) { g.AxpyRange(a, x, i0, i1) })
}

// AxpyScale computes g = s*g + a*x across the pool.
func (p *Pool) AxpyScale(g *grid.Grid, a float64, x *grid.Grid, s float64) {
	p.Exec(g.Nx, func(_, i0, i1 int) { g.AxpyScaleRange(a, x, s, i0, i1) })
}

// Scale computes g *= a across the pool.
func (p *Pool) Scale(g *grid.Grid, a float64) {
	p.Exec(g.Nx, func(_, i0, i1 int) { g.ScaleRange(a, i0, i1) })
}

// AddScalar adds v to every interior point across the pool.
func (p *Pool) AddScalar(g *grid.Grid, v float64) {
	p.Exec(g.Nx, func(_, i0, i1 int) { g.AddScalarRange(v, i0, i1) })
}

// Copy copies src's interior into g across the pool.
func (p *Pool) Copy(g, src *grid.Grid) {
	p.Exec(g.Nx, func(_, i0, i1 int) { g.CopyInteriorRange(src, i0, i1) })
}

// mergeAccs folds per-worker accumulators into out. The merge is exact,
// so the result is independent of the worker partitioning.
func mergeAccs(out *detsum.Acc, accs []detsum.Acc) {
	for w := range accs {
		out.Merge(&accs[w])
	}
}

// Sum returns the interior sum, reduced exactly.
func (p *Pool) Sum(g *grid.Grid) float64 {
	var acc detsum.Acc
	p.SumAcc(g, &acc)
	return acc.Round()
}

// SumAcc accumulates the interior sum into acc across the pool.
func (p *Pool) SumAcc(g *grid.Grid, acc *detsum.Acc) {
	accs := make([]detsum.Acc, p.Workers())
	p.Exec(g.Nx, func(w, i0, i1 int) { g.SumAccRange(i0, i1, &accs[w]) })
	mergeAccs(acc, accs)
}

// Dot returns <g, o>, reduced exactly.
func (p *Pool) Dot(g, o *grid.Grid) float64 {
	var acc detsum.Acc
	p.DotAcc(g, o, &acc)
	return acc.Round()
}

// DotAcc accumulates <g, o> into acc across the pool.
func (p *Pool) DotAcc(g, o *grid.Grid, acc *detsum.Acc) {
	accs := make([]detsum.Acc, p.Workers())
	p.Exec(g.Nx, func(w, i0, i1 int) { g.DotAccRange(o, i0, i1, &accs[w]) })
	mergeAccs(acc, accs)
}

// DotNormAcc accumulates <g, o> into dotAcc and <g, g> into sqAcc in
// one sweep across the pool.
func (p *Pool) DotNormAcc(g, o *grid.Grid, dotAcc, sqAcc *detsum.Acc) {
	w := p.Workers()
	dots := make([]detsum.Acc, w)
	sqs := make([]detsum.Acc, w)
	p.Exec(g.Nx, func(w, i0, i1 int) { g.DotNormAccRange(o, i0, i1, &dots[w], &sqs[w]) })
	mergeAccs(dotAcc, dots)
	mergeAccs(sqAcc, sqs)
}

// AxpyDot computes g += a*x and returns the updated <g, g> in the same
// sweep, reduced exactly.
func (p *Pool) AxpyDot(g *grid.Grid, a float64, x *grid.Grid) float64 {
	var acc detsum.Acc
	p.AxpyDotAcc(g, a, x, &acc)
	return acc.Round()
}

// AxpyDotAcc is AxpyDot accumulating the updated <g, g> into acc.
func (p *Pool) AxpyDotAcc(g *grid.Grid, a float64, x *grid.Grid, acc *detsum.Acc) {
	accs := make([]detsum.Acc, p.Workers())
	p.Exec(g.Nx, func(w, i0, i1 int) { g.AxpyDotAccRange(a, x, i0, i1, &accs[w]) })
	mergeAccs(acc, accs)
}
