package stencil

import (
	"fmt"

	"repro/internal/detsum"
	"repro/internal/grid"
)

// Shell-aware kernels for the split-phase halo exchange
// (internal/core.StartExchange/FinishExchange): every fused sweep is
// split into a deep-interior part that reads no halo cell — computable
// while halo messages are still in flight — and a one-stencil-radius
// boundary shell computed after the exchange completes.
//
// Geometry. A point (i, j, k) of an Nx x Ny x Nz sweep reads halos iff
// it lies within R of some face (the operator's taps are axis-aligned,
// so the reach along each axis is exactly R). The deep interior is the
// box [R, Nx-R) x [R, Ny-R) x [R, Nz-R), clamped to empty when an
// extent is smaller than 2R; the shell is its complement, decomposed
// into at most six disjoint blocks: two full x slabs, two y strips
// between them, and two z strips between those. Interior plus shell
// cover every sweep point exactly once (fuzzed in shell_test.go).
//
// Determinism. The split variants produce results bit-identical to the
// corresponding full kernels: every point's stencil value funnels
// through the same stencilRow arithmetic, elementwise outputs are
// written once by whichever part owns the point, and reductions
// accumulate into detsum.Acc — exact and order-independent — so
// summing interior and shell partials equals the full sweep's sum
// bitwise no matter how the points are split.

// Block is a half-open sub-box [X0,X1) x [Y0,Y1) x [Z0,Z1) of a grid
// sweep, in interior coordinates.
type Block struct {
	X0, X1, Y0, Y1, Z0, Z1 int
}

// Empty reports whether the block contains no points.
func (b Block) Empty() bool { return b.X0 >= b.X1 || b.Y0 >= b.Y1 || b.Z0 >= b.Z1 }

// Points returns the number of points in the block.
func (b Block) Points() int {
	if b.Empty() {
		return 0
	}
	return (b.X1 - b.X0) * (b.Y1 - b.Y0) * (b.Z1 - b.Z0)
}

// shellRange returns the [lo, hi) extent of the deep interior along one
// dimension of length n for radius r, clamped so lo <= hi always holds
// (degenerate extents make the interior empty along that axis).
func shellRange(n, r int) (lo, hi int) {
	lo = r
	if lo > n {
		lo = n
	}
	hi = n - r
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// InteriorBlock returns the deep-interior box of an (nx, ny, nz) sweep
// for stencil radius r: the points whose stencil reads no halo cell.
func InteriorBlock(nx, ny, nz, r int) Block {
	xlo, xhi := shellRange(nx, r)
	ylo, yhi := shellRange(ny, r)
	zlo, zhi := shellRange(nz, r)
	return Block{xlo, xhi, ylo, yhi, zlo, zhi}
}

// AppendShellBlocks appends the boundary shell of an (nx, ny, nz) sweep
// for radius r — the complement of InteriorBlock — as up to six
// disjoint blocks: x-low and x-high slabs spanning the full cross
// section, y strips between them, and z strips between those. Together
// with the interior block they cover every point exactly once.
func AppendShellBlocks(dst []Block, nx, ny, nz, r int) []Block {
	xlo, xhi := shellRange(nx, r)
	ylo, yhi := shellRange(ny, r)
	zlo, zhi := shellRange(nz, r)
	for _, b := range [6]Block{
		{0, xlo, 0, ny, 0, nz},
		{xhi, nx, 0, ny, 0, nz},
		{xlo, xhi, 0, ylo, 0, nz},
		{xlo, xhi, yhi, ny, 0, nz},
		{xlo, xhi, ylo, yhi, 0, zlo},
		{xlo, xhi, ylo, yhi, zhi, nz},
	} {
		if !b.Empty() {
			dst = append(dst, b)
		}
	}
	return dst
}

// ShellBlocks is AppendShellBlocks into a fresh slice.
func ShellBlocks(nx, ny, nz, r int) []Block {
	return AppendShellBlocks(nil, nx, ny, nz, r)
}

// interiorOf returns the deep-interior block of a sweep over g.
func (op *Operator) interiorOf(g *grid.Grid) Block {
	return InteriorBlock(g.Nx, g.Ny, g.Nz, op.R)
}

// execBlock splits a block's x planes across the pool and runs
// fn(worker, sub-block) for every non-empty share.
func execBlock(p *Pool, b Block, fn func(w int, sub Block)) {
	if b.Empty() {
		return
	}
	p.Exec(b.X1-b.X0, func(w, lo, hi int) {
		sub := b
		sub.X0, sub.X1 = b.X0+lo, b.X0+hi
		fn(w, sub)
	})
}

// --- Apply ----------------------------------------------------------

// ApplyInterior computes dst = op(src) over the deep interior only,
// split across the pool. Safe to run while src's halo exchange is in
// flight; halos are never read. ApplyInterior followed by ApplyShell is
// bit-identical to Apply.
func (op *Operator) ApplyInterior(p *Pool, dst, src *grid.Grid) {
	op.checkFused("ApplyInterior", src, dst)
	blk := op.interiorOf(src)
	if blk.Empty() {
		return
	}
	taps := op.gridTaps(src)
	execBlock(p, blk, func(_ int, s Block) {
		op.applyBlock(dst, src, taps, s.X0, s.X1, s.Y0, s.Y1, s.Z0, s.Z1)
	})
	grid.NoteTraffic(blk.Points(), 2)
}

// ApplyShell computes dst = op(src) over the boundary shell. src's
// halos must be valid (the exchange must have finished). The shell is
// O(surface) work, so it runs on the calling goroutine.
func (op *Operator) ApplyShell(dst, src *grid.Grid) {
	op.checkFused("ApplyShell", src, dst)
	taps := op.gridTaps(src)
	pts := 0
	var blocks [6]Block
	for _, s := range AppendShellBlocks(blocks[:0], src.Nx, src.Ny, src.Nz, op.R) {
		op.applyBlock(dst, src, taps, s.X0, s.X1, s.Y0, s.Y1, s.Z0, s.Z1)
		pts += s.Points()
	}
	grid.NoteTraffic(pts, 2)
}

// --- ApplyDot -------------------------------------------------------

// applyDotBlock is the block form of the ApplyDot sweep: dst = op(src)
// and acc += <src, dst> over one block.
func (op *Operator) applyDotBlock(dst, src *grid.Grid, taps []tap, a *detsum.Acc, blk Block) {
	in := src.Data()
	out := dst.Data()
	n := blk.Z1 - blk.Z0
	for i := blk.X0; i < blk.X1; i++ {
		for j := blk.Y0; j < blk.Y1; j++ {
			srow := src.Index(i, j, blk.Z0)
			drow := dst.Index(i, j, blk.Z0)
			stencilRow(out[drow:drow+n], in, srow, n, op.Center, taps)
			for k := 0; k < n; k++ {
				a.Add(in[srow+k] * out[drow+k])
			}
		}
	}
}

// ApplyDotInteriorAcc computes dst = op(src) over the deep interior and
// accumulates the interior part of <src, dst> into acc, split across
// the pool. With ApplyDotShellAcc on the same acc afterwards, the
// rounded sum is bit-identical to ApplyDotAcc's (the accumulation is
// exact, hence split-independent).
func (op *Operator) ApplyDotInteriorAcc(p *Pool, dst, src *grid.Grid, acc *detsum.Acc) {
	op.checkFused("ApplyDotInterior", src, dst)
	blk := op.interiorOf(src)
	if blk.Empty() {
		return
	}
	taps := op.gridTaps(src)
	accs := make([]detsum.Acc, p.Workers())
	execBlock(p, blk, func(w int, s Block) {
		op.applyDotBlock(dst, src, taps, &accs[w], s)
	})
	grid.NoteTraffic(blk.Points(), 2)
	mergeAccs(acc, accs)
}

// ApplyDotShellAcc is the boundary-shell remainder of ApplyDotInteriorAcc.
// src's halos must be valid.
func (op *Operator) ApplyDotShellAcc(dst, src *grid.Grid, acc *detsum.Acc) {
	op.checkFused("ApplyDotShell", src, dst)
	taps := op.gridTaps(src)
	pts := 0
	var blocks [6]Block
	for _, s := range AppendShellBlocks(blocks[:0], src.Nx, src.Ny, src.Nz, op.R) {
		op.applyDotBlock(dst, src, taps, acc, s)
		pts += s.Points()
	}
	grid.NoteTraffic(pts, 2)
}

// --- ApplyResidual --------------------------------------------------

// applyResidualBlock is the block form of the ApplyResidual sweep:
// r = b - op(phi) and acc += |r|^2 over one block. buf must hold at
// least Z1-Z0 values.
func (op *Operator) applyResidualBlock(r, b, phi *grid.Grid, taps []tap, buf []float64, a *detsum.Acc, blk Block) {
	in := phi.Data()
	rd := r.Data()
	bd := b.Data()
	n := blk.Z1 - blk.Z0
	for i := blk.X0; i < blk.X1; i++ {
		for j := blk.Y0; j < blk.Y1; j++ {
			stencilRow(buf[:n], in, phi.Index(i, j, blk.Z0), n, op.Center, taps)
			rrow := r.Index(i, j, blk.Z0)
			brow := b.Index(i, j, blk.Z0)
			for k := 0; k < n; k++ {
				v := bd[brow+k] - buf[k]
				rd[rrow+k] = v
				a.Add(v * v)
			}
		}
	}
}

// ApplyResidualInteriorAcc computes r = b - op(phi) over the deep
// interior and accumulates the interior part of |r|^2 into acc, split
// across the pool. r may alias b; it must not alias phi.
func (op *Operator) ApplyResidualInteriorAcc(p *Pool, r, b, phi *grid.Grid, acc *detsum.Acc) {
	op.checkFused("ApplyResidualInterior", phi, r, b)
	blk := op.interiorOf(phi)
	if blk.Empty() {
		return
	}
	taps := op.gridTaps(phi)
	accs := make([]detsum.Acc, p.Workers())
	execBlock(p, blk, func(w int, s Block) {
		buf := make([]float64, s.Z1-s.Z0)
		op.applyResidualBlock(r, b, phi, taps, buf, &accs[w], s)
	})
	grid.NoteTraffic(blk.Points(), 3)
	mergeAccs(acc, accs)
}

// ApplyResidualShellAcc is the boundary-shell remainder of
// ApplyResidualInteriorAcc. phi's halos must be valid.
func (op *Operator) ApplyResidualShellAcc(r, b, phi *grid.Grid, acc *detsum.Acc) {
	op.checkFused("ApplyResidualShell", phi, r, b)
	taps := op.gridTaps(phi)
	buf := make([]float64, phi.Nz)
	pts := 0
	var blocks [6]Block
	for _, s := range AppendShellBlocks(blocks[:0], phi.Nx, phi.Ny, phi.Nz, op.R) {
		op.applyResidualBlock(r, b, phi, taps, buf, acc, s)
		pts += s.Points()
	}
	grid.NoteTraffic(pts, 3)
}

// --- ApplySmooth ----------------------------------------------------

// applySmoothBlock is the block form of the ApplySmooth sweep:
// dst = phi + c*(rhs - op(phi)) over one block.
func (op *Operator) applySmoothBlock(dst, phi, rhs *grid.Grid, taps []tap, buf []float64, c float64, blk Block) {
	in := phi.Data()
	out := dst.Data()
	bd := rhs.Data()
	n := blk.Z1 - blk.Z0
	for i := blk.X0; i < blk.X1; i++ {
		for j := blk.Y0; j < blk.Y1; j++ {
			srow := phi.Index(i, j, blk.Z0)
			stencilRow(buf[:n], in, srow, n, op.Center, taps)
			drow := dst.Index(i, j, blk.Z0)
			brow := rhs.Index(i, j, blk.Z0)
			for k := 0; k < n; k++ {
				out[drow+k] = in[srow+k] + c*(bd[brow+k]-buf[k])
			}
		}
	}
}

// ApplySmoothInterior computes the damped Jacobi relaxation
// dst = phi + c*(rhs - op(phi)) over the deep interior, split across
// the pool. dst must not alias phi; it may alias rhs.
func (op *Operator) ApplySmoothInterior(p *Pool, dst, phi, rhs *grid.Grid, c float64) {
	op.checkFused("ApplySmoothInterior", phi, dst, rhs)
	blk := op.interiorOf(phi)
	if blk.Empty() {
		return
	}
	taps := op.gridTaps(phi)
	execBlock(p, blk, func(_ int, s Block) {
		buf := make([]float64, s.Z1-s.Z0)
		op.applySmoothBlock(dst, phi, rhs, taps, buf, c, s)
	})
	grid.NoteTraffic(blk.Points(), 3)
}

// ApplySmoothShell is the boundary-shell remainder of
// ApplySmoothInterior. phi's halos must be valid.
func (op *Operator) ApplySmoothShell(dst, phi, rhs *grid.Grid, c float64) {
	op.checkFused("ApplySmoothShell", phi, dst, rhs)
	taps := op.gridTaps(phi)
	buf := make([]float64, phi.Nz)
	pts := 0
	var blocks [6]Block
	for _, s := range AppendShellBlocks(blocks[:0], phi.Nx, phi.Ny, phi.Nz, op.R) {
		op.applySmoothBlock(dst, phi, rhs, taps, buf, c, s)
		pts += s.Points()
	}
	grid.NoteTraffic(pts, 3)
}

// --- ApplyStep ------------------------------------------------------

// applyStepBlock is the block form of the ApplyStep sweep:
// dst = beta*src + alpha*(op(src) + v.*src), v optional, over one block.
func (op *Operator) applyStepBlock(dst, src, v *grid.Grid, taps []tap, buf []float64, alpha, beta float64, blk Block) {
	in := src.Data()
	out := dst.Data()
	var vd []float64
	if v != nil {
		vd = v.Data()
	}
	n := blk.Z1 - blk.Z0
	for i := blk.X0; i < blk.X1; i++ {
		for j := blk.Y0; j < blk.Y1; j++ {
			srow := src.Index(i, j, blk.Z0)
			stencilRow(buf[:n], in, srow, n, op.Center, taps)
			if v != nil {
				vrow := v.Index(i, j, blk.Z0)
				for k := 0; k < n; k++ {
					buf[k] += vd[vrow+k] * in[srow+k]
				}
			}
			drow := dst.Index(i, j, blk.Z0)
			switch {
			case beta == 0 && alpha == 1:
				copy(out[drow:drow+n], buf[:n])
			case beta == 1:
				for k := 0; k < n; k++ {
					out[drow+k] = in[srow+k] + alpha*buf[k]
				}
			default:
				for k := 0; k < n; k++ {
					out[drow+k] = beta*in[srow+k] + alpha*buf[k]
				}
			}
		}
	}
}

// checkStep validates the ApplyStep operand set (v optional).
func (op *Operator) checkStep(kernel string, dst, src, v *grid.Grid) {
	if v != nil {
		op.checkFused(kernel, src, dst, v)
	} else {
		op.checkFused(kernel, src, dst)
	}
}

// stepStreams returns the memory streams of an ApplyStep sweep.
func stepStreams(v *grid.Grid) int {
	if v != nil {
		return 3
	}
	return 2
}

// ApplyStepInterior computes the fused Kohn-Sham step
// dst = beta*src + alpha*(op(src) + v.*src) over the deep interior,
// split across the pool. dst must not alias src or v.
func (op *Operator) ApplyStepInterior(p *Pool, dst, src, v *grid.Grid, alpha, beta float64) {
	op.checkStep("ApplyStepInterior", dst, src, v)
	blk := op.interiorOf(src)
	if blk.Empty() {
		return
	}
	taps := op.gridTaps(src)
	execBlock(p, blk, func(_ int, s Block) {
		buf := make([]float64, s.Z1-s.Z0)
		op.applyStepBlock(dst, src, v, taps, buf, alpha, beta, s)
	})
	grid.NoteTraffic(blk.Points(), stepStreams(v))
}

// ApplyStepShell is the boundary-shell remainder of ApplyStepInterior.
// src's halos must be valid.
func (op *Operator) ApplyStepShell(dst, src, v *grid.Grid, alpha, beta float64) {
	op.checkStep("ApplyStepShell", dst, src, v)
	taps := op.gridTaps(src)
	buf := make([]float64, src.Nz)
	pts := 0
	var blocks [6]Block
	for _, s := range AppendShellBlocks(blocks[:0], src.Nx, src.Ny, src.Nz, op.R) {
		op.applyStepBlock(dst, src, v, taps, buf, alpha, beta, s)
		pts += s.Points()
	}
	grid.NoteTraffic(pts, stepStreams(v))
}

// String implements fmt.Stringer for test failure messages.
func (b Block) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)x[%d,%d)", b.X0, b.X1, b.Y0, b.Y1, b.Z0, b.Z1)
}
