// Package stencil implements the finite-difference operators at the heart
// of GPAW: central-difference stencils on uniform 3-D real-space grids.
// The paper's operator is the 13-point stencil — a linear combination of a
// point, its two nearest neighbours in all six axis directions — which is
// the fourth-order central-difference Laplacian (radius 2 per axis).
//
// Coefficients for arbitrary radius and derivative order are generated
// with Fornberg's algorithm, so higher-order operators used elsewhere in
// GPAW are available too.
//
// # Execution engine and memory-traffic model
//
// The finite-difference hot path is memory-bandwidth-bound: at 25 flops
// and 16 bytes of DRAM traffic per point (2 streams — read the source
// once, neighbour reuse served by cache, write the destination), any
// solver built from separate Apply/Scale/Axpy/Dot passes pays for each
// pass with a full traversal of grid-sized arrays. The package therefore
// provides, besides the plain operator:
//
//   - parallel.go — a Pool of persistent worker goroutines with an
//     Exec(n, fn) range-splitting primitive. ApplyParallel splits the
//     outer x planes across workers and walks cache-sized (j, k) tiles
//     within each share, so the five in-flight stencil planes stay
//     resident while streaming. Pool also drives the grid package's
//     range-based BLAS-1 sweeps and computes reductions from per-plane
//     partials, making every result independent of the worker count.
//
//   - fused.go — kernels that combine a stencil application with the
//     BLAS-1 work solvers do immediately after it, in one sweep:
//
//     ApplyDot      dst = op(src), returns <src,dst>      2 streams (16 B/pt)
//     ApplyResidual r = b - op(phi), returns |r|^2        3 streams (24 B/pt)
//     ApplySmooth   dst = phi + c*(rhs - op(phi))         3 streams (24 B/pt)
//     ApplyStep     dst = beta*src + alpha*(op+v)(src)    2-3 streams
//     ApplyAxpy     dst = op(src); y += alpha*dst         4 streams (32 B/pt)
//
//     The unfused chains these replace cost 7-9 streams; a fused CG or
//     Jacobi iteration moves roughly half the bytes of its unfused
//     counterpart. grid.TrafficPoints observes the stream counts.
//
// All kernels — serial, parallel, fused — evaluate the stencil through
// one shared row routine, so their stencil values are bit-identical
// regardless of worker count or fusion.
package stencil

import "fmt"

// Weights computes finite-difference weights by Fornberg's method
// (B. Fornberg, "Generation of Finite Difference Formulas on Arbitrarily
// Spaced Grids", Math. Comp. 51 (1988) 699-706).
//
// Given sample locations xs and an evaluation point z, it returns
// c[j][k] = the weight of sample j in the approximation of the k-th
// derivative at z, for k = 0..m. len(xs) must exceed m.
func Weights(z float64, xs []float64, m int) [][]float64 {
	n := len(xs) - 1
	if n < m {
		panic(fmt.Sprintf("stencil: %d points cannot resolve derivative order %d", n+1, m))
	}
	c := make([][]float64, n+1)
	for i := range c {
		c[i] = make([]float64, m+1)
	}
	c1 := 1.0
	c4 := xs[0] - z
	c[0][0] = 1
	for i := 1; i <= n; i++ {
		mn := i
		if mn > m {
			mn = m
		}
		c2 := 1.0
		c5 := c4
		c4 = xs[i] - z
		for j := 0; j < i; j++ {
			c3 := xs[i] - xs[j]
			c2 *= c3
			if j == i-1 {
				for k := mn; k >= 1; k-- {
					c[i][k] = c1 * (float64(k)*c[i-1][k-1] - c5*c[i-1][k]) / c2
				}
				c[i][0] = -c1 * c5 * c[i-1][0] / c2
			}
			for k := mn; k >= 1; k-- {
				c[j][k] = (c4*c[j][k] - float64(k)*c[j][k-1]) / c3
			}
			c[j][0] = c4 * c[j][0] / c3
		}
		c1 = c2
	}
	return c
}

// CentralWeights returns the weights of the 2R+1-point central-difference
// approximation to the m-th derivative on a uniform grid with spacing h.
// The returned slice has length 2R+1 indexed by offset+R.
func CentralWeights(r, m int, h float64) []float64 {
	if r < 1 {
		panic(fmt.Sprintf("stencil: radius %d < 1", r))
	}
	xs := make([]float64, 2*r+1)
	for i := range xs {
		xs[i] = float64(i-r) * h
	}
	w := Weights(0, xs, m)
	out := make([]float64, 2*r+1)
	for i := range out {
		out[i] = w[i][m]
	}
	return out
}
