package stencil

import (
	"fmt"

	"repro/internal/detsum"
	"repro/internal/grid"
)

// Fused kernels: one stencil sweep combined with the BLAS-1 work a
// solver performs right after it. Each kernel reads and writes every
// grid exactly once, cutting the memory passes of a solver iteration
// roughly in half versus chains of Apply/Scale/Axpy/Dot (see the
// package comment for the stream model). All kernels evaluate the
// stencil through stencilRow into a cache-resident row buffer, so their
// stencil values are bit-identical to Apply's.
//
// Reductions accumulate per-worker detsum.Acc partials merged exactly,
// so every result is independent of the pool's worker count and of any
// distributed-memory partitioning of the same elements (see
// internal/detsum).
//
// Aliasing: the grid the stencil reads (src/phi) must not alias any
// output grid — the stencil reads neighbouring planes that a fused
// in-place write would corrupt. Pure elementwise operands (b, rhs, v, y)
// may alias the output only where noted.

// checkFused panics unless every grid matches the stencil source's
// extents and the source halo covers the radius.
func (op *Operator) checkFused(kernel string, src *grid.Grid, others ...*grid.Grid) {
	for _, g := range others {
		if g.Nx != src.Nx || g.Ny != src.Ny || g.Nz != src.Nz {
			panic(fmt.Sprintf("stencil: %s extent mismatch", kernel))
		}
	}
	if src.H < op.R {
		panic(fmt.Sprintf("stencil: %s source halo %d < stencil radius %d", kernel, src.H, op.R))
	}
}

// Scaled returns the operator with every coefficient multiplied by s.
// Applying Scaled(-1) is bitwise equal to applying op and negating the
// result (IEEE rounding is sign-symmetric), so solvers that need -op —
// CG's positive-definite -∇² — fold the sign into the operator instead
// of spending a full Scale pass per iteration.
func (op *Operator) Scaled(s float64) *Operator {
	scale := func(w []float64) []float64 {
		out := make([]float64, len(w))
		for i, v := range w {
			out[i] = s * v
		}
		return out
	}
	return &Operator{
		R:      op.R,
		Center: s * op.Center,
		X:      scale(op.X),
		Y:      scale(op.Y),
		Z:      scale(op.Z),
	}
}

// ApplyAxpy computes dst = op(src) and y += alpha*dst in one sweep
// (4 streams). y must not alias src or dst.
func (op *Operator) ApplyAxpy(p *Pool, dst, y *grid.Grid, alpha float64, src *grid.Grid) {
	op.checkFused("ApplyAxpy", src, dst, y)
	taps := op.gridTaps(src)
	in := src.Data()
	out := dst.Data()
	yd := y.Data()
	p.Exec(src.Nx, func(_, x0, x1 int) {
		for i := x0; i < x1; i++ {
			for j := 0; j < src.Ny; j++ {
				srow := src.Index(i, j, 0)
				drow := dst.Index(i, j, 0)
				yrow := y.Index(i, j, 0)
				stencilRow(out[drow:drow+src.Nz], in, srow, src.Nz, op.Center, taps)
				for k := 0; k < src.Nz; k++ {
					yd[yrow+k] += alpha * out[drow+k]
				}
			}
		}
	})
	grid.NoteTraffic(src.Points(), 4)
}

// ApplyDot computes dst = op(src) and returns <src, dst> in the same
// sweep. The reduction reuses cache-hot values, so the kernel stays at
// the plain operator's 2 streams — CG's p·Ap comes for free.
func (op *Operator) ApplyDot(p *Pool, dst, src *grid.Grid) float64 {
	var acc detsum.Acc
	op.ApplyDotAcc(p, dst, src, &acc)
	return acc.Round()
}

// ApplyDotAcc is ApplyDot accumulating <src, dst> into acc, for callers
// that fold partial sums across MPI ranks.
func (op *Operator) ApplyDotAcc(p *Pool, dst, src *grid.Grid, acc *detsum.Acc) {
	op.checkFused("ApplyDot", src, dst)
	taps := op.gridTaps(src)
	accs := make([]detsum.Acc, p.Workers())
	p.Exec(src.Nx, func(w, x0, x1 int) {
		op.applyDotBlock(dst, src, taps, &accs[w], Block{x0, x1, 0, src.Ny, 0, src.Nz})
	})
	grid.NoteTraffic(src.Points(), 2)
	mergeAccs(acc, accs)
}

// ApplyResidual computes r = b - op(phi) and returns |r|^2 in one sweep
// (3 streams, versus 9 for Apply+Scale+Axpy+Dot). r may alias b; it
// must not alias phi.
func (op *Operator) ApplyResidual(p *Pool, r, b, phi *grid.Grid) float64 {
	var acc detsum.Acc
	op.ApplyResidualAcc(p, r, b, phi, &acc)
	return acc.Round()
}

// ApplyResidualAcc is ApplyResidual accumulating |r|^2 into acc, for
// callers that fold partial sums across MPI ranks.
func (op *Operator) ApplyResidualAcc(p *Pool, r, b, phi *grid.Grid, acc *detsum.Acc) {
	op.checkFused("ApplyResidual", phi, r, b)
	taps := op.gridTaps(phi)
	accs := make([]detsum.Acc, p.Workers())
	p.Exec(phi.Nx, func(w, x0, x1 int) {
		buf := make([]float64, phi.Nz)
		op.applyResidualBlock(r, b, phi, taps, buf, &accs[w], Block{x0, x1, 0, phi.Ny, 0, phi.Nz})
	})
	grid.NoteTraffic(phi.Points(), 3)
	mergeAccs(acc, accs)
}

// ApplySmooth computes dst = phi + c*(rhs - op(phi)) in one sweep
// (3 streams) — a damped Jacobi relaxation step with c = omega/diag.
// dst must not alias phi; it may alias rhs.
func (op *Operator) ApplySmooth(p *Pool, dst, phi, rhs *grid.Grid, c float64) {
	op.checkFused("ApplySmooth", phi, dst, rhs)
	taps := op.gridTaps(phi)
	p.Exec(phi.Nx, func(_, x0, x1 int) {
		buf := make([]float64, phi.Nz)
		op.applySmoothBlock(dst, phi, rhs, taps, buf, c, Block{x0, x1, 0, phi.Ny, 0, phi.Nz})
	})
	grid.NoteTraffic(phi.Points(), 3)
}

// ApplyStep computes dst = beta*src + alpha*((op(src)) + v.*src) in one
// sweep, with v optional (nil): the fused Kohn-Sham workhorse. With
// alpha=1, beta=0 it is a Hamiltonian application dst = (op+v)(src);
// with alpha=-tau, beta=1 it is the eigensolver's damped power step
// dst = src - tau*H(src). 3 streams with v, 2 without. dst must not
// alias src or v.
func (op *Operator) ApplyStep(p *Pool, dst, src, v *grid.Grid, alpha, beta float64) {
	op.checkStep("ApplyStep", dst, src, v)
	taps := op.gridTaps(src)
	p.Exec(src.Nx, func(_, x0, x1 int) {
		buf := make([]float64, src.Nz)
		op.applyStepBlock(dst, src, v, taps, buf, alpha, beta, Block{x0, x1, 0, src.Ny, 0, src.Nz})
	})
	grid.NoteTraffic(src.Points(), stepStreams(v))
}

// SORSweep performs one in-place lexicographic Gauss-Seidel sweep with
// over-relaxation omega on op(phi) = rhs (halos of phi must be valid).
// The fixed traversal order is the method's defining property, so the
// sweep is inherently serial; this kernel replaces a per-point
// accessor-based loop with a flat-slice traversal.
func (op *Operator) SORSweep(phi, rhs *grid.Grid, omega float64) {
	op.SORSweepPlanes(phi, rhs, omega, 0, phi.Nx)
}

// SORSweepPlanes is the restartable per-plane form of SORSweep: it
// sweeps only the x planes [i0, i1), reading whatever phi currently
// holds in the planes and halos around them. Sweeping [0, Nx) in one
// call is exactly SORSweep; sweeping plane by plane with the upstream
// boundary planes refreshed between calls is the distributed pipelined
// wavefront (internal/gpaw), which reproduces the serial update order —
// and therefore the serial bits — across ranks.
func (op *Operator) SORSweepPlanes(phi, rhs *grid.Grid, omega float64, i0, i1 int) {
	op.checkFused("SORSweep", phi, rhs)
	diag := op.Center
	taps := op.gridTaps(phi)
	in := phi.Data()
	bd := rhs.Data()
	for i := i0; i < i1; i++ {
		for j := 0; j < phi.Ny; j++ {
			prow := phi.Index(i, j, 0)
			brow := rhs.Index(i, j, 0)
			for k := 0; k < phi.Nz; k++ {
				s := prow + k
				v := diag * in[s]
				for _, tp := range taps {
					//lint:ignore detsumcheck rank-local stencil application in fixed tap order; this exact rounding sequence IS the bit-identity contract
					v += tp.c * in[s+tp.off]
				}
				res := bd[brow+k] - v
				in[s] += omega * res / diag
			}
		}
	}
	grid.NoteTraffic((i1-i0)*phi.Ny*phi.Nz, 3)
}
