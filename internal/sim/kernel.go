// Package sim provides a small deterministic discrete-event simulation
// kernel used by the Blue Gene/P machine model (internal/bgpsim).
//
// The kernel keeps a priority queue of timestamped events and a simulated
// clock. Events scheduled for the same instant fire in the order they were
// scheduled, which makes every simulation run fully deterministic.
//
// Two programming styles are supported:
//
//   - Callback style: schedule closures with At/After.
//   - Process style: Spawn goroutine-backed processes that block with
//     Proc.Hold, Proc.WaitSignal, and acquire Resource capacity in FIFO
//     order. Exactly one process runs at a time; control is handed back
//     and forth between the kernel and the running process, so no locking
//     is needed inside process bodies.
//
// Time is measured in seconds as float64. Simulations in this repository
// span microseconds to minutes, well inside float64's exact range for the
// required resolution.
package sim

import (
	"container/heap"
	"fmt"
)

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now    float64
	queue  eventHeap
	seq    int64
	nprocs int // live (spawned, not yet finished) processes

	yield chan struct{} // handed a token whenever a process parks or exits

	// Stopped reports whether Stop was called.
	stopped bool
}

// NewKernel returns a kernel with the clock at zero and no pending events.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current simulated time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// event is a scheduled closure.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it would silently reorder causality.
func (k *Kernel) At(t float64, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, k.now))
	}
	k.seq++
	heap.Push(&k.queue, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative d panics.
func (k *Kernel) After(d float64, fn func()) { k.At(k.now+d, fn) }

// Stop makes Run return after the currently firing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run fires events in timestamp order until the event queue is empty or
// Stop is called, and returns the final simulated time.
func (k *Kernel) Run() float64 {
	for len(k.queue) > 0 && !k.stopped {
		e := heap.Pop(&k.queue).(event)
		k.now = e.at
		e.fn()
	}
	return k.now
}

// RunUntil fires events with timestamps <= t, then sets the clock to t if
// it has not advanced that far already. It returns the simulated time.
func (k *Kernel) RunUntil(t float64) float64 {
	for len(k.queue) > 0 && !k.stopped {
		if k.queue[0].at > t {
			break
		}
		e := heap.Pop(&k.queue).(event)
		k.now = e.at
		e.fn()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

// Pending returns the number of scheduled events not yet fired.
func (k *Kernel) Pending() int { return len(k.queue) }
