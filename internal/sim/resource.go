package sim

// Resource models a FIFO server with a single service channel: a network
// link, a DMA injection engine, a lock, or a CPU core. Work items are
// served strictly in arrival order; each occupies the resource for its
// service duration.
//
// Because service is non-preemptive FIFO, the completion time of a
// request arriving at time t with service duration d is
//
//	finish = max(t, availableAt) + d
//
// which lets Resource hand out completion times without needing a queue
// of parked processes: callers that must block simply HoldUntil the
// returned finish time. This keeps simulations with millions of message
// events cheap (no goroutine parking per message).
type Resource struct {
	name string

	availableAt float64 // earliest time the server is free

	// accounting
	busy     float64 // total busy (service) time
	requests int64   // number of service requests
}

// NewResource returns a named FIFO resource that is free at time zero.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Reserve enqueues a service request of duration d arriving at time `at`
// and returns the time service completes. It never blocks; callers that
// need to wait use Proc.HoldUntil on the result.
func (r *Resource) Reserve(at, d float64) (finish float64) {
	start := at
	if r.availableAt > start {
		start = r.availableAt
	}
	finish = start + d
	r.availableAt = finish
	r.busy += d
	r.requests++
	return finish
}

// Use blocks the process until the resource has served a request of
// duration d issued at the current simulated time, and returns the
// completion time.
func (p *Proc) Use(r *Resource, d float64) float64 {
	finish := r.Reserve(p.k.now, d)
	p.HoldUntil(finish)
	return finish
}

// AvailableAt returns the earliest instant the resource is free.
func (r *Resource) AvailableAt() float64 { return r.availableAt }

// BusyTime returns the cumulative service time performed by the resource.
func (r *Resource) BusyTime() float64 { return r.busy }

// Requests returns the number of service requests issued to the resource.
func (r *Resource) Requests() int64 { return r.requests }

// Utilization returns BusyTime divided by the elapsed horizon, clamped to
// [0, 1]. The horizon is typically Kernel.Now() at the end of a run.
func (r *Resource) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	u := r.busy / horizon
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears scheduling state and accounting, making the resource free
// at time zero again.
func (r *Resource) Reset() {
	r.availableAt = 0
	r.busy = 0
	r.requests = 0
}

// Counter accumulates a named quantity (bytes, messages, ...) during a
// simulation.
type Counter struct {
	name  string
	total float64
	n     int64
}

// NewCounter returns a named counter starting at zero.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Add accumulates v and bumps the observation count.
func (c *Counter) Add(v float64) { c.total += v; c.n++ }

// Total returns the accumulated sum.
func (c *Counter) Total() float64 { return c.total }

// Count returns the number of Add calls.
func (c *Counter) Count() int64 { return c.n }

// Mean returns Total/Count, or zero for an empty counter.
func (c *Counter) Mean() float64 {
	if c.n == 0 {
		return 0
	}
	return c.total / float64(c.n)
}

// Name returns the counter name.
func (c *Counter) Name() string { return c.name }
