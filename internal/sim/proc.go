package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs in lockstep with the
// kernel. At any instant at most one process executes; a process runs
// until it blocks in Hold, HoldUntil, or WaitSignal (or returns), at which
// point control returns to the kernel's event loop.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
}

// Name returns the name given to Spawn, for diagnostics.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.k.now }

// Spawn creates a process that will begin executing body at the current
// simulated time (after already-scheduled events for this instant fire).
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.nprocs++
	go func() {
		<-p.resume // wait for the kernel to start us
		body(p)
		k.nprocs--
		k.yield <- struct{}{} // final handoff: we are done
	}()
	k.After(0, func() { p.run() })
	return p
}

// run transfers control to the process and waits for it to park or exit.
// It must only be called from within the kernel's event loop.
func (p *Proc) run() {
	p.resume <- struct{}{}
	<-p.k.yield
}

// park returns control to the kernel and blocks until the process is
// resumed by a subsequent event.
func (p *Proc) park() {
	p.k.yield <- struct{}{}
	<-p.resume
}

// Hold suspends the process for d simulated seconds.
func (p *Proc) Hold(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Hold(%g) with negative duration", d))
	}
	p.k.After(d, func() { p.run() })
	p.park()
}

// HoldUntil suspends the process until absolute simulated time t. If t is
// in the past the process continues immediately (after pending events at
// the current instant).
func (p *Proc) HoldUntil(t float64) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.At(t, func() { p.run() })
	p.park()
}

// Signal is a broadcast wakeup point for processes. The zero value is
// ready to use. Fire wakes every waiter; waiters that start waiting after
// a Fire wait for the next one. A counter distinguishes "fired while I
// was waiting" so no wakeup is ever lost.
type Signal struct {
	waiters []*Proc
	fires   int64
}

// WaitSignal blocks the process until s.Fire is called.
func (p *Proc) WaitSignal(s *Signal) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Fire wakes all processes currently waiting on s, in wait order, at the
// current simulated time.
func (s *Signal) Fire(k *Kernel) {
	s.fires++
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w := w
		k.After(0, func() { w.run() })
	}
}

// NumWaiting returns how many processes are blocked on the signal.
func (s *Signal) NumWaiting() int { return len(s.waiters) }

// Fires returns how many times the signal has fired.
func (s *Signal) Fires() int64 { return s.fires }
