package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []float64
	times := []float64{3, 1, 2, 5, 4, 0}
	for _, tm := range times {
		tm := tm
		k.At(tm, func() { got = append(got, tm) })
	}
	end := k.Run()
	if end != 5 {
		t.Fatalf("final time = %g, want 5", end)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("fired %d events, want %d", len(got), len(times))
	}
}

func TestKernelTieBreakIsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(1.0, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", got)
		}
	}
}

func TestKernelAfterAccumulates(t *testing.T) {
	k := NewKernel()
	var seen []float64
	k.After(1, func() {
		seen = append(seen, k.Now())
		k.After(2, func() { seen = append(seen, k.Now()) })
	})
	k.Run()
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Fatalf("chained After produced times %v, want [1 3]", seen)
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(1, func() {})
	})
	k.Run()
}

func TestKernelHoldNegativePanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Hold(-1) did not panic")
			}
		}()
		p.Hold(-1)
	})
	k.Run()
}

func TestKernelRunUntilStopsAtHorizon(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(1, func() { fired++ })
	k.At(2, func() { fired++ })
	k.At(10, func() { fired++ })
	now := k.RunUntil(5)
	if now != 5 {
		t.Fatalf("RunUntil returned %g, want 5", now)
	}
	if fired != 2 {
		t.Fatalf("fired %d events before horizon, want 2", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run()
	if fired != 3 {
		t.Fatalf("fired %d events total, want 3", fired)
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(1, func() { fired++; k.Stop() })
	k.At(2, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop: fired=%d", fired)
	}
}

func TestProcHoldAdvancesClock(t *testing.T) {
	k := NewKernel()
	var stamps []float64
	k.Spawn("worker", func(p *Proc) {
		stamps = append(stamps, p.Now())
		p.Hold(1.5)
		stamps = append(stamps, p.Now())
		p.Hold(0) // zero-length hold is legal
		stamps = append(stamps, p.Now())
		p.HoldUntil(10)
		stamps = append(stamps, p.Now())
		p.HoldUntil(3) // in the past: no-op
		stamps = append(stamps, p.Now())
	})
	k.Run()
	want := []float64{0, 1.5, 1.5, 10, 10}
	if len(stamps) != len(want) {
		t.Fatalf("stamps = %v, want %v", stamps, want)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "a")
				p.Hold(2)
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "b")
				p.Hold(3)
			}
		})
		k.Run()
		return trace
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("nondeterministic trace length: %v vs %v", got, first)
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("nondeterministic trace: %v vs %v", got, first)
				}
			}
		}
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	k := NewKernel()
	var s Signal
	woken := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			p.WaitSignal(&s)
			woken++
		})
	}
	k.Spawn("firer", func(p *Proc) {
		p.Hold(1)
		s.Fire(k)
	})
	k.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
	if s.Fires() != 1 {
		t.Fatalf("fires = %d, want 1", s.Fires())
	}
	if s.NumWaiting() != 0 {
		t.Fatalf("still %d waiting after fire", s.NumWaiting())
	}
}

func TestResourceFIFOServesInOrder(t *testing.T) {
	r := NewResource("link")
	// Three requests arriving at t=0 each taking 2s must finish at 2,4,6.
	f1 := r.Reserve(0, 2)
	f2 := r.Reserve(0, 2)
	f3 := r.Reserve(0, 2)
	if f1 != 2 || f2 != 4 || f3 != 6 {
		t.Fatalf("finishes = %g,%g,%g want 2,4,6", f1, f2, f3)
	}
	// A late arrival after the backlog drains starts immediately.
	f4 := r.Reserve(10, 1)
	if f4 != 11 {
		t.Fatalf("idle-arrival finish = %g, want 11", f4)
	}
	if r.BusyTime() != 7 {
		t.Fatalf("busy = %g, want 7", r.BusyTime())
	}
	if r.Requests() != 4 {
		t.Fatalf("requests = %d, want 4", r.Requests())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("cpu")
	r.Reserve(0, 3)
	if u := r.Utilization(6); u != 0.5 {
		t.Fatalf("utilization = %g, want 0.5", u)
	}
	if u := r.Utilization(1); u != 1 {
		t.Fatalf("utilization should clamp to 1, got %g", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("utilization with zero horizon = %g, want 0", u)
	}
	r.Reset()
	if r.BusyTime() != 0 || r.AvailableAt() != 0 || r.Requests() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestProcUseSerializesOnResource(t *testing.T) {
	k := NewKernel()
	r := NewResource("link")
	var finishes []float64
	for i := 0; i < 4; i++ {
		k.Spawn("sender", func(p *Proc) {
			p.Use(r, 1)
			finishes = append(finishes, p.Now())
		})
	}
	k.Run()
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if finishes[i] != want[i] {
			t.Fatalf("finishes = %v, want %v", finishes, want)
		}
	}
}

// Property: for any sequence of (arrival, duration) pairs with arrivals
// sorted, FIFO completion times are nondecreasing and each request's span
// fits entirely after its arrival.
func TestResourceFIFOProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("x")
		arrival := 0.0
		prevFinish := 0.0
		for i := 0; i < int(n%40)+1; i++ {
			arrival += rng.Float64()
			d := rng.Float64()
			finish := r.Reserve(arrival, d)
			if finish < arrival+d {
				return false // served before arrival or truncated
			}
			if finish < prevFinish {
				return false // FIFO order violated
			}
			prevFinish = finish
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: counters sum exactly in order-independent fashion for integral
// values.
func TestCounterProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		c := NewCounter("bytes")
		var want float64
		for _, v := range vals {
			c.Add(float64(v))
			want += float64(v)
		}
		return c.Total() == want && c.Count() == int64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterMean(t *testing.T) {
	c := NewCounter("m")
	if c.Mean() != 0 {
		t.Fatal("empty counter mean should be 0")
	}
	c.Add(2)
	c.Add(4)
	if c.Mean() != 3 {
		t.Fatalf("mean = %g, want 3", c.Mean())
	}
	if c.Name() != "m" {
		t.Fatalf("name = %q", c.Name())
	}
}
