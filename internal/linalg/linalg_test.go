package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSym(rng *rand.Rand, n int) Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			a[i][j], a[j][i] = v, v
		}
	}
	return a
}

func randomSPD(rng *rand.Rand, n int) Matrix {
	b := NewMatrix(n, n)
	for i := range b {
		for j := range b[i] {
			b[i][j] = rng.NormFloat64()
		}
	}
	a := MatMul(b, Transpose(b))
	for i := 0; i < n; i++ {
		a[i][i] += float64(n) // well conditioned
	}
	return a
}

func TestIdentityAndClone(t *testing.T) {
	i3 := Identity(3)
	c := i3.Clone()
	c[0][0] = 5
	if i3[0][0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := Matrix{{1, 2}, {3, 4}}
	b := Matrix{{5, 6}, {7, 8}}
	c := MatMul(a, b)
	want := Matrix{{19, 22}, {43, 50}}
	if MaxAbsDiff(c, want) != 0 {
		t.Fatalf("MatMul = %v", c)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(Matrix{{1, 2}}, Matrix{{1, 2}})
}

func TestTranspose(t *testing.T) {
	a := Matrix{{1, 2, 3}, {4, 5, 6}}
	at := Transpose(a)
	if len(at) != 3 || len(at[0]) != 2 || at[2][1] != 6 || at[0][1] != 4 {
		t.Fatalf("Transpose = %v", at)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := Matrix{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}
	eig, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-12 {
			t.Fatalf("eig = %v", eig)
		}
	}
	// Eigenvector for eigenvalue 1 is e_1 (up to sign).
	if math.Abs(math.Abs(vecs[1][0])-1) > 1e-12 {
		t.Fatalf("vecs = %v", vecs)
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	eig, vecs, err := SymEig(Matrix{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-1) > 1e-12 || math.Abs(eig[1]-3) > 1e-12 {
		t.Fatalf("eig = %v", eig)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	if math.Abs(math.Abs(vecs[0][1])-1/math.Sqrt2) > 1e-10 {
		t.Fatalf("vecs = %v", vecs)
	}
}

func TestSymEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(9)
		a := randomSym(rng, n)
		eig, v, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if eig[i] < eig[i-1] {
				t.Fatal("eigenvalues not ascending")
			}
		}
		// A = V diag(eig) Vᵀ.
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d[i][i] = eig[i]
		}
		rec := MatMul(MatMul(v, d), Transpose(v))
		if MaxAbsDiff(rec, a) > 1e-9 {
			t.Fatalf("trial %d: reconstruction error %g", trial, MaxAbsDiff(rec, a))
		}
		// Columns orthonormal: VᵀV = I.
		vv := MatMul(Transpose(v), v)
		if MaxAbsDiff(vv, Identity(n)) > 1e-10 {
			t.Fatal("eigenvectors not orthonormal")
		}
	}
}

func TestSymEigTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomSym(rng, n)
		eig, _, err := SymEig(a)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a[i][i]
			sum += eig[i]
		}
		return math.Abs(trace-sum) < 1e-9*math.Max(1, math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		rec := MatMul(l, Transpose(l))
		if MaxAbsDiff(rec, a) > 1e-9 {
			t.Fatalf("LLᵀ reconstruction error %g", MaxAbsDiff(rec, a))
		}
		// Upper triangle of L must be zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l[i][j] != 0 {
					t.Fatal("L not lower triangular")
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	if _, err := Cholesky(Matrix{{1, 0}, {0, -1}}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestTriangularSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 6)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// Solve A x = b via L (Lᵀ x) = b.
	y := ForwardSolve(l, b)
	x := BackSolve(l, y)
	// Check residual.
	for i := 0; i < 6; i++ {
		sum := 0.0
		for j := 0; j < 6; j++ {
			sum += a[i][j] * x[j]
		}
		if math.Abs(sum-b[i]) > 1e-9 {
			t.Fatalf("residual %g at row %d", sum-b[i], i)
		}
	}
}

func TestInvertLower(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 5)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := InvertLower(l)
	prod := MatMul(l, inv)
	if MaxAbsDiff(prod, Identity(5)) > 1e-10 {
		t.Fatalf("L*L^-1 != I (err %g)", MaxAbsDiff(prod, Identity(5)))
	}
}

// TestSymEigTieBreakStable: exactly degenerate eigenvalues keep the
// Jacobi column order — for a scalar matrix the eigenvector basis is the
// identity, in order.
func TestSymEigTieBreakStable(t *testing.T) {
	a := Matrix{{2, 0, 0}, {0, 2, 0}, {0, 0, 2}}
	eig, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range eig {
		if eig[i] != 2 {
			t.Fatalf("eig = %v", eig)
		}
	}
	if MaxAbsDiff(vecs, Identity(3)) != 0 {
		t.Fatalf("degenerate eigenvectors reordered: %v", vecs)
	}
}

// TestSymEigCanonicalSign: every returned eigenvector has a non-negative
// largest-magnitude component, and repeated diagonalizations of the same
// matrix are bit-identical.
func TestSymEigCanonicalSign(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(7)
		a := randomSym(rng, n)
		eig, v, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		for col := 0; col < n; col++ {
			pivot := 0
			for r := 1; r < n; r++ {
				if math.Abs(v[r][col]) > math.Abs(v[pivot][col]) {
					pivot = r
				}
			}
			if v[pivot][col] < 0 {
				t.Fatalf("trial %d col %d: pivot component %g negative", trial, col, v[pivot][col])
			}
		}
		eig2, v2, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range eig {
			if eig[i] != eig2[i] {
				t.Fatalf("trial %d: eigenvalues not reproducible", trial)
			}
		}
		if MaxAbsDiff(v, v2) != 0 {
			t.Fatalf("trial %d: eigenvectors not reproducible", trial)
		}
	}
}

// TestSymEigNonConvergence: a skew-symmetric input (outside the
// symmetric contract) never converges under symmetric Jacobi rotations
// and must surface as an explicit error, not a silent bad basis.
func TestSymEigNonConvergence(t *testing.T) {
	a := Matrix{{0, 1}, {-1, 0}}
	if _, _, err := SymEig(a); err == nil {
		t.Fatal("want non-convergence error for skew-symmetric input")
	}
}
