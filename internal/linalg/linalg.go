// Package linalg provides the small dense linear-algebra kernels the
// mini-DFT substrate needs: symmetric eigendecomposition (cyclic Jacobi),
// Cholesky factorization, triangular solves and basic matrix products.
// Matrices are row-major [][]float64 of modest size (subspace dimensions,
// typically tens), so clarity beats blocking.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix [][]float64

// NewMatrix allocates an n x m zero matrix.
func NewMatrix(n, m int) Matrix {
	a := make(Matrix, n)
	backing := make([]float64, n*m)
	for i := range a {
		a[i], backing = backing[:m:m], backing[m:]
	}
	return a
}

// Identity returns the n x n identity.
func Identity(n int) Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a[i][i] = 1
	}
	return a
}

// Clone deep-copies the matrix.
func (a Matrix) Clone() Matrix {
	out := NewMatrix(len(a), len(a[0]))
	for i := range a {
		copy(out[i], a[i])
	}
	return out
}

// MatMul returns a*b.
func MatMul(a, b Matrix) Matrix {
	n, k := len(a), len(a[0])
	if len(b) != k {
		panic(fmt.Sprintf("linalg: matmul %dx%d by %dx%d", n, k, len(b), len(b[0])))
	}
	m := len(b[0])
	out := NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for l := 0; l < k; l++ {
			ail := a[i][l]
			if ail == 0 {
				continue
			}
			row := b[l]
			for j := 0; j < m; j++ {
				out[i][j] += ail * row[j]
			}
		}
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a Matrix) Matrix {
	out := NewMatrix(len(a[0]), len(a))
	for i := range a {
		for j := range a[i] {
			out[j][i] = a[i][j]
		}
	}
	return out
}

// symEigMaxSweeps bounds the cyclic Jacobi iteration; Jacobi converges
// quadratically, so a matrix that has not converged by then is
// pathological and SymEig reports it instead of returning silently.
const symEigMaxSweeps = 100

// offDiagNorm2 returns the squared Frobenius norm of the strict upper
// triangle — the Jacobi convergence measure.
func offDiagNorm2(w Matrix) float64 {
	off := 0.0
	for i := range w {
		for j := i + 1; j < len(w); j++ {
			off += w[i][j] * w[i][j]
		}
	}
	return off
}

// SymEig diagonalizes a symmetric matrix with the cyclic Jacobi method,
// returning eigenvalues in ascending order and the corresponding
// eigenvectors as the COLUMNS of the returned matrix. The input is not
// modified.
//
// The eigenpair order is canonical: eigenvalues sort ascending with a
// deterministic tie-break (exactly equal eigenvalues keep the Jacobi
// column order, which is itself deterministic for bit-identical input),
// and each eigenvector's sign is normalized so its largest-magnitude
// component (first such index on magnitude ties) is non-negative. The
// band-parallel solver layer relies on this: every rank diagonalizes a
// bit-identical subspace matrix and must derive a bit-identical rotation.
//
// If the off-diagonal norm has not dropped below the convergence
// threshold after symEigMaxSweeps sweeps, SymEig returns an explicit
// non-convergence error rather than a silently unconverged basis.
func SymEig(a Matrix) (eig []float64, vecs Matrix, err error) {
	n := len(a)
	if n == 0 {
		return []float64{}, NewMatrix(0, 0), nil
	}
	w := a.Clone()
	v := Identity(n)
	converged := false
	for sweep := 0; sweep < symEigMaxSweeps; sweep++ {
		if offDiagNorm2(w) < 1e-28*float64(n*n) {
			converged = true
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w[p][q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (w[q][q] - w[p][p]) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					wkp, wkq := w[k][p], w[k][q]
					w[k][p] = c*wkp - s*wkq
					w[k][q] = s*wkp + c*wkq
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w[p][k], w[q][k]
					w[p][k] = c*wpk - s*wqk
					w[q][k] = s*wpk + c*wqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	if !converged && offDiagNorm2(w) >= 1e-28*float64(n*n) {
		return nil, nil, fmt.Errorf("linalg: Jacobi eigensolver did not converge in %d sweeps (off-diagonal %g)",
			symEigMaxSweeps, math.Sqrt(offDiagNorm2(w)))
	}
	// Extract and sort ascending, permuting eigenvector columns. The
	// insertion sort is stable (strict <), so exactly equal eigenvalues
	// keep the Jacobi column order — the deterministic tie-break the
	// canonical eigenpair order promises.
	eig = make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = w[i][i]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is small
		for j := i; j > 0 && eig[idx[j]] < eig[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedEig := make([]float64, n)
	vecs = NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedEig[newCol] = eig[oldCol]
		// Canonical sign: make the largest-magnitude component (first
		// index on exact magnitude ties) non-negative. Negation is exact,
		// so this costs no accuracy and fixes the one residual degree of
		// freedom of a non-degenerate eigenvector.
		pivot := 0
		for r := 1; r < n; r++ {
			if math.Abs(v[r][oldCol]) > math.Abs(v[pivot][oldCol]) {
				pivot = r
			}
		}
		sign := 1.0
		if v[pivot][oldCol] < 0 {
			sign = -1
		}
		for r := 0; r < n; r++ {
			vecs[r][newCol] = sign * v[r][oldCol]
		}
	}
	return sortedEig, vecs, nil
}

// Cholesky factors a symmetric positive-definite matrix as L*Lᵀ,
// returning lower-triangular L. It returns an error if the matrix is
// not positive definite.
func Cholesky(a Matrix) (Matrix, error) {
	n := len(a)
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				// Reject non-positive pivots with a relative tolerance so
				// numerically singular matrices (e.g. overlaps of linearly
				// dependent states) are caught despite rounding.
				if sum <= 1e-12*math.Abs(a[i][i]) {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (%g)", i, sum)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// ForwardSolve solves L*x = b for lower-triangular L.
func ForwardSolve(l Matrix, b []float64) []float64 {
	n := len(l)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// BackSolve solves Lᵀ*x = b for lower-triangular L.
func BackSolve(l Matrix, b []float64) []float64 {
	n := len(l)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// InvertLower returns the inverse of a lower-triangular matrix.
func InvertLower(l Matrix) Matrix {
	n := len(l)
	inv := NewMatrix(n, n)
	for col := 0; col < n; col++ {
		e := make([]float64, n)
		e[col] = 1
		x := ForwardSolve(l, e)
		for r := 0; r < n; r++ {
			inv[r][col] = x[r]
		}
	}
	return inv
}

// MaxAbsDiff returns the largest elementwise difference of two
// equally-shaped matrices.
func MaxAbsDiff(a, b Matrix) float64 {
	max := 0.0
	for i := range a {
		for j := range a[i] {
			if d := math.Abs(a[i][j] - b[i][j]); d > max {
				max = d
			}
		}
	}
	return max
}
