package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestNewAndIndexing(t *testing.T) {
	g := New(4, 5, 6, 2)
	if g.Points() != 4*5*6 {
		t.Fatalf("Points = %d", g.Points())
	}
	if g.Dims() != (topology.Dims{4, 5, 6}) {
		t.Fatalf("Dims = %v", g.Dims())
	}
	g.Set(0, 0, 0, 1.5)
	g.Set(3, 4, 5, 2.5)
	g.Set(-2, -2, -2, 3.5) // halo corner
	g.Set(5, 6, 7, 4.5)    // opposite halo corner
	if g.At(0, 0, 0) != 1.5 || g.At(3, 4, 5) != 2.5 {
		t.Fatal("interior read-back failed")
	}
	if g.At(-2, -2, -2) != 3.5 || g.At(5, 6, 7) != 4.5 {
		t.Fatal("halo read-back failed")
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, 1, 0) },
		func() { New(1, -1, 1, 0) },
		func() { New(1, 1, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad New args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestDistinctCellsDistinctIndices(t *testing.T) {
	g := New(3, 4, 5, 1)
	seen := map[int]bool{}
	for i := -1; i < 4; i++ {
		for j := -1; j < 5; j++ {
			for k := -1; k < 6; k++ {
				idx := g.Index(i, j, k)
				if seen[idx] {
					t.Fatalf("index collision at (%d,%d,%d)", i, j, k)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != 5*6*7 {
		t.Fatalf("indexed %d cells, want %d", len(seen), 5*6*7)
	}
}

func TestFillAndSum(t *testing.T) {
	g := New(3, 3, 3, 2)
	g.Fill(2)
	if got := g.Sum(); got != 54 {
		t.Fatalf("Sum = %g, want 54", got)
	}
	// Halos must be untouched by Fill.
	if g.At(-1, 0, 0) != 0 {
		t.Fatal("Fill wrote into halo")
	}
	g.Scale(0.5)
	if got := g.Sum(); got != 27 {
		t.Fatalf("after Scale, Sum = %g, want 27", got)
	}
}

func TestFillFunc(t *testing.T) {
	g := New(2, 2, 2, 0)
	g.FillFunc(func(i, j, k int) float64 { return float64(i*100 + j*10 + k) })
	if g.At(1, 0, 1) != 101 {
		t.Fatalf("At(1,0,1) = %g", g.At(1, 0, 1))
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(2, 2, 2, 1)
	g.Fill(1)
	c := g.Clone()
	c.Set(0, 0, 0, 9)
	if g.At(0, 0, 0) == 9 {
		t.Fatal("Clone shares storage with original")
	}
	if c.MaxAbsDiff(g) != 8 {
		t.Fatalf("MaxAbsDiff = %g, want 8", c.MaxAbsDiff(g))
	}
}

func TestDotNormAxpy(t *testing.T) {
	a := New(2, 2, 2, 0)
	b := New(2, 2, 2, 0)
	a.Fill(3)
	b.Fill(2)
	if got := a.Dot(b); got != 48 {
		t.Fatalf("Dot = %g, want 48", got)
	}
	if got := a.Norm2(); math.Abs(got-math.Sqrt(72)) > 1e-12 {
		t.Fatalf("Norm2 = %g", got)
	}
	a.Axpy(-1.5, b) // 3 - 3 = 0
	if got := a.Norm2(); got != 0 {
		t.Fatalf("after Axpy, Norm2 = %g, want 0", got)
	}
}

func TestExtentMismatchPanics(t *testing.T) {
	a := New(2, 2, 2, 0)
	b := New(2, 2, 3, 0)
	for name, f := range map[string]func(){
		"Dot":              func() { a.Dot(b) },
		"Axpy":             func() { a.Axpy(1, b) },
		"MaxAbsDiff":       func() { a.MaxAbsDiff(b) },
		"CopyInteriorFrom": func() { a.CopyInteriorFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched extents did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPackUnpackFaceRoundTrip(t *testing.T) {
	g := New(4, 5, 6, 2)
	g.FillFunc(func(i, j, k int) float64 { return float64(i*1000 + j*100 + k) })
	for dim := 0; dim < 3; dim++ {
		for _, side := range []Side{Low, High} {
			n := g.FaceLen(dim, 2)
			buf := make([]float64, n)
			if got := g.PackFace(dim, side, 2, buf); got != n {
				t.Fatalf("PackFace wrote %d, want %d", got, n)
			}
			// Unpack into the halo on the same side of a second grid and
			// verify the halo content matches the packed interior slab.
			h := New(4, 5, 6, 2)
			if got := h.UnpackHalo(dim, side, 2, buf); got != n {
				t.Fatalf("UnpackHalo read %d, want %d", got, n)
			}
			// Spot-check one value: the first packed element is the slab
			// origin.
			var want float64
			switch dim {
			case 0:
				lo := 0
				if side == High {
					lo = g.Nx - 2
				}
				want = g.At(lo, 0, 0)
				hlo := -2
				if side == High {
					hlo = g.Nx
				}
				if h.At(hlo, 0, 0) != want {
					t.Fatalf("dim %d side %v: halo origin %g, want %g", dim, side, h.At(hlo, 0, 0), want)
				}
			case 1:
				lo := 0
				if side == High {
					lo = g.Ny - 2
				}
				want = g.At(0, lo, 0)
				hlo := -2
				if side == High {
					hlo = g.Ny
				}
				if h.At(0, hlo, 0) != want {
					t.Fatalf("dim %d side %v halo mismatch", dim, side)
				}
			case 2:
				lo := 0
				if side == High {
					lo = g.Nz - 2
				}
				want = g.At(0, 0, lo)
				hlo := -2
				if side == High {
					hlo = g.Nz
				}
				if h.At(0, 0, hlo) != want {
					t.Fatalf("dim %d side %v halo mismatch", dim, side)
				}
			}
		}
	}
}

func TestPackFaceBufferTooSmallPanics(t *testing.T) {
	g := New(4, 4, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("short buffer did not panic")
		}
	}()
	g.PackFace(0, Low, 1, make([]float64, 3))
}

func TestFaceLenPanicsOnBadDim(t *testing.T) {
	g := New(4, 4, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("FaceLen(5) did not panic")
		}
	}()
	g.FaceLen(5, 1)
}

func TestSideOpposite(t *testing.T) {
	if Low.Opposite() != High || High.Opposite() != Low {
		t.Fatal("Opposite broken")
	}
	if Low.String() != "low" || High.String() != "high" {
		t.Fatal("String broken")
	}
}

func TestFillHalosPeriodic(t *testing.T) {
	g := New(4, 5, 6, 2)
	g.FillFunc(func(i, j, k int) float64 { return float64(i*1000 + j*100 + k) })
	g.FillHalosPeriodic()
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	// Every halo cell must equal the periodic image of the interior,
	// including edges and corners.
	for i := -2; i < g.Nx+2; i++ {
		for j := -2; j < g.Ny+2; j++ {
			for k := -2; k < g.Nz+2; k++ {
				want := float64(wrap(i, g.Nx)*1000 + wrap(j, g.Ny)*100 + wrap(k, g.Nz))
				if got := g.At(i, j, k); got != want {
					t.Fatalf("periodic halo (%d,%d,%d) = %g, want %g", i, j, k, got, want)
				}
			}
		}
	}
}

func TestFillHalosZero(t *testing.T) {
	g := New(3, 3, 3, 1)
	// Dirty every cell, then clear halos.
	for i := -1; i < 4; i++ {
		for j := -1; j < 4; j++ {
			for k := -1; k < 4; k++ {
				g.Set(i, j, k, 7)
			}
		}
	}
	g.FillHalosZero()
	for i := -1; i < 4; i++ {
		for j := -1; j < 4; j++ {
			for k := -1; k < 4; k++ {
				interior := i >= 0 && i < 3 && j >= 0 && j < 3 && k >= 0 && k < 3
				got := g.At(i, j, k)
				if interior && got != 7 {
					t.Fatalf("interior (%d,%d,%d) clobbered", i, j, k)
				}
				if !interior && got != 0 {
					t.Fatalf("halo (%d,%d,%d) = %g, want 0", i, j, k, got)
				}
			}
		}
	}
}

func TestHaloZeroNoHaloIsNoop(t *testing.T) {
	g := New(2, 2, 2, 0)
	g.Fill(5)
	g.FillHalosZero()
	g.FillHalosPeriodic()
	if g.Sum() != 40 {
		t.Fatalf("halo ops on halo-0 grid changed data: sum=%g", g.Sum())
	}
}

// Property: pack/unpack through a buffer is the identity on face data for
// random extents and thicknesses.
func TestPackUnpackProperty(t *testing.T) {
	f := func(nx, ny, nz, dim uint8, high bool) bool {
		g := New(int(nx%5)+2, int(ny%5)+2, int(nz%5)+2, 2)
		d := int(dim % 3)
		side := Low
		if high {
			side = High
		}
		g.FillFunc(func(i, j, k int) float64 { return float64(i*10000 + j*100 + k) })
		buf := make([]float64, g.FaceLen(d, 2))
		g.PackFace(d, side, 2, buf)
		h := New(g.Nx, g.Ny, g.Nz, 2)
		h.UnpackHalo(d, side.Opposite(), 2, buf)
		// Re-pack the halo via a second grid trick: pack from h's halo is
		// not directly exposed, so verify via At on a sample of cells.
		switch d {
		case 0:
			src := 0
			if side == High {
				src = g.Nx - 2
			}
			dst := -2
			if side.Opposite() == High {
				dst = g.Nx
			}
			for s := 0; s < 2; s++ {
				for j := 0; j < g.Ny; j++ {
					for k := 0; k < g.Nz; k++ {
						if h.At(dst+s, j, k) != g.At(src+s, j, k) {
							return false
						}
					}
				}
			}
		case 1:
			src := 0
			if side == High {
				src = g.Ny - 2
			}
			dst := -2
			if side.Opposite() == High {
				dst = g.Ny
			}
			for i := 0; i < g.Nx; i++ {
				for s := 0; s < 2; s++ {
					for k := 0; k < g.Nz; k++ {
						if h.At(i, dst+s, k) != g.At(i, src+s, k) {
							return false
						}
					}
				}
			}
		case 2:
			src := 0
			if side == High {
				src = g.Nz - 2
			}
			dst := -2
			if side.Opposite() == High {
				dst = g.Nz
			}
			for i := 0; i < g.Nx; i++ {
				for j := 0; j < g.Ny; j++ {
					for s := 0; s < 2; s++ {
						if h.At(i, j, dst+s) != g.At(i, j, src+s) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompScatterGatherRoundTrip(t *testing.T) {
	global := topology.Dims{12, 10, 8}
	procs := topology.Dims{3, 2, 2}
	d := MustDecomp(global, procs, 2)
	if d.NumProcs() != 12 {
		t.Fatalf("NumProcs = %d", d.NumProcs())
	}
	g := NewDims(global, 0)
	g.FillFunc(func(i, j, k int) float64 { return float64(i*1e4 + j*1e2 + k) })
	out := NewDims(global, 0)
	for r := 0; r < procs.Count(); r++ {
		c := procs.Coord(r)
		local := d.Scatter(g, c)
		if local.Dims() != d.LocalDims(c) {
			t.Fatalf("local dims mismatch at %v", c)
		}
		d.Gather(out, c, local)
	}
	if g.MaxAbsDiff(out) != 0 {
		t.Fatal("scatter/gather round trip lost data")
	}
}

func TestNewDecompRejectsThinSubdomains(t *testing.T) {
	// 8 points over 4 procs = 2-point sub-domains, thinner than halo 3.
	if _, err := NewDecomp(topology.Dims{8, 8, 8}, topology.Dims{4, 1, 1}, 3); err == nil {
		t.Fatal("thin sub-domain accepted")
	}
	if _, err := NewDecomp(topology.Dims{8, 8, 8}, topology.Dims{0, 1, 1}, 1); err == nil {
		t.Fatal("zero process dimension accepted")
	}
	if _, err := NewDecomp(topology.Dims{2, 2, 2}, topology.Dims{4, 1, 1}, 0); err == nil {
		t.Fatal("more procs than points accepted")
	}
	if _, err := NewDecomp(topology.Dims{8, 8, 8}, topology.Dims{2, 2, 2}, 2); err != nil {
		t.Fatalf("valid decomp rejected: %v", err)
	}
}

func TestMustDecompPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDecomp did not panic on invalid input")
		}
	}()
	MustDecomp(topology.Dims{4, 4, 4}, topology.Dims{8, 1, 1}, 2)
}

func TestSetBasics(t *testing.T) {
	s := NewSet(3, topology.Dims{2, 2, 2}, 1)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.FillSeparable(func(g, i, j, k int) float64 { return float64(g*1000 + i*100 + j*10 + k) })
	if s.Grids[2].At(1, 1, 1) != 2111 {
		t.Fatalf("FillSeparable value = %g", s.Grids[2].At(1, 1, 1))
	}
	c := s.Clone()
	c.Grids[0].Set(0, 0, 0, -1)
	if s.Grids[0].At(0, 0, 0) == -1 {
		t.Fatal("Clone shares grids")
	}
	if s.MaxAbsDiff(c) == 0 {
		t.Fatal("MaxAbsDiff missed the difference")
	}
}

func TestSetMaxAbsDiffPanicsOnLenMismatch(t *testing.T) {
	a := NewSet(2, topology.Dims{2, 2, 2}, 0)
	b := NewSet(3, topology.Dims{2, 2, 2}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	a.MaxAbsDiff(b)
}

func TestCopyInteriorFromDifferentHalo(t *testing.T) {
	a := New(3, 3, 3, 2)
	b := New(3, 3, 3, 0)
	b.FillFunc(func(i, j, k int) float64 { return float64(i + j + k) })
	a.CopyInteriorFrom(b)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("CopyInteriorFrom across halo widths failed")
	}
}
