package grid

import (
	"testing"

	"repro/internal/topology"
)

// TestNewDecompOrFallback: multigrid coarsening halves extents until
// the requested process grid would slice sub-domains thinner than the
// halo, which NewDecomp rejects (see grid_test.go). The fallback must
// shrink the process grid to the largest feasible extents instead of
// erroring, and report that it did so.
func TestNewDecompOrFallback(t *testing.T) {
	// Regression for the coarsening path: the top level is accepted,
	// two halvings later the same process grid is not.
	if _, err := NewDecomp(topology.Dims{16, 16, 16}, topology.Dims{4, 1, 1}, 2); err != nil {
		t.Fatalf("top level rejected: %v", err)
	}
	if _, err := NewDecomp(topology.Dims{4, 4, 4}, topology.Dims{4, 1, 1}, 2); err == nil {
		t.Fatal("thin sub-domain accepted by NewDecomp")
	}
	// The exact decomposition multigrid produces: level dims 4^3 under a
	// {4,1,1} process grid with halo 2 -> largest feasible is {2,1,1}.
	dec, used, fell, err := NewDecompOrFallback(topology.Dims{4, 4, 4}, topology.Dims{4, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !fell {
		t.Fatal("fallback not reported")
	}
	if used != (topology.Dims{2, 1, 1}) {
		t.Fatalf("fallback procs %v, want {2,1,1}", used)
	}
	if dec.Procs != used {
		t.Fatalf("decomp procs %v != used %v", dec.Procs, used)
	}
	// Every sub-domain must now be at least halo thick.
	for r := 0; r < used.Count(); r++ {
		ld := dec.LocalDims(used.Coord(r))
		for d := 0; d < 3; d++ {
			if used[d] > 1 && ld[d] < dec.Halo {
				t.Fatalf("rank %d local dims %v thinner than halo %d", r, ld, dec.Halo)
			}
		}
	}

	// A valid decomposition passes through untouched.
	dec2, used2, fell2, err := NewDecompOrFallback(topology.Dims{16, 12, 8}, topology.Dims{2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fell2 || used2 != (topology.Dims{2, 2, 2}) || dec2.Procs != used2 {
		t.Fatalf("valid decomposition altered: used=%v fell=%v", used2, fell2)
	}

	// Deep coarsening serializes fully: 2^3 with halo 2 over 8 ranks ->
	// a single process per dimension.
	_, used3, fell3, err := NewDecompOrFallback(topology.Dims{2, 2, 2}, topology.Dims{2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !fell3 || used3 != (topology.Dims{1, 1, 1}) {
		t.Fatalf("deep coarsening: used=%v fell=%v, want {1,1,1} true", used3, fell3)
	}

	// Invalid process grids still error.
	if _, _, _, err := NewDecompOrFallback(topology.Dims{8, 8, 8}, topology.Dims{0, 1, 1}, 2); err == nil {
		t.Fatal("non-positive process grid accepted")
	}
}
