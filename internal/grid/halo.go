package grid

import "fmt"

// Side selects one of the two faces of a dimension.
type Side int

// Low is the face at index 0; High is the face at index N-1.
const (
	Low  Side = 0
	High Side = 1
)

// Opposite returns the other side.
func (s Side) Opposite() Side { return 1 - s }

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == Low {
		return "low"
	}
	return "high"
}

// FaceLen returns the number of float64 values in one face slab of
// thickness t for dimension dim: t * (face area).
func (g *Grid) FaceLen(dim, t int) int {
	switch dim {
	case 0:
		return t * g.Ny * g.Nz
	case 1:
		return t * g.Nx * g.Nz
	case 2:
		return t * g.Nx * g.Ny
	}
	panic(fmt.Sprintf("grid: bad dimension %d", dim))
}

// extent returns the interior extent of dimension dim.
func (g *Grid) extent(dim int) int {
	switch dim {
	case 0:
		return g.Nx
	case 1:
		return g.Ny
	case 2:
		return g.Nz
	}
	panic(fmt.Sprintf("grid: bad dimension %d", dim))
}

// PackFace copies the interior slab of thickness t adjacent to the given
// face into buf and returns the number of values written. This is the
// data a neighbouring process needs to fill its halo. buf must have at
// least FaceLen(dim, t) capacity.
func (g *Grid) PackFace(dim int, side Side, t int, buf []float64) int {
	if t > g.extent(dim) {
		panic(fmt.Sprintf("grid: face thickness %d exceeds extent %d", t, g.extent(dim)))
	}
	lo := 0
	if side == High {
		lo = g.extent(dim) - t
	}
	return g.copySlab(dim, lo, t, buf, true)
}

// UnpackHalo copies buf into the halo slab of thickness t on the given
// face. This installs surface points received from a neighbour.
func (g *Grid) UnpackHalo(dim int, side Side, t int, buf []float64) int {
	if t > g.H {
		panic(fmt.Sprintf("grid: face thickness %d exceeds halo %d", t, g.H))
	}
	lo := -t
	if side == High {
		lo = g.extent(dim)
	}
	return g.copySlab(dim, lo, t, buf, false)
}

// PackPlaneFace copies the interior slab of thickness t adjacent to the
// given face of dimension dim (1 for y, 2 for z), restricted to the
// single x plane i, into buf and returns the number of values written.
// It is the per-plane message unit of the pipelined wavefront sweep:
// the downstream rank's halo rows (or columns) for exactly that plane.
func (g *Grid) PackPlaneFace(i, dim int, side Side, t int, buf []float64) int {
	if t > g.extent(dim) {
		panic(fmt.Sprintf("grid: face thickness %d exceeds extent %d", t, g.extent(dim)))
	}
	lo := 0
	if side == High {
		lo = g.extent(dim) - t
	}
	return g.copyPlaneSlab(i, dim, lo, t, buf, true)
}

// UnpackPlaneHalo copies buf into the halo slab of thickness t on the
// given face of dimension dim (1 or 2), restricted to x plane i.
func (g *Grid) UnpackPlaneHalo(i, dim int, side Side, t int, buf []float64) int {
	if t > g.H {
		panic(fmt.Sprintf("grid: face thickness %d exceeds halo %d", t, g.H))
	}
	lo := -t
	if side == High {
		lo = g.extent(dim)
	}
	return g.copyPlaneSlab(i, dim, lo, t, buf, false)
}

// copyPlaneSlab is copySlab restricted to one x plane, for dim 1 (rows
// [lo, lo+t) spanning the interior z extent) or dim 2 (the z range
// [lo, lo+t) of every interior row).
func (g *Grid) copyPlaneSlab(i, dim, lo, t int, buf []float64, pack bool) int {
	y0, y1 := 0, g.Ny
	z0, z1 := 0, g.Nz
	switch dim {
	case 1:
		y0, y1 = lo, lo+t
	case 2:
		z0, z1 = lo, lo+t
	default:
		panic(fmt.Sprintf("grid: bad plane dimension %d", dim))
	}
	need := (y1 - y0) * (z1 - z0)
	if len(buf) < need {
		panic(fmt.Sprintf("grid: buffer len %d < plane slab size %d", len(buf), need))
	}
	pos := 0
	for j := y0; j < y1; j++ {
		row := g.index(i, j, z0)
		n := z1 - z0
		if pack {
			copy(buf[pos:pos+n], g.data[row:row+n])
		} else {
			copy(g.data[row:row+n], buf[pos:pos+n])
		}
		pos += n
	}
	return pos
}

// copySlab moves a slab of thickness t starting at index lo of dimension
// dim between the grid and buf. pack=true copies grid->buf, else
// buf->grid. The slab spans the full interior extent of the other two
// dimensions. Returns the number of values moved.
//
// Exchanging dimensions serially (x, then y, then z) with interior-only
// slabs leaves grid corners unfilled; the distributed engine in
// internal/core fills corners the same way GPAW does — the stencil never
// reads corner halos, because each axis term only reaches through faces.
func (g *Grid) copySlab(dim, lo, t int, buf []float64, pack bool) int {
	x0, x1 := 0, g.Nx
	y0, y1 := 0, g.Ny
	z0, z1 := 0, g.Nz
	switch dim {
	case 0:
		x0, x1 = lo, lo+t
	case 1:
		y0, y1 = lo, lo+t
	case 2:
		z0, z1 = lo, lo+t
	default:
		panic(fmt.Sprintf("grid: bad dimension %d", dim))
	}
	need := (x1 - x0) * (y1 - y0) * (z1 - z0)
	if len(buf) < need {
		panic(fmt.Sprintf("grid: buffer len %d < slab size %d", len(buf), need))
	}
	pos := 0
	for i := x0; i < x1; i++ {
		for j := y0; j < y1; j++ {
			row := g.index(i, j, z0)
			n := z1 - z0
			if pack {
				copy(buf[pos:pos+n], g.data[row:row+n])
			} else {
				copy(g.data[row:row+n], buf[pos:pos+n])
			}
			pos += n
		}
	}
	return pos
}

// FillHalosPeriodic installs periodic boundary halos from the grid's own
// interior. It is the single-process reference for what the distributed
// halo exchange achieves, and is used when a dimension is not decomposed.
//
// Dimensions are processed in order; each dimension's copy spans the
// halo-extended range of dimensions already processed, so edge and corner
// halos are filled transitively and the result is fully periodic.
func (g *Grid) FillHalosPeriodic() {
	t := g.H
	if t == 0 {
		return
	}
	n := [3]int{g.Nx, g.Ny, g.Nz}
	for dim := 0; dim < 3; dim++ {
		var lo, hi [3]int
		for d := 0; d < 3; d++ {
			if d < dim {
				lo[d], hi[d] = -t, n[d]+t // carry previously filled halos
			} else {
				lo[d], hi[d] = 0, n[d]
			}
		}
		g.wrapCopy(dim, lo, hi, 0, n[dim])    // low interior -> high halo
		g.wrapCopy(dim, lo, hi, n[dim]-t, -t) // high interior -> low halo
	}
}

// wrapCopy copies the slab [srcLo, srcLo+H) of dimension dim onto
// [dstLo, dstLo+H), with the other dimensions spanning [lo, hi).
func (g *Grid) wrapCopy(dim int, lo, hi [3]int, srcLo, dstLo int) {
	t := g.H
	switch dim {
	case 0:
		for s := 0; s < t; s++ {
			for j := lo[1]; j < hi[1]; j++ {
				src := g.index(srcLo+s, j, lo[2])
				dst := g.index(dstLo+s, j, lo[2])
				copy(g.data[dst:dst+(hi[2]-lo[2])], g.data[src:src+(hi[2]-lo[2])])
			}
		}
	case 1:
		for i := lo[0]; i < hi[0]; i++ {
			for s := 0; s < t; s++ {
				src := g.index(i, srcLo+s, lo[2])
				dst := g.index(i, dstLo+s, lo[2])
				copy(g.data[dst:dst+(hi[2]-lo[2])], g.data[src:src+(hi[2]-lo[2])])
			}
		}
	case 2:
		for i := lo[0]; i < hi[0]; i++ {
			for j := lo[1]; j < hi[1]; j++ {
				src := g.index(i, j, srcLo)
				dst := g.index(i, j, dstLo)
				copy(g.data[dst:dst+t], g.data[src:src+t])
			}
		}
	}
}

// FillHalosZero clears all halo cells (Dirichlet zero boundary).
func (g *Grid) FillHalosZero() {
	t := g.H
	if t == 0 {
		return
	}
	n := [3]int{g.Nx, g.Ny, g.Nz}
	for dim := 0; dim < 3; dim++ {
		lo := [3]int{-t, -t, -t}
		hi := [3]int{n[0] + t, n[1] + t, n[2] + t}
		g.zeroSlab(dim, lo, hi, -t)
		g.zeroSlab(dim, lo, hi, n[dim])
	}
}

// zeroSlab clears the slab [slabLo, slabLo+H) of dimension dim, other
// dimensions spanning [lo, hi). Rows are contiguous in z, so each clear
// compiles to a memclr instead of a scalar store loop.
func (g *Grid) zeroSlab(dim int, lo, hi [3]int, slabLo int) {
	t := g.H
	switch dim {
	case 0:
		for s := 0; s < t; s++ {
			for j := lo[1]; j < hi[1]; j++ {
				row := g.index(slabLo+s, j, lo[2])
				clear(g.data[row : row+hi[2]-lo[2]])
			}
		}
	case 1:
		for i := lo[0]; i < hi[0]; i++ {
			for s := 0; s < t; s++ {
				row := g.index(i, slabLo+s, lo[2])
				clear(g.data[row : row+hi[2]-lo[2]])
			}
		}
	case 2:
		for i := lo[0]; i < hi[0]; i++ {
			for j := lo[1]; j < hi[1]; j++ {
				row := g.index(i, j, slabLo)
				clear(g.data[row : row+t])
			}
		}
	}
}
