package grid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mpi"
	"repro/internal/topology"
)

// Redistribution fuzz, in the halo-exchange fuzz-vs-oracle style: fields
// are filled from a global-index oracle, moved decomp A -> B across an
// in-process MPI world, checked value-for-value against the oracle, then
// moved back B -> A and checked bitwise against the original.

// redistOracle is the deterministic global-index fill.
func redistOracle(i, j, k int) float64 {
	return math.Sin(float64(i*131+j*17+k)) * math.Pow(10, float64((i+2*j+3*k)%31)-15)
}

// fillLocal builds the local grid of coordinate c under dec, interior
// filled from the oracle at global indices.
func fillLocal(dec *Decomp, c topology.Coord, halo int) *Grid {
	g := NewDims(dec.LocalDims(c), halo)
	off := dec.Offset(c)
	g.FillFunc(func(i, j, k int) float64 { return redistOracle(off[0]+i, off[1]+j, off[2]+k) })
	return g
}

// checkLocal fails unless g's interior matches the oracle bitwise.
func checkLocal(t *testing.T, dec *Decomp, c topology.Coord, g *Grid, what string) {
	t.Helper()
	off := dec.Offset(c)
	ld := g.Dims()
	for i := 0; i < ld[0]; i++ {
		for j := 0; j < ld[1]; j++ {
			for k := 0; k < ld[2]; k++ {
				want := redistOracle(off[0]+i, off[1]+j, off[2]+k)
				if got := g.At(i, j, k); got != want {
					t.Errorf("%s: coord %v local (%d,%d,%d) = %g, want %g", what, c, i, j, k, got, want)
					return
				}
			}
		}
	}
}

// randProcs draws a process grid with product <= maxRanks that keeps
// every decomposed dimension at least halo thick.
func randProcs(rng *rand.Rand, global topology.Dims, halo, maxRanks int) topology.Dims {
	for {
		p := topology.Dims{1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3)}
		if p.Count() > maxRanks {
			continue
		}
		if _, err := NewDecomp(global, p, halo); err == nil {
			return p
		}
	}
}

// TestRedistributeFuzzRoundTrip: random globals, asymmetric process
// grids and halo widths; A -> B must match the oracle and B -> A must
// reproduce the original bits.
func TestRedistributeFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		global := topology.Dims{4 + rng.Intn(9), 4 + rng.Intn(9), 4 + rng.Intn(9)}
		haloA, haloB := rng.Intn(3), rng.Intn(3)
		procsA := randProcs(rng, global, haloA, 8)
		procsB := randProcs(rng, global, haloB, 8)
		decA := MustDecomp(global, procsA, haloA)
		decB := MustDecomp(global, procsB, haloB)
		ranks := decA.NumProcs()
		if n := decB.NumProcs(); n > ranks {
			ranks = n
		}
		err := mpi.Run(ranks, mpi.ThreadSingle, func(c *mpi.Comm) {
			var a, b, back *Grid
			if c.Rank() < decA.NumProcs() {
				a = fillLocal(decA, decA.Procs.Coord(c.Rank()), haloA)
				back = NewDims(a.Dims(), haloA)
			}
			if c.Rank() < decB.NumProcs() {
				b = NewDims(decB.LocalDims(decB.Procs.Coord(c.Rank())), haloB)
			}
			Redistribute(c, decA, decB, a, b, 100)
			if b != nil {
				checkLocal(t, decB, decB.Procs.Coord(c.Rank()), b, "A->B")
			}
			Redistribute(c, decB, decA, b, back, 101)
			if back != nil {
				if diff := back.MaxAbsDiff(a); diff != 0 {
					t.Errorf("trial %d %v->%v->%v: round trip deviates by %g", trial, procsA, procsB, procsA, diff)
				}
			}
		})
		if err != nil {
			t.Fatalf("trial %d (global %v, %v->%v): %v", trial, global, procsA, procsB, err)
		}
	}
}

// TestRedistPlanReuse runs one plan repeatedly with changing data —
// the multigrid usage pattern — and checks every pass stays exact.
func TestRedistPlanReuse(t *testing.T) {
	global := topology.Dims{12, 10, 8}
	decA := MustDecomp(global, topology.Dims{2, 2, 1}, 2)
	decB := MustDecomp(global, topology.Dims{1, 1, 2}, 2)
	err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
		down := NewRedistPlan(c.Rank(), decA, decB)
		up := NewRedistPlan(c.Rank(), decB, decA)
		a := fillLocal(decA, decA.Procs.Coord(c.Rank()), 2)
		back := NewDims(a.Dims(), 2)
		var b *Grid
		if c.Rank() < decB.NumProcs() {
			b = NewDims(decB.LocalDims(decB.Procs.Coord(c.Rank())), 0)
		}
		for pass := 0; pass < 3; pass++ {
			a.Scale(2) // change the payload between passes
			down.Run(c, a, b, 200)
			up.Run(c, b, back, 201)
			if diff := back.MaxAbsDiff(a); diff != 0 {
				t.Errorf("pass %d: plan round trip deviates by %g", pass, diff)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDecompDoubled pins the transfer layout's defining property: every
// rank's doubled split is exactly twice its coarse split, so
// restriction and prolongation stay rank-local.
func TestDecompDoubled(t *testing.T) {
	coarse := MustDecomp(topology.Dims{10, 6, 5}, topology.Dims{4, 2, 3}, 1)
	fine := coarse.Doubled(0)
	if fine.Global != (topology.Dims{20, 12, 10}) {
		t.Fatalf("doubled global %v", fine.Global)
	}
	for r := 0; r < coarse.NumProcs(); r++ {
		c := coarse.Procs.Coord(r)
		co, cd := coarse.Offset(c), coarse.LocalDims(c)
		fo, fd := fine.Offset(c), fine.LocalDims(c)
		for d := 0; d < 3; d++ {
			if fo[d] != 2*co[d] || fd[d] != 2*cd[d] {
				t.Errorf("coord %v dim %d: fine (%d,%d), coarse (%d,%d)", c, d, fo[d], fd[d], co[d], cd[d])
			}
		}
	}
	// The balanced split of the doubled extent is NOT always aligned —
	// the reason the custom-split layout exists (20 over 4: starts
	// 0,5,10,15; doubled 10-over-4 starts: 0,6,12,16).
	bal := MustDecomp(topology.Dims{20, 12, 10}, topology.Dims{4, 2, 3}, 1)
	if bal.Offset(topology.Coord{1, 0, 0}) == fine.Offset(topology.Coord{1, 0, 0}) {
		t.Errorf("expected misaligned balanced split, got identical offsets")
	}
}
