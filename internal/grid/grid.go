// Package grid implements the real-space grids GPAW computes on: dense
// 3-D arrays of float64 with halo (ghost) margins sized for a
// finite-difference stencil radius, face extraction/injection for halo
// exchange, and domain-decomposition bookkeeping.
//
// A Grid stores an Nx x Ny x Nz interior surrounded by a halo of
// thickness H on every side. Interior indices run 0..N-1 per dimension;
// halo cells are addressed with indices -H..-1 and N..N+H-1. Storage is
// a single flat slice in x-major order so the innermost (z) loop is
// contiguous, matching the C kernels in GPAW.
package grid

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// Grid is a 3-D float64 array with a halo margin. Create grids with New;
// the zero value is not usable.
type Grid struct {
	Nx, Ny, Nz int // interior extents
	H          int // halo thickness on every side

	sx, sy int // strides: index = (i+H)*sx + (j+H)*sy + (k+H)
	data   []float64
}

// New allocates a zero-filled grid with the given interior extents and
// halo thickness. Extents must be positive and the halo non-negative.
func New(nx, ny, nz, halo int) *Grid {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("grid: non-positive extents %dx%dx%d", nx, ny, nz))
	}
	if halo < 0 {
		panic(fmt.Sprintf("grid: negative halo %d", halo))
	}
	tx, ty, tz := nx+2*halo, ny+2*halo, nz+2*halo
	g := &Grid{
		Nx: nx, Ny: ny, Nz: nz, H: halo,
		sy:   tz,
		sx:   ty * tz,
		data: make([]float64, tx*ty*tz),
	}
	return g
}

// NewDims is New taking a topology.Dims extent.
func NewDims(d topology.Dims, halo int) *Grid { return New(d[0], d[1], d[2], halo) }

// Dims returns the interior extents.
func (g *Grid) Dims() topology.Dims { return topology.Dims{g.Nx, g.Ny, g.Nz} }

// Points returns the number of interior points.
func (g *Grid) Points() int { return g.Nx * g.Ny * g.Nz }

// index maps (possibly halo) coordinates to the flat slice offset.
func (g *Grid) index(i, j, k int) int {
	return (i+g.H)*g.sx + (j+g.H)*g.sy + (k + g.H)
}

// At returns the value at (i, j, k). Halo cells are reachable with
// indices in [-H, N+H).
func (g *Grid) At(i, j, k int) float64 { return g.data[g.index(i, j, k)] }

// Set stores v at (i, j, k).
func (g *Grid) Set(i, j, k int, v float64) { g.data[g.index(i, j, k)] = v }

// Data exposes the backing slice (interior plus halos) for kernels that
// need raw access; see Index for the layout.
func (g *Grid) Data() []float64 { return g.data }

// Index exposes the flat index computation for kernel code.
func (g *Grid) Index(i, j, k int) int { return g.index(i, j, k) }

// Strides returns the x and y strides of the flat layout (z stride is 1).
func (g *Grid) Strides() (sx, sy int) { return g.sx, g.sy }

// Fill sets every interior point to v (halos untouched).
func (g *Grid) Fill(v float64) {
	for i := 0; i < g.Nx; i++ {
		for j := 0; j < g.Ny; j++ {
			row := g.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				g.data[row+k] = v
			}
		}
	}
	g.noteTraffic(g.Nx, 1)
}

// FillFunc sets every interior point to f(i, j, k).
func (g *Grid) FillFunc(f func(i, j, k int) float64) {
	for i := 0; i < g.Nx; i++ {
		for j := 0; j < g.Ny; j++ {
			row := g.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				g.data[row+k] = f(i, j, k)
			}
		}
	}
	g.noteTraffic(g.Nx, 1)
}

// Zero clears the whole allocation, halos included.
func (g *Grid) Zero() {
	clear(g.data)
	g.noteTraffic(g.Nx, 1)
}

// Clone returns a deep copy of the grid, halos included.
func (g *Grid) Clone() *Grid {
	out := New(g.Nx, g.Ny, g.Nz, g.H)
	copy(out.data, g.data)
	g.noteTraffic(g.Nx, 2)
	return out
}

// CopyInteriorFrom copies src's interior into g's interior. The interiors
// must have identical extents; halos may differ.
func (g *Grid) CopyInteriorFrom(src *Grid) {
	g.CopyInteriorRange(src, 0, g.Nx)
}

// MaxAbsDiff returns the largest absolute interior difference between two
// grids of identical extents.
func (g *Grid) MaxAbsDiff(o *Grid) float64 {
	if g.Nx != o.Nx || g.Ny != o.Ny || g.Nz != o.Nz {
		panic("grid: MaxAbsDiff extent mismatch")
	}
	max := 0.0
	for i := 0; i < g.Nx; i++ {
		for j := 0; j < g.Ny; j++ {
			a := g.index(i, j, 0)
			b := o.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				d := math.Abs(g.data[a+k] - o.data[b+k])
				if d > max {
					max = d
				}
			}
		}
	}
	return max
}

// Dot returns the interior inner product <g, o>.
func (g *Grid) Dot(o *Grid) float64 { return g.DotRange(o, 0, g.Nx) }

// Norm2 returns the interior L2 norm.
func (g *Grid) Norm2() float64 { return math.Sqrt(g.Dot(g)) }

// Scale multiplies every interior point by a.
func (g *Grid) Scale(a float64) { g.ScaleRange(a, 0, g.Nx) }

// Axpy adds a*x to g's interior: g += a*x.
func (g *Grid) Axpy(a float64, x *Grid) { g.AxpyRange(a, x, 0, g.Nx) }

// InteriorSlice copies the interior into a new flat slice in x-major
// order, for transport between ranks.
func (g *Grid) InteriorSlice() []float64 {
	out := make([]float64, g.Points())
	pos := 0
	for i := 0; i < g.Nx; i++ {
		for j := 0; j < g.Ny; j++ {
			row := g.index(i, j, 0)
			copy(out[pos:pos+g.Nz], g.data[row:row+g.Nz])
			pos += g.Nz
		}
	}
	return out
}

// SetInterior fills the interior from a flat x-major slice produced by
// InteriorSlice on a grid of identical extents.
func (g *Grid) SetInterior(src []float64) {
	if len(src) != g.Points() {
		panic(fmt.Sprintf("grid: SetInterior with %d values for %d points", len(src), g.Points()))
	}
	pos := 0
	for i := 0; i < g.Nx; i++ {
		for j := 0; j < g.Ny; j++ {
			row := g.index(i, j, 0)
			copy(g.data[row:row+g.Nz], src[pos:pos+g.Nz])
			pos += g.Nz
		}
	}
}

// Sum returns the sum over interior points.
func (g *Grid) Sum() float64 { return g.SumRange(0, g.Nx) }
