package grid

import (
	"math"
	"testing"
)

func filledGrid(nx, ny, nz, halo int) *Grid {
	g := New(nx, ny, nz, halo)
	g.FillFunc(func(i, j, k int) float64 {
		return math.Sin(0.3*float64(i)) + 0.5*math.Cos(0.7*float64(j)-0.2*float64(k)) + float64((i+j+k)%5)
	})
	return g
}

// TestPackFaceUnpackHaloRoundTrip verifies the transport identity the
// distributed halo exchange relies on: packing a face slab of one grid
// and unpacking it into the opposite halo of a neighbouring grid must
// install exactly the packed surface values, for every dimension, side
// and thickness.
func TestPackFaceUnpackHaloRoundTrip(t *testing.T) {
	src := filledGrid(6, 5, 7, 2)
	for dim := 0; dim < 3; dim++ {
		for _, side := range []Side{Low, High} {
			for thick := 1; thick <= 2; thick++ {
				buf := make([]float64, src.FaceLen(dim, thick))
				n := src.PackFace(dim, side, thick, buf)
				if n != len(buf) {
					t.Fatalf("dim %d side %v t %d: packed %d, want %d", dim, side, thick, n, len(buf))
				}
				dst := filledGrid(6, 5, 7, 2)
				// The neighbour receives my `side` face into its
				// opposite halo.
				m := dst.UnpackHalo(dim, side.Opposite(), thick, buf)
				if m != n {
					t.Fatalf("dim %d side %v t %d: unpacked %d, want %d", dim, side, thick, m, n)
				}
				// Every halo cell must equal the matching interior
				// surface cell of the sender under a periodic shift.
				ext := []int{src.Nx, src.Ny, src.Nz}[dim]
				for a := 0; a < thick; a++ {
					srcIdx, dstIdx := a, ext+a // Low face -> High halo
					if side == High {
						srcIdx, dstIdx = ext-thick+a, -thick+a
					}
					checkSlabEqual(t, src, dst, dim, srcIdx, dstIdx)
				}
			}
		}
	}
}

// checkSlabEqual compares src's interior plane srcIdx of dimension dim
// with dst's (halo) plane dstIdx over the full extent of the other two
// dimensions.
func checkSlabEqual(t *testing.T, src, dst *Grid, dim, srcIdx, dstIdx int) {
	t.Helper()
	idx := func(g *Grid, a, b, c int) float64 {
		switch dim {
		case 0:
			return g.At(a, b, c)
		case 1:
			return g.At(b, a, c)
		default:
			return g.At(b, c, a)
		}
	}
	var e1, e2 int
	switch dim {
	case 0:
		e1, e2 = src.Ny, src.Nz
	case 1:
		e1, e2 = src.Nx, src.Nz
	default:
		e1, e2 = src.Nx, src.Ny
	}
	for b := 0; b < e1; b++ {
		for c := 0; c < e2; c++ {
			want := idx(src, srcIdx, b, c)
			got := idx(dst, dstIdx, b, c)
			if want != got {
				t.Fatalf("dim %d: halo plane %d (%d,%d) = %g, want %g", dim, dstIdx, b, c, got, want)
			}
		}
	}
}

// TestPackUnpackSelfIdentity: packing a face and unpacking it into the
// same grid's opposite halo is exactly the single-process periodic wrap
// for that face (corners aside).
func TestPackUnpackSelfIdentity(t *testing.T) {
	g := filledGrid(6, 6, 6, 2)
	ref := g.Clone()
	ref.FillHalosPeriodic()
	buf := make([]float64, g.FaceLen(0, 2))
	g.PackFace(0, Low, 2, buf)
	g.UnpackHalo(0, High, 2, buf)
	for a := 0; a < 2; a++ {
		for j := 0; j < g.Ny; j++ {
			for k := 0; k < g.Nz; k++ {
				if got, want := g.At(g.Nx+a, j, k), ref.At(g.Nx+a, j, k); got != want {
					t.Fatalf("halo (%d,%d,%d) = %g, want %g", g.Nx+a, j, k, got, want)
				}
			}
		}
	}
}

func TestAxpyScaleMatchesChain(t *testing.T) {
	g := filledGrid(7, 6, 5, 1)
	x := filledGrid(7, 6, 5, 2)
	x.Scale(0.5)
	want := g.Clone()
	want.Scale(-0.3)
	want.Axpy(1.7, x)
	got := g.Clone()
	got.AxpyScale(1.7, x, -0.3)
	if d := want.MaxAbsDiff(got); d > 1e-15 {
		t.Fatalf("AxpyScale deviates from Scale+Axpy by %g", d)
	}
}

func TestDotNormMatchesSeparate(t *testing.T) {
	g := filledGrid(7, 6, 5, 1)
	o := filledGrid(7, 6, 5, 1)
	o.Scale(-0.8)
	dot, sumsq := g.DotNorm(o)
	if dot != g.Dot(o) {
		t.Fatalf("DotNorm dot %g != Dot %g", dot, g.Dot(o))
	}
	if sumsq != g.Dot(g) {
		t.Fatalf("DotNorm sumsq %g != <g,g> %g", sumsq, g.Dot(g))
	}
}

func TestAxpyDotMatchesChain(t *testing.T) {
	g := filledGrid(7, 6, 5, 1)
	x := filledGrid(7, 6, 5, 1)
	x.Scale(0.25)
	want := g.Clone()
	want.Axpy(-0.6, x)
	wantSq := want.Dot(want)
	got := g.Clone()
	sq := got.AxpyDot(-0.6, x)
	if d := want.MaxAbsDiff(got); d != 0 {
		t.Fatalf("AxpyDot grid deviates by %g", d)
	}
	if math.Abs(sq-wantSq) > 1e-12*math.Abs(wantSq) {
		t.Fatalf("AxpyDot sumsq %g, want %g", sq, wantSq)
	}
}

func TestAddScalarAndAccumSquared(t *testing.T) {
	g := filledGrid(6, 5, 4, 1)
	want := g.Clone()
	want.FillFunc(func(i, j, k int) float64 { return g.At(i, j, k) + 2.5 })
	got := g.Clone()
	got.AddScalar(2.5)
	if d := want.MaxAbsDiff(got); d != 0 {
		t.Fatal("AddScalar deviates from FillFunc chain")
	}

	psi := filledGrid(6, 5, 4, 1)
	want = g.Clone()
	want.FillFunc(func(i, j, k int) float64 {
		v := psi.At(i, j, k)
		return g.At(i, j, k) + 1.5*v*v
	})
	got = g.Clone()
	got.AccumSquared(1.5, psi)
	if d := want.MaxAbsDiff(got); d != 0 {
		t.Fatal("AccumSquared deviates from FillFunc chain")
	}
}

func TestRangePrimitivesCompose(t *testing.T) {
	g := filledGrid(9, 4, 5, 1)
	x := filledGrid(9, 4, 5, 1)
	x.Scale(2)
	want := g.Clone()
	want.Axpy(0.4, x)
	got := g.Clone()
	got.AxpyRange(0.4, x, 0, 3)
	got.AxpyRange(0.4, x, 3, 7)
	got.AxpyRange(0.4, x, 7, 9)
	if d := want.MaxAbsDiff(got); d != 0 {
		t.Fatal("AxpyRange pieces disagree with whole Axpy")
	}
	if s := g.SumRange(0, 4) + g.SumRange(4, 9); math.Abs(s-g.Sum()) > 1e-12*math.Abs(g.Sum()) {
		t.Fatalf("SumRange pieces %g far from Sum %g", s, g.Sum())
	}
}

func TestTrafficCounter(t *testing.T) {
	g := New(4, 4, 4, 1)
	x := New(4, 4, 4, 1)
	pts := int64(g.Points())
	ResetTraffic()
	g.Fill(1)
	if got := TrafficPoints(); got != pts {
		t.Fatalf("Fill traffic = %d, want %d", got, pts)
	}
	ResetTraffic()
	g.Axpy(2, x)
	if got := TrafficPoints(); got != 3*pts {
		t.Fatalf("Axpy traffic = %d, want %d", got, 3*pts)
	}
	ResetTraffic()
	g.AxpyScale(1, x, 2)
	if got := TrafficPoints(); got != 3*pts {
		t.Fatalf("AxpyScale traffic = %d, want %d", got, 3*pts)
	}
	ResetTraffic()
	_ = g.Dot(x)
	if got := TrafficPoints(); got != 2*pts {
		t.Fatalf("Dot traffic = %d, want %d", got, 2*pts)
	}
	ResetTraffic()
}
