package grid

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/topology"
)

// Degenerate redistribution plans — the shapes the fault-recovery path
// produces when a world shrinks to very few survivors: identity moves,
// everyone-parked-but-one concentrations, and plans where most rank
// pairs share no box at all.

// TestRedistIdentity1to1: a 1 -> 1 plan is pure self copy — no
// messages — and the round trip is exact.
func TestRedistIdentity1to1(t *testing.T) {
	global := topology.Dims{7, 5, 9}
	dec := MustDecomp(global, topology.Dims{1, 1, 1}, 1)
	p := NewRedistPlan(0, dec, dec)
	if len(p.sends) != 0 || len(p.recvs) != 0 {
		t.Fatalf("identity plan has %d sends, %d recvs; want 0, 0", len(p.sends), len(p.recvs))
	}
	if p.self == nil {
		t.Fatal("identity plan missing the self copy")
	}
	err := mpi.Run(1, mpi.ThreadSingle, func(c *mpi.Comm) {
		a := fillLocal(dec, topology.Coord{0, 0, 0}, 1)
		b := NewDims(dec.LocalDims(topology.Coord{0, 0, 0}), 1)
		p.Run(c, a, b, 300)
		if diff := b.MaxAbsDiff(a); diff != 0 {
			t.Errorf("identity redistribution deviates by %g", diff)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRedistAllParkedButOne: (2,2,2) -> (1,1,1) concentrates the whole
// field on rank 0 while seven ranks only send; the reverse fans it back
// out bitwise.
func TestRedistAllParkedButOne(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	decA := MustDecomp(global, topology.Dims{2, 2, 2}, 2)
	decB := MustDecomp(global, topology.Dims{1, 1, 1}, 2)
	for r := 1; r < 8; r++ {
		p := NewRedistPlan(r, decA, decB)
		if len(p.recvs) != 0 || p.self != nil || len(p.sends) != 1 {
			t.Fatalf("rank %d: %d sends, %d recvs, self=%v; want a single send",
				r, len(p.sends), len(p.recvs), p.self != nil)
		}
	}
	err := mpi.Run(8, mpi.ThreadSingle, func(c *mpi.Comm) {
		a := fillLocal(decA, decA.Procs.Coord(c.Rank()), 2)
		back := NewDims(a.Dims(), 2)
		var b *Grid
		if c.Rank() == 0 {
			b = NewDims(global, 0)
		}
		Redistribute(c, decA, decB, a, b, 301)
		if c.Rank() == 0 {
			checkLocal(t, decB, topology.Coord{0, 0, 0}, b, "concentrate")
		}
		Redistribute(c, decB, decA, b, back, 302)
		if diff := back.MaxAbsDiff(a); diff != 0 {
			t.Errorf("rank %d: fan-out round trip deviates by %g", c.Rank(), diff)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRedistEmptyIntersections: moving between perpendicular
// single-axis splits, most rank pairs still intersect — but between a
// 4-way and a 2-way split of the SAME axis, half the pairs share
// nothing. The plans must simply omit those pairs.
func TestRedistEmptyIntersections(t *testing.T) {
	global := topology.Dims{8, 4, 4}
	decA := MustDecomp(global, topology.Dims{4, 1, 1}, 1)
	decB := MustDecomp(global, topology.Dims{2, 1, 1}, 1)
	// Rank 0's src box [0,2) meets dst box 0 [0,4) only; rank 3's box
	// [6,8) meets dst box 1 [4,8) only.
	p0 := NewRedistPlan(0, decA, decB)
	if len(p0.sends) != 0 || p0.self == nil {
		t.Errorf("rank 0: %d sends, self=%v; want pure self overlap", len(p0.sends), p0.self != nil)
	}
	p3 := NewRedistPlan(3, decA, decB)
	if len(p3.sends) != 1 || p3.sends[0].peer != 1 || p3.self != nil {
		t.Errorf("rank 3: wants exactly one send to rank 1, got %+v self=%v", p3.sends, p3.self != nil)
	}
	err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
		a := fillLocal(decA, decA.Procs.Coord(c.Rank()), 1)
		var b *Grid
		if c.Rank() < decB.NumProcs() {
			b = NewDims(decB.LocalDims(decB.Procs.Coord(c.Rank())), 1)
		}
		Redistribute(c, decA, decB, a, b, 303)
		if b != nil {
			checkLocal(t, decB, decB.Procs.Coord(c.Rank()), b, "same-axis shrink")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIntersectBox pins the box-overlap primitive, in particular that
// touching boxes (sharing only a face) do NOT intersect.
func TestIntersectBox(t *testing.T) {
	for _, tc := range []struct {
		aLo   topology.Coord
		aDim  topology.Dims
		bLo   topology.Coord
		bDim  topology.Dims
		ok    bool
		lo    topology.Coord
		dims  topology.Dims
		label string
	}{
		{topology.Coord{0, 0, 0}, topology.Dims{4, 4, 4}, topology.Coord{2, 2, 2}, topology.Dims{4, 4, 4},
			true, topology.Coord{2, 2, 2}, topology.Dims{2, 2, 2}, "overlap"},
		{topology.Coord{0, 0, 0}, topology.Dims{4, 4, 4}, topology.Coord{4, 0, 0}, topology.Dims{4, 4, 4},
			false, topology.Coord{}, topology.Dims{}, "touching faces"},
		{topology.Coord{0, 0, 0}, topology.Dims{8, 8, 8}, topology.Coord{3, 3, 3}, topology.Dims{2, 2, 2},
			true, topology.Coord{3, 3, 3}, topology.Dims{2, 2, 2}, "containment"},
		{topology.Coord{0, 0, 0}, topology.Dims{2, 2, 2}, topology.Coord{5, 5, 5}, topology.Dims{2, 2, 2},
			false, topology.Coord{}, topology.Dims{}, "disjoint"},
		{topology.Coord{1, 1, 1}, topology.Dims{3, 3, 3}, topology.Coord{1, 1, 1}, topology.Dims{3, 3, 3},
			true, topology.Coord{1, 1, 1}, topology.Dims{3, 3, 3}, "identical"},
	} {
		lo, dims, ok := IntersectBox(tc.aLo, tc.aDim, tc.bLo, tc.bDim)
		if ok != tc.ok || (ok && (lo != tc.lo || dims != tc.dims)) {
			t.Errorf("%s: IntersectBox = (%v, %v, %v), want (%v, %v, %v)",
				tc.label, lo, dims, ok, tc.lo, tc.dims, tc.ok)
		}
	}
}

// FuzzRedistributeRoundTrip drives random (global, procsA, procsB,
// halo) tuples through the A -> B -> A round trip; the seed corpus in
// testdata/fuzz pins the degenerate shapes above plus asymmetric mixes.
func FuzzRedistributeRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // 4^3, 1x1x1 -> 1x1x1
	f.Add([]byte{4, 4, 4, 1, 1, 1, 0, 0, 0, 1}) // 8^3, 2x2x2 -> 1x1x1
	f.Add([]byte{4, 0, 0, 3, 0, 0, 1, 0, 0, 0}) // same-axis 4-way -> 2-way
	f.Add([]byte{5, 3, 8, 0, 1, 2, 2, 0, 1, 2}) // asymmetric mix
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 10 {
			return
		}
		global := topology.Dims{4 + int(data[0])%9, 4 + int(data[1])%9, 4 + int(data[2])%9}
		procsA := topology.Dims{1 + int(data[3])%3, 1 + int(data[4])%3, 1 + int(data[5])%3}
		procsB := topology.Dims{1 + int(data[6])%3, 1 + int(data[7])%3, 1 + int(data[8])%3}
		halo := int(data[9]) % 3
		decA, errA := NewDecomp(global, procsA, halo)
		decB, errB := NewDecomp(global, procsB, halo)
		if errA != nil || errB != nil {
			return
		}
		ranks := max(decA.NumProcs(), decB.NumProcs())
		err := mpi.Run(ranks, mpi.ThreadSingle, func(c *mpi.Comm) {
			var a, b, back *Grid
			if c.Rank() < decA.NumProcs() {
				a = fillLocal(decA, decA.Procs.Coord(c.Rank()), halo)
				back = NewDims(a.Dims(), halo)
			}
			if c.Rank() < decB.NumProcs() {
				b = NewDims(decB.LocalDims(decB.Procs.Coord(c.Rank())), halo)
			}
			Redistribute(c, decA, decB, a, b, 304)
			if b != nil {
				checkLocal(t, decB, decB.Procs.Coord(c.Rank()), b, "fuzz A->B")
			}
			Redistribute(c, decB, decA, b, back, 305)
			if back != nil {
				if diff := back.MaxAbsDiff(a); diff != 0 {
					t.Errorf("%v->%v->%v (global %v, halo %d): round trip deviates by %g",
						procsA, procsB, procsA, global, halo, diff)
				}
			}
		})
		if err != nil {
			t.Fatalf("global %v %v->%v halo %d: %v", global, procsA, procsB, halo, err)
		}
	})
}
