package grid

import (
	"fmt"

	"repro/internal/detsum"
)

// Fused and range-based BLAS-1 primitives. The solvers in internal/gpaw
// are memory-bandwidth-bound: chains like r.Scale(-1); r.Axpy(1, b);
// r.Norm2() stream the same array from DRAM three times. The fused
// variants here perform such chains in a single sweep, and every
// primitive has a plane-range form ([i0, i1) over the x dimension) so
// the worker pool in internal/stencil can split one grid's sweep across
// threads with deterministic, disjoint writes.
//
// Reductions accumulate into detsum.Acc: each element's contribution is
// rounded once and then summed exactly, so a reduction's value depends
// only on the set of elements it covers — never on how the sweep is
// partitioned across plane ranges, pool workers, or MPI ranks. This is
// the contract that lets the distributed solvers in internal/gpaw be
// bit-identical to the serial ones. Every reduction has an Acc-range
// form feeding a caller-owned accumulator; the plain forms round the
// accumulator to float64.

// checkSame panics unless o has g's interior extents.
func (g *Grid) checkSame(op string, o *Grid) {
	if g.Nx != o.Nx || g.Ny != o.Ny || g.Nz != o.Nz {
		panic(fmt.Sprintf("grid: %s extent mismatch", op))
	}
}

// ScaleRange multiplies interior planes [i0, i1) by a.
func (g *Grid) ScaleRange(a float64, i0, i1 int) {
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			row := g.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				g.data[row+k] *= a
			}
		}
	}
	g.noteTraffic(i1-i0, 2)
}

// AxpyRange adds a*x to interior planes [i0, i1) of g.
func (g *Grid) AxpyRange(a float64, x *Grid, i0, i1 int) {
	g.checkSame("Axpy", x)
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			dst := g.index(i, j, 0)
			src := x.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				g.data[dst+k] += a * x.data[src+k]
			}
		}
	}
	g.noteTraffic(i1-i0, 3)
}

// AxpyScale sets g = s*g + a*x in one sweep, fusing the Scale+Axpy
// chains of the iterative solvers (e.g. CG's search-direction update
// p = r + beta*p is p.AxpyScale(1, r, beta)).
func (g *Grid) AxpyScale(a float64, x *Grid, s float64) {
	g.AxpyScaleRange(a, x, s, 0, g.Nx)
}

// AxpyScaleRange is AxpyScale over interior planes [i0, i1).
func (g *Grid) AxpyScaleRange(a float64, x *Grid, s float64, i0, i1 int) {
	g.checkSame("AxpyScale", x)
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			dst := g.index(i, j, 0)
			src := x.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				g.data[dst+k] = s*g.data[dst+k] + a*x.data[src+k]
			}
		}
	}
	g.noteTraffic(i1-i0, 3)
}

// DotRange returns the inner product <g, o> over interior planes
// [i0, i1). A self-dot (o == g) streams only one array.
func (g *Grid) DotRange(o *Grid, i0, i1 int) float64 {
	var acc detsum.Acc
	g.DotAccRange(o, i0, i1, &acc)
	return acc.Round()
}

// DotAccRange accumulates the inner product <g, o> over interior planes
// [i0, i1) into acc.
func (g *Grid) DotAccRange(o *Grid, i0, i1 int, acc *detsum.Acc) {
	g.checkSame("Dot", o)
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			a := g.index(i, j, 0)
			b := o.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				acc.Add(g.data[a+k] * o.data[b+k])
			}
		}
	}
	g.noteTraffic(i1-i0, dotStreams(g, o))
}

// dotStreams counts the DRAM streams of a dot product: one when the
// operands alias, two otherwise.
func dotStreams(g, o *Grid) int {
	if g == o {
		return 1
	}
	return 2
}

// DotNorm returns <g, o> and <g, g> in a single sweep, fusing the
// Dot+Norm2 pairs solvers use for convergence checks.
func (g *Grid) DotNorm(o *Grid) (dot, sumsq float64) {
	return g.DotNormRange(o, 0, g.Nx)
}

// DotNormRange is DotNorm over interior planes [i0, i1).
func (g *Grid) DotNormRange(o *Grid, i0, i1 int) (dot, sumsq float64) {
	var dotAcc, sqAcc detsum.Acc
	g.DotNormAccRange(o, i0, i1, &dotAcc, &sqAcc)
	return dotAcc.Round(), sqAcc.Round()
}

// DotNormAccRange accumulates <g, o> into dotAcc and <g, g> into sqAcc
// over interior planes [i0, i1) in one sweep.
func (g *Grid) DotNormAccRange(o *Grid, i0, i1 int, dotAcc, sqAcc *detsum.Acc) {
	g.checkSame("DotNorm", o)
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			a := g.index(i, j, 0)
			b := o.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				gv := g.data[a+k]
				dotAcc.Add(gv * o.data[b+k])
				sqAcc.Add(gv * gv)
			}
		}
	}
	g.noteTraffic(i1-i0, dotStreams(g, o))
}

// AxpyDot performs g += a*x and returns the updated <g, g> in the same
// sweep — CG's residual update and convergence check fused into one
// pass.
func (g *Grid) AxpyDot(a float64, x *Grid) float64 {
	return g.AxpyDotRange(a, x, 0, g.Nx)
}

// AxpyDotRange is AxpyDot over interior planes [i0, i1), returning the
// partial sum of squares.
func (g *Grid) AxpyDotRange(a float64, x *Grid, i0, i1 int) float64 {
	var acc detsum.Acc
	g.AxpyDotAccRange(a, x, i0, i1, &acc)
	return acc.Round()
}

// AxpyDotAccRange performs g += a*x over interior planes [i0, i1) and
// accumulates the updated <g, g> into acc in the same sweep.
func (g *Grid) AxpyDotAccRange(a float64, x *Grid, i0, i1 int, acc *detsum.Acc) {
	g.checkSame("AxpyDot", x)
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			dst := g.index(i, j, 0)
			src := x.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				v := g.data[dst+k] + a*x.data[src+k]
				g.data[dst+k] = v
				acc.Add(v * v)
			}
		}
	}
	g.noteTraffic(i1-i0, 3)
}

// SumRange returns the sum over interior planes [i0, i1).
func (g *Grid) SumRange(i0, i1 int) float64 {
	var acc detsum.Acc
	g.SumAccRange(i0, i1, &acc)
	return acc.Round()
}

// SumAccRange accumulates the sum over interior planes [i0, i1) into acc.
func (g *Grid) SumAccRange(i0, i1 int, acc *detsum.Acc) {
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			row := g.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				acc.Add(g.data[row+k])
			}
		}
	}
	g.noteTraffic(i1-i0, 1)
}

// AddScalar adds v to every interior point (one read-modify-write
// sweep; with Sum it replaces the FillFunc-based mean removal of the
// periodic Poisson solvers).
func (g *Grid) AddScalar(v float64) { g.AddScalarRange(v, 0, g.Nx) }

// AddScalarRange is AddScalar over interior planes [i0, i1).
func (g *Grid) AddScalarRange(v float64, i0, i1 int) {
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			row := g.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				g.data[row+k] += v
			}
		}
	}
	g.noteTraffic(i1-i0, 2)
}

// AccumSquared adds a*x*x pointwise to g — the density accumulation
// n += occ*|psi|^2 of the SCF loop in one sweep.
func (g *Grid) AccumSquared(a float64, x *Grid) {
	g.AccumSquaredRange(a, x, 0, g.Nx)
}

// AccumSquaredRange is AccumSquared over interior planes [i0, i1).
func (g *Grid) AccumSquaredRange(a float64, x *Grid, i0, i1 int) {
	g.checkSame("AccumSquared", x)
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			dst := g.index(i, j, 0)
			src := x.index(i, j, 0)
			for k := 0; k < g.Nz; k++ {
				v := x.data[src+k]
				g.data[dst+k] += a * v * v
			}
		}
	}
	g.noteTraffic(i1-i0, 3)
}

// CopyInteriorRange copies interior planes [i0, i1) of src into g.
func (g *Grid) CopyInteriorRange(src *Grid, i0, i1 int) {
	g.checkSame("CopyInteriorFrom", src)
	for i := i0; i < i1; i++ {
		for j := 0; j < g.Ny; j++ {
			dst := g.index(i, j, 0)
			s := src.index(i, j, 0)
			copy(g.data[dst:dst+g.Nz], src.data[s:s+g.Nz])
		}
	}
	g.noteTraffic(i1-i0, 2)
}
