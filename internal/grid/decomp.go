package grid

import (
	"fmt"

	"repro/internal/topology"
)

// Decomp describes the domain decomposition of a global real-space grid
// over a 3-D process grid. Every real-space grid in a GPAW simulation is
// decomposed identically: each process owns the same sub-domain of every
// grid (required by, e.g., wave-function orthogonalization).
type Decomp struct {
	Global topology.Dims // global grid extents
	Procs  topology.Dims // process grid extents
	Halo   int           // halo thickness (stencil radius)
}

// NewDecomp builds a decomposition, validating that every process gets a
// sub-domain at least as thick as the halo in each decomposed dimension
// (a thinner sub-domain would need surface points from beyond its direct
// neighbours, which GPAW's one-neighbour exchange cannot supply).
func NewDecomp(global, procs topology.Dims, halo int) (*Decomp, error) {
	for d := 0; d < 3; d++ {
		if procs[d] < 1 {
			return nil, fmt.Errorf("grid: process grid %v has non-positive dimension", procs)
		}
		if global[d] < procs[d] {
			return nil, fmt.Errorf("grid: cannot split extent %d over %d processes", global[d], procs[d])
		}
		minLocal := global[d] / procs[d] // smallest sub-extent after Split
		if procs[d] > 1 && minLocal < halo {
			return nil, fmt.Errorf("grid: sub-domain extent %d thinner than halo %d in dim %d", minLocal, halo, d)
		}
	}
	return &Decomp{Global: global, Procs: procs, Halo: halo}, nil
}

// NewDecompOrFallback is NewDecomp with a redistribute-or-serialize
// fallback: when the requested process grid would produce sub-domains
// thinner than the halo — the situation multigrid coarsening creates on
// every level halving — the process grid is shrunk per dimension to the
// largest feasible extent (down to 1, i.e. fully serialized in that
// dimension) instead of erroring. It returns the decomposition, the
// process grid actually used, and whether a fallback was applied.
// Ranks outside the fallback grid own no points and must be idled or
// redistributed by the caller.
func NewDecompOrFallback(global, procs topology.Dims, halo int) (*Decomp, topology.Dims, bool, error) {
	fell := false
	used := procs
	for d := 0; d < 3; d++ {
		if used[d] < 1 {
			return nil, procs, false, fmt.Errorf("grid: process grid %v has non-positive dimension", procs)
		}
		maxP := global[d]
		if halo > 0 {
			maxP = global[d] / halo
		}
		if maxP < 1 {
			maxP = 1
		}
		if used[d] > maxP {
			used[d] = maxP
			fell = true
		}
	}
	dec, err := NewDecomp(global, used, halo)
	if err != nil {
		return nil, procs, fell, err
	}
	return dec, used, fell, nil
}

// MustDecomp is NewDecomp panicking on error, for tests and examples.
func MustDecomp(global, procs topology.Dims, halo int) *Decomp {
	d, err := NewDecomp(global, procs, halo)
	if err != nil {
		panic(err)
	}
	return d
}

// NumProcs returns the number of processes in the decomposition.
func (d *Decomp) NumProcs() int { return d.Procs.Count() }

// LocalDims returns the sub-domain extents of the process at coordinate c.
func (d *Decomp) LocalDims(c topology.Coord) topology.Dims {
	return topology.SubdomainSize(d.Global, d.Procs, c)
}

// Offset returns the global offset of the sub-domain at coordinate c.
func (d *Decomp) Offset(c topology.Coord) topology.Coord {
	return topology.SubdomainOffset(d.Global, d.Procs, c)
}

// NewLocal allocates the local grid (with halo) for the process at c.
func (d *Decomp) NewLocal(c topology.Coord) *Grid {
	return NewDims(d.LocalDims(c), d.Halo)
}

// Scatter copies the sub-domain belonging to coordinate c out of a global
// grid (halo 0 or more) into a freshly allocated local grid.
func (d *Decomp) Scatter(global *Grid, c topology.Coord) *Grid {
	if global.Dims() != d.Global {
		panic("grid: Scatter global extent mismatch")
	}
	local := d.NewLocal(c)
	off := d.Offset(c)
	ld := local.Dims()
	for i := 0; i < ld[0]; i++ {
		for j := 0; j < ld[1]; j++ {
			for k := 0; k < ld[2]; k++ {
				local.Set(i, j, k, global.At(off[0]+i, off[1]+j, off[2]+k))
			}
		}
	}
	return local
}

// Gather copies a local grid's interior back into the right region of a
// global grid.
func (d *Decomp) Gather(global *Grid, c topology.Coord, local *Grid) {
	if global.Dims() != d.Global {
		panic("grid: Gather global extent mismatch")
	}
	off := d.Offset(c)
	ld := local.Dims()
	if ld != d.LocalDims(c) {
		panic("grid: Gather local extent mismatch")
	}
	for i := 0; i < ld[0]; i++ {
		for j := 0; j < ld[1]; j++ {
			for k := 0; k < ld[2]; k++ {
				global.Set(off[0]+i, off[1]+j, off[2]+k, local.At(i, j, k))
			}
		}
	}
}

// Set is an ordered collection of same-shape grids: the wave-functions of
// a simulation. GPAW systems typically hold thousands of these.
type Set struct {
	Grids []*Grid
}

// NewSet allocates n zero grids of the given extents and halo.
func NewSet(n int, dims topology.Dims, halo int) *Set {
	s := &Set{Grids: make([]*Grid, n)}
	for i := range s.Grids {
		s.Grids[i] = NewDims(dims, halo)
	}
	return s
}

// Len returns the number of grids.
func (s *Set) Len() int { return len(s.Grids) }

// Clone deep-copies the set.
func (s *Set) Clone() *Set {
	out := &Set{Grids: make([]*Grid, len(s.Grids))}
	for i, g := range s.Grids {
		out.Grids[i] = g.Clone()
	}
	return out
}

// FillSeparable fills grid i with f(i, x, y, z) for deterministic,
// per-grid-distinct test data.
func (s *Set) FillSeparable(f func(g, i, j, k int) float64) {
	for gi, g := range s.Grids {
		gi := gi
		g.FillFunc(func(i, j, k int) float64 { return f(gi, i, j, k) })
	}
}

// MaxAbsDiff returns the largest interior difference across all grids of
// two same-shaped sets.
func (s *Set) MaxAbsDiff(o *Set) float64 {
	if len(s.Grids) != len(o.Grids) {
		panic("grid: set length mismatch")
	}
	max := 0.0
	for i := range s.Grids {
		if d := s.Grids[i].MaxAbsDiff(o.Grids[i]); d > max {
			max = d
		}
	}
	return max
}
