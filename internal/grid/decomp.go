package grid

import (
	"fmt"

	"repro/internal/topology"
)

// Decomp describes the domain decomposition of a global real-space grid
// over a 3-D process grid. Every real-space grid in a GPAW simulation is
// decomposed identically: each process owns the same sub-domain of every
// grid (required by, e.g., wave-function orthogonalization).
type Decomp struct {
	Global topology.Dims // global grid extents
	Procs  topology.Dims // process grid extents
	Halo   int           // halo thickness (stencil radius)

	// starts[d], when non-nil, holds Procs[d]+1 custom split boundaries
	// for dimension d (starts[d][r] .. starts[d][r+1] is rank-coordinate
	// r's range). Nil dimensions use the balanced topology.Split. Custom
	// splits exist for layouts derived from other layouts — Doubled —
	// where the balanced split of the refined extent would not align
	// with the coarse one.
	starts [3][]int
}

// split returns the start offset and length of coordinate i along
// dimension d, honouring custom split boundaries when present.
func (dc *Decomp) split(d, i int) (start, length int) {
	if s := dc.starts[d]; s != nil {
		return s[i], s[i+1] - s[i]
	}
	return topology.Split(dc.Global[d], dc.Procs[d], i)
}

// NewDecomp builds a decomposition, validating that every process gets a
// sub-domain at least as thick as the halo in each decomposed dimension
// (a thinner sub-domain would need surface points from beyond its direct
// neighbours, which GPAW's one-neighbour exchange cannot supply).
func NewDecomp(global, procs topology.Dims, halo int) (*Decomp, error) {
	for d := 0; d < 3; d++ {
		if procs[d] < 1 {
			return nil, fmt.Errorf("grid: process grid %v has non-positive dimension", procs)
		}
		if global[d] < procs[d] {
			return nil, fmt.Errorf("grid: cannot split extent %d over %d processes", global[d], procs[d])
		}
		minLocal := global[d] / procs[d] // smallest sub-extent after Split
		if procs[d] > 1 && minLocal < halo {
			return nil, fmt.Errorf("grid: sub-domain extent %d thinner than halo %d in dim %d", minLocal, halo, d)
		}
	}
	return &Decomp{Global: global, Procs: procs, Halo: halo}, nil
}

// NewDecompOrFallback is NewDecomp with a shrink fallback: when the
// requested process grid would produce sub-domains thinner than the
// halo — the situation multigrid coarsening creates on every level
// halving — the process grid is shrunk per dimension to the largest
// feasible extent (down to 1 in that dimension) instead of erroring.
// It returns the decomposition, the process grid actually used, and
// whether a fallback was applied. Ranks outside the fallback grid own
// no points; the multigrid redistributes the level onto the surviving
// ranks' sub-communicator (Redistribute) and parks the rest.
func NewDecompOrFallback(global, procs topology.Dims, halo int) (*Decomp, topology.Dims, bool, error) {
	fell := false
	used := procs
	for d := 0; d < 3; d++ {
		if used[d] < 1 {
			return nil, procs, false, fmt.Errorf("grid: process grid %v has non-positive dimension", procs)
		}
		maxP := global[d]
		if halo > 0 {
			maxP = global[d] / halo
		}
		if maxP < 1 {
			maxP = 1
		}
		if used[d] > maxP {
			used[d] = maxP
			fell = true
		}
	}
	dec, err := NewDecomp(global, used, halo)
	if err != nil {
		return nil, procs, fell, err
	}
	return dec, used, fell, nil
}

// MustDecomp is NewDecomp panicking on error, for tests and examples.
func MustDecomp(global, procs topology.Dims, halo int) *Decomp {
	d, err := NewDecomp(global, procs, halo)
	if err != nil {
		panic(err)
	}
	return d
}

// NumProcs returns the number of processes in the decomposition.
func (d *Decomp) NumProcs() int { return d.Procs.Count() }

// LocalDims returns the sub-domain extents of the process at coordinate c.
func (d *Decomp) LocalDims(c topology.Coord) topology.Dims {
	var out topology.Dims
	for dim := 0; dim < 3; dim++ {
		_, out[dim] = d.split(dim, c[dim])
	}
	return out
}

// Offset returns the global offset of the sub-domain at coordinate c.
func (d *Decomp) Offset(c topology.Coord) topology.Coord {
	var out topology.Coord
	for dim := 0; dim < 3; dim++ {
		out[dim], _ = d.split(dim, c[dim])
	}
	return out
}

// Doubled returns the decomposition of the twice-refined global grid
// (every extent doubled) over the same process grid, with every rank's
// split exactly twice its split here. In that layout a rank's fine
// sub-domain is precisely the 2x2x2 refinement of its coarse one, so
// full-weighting restriction and prolongation stay rank-local — the
// transfer layout the multigrid level redistribution moves residuals
// into before coarsening onto a shrunken process grid. The result
// carries the given halo (typically 0: it is a data layout, not an
// exchange layout).
func (d *Decomp) Doubled(halo int) *Decomp {
	out := &Decomp{
		Global: topology.Dims{2 * d.Global[0], 2 * d.Global[1], 2 * d.Global[2]},
		Procs:  d.Procs,
		Halo:   halo,
	}
	for dim := 0; dim < 3; dim++ {
		s := make([]int, d.Procs[dim]+1)
		for r := 0; r < d.Procs[dim]; r++ {
			start, _ := d.split(dim, r)
			s[r] = 2 * start
		}
		s[d.Procs[dim]] = out.Global[dim]
		out.starts[dim] = s
	}
	return out
}

// NewLocal allocates the local grid (with halo) for the process at c.
func (d *Decomp) NewLocal(c topology.Coord) *Grid {
	return NewDims(d.LocalDims(c), d.Halo)
}

// Scatter copies the sub-domain belonging to coordinate c out of a global
// grid (halo 0 or more) into a freshly allocated local grid.
func (d *Decomp) Scatter(global *Grid, c topology.Coord) *Grid {
	if global.Dims() != d.Global {
		panic("grid: Scatter global extent mismatch")
	}
	local := d.NewLocal(c)
	off := d.Offset(c)
	ld := local.Dims()
	for i := 0; i < ld[0]; i++ {
		for j := 0; j < ld[1]; j++ {
			for k := 0; k < ld[2]; k++ {
				local.Set(i, j, k, global.At(off[0]+i, off[1]+j, off[2]+k))
			}
		}
	}
	return local
}

// Gather copies a local grid's interior back into the right region of a
// global grid.
func (d *Decomp) Gather(global *Grid, c topology.Coord, local *Grid) {
	if global.Dims() != d.Global {
		panic("grid: Gather global extent mismatch")
	}
	off := d.Offset(c)
	ld := local.Dims()
	if ld != d.LocalDims(c) {
		panic("grid: Gather local extent mismatch")
	}
	for i := 0; i < ld[0]; i++ {
		for j := 0; j < ld[1]; j++ {
			for k := 0; k < ld[2]; k++ {
				global.Set(off[0]+i, off[1]+j, off[2]+k, local.At(i, j, k))
			}
		}
	}
}

// Set is an ordered collection of same-shape grids: the wave-functions of
// a simulation. GPAW systems typically hold thousands of these.
type Set struct {
	Grids []*Grid
}

// NewSet allocates n zero grids of the given extents and halo.
func NewSet(n int, dims topology.Dims, halo int) *Set {
	s := &Set{Grids: make([]*Grid, n)}
	for i := range s.Grids {
		s.Grids[i] = NewDims(dims, halo)
	}
	return s
}

// Len returns the number of grids.
func (s *Set) Len() int { return len(s.Grids) }

// Clone deep-copies the set.
func (s *Set) Clone() *Set {
	out := &Set{Grids: make([]*Grid, len(s.Grids))}
	for i, g := range s.Grids {
		out.Grids[i] = g.Clone()
	}
	return out
}

// FillSeparable fills grid i with f(i, x, y, z) for deterministic,
// per-grid-distinct test data.
func (s *Set) FillSeparable(f func(g, i, j, k int) float64) {
	for gi, g := range s.Grids {
		gi := gi
		g.FillFunc(func(i, j, k int) float64 { return f(gi, i, j, k) })
	}
}

// MaxAbsDiff returns the largest interior difference across all grids of
// two same-shaped sets.
func (s *Set) MaxAbsDiff(o *Set) float64 {
	if len(s.Grids) != len(o.Grids) {
		panic("grid: set length mismatch")
	}
	max := 0.0
	for i := range s.Grids {
		if d := s.Grids[i].MaxAbsDiff(o.Grids[i]); d > max {
			max = d
		}
	}
	return max
}
