package grid

import (
	"fmt"

	"repro/internal/topology"
)

// Redistribution moves a globally decomposed field between two
// decompositions of the same global grid — the data-movement primitive
// behind multigrid level redistribution, where a coarse level leaves
// the solver's process grid for a shrunken one (NewDecompOrFallback
// shapes) and the surviving ranks take over the whole field.
//
// Rank r of the communicator owns sub-domain Procs.Coord(r) of each
// decomposition it belongs to (the row-major Cartesian convention used
// throughout). Ranks beyond a decomposition's process grid simply own
// nothing on that side: a shrink sends their data away, the reverse
// brings it back — the blocking receives are what parks them until the
// smaller grid is done.
//
// Every value is moved by plain copy, so redistribution is exact: a
// round trip A -> B -> A reproduces the original bits.

// Comm is the point-to-point transport Redistribute needs. *mpi.Comm
// satisfies it; the indirection keeps this package free of a runtime
// dependency.
type Comm interface {
	Rank() int
	Send(to, tag int, data []float64)
	Recv(from, tag int, buf []float64) (src, gotTag, n int)
}

// xfer is one message of a redistribution: the global box exchanged
// with one peer, plus its reusable packing buffer.
type xfer struct {
	peer int
	lo   topology.Coord // global lower corner of the box
	dims topology.Dims
	buf  []float64
}

// RedistPlan is the precomputed message schedule moving one rank's data
// from a src-layout grid to a dst-layout grid. The plan — box
// intersections and packing buffers — is computed once and reused every
// run, so steady-state redistribution allocates nothing.
type RedistPlan struct {
	src, dst *Decomp
	rank     int

	srcOff, dstOff topology.Coord
	sends, recvs   []xfer
	self           *xfer // overlap with my own dst sub-domain: direct copy
}

// intersectBox returns the overlap of two boxes given by lower corner
// and extents.
func intersectBox(aLo topology.Coord, aDim topology.Dims, bLo topology.Coord, bDim topology.Dims) (lo topology.Coord, dims topology.Dims, ok bool) {
	for d := 0; d < 3; d++ {
		l := aLo[d]
		if bLo[d] > l {
			l = bLo[d]
		}
		h := aLo[d] + aDim[d]
		if bh := bLo[d] + bDim[d]; bh < h {
			h = bh
		}
		if h <= l {
			return lo, dims, false
		}
		lo[d] = l
		dims[d] = h - l
	}
	return lo, dims, true
}

// IntersectBox returns the overlap of two boxes given by lower corner
// and extents — the same intersection redistribution plans are built
// from, exported for callers that re-tile externally stored sub-domain
// boxes (checkpoint restore).
func IntersectBox(aLo topology.Coord, aDim topology.Dims, bLo topology.Coord, bDim topology.Dims) (lo topology.Coord, dims topology.Dims, ok bool) {
	return intersectBox(aLo, aDim, bLo, bDim)
}

// NewRedistPlan builds the schedule for the given rank. src and dst
// must decompose the same global extents; the communicator the plan
// later runs on must have at least max(src, dst process count) ranks.
func NewRedistPlan(rank int, src, dst *Decomp) *RedistPlan {
	if src.Global != dst.Global {
		panic(fmt.Sprintf("grid: redistribute between globals %v and %v", src.Global, dst.Global))
	}
	p := &RedistPlan{src: src, dst: dst, rank: rank}
	if rank < src.NumProcs() {
		sc := src.Procs.Coord(rank)
		p.srcOff = src.Offset(sc)
		sdim := src.LocalDims(sc)
		for rd := 0; rd < dst.NumProcs(); rd++ {
			dc := dst.Procs.Coord(rd)
			lo, dims, ok := intersectBox(p.srcOff, sdim, dst.Offset(dc), dst.LocalDims(dc))
			if !ok {
				continue
			}
			x := xfer{peer: rd, lo: lo, dims: dims, buf: make([]float64, dims.Count())}
			if rd == rank {
				p.self = &x
				continue
			}
			p.sends = append(p.sends, x)
		}
	}
	if rank < dst.NumProcs() {
		dc := dst.Procs.Coord(rank)
		p.dstOff = dst.Offset(dc)
		ddim := dst.LocalDims(dc)
		for rs := 0; rs < src.NumProcs(); rs++ {
			if rs == rank {
				continue // covered by the direct self copy
			}
			sc := src.Procs.Coord(rs)
			lo, dims, ok := intersectBox(src.Offset(sc), src.LocalDims(sc), p.dstOff, ddim)
			if !ok {
				continue
			}
			p.recvs = append(p.recvs, xfer{peer: rs, lo: lo, dims: dims, buf: make([]float64, dims.Count())})
		}
	}
	return p
}

// copyBox moves the interior region [lo, lo+dims) of the grid (local
// coordinates) to or from buf in x-major order.
func copyBox(g *Grid, lo topology.Coord, dims topology.Dims, buf []float64, pack bool) {
	pos := 0
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			row := g.index(lo[0]+i, lo[1]+j, lo[2])
			if pack {
				copy(buf[pos:pos+dims[2]], g.data[row:row+dims[2]])
			} else {
				copy(g.data[row:row+dims[2]], buf[pos:pos+dims[2]])
			}
			pos += dims[2]
		}
	}
}

// localBox converts a global box corner to coordinates local to the
// sub-domain at offset off.
func localBox(lo, off topology.Coord) topology.Coord {
	return topology.Coord{lo[0] - off[0], lo[1] - off[1], lo[2] - off[2]}
}

// Run executes the plan: srcGrid's interior (this rank's src-layout
// sub-domain, nil when the rank owns none) is moved into dstGrid (the
// dst-layout sub-domain, nil when the rank owns none). All sends are
// eager, then receives complete in peer order, so the exchange cannot
// deadlock; ranks whose only part is receiving block until their data
// arrives. Both endpoints of a communicator must run their shared plans
// in the same order for a given tag (FIFO matching pairs the k-th send
// with the k-th receive).
func (p *RedistPlan) Run(c Comm, srcGrid, dstGrid *Grid, tag int) {
	if p.rank != c.Rank() {
		panic(fmt.Sprintf("grid: redistribution plan for rank %d run on rank %d", p.rank, c.Rank()))
	}
	if p.rank < p.src.NumProcs() && srcGrid == nil {
		panic("grid: redistribute missing source grid")
	}
	if p.rank < p.dst.NumProcs() && dstGrid == nil {
		panic("grid: redistribute missing destination grid")
	}
	for i := range p.sends {
		s := &p.sends[i]
		copyBox(srcGrid, localBox(s.lo, p.srcOff), s.dims, s.buf, true)
		c.Send(s.peer, tag, s.buf)
	}
	if p.self != nil {
		copyBox(srcGrid, localBox(p.self.lo, p.srcOff), p.self.dims, p.self.buf, true)
		copyBox(dstGrid, localBox(p.self.lo, p.dstOff), p.self.dims, p.self.buf, false)
	}
	for i := range p.recvs {
		r := &p.recvs[i]
		c.Recv(r.peer, tag, r.buf)
		copyBox(dstGrid, localBox(r.lo, p.dstOff), r.dims, r.buf, false)
	}
}

// Redistribute is the one-shot form: move srcGrid (decomposed by src)
// into dstGrid (decomposed by dst) over the communicator. Callers that
// redistribute repeatedly should hold a RedistPlan instead and reuse
// its buffers.
func Redistribute(c Comm, src, dst *Decomp, srcGrid, dstGrid *Grid, tag int) {
	NewRedistPlan(c.Rank(), src, dst).Run(c, srcGrid, dstGrid, tag)
}
