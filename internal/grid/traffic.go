package grid

import "sync/atomic"

// The traffic counter tracks main-memory streams: every grid-wide
// operation notes how many full-size arrays it reads or writes from DRAM
// (a "stream"), times the points covered. A plain stencil application is
// 2 streams (read the source, write the destination); an unfused
// residual r = b - op(phi) built from Apply+Scale+Axpy is 2+2+3 = 7
// streams, while the fused kernel is 3. Tests and benchmarks use the
// counter to assert that fused solver iterations move measurably fewer
// bytes than their unfused chains; multiply TrafficPoints by 8 for
// bytes.
var trafficPoints atomic.Int64

// NoteTraffic records a kernel sweep touching the given number of grid
// points with the given number of memory streams. It is exported for
// kernel packages (internal/stencil) that implement their own sweeps
// over grid storage.
func NoteTraffic(points, streams int) {
	trafficPoints.Add(int64(points) * int64(streams))
}

// noteTraffic records a sweep over n interior planes of g.
func (g *Grid) noteTraffic(planes, streams int) {
	NoteTraffic(planes*g.Ny*g.Nz, streams)
}

// ResetTraffic zeroes the global traffic counter.
func ResetTraffic() { trafficPoints.Store(0) }

// TrafficPoints returns point-streams accumulated since the last
// ResetTraffic: the sum over all grid sweeps of (points covered) x
// (memory streams). One float64 stream is 8 bytes per point.
func TrafficPoints() int64 { return trafficPoints.Load() }
