package gpaw

import "fmt"

// errNotConverged is the uniform non-convergence error of the solver
// stack: every iterative solver — serial or distributed — reports its
// method name and the final relative residual it reached, so callers
// can always see how far a failed solve got without re-deriving it.
// The distributed solvers produce bit-identical residuals to the serial
// ones, so the error strings match across decompositions too.
func errNotConverged(method string, rel float64) error {
	return fmt.Errorf("gpaw: %s did not converge (relative residual %g)", method, rel)
}

// errEigenNotConverged is the eigensolver variant: its convergence
// metric is the largest eigenvalue change of the last iteration, which
// it reports in place of a residual.
func errEigenNotConverged(iters int, maxDelta float64) error {
	return fmt.Errorf("gpaw: eigensolver did not converge in %d iterations (max eigenvalue change %g)", iters, maxDelta)
}
