package gpaw

import (
	"testing"
	"time"

	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// Transport differential: the calibrated network model only reorders
// time, never data or matching order, so every solver result must be
// bit-identical with the model on or off — the guarantee that lets the
// scaling benchmarks claim their virtual timings describe the very
// computation the eager tests verified.

// cgUnder runs the distributed CG solve at p ranks over procs, with or
// without the calibrated model, and returns (iters, residual, gathered
// field on rank 0, modeled makespan).
func cgUnder(t *testing.T, p int, procs topology.Dims, a core.Approach, calibrated, noOverlap bool) (int, float64, *grid.Grid, time.Duration) {
	t.Helper()
	global := topology.Dims{16, 16, 16}
	rhs := poissonRHS(global)
	cfg := DistConfig{
		Global: global, Procs: procs, Halo: 2, BC: Periodic,
		Approach: a, Threads: threadsFor(a), Batch: 2,
		NoOverlap: noOverlap, NetCompute: calibrated,
	}
	var it int
	var res float64
	var g *grid.Grid
	body := func(c *mpi.Comm) {
		d, err := NewDist(c, cfg)
		if err != nil {
			panic(err)
		}
		defer d.Close()
		dps := NewDistPoisson(d, 0.35)
		phi := d.NewLocalGrid()
		it0, res0, err := dps.SolveCG(phi, d.ScatterReplicated(rhs))
		if err != nil {
			panic(err)
		}
		gg := d.GatherGlobal(phi)
		if c.Rank() == 0 {
			it, res, g = it0, res0, gg
		}
	}
	var mk time.Duration
	var err error
	if calibrated {
		m := bgpsim.NetModelFor(p)
		m.Coords = NetCoords(cfg, m.Net)
		m.NoComputeWall = true
		mk, err = mpi.RunModeled(p, modeFor(a), m, body)
	} else {
		err = mpi.Run(p, modeFor(a), body)
	}
	if err != nil {
		t.Fatalf("p=%d procs %v approach %v calibrated=%v: %v", p, procs, a, calibrated, err)
	}
	return it, res, g, mk
}

// TestEagerVsCalibratedBitIdentical sweeps rank counts x all four
// approaches and asserts the CG solution, iteration count and residual
// are bitwise unchanged by arming the calibrated transport model.
func TestEagerVsCalibratedBitIdentical(t *testing.T) {
	for _, p := range rankCounts(t) {
		procs := layoutsFor(p)[len(layoutsFor(p))-1]
		for _, a := range core.Approaches {
			eIt, eRes, eG, _ := cgUnder(t, p, procs, a, false, false)
			cIt, cRes, cG, mk := cgUnder(t, p, procs, a, true, false)
			if eIt != cIt || eRes != cRes {
				t.Errorf("p=%d %v approach %v: eager (it,res)=(%d,%.17g), calibrated (%d,%.17g)",
					p, procs, a, eIt, eRes, cIt, cRes)
			}
			if diff := eG.MaxAbsDiff(cG); diff != 0 {
				t.Errorf("p=%d %v approach %v: calibrated solution deviates by %g", p, procs, a, diff)
			}
			if p > 1 && mk <= 0 {
				t.Errorf("p=%d %v approach %v: calibrated run reports no virtual time", p, procs, a)
			}
		}
	}
}

// TestWavefrontSORBitIdenticalUnderModel covers the pipelined wavefront
// path (mpi.Pipe lanes) under the model.
func TestWavefrontSORBitIdenticalUnderModel(t *testing.T) {
	global := topology.Dims{16, 16, 16}
	rhs := poissonRHS(global)
	for _, p := range rankCounts(t) {
		procs := layoutsFor(p)[0]
		if !feasible(global, procs, 2) {
			continue
		}
		run := func(calibrated bool) (int, float64, *grid.Grid) {
			cfg := DistConfig{Global: global, Procs: procs, Halo: 2, BC: Dirichlet,
				Approach: core.FlatOptimized, Threads: 1, Batch: 2, NetCompute: calibrated}
			var it int
			var res float64
			var g *grid.Grid
			body := func(c *mpi.Comm) {
				d, err := NewDist(c, cfg)
				if err != nil {
					panic(err)
				}
				defer d.Close()
				dps := NewDistPoisson(d, 0.4)
				dps.Tol = 1e-6
				phi := d.NewLocalGrid()
				it0, res0, err := dps.SolveSOR(phi, d.ScatterReplicated(rhs), 1.6)
				if err != nil {
					panic(err)
				}
				gg := d.GatherGlobal(phi)
				if c.Rank() == 0 {
					it, res, g = it0, res0, gg
				}
			}
			var err error
			if calibrated {
				m := bgpsim.NetModelFor(p)
				m.Coords = NetCoords(cfg, m.Net)
				m.NoComputeWall = true
				_, err = mpi.RunModeled(p, mpi.ThreadSingle, m, body)
			} else {
				err = mpi.Run(p, mpi.ThreadSingle, body)
			}
			if err != nil {
				t.Fatalf("p=%d calibrated=%v: %v", p, calibrated, err)
			}
			return it, res, g
		}
		eIt, eRes, eG := run(false)
		cIt, cRes, cG := run(true)
		if eIt != cIt || eRes != cRes {
			t.Errorf("p=%d: SOR eager (it,res)=(%d,%.17g), calibrated (%d,%.17g)", p, eIt, eRes, cIt, cRes)
		}
		if diff := eG.MaxAbsDiff(cG); diff != 0 {
			t.Errorf("p=%d: SOR calibrated solution deviates by %g", p, diff)
		}
	}
}

// TestCalibratedOverlapBeatsSerialized: under modeled latency the
// split-phase protocol's virtual makespan must be strictly below the
// forced-serialized baseline's — the paper's overlap win, now visible
// because delivery finally costs something. Deterministic: the model
// runs with NoComputeWall, so both makespans are exact.
func TestCalibratedOverlapBeatsSerialized(t *testing.T) {
	p := 8
	procs := topology.Dims{2, 2, 2}
	_, _, _, overlap := cgUnder(t, p, procs, core.FlatOptimized, true, false)
	_, _, _, serialized := cgUnder(t, p, procs, core.FlatOptimized, true, true)
	if overlap >= serialized {
		t.Errorf("overlapped virtual makespan %v not below serialized %v", overlap, serialized)
	}
	t.Logf("virtual makespan: overlap %v, serialized %v, speedup %.3fx",
		overlap, serialized, float64(serialized)/float64(overlap))
}

// TestMappingSensitivity: at 64 simulated ranks the same exchange costs
// more under a shuffled placement than under the Cartesian embedding —
// the mapping experiment of the paper's section V, reproduced on the
// live transport.
func TestMappingSensitivity(t *testing.T) {
	const p = 64
	global := topology.Dims{32, 32, 32}
	procs := topology.Dims{4, 4, 4}
	rhs := poissonRHS(global)
	run := func(mapping topology.Mapping) time.Duration {
		cfg := DistConfig{Global: global, Procs: procs, Halo: 2, BC: Periodic,
			Approach: core.FlatOptimized, Threads: 1, Batch: 2,
			Map: mapping, NetCompute: true}
		m := bgpsim.NetModelFor(p)
		m.Coords = NetCoords(cfg, m.Net)
		m.NoComputeWall = true
		mk, err := mpi.RunModeled(p, mpi.ThreadSingle, m, func(c *mpi.Comm) {
			d, err := NewDist(c, cfg)
			if err != nil {
				panic(err)
			}
			defer d.Close()
			dps := NewDistPoisson(d, 0.35)
			phi := d.NewLocalGrid()
			if _, _, err := dps.SolveCG(phi, d.ScatterReplicated(rhs)); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatalf("mapping %v: %v", mapping, err)
		}
		return mk
	}
	cart := run(topology.MapCart)
	shuffle := run(topology.MapShuffle)
	if cart >= shuffle {
		t.Errorf("Cartesian mapping (%v) not cheaper than shuffled (%v) at %d ranks", cart, shuffle, p)
	}
	t.Logf("64-rank CG virtual makespan: cart %v, shuffle %v (%.2fx)", cart, shuffle,
		float64(shuffle)/float64(cart))
}
