package gpaw

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/detsum"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/pblas"
	"repro/internal/stencil"
	"repro/internal/topology"
)

// This file is the distributed solver layer: the Poisson solvers, the
// multigrid V-cycle, the eigensolver and the SCF loop of this package
// run rank-parallel over an MPI Cartesian process grid, with each rank
// additionally running the shared-memory worker pool inside it — the
// paper's hybrid execution model lifted from a single stencil apply to
// the full solver stack.
//
// Determinism contract: every distributed solver is bit-identical to
// its serial counterpart, for every rank count, process-grid shape and
// thread count. Three mechanisms make this possible:
//
//  1. Halo exchange copies exact interior values (internal/core's
//     async/double-buffered protocol), so distributed stencil reads see
//     the same numbers serial reads see through FillHalos*.
//  2. Reductions accumulate into detsum.Acc and merge per-rank partial
//     accumulators exactly through mpi.AllreduceFunc in rank order, so
//     every dot product, norm and sum equals the serial value bitwise
//     regardless of the decomposition or message arrival order.
//  3. Everything else is elementwise and runs the very same fused
//     kernels (internal/stencil) on local sub-domains.
//
// The four programming approaches map onto solver execution as:
// flat original (serialized exchange, no batching, no threads), flat
// optimized (async exchange + double buffering + batching), hybrid
// multiple (wave-function batches divided among pool workers, each
// worker doing its own communication; MPI THREAD_MULTIPLE), and hybrid
// master-only (master thread communicates, each grid's compute is
// fork-joined across the pool; THREAD_SINGLE suffices).
//
// Split-phase overlap: every approach except flat original runs its hot
// iteration loops on the overlapped protocol — the halo exchange is
// posted (core.StartExchange), the fused kernel sweeps the deep
// interior (every point that reads no halo) while the messages are in
// flight, the exchange completes (FinishExchange) and the one-radius
// boundary shell finishes the sweep (the ApplyXxxInterior/Shell kernel
// pairs of internal/stencil). Flat original keeps the original
// exchange-to-completion-then-compute structure as the differential
// baseline, and DistConfig.NoOverlap forces that structure for any
// approach. Because shell and interior reduction partials accumulate
// into the same exact detsum accumulators and every point is computed
// by exactly one phase with identical arithmetic, the overlapped
// solvers are bit-identical to the serialized ones — the overlap test
// matrix in dist_overlap_test.go asserts this for solutions, iteration
// counts, eigenvalues and SCF energies.

// distTag is the base tag of the solver layer's gather/scatter traffic,
// far above the engine's halo-exchange tag space.
const distTag = 1 << 24

// DistConfig describes one rank's share of a distributed calculation.
type DistConfig struct {
	Global   topology.Dims // global grid extents
	Procs    topology.Dims // domain process grid (per band group)
	Bands    int           // band groups forming the bands x domain 2D layout (0 or 1 = domain-only)
	Halo     int           // halo thickness = stencil radius (2 for the paper's operators)
	BC       Boundary
	Approach core.Approach
	Threads  int // compute threads per rank for the hybrid approaches
	Batch    int // grids per halo-exchange message batch

	// ABFT arms algorithm-based fault tolerance: the dense subspace
	// kernels run their Huang–Abraham checksum verification
	// (pblas.CholeskyChecked and friends) and NewDistSCF installs an
	// SDCGuard, so silent data corruption surfaces as a typed
	// *pblas.ErrSDCDetected the fault-tolerant driver rolls back on.
	// Verification only reads results — bit-identity is unaffected.
	ABFT bool

	// NoOverlap forces the serialized exchange-then-compute structure
	// even for the optimized approaches, as the differential baseline
	// the overlapped protocol is verified against. The default (false)
	// overlaps halo communication with deep-interior compute in every
	// approach except FlatOriginal, whose defining property is the
	// absence of every section-V optimization.
	NoOverlap bool

	// Map selects how NetCoords places this layout onto a network's
	// nodes when a calibrated transport model is armed (see
	// mpi.NetModel): linear fill, Cartesian embedding or worst-case
	// shuffle. It only affects modeled message costs, never results.
	Map topology.Mapping

	// NetCompute charges the calibrated per-point stencil cost
	// (bgpsim's PointTime over this config's operator shape and thread
	// count) to the rank's virtual clock for every fused sweep, so a
	// NoComputeWall model run has deterministic compute to hide
	// communication behind. No-op without an armed network model.
	NetCompute bool
}

// NetCoords places this configuration's rank layout onto the nodes of
// a network for mpi.NetModel.Coords: the bands x domain world layout
// through topology.MapBands (plain MapGrid when domain-only), using
// cfg.Map as the strategy. Callable before any world exists — the
// model must be armed before ranks start.
func NetCoords(cfg DistConfig, net topology.Network) []topology.Coord {
	bands := cfg.Bands
	if bands < 1 {
		bands = 1
	}
	return topology.MapBands(bands, cfg.Procs, net, cfg.Map)
}

// Dist ties one MPI rank into a distributed real-space calculation: the
// local sub-domain, the Cartesian domain communicator, the band
// communicator crossing band groups at fixed domain coordinate, the
// halo-exchange engine and the per-rank worker pool. With Bands > 1 the
// ranks form a bands x domain 2D layout: world rank r belongs to band
// group r / Procs.Count() and holds domain rank r % Procs.Count()
// within it (see bands.go).
type Dist struct {
	Cart     *mpi.Cart
	Decomp   *grid.Decomp
	BC       Boundary
	Approach core.Approach
	// ABFT mirrors DistConfig.ABFT: checksum-verified dense kernels.
	ABFT bool

	// World is the full bands x domain communicator NewDist was given.
	World *mpi.Comm
	// Bands is the number of band groups; Band is this rank's group.
	Bands, Band int
	// BandComm connects the ranks holding this domain sub-domain across
	// all band groups (size Bands, rank = band group index).
	BandComm *mpi.Comm
	// BGrid is the 2D process grid over BandComm that internal/pblas
	// distributes the dense subspace algebra on.
	BGrid *pblas.Grid2D

	eng   *core.Engine
	pool  *stencil.Pool
	coord topology.Coord
	off   topology.Coord
	local topology.Dims

	// overlap selects the split-phase protocol for the hot solver loops
	// (see the package comment); exBuf is the hoisted single-grid slice
	// of withOverlap, so per-iteration exchanges allocate nothing. It is
	// only touched from the solver's master goroutine.
	overlap bool
	exBuf   []*grid.Grid

	// pointNs is the modeled per-point sweep cost in virtual ns charged
	// through mpi.Comm.Compute (0: charging off). It already includes
	// the 1/Threads parallel speedup, so charges from concurrently
	// communicating workers simply add.
	pointNs float64
}

// NewDist builds the per-rank distributed context. Every rank of the
// communicator must call it with identical configuration. The
// communicator size must equal Bands * Procs.Count(); contiguous runs
// of Procs.Count() world ranks form the band groups, so each group's
// domain communicator keeps the Cartesian rank order of the
// domain-only layout.
func NewDist(comm *mpi.Comm, cfg DistConfig) (*Dist, error) {
	bands := cfg.Bands
	if bands < 1 {
		bands = 1
	}
	nproc := cfg.Procs.Count()
	if bands*nproc != comm.Size() {
		return nil, fmt.Errorf("gpaw: bands x domain layout %d x %v needs %d ranks, have %d",
			bands, cfg.Procs, bands*nproc, comm.Size())
	}
	dec, err := grid.NewDecomp(cfg.Global, cfg.Procs, cfg.Halo)
	if err != nil {
		return nil, err
	}
	band := comm.Rank() / nproc
	domainComm := comm.Split(band, comm.Rank())
	bandComm := comm.Split(comm.Rank()%nproc, comm.Rank())
	pr, pc := pblas.Squarish(bands)
	bgrid, err := pblas.NewGrid2D(bandComm, pr, pc)
	if err != nil {
		return nil, err
	}
	periodic := cfg.BC == Periodic
	cart := domainComm.CartCreate(cfg.Procs, [3]bool{periodic, periodic, periodic}, true)
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	// The engine's operator only shapes the exchange (face thickness =
	// its radius); solvers pass their own operators to the kernels.
	shape := stencil.Laplacian(cfg.Halo, 1)
	eng, err := core.NewEngine(cart, dec, shape, periodic, core.OptionsFor(cfg.Approach, cfg.Batch, cfg.Threads))
	if err != nil {
		return nil, err
	}
	d := &Dist{Cart: cart, Decomp: dec, BC: cfg.BC, Approach: cfg.Approach, ABFT: cfg.ABFT,
		World: comm, Bands: bands, Band: band, BandComm: bandComm, BGrid: bgrid,
		eng: eng, pool: eng.WorkerPool(),
		overlap: !cfg.NoOverlap && cfg.Approach != core.FlatOriginal}
	d.coord = cart.Coords(cart.Rank())
	d.off = dec.Offset(d.coord)
	d.local = dec.LocalDims(d.coord)
	if cfg.NetCompute {
		if _, on := comm.World().NetConfig(); on {
			// Calibrated per-point sweep cost of this config's operator
			// shape, with the rank's threads computing concurrently.
			p := bgpsim.DefaultParams()
			d.pointNs = p.PointTime(shape.FlopsPerPoint(), shape.BytesPerPoint(), cfg.Threads) /
				float64(cfg.Threads) * 1e9
		}
	}
	return d, nil
}

// chargePoints charges n stencil points of modeled compute to this
// rank's virtual clock (no-op unless NetCompute armed the charge rate).
func (d *Dist) chargePoints(n int) {
	if d.pointNs > 0 && n > 0 {
		d.Cart.Compute(time.Duration(float64(n) * d.pointNs))
	}
}

// sweepCharges returns the modeled point counts of one fused sweep over
// a local grid: the halo-free deep interior and the boundary shell.
func sweepCharges(g *grid.Grid, r int) (interior, shell int) {
	total := g.Nx * g.Ny * g.Nz
	ib := stencil.InteriorBlock(g.Nx, g.Ny, g.Nz, r)
	interior = ib.Points()
	return interior, total - interior
}

// Close releases the rank's worker pool.
func (d *Dist) Close() { d.eng.Close() }

// Pool returns the rank's worker pool (nil for the flat approaches).
func (d *Dist) Pool() *stencil.Pool { return d.pool }

// Coord returns this rank's Cartesian coordinate.
func (d *Dist) Coord() topology.Coord { return d.coord }

// Offset returns the global offset of this rank's sub-domain.
func (d *Dist) Offset() topology.Coord { return d.off }

// LocalDims returns this rank's sub-domain extents.
func (d *Dist) LocalDims() topology.Dims { return d.local }

// NewLocalGrid allocates a local grid covering this rank's sub-domain.
func (d *Dist) NewLocalGrid() *grid.Grid { return grid.NewDims(d.local, d.Decomp.Halo) }

// ScatterReplicated copies this rank's sub-domain out of a global grid
// every rank holds (deterministically constructed inputs such as
// external potentials). No communication.
func (d *Dist) ScatterReplicated(global *grid.Grid) *grid.Grid {
	return d.Decomp.Scatter(global, d.coord)
}

// Exchange fills the halos of the given local grids from the
// neighbouring ranks using the configured protocol.
func (d *Dist) Exchange(gs ...*grid.Grid) { d.eng.Exchange(gs) }

// Overlapped reports whether the hot solver loops run the split-phase
// overlapped protocol (every approach but FlatOriginal, unless
// DistConfig.NoOverlap forced the serialized baseline).
func (d *Dist) Overlapped() bool { return d.overlap }

// Stats returns the engine's accumulated communication statistics.
func (d *Dist) Stats() core.Stats { return d.eng.Stats() }

// withOverlap runs one halo exchange of g plus one fused sweep through
// eng with the configured structure. Overlapped: the exchange is
// posted, interior() computes the halo-free deep interior while the
// messages travel, the exchange completes and shell() finishes the
// boundary. Serialized baseline: the blocking exchange completes first,
// then full() runs the whole sweep. Both orders produce bit-identical
// results (exact reductions, identical per-point arithmetic); only the
// communication/computation schedule differs. eng is a parameter
// because the multigrid levels own engines of their own.
func (d *Dist) withOverlap(eng *core.Engine, g *grid.Grid, full, interior, shell func()) {
	d.exBuf = append(d.exBuf[:0], g)
	intPts, shellPts := 0, 0
	if d.pointNs > 0 {
		intPts, shellPts = sweepCharges(g, d.Decomp.Halo)
	}
	rk := d.Cart.TraceRank()
	if !d.overlap {
		eng.Exchange(d.exBuf)
		sp := rk.Region("compute.sweep")
		full()
		d.chargePoints(intPts + shellPts)
		sp.End()
		return
	}
	h := eng.StartExchange(d.exBuf)
	t0 := eng.NowNs()
	sp := rk.Region("compute.interior")
	interior()
	// The interior charge lands before FinishExchange's wait, so under a
	// network model the modeled arrival hides behind modeled compute —
	// the overlap the calibrated benchmarks measure. It also lands before
	// the region end and phase timestamps, so modeled compute shows up as
	// interior time on both the timeline and the profile.
	d.chargePoints(intPts)
	sp.End()
	t1 := eng.NowNs()
	eng.FinishExchange(h)
	t2 := eng.NowNs()
	sp = rk.Region("compute.shell")
	shell()
	d.chargePoints(shellPts)
	sp.End()
	eng.NoteSplit(t1-t0, eng.NowNs()-t2)
}

// --- deterministic global reductions -------------------------------

// reduceAccs merges every rank's accumulators exactly (rank-ordered,
// arrival-order independent) and returns the rounded global values, one
// per accumulator. All ranks receive identical results.
func (d *Dist) reduceAccs(accs []*detsum.Acc) []float64 {
	in := make([]float64, 0, len(accs)*detsum.TransportLen)
	for _, a := range accs {
		in = a.Transport(in)
	}
	out := make([]float64, len(in))
	d.Cart.AllreduceFunc(in, out, detsum.MergeTransport)
	vals := make([]float64, len(accs))
	for i := range accs {
		vals[i] = detsum.RoundTransport(out[i*detsum.TransportLen : (i+1)*detsum.TransportLen])
	}
	return vals
}

// reduceAcc reduces a single accumulator to its global value.
func (d *Dist) reduceAcc(a *detsum.Acc) float64 {
	return d.reduceAccs([]*detsum.Acc{a})[0]
}

// Sum returns the global interior sum, bit-identical to the serial
// Pool.Sum over the undecomposed grid.
func (d *Dist) Sum(g *grid.Grid) float64 {
	var a detsum.Acc
	d.pool.SumAcc(g, &a)
	return d.reduceAcc(&a)
}

// Dot returns the global inner product <a, b>.
func (d *Dist) Dot(a, b *grid.Grid) float64 {
	var acc detsum.Acc
	d.pool.DotAcc(a, b, &acc)
	return d.reduceAcc(&acc)
}

// Norm2 returns the global L2 norm.
func (d *Dist) Norm2(g *grid.Grid) float64 { return math.Sqrt(d.Dot(g, g)) }

// DotNorm returns the global <a, b> and <a, a> in one local pooled
// sweep and one reduction.
func (d *Dist) DotNorm(a, b *grid.Grid) (dot, sumsq float64) {
	var dotAcc, sqAcc detsum.Acc
	d.pool.DotNormAcc(a, b, &dotAcc, &sqAcc)
	vals := d.reduceAccs([]*detsum.Acc{&dotAcc, &sqAcc})
	return vals[0], vals[1]
}

// AxpyDot performs g += a*x locally and returns the global updated
// <g, g> in the same sweep.
func (d *Dist) AxpyDot(g *grid.Grid, a float64, x *grid.Grid) float64 {
	var acc detsum.Acc
	d.pool.AxpyDotAcc(g, a, x, &acc)
	return d.reduceAcc(&acc)
}

// removeMeanDist subtracts the global interior mean — the distributed
// twin of removeMean, bit-identical because the sum is exact.
func (d *Dist) removeMeanDist(g *grid.Grid) {
	mean := d.Sum(g) / float64(d.Decomp.Global.Count())
	d.pool.AddScalar(g, -mean)
}

// --- gather / scatter / broadcast ----------------------------------

// maxLocalPoints returns the largest sub-domain size of the decomposition.
func maxLocalPoints(dec *grid.Decomp) int {
	max := 0
	for r := 0; r < dec.Procs.Count(); r++ {
		if n := dec.LocalDims(dec.Procs.Coord(r)).Count(); n > max {
			max = n
		}
	}
	return max
}

// gatherDec assembles the global grid of the given decomposition from
// every rank's local interior on rank 0 (returns nil elsewhere). The
// multigrid hierarchy passes per-level decompositions.
func (d *Dist) gatherDec(dec *grid.Decomp, local *grid.Grid) *grid.Grid {
	if d.Cart.Rank() != 0 {
		d.Cart.Send(0, distTag, local.InteriorSlice())
		return nil
	}
	g := grid.NewDims(dec.Global, local.H)
	dec.Gather(g, d.coord, local)
	buf := make([]float64, maxLocalPoints(dec))
	for r := 1; r < d.Cart.Size(); r++ {
		rc := dec.Procs.Coord(r)
		n := dec.LocalDims(rc).Count()
		d.Cart.Recv(r, distTag, buf[:n])
		lg := grid.NewDims(dec.LocalDims(rc), 0)
		lg.SetInterior(buf[:n])
		dec.Gather(g, rc, lg)
	}
	return g
}

// gather0 is gatherDec over the solver-level decomposition.
func (d *Dist) gather0(local *grid.Grid) *grid.Grid { return d.gatherDec(d.Decomp, local) }

// GatherGlobal assembles the global grid on rank 0 (nil elsewhere) —
// the transport differential tests and external drivers use to compare
// distributed fields against serial ones.
func (d *Dist) GatherGlobal(local *grid.Grid) *grid.Grid { return d.gather0(local) }

// --- per-approach wave-function processing -------------------------

// forEachExchanged runs the configured exchange protocol over the
// states and invokes f once per state after its halos are installed.
// Hybrid multiple divides states among pool workers, each communicating
// for its own share; every other approach communicates on the caller.
// f receives the pool to split a single state's compute across (nil
// except for hybrid master-only, whose defining property is the
// per-grid fork-join).
func (d *Dist) forEachExchanged(states []*grid.Grid, f func(gi int, p *stencil.Pool)) {
	charge := d.stateCharger(states)
	switch d.Approach {
	case core.HybridMultiple:
		d.eng.RunBatchesHybridMultiple(states, func(b core.Batch) {
			for gi := b.Lo; gi < b.Hi; gi++ {
				f(gi, nil)
				charge(1, 1)
			}
		})
	case core.HybridMasterOnly:
		d.eng.RunBatches(states, func(b core.Batch) {
			for gi := b.Lo; gi < b.Hi; gi++ {
				f(gi, d.pool)
				charge(1, 1)
			}
		})
	default:
		d.eng.RunBatches(states, func(b core.Batch) {
			for gi := b.Lo; gi < b.Hi; gi++ {
				f(gi, nil)
				charge(1, 1)
			}
		})
	}
}

// forEachSplit is forEachExchanged's split-phase sibling: per batch,
// interior runs for each state while its halo messages are in flight
// and shell runs after they are installed. Hybrid multiple divides
// states among pool workers, each communicating for its own share;
// hybrid master-only hands interior the pool to fork-join one state's
// deep interior across (the shell is O(surface) and stays on the
// master). Interior must not read halos.
func (d *Dist) forEachSplit(states []*grid.Grid, interior func(gi int, p *stencil.Pool), shell func(gi int)) {
	charge := d.stateCharger(states)
	runAll := func(b core.Batch, f func(gi int)) {
		for gi := b.Lo; gi < b.Hi; gi++ {
			f(gi)
		}
	}
	switch d.Approach {
	case core.HybridMultiple:
		d.eng.RunBatchesSplitHybridMultiple(states,
			func(b core.Batch) { runAll(b, func(gi int) { interior(gi, nil); charge(1, 0) }) },
			func(b core.Batch) { runAll(b, func(gi int) { shell(gi); charge(0, 1) }) })
	case core.HybridMasterOnly:
		d.eng.RunBatchesSplit(states,
			func(b core.Batch) { runAll(b, func(gi int) { interior(gi, d.pool); charge(1, 0) }) },
			func(b core.Batch) { runAll(b, func(gi int) { shell(gi); charge(0, 1) }) })
	default:
		d.eng.RunBatchesSplit(states,
			func(b core.Batch) { runAll(b, func(gi int) { interior(gi, nil); charge(1, 0) }) },
			func(b core.Batch) { runAll(b, func(gi int) { shell(gi); charge(0, 1) }) })
	}
}

// stateCharger returns a compute-charge hook for per-state sweeps:
// charge(i, s) adds i interior and s shell sweeps' worth of modeled
// compute for one state. A no-op closure when charging is off, so the
// hot loops stay branch-free.
func (d *Dist) stateCharger(states []*grid.Grid) func(interior, shell int) {
	if d.pointNs == 0 || len(states) == 0 {
		return func(int, int) {}
	}
	intPts, shellPts := sweepCharges(states[0], d.Decomp.Halo)
	return func(i, s int) { d.chargePoints(i*intPts + s*shellPts) }
}

// --- distributed Poisson solvers -----------------------------------

// DistPoisson solves ∇²φ = rhs on local sub-domains, mirroring Poisson
// step for step so every iterate is bit-identical to the serial solver.
type DistPoisson struct {
	D       *Dist
	Op      *stencil.Operator
	Tol     float64
	MaxIter int
}

// NewDistPoisson builds the distributed solver with the paper's
// radius-2 Laplacian and the serial solver's defaults.
func NewDistPoisson(d *Dist, h float64) *DistPoisson {
	return &DistPoisson{D: d, Op: stencil.Laplacian(2, h), Tol: 1e-8, MaxIter: 10000}
}

// residual computes r = rhs - ∇²phi (one halo exchange + one fused
// sweep, overlapped when the approach allows) and returns the global
// residual norm.
func (ps *DistPoisson) residual(r, phi, rhs *grid.Grid) float64 {
	d := ps.D
	var acc detsum.Acc
	d.withOverlap(d.eng, phi,
		func() { ps.Op.ApplyResidualAcc(d.pool, r, rhs, phi, &acc) },
		func() { ps.Op.ApplyResidualInteriorAcc(d.pool, r, rhs, phi, &acc) },
		func() { ps.Op.ApplyResidualShellAcc(r, rhs, phi, &acc) })
	return math.Sqrt(d.reduceAcc(&acc))
}

// SolveJacobi mirrors Poisson.SolveJacobi across ranks.
func (ps *DistPoisson) SolveJacobi(phi, rhs *grid.Grid) (int, float64, error) {
	d := ps.D
	defer d.Cart.TraceRank().Region("poisson.jacobi").End()
	omega := 0.7
	diag := ps.Op.Center
	if diag == 0 {
		return 0, 0, fmt.Errorf("gpaw: singular stencil diagonal")
	}
	b := rhs.Clone()
	if d.BC == Periodic {
		d.removeMeanDist(b)
	}
	r := grid.NewDims(phi.Dims(), phi.H)
	norm0 := d.Norm2(b)
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	for it := 1; it <= ps.MaxIter; it++ {
		res := ps.residual(r, phi, b)
		if d.BC == Periodic {
			d.removeMeanDist(phi)
		}
		if res/norm0 < ps.Tol {
			return it, res / norm0, nil
		}
		d.pool.Axpy(phi, omega/diag, r)
	}
	res := ps.residual(r, phi, b)
	return ps.MaxIter, res / norm0, errNotConverged("Jacobi", res/norm0)
}

// SolveCG mirrors the fused conjugate-gradient solver across ranks:
// exchange + fused apply-with-dot, distributed exact reductions, local
// axpys. Every alpha/beta and every iterate equals the serial run's.
func (ps *DistPoisson) SolveCG(phi, rhs *grid.Grid) (int, float64, error) {
	d := ps.D
	defer d.Cart.TraceRank().Region("poisson.cg").End()
	neg := ps.Op.Scaled(-1)
	b := rhs.Clone()
	d.pool.Scale(b, -1)
	if d.BC == Periodic {
		d.removeMeanDist(b)
	}
	norm0 := d.Norm2(b)
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	r := grid.NewDims(phi.Dims(), phi.H)
	ap := grid.NewDims(phi.Dims(), phi.H)
	var acc detsum.Acc
	d.withOverlap(d.eng, phi,
		func() { neg.ApplyResidualAcc(d.pool, r, b, phi, &acc) },
		func() { neg.ApplyResidualInteriorAcc(d.pool, r, b, phi, &acc) },
		func() { neg.ApplyResidualShellAcc(r, b, phi, &acc) })
	if d.BC == Periodic {
		d.removeMeanDist(r)
	}
	p := r.Clone()
	rsold := d.Dot(r, r)
	for it := 1; it <= ps.MaxIter; it++ {
		// ap = A p and <p, Ap>, the deep interior computed while p's
		// halo messages are in flight.
		acc.Reset()
		d.withOverlap(d.eng, p,
			func() { neg.ApplyDotAcc(d.pool, ap, p, &acc) },
			func() { neg.ApplyDotInteriorAcc(d.pool, ap, p, &acc) },
			func() { neg.ApplyDotShellAcc(ap, p, &acc) })
		pap := d.reduceAcc(&acc)
		alpha := rsold / pap
		d.pool.Axpy(phi, alpha, p)
		rs := d.AxpyDot(r, -alpha, ap)
		if d.BC == Periodic {
			d.removeMeanDist(r)
			rs = d.Dot(r, r)
		}
		if math.Sqrt(rs)/norm0 < ps.Tol {
			if d.BC == Periodic {
				d.removeMeanDist(phi)
			}
			return it, math.Sqrt(rs) / norm0, nil
		}
		d.pool.AxpyScale(p, 1, r, rs/rsold)
		rsold = rs
	}
	return ps.MaxIter, math.Sqrt(rsold) / norm0, errNotConverged("CG", math.Sqrt(rsold)/norm0)
}

// SolveSOR mirrors Poisson.SolveSOR with a pipelined wavefront sweep
// (see wavefront.go): every rank sweeps its sub-domain plane by plane
// in the global lexicographic order, receiving updated upstream
// boundary planes into its halos just before reading them and
// streaming its own boundaries downstream as each plane completes. No
// rank gathers the grid; per-iteration communication is the ordinary
// halo exchange plus the boundary-plane pipeline, both O(surface). The
// update order — and therefore every bit of every iterate — equals the
// serial SORSweep's; residual checks, mean removal and norms stay
// distributed with exact reductions.
func (ps *DistPoisson) SolveSOR(phi, rhs *grid.Grid, omega float64) (int, float64, error) {
	d := ps.D
	defer d.Cart.TraceRank().Region("poisson.sor").End()
	if omega <= 0 || omega >= 2 {
		return 0, 0, fmt.Errorf("gpaw: SOR omega %g outside (0, 2)", omega)
	}
	if ps.Op.Center == 0 {
		return 0, 0, fmt.Errorf("gpaw: singular stencil diagonal")
	}
	b := rhs.Clone()
	if d.BC == Periodic {
		d.removeMeanDist(b)
	}
	norm0 := d.Norm2(b)
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	wf := newSORWavefront(d, ps.Op)
	r := grid.NewDims(phi.Dims(), phi.H)
	for it := 1; it <= ps.MaxIter; it++ {
		// Pre-sweep exchange: +side and periodic-wrap halos must hold
		// pre-sweep values, exactly like the serial fillHalos.
		d.Exchange(phi)
		wf.sweep(phi, b, omega)
		if d.BC == Periodic {
			d.removeMeanDist(phi)
		}
		res := ps.residual(r, phi, b)
		if res/norm0 < ps.Tol {
			return it, res / norm0, nil
		}
	}
	res := ps.residual(r, phi, b)
	return ps.MaxIter, res / norm0, errNotConverged("SOR", res/norm0)
}

// HartreePotential mirrors Poisson.HartreePotential on local grids.
func (ps *DistPoisson) HartreePotential(n *grid.Grid) (*grid.Grid, error) {
	defer ps.D.Cart.TraceRank().Region("poisson.hartree").End()
	rhs := n.Clone()
	ps.D.pool.Scale(rhs, -4*math.Pi)
	v := grid.NewDims(n.Dims(), n.H)
	if _, _, err := ps.SolveCG(v, rhs); err != nil {
		return nil, err
	}
	return v, nil
}

// --- distributed multigrid -----------------------------------------

// Redistribution tags: the level-transfer traffic of the V-cycle,
// disjoint from the gather and wavefront tag ranges above. The same
// pair serves every shrink boundary — all ranks execute their shared
// transfers in the same order, so FIFO matching per (source, tag) pairs
// the k-th send with the k-th receive even across nested levels.
const (
	redistDownTag = distTag + 16 // fine residual -> doubled transfer layout
	redistUpTag   = distTag + 17 // coarse correction -> fine layout
)

// distMGLevel is one level of the distributed hierarchy. Every level is
// genuinely distributed: levels whose sub-domains would become thinner
// than the halo run on a shrunken process grid (a sub-communicator of
// the surviving ranks) instead of serializing on rank 0.
type distMGLevel struct {
	op   *stencil.Operator
	h    float64
	dims topology.Dims // global extents of this level

	procs  topology.Dims // process grid of this level
	comm   *mpi.Comm     // communicator of the level's active ranks (nil on parked ranks)
	cart   *mpi.Cart
	dec    *grid.Decomp
	eng    *core.Engine
	active bool // whether this rank holds data at this level

	phi, rhs, res *grid.Grid // local scratch (active ranks only)

	// Shrink-transfer machinery, set when this level's process grid
	// differs from the parent's (fewer ranks, or re-split for
	// alignment). The parent's active ranks redistribute the residual
	// into xferDec — the parent extents over THIS level's process grid
	// with splits doubled from dec, so restriction and prolongation stay
	// rank-local — and bring the correction back the same way.
	shrunk   bool
	xferDec  *grid.Decomp
	xfer     *grid.Grid       // local scratch in xferDec layout (active ranks only)
	down, up *grid.RedistPlan // parent layout <-> transfer layout (parent-active ranks)
}

// DistMultigrid is the rank-parallel geometric V-cycle. Coarsening
// halves every extent; when a level's sub-domains would become thinner
// than the halo (grid.NewDecompOrFallback shrinks the process grid) or
// the fine/coarse splits stop aligning for local transfer, the level is
// redistributed onto the surviving ranks' sub-communicator
// (mpi.Comm.Split + grid.RedistPlan) and the V-cycle continues there
// while the remaining ranks park at the blocking return transfer until
// prolongation. No level ever funnels through rank 0. All-level
// arithmetic matches the serial solver bitwise.
type DistMultigrid struct {
	D          *Dist
	Tol        float64
	MaxCycles  int
	PreSmooth  int
	PostSmooth int

	levels     []*distMGLevel
	shrunkFrom int // first level on a smaller/re-split process grid; len(levels) if none
}

// splitsAligned reports whether every rank's fine split is exactly
// twice its coarse split in every dimension — the condition for
// restriction/prolongation to stay rank-local without a transfer
// layout.
func splitsAligned(fine, coarse, procs topology.Dims) bool {
	for dim := 0; dim < 3; dim++ {
		for r := 0; r < procs[dim]; r++ {
			fs, fl := topology.Split(fine[dim], procs[dim], r)
			cs, cl := topology.Split(coarse[dim], procs[dim], r)
			if fs != 2*cs || fl != 2*cl {
				return false
			}
		}
	}
	return true
}

// NewDistMultigrid builds the distributed hierarchy for the Dist's
// global grid at spacing h, mirroring NewMultigrid's level structure.
// Every rank of the Dist's domain communicator must call it (the level
// sub-communicators are built collectively).
func NewDistMultigrid(d *Dist, h float64) (*DistMultigrid, error) {
	mg := &DistMultigrid{D: d, Tol: 1e-8, MaxCycles: 60, PreSmooth: 3, PostSmooth: 3}
	dims := d.Decomp.Global
	spacing := h
	// Mirror NewMultigrid's level loop exactly so both hierarchies have
	// identical (dims, spacing) sequences.
	for {
		mg.levels = append(mg.levels, &distMGLevel{op: stencil.Laplacian(2, spacing), h: spacing, dims: dims})
		if dims[0]%2 != 0 || dims[1]%2 != 0 || dims[2]%2 != 0 ||
			dims[0] <= 4 || dims[1] <= 4 || dims[2] <= 4 {
			break
		}
		dims = topology.Dims{dims[0] / 2, dims[1] / 2, dims[2] / 2}
		spacing *= 2
	}
	if len(mg.levels) < 2 {
		return nil, fmt.Errorf("gpaw: grid %v too small or odd for multigrid", d.Decomp.Global)
	}
	halo := d.Decomp.Halo
	periodic := d.BC == Periodic
	mg.shrunkFrom = len(mg.levels)
	for l, lv := range mg.levels {
		if l == 0 {
			lv.procs, lv.dec = d.Decomp.Procs, d.Decomp
			lv.comm, lv.cart = d.Cart.Comm, d.Cart
			lv.active = true
		} else {
			prev := mg.levels[l-1]
			// The level's process grid is a pure function of (dims,
			// parent grid, halo): every rank — parked ones included —
			// derives the same chain without communication.
			dec, used, _, err := grid.NewDecompOrFallback(lv.dims, prev.procs, halo)
			if err != nil {
				return nil, err
			}
			lv.procs = used
			if used == prev.procs && splitsAligned(prev.dims, lv.dims, used) {
				if !prev.active {
					continue
				}
				lv.dec = dec
				lv.comm, lv.cart = prev.comm, prev.cart
				lv.active = true
			} else {
				lv.shrunk = true
				if l < mg.shrunkFrom {
					mg.shrunkFrom = l
				}
				lv.xferDec = dec.Doubled(0)
				if !prev.active {
					continue
				}
				// Collective over the parent level's communicator: its
				// first used.Count() ranks survive onto this level,
				// keeping their rank numbers (Split ordered by old
				// rank), so the coarse Cartesian coordinates are the
				// row-major coordinates of the same ranks.
				color := -1
				if prev.comm.Rank() < used.Count() {
					color = 0
				}
				sub := prev.comm.Split(color, prev.comm.Rank())
				lv.down = grid.NewRedistPlan(prev.comm.Rank(), prev.dec, lv.xferDec)
				lv.up = grid.NewRedistPlan(prev.comm.Rank(), lv.xferDec, prev.dec)
				if sub == nil {
					continue // this rank parks at the l-1 -> l boundary
				}
				lv.dec = dec
				lv.comm = sub
				lv.cart = sub.CartCreate(used, [3]bool{periodic, periodic, periodic}, true)
				lv.active = true
				lv.xfer = grid.NewDims(lv.xferDec.LocalDims(used.Coord(sub.Rank())), 0)
			}
		}
		eng, err := core.NewEngine(lv.cart, lv.dec, lv.op, periodic,
			core.Options{Exchange: core.ExchangeAsync, BatchSize: 1, Threads: 1})
		if err != nil {
			return nil, err
		}
		lv.eng = eng
		c := lv.dec.LocalDims(lv.cart.Coords(lv.cart.Rank()))
		lv.phi = grid.NewDims(c, halo)
		lv.rhs = grid.NewDims(c, halo)
		lv.res = grid.NewDims(c, halo)
	}
	return mg, nil
}

// Levels returns the depth of the hierarchy.
func (mg *DistMultigrid) Levels() int { return len(mg.levels) }

// SerializedFrom returns the first level index that runs serialized on
// a single gathered copy of the grid. Since level redistribution, no
// level does — coarse levels run distributed on shrunken process grids
// — so it always equals Levels(). It is kept so callers (and the
// regression tests) can assert the absence of the old rank-0 arm.
func (mg *DistMultigrid) SerializedFrom() int { return len(mg.levels) }

// ShrunkFrom returns the first level index that runs on a process grid
// different from the solver's — redistributed onto fewer ranks (or
// re-split for transfer alignment) with the remaining ranks parked —
// or Levels() when every level keeps the full process grid.
func (mg *DistMultigrid) ShrunkFrom() int { return mg.shrunkFrom }

// smooth runs n damped Jacobi sweeps on a distributed level, ping-pong
// through lv.res exactly like the serial smoother. Each sweep's deep
// interior overlaps the level's halo exchange (the level engines always
// post asynchronously; the overlap split follows the solver approach).
func (mg *DistMultigrid) smooth(lv *distMGLevel, phi, rhs *grid.Grid, n int) {
	const omega = 0.8
	c := omega / lv.op.Center
	d := mg.D
	defer d.Cart.TraceRank().Region("mg.smooth").End()
	src, dst := phi, lv.res
	for s := 0; s < n; s++ {
		// The callbacks run inside withOverlap, before the swap, so they
		// see this sweep's src/dst.
		d.withOverlap(lv.eng, src,
			func() { lv.op.ApplySmooth(d.pool, dst, src, rhs, c) },
			func() { lv.op.ApplySmoothInterior(d.pool, dst, src, rhs, c) },
			func() { lv.op.ApplySmoothShell(dst, src, rhs, c) })
		src, dst = dst, src
	}
	if src != phi {
		mg.D.pool.Copy(phi, src)
	}
}

// residualInto computes res = rhs - A phi on a distributed level and
// accumulates |res|^2 locally into acc (callers reduce when they need
// the global norm, matching the serial solver which discards it inside
// the V-cycle).
func (mg *DistMultigrid) residualInto(lv *distMGLevel, res, phi, rhs *grid.Grid, acc *detsum.Acc) {
	d := mg.D
	d.withOverlap(lv.eng, phi,
		func() { lv.op.ApplyResidualAcc(d.pool, res, rhs, phi, acc) },
		func() { lv.op.ApplyResidualInteriorAcc(d.pool, res, rhs, phi, acc) },
		func() { lv.op.ApplyResidualShellAcc(res, rhs, phi, acc) })
}

// vcycle performs one distributed V-cycle from level l. It is entered
// only by ranks active at level l.
func (mg *DistMultigrid) vcycle(l int, phi, rhs *grid.Grid) {
	d := mg.D
	defer d.Cart.TraceRank().Region("mg.vcycle").End()
	lv := mg.levels[l]
	if l == len(mg.levels)-1 {
		mg.smooth(lv, phi, rhs, 60) // coarsest: relax hard
		return
	}
	mg.smooth(lv, phi, rhs, mg.PreSmooth)
	var discard detsum.Acc
	mg.residualInto(lv, lv.res, phi, rhs, &discard)
	next := mg.levels[l+1]
	if next.shrunk {
		// Level redistribution: move the residual into the doubled
		// transfer layout of the surviving ranks, restrict and recurse
		// on their sub-communicator, and bring the correction back.
		// Ranks outside the shrunken grid send their residual pieces and
		// park on the return transfer's blocking receives until the
		// coarse correction arrives.
		next.down.Run(lv.comm, lv.res, next.xfer, redistDownTag)
		if next.active {
			restrictFull(d.pool, next.xfer, next.rhs)
			next.phi.Zero()
			mg.vcycle(l+1, next.phi, next.rhs)
			prolongSet(d.pool, next.phi, next.xfer)
		}
		next.up.Run(lv.comm, next.xfer, lv.res, redistUpTag)
		// phi += correction: the addend is bit-identical to the coarse
		// value the serial prolongInto adds at the same global index.
		d.pool.Axpy(phi, 1, lv.res)
	} else {
		restrictFull(d.pool, lv.res, next.rhs)
		next.phi.Zero()
		mg.vcycle(l+1, next.phi, next.rhs)
		prolongInto(d.pool, next.phi, phi)
	}
	mg.smooth(lv, phi, rhs, mg.PostSmooth)
}

// Solve mirrors Multigrid.Solve across ranks.
func (mg *DistMultigrid) Solve(phi, rhs *grid.Grid) (int, float64, error) {
	d := mg.D
	defer d.Cart.TraceRank().Region("mg.solve").End()
	top := mg.levels[0]
	b := rhs.Clone()
	if d.BC == Periodic {
		d.removeMeanDist(b)
	}
	norm0 := d.Norm2(b)
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	relNorm := func() float64 {
		var acc detsum.Acc
		mg.residualInto(top, top.res, phi, b, &acc)
		return math.Sqrt(d.reduceAcc(&acc)) / norm0
	}
	for cyc := 1; cyc <= mg.MaxCycles; cyc++ {
		mg.vcycle(0, phi, b)
		if d.BC == Periodic {
			d.removeMeanDist(phi)
		}
		if rel := relNorm(); rel < mg.Tol {
			return cyc, rel, nil
		}
	}
	rel := relNorm()
	return mg.MaxCycles, rel, errNotConverged("multigrid", rel)
}

// --- distributed Hamiltonian / eigensolver -------------------------

// DistHamiltonian is the Kohn–Sham Hamiltonian on local sub-domains.
type DistHamiltonian struct {
	D *Dist
	T *stencil.Operator
	V *grid.Grid // local effective potential (may be nil)
}

// NewDistHamiltonian builds H with the paper's radius-2 kinetic stencil.
func NewDistHamiltonian(d *Dist, h float64, v *grid.Grid) *DistHamiltonian {
	return &DistHamiltonian{D: d, T: Kinetic(2, h), V: v}
}

// applyStates computes dsts[i] = beta*psis[i] + alpha*(H psis[i]) for
// every state, with halo exchange and compute structured by the Dist's
// approach (batched exchange, per-thread communication or per-grid
// fork-join). Overlapped approaches run each state's fused step split-
// phase: the deep interior sweeps while the batch's halo messages are
// in flight, the boundary shell after they land. This is the path the
// band-parallel eigensolver (bands.go RayleighRitz and the damped power
// step) applies H through, so the overlap covers the bands x domain
// layout too.
func (h *DistHamiltonian) applyStates(dsts, psis []*grid.Grid, alpha, beta float64) {
	defer h.D.Cart.TraceRank().Region("eigen.apply").End()
	if h.D.overlap {
		h.D.forEachSplit(psis,
			func(gi int, p *stencil.Pool) { h.T.ApplyStepInterior(p, dsts[gi], psis[gi], h.V, alpha, beta) },
			func(gi int) { h.T.ApplyStepShell(dsts[gi], psis[gi], h.V, alpha, beta) })
		return
	}
	h.D.forEachExchanged(psis, func(gi int, p *stencil.Pool) {
		h.T.ApplyStep(p, dsts[gi], psis[gi], h.V, alpha, beta)
	})
}

// SpectralBound mirrors Hamiltonian.SpectralBound: the kinetic bound
// plus the exact global potential maximum (max is associative, so the
// rank-folded maximum equals the serial one bitwise).
func (h *DistHamiltonian) SpectralBound() float64 {
	bound := kineticBound(h.T)
	if h.V != nil {
		in := [1]float64{maxPotential(h.V)}
		var out [1]float64
		h.D.Cart.Allreduce(mpi.OpMax, in[:], out[:])
		bound += out[0]
	}
	return bound
}

// DistEigenSolver mirrors EigenSolver across the bands x domain layout:
// the damped subspace iteration runs on this band group's slice of the
// states, while orthonormalization, subspace assembly and Rayleigh–Ritz
// run band-parallel through internal/pblas (see bands.go).
type DistEigenSolver struct {
	H       *DistHamiltonian
	Tol     float64
	MaxIter int
	// Ckpt, when set, snapshots the solver state (this band group's
	// states, previous Ritz values, iteration counter) every
	// Ckpt.Every iterations; see checkpoint.go.
	Ckpt *Checkpointer
}

// NewDistEigenSolver returns a solver with the serial defaults.
func NewDistEigenSolver(h *DistHamiltonian) *DistEigenSolver {
	return &DistEigenSolver{H: h, Tol: 1e-8, MaxIter: 2000}
}

// Solve iterates this band group's slice of the m global states toward
// the lowest eigenstates and returns all m eigenvalues, bit-identical
// to the serial solver's for every bands x domain layout. psis must be
// the slice D.BandRange(m) selects (the whole state set when Bands is
// 1). As with the serial solver, slice elements may be replaced; read
// states through the slice afterwards.
func (es *DistEigenSolver) Solve(m int, psis []*grid.Grid) ([]float64, error) {
	return es.solve(m, psis, nil, 0)
}

// Resume continues a solve from a restored checkpoint (RestoreEigen).
// The restored states stand in for the caller's psis slice; the solver
// skips the initial orthonormalization — the checkpointed states are
// already the post-Rayleigh–Ritz basis, and renormalizing them would
// perturb the bits an undisturbed run produces. The returned slice
// holds the final states.
func (es *DistEigenSolver) Resume(rs *EigenRestart) ([]float64, []*grid.Grid, error) {
	eig, err := es.solve(rs.States, rs.Psis, rs.Prev, rs.Iteration)
	return eig, rs.Psis, err
}

func (es *DistEigenSolver) solve(m int, psis []*grid.Grid, resumePrev []float64, start int) ([]float64, error) {
	if m < 1 {
		return nil, fmt.Errorf("gpaw: no states to solve")
	}
	d := es.H.D
	defer d.Cart.TraceRank().Region("eigen.solve").End()
	if lo, hi := d.BandRange(m); hi-lo != len(psis) {
		return nil, fmt.Errorf("gpaw: band group %d holds %d of %d states, want %d",
			d.Band, len(psis), m, hi-lo)
	}
	prev := make([]float64, m)
	if resumePrev != nil {
		copy(prev, resumePrev)
	} else {
		if err := d.orthonormalize(m, psis); err != nil {
			return nil, err
		}
		for i := range prev {
			prev[i] = math.Inf(1)
		}
	}
	tau := 1.0 / es.H.SpectralBound()
	outs := make([]*grid.Grid, len(psis))
	for i := range outs {
		outs[i] = grid.NewDims(psis[i].Dims(), psis[i].H)
	}
	lastDelta := math.Inf(1)
	for it := start + 1; it <= es.MaxIter; it++ {
		// Damped power step psi <- psi - tau*H*psi for this group's
		// states, one fused sweep each behind the approach's exchange
		// protocol.
		es.H.applyStates(outs, psis, -tau, 1)
		for i := range psis {
			psis[i], outs[i] = outs[i], psis[i]
		}
		if err := d.orthonormalize(m, psis); err != nil {
			return nil, err
		}
		eig, err := es.H.RayleighRitz(m, psis)
		if err != nil {
			return nil, err
		}
		maxd := 0.0
		for i, e := range eig {
			if dd := math.Abs(e - prev[i]); dd > maxd {
				maxd = dd
			}
			prev[i] = e
		}
		lastDelta = maxd
		if es.Ckpt.due(it) {
			if err := es.Ckpt.saveEigen(d, it, m, psis, prev); err != nil {
				return nil, err
			}
		}
		if maxd < es.Tol {
			return eig, nil
		}
	}
	return prev, errEigenNotConverged(es.MaxIter, lastDelta)
}

// --- distributed SCF -----------------------------------------------

// DistSCF runs the self-consistent field loop rank-parallel. Sys
// describes the global system (Vext is the global external potential,
// replicated on every rank); the result's grids are this rank's local
// sub-domains while eigenvalues, energies, iteration counts and
// residuals are identical on every rank — and bit-identical to the
// serial SCF.
type DistSCF struct {
	D       *Dist
	Sys     System
	Mix     float64
	Tol     float64
	MaxIter int
	// Ckpt, when set, snapshots the SCF state (density, effective
	// potential, this band group's states, eigenvalues, iteration
	// counter) every Ckpt.Every iterations; see checkpoint.go.
	Ckpt *Checkpointer
	// OnIteration, when set, is called on every rank at the top of each
	// SCF iteration, before any communication of that iteration. The
	// fault-injection harness uses it to kill a rank at a chosen
	// iteration; production callers may use it for progress reporting.
	OnIteration func(it int)
	// Guard, when set, runs the silent-data-corruption monitors each
	// iteration (see sdc.go); NewDistSCF arms one when d.ABFT is set.
	Guard *SDCGuard
}

// NewDistSCF builds a distributed SCF driver with the serial defaults.
func NewDistSCF(d *Dist, sys System) *DistSCF {
	s := &DistSCF{D: d, Sys: sys, Mix: 0.3, Tol: 1e-6, MaxIter: 60}
	if d.ABFT {
		s.Guard = &SDCGuard{}
	}
	return s
}

// states returns the number of doubly occupied orbitals.
func (s *DistSCF) states() int { return (s.Sys.Electrons + 1) / 2 }

// buildDensity mirrors SCF.buildDensity on the bands x domain layout:
// states circulate through the band communicator in ascending global
// order so every rank accumulates occ·|ψ|² in exactly the serial state
// order, then the normalization sum reduces exactly over the domain.
// The returned density is replicated across band groups.
func (s *DistSCF) buildDensity(m int, psis []*grid.Grid) *grid.Grid {
	d := s.D
	defer d.Cart.TraceRank().Region("scf.density").End()
	n := grid.NewDims(d.local, d.Decomp.Halo)
	dV := s.Sys.Spacing * s.Sys.Spacing * s.Sys.Spacing
	remaining := float64(s.Sys.Electrons)
	d.forEachBandState(m, psis, func(_ int, src *grid.Grid) {
		occ := math.Min(2, remaining)
		remaining -= occ
		n.AccumSquared(occ, src)
	})
	total := d.Sum(n) * dV
	if total > 0 {
		n.Scale(float64(s.Sys.Electrons) / total)
	}
	return n
}

// Run executes the distributed self-consistent loop, mirroring SCF.Run
// decision for decision (every reduced scalar is identical on every
// rank, so all ranks take the same branches).
func (s *DistSCF) Run() (*SCFResult, error) {
	return s.run(nil)
}

// Resume continues the self-consistent loop from a restored checkpoint
// (RestoreSCF), starting at iteration rs.Iteration+1. Because every
// reduction in the solver stack is exact and the restored state is a
// bit-exact re-tiling of the checkpointed one, the resumed run — on the
// same process grid, a shrunken one, or a grown one — produces results
// bit-identical to an undisturbed run, including the reported iteration
// count.
func (s *DistSCF) Resume(rs *SCFRestart) (*SCFResult, error) {
	if rs == nil {
		return nil, fmt.Errorf("gpaw: nil SCF restart state")
	}
	if rs.States != s.states() {
		return nil, fmt.Errorf("gpaw: checkpoint has %d states, system wants %d", rs.States, s.states())
	}
	if rs.Iteration >= s.MaxIter {
		return nil, fmt.Errorf("gpaw: checkpoint at iteration %d leaves no iterations below MaxIter %d", rs.Iteration, s.MaxIter)
	}
	return s.run(rs)
}

func (s *DistSCF) run(rs *SCFRestart) (*SCFResult, error) {
	if s.Sys.Electrons < 1 {
		return nil, fmt.Errorf("gpaw: %d electrons", s.Sys.Electrons)
	}
	if s.Sys.Vext == nil {
		return nil, fmt.Errorf("gpaw: missing external potential")
	}
	if s.Sys.BC != s.D.BC {
		return nil, fmt.Errorf("gpaw: system boundary %v != distributed context boundary %v", s.Sys.BC, s.D.BC)
	}
	if s.Sys.Dims != s.D.Decomp.Global {
		return nil, fmt.Errorf("gpaw: system dims %v != decomposed global %v", s.Sys.Dims, s.D.Decomp.Global)
	}
	d := s.D
	m := s.states()
	poisson := NewDistPoisson(d, s.Sys.Spacing)
	poisson.Tol = 1e-8
	vextLocal := d.ScatterReplicated(s.Sys.Vext)

	var psis []*grid.Grid
	var n, veff *grid.Grid
	var eig []float64
	start := 0
	if rs != nil {
		psis, n, veff, eig = rs.Psis, rs.N, rs.Veff, rs.Eig
		start = rs.Iteration
	} else {
		psis = d.InitGuessBand(m, [3]int{s.Sys.Dims[0], s.Sys.Dims[1], s.Sys.Dims[2]})
		veff = vextLocal.Clone()
	}
	for it := start + 1; it <= s.MaxIter; it++ {
		// One traced region per SCF iteration; the closure gives the span
		// a single exit covering the loop body's early returns.
		res, err := func() (*SCFResult, error) {
			defer d.Cart.TraceRank().Region("scf.iteration").End()
			if s.OnIteration != nil {
				s.OnIteration(it)
			}
			if s.Guard != nil {
				if s.Guard.Tamper != nil {
					s.Guard.Tamper(it, psis, n, veff)
				}
				if err := s.Guard.checkFields(d, it, psis, n, veff); err != nil {
					return nil, fmt.Errorf("gpaw: scf iteration %d: %w", it, err)
				}
			}
			h := NewDistHamiltonian(d, s.Sys.Spacing, veff)
			es := NewDistEigenSolver(h)
			es.Tol = 1e-7
			es.MaxIter = 600
			var err error
			eig, err = es.Solve(m, psis)
			if err != nil {
				var sdc *pblas.ErrSDCDetected
				if errors.As(err, &sdc) && s.Guard != nil {
					s.Guard.NoteABFT(d, sdc)
				}
				return nil, fmt.Errorf("gpaw: scf iteration %d: %w", it, err)
			}
			if s.Guard != nil {
				if err := s.Guard.checkEig(d, it, eig); err != nil {
					return nil, fmt.Errorf("gpaw: scf iteration %d: %w", it, err)
				}
			}
			newN := s.buildDensity(m, psis)
			var residual float64
			if n == nil {
				n = newN
				residual = math.Inf(1)
			} else {
				var acc detsum.Acc
				mixDensityAcc(n, newN, s.Mix, &acc)
				residual = math.Sqrt(d.reduceAcc(&acc))
			}
			if s.Guard != nil {
				if err := s.Guard.checkResidual(d, it, residual); err != nil {
					return nil, fmt.Errorf("gpaw: scf iteration %d: %w", it, err)
				}
			}
			vh, err := poisson.HartreePotential(n)
			if err != nil {
				return nil, fmt.Errorf("gpaw: scf iteration %d hartree: %w", it, err)
			}
			updateVeff(veff, vextLocal, vh, n)
			// Snapshot after the mix and potential update: (psis, n, veff,
			// eig, it) is the complete SCF state — the Hartree solve holds
			// no cross-iteration state. Saved before the convergence
			// branch, which is taken identically on every rank.
			if s.Ckpt.due(it) {
				if err := s.Ckpt.saveSCF(s, it, m, eig, psis, n, veff); err != nil {
					return nil, fmt.Errorf("gpaw: scf iteration %d checkpoint: %w", it, err)
				}
			}
			if residual < s.Tol {
				return &SCFResult{Eigenvalues: eig, TotalEnergy: bandEnergy(eig, s.Sys.Electrons),
					Density: n, VHartree: vh, Iterations: it, Residual: residual}, nil
			}
			if it == s.MaxIter {
				return &SCFResult{Eigenvalues: eig, TotalEnergy: bandEnergy(eig, s.Sys.Electrons),
						Density: n, VHartree: vh, Iterations: it, Residual: residual},
					fmt.Errorf("gpaw: SCF did not reach %g (residual %g)", s.Tol, residual)
			}
			return nil, nil
		}()
		if res != nil || err != nil {
			return res, err
		}
	}
	return nil, fmt.Errorf("gpaw: unreachable")
}
