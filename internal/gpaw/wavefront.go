package gpaw

import (
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/stencil"
)

// Pipelined wavefront SOR: the distributed lexicographic Gauss–Seidel
// sweep without the rank-0 gather.
//
// The serial sweep visits points in ascending (i, j, k) order; each
// update reads already-updated values on the -x/-y/-z sides and
// pre-sweep values on the +x/+y/+z sides (and across periodic wraps,
// whose halos are filled before the sweep starts). Because the
// operator's taps are axis-aligned, a rank's dependence on its upstream
// neighbours is exactly the last `radius` planes / rows / z-columns of
// their updated sub-domains:
//
//   - the -x neighbour's last radius planes, once, before the rank's
//     first local plane;
//   - per local plane i, the -y neighbour's last radius rows of its
//     plane i, and the -z neighbour's plane-i boundary column (the last
//     radius z values of each of its rows).
//
// So the sweep runs as a software pipeline over the process grid: every
// rank sweeps plane-by-plane with SORSweepPlanes, receiving updated
// upstream boundaries into its halo just before they are read and
// streaming its own boundaries downstream the moment a plane completes
// (mpi.Pipe lanes, FIFO per plane). Ranks ahead in the lexicographic
// order are already several planes further on — the wavefront. All
// pre-sweep +side and wrap halo values come from the ordinary halo
// exchange that precedes the sweep, exactly mirroring the serial
// fillHalos: periodic wrap reads see pre-sweep values even where the
// source interior has since been updated, because the serial kernel
// reads the stale halo copy, not the live interior.
//
// Every point therefore reads bit-for-bit the values the serial sweep
// reads, in a schedule that differs only between independent points —
// the distributed iterates are bitwise identical to SORSweep's
// (asserted by TestWavefrontSweepMatchesSerial and the SOR solver
// differential harness).

// wavefrontTag is the base tag of the sweep's pipeline lanes (one per
// dimension), inside the solver layer's tag space and clear of the
// engine's halo-exchange tags.
const wavefrontTag = distTag + 8

// sorWavefront holds the pipeline lanes and reusable boundary buffers
// of one rank for the lifetime of a solve — no per-iteration
// allocation.
type sorWavefront struct {
	d  *Dist
	op *stencil.Operator
	up [3]*mpi.Pipe // updated boundaries arriving from the -side neighbour
	dn [3]*mpi.Pipe // this rank's boundaries streaming to the +side neighbour
	bx []float64    // -x block boundary: radius planes over the local y*z footprint
	by []float64    // per-plane -y boundary: radius rows
	bz []float64    // per-plane -z boundary column
}

// newSORWavefront builds the rank's pipeline. Lanes exist only toward
// interior neighbours of the process grid: wrap-around neighbours read
// pre-sweep values, which the preceding halo exchange supplies, so the
// pipeline never crosses the periodic seam (that is what keeps it a DAG
// and deadlock-free).
func newSORWavefront(d *Dist, op *stencil.Operator) *sorWavefront {
	w := &sorWavefront{d: d, op: op}
	procs := d.Decomp.Procs
	for dim := 0; dim < 3; dim++ {
		upPeer, dnPeer := mpi.ProcNull, mpi.ProcNull
		if d.coord[dim] > 0 {
			c := d.coord
			c[dim]--
			upPeer = d.Cart.RankOf(c)
		}
		if d.coord[dim] < procs[dim]-1 {
			c := d.coord
			c[dim]++
			dnPeer = d.Cart.RankOf(c)
		}
		w.up[dim] = d.Cart.NewPipe(upPeer, wavefrontTag+dim)
		w.dn[dim] = d.Cart.NewPipe(dnPeer, wavefrontTag+dim)
	}
	t := op.R
	w.bx = make([]float64, t*d.local[1]*d.local[2])
	w.by = make([]float64, t*d.local[2])
	w.bz = make([]float64, d.local[1]*t)
	return w
}

// sweep performs one pipelined Gauss–Seidel sweep of op(phi) = rhs.
// phi's halos must hold pre-sweep values (one Dist.Exchange before the
// call); on return phi's interior equals the serial SORSweep result for
// the assembled global grid, bit for bit.
func (w *sorWavefront) sweep(phi, rhs *grid.Grid, omega float64) {
	defer w.d.Cart.TraceRank().Region("sor.wavefront").End()
	t := w.op.R
	w.up[0].Recv(w.bx)
	if w.up[0].Active() {
		phi.UnpackHalo(0, grid.Low, t, w.bx)
	}
	for i := 0; i < phi.Nx; i++ {
		w.up[1].Recv(w.by)
		if w.up[1].Active() {
			phi.UnpackPlaneHalo(i, 1, grid.Low, t, w.by)
		}
		w.up[2].Recv(w.bz)
		if w.up[2].Active() {
			phi.UnpackPlaneHalo(i, 2, grid.Low, t, w.bz)
		}
		w.op.SORSweepPlanes(phi, rhs, omega, i, i+1)
		// One plane of modeled compute per pipeline stage, charged
		// before the downstream sends so the wavefront's fill latency
		// shows in virtual time.
		w.d.chargePoints(phi.Ny * phi.Nz)
		if w.dn[1].Active() {
			phi.PackPlaneFace(i, 1, grid.High, t, w.by)
			w.dn[1].Send(w.by)
		}
		if w.dn[2].Active() {
			phi.PackPlaneFace(i, 2, grid.High, t, w.bz)
			w.dn[2].Send(w.bz)
		}
	}
	if w.dn[0].Active() {
		phi.PackFace(0, grid.High, t, w.bx)
		w.dn[0].Send(w.bx)
	}
}
