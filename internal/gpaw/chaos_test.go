package gpaw

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// The chaos differential harness: for every solver approach, killing
// any single rank at any checkpointed SCF iteration must yield recovery
// onto the surviving process grid with final energies, eigenvalues,
// iteration counts and solution fields bitwise identical to the
// fault-free (serial) run — and a typed error, never a hang, when
// recovery is disabled.

// chaosWant runs the serial reference SCF the recovered runs are
// compared against.
func chaosWant(t *testing.T, sys System) *SCFResult {
	t.Helper()
	scf := NewSCF(sys)
	scf.Tol = 1e-4
	want, err := scf.Run()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// chaosKillIters returns the checkpointed iterations the harness kills
// at: the first, the middle and the last iteration of the fault-free
// run.
func chaosKillIters(want *SCFResult) []int {
	iters := []int{1, (want.Iterations + 1) / 2, want.Iterations}
	uniq := iters[:0]
	for _, k := range iters {
		if len(uniq) == 0 || uniq[len(uniq)-1] != k {
			uniq = append(uniq, k)
		}
	}
	return uniq
}

// chaosKillRanks returns the victim ranks exercised at p ranks: the
// first non-root rank and the last rank.
func chaosKillRanks(p int) []int {
	if p < 3 {
		return []int{p - 1}
	}
	return []int{1, p - 1}
}

func TestChaosSCFDifferential(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	want := chaosWant(t, sys)

	ranks := rankCounts(t)
	if len(ranks) == 4 {
		// Default tier-1 sweep: the CI chaos matrix pins single rank
		// counts (including 8) through DIST_RANKS.
		ranks = []int{2, 4}
	}
	for _, p := range ranks {
		if p < 2 {
			continue
		}
		procs := scfLayoutsFor(p)[0]
		if !feasible(global, procs, 2) {
			continue
		}
		for ai, a := range core.Approaches {
			killRanks := chaosKillRanks(p)
			killIters := chaosKillIters(want)
			if (testing.Short() || len(ranks) > 1) && ai > 0 {
				// Full kill matrix on the first approach; the others
				// keep one representative kill so every exchange
				// protocol still sees failure + recovery.
				killRanks = killRanks[:1]
				killIters = killIters[1:2]
			}
			for _, killRank := range killRanks {
				for _, killIt := range killIters {
					store := NewMemStore()
					err := mpi.Run(p, modeFor(a), func(c *mpi.Comm) {
						ft := FTConfig{
							Store:   store,
							Every:   1,
							Recover: true,
							Configure: func(s *DistSCF) {
								s.Tol = 1e-4
								s.OnIteration = func(it int) {
									if it == killIt && c.Rank() == killRank {
										c.Fail()
									}
								}
							},
							OnResult: func(d *Dist, res *SCFResult) {
								checkIdentical(t, d, res.Density, want.Density, "chaos SCF density", procs, a)
								checkIdentical(t, d, res.VHartree, want.VHartree, "chaos SCF vH", procs, a)
							},
						}
						cfg := DistConfig{Global: global, Procs: procs, Halo: 2, BC: sys.BC,
							Approach: a, Threads: threadsFor(a), Batch: 2}
						res, err := RunSCFFT(c, cfg, sys, ft)
						if err != nil {
							panic(err)
						}
						if res.TotalEnergy != want.TotalEnergy {
							t.Errorf("p=%d a=%v kill(r=%d,it=%d): energy %.17g, serial %.17g",
								p, a, killRank, killIt, res.TotalEnergy, want.TotalEnergy)
						}
						if res.Iterations != want.Iterations || res.Residual != want.Residual {
							t.Errorf("p=%d a=%v kill(r=%d,it=%d): (it,res)=(%d,%.17g), serial (%d,%.17g)",
								p, a, killRank, killIt, res.Iterations, res.Residual, want.Iterations, want.Residual)
						}
						for i := range res.Eigenvalues {
							if res.Eigenvalues[i] != want.Eigenvalues[i] {
								t.Errorf("p=%d a=%v kill(r=%d,it=%d): eig %d = %.17g, serial %.17g",
									p, a, killRank, killIt, i, res.Eigenvalues[i], want.Eigenvalues[i])
							}
						}
					})
					if err != nil {
						t.Errorf("p=%d a=%v kill(r=%d,it=%d): %v", p, a, killRank, killIt, err)
					}
				}
			}
		}
	}
}

// TestChaosNoRecoveryTypedError: with recovery disabled, every survivor
// gets the typed rank failure as an error — never a hang (the operation
// timeout is armed as a backstop; it firing would fail the run with a
// pending-op dump).
func TestChaosNoRecoveryTypedError(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	const p = 4
	procs := scfLayoutsFor(p)[0]
	store := NewMemStore()
	err := mpi.Run(p, mpi.ThreadSingle, func(c *mpi.Comm) {
		c.World().SetOpTimeout(30 * time.Second)
		ft := FTConfig{
			Store: store, Every: 1, Recover: false,
			Configure: func(s *DistSCF) {
				s.Tol = 1e-4
				s.OnIteration = func(it int) {
					if it == 2 && c.Rank() == 1 {
						c.Fail()
					}
				}
			},
		}
		cfg := DistConfig{Global: global, Procs: procs, Halo: 2, BC: sys.BC,
			Approach: core.FlatOptimized, Threads: 1, Batch: 2}
		_, err := RunSCFFT(c, cfg, sys, ft)
		var rf *mpi.ErrRankFailed
		if !errors.As(err, &rf) {
			t.Errorf("rank %d: error %v, want a *mpi.ErrRankFailed", c.Rank(), err)
		} else if rf.Rank != 1 {
			t.Errorf("rank %d: failure blames rank %d, want 1", c.Rank(), rf.Rank)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRestartBitIdentical: a checkpoint written on one
// process grid resumes on another — fewer ranks (shrink) and more
// ranks (grow) — with results bitwise identical to the serial run.
func TestCheckpointRestartBitIdentical(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	want := chaosWant(t, sys)

	writeProcs := topology.Dims{1, 2, 2}
	store := NewMemStore()
	if err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
		d, err := NewDist(c, DistConfig{Global: global, Procs: writeProcs, Halo: 2, BC: sys.BC,
			Approach: core.FlatOptimized, Threads: 1, Batch: 2})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		s := NewDistSCF(d, sys)
		s.Tol = 1e-4
		s.Ckpt = &Checkpointer{Store: store, Every: 1}
		if _, err := s.Run(); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	steps, err := store.Steps()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != want.Iterations {
		t.Fatalf("%d committed steps, want one per iteration (%d)", len(steps), want.Iterations)
	}

	resume := steps[len(steps)/2]
	for _, tc := range []struct {
		ranks int
		procs topology.Dims
	}{
		{2, topology.Dims{1, 1, 2}}, // shrink
		{8, topology.Dims{2, 2, 2}}, // grow
	} {
		if err := mpi.Run(tc.ranks, mpi.ThreadSingle, func(c *mpi.Comm) {
			d, err := NewDist(c, DistConfig{Global: global, Procs: tc.procs, Halo: 2, BC: sys.BC,
				Approach: core.FlatOptimized, Threads: 1, Batch: 2})
			if err != nil {
				panic(err)
			}
			defer d.Close()
			rs, err := RestoreSCF(d, store, resume)
			if err != nil {
				panic(err)
			}
			s := NewDistSCF(d, sys)
			s.Tol = 1e-4
			res, err := s.Resume(rs)
			if err != nil {
				panic(err)
			}
			if res.TotalEnergy != want.TotalEnergy || res.Iterations != want.Iterations ||
				res.Residual != want.Residual {
				t.Errorf("resume on %v from step %d: (E,it,res)=(%.17g,%d,%.17g), serial (%.17g,%d,%.17g)",
					tc.procs, resume, res.TotalEnergy, res.Iterations, res.Residual,
					want.TotalEnergy, want.Iterations, want.Residual)
			}
			checkIdentical(t, d, res.Density, want.Density, "resumed density", tc.procs, core.FlatOptimized)
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEigenCheckpointResume covers the standalone eigensolver's
// checkpoint path: resume on a different layout reproduces the
// undisturbed eigenvalues bitwise.
func TestEigenCheckpointResume(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	h := 0.5
	vext := HarmonicPotential(global, h, 1)
	ham := NewHamiltonian(h, vext, Dirichlet)
	es := NewEigenSolver(ham)
	es.Tol = 1e-7
	es.MaxIter = 500
	want, err := es.Solve(InitGuess(3, [3]int{8, 8, 8}, 2))
	if err != nil {
		t.Fatal(err)
	}

	store := NewMemStore()
	solve := func(c *mpi.Comm, procs topology.Dims, ck *Checkpointer, fromStore bool) []float64 {
		d, err := NewDist(c, DistConfig{Global: global, Procs: procs, Halo: 2, BC: Dirichlet,
			Approach: core.FlatOptimized, Threads: 1, Batch: 2})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		vloc := d.ScatterReplicated(vext)
		des := NewDistEigenSolver(NewDistHamiltonian(d, h, vloc))
		des.Tol = 1e-7
		des.MaxIter = 500
		des.Ckpt = ck
		if fromStore {
			steps, err := store.Steps()
			if err != nil || len(steps) == 0 {
				panic("no committed eigen checkpoints")
			}
			rs, err := RestoreEigen(d, store, steps[len(steps)/2])
			if err != nil {
				panic(err)
			}
			eig, _, err := des.Resume(rs)
			if err != nil {
				panic(err)
			}
			return eig
		}
		dpsis := make([]*grid.Grid, 3)
		dims := [3]int{8, 8, 8}
		for s := range dpsis {
			g := d.NewLocalGrid()
			s := s
			off := d.Offset()
			g.FillFunc(func(i, j, k int) float64 {
				return guessValue(s, dims, off[0]+i, off[1]+j, off[2]+k)
			})
			dpsis[s] = g
		}
		eig, err := des.Solve(3, dpsis)
		if err != nil {
			panic(err)
		}
		return eig
	}

	if err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
		eig := solve(c, topology.Dims{2, 2, 1}, &Checkpointer{Store: store, Every: 5}, false)
		for i := range eig {
			if eig[i] != want[i] {
				t.Errorf("checkpointed solve: eig %d = %.17g, serial %.17g", i, eig[i], want[i])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := mpi.Run(2, mpi.ThreadSingle, func(c *mpi.Comm) {
		eig := solve(c, topology.Dims{1, 2, 1}, nil, true)
		for i := range eig {
			if eig[i] != want[i] {
				t.Errorf("resumed solve: eig %d = %.17g, serial %.17g", i, eig[i], want[i])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointStores covers both Store implementations: round trip,
// uncommitted steps staying invisible, and corruption detection.
func TestCheckpointStores(t *testing.T) {
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Store{NewMemStore(), dir} {
		sh := &shard{Kind: shardKindSCF, Iteration: 3, Global: topology.Dims{4, 4, 4},
			Local: topology.Dims{4, 4, 4}, Spacing: 0.5, States: 1, BandHi: 1,
			Scalars: []float64{1.5}, Fields: [][]float64{make([]float64, 64), make([]float64, 64), make([]float64, 64)}}
		sh.Fields[0][7] = 42
		data := sh.encode()
		if err := st.PutShard(3, 0, data); err != nil {
			t.Fatal(err)
		}
		if steps, _ := st.Steps(); len(steps) != 0 {
			t.Errorf("%T: uncommitted step visible: %v", st, steps)
		}
		if err := st.Commit(3, []byte(`{"version":1,"kind":1,"step":3,"ranks":1,"states":1,"global":[4,4,4],"sums":[]}`)); err != nil {
			t.Fatal(err)
		}
		if step, ok, _ := LatestStep(st); !ok || step != 3 {
			t.Errorf("%T: latest step (%d,%v), want (3,true)", st, step, ok)
		}
		back, err := st.GetShard(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeShard(back)
		if err != nil {
			t.Fatalf("%T: decode round trip: %v", st, err)
		}
		if got.Iteration != 3 || got.Fields[0][7] != 42 || got.Scalars[0] != 1.5 {
			t.Errorf("%T: round trip mangled the shard", st)
		}
		// Flip one payload byte: the CRC must catch it.
		bad := append([]byte(nil), back...)
		bad[len(bad)/2] ^= 0x40
		if _, err := decodeShard(bad); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%T: corrupted shard decoded: %v", st, err)
		}
	}
}

// TestChooseProcs pins the deterministic shrink-layout choices the
// recovery path depends on.
func TestChooseProcs(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	for _, tc := range []struct {
		n      int
		procs  topology.Dims
		active int
	}{
		{1, topology.Dims{1, 1, 1}, 1},
		{3, topology.Dims{1, 1, 3}, 3},
		{7, topology.Dims{1, 2, 3}, 6}, // 7 has no feasible triple: halo 2 forbids a 7-way split of 8
		{8, topology.Dims{2, 2, 2}, 8},
	} {
		procs, active := chooseProcs(global, tc.n, 2)
		if procs != tc.procs || active != tc.active {
			t.Errorf("chooseProcs(%v, %d): (%v, %d), want (%v, %d)",
				global, tc.n, procs, active, tc.procs, tc.active)
		}
	}
}
