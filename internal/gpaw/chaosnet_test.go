package gpaw

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// The chaos-net differential harness: the full SCF stack running over a
// lossy transport (message drops, duplicates, reordering, payload
// bit-flips, delay spikes — healed by the mpi reliability sublayer)
// must produce energies, eigenvalues, iteration counts and fields
// bitwise identical to the fault-free serial run, for every fault
// class, seed, rank count and approach. A second battery covers the
// silent-data-corruption path: injected bit-rot in solver state or in
// the newest checkpoint generation must be detected and rolled back,
// again to bit-identical results.

// msgFaultClasses enumerates the injectable fault classes with the
// reliability counter each one must have incremented after a faulty run.
var msgFaultClasses = []struct {
	name    string
	faults  func(seed int64) *mpi.MsgFaults
	counter func(mpi.RelStats) int64
}{
	{"drop", func(s int64) *mpi.MsgFaults { return &mpi.MsgFaults{Seed: s, Drop: 0.02} },
		func(r mpi.RelStats) int64 { return r.Dropped }},
	{"dup", func(s int64) *mpi.MsgFaults { return &mpi.MsgFaults{Seed: s, Dup: 0.05} },
		func(r mpi.RelStats) int64 { return r.Duplicated }},
	{"reorder", func(s int64) *mpi.MsgFaults { return &mpi.MsgFaults{Seed: s, Reorder: 0.1} },
		func(r mpi.RelStats) int64 { return r.Reordered }},
	{"bitflip", func(s int64) *mpi.MsgFaults { return &mpi.MsgFaults{Seed: s, Corrupt: 0.02} },
		func(r mpi.RelStats) int64 { return r.Corrupted }},
	{"delay", func(s int64) *mpi.MsgFaults { return &mpi.MsgFaults{Seed: s, DelayProb: 0.05} },
		func(r mpi.RelStats) int64 { return r.Delayed }},
}

// chaosNetSeeds are the per-class fault seeds of the differential
// matrix.
var chaosNetSeeds = []int64{1, 2, 3}

func TestChaosNetSCFDifferential(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	want := chaosWant(t, sys)

	ranks := rankCounts(t)
	if len(ranks) == 4 {
		// Default tier-1 sweep: the CI chaosnet matrix pins single rank
		// counts (2, 4, 8) through DIST_RANKS; locally cover the serial
		// world and one parallel one.
		ranks = []int{1, 4}
	}
	for _, p := range ranks {
		procs := scfLayoutsFor(p)[0]
		if !feasible(global, procs, 2) {
			continue
		}
		for ai, a := range core.Approaches {
			classes, seeds := msgFaultClasses, chaosNetSeeds
			if (testing.Short() || len(ranks) > 1) && ai > 0 {
				// Full class x seed matrix on the first approach; the
				// other exchange protocols each keep one rotating
				// representative class so every protocol still runs over
				// every kind of lossy link across the approach sweep.
				classes = msgFaultClasses[ai%len(msgFaultClasses) : ai%len(msgFaultClasses)+1]
				seeds = chaosNetSeeds[:1]
			}
			for _, cl := range classes {
				for _, seed := range seeds {
					plan := &mpi.FaultPlan{Msg: cl.faults(seed)}
					err := mpi.RunWithFaults(p, modeFor(a), plan, func(c *mpi.Comm) {
						d, err := NewDist(c, DistConfig{Global: global, Procs: procs, Halo: 2,
							BC: sys.BC, Approach: a, Threads: threadsFor(a), Batch: 2})
						if err != nil {
							panic(err)
						}
						defer d.Close()
						s := NewDistSCF(d, sys)
						s.Tol = 1e-4
						res, err := s.Run()
						if err != nil {
							panic(err)
						}
						if res.TotalEnergy != want.TotalEnergy || res.Iterations != want.Iterations ||
							res.Residual != want.Residual {
							t.Errorf("p=%d a=%v %s seed=%d: (E,it,res)=(%.17g,%d,%.17g), serial (%.17g,%d,%.17g)",
								p, a, cl.name, seed, res.TotalEnergy, res.Iterations, res.Residual,
								want.TotalEnergy, want.Iterations, want.Residual)
						}
						for i := range res.Eigenvalues {
							if res.Eigenvalues[i] != want.Eigenvalues[i] {
								t.Errorf("p=%d a=%v %s seed=%d: eig %d = %.17g, serial %.17g",
									p, a, cl.name, seed, i, res.Eigenvalues[i], want.Eigenvalues[i])
							}
						}
						checkIdentical(t, d, res.Density, want.Density, "chaosnet density", procs, a)
						checkIdentical(t, d, res.VHartree, want.VHartree, "chaosnet vH", procs, a)
						c.Barrier()
						if c.Rank() == 0 {
							tot := c.World().NetRelTotals()
							if tot.Failed != 0 {
								t.Errorf("p=%d a=%v %s seed=%d: %d deliveries failed under a retry budget meant to absorb this rate",
									p, a, cl.name, seed, tot.Failed)
							}
							// With any real traffic the class's injection
							// counter must have ticked (a one-rank world
							// sends nothing, so nothing can be injected).
							if tot.Sent >= 100 && cl.counter(tot) == 0 {
								t.Errorf("p=%d a=%v %s seed=%d: %d frames sent but no %s faults injected",
									p, a, cl.name, seed, tot.Sent, cl.name)
							}
						}
					})
					if err != nil {
						t.Errorf("p=%d a=%v %s seed=%d: %v", p, a, cl.name, seed, err)
					}
				}
			}
		}
	}
}

// TestChaosNetCleanRunCountersZero: without armed message faults the
// reliability counters — including the copies surfaced through the
// engine's Stats — stay exactly zero.
func TestChaosNetCleanRunCountersZero(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	procs := scfLayoutsFor(4)[0]
	if err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
		d, err := NewDist(c, DistConfig{Global: global, Procs: procs, Halo: 2, BC: sys.BC,
			Approach: core.FlatOptimized, Threads: 1, Batch: 2})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		s := NewDistSCF(d, sys)
		s.Tol = 1e-4
		if _, err := s.Run(); err != nil {
			panic(err)
		}
		if tot := c.World().NetRelTotals(); tot != (mpi.RelStats{}) {
			t.Errorf("rank %d: clean run has nonzero reliability counters: %+v", c.Rank(), tot)
		}
		st := d.eng.Stats()
		if st.NetRetransmits != 0 || st.NetDupSuppressed != 0 || st.NetCRCRejected != 0 {
			t.Errorf("rank %d: clean run surfaced nonzero net counters in engine stats: %+v", c.Rank(), st)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosNetEngineStatsSurface: under a dropping link the retransmit
// counter must surface through core.Engine.Stats on at least one rank.
func TestChaosNetEngineStatsSurface(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	procs := scfLayoutsFor(4)[0]
	plan := &mpi.FaultPlan{Msg: &mpi.MsgFaults{Seed: 7, Drop: 0.05, Dup: 0.05, Corrupt: 0.02}}
	if err := mpi.RunWithFaults(4, mpi.ThreadSingle, plan, func(c *mpi.Comm) {
		d, err := NewDist(c, DistConfig{Global: global, Procs: procs, Halo: 2, BC: sys.BC,
			Approach: core.FlatOptimized, Threads: 1, Batch: 2})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		s := NewDistSCF(d, sys)
		s.Tol = 1e-4
		if _, err := s.Run(); err != nil {
			panic(err)
		}
		c.Barrier()
		st := d.eng.Stats()
		in := []float64{float64(st.NetRetransmits), float64(st.NetDupSuppressed), float64(st.NetCRCRejected)}
		out := make([]float64, len(in))
		c.Allreduce(mpi.OpSum, in, out)
		if c.Rank() == 0 && (out[0] == 0 || out[1] == 0 || out[2] == 0) {
			t.Errorf("engine stats under faults: retransmits=%g dupSuppressed=%g crcRejected=%g, want all nonzero",
				out[0], out[1], out[2])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// corruptNewest bit-rots the newest committed generation of a store:
// MemStore through its injector, DirStore by flipping a byte of a shard
// file on disk.
func corruptNewest(t *testing.T, store Store, dir string) int {
	t.Helper()
	steps, err := store.Steps()
	if err != nil || len(steps) < 2 {
		t.Fatalf("need >= 2 committed generations to corrupt one, have %v (%v)", steps, err)
	}
	last := steps[len(steps)-1]
	switch st := store.(type) {
	case *MemStore:
		if err := st.Corrupt(last, 0, 200); err != nil {
			t.Fatal(err)
		}
	case *DirStore:
		p := filepath.Join(dir, fmt.Sprintf("step-%06d", last), "shard-0000.ckpt")
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x40
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown store %T", store)
	}
	return last
}

// TestChaosNetCheckpointFallback: with the newest checkpoint generation
// bit-rotted on the store, recovery must fall back one generation —
// LatestGoodStep rejects the rotten one by CRC64 — and the resumed run
// still matches the serial reference bitwise. Covers both stores and
// the keep-last-K retention that makes the fallback generation exist.
func TestChaosNetCheckpointFallback(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	want := chaosWant(t, sys)
	if want.Iterations < 3 {
		t.Skipf("reference run converged in %d iterations; fallback needs 2 retained generations", want.Iterations)
	}
	procs := scfLayoutsFor(4)[0]

	dirRoot := t.TempDir()
	dirStore, err := NewDirStore(dirRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		store Store
		dir   string
	}{
		{"mem", NewMemStore(), ""},
		{"dir", dirStore, dirRoot},
	} {
		// Phase 1: a full checkpointed run with keep-last-3 retention.
		if err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
			d, err := NewDist(c, DistConfig{Global: global, Procs: procs, Halo: 2, BC: sys.BC,
				Approach: core.FlatOptimized, Threads: 1, Batch: 2})
			if err != nil {
				panic(err)
			}
			defer d.Close()
			s := NewDistSCF(d, sys)
			s.Tol = 1e-4
			s.Ckpt = &Checkpointer{Store: tc.store, Every: 1, Keep: 3}
			if _, err := s.Run(); err != nil {
				panic(err)
			}
		}); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		steps, err := tc.store.Steps()
		if err != nil {
			t.Fatal(err)
		}
		if len(steps) != 3 {
			t.Errorf("%s: retention kept %v, want the last 3 generations", tc.name, steps)
		}

		// Bit-rot the newest generation: validation must reject it and
		// the good-step walk must land one generation back.
		last := corruptNewest(t, tc.store, tc.dir)
		if ValidateStep(tc.store, last) == nil {
			t.Fatalf("%s: corrupted generation %d still validates", tc.name, last)
		}
		goodStep, fellBack, ok, err := LatestGoodStep(tc.store)
		if err != nil || !ok || !fellBack || goodStep != steps[len(steps)-2] {
			t.Fatalf("%s: LatestGoodStep = (%d,%v,%v,%v), want (%d,true,true,nil)",
				tc.name, goodStep, fellBack, ok, err, steps[len(steps)-2])
		}

		// Phase 2: recovery through the FT driver restores the fallback
		// generation and still reproduces the serial run bitwise.
		if err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
			ft := FTConfig{Store: tc.store, Every: 1, Keep: 3, Recover: true,
				Configure: func(s *DistSCF) { s.Tol = 1e-4 }}
			cfg := DistConfig{Global: global, Procs: procs, Halo: 2, BC: sys.BC,
				Approach: core.FlatOptimized, Threads: 1, Batch: 2}
			res, err := RunSCFFT(c, cfg, sys, ft)
			if err != nil {
				panic(err)
			}
			if res.TotalEnergy != want.TotalEnergy || res.Iterations != want.Iterations ||
				res.Residual != want.Residual {
				t.Errorf("%s fallback resume: (E,it,res)=(%.17g,%d,%.17g), serial (%.17g,%d,%.17g)",
					tc.name, res.TotalEnergy, res.Iterations, res.Residual,
					want.TotalEnergy, want.Iterations, want.Residual)
			}
		}); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// TestABFTSCFCleanBitIdentical: arming ABFT (checked dense kernels plus
// the SDC guard) must not perturb a single bit of a clean run and must
// record zero detections — the no-false-positive half of the SDC
// contract.
func TestABFTSCFCleanBitIdentical(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	want := chaosWant(t, sys)
	procs := scfLayoutsFor(4)[0]
	if err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
		d, err := NewDist(c, DistConfig{Global: global, Procs: procs, Halo: 2, BC: sys.BC,
			Approach: core.FlatOptimized, Threads: 1, Batch: 2, ABFT: true})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		s := NewDistSCF(d, sys)
		s.Tol = 1e-4
		if s.Guard == nil {
			panic("ABFT config did not arm the SDC guard")
		}
		res, err := s.Run()
		if err != nil {
			panic(err)
		}
		if res.TotalEnergy != want.TotalEnergy || res.Iterations != want.Iterations ||
			res.Residual != want.Residual {
			t.Errorf("ABFT clean run: (E,it,res)=(%.17g,%d,%.17g), serial (%.17g,%d,%.17g)",
				res.TotalEnergy, res.Iterations, res.Residual,
				want.TotalEnergy, want.Iterations, want.Residual)
		}
		checkIdentical(t, d, res.Density, want.Density, "ABFT clean density", procs, core.FlatOptimized)
		if s.Guard.Detections != 0 {
			t.Errorf("rank %d: clean ABFT run recorded %d detections", c.Rank(), s.Guard.Detections)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSDCRollbackDifferential: a bit flip injected into live solver
// state must be detected by the SDC guard on every rank, rolled back to
// the last good checkpoint by the FT driver, and the completed run must
// be bitwise identical to the fault-free serial reference.
func TestSDCRollbackDifferential(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	want := chaosWant(t, sys)
	if want.Iterations < 3 {
		t.Skipf("reference run converged in %d iterations; injection at iteration 3 needs more", want.Iterations)
	}
	procs := scfLayoutsFor(4)[0]
	store := NewMemStore()
	if err := mpi.Run(4, mpi.ThreadSingle, func(c *mpi.Comm) {
		inj := NewBitRotInjector(3)
		var guards []*SDCGuard
		ft := FTConfig{Store: store, Every: 1, Keep: 4, Recover: true,
			Configure: func(s *DistSCF) {
				s.Tol = 1e-4
				if c.Rank() == 1 {
					s.Guard.Tamper = inj
				}
				guards = append(guards, s.Guard)
			}}
		cfg := DistConfig{Global: global, Procs: procs, Halo: 2, BC: sys.BC,
			Approach: core.FlatOptimized, Threads: 1, Batch: 2, ABFT: true}
		res, err := RunSCFFT(c, cfg, sys, ft)
		if err != nil {
			panic(err)
		}
		if res.TotalEnergy != want.TotalEnergy || res.Iterations != want.Iterations ||
			res.Residual != want.Residual {
			t.Errorf("SDC rollback: (E,it,res)=(%.17g,%d,%.17g), serial (%.17g,%d,%.17g)",
				res.TotalEnergy, res.Iterations, res.Residual,
				want.TotalEnergy, want.Iterations, want.Residual)
		}
		for i := range res.Eigenvalues {
			if res.Eigenvalues[i] != want.Eigenvalues[i] {
				t.Errorf("SDC rollback: eig %d = %.17g, serial %.17g", i, res.Eigenvalues[i], want.Eigenvalues[i])
			}
		}
		// The corruption verdict is reached by a reduced indicator, so
		// EVERY rank must have recorded the detection, not just the
		// tampered one.
		total := 0
		for _, g := range guards {
			total += g.Detections
		}
		if total == 0 {
			t.Errorf("rank %d: injected bit-rot went undetected", c.Rank())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosNetFullStack: every defense at once — lossy transport, a
// rank death mid-run, AND a silent bit flip in solver state. The run
// must retransmit through the loss, shrink past the death, roll back
// past the corruption, and still land bitwise on the serial answer.
func TestChaosNetFullStack(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	sys := scfSystem(global, 0.7)
	want := chaosWant(t, sys)
	if want.Iterations < 3 {
		t.Skipf("reference run converged in %d iterations; the schedule needs more", want.Iterations)
	}
	for _, seed := range chaosNetSeeds {
		store := NewMemStore()
		plan := &mpi.FaultPlan{Msg: &mpi.MsgFaults{Seed: seed, Drop: 0.01, Dup: 0.02, Reorder: 0.05, Corrupt: 0.01}}
		err := mpi.RunWithFaults(4, mpi.ThreadSingle, plan, func(c *mpi.Comm) {
			inj := NewBitRotInjector(2)
			ft := FTConfig{Store: store, Every: 1, Keep: 3, Recover: true,
				Configure: func(s *DistSCF) {
					s.Tol = 1e-4
					if c.Rank() == 0 {
						s.Guard.Tamper = inj
					}
					prev := s.OnIteration
					s.OnIteration = func(it int) {
						if prev != nil {
							prev(it)
						}
						if it == 3 && c.Rank() == 3 {
							c.Fail()
						}
					}
				}}
			cfg := DistConfig{Global: global, Procs: scfLayoutsFor(4)[0], Halo: 2, BC: sys.BC,
				Approach: core.FlatOptimized, Threads: 1, Batch: 2, ABFT: true}
			res, err := RunSCFFT(c, cfg, sys, ft)
			if err != nil {
				panic(err)
			}
			if res.TotalEnergy != want.TotalEnergy || res.Iterations != want.Iterations ||
				res.Residual != want.Residual {
				t.Errorf("full stack seed=%d: (E,it,res)=(%.17g,%d,%.17g), serial (%.17g,%d,%.17g)",
					seed, res.TotalEnergy, res.Iterations, res.Residual,
					want.TotalEnergy, want.Iterations, want.Residual)
			}
		})
		if err != nil {
			t.Errorf("full stack seed=%d: %v", seed, err)
		}
	}
}
