package gpaw

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/grid"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Checkpoint/restart. Long SCF runs at Blue Gene scale survive node
// loss the way production GPAW deployments do: by periodically writing
// restart state and resuming from it. The design here is gather-free —
// every rank writes its own shard of the state (density, effective
// potential, its band slice of the wave-functions, the iteration
// counter), so checkpointing costs no global communication beyond one
// scalar gather for the commit record. Shards are self-describing
// (global extents, sub-domain box, band range), versioned and CRC-
// checksummed, so a restart may re-tile them onto ANY process grid and
// band layout — in particular onto the shrunken survivor grid after a
// rank failure. Restarted runs are bit-identical to undisturbed ones
// because every reduction in the solver stack goes through the exact
// internal/detsum transports: the recomputed iterations cannot drift,
// whatever the new decomposition.
//
// A checkpoint step becomes valid only when its manifest commits
// (two-phase: shards first, then the manifest naming their checksums),
// so a step interrupted by the very failure it is meant to survive is
// simply invisible to recovery.

// Store is the persistence layer a Checkpointer writes through. MemStore
// stands in for a shared parallel filesystem in tests (it outlives any
// rank); DirStore is the on-disk form. Implementations must be safe for
// concurrent use by all ranks.
type Store interface {
	// PutShard stores one rank's shard of a checkpoint step.
	PutShard(step, rank int, data []byte) error
	// GetShard retrieves one shard.
	GetShard(step, rank int) ([]byte, error)
	// Commit finalizes a step by storing its manifest; a step without a
	// manifest is invisible to Steps and recovery.
	Commit(step int, manifest []byte) error
	// Manifest returns a committed step's manifest.
	Manifest(step int) ([]byte, error)
	// Steps lists the committed steps in ascending order.
	Steps() ([]int, error)
}

// MemStore is an in-memory Store shared by all ranks of an in-process
// world — the test stand-in for the parallel filesystem, surviving the
// death of any rank goroutine.
type MemStore struct {
	mu        sync.Mutex
	shards    map[[2]int][]byte
	manifests map[int][]byte
}

// NewMemStore returns an empty in-memory checkpoint store.
func NewMemStore() *MemStore {
	return &MemStore{shards: make(map[[2]int][]byte), manifests: make(map[int][]byte)}
}

// PutShard implements Store.
func (s *MemStore) PutShard(step, rank int, data []byte) error {
	s.mu.Lock()
	s.shards[[2]int{step, rank}] = append([]byte(nil), data...)
	s.mu.Unlock()
	return nil
}

// GetShard implements Store.
func (s *MemStore) GetShard(step, rank int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.shards[[2]int{step, rank}]
	if !ok {
		return nil, fmt.Errorf("gpaw: checkpoint step %d shard %d not found", step, rank)
	}
	return append([]byte(nil), d...), nil
}

// Commit implements Store.
func (s *MemStore) Commit(step int, manifest []byte) error {
	s.mu.Lock()
	s.manifests[step] = append([]byte(nil), manifest...)
	s.mu.Unlock()
	return nil
}

// Manifest implements Store.
func (s *MemStore) Manifest(step int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[step]
	if !ok {
		return nil, fmt.Errorf("gpaw: checkpoint step %d not committed", step)
	}
	return append([]byte(nil), m...), nil
}

// Steps implements Store.
func (s *MemStore) Steps() ([]int, error) {
	s.mu.Lock()
	steps := make([]int, 0, len(s.manifests))
	for st := range s.manifests {
		steps = append(steps, st)
	}
	s.mu.Unlock()
	sort.Ints(steps)
	return steps, nil
}

// Drop implements StepDropper: the step's manifest and shards are
// removed.
func (s *MemStore) Drop(step int) error {
	s.mu.Lock()
	delete(s.manifests, step)
	for k := range s.shards {
		if k[0] == step {
			delete(s.shards, k)
		}
	}
	s.mu.Unlock()
	return nil
}

// Corrupt flips one byte of a stored shard — injected bit-rot for
// chaos tests of the retention/fallback machinery.
func (s *MemStore) Corrupt(step, rank int, byteIdx int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.shards[[2]int{step, rank}]
	if !ok {
		return fmt.Errorf("gpaw: checkpoint step %d shard %d not found", step, rank)
	}
	d[byteIdx%len(d)] ^= 0x40
	return nil
}

// DirStore persists checkpoints under a directory:
//
//	<dir>/step-NNNNNN/shard-NNNN.ckpt
//	<dir>/step-NNNNNN/MANIFEST.json
//
// The manifest is written to a temporary file and renamed, so a step is
// either fully committed or absent — an interrupted run can never leave
// a half-valid checkpoint behind.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) an on-disk checkpoint store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

func (s *DirStore) stepDir(step int) string {
	return filepath.Join(s.dir, fmt.Sprintf("step-%06d", step))
}

// writeFileSync writes data to path and fsyncs the file before closing,
// so the contents are durable — not just buffered in the page cache —
// by the time the call returns.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so metadata operations inside it (created
// files, renames) are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// PutShard implements Store. The shard is fsynced on write: the commit
// protocol assumes every shard of a step is durable before the manifest
// publishes the step, so the shard write itself must not linger in the
// page cache.
func (s *DirStore) PutShard(step, rank int, data []byte) error {
	dir := s.stepDir(step)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(dir, fmt.Sprintf("shard-%04d.ckpt", rank)), data); err != nil {
		return err
	}
	return syncDir(dir)
}

// GetShard implements Store.
func (s *DirStore) GetShard(step, rank int) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.stepDir(step), fmt.Sprintf("shard-%04d.ckpt", rank)))
}

// Commit implements Store: fsynced temp file + rename + directory
// fsync, the durable atomic publication. The temp file is synced before
// the rename (a rename can otherwise land before its data, leaving a
// committed-looking step with an empty manifest after power loss) and
// the directory after it (the rename itself is metadata that must
// reach the journal for the step to exist at all post-crash).
func (s *DirStore) Commit(step int, manifest []byte) error {
	dir := s.stepDir(step)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, "MANIFEST.json.tmp")
	if err := writeFileSync(tmp, manifest); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "MANIFEST.json")); err != nil {
		return err
	}
	return syncDir(dir)
}

// Manifest implements Store.
func (s *DirStore) Manifest(step int) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.stepDir(step), "MANIFEST.json"))
}

// Drop implements StepDropper. The manifest is removed first, so a
// crash mid-drop leaves an uncommitted (invisible) step rather than a
// committed one with missing shards.
func (s *DirStore) Drop(step int) error {
	dir := s.stepDir(step)
	if err := os.Remove(filepath.Join(dir, "MANIFEST.json")); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return os.RemoveAll(dir)
}

// Steps implements Store.
func (s *DirStore) Steps() ([]int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var steps []int
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "step-") {
			continue
		}
		st, err := strconv.Atoi(strings.TrimPrefix(name, "step-"))
		if err != nil {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, name, "MANIFEST.json")); err != nil {
			continue // uncommitted step: invisible
		}
		steps = append(steps, st)
	}
	sort.Ints(steps)
	return steps, nil
}

// LatestStep returns the newest committed checkpoint step, if any.
func LatestStep(st Store) (int, bool, error) {
	steps, err := st.Steps()
	if err != nil {
		return 0, false, err
	}
	if len(steps) == 0 {
		return 0, false, nil
	}
	return steps[len(steps)-1], true, nil
}

// StepDropper is the optional Store extension the Checkpointer's
// retention policy uses to prune old generations. Both MemStore and
// DirStore implement it; a store without it simply keeps everything.
type StepDropper interface {
	Drop(step int) error
}

// ValidateStep deep-checks one committed step: the manifest must parse
// and every shard must exist, match its recorded CRC64 and decode. This
// is what lets recovery distinguish a bit-rotted generation from a good
// one before committing to a restore.
func ValidateStep(st Store, step int) error {
	man, err := readManifest(st, step)
	if err != nil {
		return err
	}
	for r := 0; r < man.Ranks; r++ {
		data, err := st.GetShard(step, r)
		if err != nil {
			return fmt.Errorf("gpaw: checkpoint step %d shard %d: %w", step, r, err)
		}
		if len(data) < 16 {
			return fmt.Errorf("%w: step %d shard %d: %d bytes", ErrCheckpointCorrupt, step, r, len(data))
		}
		if r < len(man.Sums) {
			sum := crc64.Checksum(data[:len(data)-8], crcTable)
			if fmt.Sprintf("%016x", sum) != man.Sums[r] {
				return fmt.Errorf("%w: step %d shard %d checksum mismatch", ErrCheckpointCorrupt, step, r)
			}
		}
		if _, err := decodeShard(data); err != nil {
			return fmt.Errorf("step %d shard %d: %w", step, r, err)
		}
	}
	return nil
}

// LatestGoodStep returns the newest committed step that passes full
// CRC64 validation, walking back a generation at a time past bit-rotted
// or truncated ones. fellBack reports whether any newer generation was
// rejected — the signal behind the ckpt.fallback trace event.
func LatestGoodStep(st Store) (step int, fellBack, ok bool, err error) {
	steps, err := st.Steps()
	if err != nil {
		return 0, false, false, err
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if ValidateStep(st, steps[i]) == nil {
			return steps[i], i != len(steps)-1, true, nil
		}
	}
	return 0, len(steps) > 0, false, nil
}

// --- shard codec ----------------------------------------------------

const (
	shardMagic   = uint64(0x4750434b5f763100) // "GPCK_v1\0"
	shardVersion = 1

	shardKindSCF   = 1
	shardKindEigen = 2
)

// ErrCheckpointCorrupt wraps checksum and format failures detected when
// reading a shard back.
var ErrCheckpointCorrupt = errors.New("gpaw: corrupt checkpoint shard")

var crcTable = crc64.MakeTable(crc64.ECMA)

// shard is the decoded form of one rank's checkpoint piece. Fields are
// grid interiors in x-major order over the Local box at Off; an SCF
// shard's fields are [density, veff, psi(BandLo) .. psi(BandHi-1)], an
// eigen shard's are the psis alone.
type shard struct {
	Kind      int
	Iteration int
	Global    topology.Dims
	Off       topology.Coord
	Local     topology.Dims
	Spacing   float64
	BC        int
	States    int // m, the global state count
	BandLo    int // this shard's band slice [BandLo, BandHi)
	BandHi    int
	Scalars   []float64 // SCF: eigenvalues; eigen: previous Ritz values
	Fields    [][]float64
}

type shardWriter struct{ buf []byte }

func (w *shardWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}
func (w *shardWriter) i64(v int)     { w.u64(uint64(v)) }
func (w *shardWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *shardWriter) f64s(v []float64) {
	w.i64(len(v))
	for _, x := range v {
		w.f64(x)
	}
}

type shardReader struct {
	buf []byte
	pos int
	err error
}

func (r *shardReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrCheckpointCorrupt, r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}
func (r *shardReader) i64() int     { return int(r.u64()) }
func (r *shardReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *shardReader) f64s() []float64 {
	n := r.i64()
	// The length is bounded by the bytes actually remaining BEFORE any
	// allocation — and compared divided rather than multiplied, because
	// 8*n overflows for adversarial lengths (n ~ 1<<61 wraps negative,
	// passes a naive r.pos+8*n check, and the make() below would OOM on
	// garbage input).
	if r.err != nil || n < 0 || n > (len(r.buf)-r.pos)/8 {
		if r.err == nil {
			r.err = fmt.Errorf("%w: implausible vector length %d", ErrCheckpointCorrupt, n)
		}
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = r.f64()
	}
	return v
}

// encode serializes the shard with a trailing CRC64 of everything
// before it.
func (sh *shard) encode() []byte {
	w := &shardWriter{}
	w.u64(shardMagic)
	w.i64(shardVersion)
	w.i64(sh.Kind)
	w.i64(sh.Iteration)
	for d := 0; d < 3; d++ {
		w.i64(sh.Global[d])
	}
	for d := 0; d < 3; d++ {
		w.i64(sh.Off[d])
	}
	for d := 0; d < 3; d++ {
		w.i64(sh.Local[d])
	}
	w.f64(sh.Spacing)
	w.i64(sh.BC)
	w.i64(sh.States)
	w.i64(sh.BandLo)
	w.i64(sh.BandHi)
	w.f64s(sh.Scalars)
	w.i64(len(sh.Fields))
	for _, f := range sh.Fields {
		w.f64s(f)
	}
	w.u64(crc64.Checksum(w.buf, crcTable))
	return w.buf
}

// decodeShard parses and checksum-verifies an encoded shard.
func decodeShard(data []byte) (*shard, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCheckpointCorrupt, len(data))
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if got := crc64.Checksum(body, crcTable); got != sum {
		return nil, fmt.Errorf("%w: checksum %016x != recorded %016x", ErrCheckpointCorrupt, got, sum)
	}
	r := &shardReader{buf: body}
	if m := r.u64(); m != shardMagic {
		return nil, fmt.Errorf("%w: bad magic %016x", ErrCheckpointCorrupt, m)
	}
	if v := r.i64(); v != shardVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCheckpointCorrupt, v)
	}
	sh := &shard{Kind: r.i64(), Iteration: r.i64()}
	for d := 0; d < 3; d++ {
		sh.Global[d] = r.i64()
	}
	for d := 0; d < 3; d++ {
		sh.Off[d] = r.i64()
	}
	for d := 0; d < 3; d++ {
		sh.Local[d] = r.i64()
	}
	sh.Spacing = r.f64()
	sh.BC = r.i64()
	sh.States = r.i64()
	sh.BandLo = r.i64()
	sh.BandHi = r.i64()
	sh.Scalars = r.f64s()
	nf := r.i64()
	if r.err != nil {
		return nil, r.err
	}
	// Each field needs at least its 8-byte length prefix, so the count
	// is bounded by the bytes remaining — a garbage count can never
	// drive the allocation below past the input's own size.
	if nf < 0 || nf > (len(body)-r.pos)/8 {
		return nil, fmt.Errorf("%w: implausible field count %d", ErrCheckpointCorrupt, nf)
	}
	sh.Fields = make([][]float64, nf)
	for i := range sh.Fields {
		sh.Fields[i] = r.f64s()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpointCorrupt, len(body)-r.pos)
	}
	for d := 0; d < 3; d++ {
		if sh.Local[d] < 0 || sh.Local[d] > 1<<20 {
			return nil, fmt.Errorf("%w: implausible box %v", ErrCheckpointCorrupt, sh.Local)
		}
	}
	want := sh.Local.Count()
	for i, f := range sh.Fields {
		if len(f) != want {
			return nil, fmt.Errorf("%w: field %d has %d values for box %v", ErrCheckpointCorrupt, i, len(f), sh.Local)
		}
	}
	return sh, nil
}

// manifest is the commit record of a checkpoint step.
type manifest struct {
	Version int      `json:"version"`
	Kind    int      `json:"kind"`
	Step    int      `json:"step"`
	Ranks   int      `json:"ranks"`
	States  int      `json:"states"`
	Global  [3]int   `json:"global"`
	Sums    []string `json:"sums"` // per-rank shard CRC64, hex
}

func readManifest(st Store, step int) (*manifest, error) {
	raw, err := st.Manifest(step)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCheckpointCorrupt, err)
	}
	if m.Version != shardVersion {
		return nil, fmt.Errorf("%w: manifest version %d", ErrCheckpointCorrupt, m.Version)
	}
	return &m, nil
}

// --- checkpointer ---------------------------------------------------

// Checkpointer periodically snapshots solver state into a Store: every
// Every-th iteration (<= 1 means every iteration), each rank writes its
// own shard, the shard checksums gather to world rank 0 over the exact
// bit-transport, and rank 0 commits the manifest. The gather doubles as
// the completion barrier: by the time rank 0 holds all checksums, every
// shard of the step is in the store.
type Checkpointer struct {
	Store Store
	Every int
	// Keep bounds retention to the newest Keep committed generations
	// (<= 0 keeps everything). Retention must be > 1 for rollback to
	// have somewhere to fall back to when the newest generation is
	// rejected by CRC validation. Pruning needs the Store to implement
	// StepDropper; stores without it keep everything.
	Keep int
}

// due reports whether iteration it should be checkpointed.
func (ck *Checkpointer) due(it int) bool {
	if ck == nil || ck.Store == nil {
		return false
	}
	return ck.Every <= 1 || it%ck.Every == 0
}

// save writes one rank's shard and commits the step's manifest at world
// rank 0. The checksum travels through the float64 collective transport
// bit-exactly (Float64frombits/Float64bits round-trip every uint64).
func (ck *Checkpointer) save(d *Dist, sh *shard) error {
	sp := d.Cart.TraceRank().Begin("ckpt.save", trace.KindRegion)
	defer sp.End()
	data := sh.encode()
	step := sh.Iteration
	if err := ck.Store.PutShard(step, d.World.Rank(), data); err != nil {
		return fmt.Errorf("gpaw: checkpoint step %d: %w", step, err)
	}
	sum := crc64.Checksum(data[:len(data)-8], crcTable)
	in := [1]float64{math.Float64frombits(sum)}
	var out []float64
	if d.World.Rank() == 0 {
		out = make([]float64, d.World.Size())
	}
	d.World.Gather(0, in[:], out)
	if d.World.Rank() != 0 {
		return nil
	}
	man := manifest{Version: shardVersion, Kind: sh.Kind, Step: step, Ranks: d.World.Size(),
		States: sh.States, Global: [3]int{sh.Global[0], sh.Global[1], sh.Global[2]}}
	for _, b := range out {
		man.Sums = append(man.Sums, fmt.Sprintf("%016x", math.Float64bits(b)))
	}
	raw, err := json.Marshal(&man)
	if err != nil {
		return err
	}
	if err := ck.Store.Commit(step, raw); err != nil {
		return fmt.Errorf("gpaw: checkpoint step %d commit: %w", step, err)
	}
	ck.prune()
	return nil
}

// prune drops committed generations beyond the Keep newest. Runs at
// rank 0 only (the committer), after the new generation is durable —
// so a crash mid-prune can only leave extra generations, never too
// few.
func (ck *Checkpointer) prune() {
	if ck.Keep <= 0 {
		return
	}
	dr, ok := ck.Store.(StepDropper)
	if !ok {
		return
	}
	steps, err := ck.Store.Steps()
	if err != nil {
		return
	}
	for len(steps) > ck.Keep {
		// Best-effort: a failed drop leaves an extra generation, which
		// is safe.
		_ = dr.Drop(steps[0])
		steps = steps[1:]
	}
}

// saveSCF snapshots the SCF state after iteration it: mixed density,
// effective potential (the mixer's full state under linear mixing),
// this band group's wave-function slice, eigenvalues and the counter.
func (ck *Checkpointer) saveSCF(s *DistSCF, it, m int, eig []float64, psis []*grid.Grid, n, veff *grid.Grid) error {
	d := s.D
	lo, hi := d.BandRange(m)
	sh := &shard{Kind: shardKindSCF, Iteration: it, Global: d.Decomp.Global,
		Off: d.Offset(), Local: d.LocalDims(), Spacing: s.Sys.Spacing, BC: int(s.Sys.BC),
		States: m, BandLo: lo, BandHi: hi, Scalars: append([]float64(nil), eig...)}
	sh.Fields = append(sh.Fields, n.InteriorSlice(), veff.InteriorSlice())
	for _, p := range psis {
		sh.Fields = append(sh.Fields, p.InteriorSlice())
	}
	return ck.save(d, sh)
}

// saveEigen snapshots the standalone eigensolver state after iteration
// it: this band group's states and the previous Ritz values.
func (ck *Checkpointer) saveEigen(d *Dist, it, m int, psis []*grid.Grid, prev []float64) error {
	lo, hi := d.BandRange(m)
	sh := &shard{Kind: shardKindEigen, Iteration: it, Global: d.Decomp.Global,
		Off: d.Offset(), Local: d.LocalDims(),
		States: m, BandLo: lo, BandHi: hi, Scalars: append([]float64(nil), prev...)}
	for _, p := range psis {
		sh.Fields = append(sh.Fields, p.InteriorSlice())
	}
	return ck.save(d, sh)
}

// --- restore --------------------------------------------------------

// SCFRestart is a restored SCF state, ready for DistSCF.Resume on the
// Dist it was restored onto.
type SCFRestart struct {
	Iteration int
	States    int
	Eig       []float64
	Psis      []*grid.Grid
	N         *grid.Grid
	Veff      *grid.Grid
}

// EigenRestart is a restored standalone-eigensolver state for
// DistEigenSolver.Resume.
type EigenRestart struct {
	Iteration int
	States    int
	Prev      []float64
	Psis      []*grid.Grid
}

// copyShardBox copies the intersection of a shard's box with this
// rank's sub-domain from the shard field into the local grid.
func copyShardBox(dst *grid.Grid, dstOff topology.Coord, sh *shard, field []float64,
	lo topology.Coord, dims topology.Dims) {
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			srcPos := ((lo[0]-sh.Off[0]+i)*sh.Local[1]+(lo[1]-sh.Off[1]+j))*sh.Local[2] + (lo[2] - sh.Off[2])
			li, lj, lk := lo[0]-dstOff[0]+i, lo[1]-dstOff[1]+j, lo[2]-dstOff[2]
			row := dst.Index(li, lj, lk)
			copy(dst.Data()[row:row+dims[2]], field[srcPos:srcPos+dims[2]])
		}
	}
}

// restore re-tiles a committed step's shards onto the Dist: every rank
// reads the manifest and, shard by shard, copies the intersection of
// the old sub-domain boxes with its new one (and of the old band
// slices with its new one) — gather-free, exactly like a
// grid.Redistribute whose source layout happens to live in the store.
// kind selects SCF or eigen shards; the per-state destination grids are
// allocated here.
func restore(d *Dist, st Store, step, kind int) (*shard, []*grid.Grid, []*grid.Grid, error) {
	sp := d.Cart.TraceRank().Begin("ckpt.restore", trace.KindRegion)
	defer sp.End()
	man, err := readManifest(st, step)
	if err != nil {
		return nil, nil, nil, err
	}
	if man.Kind != kind {
		return nil, nil, nil, fmt.Errorf("gpaw: checkpoint step %d is kind %d, want %d", step, man.Kind, kind)
	}
	if topology.Dims(man.Global) != d.Decomp.Global {
		return nil, nil, nil, fmt.Errorf("gpaw: checkpoint global %v != decomposed global %v", man.Global, d.Decomp.Global)
	}
	m := man.States
	myLo, myHi := d.BandRange(m)
	psis := make([]*grid.Grid, myHi-myLo)
	for i := range psis {
		psis[i] = d.NewLocalGrid()
	}
	nFixed := 0
	if kind == shardKindSCF {
		nFixed = 2
	}
	fixed := make([]*grid.Grid, nFixed)
	for i := range fixed {
		fixed[i] = d.NewLocalGrid()
	}
	var meta *shard
	for r := 0; r < man.Ranks; r++ {
		data, err := st.GetShard(step, r)
		if err != nil {
			return nil, nil, nil, err
		}
		if len(data) < 16 {
			return nil, nil, nil, fmt.Errorf("%w: step %d shard %d: %d bytes", ErrCheckpointCorrupt, step, r, len(data))
		}
		if r < len(man.Sums) {
			sum := crc64.Checksum(data[:len(data)-8], crcTable)
			if fmt.Sprintf("%016x", sum) != man.Sums[r] {
				return nil, nil, nil, fmt.Errorf("%w: step %d shard %d checksum mismatch", ErrCheckpointCorrupt, step, r)
			}
		}
		sh, err := decodeShard(data)
		if err != nil {
			return nil, nil, nil, err
		}
		if meta == nil {
			meta = sh
		}
		lo, dims, ok := grid.IntersectBox(sh.Off, sh.Local, d.Offset(), d.LocalDims())
		if !ok {
			continue
		}
		for i := range fixed {
			copyShardBox(fixed[i], d.Offset(), sh, sh.Fields[i], lo, dims)
		}
		for st := max(sh.BandLo, myLo); st < min(sh.BandHi, myHi); st++ {
			copyShardBox(psis[st-myLo], d.Offset(), sh, sh.Fields[nFixed+(st-sh.BandLo)], lo, dims)
		}
	}
	if meta == nil {
		return nil, nil, nil, fmt.Errorf("gpaw: checkpoint step %d has no shards", step)
	}
	return meta, fixed, psis, nil
}

// RestoreSCF re-tiles a committed SCF checkpoint onto the Dist's
// process grid and band layout — the same layout it was written from,
// a shrunken survivor grid, or a grown one.
func RestoreSCF(d *Dist, st Store, step int) (*SCFRestart, error) {
	meta, fixed, psis, err := restore(d, st, step, shardKindSCF)
	if err != nil {
		return nil, err
	}
	return &SCFRestart{Iteration: meta.Iteration, States: meta.States,
		Eig: meta.Scalars, Psis: psis, N: fixed[0], Veff: fixed[1]}, nil
}

// RestoreEigen re-tiles a committed eigensolver checkpoint onto the
// Dist.
func RestoreEigen(d *Dist, st Store, step int) (*EigenRestart, error) {
	meta, _, psis, err := restore(d, st, step, shardKindEigen)
	if err != nil {
		return nil, err
	}
	return &EigenRestart{Iteration: meta.Iteration, States: meta.States,
		Prev: meta.Scalars, Psis: psis}, nil
}
