package gpaw

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/topology"
)

func TestBoundaryString(t *testing.T) {
	if Periodic.String() != "periodic" || Dirichlet.String() != "dirichlet" {
		t.Fatal("Boundary.String broken")
	}
}

func TestPoissonPlaneWaveExact(t *testing.T) {
	// For rhs = eigenfunction of the discrete periodic Laplacian, the
	// solution is rhs/eigenvalue exactly (up to solver tolerance).
	n := 16
	h := 0.5
	ps := NewPoisson(h, Periodic)
	w := stencil.CentralWeights(2, 2, h)
	m := 2
	eig := 0.0
	for o := -2; o <= 2; o++ {
		eig += w[o+2] * math.Cos(2*math.Pi*float64(m*o)/float64(n))
	}
	rhs := grid.New(n, n, n, 2)
	rhs.FillFunc(func(i, j, k int) float64 {
		return math.Cos(2 * math.Pi * float64(m*i) / float64(n))
	})
	phi := grid.New(n, n, n, 2)
	iters, res, err := ps.SolveCG(phi, rhs)
	if err != nil {
		t.Fatalf("CG failed after %d iters (res %g): %v", iters, res, err)
	}
	maxErr := 0.0
	for i := 0; i < n; i++ {
		want := rhs.At(i, 3, 5) / eig
		if d := math.Abs(phi.At(i, 3, 5) - want); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-6 {
		t.Fatalf("plane-wave solution error %g", maxErr)
	}
}

func TestPoissonJacobiAgreesWithCG(t *testing.T) {
	n := 10
	h := 0.4
	rhs := grid.New(n, n, n, 2)
	rhs.FillFunc(func(i, j, k int) float64 {
		return math.Sin(2*math.Pi*float64(i)/float64(n)) * math.Cos(2*math.Pi*float64(j)/float64(n))
	})
	cgPhi := grid.New(n, n, n, 2)
	jacPhi := grid.New(n, n, n, 2)
	ps := NewPoisson(h, Periodic)
	if _, _, err := ps.SolveCG(cgPhi, rhs); err != nil {
		t.Fatal(err)
	}
	psj := NewPoisson(h, Periodic)
	psj.Tol = 1e-9
	psj.MaxIter = 200000
	if _, _, err := psj.SolveJacobi(jacPhi, rhs); err != nil {
		t.Fatal(err)
	}
	if d := cgPhi.MaxAbsDiff(jacPhi); d > 1e-5 {
		t.Fatalf("CG and Jacobi disagree by %g", d)
	}
}

func TestPoissonZeroRHS(t *testing.T) {
	ps := NewPoisson(0.3, Periodic)
	phi := grid.New(6, 6, 6, 2)
	phi.Fill(3)
	if _, res, err := ps.SolveCG(phi, grid.New(6, 6, 6, 2)); err != nil || res != 0 {
		t.Fatalf("zero rhs: res=%g err=%v", res, err)
	}
	if phi.Norm2() != 0 {
		t.Fatal("zero rhs should produce zero potential")
	}
}

func TestHartreeGaussianMatchesAnalytic(t *testing.T) {
	// The potential of a Gaussian charge q, width sigma in free space is
	// v(r) = q erf(r/(sigma sqrt(2)))/r. With a Dirichlet box the match
	// holds up to the constant image-charge-like offset near the centre;
	// compare the DIFFERENCE of two radii to cancel the offset.
	dims := topology.Dims{28, 28, 28}
	h := 0.5
	sigma := 1.0
	q := 1.0
	nrho := GaussianDensity(dims, h, sigma, q)
	ps := NewPoisson(h, Dirichlet)
	v, err := ps.HartreePotential(nrho)
	if err != nil {
		t.Fatal(err)
	}
	c := (dims[0] - 1) / 2 // integer centre offset: centre is at c+0.5 scaled... use exact float
	cx := float64(dims[0]-1) / 2
	analytic := func(r float64) float64 {
		return q * math.Erf(r/(sigma*math.Sqrt2)) / r
	}
	// Two sample points along the axis.
	r1 := (float64(c+4) - cx) * h
	r2 := (float64(c+8) - cx) * h
	got := v.At(c+4, c, c) - v.At(c+8, c, c)
	want := analytic(r1) - analytic(r2)
	if math.Abs(got-want) > 0.03*math.Abs(want) {
		t.Fatalf("Hartree potential difference = %g, analytic %g", got, want)
	}
}

func TestKineticOperatorSign(t *testing.T) {
	// -(1/2)∇² applied to sin gives +(1/2)k² sin: positive energy.
	n := 16
	h := 2 * math.Pi / float64(n)
	kin := Kinetic(2, h)
	psi := grid.New(n, n, n, 2)
	psi.FillFunc(func(i, j, k int) float64 { return math.Sin(h * float64(i)) })
	out := grid.New(n, n, n, 2)
	psi.FillHalosPeriodic()
	kin.Apply(out, psi)
	// Expectation must be close to k²/2 = 0.5.
	e := psi.Dot(out) / psi.Dot(psi)
	if math.Abs(e-0.5) > 0.01 {
		t.Fatalf("kinetic expectation %g, want ~0.5", e)
	}
}

func TestHamiltonianExpectationAndBound(t *testing.T) {
	dims := topology.Dims{12, 12, 12}
	h := 0.4
	v := HarmonicPotential(dims, h, 1)
	ham := NewHamiltonian(h, v, Dirichlet)
	psi := grid.NewDims(dims, 2)
	psi.FillFunc(func(i, j, k int) float64 { return 1 })
	e := ham.Expectation(psi)
	bound := ham.SpectralBound()
	if e <= 0 {
		t.Fatalf("expectation %g should be positive", e)
	}
	if e > bound {
		t.Fatalf("expectation %g exceeds spectral bound %g", e, bound)
	}
	// Without potential the expectation is pure kinetic.
	free := NewHamiltonian(h, nil, Dirichlet)
	if free.Expectation(psi) >= e {
		t.Fatal("adding a positive potential must raise the energy")
	}
}

func TestOrthonormalize(t *testing.T) {
	psis := InitGuess(4, [3]int{10, 10, 10}, 2)
	if err := Orthonormalize(psis); err != nil {
		t.Fatal(err)
	}
	for i := range psis {
		for j := range psis {
			got := psis[i].Dot(psis[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(got-want) > 1e-10 {
				t.Fatalf("<%d|%d> = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestOrthonormalizeRejectsDependentStates(t *testing.T) {
	a := grid.New(6, 6, 6, 2)
	a.Fill(1)
	b := a.Clone()
	if err := Orthonormalize([]*grid.Grid{a, b}); err == nil {
		t.Fatal("linearly dependent states accepted")
	}
}

func TestParticleInBoxEigenvalues(t *testing.T) {
	// V=0 in a Dirichlet box: with the zero halo just outside the grid,
	// the effective box length is L = (n+1)h and the discrete ground
	// state follows the stencil's dispersion; compare against the
	// analytic continuum value with a few-percent tolerance.
	n := 14
	h := 0.5
	L := float64(n+1) * h
	ham := NewHamiltonian(h, nil, Dirichlet)
	es := NewEigenSolver(ham)
	es.MaxIter = 4000
	psis := InitGuess(2, [3]int{n, n, n}, 2)
	eig, err := es.Solve(psis)
	if err != nil {
		t.Fatal(err)
	}
	e0 := 3 * math.Pi * math.Pi / (2 * L * L) // (1,1,1) mode
	if math.Abs(eig[0]-e0) > 0.05*e0 {
		t.Fatalf("box ground state %g, analytic %g", eig[0], e0)
	}
	// First excited state: (2,1,1) degenerate triple; we only check it
	// exceeds the ground state by roughly the analytic gap.
	gap := 3 * math.Pi * math.Pi / (2 * L * L)
	if eig[1]-eig[0] < 0.5*gap || eig[1]-eig[0] > 1.5*gap {
		t.Fatalf("box gap %g, analytic %g", eig[1]-eig[0], gap)
	}
}

func TestHarmonicOscillatorLevels(t *testing.T) {
	// 3-D harmonic oscillator: E = ω(n + 3/2). Grid must contain a few
	// sigma; ω=1, sigma=1.
	dims := topology.Dims{20, 20, 20}
	h := 0.55
	v := HarmonicPotential(dims, h, 1)
	ham := NewHamiltonian(h, v, Dirichlet)
	es := NewEigenSolver(ham)
	es.MaxIter = 6000
	psis := InitGuess(4, [3]int{dims[0], dims[1], dims[2]}, 2)
	eig, err := es.Solve(psis)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-1.5) > 0.05 {
		t.Fatalf("ground state %g, want 1.5", eig[0])
	}
	for i := 1; i < 4; i++ {
		if math.Abs(eig[i]-2.5) > 0.12 {
			t.Fatalf("excited state %d = %g, want 2.5", i, eig[i])
		}
	}
}

func TestEigenSolverEmptyInput(t *testing.T) {
	es := NewEigenSolver(NewHamiltonian(0.5, nil, Dirichlet))
	if _, err := es.Solve(nil); err == nil {
		t.Fatal("empty state list accepted")
	}
}

func TestSCFHarmonicTrapConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("SCF loop in short mode")
	}
	dims := topology.Dims{16, 16, 16}
	h := 0.6
	sys := System{
		Dims:      dims,
		Spacing:   h,
		BC:        Dirichlet,
		Vext:      HarmonicPotential(dims, h, 1),
		Electrons: 2,
	}
	scf := NewSCF(sys)
	scf.Tol = 1e-4
	res, err := scf.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Two interacting electrons in the trap: the occupied level lies
	// above the bare 1.5 Hartree level because of Hartree repulsion
	// (minus some exchange).
	if res.Eigenvalues[0] <= 1.5 {
		t.Fatalf("interacting level %g should exceed bare 1.5", res.Eigenvalues[0])
	}
	if res.Eigenvalues[0] > 3.0 {
		t.Fatalf("interacting level %g unreasonably high", res.Eigenvalues[0])
	}
	// The density must integrate to the electron count.
	dV := h * h * h
	if total := res.Density.Sum() * dV; math.Abs(total-2) > 1e-6 {
		t.Fatalf("density integrates to %g, want 2", total)
	}
	if res.Iterations < 2 {
		t.Fatal("suspiciously fast SCF convergence")
	}
}

func TestSCFValidation(t *testing.T) {
	scf := NewSCF(System{Electrons: 0})
	if _, err := scf.Run(); err == nil {
		t.Fatal("0 electrons accepted")
	}
	scf = NewSCF(System{Electrons: 2})
	if _, err := scf.Run(); err == nil {
		t.Fatal("missing potential accepted")
	}
}

func TestGaussianDensityNormalization(t *testing.T) {
	dims := topology.Dims{24, 24, 24}
	h := 0.5
	g := GaussianDensity(dims, h, 1, 3.5)
	total := g.Sum() * h * h * h
	if math.Abs(total-3.5) > 0.01 {
		t.Fatalf("Gaussian integrates to %g, want 3.5", total)
	}
}

func TestHarmonicPotentialCentredMinimum(t *testing.T) {
	dims := topology.Dims{11, 11, 11}
	v := HarmonicPotential(dims, 0.3, 2)
	if v.At(5, 5, 5) != 0 {
		t.Fatalf("potential minimum %g not at centre", v.At(5, 5, 5))
	}
	if v.At(0, 0, 0) <= v.At(5, 5, 5) {
		t.Fatal("potential should rise away from the centre")
	}
}

func TestPoissonSORAgreesWithCG(t *testing.T) {
	n := 10
	h := 0.4
	rhs := grid.New(n, n, n, 2)
	rhs.FillFunc(func(i, j, k int) float64 {
		return math.Cos(2*math.Pi*float64(i)/float64(n)) * math.Sin(2*math.Pi*float64(k)/float64(n))
	})
	cgPhi := grid.New(n, n, n, 2)
	sorPhi := grid.New(n, n, n, 2)
	ps := NewPoisson(h, Periodic)
	if _, _, err := ps.SolveCG(cgPhi, rhs); err != nil {
		t.Fatal(err)
	}
	pss := NewPoisson(h, Periodic)
	pss.Tol = 1e-9
	pss.MaxIter = 20000
	sorIters, _, err := pss.SolveSOR(sorPhi, rhs, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if d := cgPhi.MaxAbsDiff(sorPhi); d > 1e-5 {
		t.Fatalf("SOR and CG disagree by %g", d)
	}
	// SOR must beat plain Jacobi on iteration count at equal tolerance.
	jacPhi := grid.New(n, n, n, 2)
	psj := NewPoisson(h, Periodic)
	psj.Tol = 1e-9
	psj.MaxIter = 200000
	jacIters, _, err := psj.SolveJacobi(jacPhi, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if sorIters >= jacIters {
		t.Fatalf("SOR (%d iters) should beat Jacobi (%d iters)", sorIters, jacIters)
	}
}

func TestPoissonSORValidation(t *testing.T) {
	ps := NewPoisson(0.5, Periodic)
	phi := grid.New(4, 4, 4, 2)
	rhs := grid.New(4, 4, 4, 2)
	if _, _, err := ps.SolveSOR(phi, rhs, 0); err == nil {
		t.Fatal("omega 0 accepted")
	}
	if _, _, err := ps.SolveSOR(phi, rhs, 2); err == nil {
		t.Fatal("omega 2 accepted")
	}
	// Zero RHS short-circuits.
	phi.Fill(1)
	if _, res, err := ps.SolveSOR(phi, rhs, 1.5); err != nil || res != 0 {
		t.Fatalf("zero rhs: %v %g", err, res)
	}
}
