package gpaw

import (
	"errors"
	"fmt"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/pblas"
	"repro/internal/topology"
)

// Fault-tolerant SCF driver. RunSCFFT wraps the distributed
// self-consistent loop in the ULFM-style recovery protocol the mpi
// fault layer supports: when a rank dies, every survivor's next
// communication fails with a typed *mpi.ErrRankFailed (never a hang),
// the survivors agree on the surviving membership (Comm.Agree), shrink
// to a replacement communicator (Comm.Shrink), re-decompose the global
// grid onto a process grid that fits the smaller world, re-tile the
// last committed checkpoint onto it and resume. Because every reduction
// in the solver stack is exact (internal/detsum) and checkpoint restore
// is a bit-exact re-tiling, the recovered run's eigenvalues, energies,
// iteration counts and fields are bit-identical to an undisturbed run —
// whatever rank died, whenever it died.

// FTConfig configures fault handling around a distributed SCF run.
type FTConfig struct {
	// Store receives the periodic checkpoints; nil disables
	// checkpointing, in which case recovery restarts the SCF from
	// scratch on the survivors (still bit-identical, just slower).
	Store Store
	// Every is the checkpoint cadence in SCF iterations (<= 1: every
	// iteration).
	Every int
	// Keep bounds the retained checkpoint generations (<= 0: all).
	// Rollback needs at least 2 so a corrupted newest generation still
	// leaves a valid one to fall back to.
	Keep int
	// Recover enables shrink-to-survivors recovery. When false, a rank
	// failure is returned to the caller as a *mpi.ErrRankFailed on
	// every survivor.
	Recover bool
	// MaxRecoveries bounds how many failures are absorbed before the
	// error is returned (<= 0: unbounded — recovery continues as long
	// as at least one rank survives).
	MaxRecoveries int
	// Configure, when set, is applied to each attempt's DistSCF before
	// it runs — the hook for tolerances, mixing, iteration hooks
	// (DistSCF.OnIteration) and such.
	Configure func(*DistSCF)
	// OnResult, when set, runs on every active rank of the successful
	// attempt with its Dist and local result before parked ranks are
	// released — the hook for gathering fields while the final process
	// grid still exists.
	OnResult func(*Dist, *SCFResult)
}

// chooseProcs picks the process grid for n ranks deterministically:
// the largest usable rank count p <= n with a decomposition of global
// that grid.NewDecomp accepts, and among p's factor triples the one
// minimizing the longest grid edge (ties broken lexicographically).
// Every survivor computes the same grid from the same n.
func chooseProcs(global topology.Dims, n, halo int) (topology.Dims, int) {
	for p := n; p >= 1; p-- {
		var best topology.Dims
		found := false
		for px := 1; px <= p; px++ {
			if p%px != 0 {
				continue
			}
			rem := p / px
			for py := 1; py <= rem; py++ {
				if rem%py != 0 {
					continue
				}
				procs := topology.Dims{px, py, rem / py}
				if _, err := grid.NewDecomp(global, procs, halo); err != nil {
					continue
				}
				if !found || betterProcs(procs, best) {
					best, found = procs, true
				}
			}
		}
		if found {
			return best, p
		}
	}
	return topology.Dims{1, 1, 1}, 1
}

func betterProcs(a, b topology.Dims) bool {
	am := max(a[0], a[1], a[2])
	bm := max(b[0], b[1], b[2])
	if am != bm {
		return am < bm
	}
	for d := 0; d < 3; d++ {
		if a[d] != b[d] {
			return a[d] < b[d]
		}
	}
	return false
}

// scfAttempt runs one SCF attempt on the active communicator,
// converting a survivor-side rank-failure panic into an error so the
// caller can recover. A victim's own kill panic is re-raised — the dead
// rank's goroutine must unwind out of the runtime entirely.
func scfAttempt(body func() (*SCFResult, error)) (res *SCFResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			rf, ok := mpi.AsRankFailure(p)
			if !ok {
				panic(p)
			}
			res, err = nil, rf
		}
	}()
	return body()
}

// ftOutcome broadcasts the attempt's outcome from active rank 0 of the
// full communicator to everyone — the release that lets parked ranks
// (those beyond the shrunken process grid) return the same scalars the
// actives computed. Layout: [status, energy, iterations, residual,
// eigenvalues...]. Status 3 signals a silent-data-corruption detection;
// parked ranks reconstruct the typed error (Index/Got/Want ride in the
// scalar slots) so their driver loop rolls back in lockstep with the
// actives instead of returning while the actives retry.
func ftOutcome(c *mpi.Comm, m int, res *SCFResult, err error) (*SCFResult, error) {
	buf := make([]float64, 4+m)
	if res != nil {
		if err != nil {
			buf[0] = 1
		}
		buf[1] = res.TotalEnergy
		buf[2] = float64(res.Iterations)
		buf[3] = res.Residual
		copy(buf[4:], res.Eigenvalues)
	} else {
		var sdc *pblas.ErrSDCDetected
		if errors.As(err, &sdc) {
			buf[0] = 3
			buf[1] = float64(sdc.Index)
			buf[2] = sdc.Got
			buf[3] = sdc.Want
		} else {
			buf[0] = 2
		}
	}
	c.Bcast(0, buf)
	if res != nil {
		return res, err
	}
	// Parked (or result-less) rank: reconstruct the outcome the actives
	// broadcast; the placeholder error passed in is discarded.
	switch buf[0] {
	case 0, 1:
		out := &SCFResult{Eigenvalues: append([]float64(nil), buf[4:]...),
			TotalEnergy: buf[1], Iterations: int(buf[2]), Residual: buf[3]}
		if buf[0] == 1 {
			return out, fmt.Errorf("gpaw: SCF did not converge (residual %g)", out.Residual)
		}
		return out, nil
	case 3:
		return nil, &pblas.ErrSDCDetected{Op: "ft.peer", Index: int(buf[1]), Got: buf[2], Want: buf[3]}
	default:
		if err == nil {
			err = fmt.Errorf("gpaw: distributed SCF failed on the active ranks")
		}
		return nil, err
	}
}

// RunSCFFT runs the distributed SCF fault-tolerantly on the given
// communicator. The first attempt uses cfg's process grid and band
// layout as given (cfg.Bands * cfg.Procs.Count() must equal the
// communicator size); after a failure the survivors re-decompose with
// chooseProcs and a single band group. Ranks beyond the shrunken
// process grid park in the outcome broadcast and return the successful
// attempt's scalar results (their grid fields are nil — they own no
// sub-domain of the final layout).
//
// With ft.Recover false, a rank failure surfaces as an error matching
// *mpi.ErrRankFailed (via errors.As) on every survivor.
func RunSCFFT(comm *mpi.Comm, cfg DistConfig, sys System, ft FTConfig) (*SCFResult, error) {
	m := (sys.Electrons + 1) / 2
	c := comm
	recoveries := 0
	procs, bands := cfg.Procs, cfg.Bands
	if bands < 1 {
		bands = 1
	}
	for {
		active := bands * procs.Count()
		sub := c
		if active < c.Size() {
			color := 0
			if c.Rank() >= active {
				color = -1
			}
			sub = c.Split(color, c.Rank())
		} else if active > c.Size() {
			return nil, fmt.Errorf("gpaw: layout %d x %v needs %d ranks, have %d", bands, procs, active, c.Size())
		}

		res, err := scfAttempt(func() (*SCFResult, error) {
			if sub == nil {
				// Parked: wait for the actives' outcome (or a failure).
				return ftOutcome(c, m, nil, errors.New("gpaw: parked rank released without outcome"))
			}
			// Every active path — success, solver error, even a setup
			// error — must reach the outcome broadcast, or parked ranks
			// would wait forever on a fault-free failure.
			var d *Dist
			res, err := func() (*SCFResult, error) {
				acfg := cfg
				acfg.Procs, acfg.Bands = procs, bands
				var err error
				d, err = NewDist(sub, acfg)
				if err != nil {
					return nil, err
				}
				s := NewDistSCF(d, sys)
				if ft.Store != nil {
					s.Ckpt = &Checkpointer{Store: ft.Store, Every: ft.Every, Keep: ft.Keep}
				}
				if ft.Configure != nil {
					ft.Configure(s)
				}
				rs, err := latestRestart(d, ft.Store, s)
				if err != nil {
					return nil, err
				}
				if rs != nil {
					return s.Resume(rs)
				}
				return s.Run()
			}()
			if d != nil {
				defer d.Close()
			}
			if res != nil && ft.OnResult != nil {
				ft.OnResult(d, res)
			}
			return ftOutcome(c, m, res, err)
		})

		var sdc *pblas.ErrSDCDetected
		if err != nil && errors.As(err, &sdc) {
			if !ft.Recover || (ft.MaxRecoveries > 0 && recoveries >= ft.MaxRecoveries) {
				return nil, err
			}
			recoveries++
			// Silent corruption: the membership is intact, so no Agree or
			// Shrink — every rank re-enters the attempt loop on the same
			// layout and latestRestart rolls the whole world back to the
			// newest checkpoint that still validates.
			c.TraceRank().Mark("ft.recover", -1, -1, int64(c.Size()))
			continue
		}
		var rf *mpi.ErrRankFailed
		if err != nil && errors.As(err, &rf) {
			if !ft.Recover || (ft.MaxRecoveries > 0 && recoveries >= ft.MaxRecoveries) {
				return nil, err
			}
			recoveries++
			// Stabilize the membership view: Agree freezes each round's
			// result world-wide, so repeating until two consecutive
			// rounds match leaves every survivor with the same view even
			// when ranks keep dying during the agreement.
			view := c.Agree()
			for {
				next := c.Agree()
				if equalInts(view, next) {
					break
				}
				view = next
			}
			c = c.Shrink(view)
			procs, _ = chooseProcs(cfg.Global, c.Size(), cfg.Halo)
			bands = 1
			// Recovery milestone on the timeline: bytes carries the
			// survivor count of the shrunken world.
			c.TraceRank().Mark("ft.recover", -1, -1, int64(c.Size()))
			continue
		}
		return res, err
	}
}

// latestRestart resolves the newest VALID committed checkpoint onto d,
// with active rank 0 choosing the step so every rank restores the same
// one. Generations whose manifest or shard checksums fail validation
// (bit-rot on the store) are skipped — the restore falls back to the
// newest generation that still verifies, dropping a ckpt.fallback mark
// on the timeline. Returns nil when there is nothing to resume from.
func latestRestart(d *Dist, st Store, s *DistSCF) (*SCFRestart, error) {
	if st == nil {
		return nil, nil
	}
	var pick [1]float64
	if d.World.Rank() == 0 {
		step, fellBack, ok, err := LatestGoodStep(st)
		if err != nil {
			return nil, err
		}
		if !ok || step >= s.MaxIter {
			step = -1
		}
		if fellBack {
			d.Cart.TraceRank().Mark("ckpt.fallback", -1, -1, int64(step))
		}
		pick[0] = float64(step)
	}
	d.World.Bcast(0, pick[:])
	if pick[0] < 0 {
		return nil, nil
	}
	return RestoreSCF(d, st, int(pick[0]))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
