package gpaw

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/topology"
)

// fuzzShardBytes builds a small valid encoded shard for seeding.
func fuzzShardBytes() []byte {
	sh := &shard{
		Kind: shardKindSCF, Iteration: 3,
		Global: topology.Dims{4, 4, 4}, Off: topology.Coord{0, 0, 0},
		Local: topology.Dims{2, 2, 2}, Spacing: 0.25, BC: 1,
		States: 1, BandLo: 0, BandHi: 1,
		Scalars: []float64{-0.5},
		Fields:  [][]float64{make([]float64, 8), make([]float64, 8), make([]float64, 8)},
	}
	for i := range sh.Fields {
		for j := range sh.Fields[i] {
			sh.Fields[i][j] = float64(i*10 + j)
		}
	}
	return sh.encode()
}

// FuzzDecodeShard hardens the checkpoint codec against hostile bytes:
// truncated, bit-flipped or garbage input must come back as a typed
// ErrCheckpointCorrupt — never a panic, and never an allocation driven
// by a forged length prefix (the codec bounds every vector length and
// field count by the bytes actually present, so a 1<<61 length can at
// worst reject, not OOM).
func FuzzDecodeShard(f *testing.F) {
	valid := fuzzShardBytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated mid-body
	f.Add(valid[:15])            // below the minimum frame
	f.Add([]byte{})              // empty
	f.Add([]byte("GPCK_v1\x00")) // magic alone
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10 // bit-rot in the body
	f.Add(flipped)
	// Forged giant vector length right after the header: 8*(1<<61)
	// wraps negative, the classic overflow that slips past a
	// multiplied bounds check.
	forged := append([]byte(nil), valid[:8*13]...)
	var huge [8]byte
	binary.LittleEndian.PutUint64(huge[:], 1<<61)
	forged = append(forged, huge[:]...)
	f.Add(forged)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Size cap keeps minimization of interesting inputs fast; the
		// length-prefix hardening is about forged lengths, not big
		// buffers.
		if len(data) > 1<<16 {
			return
		}
		sh, err := decodeShard(data)
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successful decode must be internally consistent: every
		// field sized to the declared box.
		want := sh.Local.Count()
		for i, fl := range sh.Fields {
			if len(fl) != want {
				t.Fatalf("decoded field %d has %d values for box %v", i, len(fl), sh.Local)
			}
		}
	})
}

func TestDecodeShardRejectsForgedLengths(t *testing.T) {
	// The overflow case pinned as a regular test so it runs in every
	// suite, not only under -fuzz: a forged 1<<61 vector length must be
	// rejected typed, not drive an allocation.
	valid := fuzzShardBytes()
	data := append([]byte(nil), valid[:8*13]...)
	var huge [8]byte
	binary.LittleEndian.PutUint64(huge[:], 1<<61)
	data = append(data, huge[:]...)
	if _, err := decodeShard(data); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("decode of forged length = %v, want ErrCheckpointCorrupt", err)
	}
	// Same for a forged field count.
	if _, err := decodeShard(valid[:16]); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("decode of truncated shard = %v, want ErrCheckpointCorrupt", err)
	}
}
