package gpaw

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Tracing must observe, never perturb: a traced solve has to produce
// exactly the bits an untraced one does, for every rank count and
// approach, and the recorded spans must form a well-nested timeline.

// runDistTraced is runDist with a tracer armed on the world before the
// ranks start.
func runDistTraced(t *testing.T, tr *trace.Tracer, global, procs topology.Dims, a core.Approach, body func(d *Dist)) {
	t.Helper()
	w := mpi.NewWorld(procs.Count(), modeFor(a))
	w.SetTracer(tr)
	err := w.Run(func(c *mpi.Comm) {
		d, err := NewDist(c, DistConfig{
			Global: global, Procs: procs, Halo: 2, BC: Dirichlet,
			Approach: a, Threads: threadsFor(a), Batch: 2,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		body(d)
	})
	if err != nil {
		t.Fatalf("procs %v approach %v: %v", procs, a, err)
	}
}

// tracedCG runs the distributed CG solve and returns the gathered
// solution (rank 0), iteration count and residual.
func tracedCG(t *testing.T, tr *trace.Tracer, global, procs topology.Dims, a core.Approach, rhs *grid.Grid) (*grid.Grid, int, float64) {
	t.Helper()
	var gathered *grid.Grid
	var iters int
	var res float64
	run := runDistTraced
	if tr == nil {
		run = func(t *testing.T, _ *trace.Tracer, global, procs topology.Dims, a core.Approach, body func(d *Dist)) {
			runDist(t, global, procs, Dirichlet, a, body)
		}
	}
	run(t, tr, global, procs, a, func(d *Dist) {
		ps := NewDistPoisson(d, 0.35)
		phi := d.NewLocalGrid()
		it, r, err := ps.SolveCG(phi, d.ScatterReplicated(rhs))
		if err != nil {
			panic(err)
		}
		g := d.GatherGlobal(phi)
		if d.Cart.Rank() == 0 {
			gathered, iters, res = g, it, r
		}
	})
	return gathered, iters, res
}

// TestTracedBitIdentical runs the CG solver traced and untraced for
// every rank count and approach and requires bitwise-equal solutions,
// iteration counts and residuals — tracing must not perturb results.
func TestTracedBitIdentical(t *testing.T) {
	global := topology.Dims{16, 16, 16}
	rhs := poissonRHS(global)
	for _, p := range rankCounts(t) {
		var procs topology.Dims
		for _, l := range layoutsFor(p) {
			if feasible(global, l, 2) {
				procs = l
				break
			}
		}
		if procs == (topology.Dims{}) {
			continue
		}
		for _, a := range core.Approaches {
			t.Run(fmt.Sprintf("p%d/%v", p, a), func(t *testing.T) {
				wantPhi, wantIt, wantRes := tracedCG(t, nil, global, procs, a, rhs)
				tr := trace.New(p, 1<<14)
				gotPhi, gotIt, gotRes := tracedCG(t, tr, global, procs, a, rhs)
				if gotIt != wantIt || gotRes != wantRes {
					t.Fatalf("traced run: %d iters res %g, untraced %d iters res %g",
						gotIt, gotRes, wantIt, wantRes)
				}
				if diff := gotPhi.MaxAbsDiff(wantPhi); diff != 0 {
					t.Fatalf("traced solution deviates from untraced by %g", diff)
				}
				if len(tr.Events()) == 0 {
					t.Fatal("traced run recorded no events")
				}
				for r := 0; r < p; r++ {
					names := map[string]bool{}
					for _, e := range tr.RankEvents(r) {
						names[e.Name] = true
					}
					if !names["poisson.cg"] {
						t.Errorf("rank %d track lacks the poisson.cg region", r)
					}
				}
			})
		}
	}
}

// TestTracedSpansStrictlyNested checks the single-threaded protocol
// records a laminar span family per rank: any two spans are disjoint
// or one contains the other (children recorded before parents).
func TestTracedSpansStrictlyNested(t *testing.T) {
	global := topology.Dims{16, 16, 16}
	procs := topology.Dims{1, 2, 1}
	rhs := poissonRHS(global)
	tr := trace.New(2, 1<<14)
	tracedCG(t, tr, global, procs, core.FlatOptimized, rhs)
	for r := 0; r < 2; r++ {
		type iv struct{ s, e int64 }
		var ivs []iv
		for _, ev := range tr.RankEvents(r) {
			if ev.Kind != trace.KindMark {
				ivs = append(ivs, iv{ev.Start, ev.Start + ev.Dur})
			}
		}
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].s != ivs[j].s {
				return ivs[i].s < ivs[j].s
			}
			return ivs[i].e > ivs[j].e
		})
		var stack []iv
		for _, v := range ivs {
			for len(stack) > 0 && stack[len(stack)-1].e <= v.s {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && v.e > stack[len(stack)-1].e {
				t.Fatalf("rank %d: span [%d,%d) partially overlaps enclosing [%d,%d)",
					r, v.s, v.e, stack[len(stack)-1].s, stack[len(stack)-1].e)
			}
			stack = append(stack, v)
		}
	}
}

// TestTracedFaultRecovery arms tracing together with the full
// fault-tolerant SCF lifecycle: rank 2 dies mid-run, the survivors
// recover from the last checkpoint, the result stays bit-identical to
// the undisturbed run, and the death/recovery/checkpoint milestones
// all land on the timeline.
func TestTracedFaultRecovery(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	h := 0.7
	sys := System{
		Dims: global, Spacing: h, BC: Dirichlet,
		Vext: HarmonicPotential(global, h, 1), Electrons: 2,
	}
	serial := NewSCF(sys)
	serial.Tol = 1e-4
	want, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	tr := trace.New(p, 1<<15)
	w := mpi.NewWorld(p, mpi.ThreadSingle)
	w.SetTracer(tr)
	store := NewMemStore()
	var got *SCFResult
	err = w.Run(func(c *mpi.Comm) {
		res, err := RunSCFFT(c, DistConfig{
			Global: global, Procs: topology.Dims{2, 2, 1}, Halo: 2,
			BC: sys.BC, Approach: core.FlatOptimized, Batch: 2,
		}, sys, FTConfig{
			Store: store, Every: 1, Recover: true,
			Configure: func(s *DistSCF) {
				s.Tol = 1e-4
				s.OnIteration = func(it int) {
					if it == 3 && c.Rank() == 2 {
						c.Fail()
					}
				}
			},
		})
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			got = res
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEnergy != want.TotalEnergy || got.Iterations != want.Iterations {
		t.Fatalf("recovered run E=%v it=%d, fault-free E=%v it=%d",
			got.TotalEnergy, got.Iterations, want.TotalEnergy, want.Iterations)
	}
	counts := map[string]int{}
	for _, e := range tr.Events() {
		counts[e.Name]++
	}
	if counts["ft.dead"] == 0 {
		t.Error("no ft.dead mark on the timeline")
	}
	if counts["ft.recover"] == 0 {
		t.Error("no ft.recover mark on the timeline")
	}
	if counts["ckpt.save"] == 0 {
		t.Error("no ckpt.save spans on the timeline")
	}
	if counts["ckpt.restore"] == 0 {
		t.Error("no ckpt.restore spans on the timeline")
	}
	if counts["scf.iteration"] == 0 || counts["poisson.cg"] == 0 {
		t.Errorf("solver regions missing from the traced recovery run: %v", counts)
	}
}
