package gpaw

import (
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// The overlap differential matrix: every distributed solver must
// produce bitwise-identical results whether the halo exchange is
// overlapped with deep-interior compute (the split-phase protocol) or
// serialized (exchange to completion, then compute) — across rank
// counts 1/2/4/8, all four approaches, both boundary conditions and
// thread counts 1/2/4.

// overlapResult captures one distributed CG run for bitwise comparison.
type overlapResult struct {
	it  int
	res float64
	phi *grid.Grid // gathered global solution (rank 0 only)
}

// runOverlapCG solves the differential Poisson problem on p ranks with
// the given approach/threads and overlap mode, returning rank 0's view.
func runOverlapCG(t *testing.T, global, procs topology.Dims, bc Boundary, a core.Approach,
	threads int, noOverlap bool, rhs *grid.Grid) overlapResult {
	t.Helper()
	var out overlapResult
	err := mpi.Run(procs.Count(), modeFor(a), func(c *mpi.Comm) {
		d, err := NewDist(c, DistConfig{
			Global: global, Procs: procs, Halo: 2, BC: bc,
			Approach: a, Threads: threads, Batch: 2, NoOverlap: noOverlap,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		if want := !noOverlap && a != core.FlatOriginal; d.Overlapped() != want {
			t.Errorf("approach %v noOverlap=%v: Overlapped()=%v, want %v", a, noOverlap, d.Overlapped(), want)
		}
		ps := NewDistPoisson(d, 0.35)
		phi := d.NewLocalGrid()
		it, res, err := ps.SolveCG(phi, d.ScatterReplicated(rhs))
		if err != nil {
			panic(err)
		}
		g := d.GatherGlobal(phi)
		if d.Cart.Rank() == 0 {
			out = overlapResult{it: it, res: res, phi: g}
		}
	})
	if err != nil {
		t.Fatalf("procs %v approach %v threads %d noOverlap %v: %v", procs, a, threads, noOverlap, err)
	}
	return out
}

// TestOverlapVsSerializedDifferential sweeps the full overlap matrix
// for the CG solver: the overlapped run must equal the forced-
// serialized run — and the serial solver — bit for bit in iteration
// count, final residual and every solution value.
func TestOverlapVsSerializedDifferential(t *testing.T) {
	global := topology.Dims{16, 16, 16}
	h := 0.35
	rhs := poissonRHS(global)
	for _, bc := range []Boundary{Dirichlet, Periodic} {
		ps := NewPoisson(h, bc)
		wantPhi := grid.NewDims(global, 2)
		wantIt, wantRes, err := ps.SolveCG(wantPhi, rhs)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rankCounts(t) {
			procs := layoutsFor(p)[len(layoutsFor(p))-1] // the mixed shape at each rank count
			if !feasible(global, procs, 2) {
				continue
			}
			for _, a := range core.Approaches {
				for _, threads := range []int{1, 2, 4} {
					over := runOverlapCG(t, global, procs, bc, a, threads, false, rhs)
					serial := runOverlapCG(t, global, procs, bc, a, threads, true, rhs)
					if over.it != serial.it || over.res != serial.res {
						t.Errorf("%v procs %v approach %v threads %d: overlap (it,res)=(%d,%.17g), serialized (%d,%.17g)",
							bc, procs, a, threads, over.it, over.res, serial.it, serial.res)
					}
					if over.it != wantIt || over.res != wantRes {
						t.Errorf("%v procs %v approach %v threads %d: overlap (it,res)=(%d,%.17g), serial solver (%d,%.17g)",
							bc, procs, a, threads, over.it, over.res, wantIt, wantRes)
					}
					if over.phi != nil {
						if d := over.phi.MaxAbsDiff(serial.phi); d != 0 {
							t.Errorf("%v procs %v approach %v threads %d: overlap deviates from serialized by %g",
								bc, procs, a, threads, d)
						}
						if d := over.phi.MaxAbsDiff(wantPhi); d != 0 {
							t.Errorf("%v procs %v approach %v threads %d: overlap deviates from serial solver by %g",
								bc, procs, a, threads, d)
						}
					}
				}
			}
		}
	}
}

// TestOverlapEigenAndSCFBitIdentical spot-checks the deeper stacks: the
// overlapped Hamiltonian application (eigensolver, including a band-
// parallel layout) and the full SCF loop must match their forced-
// serialized twins bitwise.
func TestOverlapEigenAndSCFBitIdentical(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	h := 0.5
	vext := HarmonicPotential(global, h, 1)
	type eigRun struct {
		bands   int
		procs   topology.Dims
		a       core.Approach
		threads int
	}
	runs := []eigRun{
		{1, topology.Dims{1, 1, 2}, core.FlatOptimized, 1},
		{1, topology.Dims{2, 2, 1}, core.HybridMultiple, 2},
		{2, topology.Dims{1, 1, 2}, core.HybridMasterOnly, 2},
	}
	for _, r := range runs {
		solve := func(noOverlap bool) []float64 {
			var eig []float64
			err := mpi.Run(r.bands*r.procs.Count(), modeFor(r.a), func(c *mpi.Comm) {
				d, err := NewDist(c, DistConfig{
					Global: global, Procs: r.procs, Bands: r.bands, Halo: 2, BC: Dirichlet,
					Approach: r.a, Threads: r.threads, Batch: 2, NoOverlap: noOverlap,
				})
				if err != nil {
					panic(err)
				}
				defer d.Close()
				const m = 3
				psis := d.InitGuessBand(m, [3]int{global[0], global[1], global[2]})
				es := NewDistEigenSolver(NewDistHamiltonian(d, h, d.ScatterReplicated(vext)))
				es.Tol = 1e-7
				es.MaxIter = 500
				got, err := es.Solve(m, psis)
				if err != nil {
					panic(err)
				}
				if c.Rank() == 0 {
					eig = got
				}
			})
			if err != nil {
				t.Fatalf("%+v noOverlap=%v: %v", r, noOverlap, err)
			}
			return eig
		}
		over, serial := solve(false), solve(true)
		for i := range over {
			if over[i] != serial[i] {
				t.Errorf("%+v: overlap eig[%d]=%.17g, serialized %.17g", r, i, over[i], serial[i])
			}
		}
	}

	// SCF: total energy, iterations and residual through the whole loop
	// (eigensolver + Hartree CG + density mixing) on a hybrid layout.
	sys := scfSystem(global, 0.7)
	scfRun := func(noOverlap bool) (energy, residual float64, iters int) {
		err := mpi.Run(2, mpi.ThreadMultiple, func(c *mpi.Comm) {
			d, err := NewDist(c, DistConfig{
				Global: global, Procs: topology.Dims{1, 1, 2}, Halo: 2, BC: sys.BC,
				Approach: core.HybridMultiple, Threads: 2, Batch: 2, NoOverlap: noOverlap,
			})
			if err != nil {
				panic(err)
			}
			defer d.Close()
			ds := NewDistSCF(d, sys)
			ds.Tol = 1e-4
			res, err := ds.Run()
			if err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				energy, residual, iters = res.TotalEnergy, res.Residual, res.Iterations
			}
		})
		if err != nil {
			t.Fatalf("SCF noOverlap=%v: %v", noOverlap, err)
		}
		return
	}
	oe, or, oi := scfRun(false)
	se, sr, si := scfRun(true)
	if oe != se || or != sr || oi != si {
		t.Errorf("SCF overlap (E,res,it)=(%.17g,%.17g,%d) != serialized (%.17g,%.17g,%d)", oe, or, oi, se, sr, si)
	}
}
