package gpaw

import (
	"math"

	"repro/internal/grid"
	"repro/internal/stencil"
)

// Kinetic returns the -(1/2)∇² operator of the given radius and spacing:
// the paper's 13-point stencil scaled for the Kohn–Sham equation.
func Kinetic(r int, h float64) *stencil.Operator {
	return stencil.Laplacian(r, h).Scaled(-0.5)
}

// Hamiltonian is a one-particle Kohn–Sham Hamiltonian H = -(1/2)∇² + V
// with a local effective potential on the same grid as the
// wave-functions.
type Hamiltonian struct {
	T    *stencil.Operator // kinetic operator
	V    *grid.Grid        // local effective potential
	BC   Boundary
	Pool *stencil.Pool // worker pool for grid sweeps; nil runs serial
}

// NewHamiltonian builds H with the paper's radius-2 kinetic stencil,
// running on the process-wide worker pool.
func NewHamiltonian(h float64, v *grid.Grid, bc Boundary) *Hamiltonian {
	return &Hamiltonian{T: Kinetic(2, h), V: v, BC: bc, Pool: stencil.Shared()}
}

// Apply computes dst = H psi in one fused sweep (kinetic stencil plus
// potential term). psi's halos are overwritten according to the
// boundary condition.
func (h *Hamiltonian) Apply(dst, psi *grid.Grid) {
	fillHalos(psi, h.BC)
	h.T.ApplyStep(h.Pool, dst, psi, h.V, 1, 0)
}

// Step computes dst = psi - tau*H(psi) in one fused sweep — the
// eigensolver's damped power iteration without a separate H
// application and axpy pass.
func (h *Hamiltonian) Step(dst, psi *grid.Grid, tau float64) {
	fillHalos(psi, h.BC)
	h.T.ApplyStep(h.Pool, dst, psi, h.V, -tau, 1)
}

// Expectation returns <psi|H|psi> / <psi|psi>.
func (h *Hamiltonian) Expectation(psi *grid.Grid) float64 {
	hp := grid.NewDims(psi.Dims(), psi.H)
	h.Apply(hp, psi)
	return psi.Dot(hp) / psi.Dot(psi)
}

// kineticBound returns the kinetic part of the spectral bound: the sum
// of the operator's absolute coefficients. It depends only on the
// stencil, so serial and distributed solvers compute it identically.
func kineticBound(op *stencil.Operator) float64 {
	bound := 0.0
	for _, c := range op.X {
		//lint:ignore detsumcheck sum over the static stencil coefficient table, identical on every rank — no cross-rank reduction
		bound += math.Abs(c)
	}
	for _, c := range op.Y {
		//lint:ignore detsumcheck sum over the static stencil coefficient table, identical on every rank — no cross-rank reduction
		bound += math.Abs(c)
	}
	for _, c := range op.Z {
		//lint:ignore detsumcheck sum over the static stencil coefficient table, identical on every rank — no cross-rank reduction
		bound += math.Abs(c)
	}
	return bound + math.Abs(op.Center)
}

// maxPotential returns the maximum interior value of v, floored at 0 —
// the potential term of the spectral bound. Max is associative, so a
// per-rank maximum folded with an MPI max-reduction equals the serial
// global maximum exactly.
func maxPotential(v *grid.Grid) float64 {
	vmax := 0.0
	d := v.Dims()
	for i := 0; i < d[0]; i++ {
		for j := 0; j < d[1]; j++ {
			for k := 0; k < d[2]; k++ {
				if val := v.At(i, j, k); val > vmax {
					vmax = val
				}
			}
		}
	}
	return vmax
}

// SpectralBound returns an upper bound on H's largest eigenvalue, used
// to pick stable step sizes for the eigensolver: the kinetic bound
// (sum of |coefficients|) plus the potential maximum.
func (h *Hamiltonian) SpectralBound() float64 {
	bound := kineticBound(h.T)
	if h.V != nil {
		bound += maxPotential(h.V)
	}
	return bound
}
