package gpaw

import (
	"math"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// The bands x domain differential harness: the band-parallel eigensolver
// and SCF loop must produce eigenvalues, wave-functions and total
// energies bit-identical to the serial solver for band counts {1, 2, 4}
// crossed with domain rank counts {1, 2, 4} (<= 8 total ranks), for all
// four programming approaches.

// bandCounts returns the band-group counts the harness sweeps; the CI
// smoke matrix narrows it through BAND_RANKS.
func bandCounts(t *testing.T) []int {
	if v := os.Getenv("BAND_RANKS"); v != "" {
		b, err := strconv.Atoi(v)
		if err != nil || b < 1 {
			t.Fatalf("bad BAND_RANKS %q", v)
		}
		return []int{b}
	}
	return []int{1, 2, 4}
}

// domainShapes returns the domain process-grid shape per domain rank
// count; DIST_RANKS narrows the sweep like the domain-only harness.
func domainShapes(t *testing.T) []topology.Dims {
	shapes := map[int]topology.Dims{1: {1, 1, 1}, 2: {1, 1, 2}, 4: {2, 2, 1}}
	if v := os.Getenv("DIST_RANKS"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad DIST_RANKS %q", v)
		}
		s, ok := shapes[p]
		if !ok {
			t.Skipf("DIST_RANKS=%d has no band-harness domain shape", p)
		}
		return []topology.Dims{s}
	}
	return []topology.Dims{shapes[1], shapes[2], shapes[4]}
}

// runBand spins up a bands x domain world and builds the per-rank Dist.
func runBand(t *testing.T, global, procs topology.Dims, bands int, bc Boundary, a core.Approach, body func(d *Dist)) {
	t.Helper()
	err := mpi.Run(bands*procs.Count(), modeFor(a), func(c *mpi.Comm) {
		d, err := NewDist(c, DistConfig{
			Global: global, Procs: procs, Bands: bands, Halo: 2, BC: bc,
			Approach: a, Threads: threadsFor(a), Batch: 2,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		body(d)
	})
	if err != nil {
		t.Fatalf("bands %d procs %v approach %v: %v", bands, procs, a, err)
	}
}

// TestBandSymMatrixRotate pins the band-parallel primitives in
// isolation: the circulating subspace-matrix assembly and the
// distributed-GEMM rotation must match serial symMatrix/rotate bitwise
// on a 2 x 2 bands x domain layout.
func TestBandSymMatrixRotate(t *testing.T) {
	global := topology.Dims{8, 6, 8}
	dims := [3]int{8, 6, 8}
	const m = 5
	serial := InitGuess(m, dims, 2)
	want := linalg.NewMatrix(m, m)
	symMatrix(nil, m, want, func(i, j int) float64 { return serial[i].Dot(serial[j]) })
	// A deterministic full-rank rotation.
	c := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			c[i][j] = math.Sin(float64(3*i+5*j+1)) * 0.4
		}
		c[i][i] += 1.5
	}
	rotSerial := make([]*grid.Grid, m)
	for i := range rotSerial {
		rotSerial[i] = serial[i].Clone()
	}
	rotate(nil, rotSerial, c)
	runBand(t, global, topology.Dims{1, 1, 2}, 2, Dirichlet, core.FlatOptimized, func(d *Dist) {
		psis := d.InitGuessBand(m, dims)
		got := linalg.NewMatrix(m, m)
		d.bandSymMatrix(m, got, psis, psis)
		if diff := linalg.MaxAbsDiff(got, want); diff != 0 {
			t.Errorf("bandSymMatrix deviates from serial symMatrix by %g", diff)
		}
		d.bandRotate(m, psis, c)
		lo, _ := d.BandRange(m)
		for s, psi := range psis {
			g := d.GatherGlobal(psi)
			if d.Cart.Rank() != 0 {
				continue
			}
			if diff := g.MaxAbsDiff(rotSerial[lo+s]); diff != 0 {
				t.Errorf("band %d: bandRotate state %d deviates from serial rotate by %g", d.Band, lo+s, diff)
			}
		}
	})
}

// TestBandEigenDifferential is the eigensolver acceptance matrix:
// eigenvalues AND converged wave-functions bit-identical to the serial
// solver for every bands x domain layout and all four approaches.
func TestBandEigenDifferential(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	dims := [3]int{8, 8, 8}
	h := 0.5
	const m = 4
	vext := HarmonicPotential(global, h, 1)
	ham := NewHamiltonian(h, vext, Dirichlet)
	es := NewEigenSolver(ham)
	es.Tol = 1e-7
	es.MaxIter = 500
	serialPsis := InitGuess(m, dims, 2)
	want, err := es.Solve(serialPsis)
	if err != nil {
		t.Fatal(err)
	}
	for _, bands := range bandCounts(t) {
		for _, procs := range domainShapes(t) {
			if bands*procs.Count() > 8 {
				continue
			}
			for _, a := range core.Approaches {
				runBand(t, global, procs, bands, Dirichlet, a, func(d *Dist) {
					vloc := d.ScatterReplicated(vext)
					dh := NewDistHamiltonian(d, h, vloc)
					des := NewDistEigenSolver(dh)
					des.Tol = 1e-7
					des.MaxIter = 500
					psis := d.InitGuessBand(m, dims)
					eig, err := des.Solve(m, psis)
					if err != nil {
						panic(err)
					}
					for i := range eig {
						if eig[i] != want[i] {
							t.Errorf("bands %d procs %v approach %v: eig[%d]=%.17g, serial %.17g",
								bands, procs, a, i, eig[i], want[i])
						}
					}
					// Wave-functions: the rotation sequence is deterministic
					// (canonical SymEig, bit-identical subspace matrices), so
					// the states themselves must match bitwise.
					gathered := d.GatherBandStates(m, psis)
					if gathered != nil {
						for s, g := range gathered {
							if diff := g.MaxAbsDiff(serialPsis[s]); diff != 0 {
								t.Errorf("bands %d procs %v approach %v: state %d deviates by %g",
									bands, procs, a, s, diff)
							}
						}
					}
				})
			}
		}
	}
}

// TestBandSCFDifferential is the SCF acceptance matrix: total energies,
// eigenvalues, iteration counts, residuals and fields bit-identical to
// the serial SCF for every bands x domain layout and all four
// approaches. Eight electrons give four occupied states — the s level
// plus the closed, 3-fold degenerate p shell of the harmonic trap, so
// the damped subspace iteration converges while every band count up to
// 4 still gets a non-trivial slice (TestBandEmptyGroup covers slices
// that come up empty).
func TestBandSCFDifferential(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	h := 0.7
	sys := scfSystem(global, h)
	sys.Electrons = 8 // four doubly occupied states: s + closed p shell
	scf := NewSCF(sys)
	scf.Tol = 1e-4
	want, err := scf.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, bands := range bandCounts(t) {
		for _, procs := range domainShapes(t) {
			if bands*procs.Count() > 8 {
				continue
			}
			approaches := core.Approaches
			if testing.Short() && bands*procs.Count() > 4 {
				approaches = approaches[:2]
			}
			for _, a := range approaches {
				runBand(t, global, procs, bands, sys.BC, a, func(d *Dist) {
					ds := NewDistSCF(d, sys)
					ds.Tol = 1e-4
					res, err := ds.Run()
					if err != nil {
						panic(err)
					}
					if res.TotalEnergy != want.TotalEnergy {
						t.Errorf("SCF bands %d procs %v approach %v: E=%.17g, serial %.17g",
							bands, procs, a, res.TotalEnergy, want.TotalEnergy)
					}
					if res.Iterations != want.Iterations || res.Residual != want.Residual {
						t.Errorf("SCF bands %d procs %v approach %v: (it,res)=(%d,%.17g), serial (%d,%.17g)",
							bands, procs, a, res.Iterations, res.Residual, want.Iterations, want.Residual)
					}
					for i := range res.Eigenvalues {
						if res.Eigenvalues[i] != want.Eigenvalues[i] {
							t.Errorf("SCF bands %d procs %v approach %v: eig[%d]=%.17g, serial %.17g",
								bands, procs, a, i, res.Eigenvalues[i], want.Eigenvalues[i])
						}
					}
					checkIdentical(t, d, res.Density, want.Density, "band SCF density", procs, a)
					checkIdentical(t, d, res.VHartree, want.VHartree, "band SCF vH", procs, a)
				})
			}
		}
	}
}

// TestBandEmptyGroup: more band groups than states leaves a group with
// an empty slice; every collective path must stay consistent and the
// eigenvalues bit-identical.
func TestBandEmptyGroup(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	dims := [3]int{8, 8, 8}
	h := 0.5
	const m = 3 // over 4 band groups: slices 1,1,1,0
	vext := HarmonicPotential(global, h, 1)
	ham := NewHamiltonian(h, vext, Dirichlet)
	es := NewEigenSolver(ham)
	es.Tol = 1e-7
	es.MaxIter = 500
	want, err := es.Solve(InitGuess(m, dims, 2))
	if err != nil {
		t.Fatal(err)
	}
	runBand(t, global, topology.Dims{1, 1, 1}, 4, Dirichlet, core.FlatOptimized, func(d *Dist) {
		lo, hi := d.BandRange(m)
		if d.Band == 3 && hi-lo != 0 {
			t.Errorf("band 3 expected empty slice, got %d states", hi-lo)
		}
		dh := NewDistHamiltonian(d, h, d.ScatterReplicated(vext))
		des := NewDistEigenSolver(dh)
		des.Tol = 1e-7
		des.MaxIter = 500
		eig, err := des.Solve(m, d.InitGuessBand(m, dims))
		if err != nil {
			panic(err)
		}
		for i := range eig {
			if eig[i] != want[i] {
				t.Errorf("empty-group run: eig[%d]=%.17g, serial %.17g", i, eig[i], want[i])
			}
		}
	})
}

// TestBandSmoke is the CI smoke-matrix entry point for the BAND_RANKS
// axis: one quick eigen + SCF differential slice per configured
// bands x domain point, every approach.
func TestBandSmoke(t *testing.T) {
	bands := 2
	if v := os.Getenv("BAND_RANKS"); v != "" {
		var err error
		if bands, err = strconv.Atoi(v); err != nil {
			t.Fatalf("bad BAND_RANKS %q", v)
		}
	}
	global := topology.Dims{8, 8, 8}
	h := 0.7
	sys := scfSystem(global, h)
	sys.Electrons = 8
	scf := NewSCF(sys)
	scf.Tol = 1e-4
	want, err := scf.Run()
	if err != nil {
		t.Fatal(err)
	}
	procs := domainShapes(t)[0]
	if bands*procs.Count() > 8 {
		t.Skipf("bands %d x domain %v exceeds the 8-rank smoke budget", bands, procs)
	}
	for _, a := range core.Approaches {
		runBand(t, global, procs, bands, sys.BC, a, func(d *Dist) {
			ds := NewDistSCF(d, sys)
			ds.Tol = 1e-4
			res, err := ds.Run()
			if err != nil {
				panic(err)
			}
			if res.TotalEnergy != want.TotalEnergy {
				t.Errorf("smoke bands %d procs %v approach %v: E=%.17g, serial %.17g",
					bands, procs, a, res.TotalEnergy, want.TotalEnergy)
			}
		})
	}
}
