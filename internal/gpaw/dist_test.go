package gpaw

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/stencil"
	"repro/internal/topology"
)

// The cross-rank differential harness: every distributed solver runs on
// 1/2/4/8 ranks over (1,1,P), (1,P,1) and (P1,P2,1) process grids, for
// each of the four programming approaches, and every result — solution
// fields, iteration counts, residuals, eigenvalues, SCF total energies —
// must be bit-identical to the serial solver.

// layoutsFor returns the process-grid shapes exercised at p ranks.
// shapes needing an extent of at least minExtent per decomposed
// dimension are produced for grids that can host them; small grids use
// the mixed (P1,P2,1)-style shapes only.
func layoutsFor(p int) []topology.Dims {
	switch p {
	case 1:
		return []topology.Dims{{1, 1, 1}}
	case 2:
		return []topology.Dims{{1, 1, 2}, {1, 2, 1}, {2, 1, 1}}
	case 4:
		return []topology.Dims{{1, 1, 4}, {1, 4, 1}, {2, 2, 1}}
	case 8:
		return []topology.Dims{{1, 1, 8}, {1, 8, 1}, {2, 4, 1}, {4, 2, 1}}
	}
	return nil
}

// feasible reports whether every decomposed dimension keeps sub-domains
// at least halo thick.
func feasible(global, procs topology.Dims, halo int) bool {
	_, err := grid.NewDecomp(global, procs, halo)
	return err == nil
}

// modeFor returns the MPI thread mode an approach requires.
func modeFor(a core.Approach) mpi.ThreadMode {
	if a == core.HybridMultiple {
		return mpi.ThreadMultiple
	}
	return mpi.ThreadSingle
}

// threadsFor returns the per-rank worker count used in the harness.
func threadsFor(a core.Approach) int {
	if a.Hybrid() {
		return 2
	}
	return 1
}

// runDist spins up an MPI world and builds the per-rank Dist context.
func runDist(t *testing.T, global, procs topology.Dims, bc Boundary, a core.Approach, body func(d *Dist)) {
	t.Helper()
	err := mpi.Run(procs.Count(), modeFor(a), func(c *mpi.Comm) {
		d, err := NewDist(c, DistConfig{
			Global: global, Procs: procs, Halo: 2, BC: bc,
			Approach: a, Threads: threadsFor(a), Batch: 2,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		body(d)
	})
	if err != nil {
		t.Fatalf("procs %v approach %v: %v", procs, a, err)
	}
}

// checkIdentical fails unless the gathered distributed field matches
// the serial one bitwise (rank 0 only holds the gathered field).
func checkIdentical(t *testing.T, d *Dist, local, want *grid.Grid, what string, procs topology.Dims, a core.Approach) {
	t.Helper()
	g := d.GatherGlobal(local)
	if d.Cart.Rank() != 0 {
		return
	}
	if diff := g.MaxAbsDiff(want); diff != 0 {
		t.Errorf("%s: procs %v approach %v deviates from serial by %g", what, procs, a, diff)
	}
}

// poissonRHS is the differential problems' deterministic right-hand side.
func poissonRHS(global topology.Dims) *grid.Grid {
	rhs := grid.NewDims(global, 2)
	n0, n1 := float64(global[0]), float64(global[1])
	rhs.FillFunc(func(i, j, k int) float64 {
		return math.Sin(2*math.Pi*float64(i)/n0)*math.Cos(2*math.Pi*float64(j)/n1) +
			0.25*math.Cos(2*math.Pi*float64(k)/float64(global[2]))
	})
	return rhs
}

// rankCounts returns the rank counts the harness sweeps; the CI smoke
// matrix narrows it through DIST_RANKS.
func rankCounts(t *testing.T) []int {
	if v := os.Getenv("DIST_RANKS"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			t.Fatalf("bad DIST_RANKS %q", v)
		}
		return []int{p}
	}
	return []int{1, 2, 4, 8}
}

// TestDistPoissonCGDifferential sweeps the full rank-count x layout x
// approach matrix for the CG solver under both boundary conditions.
func TestDistPoissonCGDifferential(t *testing.T) {
	global := topology.Dims{16, 16, 16}
	h := 0.35
	rhs := poissonRHS(global)
	for _, bc := range []Boundary{Dirichlet, Periodic} {
		ps := NewPoisson(h, bc)
		wantPhi := grid.NewDims(global, 2)
		wantIt, wantRes, err := ps.SolveCG(wantPhi, rhs)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rankCounts(t) {
			for _, procs := range layoutsFor(p) {
				if !feasible(global, procs, 2) {
					continue
				}
				for _, a := range core.Approaches {
					runDist(t, global, procs, bc, a, func(d *Dist) {
						dps := NewDistPoisson(d, h)
						phi := d.NewLocalGrid()
						it, res, err := dps.SolveCG(phi, d.ScatterReplicated(rhs))
						if err != nil {
							panic(err)
						}
						if it != wantIt || res != wantRes {
							t.Errorf("%v CG procs %v approach %v: (it,res)=(%d,%.17g), serial (%d,%.17g)",
								bc, procs, a, it, res, wantIt, wantRes)
						}
						checkIdentical(t, d, phi, wantPhi, "CG "+bc.String(), procs, a)
					})
				}
			}
		}
	}
}

// TestDistPoissonJacobiDifferential covers the Jacobi solver on a
// reduced matrix (it converges slowly; CG covers the full sweep).
func TestDistPoissonJacobiDifferential(t *testing.T) {
	global := topology.Dims{16, 16, 16}
	h := 0.4
	rhs := poissonRHS(global)
	ps := NewPoisson(h, Periodic)
	ps.Tol = 1e-4
	wantPhi := grid.NewDims(global, 2)
	wantIt, wantRes, err := ps.SolveJacobi(wantPhi, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rankCounts(t) {
		for _, procs := range layoutsFor(p)[:1] {
			for _, a := range []core.Approach{core.FlatOriginal, core.HybridMultiple} {
				runDist(t, global, procs, Periodic, a, func(d *Dist) {
					dps := NewDistPoisson(d, h)
					dps.Tol = 1e-4
					phi := d.NewLocalGrid()
					it, res, err := dps.SolveJacobi(phi, d.ScatterReplicated(rhs))
					if err != nil {
						panic(err)
					}
					if it != wantIt || res != wantRes {
						t.Errorf("Jacobi procs %v approach %v: (it,res)=(%d,%g), serial (%d,%g)",
							procs, a, it, res, wantIt, wantRes)
					}
					checkIdentical(t, d, phi, wantPhi, "Jacobi", procs, a)
				})
			}
		}
	}
}

// TestDistPoissonSORDifferential: the pipelined wavefront sweep
// reproduces the serial lexicographic traversal point for point, so
// iterates match bitwise — for every rank count, layout, approach and
// boundary condition, with no rank-0 gather anywhere in the loop.
func TestDistPoissonSORDifferential(t *testing.T) {
	global := topology.Dims{16, 16, 16}
	h := 0.4
	rhs := poissonRHS(global)
	for _, bc := range []Boundary{Dirichlet, Periodic} {
		ps := NewPoisson(h, bc)
		ps.Tol = 1e-6
		wantPhi := grid.NewDims(global, 2)
		wantIt, wantRes, err := ps.SolveSOR(wantPhi, rhs, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rankCounts(t) {
			for _, procs := range layoutsFor(p) {
				if !feasible(global, procs, 2) {
					continue
				}
				for _, a := range core.Approaches {
					runDist(t, global, procs, bc, a, func(d *Dist) {
						dps := NewDistPoisson(d, h)
						dps.Tol = 1e-6
						phi := d.NewLocalGrid()
						it, res, err := dps.SolveSOR(phi, d.ScatterReplicated(rhs), 1.6)
						if err != nil {
							panic(err)
						}
						if it != wantIt || res != wantRes {
							t.Errorf("%v SOR procs %v approach %v: (it,res)=(%d,%.17g), serial (%d,%.17g)",
								bc, procs, a, it, res, wantIt, wantRes)
						}
						checkIdentical(t, d, phi, wantPhi, "SOR "+bc.String(), procs, a)
					})
				}
			}
		}
	}
}

// TestWavefrontSweepMatchesSerial asserts the wavefront at its finest
// grain: a single pipelined sweep over an asymmetric 3-D process grid
// must produce exactly the bits of one serial SORSweep — the update
// ordering proof underneath the solver-level differential tests, under
// both boundary conditions.
func TestWavefrontSweepMatchesSerial(t *testing.T) {
	global := topology.Dims{12, 10, 8}
	op := stencil.Laplacian(2, 0.5)
	mkPhi := func() *grid.Grid {
		g := grid.NewDims(global, 2)
		g.FillFunc(func(i, j, k int) float64 {
			return math.Sin(float64(3*i-2*j+k)) + 0.1*float64((i*5+j*3+k*7)%11)
		})
		return g
	}
	rhs := poissonRHS(global)
	const omega = 1.5
	for _, bc := range []Boundary{Dirichlet, Periodic} {
		want := mkPhi()
		fillHalos(want, bc)
		op.SORSweep(want, rhs, omega)
		for _, procs := range []topology.Dims{{2, 1, 1}, {1, 2, 2}, {2, 2, 2}, {1, 1, 4}, {1, 5, 1}} {
			runDist(t, global, procs, bc, core.FlatOptimized, func(d *Dist) {
				phi := d.ScatterReplicated(mkPhi())
				b := d.ScatterReplicated(rhs)
				wf := newSORWavefront(d, op)
				d.Exchange(phi)
				wf.sweep(phi, b, omega)
				checkIdentical(t, d, phi, want, "wavefront sweep "+bc.String(), procs, core.FlatOptimized)
			})
		}
	}
}

// TestDistMultigridDifferential: the V-cycle hierarchy — including the
// redistribution of coarse levels onto shrunken grids — must reproduce
// the serial multigrid bitwise.
func TestDistMultigridDifferential(t *testing.T) {
	global := topology.Dims{16, 16, 16}
	h := 0.35
	rhs := poissonRHS(global)
	for _, bc := range []Boundary{Dirichlet, Periodic} {
		mgS, err := NewMultigrid(global, h, bc)
		if err != nil {
			t.Fatal(err)
		}
		wantPhi := grid.NewDims(global, 2)
		wantCyc, wantRes, err := mgS.Solve(wantPhi, rhs)
		if err != nil {
			t.Fatal(err)
		}
		// (4,1,1): levels 16->8 stay on the full grid and aligned, 4^3
		// redistributes onto (2,1,1) with ranks 2-3 parked. (1,1,8):
		// shrinks from the first coarsening, twice ((1,1,4) then
		// (1,1,2)). (2,2,1): full process grid at every level.
		for _, procs := range []topology.Dims{{1, 1, 1}, {2, 1, 1}, {1, 1, 2}, {2, 2, 1}, {4, 1, 1}, {1, 1, 8}} {
			for _, a := range []core.Approach{core.FlatOptimized, core.HybridMasterOnly} {
				runDist(t, global, procs, bc, a, func(d *Dist) {
					mg, err := NewDistMultigrid(d, h)
					if err != nil {
						panic(err)
					}
					phi := d.NewLocalGrid()
					cyc, res, err := mg.Solve(phi, d.ScatterReplicated(rhs))
					if err != nil {
						panic(err)
					}
					if cyc != wantCyc || res != wantRes {
						t.Errorf("%v MG procs %v approach %v: (cyc,res)=(%d,%.17g), serial (%d,%.17g)",
							bc, procs, a, cyc, res, wantCyc, wantRes)
					}
					checkIdentical(t, d, phi, wantPhi, "multigrid "+bc.String(), procs, a)
				})
			}
		}
	}
}

// TestDistMultigridShrinksDeepLevels pins the redistribution decision:
// hierarchies whose coarse levels cannot host the full process grid
// shrink onto sub-communicators at exactly the predicted level — and
// never serialize. The SerializedFrom() == Levels() assertion is the
// regression guard for the removed rank-0 arm: a shrinkable hierarchy
// must report the whole hierarchy as distributed.
func TestDistMultigridShrinksDeepLevels(t *testing.T) {
	global := topology.Dims{16, 16, 16}
	cases := []struct {
		procs topology.Dims
		from  int
	}{
		{topology.Dims{1, 1, 1}, 3}, // trivially full-grid at every level
		{topology.Dims{2, 2, 1}, 3}, // 4^3 over (2,2,1) stays feasible and aligned
		{topology.Dims{4, 1, 1}, 2}, // 16,8 full grid; 4^3 -> (2,1,1), ranks 2-3 park
		{topology.Dims{1, 1, 8}, 1}, // 8^3 already infeasible over 8 -> (1,1,4) -> (1,1,2)
	}
	for _, tc := range cases {
		runDist(t, global, tc.procs, Dirichlet, core.FlatOptimized, func(d *Dist) {
			mg, err := NewDistMultigrid(d, 0.35)
			if err != nil {
				panic(err)
			}
			if mg.Levels() != 3 {
				t.Errorf("procs %v: %d levels, want 3", tc.procs, mg.Levels())
			}
			if mg.SerializedFrom() != mg.Levels() {
				t.Errorf("procs %v: SerializedFrom %d, want Levels (%d) — no level may serialize",
					tc.procs, mg.SerializedFrom(), mg.Levels())
			}
			if mg.ShrunkFrom() != tc.from {
				t.Errorf("procs %v: shrunk from level %d, want %d", tc.procs, mg.ShrunkFrom(), tc.from)
			}
		})
	}
}

// scfSystem is the differential harness's model system: a harmonic trap
// on a grid small enough that the full matrix stays fast but large
// enough for 8-rank mixed layouts.
func scfSystem(global topology.Dims, h float64) System {
	return System{
		Dims:      global,
		Spacing:   h,
		BC:        Dirichlet,
		Vext:      HarmonicPotential(global, h, 1),
		Electrons: 2,
	}
}

// scfLayoutsFor adapts the layout matrix to the 8^3 SCF grid: 8-rank
// single-dimension shapes would slice below the halo, so rank count 8
// uses the mixed shapes.
func scfLayoutsFor(p int) []topology.Dims {
	if p == 8 {
		return []topology.Dims{{2, 4, 1}, {4, 2, 1}, {2, 2, 2}}
	}
	return layoutsFor(p)
}

// TestDistSCFDifferential is the acceptance harness: all four
// approaches on every rank count produce SCF total energies,
// eigenvalues, iteration counts and density fields bit-identical to the
// serial SCF loop.
func TestDistSCFDifferential(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	h := 0.7
	sys := scfSystem(global, h)
	scf := NewSCF(sys)
	scf.Tol = 1e-4
	want, err := scf.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rankCounts(t) {
		for li, procs := range scfLayoutsFor(p) {
			if !feasible(global, procs, 2) {
				continue
			}
			approaches := core.Approaches
			if testing.Short() && li > 0 {
				// Short mode: full approach coverage on the first layout
				// of each rank count only.
				approaches = approaches[:1]
			}
			for _, a := range approaches {
				runDist(t, global, procs, sys.BC, a, func(d *Dist) {
					ds := NewDistSCF(d, sys)
					ds.Tol = 1e-4
					res, err := ds.Run()
					if err != nil {
						panic(err)
					}
					if res.TotalEnergy != want.TotalEnergy {
						t.Errorf("SCF procs %v approach %v: total energy %.17g, serial %.17g",
							procs, a, res.TotalEnergy, want.TotalEnergy)
					}
					if res.Iterations != want.Iterations || res.Residual != want.Residual {
						t.Errorf("SCF procs %v approach %v: (it,res)=(%d,%.17g), serial (%d,%.17g)",
							procs, a, res.Iterations, res.Residual, want.Iterations, want.Residual)
					}
					for i := range res.Eigenvalues {
						if res.Eigenvalues[i] != want.Eigenvalues[i] {
							t.Errorf("SCF procs %v approach %v: eigenvalue %d = %.17g, serial %.17g",
								procs, a, i, res.Eigenvalues[i], want.Eigenvalues[i])
						}
					}
					checkIdentical(t, d, res.Density, want.Density, "SCF density", procs, a)
					checkIdentical(t, d, res.VHartree, want.VHartree, "SCF vH", procs, a)
				})
			}
		}
	}
}

// TestDistEigenDifferential covers the eigensolver directly (more
// states than the SCF run uses) across approaches.
func TestDistEigenDifferential(t *testing.T) {
	global := topology.Dims{8, 8, 8}
	h := 0.5
	vext := HarmonicPotential(global, h, 1)
	ham := NewHamiltonian(h, vext, Dirichlet)
	es := NewEigenSolver(ham)
	es.Tol = 1e-7
	es.MaxIter = 500
	psis := InitGuess(3, [3]int{8, 8, 8}, 2)
	want, err := es.Solve(psis)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rankCounts(t) {
		for _, procs := range scfLayoutsFor(p)[:1] {
			for _, a := range core.Approaches {
				runDist(t, global, procs, Dirichlet, a, func(d *Dist) {
					vloc := d.ScatterReplicated(vext)
					dh := NewDistHamiltonian(d, h, vloc)
					des := NewDistEigenSolver(dh)
					des.Tol = 1e-7
					des.MaxIter = 500
					dpsis := make([]*grid.Grid, 3)
					dims := [3]int{8, 8, 8}
					for s := range dpsis {
						g := d.NewLocalGrid()
						s := s
						off := d.Offset()
						g.FillFunc(func(i, j, k int) float64 {
							return guessValue(s, dims, off[0]+i, off[1]+j, off[2]+k)
						})
						dpsis[s] = g
					}
					eig, err := des.Solve(3, dpsis)
					if err != nil {
						panic(err)
					}
					for i := range eig {
						if eig[i] != want[i] {
							t.Errorf("eigen procs %v approach %v: eig[%d]=%.17g, serial %.17g",
								procs, a, i, eig[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestSolverErrorsReportResidual: every solver — serial and distributed
// — reports the final relative residual in its non-convergence error,
// in one uniform format; the distributed error string must equal the
// serial one character for character (the residuals are bit-identical).
func TestSolverErrorsReportResidual(t *testing.T) {
	global := topology.Dims{12, 12, 12}
	h := 0.4
	rhs := poissonRHS(global)
	wantSub := "did not converge (relative residual "
	serialErr := func(name string, f func(ps *Poisson, phi *grid.Grid) (int, float64, error)) string {
		ps := NewPoisson(h, Dirichlet)
		ps.MaxIter = 2
		phi := grid.NewDims(global, 2)
		_, res, err := f(ps, phi)
		if err == nil {
			t.Fatalf("%s: expected non-convergence at MaxIter=2", name)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s error %q lacks %q", name, err.Error(), wantSub)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("%g", res)) {
			t.Errorf("%s error %q does not report returned residual %g", name, err.Error(), res)
		}
		return err.Error()
	}
	serialErr("Jacobi", func(ps *Poisson, phi *grid.Grid) (int, float64, error) { return ps.SolveJacobi(phi, rhs) })
	cgMsg := serialErr("CG", func(ps *Poisson, phi *grid.Grid) (int, float64, error) { return ps.SolveCG(phi, rhs) })
	serialErr("CGReference", func(ps *Poisson, phi *grid.Grid) (int, float64, error) { return ps.SolveCGReference(phi, rhs) })
	sorMsg := serialErr("SOR", func(ps *Poisson, phi *grid.Grid) (int, float64, error) { return ps.SolveSOR(phi, rhs, 1.6) })

	mgS, err := NewMultigrid(global, h, Dirichlet)
	if err != nil {
		t.Fatal(err)
	}
	mgS.MaxCycles = 1
	mgS.Tol = 1e-14
	phi := grid.NewDims(global, 2)
	if _, _, err := mgS.Solve(phi, rhs); err == nil || !strings.Contains(err.Error(), wantSub) {
		t.Errorf("multigrid error %v lacks %q", err, wantSub)
	}

	runDist(t, global, topology.Dims{1, 1, 2}, Dirichlet, core.FlatOptimized, func(d *Dist) {
		dps := NewDistPoisson(d, h)
		dps.MaxIter = 2
		lphi := d.NewLocalGrid()
		if _, _, err := dps.SolveCG(lphi, d.ScatterReplicated(rhs)); err == nil || err.Error() != cgMsg {
			t.Errorf("distributed CG error %v != serial %q", err, cgMsg)
		}
		lphi = d.NewLocalGrid()
		if _, _, err := dps.SolveSOR(lphi, d.ScatterReplicated(rhs), 1.6); err == nil || err.Error() != sorMsg {
			t.Errorf("distributed SOR error %v != serial %q", err, sorMsg)
		}
	})
}

// TestDistReductionDeterminism is the deterministic-reduction satellite:
// distributed DotNorm/Allreduce sums must be independent of message
// arrival order — ranks are delayed by random amounts before reducing —
// and must match the serial reduction exactly, repeatedly.
func TestDistReductionDeterminism(t *testing.T) {
	global := topology.Dims{12, 10, 8}
	a := grid.NewDims(global, 2)
	b := grid.NewDims(global, 2)
	a.FillFunc(func(i, j, k int) float64 {
		return math.Sin(float64(i*3+j*7+k)) * math.Pow(10, float64((i+j+k)%37)-18)
	})
	b.FillFunc(func(i, j, k int) float64 { return math.Cos(float64(i - j + 2*k)) })
	wantDot := a.Dot(b)
	wantSq := a.Dot(a)
	wantSum := a.Sum()
	for trial := 0; trial < 4; trial++ {
		seed := int64(1000 + trial)
		for _, procs := range []topology.Dims{{1, 2, 1}, {2, 2, 1}, {1, 1, 4}, {2, 4, 1}} {
			runDist(t, global, procs, Periodic, core.FlatOptimized, func(d *Dist) {
				// Randomized per-rank delay: the exact rank-ordered merge
				// must make arrival order irrelevant.
				rng := rand.New(rand.NewSource(seed + int64(d.Cart.Rank())*7919))
				time.Sleep(time.Duration(rng.Intn(3000)) * time.Microsecond)
				la := d.ScatterReplicated(a)
				lb := d.ScatterReplicated(b)
				dot, sq := d.DotNorm(la, lb)
				sum := d.Sum(la)
				if dot != wantDot || sq != wantSq || sum != wantSum {
					t.Errorf("procs %v trial %d: (dot,sq,sum)=(%.17g,%.17g,%.17g) != serial (%.17g,%.17g,%.17g)",
						procs, trial, dot, sq, sum, wantDot, wantSq, wantSum)
				}
			})
		}
	}
}

// TestDistSmoke is the CI smoke-matrix entry point: DIST_RANKS narrows
// the harness to one rank count and runs a quick end-to-end slice
// (CG + SCF differential for every approach on one layout).
func TestDistSmoke(t *testing.T) {
	p := 2
	if v := os.Getenv("DIST_RANKS"); v != "" {
		var err error
		if p, err = strconv.Atoi(v); err != nil {
			t.Fatalf("bad DIST_RANKS %q", v)
		}
	}
	global := topology.Dims{8, 8, 8}
	h := 0.7
	rhs := poissonRHS(global)
	ps := NewPoisson(0.35, Dirichlet)
	wantPhi := grid.NewDims(global, 2)
	wantIt, _, err := ps.SolveCG(wantPhi, rhs)
	if err != nil {
		t.Fatal(err)
	}
	sys := scfSystem(global, h)
	scf := NewSCF(sys)
	scf.Tol = 1e-4
	want, err := scf.Run()
	if err != nil {
		t.Fatal(err)
	}
	procs := scfLayoutsFor(p)[0]
	if !feasible(global, procs, 2) {
		t.Fatalf("smoke layout %v infeasible", procs)
	}
	for _, a := range core.Approaches {
		runDist(t, global, procs, Dirichlet, a, func(d *Dist) {
			dps := NewDistPoisson(d, 0.35)
			phi := d.NewLocalGrid()
			it, _, err := dps.SolveCG(phi, d.ScatterReplicated(rhs))
			if err != nil {
				panic(err)
			}
			if it != wantIt {
				t.Errorf("smoke CG procs %v approach %v: %d iters, serial %d", procs, a, it, wantIt)
			}
			checkIdentical(t, d, phi, wantPhi, "smoke CG", procs, a)

			ds := NewDistSCF(d, sys)
			ds.Tol = 1e-4
			res, err := ds.Run()
			if err != nil {
				panic(err)
			}
			if res.TotalEnergy != want.TotalEnergy {
				t.Errorf("smoke SCF procs %v approach %v: energy %.17g, serial %.17g",
					procs, a, res.TotalEnergy, want.TotalEnergy)
			}
		})
	}
}
