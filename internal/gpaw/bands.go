package gpaw

import (
	"errors"
	"fmt"

	"repro/internal/detsum"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/pblas"
	"repro/internal/topology"
)

// Band parallelization: the second axis of the bands x domain 2D layout.
//
// PR 2 distributed the real-space grids over a Cartesian process grid,
// but every rank still held every wave-function, so the dense subspace
// operations — overlap/Hamiltonian assembly, orthonormalization,
// Rayleigh–Ritz, rotation — replicated O(m²) work and O(m) storage on
// every rank. This file adds GPAW's band parallelization on top: the m
// wave-functions are divided into contiguous slices across `Bands` rank
// groups, each group runs its own domain decomposition (and halo-exchange
// engine) over the same global grid, and the subspace operations become
// distributed:
//
//   - subspace matrices are assembled by circulating band blocks through
//     the band communicator in ascending order; each group computes the
//     rows it owns from local sub-domain dot products (rounded once per
//     element, detsum-exact), reduces them over its domain communicator
//     in rank order, and the rows are merged across band groups verbatim;
//   - the m x m dense algebra (Cholesky, triangular inversion, symmetric
//     diagonalization) runs in internal/pblas on a 2D process grid built
//     over the band communicator;
//   - the O(m²) rotation Ψ ← Ψ·C runs as a distributed GEMM over
//     grid-vector blocks: source blocks are broadcast through the band
//     communicator in ascending order, so every output point accumulates
//     its m terms in exactly the serial lincombInto order.
//
// Because every floating-point reduction is either detsum-exact or an
// ascending-order accumulation identical to the serial kernel, all
// results — eigenvalues, wave-functions, SCF energies — are bit-identical
// to the serial solver for every bands x domain layout, every process
// grid shape and every programming approach.

// subspaceBlock is the block size of the block-cyclic subspace matrices.
// Any value yields bit-identical results (asserted in internal/pblas);
// 2 keeps several blocks per rank at typical band counts so the cyclic
// layout is genuinely exercised.
const subspaceBlock = 2

// BandRange returns the half-open global state range [lo, hi) owned by
// this rank's band group when m states are distributed.
func (d *Dist) BandRange(m int) (lo, hi int) {
	s, l := topology.Split(m, d.Bands, d.Band)
	return s, s + l
}

// bandOwnerOf returns the band group owning global state st.
func (d *Dist) bandOwnerOf(m, st int) int {
	for b := 0; b < d.Bands; b++ {
		s, l := topology.Split(m, d.Bands, b)
		if st >= s && st < s+l {
			return b
		}
	}
	panic(fmt.Sprintf("gpaw: state %d outside %d states", st, m))
}

// InitGuessBand fills this band group's slice of the m global seed
// states at this rank's sub-domain, through the same deterministic
// global-index field as the serial InitGuess — so band-distributed
// solver runs start from bit-identical states for every layout.
func (d *Dist) InitGuessBand(m int, dims [3]int) []*grid.Grid {
	lo, hi := d.BandRange(m)
	psis := make([]*grid.Grid, hi-lo)
	for st := lo; st < hi; st++ {
		g := d.NewLocalGrid()
		st := st
		g.FillFunc(func(i, j, k int) float64 {
			return guessValue(st, dims, d.off[0]+i, d.off[1]+j, d.off[2]+k)
		})
		psis[st-lo] = g
	}
	return psis
}

// bcastBandState circulates one state's interior through the band
// communicator: the owner group's member broadcasts src's interior, and
// every other group installs it into buf. Returns the grid holding the
// state (src on the owner, buf elsewhere). With one band group it is
// the identity on src.
func (d *Dist) bcastBandState(owner int, src, buf *grid.Grid, flat []float64) *grid.Grid {
	if d.Bands == 1 {
		return src
	}
	if owner == d.Band {
		copy(flat, src.InteriorSlice())
		d.BandComm.Bcast(owner, flat)
		return src
	}
	d.BandComm.Bcast(owner, flat)
	buf.SetInterior(flat)
	return buf
}

// forEachBandState visits the m global states in ascending order,
// handing f each state's local sub-domain field: the owner group's
// slice entry directly, other groups a broadcast copy (which f must
// not retain past the call). The ascending circulation order is the
// determinism contract every consumer — subspace assembly, rotation,
// density build — rests on.
func (d *Dist) forEachBandState(m int, local []*grid.Grid, f func(gi int, src *grid.Grid)) {
	lo, _ := d.BandRange(m)
	var buf *grid.Grid
	var flat []float64
	if d.Bands > 1 {
		buf = grid.NewDims(d.local, 0)
		flat = make([]float64, buf.Points())
	}
	for gi := 0; gi < m; gi++ {
		owner := d.bandOwnerOf(m, gi)
		var own *grid.Grid
		if owner == d.Band {
			own = local[gi-lo]
		}
		f(gi, d.bcastBandState(owner, own, buf, flat))
	}
}

// bandSymMatrix assembles the full m x m symmetric matrix
// out[i][j] = <left_i, right_j> (j >= i computed, mirrored) when each
// band group holds only its slice of left and right. Blocks of the
// right-hand states circulate through the band communicator in
// ascending order; the pair (i, j) is computed by the owner of i from
// local sub-domain dots accumulated into detsum accumulators, reduced
// exactly over the domain communicator in rank order, and the finished
// rows are merged across band groups verbatim. Every entry is
// bit-identical to the serial symMatrix value.
func (d *Dist) bandSymMatrix(m int, out linalg.Matrix, left, right []*grid.Grid) {
	lo, hi := d.BandRange(m)
	if d.Bands == 1 {
		// Domain-only layout: one pool split over all m(m+1)/2 pairs
		// keeps every worker busy (no circulation needed — every state
		// is local). Same per-pair arithmetic and reduction order as the
		// circulate path, so the entries are bit-identical either way.
		type pair struct{ i, j int }
		pairs := make([]pair, 0, m*(m+1)/2)
		for i := 0; i < m; i++ {
			for j := i; j < m; j++ {
				pairs = append(pairs, pair{i, j})
			}
		}
		accs := make([]detsum.Acc, len(pairs))
		d.pool.Exec(len(pairs), func(_, plo, phi int) {
			for n := plo; n < phi; n++ {
				left[pairs[n].i].DotAccRange(right[pairs[n].j], 0, left[pairs[n].i].Nx, &accs[n])
			}
		})
		ptrs := make([]*detsum.Acc, len(accs))
		for i := range accs {
			ptrs[i] = &accs[i]
		}
		vals := d.reduceAccs(ptrs)
		for n, pr := range pairs {
			out[pr.i][pr.j], out[pr.j][pr.i] = vals[n], vals[n]
		}
		return
	}
	nown := hi - lo
	accs := make([]detsum.Acc, nown*m)
	used := make([]bool, nown*m)
	d.forEachBandState(m, right, func(j int, src *grid.Grid) {
		// Pairs (i, j) with i in my range and i <= j.
		iEnd := j + 1
		if iEnd > hi {
			iEnd = hi
		}
		count := iEnd - lo
		if count <= 0 {
			return
		}
		d.pool.Exec(count, func(_, ilo, ihi int) {
			for ii := ilo; ii < ihi; ii++ {
				left[ii].DotAccRange(src, 0, left[ii].Nx, &accs[ii*m+j])
			}
		})
		for ii := 0; ii < count; ii++ {
			used[ii*m+j] = true
		}
	})
	// Exact domain reduction of every owned pair, in a fixed order.
	var ptrs []*detsum.Acc
	var slots []int
	for k := range accs {
		if used[k] {
			ptrs = append(ptrs, &accs[k])
			slots = append(slots, k)
		}
	}
	vals := d.reduceAccs(ptrs)
	// Merge the finished rows across band groups verbatim and mirror.
	in := make([]float64, 2*m*m)
	for v, k := range slots {
		i, j := lo+k/m, k%m
		in[i*m+j] = vals[v]
		in[m*m+i*m+j] = 1
	}
	merged := make([]float64, 2*m*m)
	d.BandComm.AllreduceFunc(in, merged, pblas.MergeMasked)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			out[i][j], out[j][i] = merged[i*m+j], merged[i*m+j]
		}
	}
}

// bandRotate replaces the band slice psis (global states [lo, hi)) by
// the columns [lo, hi) of Ψ·C, where C is the replicated m x m rotation
// and Ψ is the band-distributed state set — the distributed GEMM over
// grid-vector blocks. Source states are broadcast through the band
// communicator in ascending global order, so every output point
// accumulates its terms in exactly the serial lincombInto order (clear,
// then += c_i * src_i for ascending i, skipping exact-zero
// coefficients) and the rotated states are bit-identical to the serial
// rotation for every band count.
func (d *Dist) bandRotate(m int, psis []*grid.Grid, c linalg.Matrix) {
	if d.Bands == 1 {
		// Domain-only layout: the fused serial rotation performs the very
		// same per-point addition sequence in m+1 memory passes per state
		// instead of the circulate path's clear + m axpys.
		rotate(d.pool, psis, c)
		return
	}
	lo, hi := d.BandRange(m)
	olds := make([]*grid.Grid, len(psis))
	for i, p := range psis {
		olds[i] = p.Clone()
	}
	for _, p := range psis {
		p.Fill(0)
	}
	d.forEachBandState(m, olds, func(gi int, src *grid.Grid) {
		d.pool.Exec(hi-lo, func(_, jlo, jhi int) {
			for jj := jlo; jj < jhi; jj++ {
				if ct := c[gi][lo+jj]; ct != 0 {
					psis[jj].Axpy(ct, src)
				}
			}
		})
	})
}

// orthonormalize mirrors OrthonormalizeWith on the bands x domain
// layout: the overlap matrix is assembled band-parallel, factored by the
// distributed Cholesky of internal/pblas on the band process grid,
// inverted by distributed triangular solve, and the rotation Ψ ← Ψ·L⁻ᵀ
// runs as the block-circulating distributed GEMM. Bit-identical to the
// serial orthonormalization for every layout.
func (d *Dist) orthonormalize(m int, psis []*grid.Grid) error {
	defer d.Cart.TraceRank().Region("bands.orthonormalize").End()
	s := linalg.NewMatrix(m, m)
	d.bandSymMatrix(m, s, psis, psis)
	ds := pblas.FromReplicated(d.BGrid, s, subspaceBlock, subspaceBlock)
	cholesky := pblas.Cholesky
	if d.ABFT {
		cholesky = pblas.CholeskyChecked
	}
	l, err := cholesky(ds)
	if err != nil {
		var sdc *pblas.ErrSDCDetected
		if errors.As(err, &sdc) {
			return err
		}
		return fmt.Errorf("gpaw: overlap not positive definite (linearly dependent states): %w", err)
	}
	linv, err := pblas.InvertLower(l)
	if err != nil {
		return err
	}
	d.bandRotate(m, psis, linalg.Transpose(linv.Replicate()))
	return nil
}

// RayleighRitz mirrors the serial RayleighRitz on the bands x domain layout: H is
// applied to this group's slice behind the approach's exchange protocol,
// the subspace matrix is assembled band-parallel, diagonalized by the
// pblas distributed eigensolver on the band process grid, and the states
// rotate to the Ritz vectors by distributed GEMM. Returns all m Ritz
// values ascending (identical on every rank).
func (h *DistHamiltonian) RayleighRitz(m int, psis []*grid.Grid) ([]float64, error) {
	defer h.D.Cart.TraceRank().Region("bands.rayleighritz").End()
	hp := make([]*grid.Grid, len(psis))
	for i := range psis {
		hp[i] = grid.NewDims(psis[i].Dims(), psis[i].H)
	}
	h.applyStates(hp, psis, 1, 0)
	hm := linalg.NewMatrix(m, m)
	h.D.bandSymMatrix(m, hm, psis, hp)
	dh := pblas.FromReplicated(h.D.BGrid, hm, subspaceBlock, subspaceBlock)
	eig, dv, err := pblas.SymEig(dh)
	if err != nil {
		return nil, fmt.Errorf("gpaw: subspace diagonalization: %w", err)
	}
	h.D.bandRotate(m, psis, dv.Replicate())
	return eig, nil
}

// GatherBandStates assembles all m global wave-functions on world rank 0
// (band group 0, domain rank 0), returning nil elsewhere: each owner
// group gathers its states over its domain communicator, then the group
// leaders relay interiors to group 0 through the band communicator. The
// differential harness and the live demos use it to compare
// band-distributed states against serial ones bitwise.
func (d *Dist) GatherBandStates(m int, psis []*grid.Grid) []*grid.Grid {
	lo, _ := d.BandRange(m)
	var out []*grid.Grid
	if d.Cart.Rank() == 0 && d.Band == 0 {
		out = make([]*grid.Grid, m)
	}
	for st := 0; st < m; st++ {
		owner := d.bandOwnerOf(m, st)
		var g *grid.Grid
		if owner == d.Band {
			g = d.gather0(psis[st-lo])
		}
		if d.Cart.Rank() != 0 {
			continue
		}
		switch {
		case d.Band == owner && owner == 0:
			out[st] = g
		case d.Band == owner:
			d.BandComm.Send(0, distTag+2, g.InteriorSlice())
		case d.Band == 0:
			buf := make([]float64, d.Decomp.Global.Count())
			d.BandComm.Recv(owner, distTag+2, buf)
			gg := grid.NewDims(d.Decomp.Global, d.Decomp.Halo)
			gg.SetInterior(buf)
			out[st] = gg
		}
	}
	return out
}
