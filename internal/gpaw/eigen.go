package gpaw

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/linalg"
)

// EigenSolver finds the lowest eigenstates of a Hamiltonian by damped
// subspace (block power) iteration with Rayleigh–Ritz rotation — the
// same ingredients as GPAW's self-consistent eigensolvers: apply H to
// every wave-function (the paper's dominant finite-difference workload),
// orthonormalize, diagonalize in the subspace.
type EigenSolver struct {
	H       *Hamiltonian
	Tol     float64 // eigenvalue convergence threshold (Hartree)
	MaxIter int
}

// NewEigenSolver returns a solver with sensible defaults.
func NewEigenSolver(h *Hamiltonian) *EigenSolver {
	return &EigenSolver{H: h, Tol: 1e-8, MaxIter: 2000}
}

// Volume element for inner products: products of Dot must be scaled by
// dV = h^3 to approximate integrals; eigenvalues are dV-invariant so the
// solver works with raw dot products.

// Orthonormalize performs Löwdin-style orthonormalization via the
// Cholesky factor of the overlap matrix: Ψ ← Ψ L⁻ᵀ, preserving the
// spanned subspace. This mirrors GPAW's orthogonalization step, which is
// the reason every rank must hold the same sub-domain of every grid.
func Orthonormalize(psis []*grid.Grid) error {
	m := len(psis)
	s := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := psis[i].Dot(psis[j])
			s[i][j], s[j][i] = v, v
		}
	}
	l, err := linalg.Cholesky(s)
	if err != nil {
		return fmt.Errorf("gpaw: overlap not positive definite (linearly dependent states): %w", err)
	}
	linv := linalg.InvertLower(l)
	rotate(psis, linalg.Transpose(linv))
	return nil
}

// rotate replaces psis by psis * C (column convention: new_j = Σ_i
// old_i C[i][j]).
func rotate(psis []*grid.Grid, c linalg.Matrix) {
	m := len(psis)
	olds := make([]*grid.Grid, m)
	for i := range psis {
		olds[i] = psis[i].Clone()
	}
	for j := 0; j < m; j++ {
		psis[j].Fill(0)
		for i := 0; i < m; i++ {
			if c[i][j] != 0 {
				psis[j].Axpy(c[i][j], olds[i])
			}
		}
	}
}

// RayleighRitz diagonalizes H in the span of psis: it computes the
// subspace matrix <psi_i|H|psi_j>, diagonalizes it, rotates the states
// to the Ritz vectors and returns the Ritz values (ascending).
func RayleighRitz(h *Hamiltonian, psis []*grid.Grid) []float64 {
	m := len(psis)
	hp := make([]*grid.Grid, m)
	for i := range psis {
		hp[i] = grid.NewDims(psis[i].Dims(), psis[i].H)
		h.Apply(hp[i], psis[i])
	}
	hm := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := psis[i].Dot(hp[j])
			hm[i][j], hm[j][i] = v, v
		}
	}
	eig, vecs := linalg.SymEig(hm)
	rotate(psis, vecs)
	return eig
}

// Solve iterates psis (initial guesses, modified in place) toward the
// lowest len(psis) eigenstates and returns their eigenvalues ascending.
func (es *EigenSolver) Solve(psis []*grid.Grid) ([]float64, error) {
	if len(psis) == 0 {
		return nil, fmt.Errorf("gpaw: no states to solve")
	}
	if err := Orthonormalize(psis); err != nil {
		return nil, err
	}
	tau := 1.0 / es.H.SpectralBound()
	hp := grid.NewDims(psis[0].Dims(), psis[0].H)
	prev := make([]float64, len(psis))
	for i := range prev {
		prev[i] = math.Inf(1)
	}
	for it := 1; it <= es.MaxIter; it++ {
		// Damped power step toward the low end of the spectrum:
		// psi <- psi - tau*H*psi.
		for _, psi := range psis {
			es.H.Apply(hp, psi)
			psi.Axpy(-tau, hp)
		}
		if err := Orthonormalize(psis); err != nil {
			return nil, err
		}
		eig := RayleighRitz(es.H, psis)
		maxd := 0.0
		for i, e := range eig {
			if d := math.Abs(e - prev[i]); d > maxd {
				maxd = d
			}
			prev[i] = e
		}
		if maxd < es.Tol {
			return eig, nil
		}
	}
	return prev, fmt.Errorf("gpaw: eigensolver did not converge in %d iterations", es.MaxIter)
}

// InitGuess fills m wave-function grids with deterministic, linearly
// independent smooth fields suitable as eigensolver seeds.
func InitGuess(m int, dims [3]int, halo int) []*grid.Grid {
	psis := make([]*grid.Grid, m)
	for s := 0; s < m; s++ {
		g := grid.New(dims[0], dims[1], dims[2], halo)
		s := s
		g.FillFunc(func(i, j, k int) float64 {
			// Mixed low-order modes plus a per-state phase.
			x := float64(i+1) / float64(dims[0]+1)
			y := float64(j+1) / float64(dims[1]+1)
			z := float64(k+1) / float64(dims[2]+1)
			return math.Sin(math.Pi*x*float64(1+s%3))*
				math.Sin(math.Pi*y*float64(1+(s/3)%3))*
				math.Sin(math.Pi*z*float64(1+(s/9)%3)) +
				0.01*math.Cos(float64(s)+x+2*y+3*z)
		})
		psis[s] = g
	}
	return psis
}
