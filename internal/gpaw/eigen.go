package gpaw

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/stencil"
)

// EigenSolver finds the lowest eigenstates of a Hamiltonian by damped
// subspace (block power) iteration with Rayleigh–Ritz rotation — the
// same ingredients as GPAW's self-consistent eigensolvers: apply H to
// every wave-function (the paper's dominant finite-difference workload),
// orthonormalize, diagonalize in the subspace. The damped step runs as
// one fused stencil sweep per state, subspace matrices are assembled
// with the dot products spread across the worker pool, and rotations
// write each new state in a single linear-combination sweep.
type EigenSolver struct {
	H       *Hamiltonian
	Tol     float64 // eigenvalue convergence threshold (Hartree)
	MaxIter int
}

// NewEigenSolver returns a solver with sensible defaults.
func NewEigenSolver(h *Hamiltonian) *EigenSolver {
	return &EigenSolver{H: h, Tol: 1e-8, MaxIter: 2000}
}

// Volume element for inner products: products of Dot must be scaled by
// dV = h^3 to approximate integrals; eigenvalues are dV-invariant so the
// solver works with raw dot products.

// symMatrix fills the symmetric matrix out[i][j] = f(i, j) for j >= i,
// with the independent entries divided across the pool's workers.
func symMatrix(p *stencil.Pool, m int, out linalg.Matrix, f func(i, j int) float64) {
	type pair struct{ i, j int }
	pairs := make([]pair, 0, m*(m+1)/2)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	p.Exec(len(pairs), func(_, lo, hi int) {
		for n := lo; n < hi; n++ {
			pr := pairs[n]
			v := f(pr.i, pr.j)
			out[pr.i][pr.j], out[pr.j][pr.i] = v, v
		}
	})
}

// Orthonormalize performs Löwdin-style orthonormalization on the
// process-wide worker pool. See OrthonormalizeWith.
func Orthonormalize(psis []*grid.Grid) error {
	return OrthonormalizeWith(stencil.Shared(), psis)
}

// OrthonormalizeWith performs Löwdin-style orthonormalization via the
// Cholesky factor of the overlap matrix: Ψ ← Ψ L⁻ᵀ, preserving the
// spanned subspace. This mirrors GPAW's orthogonalization step, which is
// the reason every rank must hold the same sub-domain of every grid.
// Matrix assembly and rotation run on the given pool (nil for serial).
func OrthonormalizeWith(pool *stencil.Pool, psis []*grid.Grid) error {
	m := len(psis)
	s := linalg.NewMatrix(m, m)
	symMatrix(pool, m, s, func(i, j int) float64 { return psis[i].Dot(psis[j]) })
	l, err := linalg.Cholesky(s)
	if err != nil {
		return fmt.Errorf("gpaw: overlap not positive definite (linearly dependent states): %w", err)
	}
	linv := linalg.InvertLower(l)
	rotate(pool, psis, linalg.Transpose(linv))
	return nil
}

// rotate replaces psis by psis * C (column convention: new_j = Σ_i
// old_i C[i][j]). Each output state is produced in one fused
// linear-combination sweep over the old states' rows, and the states
// are divided across the pool's workers.
func rotate(p *stencil.Pool, psis []*grid.Grid, c linalg.Matrix) {
	m := len(psis)
	olds := make([]*grid.Grid, m)
	for i := range psis {
		olds[i] = psis[i].Clone()
	}
	p.Exec(m, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			lincombInto(psis[j], c, j, olds)
		}
	})
}

// lincombInto writes dst = Σ_i c[i][col]*srcs[i] row by row,
// accumulating each point in index order (the same addition order as
// the Fill+Axpy chain it replaces, in m+1 memory passes instead of
// 4m+1). Zero coefficients are skipped. The sources are clones of dst
// (identical extents and halo), so dst's row offsets address their
// storage directly.
func lincombInto(dst *grid.Grid, c linalg.Matrix, col int, srcs []*grid.Grid) {
	type term struct {
		data []float64
		c    float64
	}
	terms := make([]term, 0, len(srcs))
	for i, src := range srcs {
		if src.Nx != dst.Nx || src.Ny != dst.Ny || src.Nz != dst.Nz || src.H != dst.H {
			panic("gpaw: lincombInto layout mismatch")
		}
		if c[i][col] != 0 {
			terms = append(terms, term{src.Data(), c[i][col]})
		}
	}
	out := dst.Data()
	for i := 0; i < dst.Nx; i++ {
		for j := 0; j < dst.Ny; j++ {
			drow := dst.Index(i, j, 0)
			clear(out[drow : drow+dst.Nz])
			for _, tm := range terms {
				src := tm.data
				ct := tm.c
				for k := 0; k < dst.Nz; k++ {
					out[drow+k] += ct * src[drow+k]
				}
			}
		}
	}
	grid.NoteTraffic(dst.Points(), len(terms)+1)
}

// RayleighRitz diagonalizes H in the span of psis: it computes the
// subspace matrix <psi_i|H|psi_j>, diagonalizes it, rotates the states
// to the Ritz vectors and returns the Ritz values (ascending). An error
// means the subspace diagonalization failed to converge.
func RayleighRitz(h *Hamiltonian, psis []*grid.Grid) ([]float64, error) {
	m := len(psis)
	hp := make([]*grid.Grid, m)
	for i := range psis {
		hp[i] = grid.NewDims(psis[i].Dims(), psis[i].H)
		h.Apply(hp[i], psis[i])
	}
	hm := linalg.NewMatrix(m, m)
	symMatrix(h.Pool, m, hm, func(i, j int) float64 { return psis[i].Dot(hp[j]) })
	eig, vecs, err := linalg.SymEig(hm)
	if err != nil {
		return nil, fmt.Errorf("gpaw: subspace diagonalization: %w", err)
	}
	rotate(h.Pool, psis, vecs)
	return eig, nil
}

// Solve iterates psis (initial guesses) toward the lowest len(psis)
// eigenstates and returns their eigenvalues ascending. The slice
// elements are updated to hold the converged states, but the damped
// step ping-pongs through an internal buffer, so individual *grid.Grid
// objects may be replaced: read states through the slice after Solve
// returns, not through element pointers saved beforehand.
func (es *EigenSolver) Solve(psis []*grid.Grid) ([]float64, error) {
	if len(psis) == 0 {
		return nil, fmt.Errorf("gpaw: no states to solve")
	}
	if err := OrthonormalizeWith(es.H.Pool, psis); err != nil {
		return nil, err
	}
	tau := 1.0 / es.H.SpectralBound()
	buf := grid.NewDims(psis[0].Dims(), psis[0].H)
	prev := make([]float64, len(psis))
	for i := range prev {
		prev[i] = math.Inf(1)
	}
	lastDelta := math.Inf(1)
	for it := 1; it <= es.MaxIter; it++ {
		// Damped power step toward the low end of the spectrum,
		// psi <- psi - tau*H*psi, as one fused sweep per state; the
		// step lands in buf and the buffers are swapped.
		for i, psi := range psis {
			es.H.Step(buf, psi, tau)
			psis[i], buf = buf, psi
		}
		if err := OrthonormalizeWith(es.H.Pool, psis); err != nil {
			return nil, err
		}
		eig, err := RayleighRitz(es.H, psis)
		if err != nil {
			return nil, err
		}
		maxd := 0.0
		for i, e := range eig {
			if d := math.Abs(e - prev[i]); d > maxd {
				maxd = d
			}
			prev[i] = e
		}
		lastDelta = maxd
		if maxd < es.Tol {
			return eig, nil
		}
	}
	return prev, errEigenNotConverged(es.MaxIter, lastDelta)
}

// guessValue is the deterministic seed field of InitGuess evaluated at
// global index (i, j, k) of a dims-sized grid: mixed low-order modes
// plus a per-state phase. The distributed SCF fills local sub-domains
// through this same function at global indices, so serial and
// distributed initial states are bit-identical.
func guessValue(s int, dims [3]int, i, j, k int) float64 {
	x := float64(i+1) / float64(dims[0]+1)
	y := float64(j+1) / float64(dims[1]+1)
	z := float64(k+1) / float64(dims[2]+1)
	return math.Sin(math.Pi*x*float64(1+s%3))*
		math.Sin(math.Pi*y*float64(1+(s/3)%3))*
		math.Sin(math.Pi*z*float64(1+(s/9)%3)) +
		0.01*math.Cos(float64(s)+x+2*y+3*z)
}

// InitGuess fills m wave-function grids with deterministic, linearly
// independent smooth fields suitable as eigensolver seeds.
func InitGuess(m int, dims [3]int, halo int) []*grid.Grid {
	psis := make([]*grid.Grid, m)
	for s := 0; s < m; s++ {
		g := grid.New(dims[0], dims[1], dims[2], halo)
		s := s
		g.FillFunc(func(i, j, k int) float64 { return guessValue(s, dims, i, j, k) })
		psis[s] = g
	}
	return psis
}
