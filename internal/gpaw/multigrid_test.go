package gpaw

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/topology"
)

func TestMultigridHierarchy(t *testing.T) {
	mg, err := NewMultigrid(topology.Dims{32, 32, 32}, 0.5, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	// 32 -> 16 -> 8 -> 4: four levels.
	if mg.Levels() != 4 {
		t.Fatalf("levels = %d, want 4", mg.Levels())
	}
	// Odd or tiny grids are rejected.
	if _, err := NewMultigrid(topology.Dims{5, 5, 5}, 0.5, Periodic); err == nil {
		t.Fatal("odd grid accepted")
	}
	if _, err := NewMultigrid(topology.Dims{4, 4, 4}, 0.5, Periodic); err == nil {
		t.Fatal("coarsest-only grid accepted")
	}
}

func TestMultigridMatchesCG(t *testing.T) {
	n := 16
	h := 0.5
	rhs := grid.New(n, n, n, 2)
	rhs.FillFunc(func(i, j, k int) float64 {
		return math.Sin(2*math.Pi*float64(i)/float64(n)) * math.Cos(4*math.Pi*float64(j)/float64(n))
	})
	mg, err := NewMultigrid(topology.Dims{n, n, n}, h, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	mgPhi := grid.New(n, n, n, 2)
	cycles, rel, err := mg.Solve(mgPhi, rhs)
	if err != nil {
		t.Fatalf("multigrid failed after %d cycles (res %g): %v", cycles, rel, err)
	}
	cgPhi := grid.New(n, n, n, 2)
	ps := NewPoisson(h, Periodic)
	if _, _, err := ps.SolveCG(cgPhi, rhs); err != nil {
		t.Fatal(err)
	}
	if d := mgPhi.MaxAbsDiff(cgPhi); d > 1e-5 {
		t.Fatalf("multigrid and CG disagree by %g", d)
	}
}

func TestMultigridDirichlet(t *testing.T) {
	n := 16
	h := 0.4
	rhs := grid.New(n, n, n, 2)
	rhs.FillFunc(func(i, j, k int) float64 {
		x := float64(i-n/2) * h
		y := float64(j-n/2) * h
		z := float64(k-n/2) * h
		return math.Exp(-(x*x + y*y + z*z))
	})
	mg, err := NewMultigrid(topology.Dims{n, n, n}, h, Dirichlet)
	if err != nil {
		t.Fatal(err)
	}
	phi := grid.New(n, n, n, 2)
	if _, rel, err := mg.Solve(phi, rhs); err != nil {
		t.Fatalf("dirichlet multigrid: %v (res %g)", err, rel)
	}
	cgPhi := grid.New(n, n, n, 2)
	ps := NewPoisson(h, Dirichlet)
	if _, _, err := ps.SolveCG(cgPhi, rhs); err != nil {
		t.Fatal(err)
	}
	if d := phi.MaxAbsDiff(cgPhi); d > 1e-5 {
		t.Fatalf("multigrid and CG disagree by %g", d)
	}
}

func TestMultigridConvergesFasterThanJacobi(t *testing.T) {
	// Multigrid's defining property: V-cycle count is tiny and roughly
	// resolution-independent, while Jacobi sweeps blow up with n.
	n := 16
	h := 0.5
	rhs := grid.New(n, n, n, 2)
	rhs.FillFunc(func(i, j, k int) float64 {
		return math.Sin(2 * math.Pi * float64(i+j+k) / float64(n))
	})
	mg, err := NewMultigrid(topology.Dims{n, n, n}, h, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	phi := grid.New(n, n, n, 2)
	cycles, _, err := mg.Solve(phi, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if cycles > 25 {
		t.Fatalf("multigrid needed %d cycles, want few", cycles)
	}
	ps := NewPoisson(h, Periodic)
	ps.MaxIter = 100000
	ps.Tol = 1e-8
	jphi := grid.New(n, n, n, 2)
	jIters, _, err := ps.SolveJacobi(jphi, rhs)
	if err != nil {
		t.Fatal(err)
	}
	// One V-cycle costs ~ (3+3)*(1+1/8+...) ~ 8 sweeps; even charging 10
	// sweeps per cycle multigrid must win comfortably.
	if cycles*10 >= jIters {
		t.Fatalf("multigrid (%d cycles) not faster than Jacobi (%d sweeps)", cycles, jIters)
	}
}

func TestMultigridValidation(t *testing.T) {
	mg, err := NewMultigrid(topology.Dims{16, 16, 16}, 0.5, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	wrong := grid.New(8, 8, 8, 2)
	if _, _, err := mg.Solve(wrong, wrong); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Zero RHS short-circuits.
	phi := grid.New(16, 16, 16, 2)
	phi.Fill(2)
	if cyc, rel, err := mg.Solve(phi, grid.New(16, 16, 16, 2)); err != nil || cyc != 0 || rel != 0 {
		t.Fatalf("zero rhs: %d %g %v", cyc, rel, err)
	}
	if phi.Norm2() != 0 {
		t.Fatal("zero rhs should zero the solution")
	}
}
