package gpaw

import (
	"fmt"
	"math"

	"repro/internal/detsum"
	"repro/internal/grid"
	"repro/internal/topology"
)

// System describes a closed-shell model system for the self-consistent
// field loop: N electrons in an external potential on a real-space grid.
type System struct {
	Dims      topology.Dims
	Spacing   float64
	BC        Boundary
	Vext      *grid.Grid // external potential
	Electrons int        // total electrons; states = ceil(electrons/2)
}

// SCFResult reports a converged self-consistent calculation.
type SCFResult struct {
	Eigenvalues []float64 // occupied Kohn–Sham eigenvalues (Hartree)
	TotalEnergy float64   // band-structure energy Σ f_i ε_i (Hartree)
	Density     *grid.Grid
	VHartree    *grid.Grid
	Iterations  int
	Residual    float64 // final density change (L2)
}

// bandEnergy folds the occupied eigenvalue sum Σ f_i ε_i in state
// order — the total energy the differential test harness asserts
// bit-identical across rank counts.
func bandEnergy(eig []float64, electrons int) float64 {
	remaining := float64(electrons)
	total := 0.0
	for _, e := range eig {
		occ := math.Min(2, remaining)
		//lint:ignore detsumcheck occupation bookkeeping folds in fixed state order from the replicated eigenvalue list — deterministic on every rank
		remaining -= occ
		//lint:ignore detsumcheck band-energy fold in fixed state order is the serial reference sequence the differential harness asserts
		total += occ * e
	}
	return total
}

// SCF runs a simple self-consistent loop with Hartree and local-density
// exchange (Slater Xα): diagonalize H[n], rebuild n, mix, repeat. It is
// deliberately small — enough to generate the "thousands of
// wave-functions, one density" workload shape the paper describes —
// not a production DFT code.
type SCF struct {
	Sys     System
	Mix     float64 // linear density mixing factor
	Tol     float64 // density residual target
	MaxIter int
}

// NewSCF builds an SCF driver with conservative defaults.
func NewSCF(sys System) *SCF {
	return &SCF{Sys: sys, Mix: 0.3, Tol: 1e-6, MaxIter: 60}
}

// states returns the number of doubly occupied orbitals.
func (s *SCF) states() int { return (s.Sys.Electrons + 1) / 2 }

// buildDensity assembles n(r) = Σ_i f_i |ψ_i|² normalized to the
// electron count. Each state contributes one fused
// accumulate-the-square sweep.
func (s *SCF) buildDensity(psis []*grid.Grid) *grid.Grid {
	n := grid.NewDims(s.Sys.Dims, psis[0].H)
	dV := s.Sys.Spacing * s.Sys.Spacing * s.Sys.Spacing
	remaining := float64(s.Sys.Electrons)
	for _, psi := range psis {
		occ := math.Min(2, remaining)
		//lint:ignore detsumcheck occupation bookkeeping folds in fixed state order — deterministic on every rank
		remaining -= occ
		n.AccumSquared(occ, psi)
	}
	// Wave-functions are dot-product normalized; scale so that
	// ∫n dV = electrons.
	total := n.Sum() * dV
	if total > 0 {
		n.Scale(float64(s.Sys.Electrons) / total)
	}
	return n
}

// xAlpha is the Slater exchange potential v_x = -(3 n / π)^(1/3).
func xAlpha(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return -math.Cbrt(3 * n / math.Pi)
}

// Run executes the self-consistent loop.
func (s *SCF) Run() (*SCFResult, error) {
	if s.Sys.Electrons < 1 {
		return nil, fmt.Errorf("gpaw: %d electrons", s.Sys.Electrons)
	}
	if s.Sys.Vext == nil {
		return nil, fmt.Errorf("gpaw: missing external potential")
	}
	m := s.states()
	halo := 2
	psis := InitGuess(m, [3]int{s.Sys.Dims[0], s.Sys.Dims[1], s.Sys.Dims[2]}, halo)
	poisson := NewPoisson(s.Spacing(), s.Sys.BC)
	poisson.Tol = 1e-8

	veff := s.Sys.Vext.Clone()
	var n *grid.Grid
	var eig []float64
	for it := 1; it <= s.MaxIter; it++ {
		h := NewHamiltonian(s.Spacing(), veff, s.Sys.BC)
		es := NewEigenSolver(h)
		es.Tol = 1e-7
		es.MaxIter = 600
		var err error
		eig, err = es.Solve(psis)
		if err != nil {
			return nil, fmt.Errorf("gpaw: scf iteration %d: %w", it, err)
		}
		newN := s.buildDensity(psis)
		var residual float64
		if n == nil {
			n = newN
			residual = math.Inf(1)
		} else {
			residual = math.Sqrt(mixDensity(n, newN, s.Mix))
		}
		vh, err := poisson.HartreePotential(n)
		if err != nil {
			return nil, fmt.Errorf("gpaw: scf iteration %d hartree: %w", it, err)
		}
		updateVeff(veff, s.Sys.Vext, vh, n)
		if residual < s.Tol {
			return &SCFResult{Eigenvalues: eig, TotalEnergy: bandEnergy(eig, s.Sys.Electrons),
				Density: n, VHartree: vh, Iterations: it, Residual: residual}, nil
		}
		if it == s.MaxIter {
			return &SCFResult{Eigenvalues: eig, TotalEnergy: bandEnergy(eig, s.Sys.Electrons),
					Density: n, VHartree: vh, Iterations: it, Residual: residual},
				fmt.Errorf("gpaw: SCF did not reach %g (residual %g)", s.Tol, residual)
		}
	}
	return nil, fmt.Errorf("gpaw: unreachable")
}

// mixDensity linearly mixes newN into n (n += mix*(newN - n)) and
// returns the squared L2 norm of the density change, in one sweep over
// flat rows instead of a per-point accessor loop with a separate norm
// pass.
func mixDensity(n, newN *grid.Grid, mix float64) float64 {
	var acc detsum.Acc
	mixDensityAcc(n, newN, mix, &acc)
	return acc.Round()
}

// mixDensityAcc is mixDensity accumulating the squared density change
// into acc, so the distributed SCF can fold per-rank partials into the
// exact global norm.
func mixDensityAcc(n, newN *grid.Grid, mix float64, acc *detsum.Acc) {
	nd, md := n.Data(), newN.Data()
	for i := 0; i < n.Nx; i++ {
		for j := 0; j < n.Ny; j++ {
			a := n.Index(i, j, 0)
			b := newN.Index(i, j, 0)
			for k := 0; k < n.Nz; k++ {
				diff := md[b+k] - nd[a+k]
				acc.Add(diff * diff)
				nd[a+k] += mix * diff
			}
		}
	}
	grid.NoteTraffic(n.Points(), 3)
}

// updateVeff rebuilds the effective potential veff = vext + vh +
// v_x(n) in one sweep over flat rows.
func updateVeff(veff, vext, vh, n *grid.Grid) {
	od, ed, hd, nd := veff.Data(), vext.Data(), vh.Data(), n.Data()
	for i := 0; i < veff.Nx; i++ {
		for j := 0; j < veff.Ny; j++ {
			o := veff.Index(i, j, 0)
			e := vext.Index(i, j, 0)
			h := vh.Index(i, j, 0)
			m := n.Index(i, j, 0)
			for k := 0; k < veff.Nz; k++ {
				od[o+k] = ed[e+k] + hd[h+k] + xAlpha(nd[m+k])
			}
		}
	}
	grid.NoteTraffic(veff.Points(), 4)
}

// Spacing returns the grid spacing.
func (s *SCF) Spacing() float64 { return s.Sys.Spacing }

// HarmonicPotential fills a grid with V(r) = 1/2 ω² |r - center|², the
// classic validation potential with analytic levels ω(n + 3/2).
func HarmonicPotential(dims topology.Dims, h, omega float64) *grid.Grid {
	v := grid.NewDims(dims, 2)
	cx := float64(dims[0]-1) / 2
	cy := float64(dims[1]-1) / 2
	cz := float64(dims[2]-1) / 2
	v.FillFunc(func(i, j, k int) float64 {
		dx := (float64(i) - cx) * h
		dy := (float64(j) - cy) * h
		dz := (float64(k) - cz) * h
		return 0.5 * omega * omega * (dx*dx + dy*dy + dz*dz)
	})
	return v
}

// GaussianDensity fills a grid with a normalized Gaussian charge of
// standard deviation sigma centred in the box, total charge q.
func GaussianDensity(dims topology.Dims, h, sigma, q float64) *grid.Grid {
	g := grid.NewDims(dims, 2)
	cx := float64(dims[0]-1) / 2
	cy := float64(dims[1]-1) / 2
	cz := float64(dims[2]-1) / 2
	norm := q / math.Pow(2*math.Pi*sigma*sigma, 1.5)
	g.FillFunc(func(i, j, k int) float64 {
		dx := (float64(i) - cx) * h
		dy := (float64(j) - cy) * h
		dz := (float64(k) - cz) * h
		r2 := dx*dx + dy*dy + dz*dz
		return norm * math.Exp(-r2/(2*sigma*sigma))
	})
	return g
}
