package gpaw

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/topology"
)

// Multigrid is a geometric V-cycle Poisson solver — the method GPAW's
// production Poisson solver uses. Each level rediscretizes the
// Laplacian at twice the spacing; full-weighting restriction moves
// residuals down, trilinear prolongation moves corrections up, and
// damped Jacobi smooths at every level. Smoothing ping-pongs between
// two buffers with the fused ApplySmooth kernel (one sweep per
// relaxation instead of four), and the transfer operators run as flat
// slice sweeps split across the worker pool.
type Multigrid struct {
	BC         Boundary
	Tol        float64
	MaxCycles  int
	PreSmooth  int
	PostSmooth int
	Pool       *stencil.Pool // worker pool for grid sweeps; nil runs serial

	levels []*mgLevel
}

type mgLevel struct {
	op   *stencil.Operator
	h    float64
	dims topology.Dims
	phi  *grid.Grid // scratch on sub-levels
	rhs  *grid.Grid
	res  *grid.Grid
}

// NewMultigrid builds the level hierarchy for a grid of the given
// extents and spacing. Every dimension is halved while all extents stay
// even and above 4 points.
func NewMultigrid(dims topology.Dims, h float64, bc Boundary) (*Multigrid, error) {
	mg := &Multigrid{BC: bc, Tol: 1e-8, MaxCycles: 60, PreSmooth: 3, PostSmooth: 3, Pool: stencil.Shared()}
	d := dims
	spacing := h
	for {
		lv := &mgLevel{op: stencil.Laplacian(2, spacing), h: spacing, dims: d}
		lv.phi = grid.NewDims(d, 2)
		lv.rhs = grid.NewDims(d, 2)
		lv.res = grid.NewDims(d, 2)
		mg.levels = append(mg.levels, lv)
		if d[0]%2 != 0 || d[1]%2 != 0 || d[2]%2 != 0 ||
			d[0] <= 4 || d[1] <= 4 || d[2] <= 4 {
			break
		}
		d = topology.Dims{d[0] / 2, d[1] / 2, d[2] / 2}
		spacing *= 2
	}
	if len(mg.levels) < 2 {
		return nil, fmt.Errorf("gpaw: grid %v too small or odd for multigrid", dims)
	}
	return mg, nil
}

// Levels returns the depth of the hierarchy.
func (mg *Multigrid) Levels() int { return len(mg.levels) }

// smooth runs n damped Jacobi sweeps of A phi = rhs on one level. Each
// sweep is one fused pass (dst = phi + c*(rhs - A phi)) ping-ponging
// between phi and the level's residual scratch; an odd sweep count ends
// with a copy back into phi.
func (mg *Multigrid) smooth(lv *mgLevel, phi, rhs *grid.Grid, n int) {
	const omega = 0.8
	c := omega / lv.op.Center
	src, dst := phi, lv.res
	for s := 0; s < n; s++ {
		fillHalos(src, mg.BC)
		lv.op.ApplySmooth(mg.Pool, dst, src, rhs, c)
		src, dst = dst, src
	}
	if src != phi {
		mg.Pool.Copy(phi, src)
	}
}

// residualInto computes res = rhs - A phi in one fused sweep and
// returns |res|^2.
func (mg *Multigrid) residualInto(lv *mgLevel, res, phi, rhs *grid.Grid) float64 {
	fillHalos(phi, mg.BC)
	return lv.op.ApplyResidual(mg.Pool, res, rhs, phi)
}

// restrictFull full-weights fine into coarse (fine dims are exactly
// twice coarse dims). The 2x2x2 cell average is the 3-D full-weighting
// operator for cell-centred grids; the sweep is split over coarse x
// planes.
func restrictFull(p *stencil.Pool, fine, coarse *grid.Grid) {
	d := coarse.Dims()
	fd := fine.Data()
	cd := coarse.Data()
	p.Exec(d[0], func(_, i0, i1 int) {
		for i := i0; i < i1; i++ {
			for j := 0; j < d[1]; j++ {
				crow := coarse.Index(i, j, 0)
				f00 := fine.Index(2*i, 2*j, 0)
				f01 := fine.Index(2*i, 2*j+1, 0)
				f10 := fine.Index(2*i+1, 2*j, 0)
				f11 := fine.Index(2*i+1, 2*j+1, 0)
				for k := 0; k < d[2]; k++ {
					k2 := 2 * k
					sum := fd[f00+k2] + fd[f00+k2+1] +
						fd[f01+k2] + fd[f01+k2+1] +
						fd[f10+k2] + fd[f10+k2+1] +
						fd[f11+k2] + fd[f11+k2+1]
					cd[crow+k] = sum / 8
				}
			}
		}
	})
	grid.NoteTraffic(fine.Points()+coarse.Points(), 1)
}

// prolongInto adds the piecewise-constant interpolation of coarse onto
// fine (the adjoint of full weighting up to scale); with the smoothing
// sweeps around it, constant prolongation is sufficient and cheap. The
// sweep is split over fine x planes.
func prolongInto(p *stencil.Pool, coarse, fine *grid.Grid) {
	d := fine.Dims()
	fd := fine.Data()
	cd := coarse.Data()
	p.Exec(d[0], func(_, i0, i1 int) {
		for i := i0; i < i1; i++ {
			for j := 0; j < d[1]; j++ {
				frow := fine.Index(i, j, 0)
				crow := coarse.Index(i/2, j/2, 0)
				for k := 0; k < d[2]; k++ {
					fd[frow+k] += cd[crow+k/2]
				}
			}
		}
	})
	grid.NoteTraffic(2*fine.Points()+coarse.Points(), 1)
}

// prolongSet writes (rather than adds) the piecewise-constant
// interpolation of coarse into fine. The distributed multigrid uses it
// to materialize a coarse correction in the doubled transfer layout
// before redistributing it; the eventual phi += correction then adds
// exactly the coarse value prolongInto would have added — same addend,
// same bits (a zero-fill-then-add would turn a -0 correction into +0).
func prolongSet(p *stencil.Pool, coarse, fine *grid.Grid) {
	d := fine.Dims()
	fd := fine.Data()
	cd := coarse.Data()
	p.Exec(d[0], func(_, i0, i1 int) {
		for i := i0; i < i1; i++ {
			for j := 0; j < d[1]; j++ {
				frow := fine.Index(i, j, 0)
				crow := coarse.Index(i/2, j/2, 0)
				for k := 0; k < d[2]; k++ {
					fd[frow+k] = cd[crow+k/2]
				}
			}
		}
	})
	grid.NoteTraffic(fine.Points()+coarse.Points(), 1)
}

// vcycle performs one V-cycle starting at level l for A phi = rhs.
func (mg *Multigrid) vcycle(l int, phi, rhs *grid.Grid) {
	lv := mg.levels[l]
	if l == len(mg.levels)-1 {
		mg.smooth(lv, phi, rhs, 60) // coarsest: relax hard
		return
	}
	mg.smooth(lv, phi, rhs, mg.PreSmooth)
	mg.residualInto(lv, lv.res, phi, rhs)
	next := mg.levels[l+1]
	restrictFull(mg.Pool, lv.res, next.rhs)
	next.phi.Zero()
	mg.vcycle(l+1, next.phi, next.rhs)
	prolongInto(mg.Pool, next.phi, phi)
	mg.smooth(lv, phi, rhs, mg.PostSmooth)
}

// Solve iterates V-cycles until the relative residual of ∇²phi = rhs
// drops below Tol, returning cycles used and the final relative
// residual.
func (mg *Multigrid) Solve(phi, rhs *grid.Grid) (int, float64, error) {
	top := mg.levels[0]
	if phi.Dims() != top.dims || rhs.Dims() != top.dims {
		return 0, 0, fmt.Errorf("gpaw: multigrid built for %v, got %v", top.dims, phi.Dims())
	}
	b := rhs.Clone()
	if mg.BC == Periodic {
		removeMean(mg.Pool, b)
	}
	norm0 := b.Norm2()
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	for cyc := 1; cyc <= mg.MaxCycles; cyc++ {
		mg.vcycle(0, phi, b)
		if mg.BC == Periodic {
			removeMean(mg.Pool, phi)
		}
		rel := math.Sqrt(mg.residualInto(top, top.res, phi, b)) / norm0
		if rel < mg.Tol {
			return cyc, rel, nil
		}
	}
	rel := math.Sqrt(mg.residualInto(top, top.res, phi, b)) / norm0
	return mg.MaxCycles, rel, errNotConverged("multigrid", rel)
}
