package gpaw

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/topology"
)

// Multigrid is a geometric V-cycle Poisson solver — the method GPAW's
// production Poisson solver uses. Each level rediscretizes the
// Laplacian at twice the spacing; full-weighting restriction moves
// residuals down, trilinear prolongation moves corrections up, and
// damped Jacobi smooths at every level.
type Multigrid struct {
	BC         Boundary
	Tol        float64
	MaxCycles  int
	PreSmooth  int
	PostSmooth int

	levels []*mgLevel
}

type mgLevel struct {
	op   *stencil.Operator
	h    float64
	dims topology.Dims
	phi  *grid.Grid // scratch on sub-levels
	rhs  *grid.Grid
	res  *grid.Grid
}

// NewMultigrid builds the level hierarchy for a grid of the given
// extents and spacing. Every dimension is halved while all extents stay
// even and above 4 points.
func NewMultigrid(dims topology.Dims, h float64, bc Boundary) (*Multigrid, error) {
	mg := &Multigrid{BC: bc, Tol: 1e-8, MaxCycles: 60, PreSmooth: 3, PostSmooth: 3}
	d := dims
	spacing := h
	for {
		lv := &mgLevel{op: stencil.Laplacian(2, spacing), h: spacing, dims: d}
		lv.phi = grid.NewDims(d, 2)
		lv.rhs = grid.NewDims(d, 2)
		lv.res = grid.NewDims(d, 2)
		mg.levels = append(mg.levels, lv)
		if d[0]%2 != 0 || d[1]%2 != 0 || d[2]%2 != 0 ||
			d[0] <= 4 || d[1] <= 4 || d[2] <= 4 {
			break
		}
		d = topology.Dims{d[0] / 2, d[1] / 2, d[2] / 2}
		spacing *= 2
	}
	if len(mg.levels) < 2 {
		return nil, fmt.Errorf("gpaw: grid %v too small or odd for multigrid", dims)
	}
	return mg, nil
}

// Levels returns the depth of the hierarchy.
func (mg *Multigrid) Levels() int { return len(mg.levels) }

// smooth runs n damped Jacobi sweeps of A phi = rhs on one level.
func (mg *Multigrid) smooth(lv *mgLevel, phi, rhs *grid.Grid, n int) {
	const omega = 0.8
	diag := lv.op.Center
	tmp := lv.res
	for s := 0; s < n; s++ {
		fillHalos(phi, mg.BC)
		lv.op.Apply(tmp, phi)
		tmp.Scale(-1)
		tmp.Axpy(1, rhs)
		phi.Axpy(omega/diag, tmp)
	}
}

// residualInto computes res = rhs - A phi on one level.
func (mg *Multigrid) residualInto(lv *mgLevel, res, phi, rhs *grid.Grid) {
	fillHalos(phi, mg.BC)
	lv.op.Apply(res, phi)
	res.Scale(-1)
	res.Axpy(1, rhs)
}

// restrict full-weights fine into coarse (fine dims are exactly twice
// coarse dims). The 2x2x2 cell average is the 3-D full-weighting
// operator for cell-centred grids.
func restrictFull(fine, coarse *grid.Grid) {
	d := coarse.Dims()
	for i := 0; i < d[0]; i++ {
		for j := 0; j < d[1]; j++ {
			for k := 0; k < d[2]; k++ {
				sum := 0.0
				for di := 0; di < 2; di++ {
					for dj := 0; dj < 2; dj++ {
						for dk := 0; dk < 2; dk++ {
							sum += fine.At(2*i+di, 2*j+dj, 2*k+dk)
						}
					}
				}
				coarse.Set(i, j, k, sum/8)
			}
		}
	}
}

// prolongInto adds the piecewise-constant interpolation of coarse onto
// fine (the adjoint of full weighting up to scale); with the smoothing
// sweeps around it, constant prolongation is sufficient and cheap.
func prolongInto(coarse, fine *grid.Grid) {
	d := fine.Dims()
	for i := 0; i < d[0]; i++ {
		for j := 0; j < d[1]; j++ {
			for k := 0; k < d[2]; k++ {
				fine.Set(i, j, k, fine.At(i, j, k)+coarse.At(i/2, j/2, k/2))
			}
		}
	}
}

// vcycle performs one V-cycle starting at level l for A phi = rhs.
func (mg *Multigrid) vcycle(l int, phi, rhs *grid.Grid) {
	lv := mg.levels[l]
	if l == len(mg.levels)-1 {
		mg.smooth(lv, phi, rhs, 60) // coarsest: relax hard
		return
	}
	mg.smooth(lv, phi, rhs, mg.PreSmooth)
	mg.residualInto(lv, lv.res, phi, rhs)
	next := mg.levels[l+1]
	restrictFull(lv.res, next.rhs)
	next.phi.Zero()
	mg.vcycle(l+1, next.phi, next.rhs)
	prolongInto(next.phi, phi)
	mg.smooth(lv, phi, rhs, mg.PostSmooth)
}

// Solve iterates V-cycles until the relative residual of ∇²phi = rhs
// drops below Tol, returning cycles used and the final relative
// residual.
func (mg *Multigrid) Solve(phi, rhs *grid.Grid) (int, float64, error) {
	top := mg.levels[0]
	if phi.Dims() != top.dims || rhs.Dims() != top.dims {
		return 0, 0, fmt.Errorf("gpaw: multigrid built for %v, got %v", top.dims, phi.Dims())
	}
	b := rhs.Clone()
	if mg.BC == Periodic {
		removeMean(b)
	}
	norm0 := b.Norm2()
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	for cyc := 1; cyc <= mg.MaxCycles; cyc++ {
		mg.vcycle(0, phi, b)
		if mg.BC == Periodic {
			removeMean(phi)
		}
		mg.residualInto(top, top.res, phi, b)
		rel := top.res.Norm2() / norm0
		if rel < mg.Tol {
			return cyc, rel, nil
		}
	}
	mg.residualInto(top, top.res, phi, b)
	rel := top.res.Norm2() / norm0
	return mg.MaxCycles, rel, fmt.Errorf("gpaw: multigrid did not converge (residual %g)", rel)
}
