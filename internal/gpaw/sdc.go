package gpaw

import (
	"math"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/pblas"
)

// Silent-data-corruption defense for the distributed SCF loop. The ABFT
// checksums of internal/pblas guard the dense subspace kernels; this
// guard covers the grid fields and the solver's own invariants with
// cheap sanity monitors:
//
//   - a field-finiteness scan over the wave-functions, density and
//     effective potential at the top of every iteration (NaN, Inf, or a
//     magnitude no physical field reaches flags corruption);
//   - a residual-monotonicity monitor — mixing with a fixed fraction
//     cannot grow the density residual by many orders of magnitude
//     between iterations unless state was corrupted;
//   - an eigenvalue finiteness check after each subspace solve.
//
// Every verdict is reached identically on every rank: the field scan
// reduces a corruption indicator over the full communicator, and the
// residual and eigenvalues are already bit-identical everywhere (exact
// reductions), so all ranks return the same typed *pblas.ErrSDCDetected
// and the fault-tolerant driver can roll the whole world back to the
// last good checkpoint together.

// sdcMagnitudeLimit flags field values no converging SCF state reaches;
// a flipped exponent bit lands many orders of magnitude past it.
const sdcMagnitudeLimit = 1e50

// SDCGuard monitors one rank's view of a distributed SCF run for silent
// data corruption. Install via DistSCF.Guard (NewDistSCF arms one
// automatically when the Dist was built with DistConfig.ABFT). The
// zero value uses the defaults; a guard belongs to a single run.
type SDCGuard struct {
	// MaxGrowth bounds the tolerated residual growth factor between
	// consecutive iterations (<= 0: 1e6). Genuine SCF residuals wobble
	// by small factors; corrupted state jumps by many orders.
	MaxGrowth float64
	// Warmup is the number of leading iterations exempt from the
	// monotonicity monitor while the residual finds its scale
	// (<= 0: 3).
	Warmup int
	// Tamper, when set, runs before each iteration's field scan with
	// the live SCF state — the hook the corruption-injection harness
	// flips bits through. Production runs leave it nil.
	Tamper func(it int, psis []*grid.Grid, n, veff *grid.Grid)
	// Detections counts corruption verdicts this guard has raised
	// (including ABFT detections it was told about via NoteABFT).
	Detections int

	prev float64 // last accepted residual (0 until first)
}

func (g *SDCGuard) maxGrowth() float64 {
	if g.MaxGrowth > 0 {
		return g.MaxGrowth
	}
	return 1e6
}

func (g *SDCGuard) warmup() int {
	if g.Warmup > 0 {
		return g.Warmup
	}
	return 3
}

// detect raises a corruption verdict: counts it, drops a timeline mark
// and returns the typed error the rollback machinery matches on.
func (g *SDCGuard) detect(d *Dist, op string, it int, got, want float64) error {
	g.Detections++
	d.Cart.TraceRank().Mark("sdc.detect", -1, -1, int64(it))
	return &pblas.ErrSDCDetected{Op: op, Index: it, Got: got, Want: want}
}

// NoteABFT records a corruption verdict raised by the pblas ABFT layer
// (the error already carries the detection site) on this guard's
// counter and timeline.
func (g *SDCGuard) NoteABFT(d *Dist, sdc *pblas.ErrSDCDetected) {
	g.Detections++
	d.Cart.TraceRank().Mark("sdc.detect", -1, -1, int64(sdc.Index))
}

// badField reports whether any interior value of g is non-finite or
// unphysically large. Halo cells are excluded — they are communication
// scratch refreshed from interiors every exchange.
func badField(g *grid.Grid) bool {
	if g == nil {
		return false
	}
	for i := 0; i < g.Nx; i++ {
		for j := 0; j < g.Ny; j++ {
			for k := 0; k < g.Nz; k++ {
				v := g.At(i, j, k)
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > sdcMagnitudeLimit {
					return true
				}
			}
		}
	}
	return false
}

// checkFields scans the live SCF state for corruption. The local
// verdict is reduced (max) over the full communicator so every rank —
// including ones whose local state is clean — takes the same branch.
func (g *SDCGuard) checkFields(d *Dist, it int, psis []*grid.Grid, n, veff *grid.Grid) error {
	bad := 0.0
	for _, p := range psis {
		if badField(p) {
			bad = 1
			break
		}
	}
	if bad == 0 && (badField(n) || badField(veff)) {
		bad = 1
	}
	var in, out [1]float64
	in[0] = bad
	// 0/1 indicator under max: identical on every rank by construction,
	// so the rollback branch is taken world-wide or not at all.
	d.World.Allreduce(mpi.OpMax, in[:], out[:])
	if out[0] != 0 {
		return g.detect(d, "scf.fields", it, out[0], 0)
	}
	return nil
}

// checkEig verifies the subspace eigenvalues are finite. They are
// bit-identical on every rank (exact reductions), so the local check
// branches identically everywhere without another reduction.
func (g *SDCGuard) checkEig(d *Dist, it int, eig []float64) error {
	for _, e := range eig {
		if math.IsNaN(e) || math.IsInf(e, 0) || math.Abs(e) > sdcMagnitudeLimit {
			return g.detect(d, "scf.eigenvalues", it, e, 0)
		}
	}
	return nil
}

// checkResidual runs the monotonicity monitor on the (globally
// identical) density residual. A NaN residual is corruption outright;
// growth past MaxGrowth x the last accepted residual after the warmup
// iterations is corruption of the mixed state.
func (g *SDCGuard) checkResidual(d *Dist, it int, residual float64) error {
	if math.IsNaN(residual) {
		return g.detect(d, "scf.residual", it, residual, g.prev)
	}
	if math.IsInf(residual, 0) {
		// The first iteration legitimately reports +Inf (no previous
		// density to diff against); afterwards it is corruption.
		if g.prev != 0 {
			return g.detect(d, "scf.residual", it, residual, g.prev)
		}
		return nil
	}
	if it > g.warmup() && g.prev > 0 && residual > g.maxGrowth()*g.prev {
		return g.detect(d, "scf.residual", it, residual, g.prev)
	}
	g.prev = residual
	return nil
}

// NewBitRotInjector returns a one-shot Tamper hook that flips bit 62 of
// the first interior element of the first held state at the given
// iteration. Bit 62 is the top exponent bit, so the value explodes far
// past sdcMagnitudeLimit and the same iteration's field scan catches it
// — before the tainted state can reach a checkpoint. Install on a
// single rank's guard; the hook survives rollback re-attempts without
// re-firing.
func NewBitRotInjector(iter int) func(it int, psis []*grid.Grid, n, veff *grid.Grid) {
	fired := false
	return func(it int, psis []*grid.Grid, n, veff *grid.Grid) {
		if fired || it != iter || len(psis) == 0 || psis[0] == nil {
			return
		}
		fired = true
		g := psis[0]
		v := g.At(0, 0, 0)
		g.Set(0, 0, 0, math.Float64frombits(math.Float64bits(v)^(1<<62)))
	}
}
