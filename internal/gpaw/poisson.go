// Package gpaw is a miniature real-space density-functional-theory stack
// patterned after GPAW, the application whose finite-difference kernel
// the paper optimizes. It supplies the workload context of the paper —
// Poisson and Kohn–Sham equations solved with finite-difference stencils
// on real-space grids, with thousands of wave-function grids all
// decomposed identically — using the operators of internal/stencil.
//
// Every solver runs on the shared-memory worker pool of
// internal/stencil and on its fused kernels, so each iteration makes
// roughly half the full-grid memory passes of the textbook chains
// (see the internal/stencil package comment for the traffic model).
//
// Units are Hartree atomic units: the kinetic operator is -(1/2)∇², the
// Hartree potential solves ∇²v = -4πn.
package gpaw

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/stencil"
)

// Boundary selects the boundary condition of a solver.
type Boundary int

const (
	// Periodic wraps the domain in all three dimensions.
	Periodic Boundary = iota
	// Dirichlet imposes zero values just outside the domain.
	Dirichlet
)

// String implements fmt.Stringer.
func (b Boundary) String() string {
	if b == Periodic {
		return "periodic"
	}
	return "dirichlet"
}

// fillHalos installs boundary values for one application.
func fillHalos(g *grid.Grid, bc Boundary) {
	if bc == Periodic {
		g.FillHalosPeriodic()
	} else {
		g.FillHalosZero()
	}
}

// Poisson solves ∇²φ = rhs with a finite-difference Laplacian of the
// given radius, using either damped Jacobi iteration or conjugate
// gradients. For the periodic problem the right-hand side must integrate
// to zero (the solver removes the mean defensively) and the solution is
// fixed to zero mean.
type Poisson struct {
	Op      *stencil.Operator
	BC      Boundary
	Tol     float64 // relative residual target
	MaxIter int
	Pool    *stencil.Pool // worker pool for grid sweeps; nil runs serial
}

// NewPoisson builds a solver with the paper's radius-2 Laplacian,
// running on the process-wide worker pool.
func NewPoisson(h float64, bc Boundary) *Poisson {
	return &Poisson{Op: stencil.Laplacian(2, h), BC: bc, Tol: 1e-8, MaxIter: 10000, Pool: stencil.Shared()}
}

// residual computes r = rhs - ∇²phi in one fused sweep and returns its
// norm.
func (ps *Poisson) residual(r, phi, rhs *grid.Grid) float64 {
	fillHalos(phi, ps.BC)
	return math.Sqrt(ps.Op.ApplyResidual(ps.Pool, r, rhs, phi))
}

// SolveJacobi runs damped Jacobi relaxation, returning the iteration
// count and final relative residual. phi is the initial guess and result.
// Each iteration is two fused sweeps (residual-with-norm, correction
// axpy) instead of the five passes of the unfused formulation.
func (ps *Poisson) SolveJacobi(phi, rhs *grid.Grid) (int, float64, error) {
	omega := 0.7
	diag := ps.Op.Center
	if diag == 0 {
		return 0, 0, fmt.Errorf("gpaw: singular stencil diagonal")
	}
	b := rhs.Clone()
	if ps.BC == Periodic {
		removeMean(ps.Pool, b)
	}
	r := grid.NewDims(phi.Dims(), phi.H)
	norm0 := b.Norm2()
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	for it := 1; it <= ps.MaxIter; it++ {
		res := ps.residual(r, phi, b)
		if ps.BC == Periodic {
			removeMean(ps.Pool, phi)
		}
		if res/norm0 < ps.Tol {
			return it, res / norm0, nil
		}
		ps.Pool.Axpy(phi, omega/diag, r)
	}
	res := ps.residual(r, phi, b)
	return ps.MaxIter, res / norm0, errNotConverged("Jacobi", res/norm0)
}

// SolveCG runs conjugate gradients on the negated (positive-definite)
// Laplacian. Much faster than Jacobi for the same tolerance. The sign
// is folded into the operator coefficients and every iteration is four
// fused sweeps — apply-with-dot, axpy, axpy-with-norm, axpy-with-scale —
// about half the memory passes of SolveCGReference.
func (ps *Poisson) SolveCG(phi, rhs *grid.Grid) (int, float64, error) {
	// Solve (-∇²) phi = -rhs, which is symmetric positive (semi-)definite.
	neg := ps.Op.Scaled(-1)
	b := rhs.Clone()
	ps.Pool.Scale(b, -1)
	if ps.BC == Periodic {
		removeMean(ps.Pool, b)
	}
	norm0 := b.Norm2()
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	r := grid.NewDims(phi.Dims(), phi.H)
	ap := grid.NewDims(phi.Dims(), phi.H)
	// r = b - A phi, fused with the halo fill preceding it.
	fillHalos(phi, ps.BC)
	neg.ApplyResidual(ps.Pool, r, b, phi)
	if ps.BC == Periodic {
		removeMean(ps.Pool, r)
	}
	p := r.Clone()
	rsold := ps.Pool.Dot(r, r)
	for it := 1; it <= ps.MaxIter; it++ {
		fillHalos(p, ps.BC)
		pap := neg.ApplyDot(ps.Pool, ap, p) // ap = A p and <p, Ap> in one sweep
		alpha := rsold / pap
		ps.Pool.Axpy(phi, alpha, p)
		rs := ps.Pool.AxpyDot(r, -alpha, ap) // r -= alpha*Ap and <r, r> in one sweep
		if ps.BC == Periodic {
			removeMean(ps.Pool, r)
			rs = ps.Pool.Dot(r, r)
		}
		if math.Sqrt(rs)/norm0 < ps.Tol {
			if ps.BC == Periodic {
				removeMean(ps.Pool, phi)
			}
			return it, math.Sqrt(rs) / norm0, nil
		}
		ps.Pool.AxpyScale(p, 1, r, rs/rsold) // p = r + beta*p in one sweep
		rsold = rs
	}
	return ps.MaxIter, math.Sqrt(rsold) / norm0, errNotConverged("CG", math.Sqrt(rsold)/norm0)
}

// SolveCGReference is the unfused conjugate-gradient formulation the
// fused SolveCG replaces: separate Apply, Scale, Axpy and Dot passes
// per iteration. It is kept as the numerical reference for equivalence
// tests and as the baseline for the memory-traffic benchmarks.
func (ps *Poisson) SolveCGReference(phi, rhs *grid.Grid) (int, float64, error) {
	b := rhs.Clone()
	b.Scale(-1)
	if ps.BC == Periodic {
		removeMeanSerial(b)
	}
	norm0 := b.Norm2()
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	apply := func(dst, src *grid.Grid) {
		fillHalos(src, ps.BC)
		ps.Op.Apply(dst, src)
		dst.Scale(-1)
	}
	r := grid.NewDims(phi.Dims(), phi.H)
	ap := grid.NewDims(phi.Dims(), phi.H)
	// r = b - A phi
	apply(r, phi)
	r.Scale(-1)
	r.Axpy(1, b)
	if ps.BC == Periodic {
		removeMeanSerial(r)
	}
	p := r.Clone()
	rsold := r.Dot(r)
	for it := 1; it <= ps.MaxIter; it++ {
		apply(ap, p)
		alpha := rsold / p.Dot(ap)
		phi.Axpy(alpha, p)
		r.Axpy(-alpha, ap)
		if ps.BC == Periodic {
			removeMeanSerial(r)
		}
		rs := r.Dot(r)
		if math.Sqrt(rs)/norm0 < ps.Tol {
			if ps.BC == Periodic {
				removeMeanSerial(phi)
			}
			return it, math.Sqrt(rs) / norm0, nil
		}
		p.Scale(rs / rsold)
		p.Axpy(1, r)
		rsold = rs
	}
	return ps.MaxIter, math.Sqrt(rsold) / norm0, errNotConverged("CG", math.Sqrt(rsold)/norm0)
}

// SolveSOR runs successive over-relaxation: a Gauss–Seidel sweep with
// over-relaxation factor omega in (0, 2). In-place updates propagate
// within a sweep, so it converges substantially faster than Jacobi at
// the cost of a fixed traversal order.
func (ps *Poisson) SolveSOR(phi, rhs *grid.Grid, omega float64) (int, float64, error) {
	if omega <= 0 || omega >= 2 {
		return 0, 0, fmt.Errorf("gpaw: SOR omega %g outside (0, 2)", omega)
	}
	if ps.Op.Center == 0 {
		return 0, 0, fmt.Errorf("gpaw: singular stencil diagonal")
	}
	b := rhs.Clone()
	if ps.BC == Periodic {
		removeMean(ps.Pool, b)
	}
	norm0 := b.Norm2()
	if norm0 == 0 {
		phi.Fill(0)
		return 0, 0, nil
	}
	r := grid.NewDims(phi.Dims(), phi.H)
	for it := 1; it <= ps.MaxIter; it++ {
		// One lexicographic Gauss-Seidel sweep with halo refresh first;
		// in-place updates use the freshest interior values available.
		fillHalos(phi, ps.BC)
		ps.Op.SORSweep(phi, b, omega)
		if ps.BC == Periodic {
			removeMean(ps.Pool, phi)
		}
		res := ps.residual(r, phi, b)
		if res/norm0 < ps.Tol {
			return it, res / norm0, nil
		}
	}
	res := ps.residual(r, phi, b)
	return ps.MaxIter, res / norm0, errNotConverged("SOR", res/norm0)
}

// removeMean subtracts the interior mean (projects out the constant
// nullspace of the periodic Laplacian) with two pooled sweeps.
func removeMean(p *stencil.Pool, g *grid.Grid) {
	mean := p.Sum(g) / float64(g.Points())
	p.AddScalar(g, -mean)
}

// removeMeanSerial is removeMean on the calling goroutine with a single
// straight-line accumulator, used by the unfused reference solver.
func removeMeanSerial(g *grid.Grid) {
	g.AddScalar(-g.Sum() / float64(g.Points()))
}

// HartreePotential solves ∇²v = -4πn for the given density and returns
// v (zero-mean for periodic boundaries).
func (ps *Poisson) HartreePotential(n *grid.Grid) (*grid.Grid, error) {
	rhs := n.Clone()
	ps.Pool.Scale(rhs, -4*math.Pi)
	v := grid.NewDims(n.Dims(), n.H)
	if _, _, err := ps.SolveCG(v, rhs); err != nil {
		return nil, err
	}
	return v, nil
}
